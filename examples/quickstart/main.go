// Quickstart: run the paper's headline experiment — single-node HPCG on
// all five systems — and print the reproduced Table III beside the
// published values.
package main

import (
	"fmt"
	"log"

	"a64fxbench"
)

func main() {
	fmt.Println("Reproducing Table III: single-node HPCG across five systems")
	fmt.Println()

	// Run one benchmark directly through the public API...
	sys, err := a64fxbench.GetSystem(a64fxbench.A64FX)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{
		System: sys, Nodes: 1, Iterations: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Direct run — HPCG on one %s node: %.2f GFLOP/s (%.1f%% of peak, %d ranks)\n\n",
		sys.ID, res.GFLOPs, res.PctPeak, res.Procs)

	// ...or reproduce the whole published table in one call.
	exp, err := a64fxbench.GetExperiment("table3")
	if err != nil {
		log.Fatal(err)
	}
	art, err := exp.Run(a64fxbench.Options{Quick: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(art.RenderComparison())
}
