// Config explorer: sweep minikab's MPI×OpenMP execution configurations
// on two nodes of any system (Figure 1 generalised beyond the A64FX).
// It shows the two effects the paper discusses: per-process replicated
// memory capping plain-MPI population, and hybrid configurations
// recovering the idle cores.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"a64fxbench"
)

func main() {
	sysName := flag.String("system", "A64FX", "system to explore (A64FX, ARCHER, Cirrus, EPCC NGIO, Fulhame)")
	nodes := flag.Int("nodes", 2, "node count")
	iters := flag.Int("iters", 150, "CG iterations to simulate")
	flag.Parse()

	sys, err := a64fxbench.GetSystem(a64fxbench.SystemID(*sysName))
	if err != nil {
		log.Fatal(err)
	}
	cores := sys.CoresPerNode()

	// Enumerate rank×thread layouts that tile the node.
	type layout struct{ rpn, tpr int }
	var layouts []layout
	for tpr := 1; tpr <= cores; tpr++ {
		if cores%tpr != 0 {
			continue
		}
		layouts = append(layouts, layout{cores / tpr, tpr})
	}
	sort.Slice(layouts, func(i, j int) bool { return layouts[i].tpr < layouts[j].tpr })

	fmt.Printf("minikab Benchmark1 on %d × %s nodes (%d cores each)\n\n", *nodes, sys.ID, cores)
	fmt.Printf("%-22s %10s %12s %10s\n", "configuration", "runtime", "GFLOP/s", "mem/node")

	best := ""
	bestTime := 0.0
	for _, l := range layouts {
		cfg := a64fxbench.MinikabConfig{
			System: sys, Nodes: *nodes,
			RanksPerNode: l.rpn, ThreadsPerRank: l.tpr,
			Iterations: *iters,
		}
		label := fmt.Sprintf("%d ranks × %d threads", l.rpn, l.tpr)
		res, err := a64fxbench.RunMinikab(cfg)
		if err != nil {
			fmt.Printf("%-22s %10s\n", label, "OOM")
			continue
		}
		fmt.Printf("%-22s %9.2fs %12.1f %10s\n",
			label, res.Seconds, res.GFLOPs, memPerNode(cfg))
		if best == "" || res.Seconds < bestTime {
			best, bestTime = label, res.Seconds
		}
	}
	fmt.Printf("\nbest configuration: %s (%.2fs)\n", best, bestTime)
}

// memPerNode formats the configuration's per-node memory need.
func memPerNode(cfg a64fxbench.MinikabConfig) string {
	return a64fxbench.MinikabMemoryPerNode(cfg).String()
}
