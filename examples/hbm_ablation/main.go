// HBM ablation: the paper attributes most of the A64FX's HPCG and
// Nekbone wins to its on-package HBM2. This example tests that claim in
// the model by deriving a hypothetical "A64FX-DDR" — the same cores,
// vectors and calibration, but with the four HBM2 stacks replaced by a
// dual-channel-per-CMG DDR4 memory system — and re-running the
// bandwidth-sensitive benchmarks on both.
package main

import (
	"fmt"
	"log"

	"a64fxbench"
)

func main() {
	ddr, err := a64fxbench.DeriveSystem(a64fxbench.A64FX, "A64FX-DDR", func(s *a64fxbench.System) {
		s.Description = "hypothetical A64FX with DDR4-2933 instead of HBM2"
		for i := range s.Node.Domains {
			// Each CMG drops from ~210 GB/s of HBM2 to ~45 GB/s of
			// commodity DDR4 (two channels), with more capacity.
			s.Node.Domains[i].PeakBandwidth = 45 * a64fxbench.GBPerSec
			s.Node.Domains[i].PerCoreBandwidth = 12 * a64fxbench.GBPerSec
			s.Node.Domains[i].Capacity = 32 * a64fxbench.GiB
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	hbm, err := a64fxbench.GetSystem(a64fxbench.A64FX)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("What does the A64FX owe to HBM2? Same chip, two memory systems:")
	fmt.Println()
	fmt.Printf("%-22s %18s %18s %9s\n", "benchmark", "A64FX (HBM2)", "A64FX-DDR", "HBM gain")

	// HPCG: bandwidth bound — expect a large gap.
	h1, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: hbm, Nodes: 1, Iterations: 8})
	if err != nil {
		log.Fatal(err)
	}
	h2, err := a64fxbench.RunHPCG(a64fxbench.HPCGConfig{System: ddr, Nodes: 1, Iterations: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.2f GF/s %12.2f GF/s %8.2fx\n",
		"HPCG (single node)", h1.GFLOPs, h2.GFLOPs, h1.GFLOPs/h2.GFLOPs)

	// Nekbone without fast math: mostly compute bound — smaller gap.
	n1, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: hbm, Nodes: 1, Iterations: 15})
	if err != nil {
		log.Fatal(err)
	}
	n2, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: ddr, Nodes: 1, Iterations: 15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.2f GF/s %12.2f GF/s %8.2fx\n",
		"Nekbone", n1.GFLOPs, n2.GFLOPs, n1.GFLOPs/n2.GFLOPs)

	// Nekbone with fast math: compute bound until the FPUs outrun DDR.
	f1, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: hbm, Nodes: 1, Iterations: 15, FastMath: true})
	if err != nil {
		log.Fatal(err)
	}
	f2, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{System: ddr, Nodes: 1, Iterations: 15, FastMath: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %12.2f GF/s %12.2f GF/s %8.2fx\n",
		"Nekbone (fast math)", f1.GFLOPs, f2.GFLOPs, f1.GFLOPs/f2.GFLOPs)

	fmt.Println()
	fmt.Println("Reading: the HPCG gap tracks the bandwidth ratio, confirming the")
	fmt.Println("paper's attribution; Nekbone's smaller gap shows its ax kernel is")
	fmt.Println("compute bound, which is why -Kfast (not HBM) is what unlocks it.")
}
