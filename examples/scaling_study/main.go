// Scaling study: reproduce the paper's two multi-node narratives — the
// Nekbone weak-scaling parallel efficiencies across three interconnects
// (TofuD vs EDR InfiniBand vs Aries, Table VII) and the COSA strong-
// scaling crossover where block-distribution load balance hands the
// 16-node win to Fulhame (Figure 4).
package main

import (
	"fmt"
	"log"

	"a64fxbench"
)

func main() {
	nekboneStudy()
	fmt.Println()
	cosaStudy()
}

func nekboneStudy() {
	fmt.Println("Nekbone weak scaling: parallel efficiency by interconnect")
	fmt.Printf("%-10s %-16s", "system", "network")
	nodeCounts := []int{2, 4, 8, 16}
	for _, n := range nodeCounts {
		fmt.Printf("  %4dn", n)
	}
	fmt.Println()
	for _, id := range []a64fxbench.SystemID{a64fxbench.A64FX, a64fxbench.Fulhame, a64fxbench.ARCHER} {
		sys, err := a64fxbench.GetSystem(id)
		if err != nil {
			log.Fatal(err)
		}
		base, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{
			System: sys, Nodes: 1, Iterations: 60, FastMath: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-16s", id, sys.NewFabric(16).Name)
		for _, n := range nodeCounts {
			res, err := a64fxbench.RunNekbone(a64fxbench.NekboneConfig{
				System: sys, Nodes: n, Iterations: 60, FastMath: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.2f", base.Seconds/res.Seconds)
		}
		fmt.Println()
	}
	fmt.Println("(weak scaling: perfect efficiency keeps runtime constant, PE = T1/Tn)")
}

func cosaStudy() {
	fmt.Println("COSA strong scaling: the 800-block load-balance crossover")
	fmt.Printf("%-10s", "nodes")
	for _, id := range a64fxbench.SystemIDs() {
		fmt.Printf("  %12s", id)
	}
	fmt.Println()
	for _, nodes := range []int{2, 4, 8, 16} {
		fmt.Printf("%-10d", nodes)
		for _, id := range a64fxbench.SystemIDs() {
			sys, err := a64fxbench.GetSystem(id)
			if err != nil {
				log.Fatal(err)
			}
			res, err := a64fxbench.RunCOSA(a64fxbench.COSAConfig{System: sys, Nodes: nodes})
			if err != nil {
				fmt.Printf("  %12s", "OOM")
				continue
			}
			fmt.Printf("  %8.2fs(%d)", res.Seconds, res.MaxBlocksPerProc)
		}
		fmt.Println()
	}
	fmt.Println("(parenthesised: max blocks per process — the load-balance bottleneck;")
	fmt.Println(" at 16 nodes Fulhame's 1024 ranks each take one block while 32 of the")
	fmt.Println(" A64FX's 768 ranks take two, handing Fulhame the win as in the paper)")
}
