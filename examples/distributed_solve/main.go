// Distributed solve: a look under the hood. This example runs a *real*
// conjugate-gradient solve of the HPCG 27-point-stencil system across
// simulated MPI ranks: actual float64 boundary planes move through the
// TofuD network model, actual partial sums meet in real allreduces, and
// the virtual clock prices every step — while the numbers themselves are
// exact. It then cross-checks the distributed solution against a serial
// solve on the assembled sparse matrix.
//
// (This example deliberately uses the internal engine packages rather
// than the public facade, to show how the simulator is put together.)
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
)

func main() {
	const nx, ny, nz = 16, 16, 24
	const procs, nodes = 8, 2
	n := nx * ny * nz

	// Manufacture a problem with a known solution.
	a, err := sparse.Stencil27(nx, ny, nz)
	if err != nil {
		log.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(0.02 * float64(i))
	}
	b := make([]float64, n)
	a.SpMV(xTrue, b)

	// Solve it across 8 simulated ranks on 2 A64FX nodes.
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(procs/nodes, 1)
	job := simmpi.JobConfig{
		Procs: procs, Nodes: nodes, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(nodes),
	}
	solution := make([]float64, n)
	var mu sync.Mutex
	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		d, err := hpcg.NewDistributedStencilCG(r, nx, ny, nz)
		if err != nil {
			return err
		}
		lo := (n / nz) * firstPlane(nz, procs, r.ID())
		x, iters, relres := d.Solve(b[lo:lo+d.LocalLen()], 500, 1e-10)
		if r.ID() == 0 {
			fmt.Printf("rank 0: converged in %d iterations (relative residual %.2e)\n", iters, relres)
		}
		mu.Lock()
		copy(solution[lo:], x)
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	errMax := linalg.AbsDiffMax(solution, xTrue)
	fmt.Printf("solution error vs manufactured truth: %.2e\n", errMax)
	fmt.Printf("simulated runtime on %d × %s ranks over %d nodes: %.6f s\n",
		procs, sys.ID, nodes, rep.Seconds())
	fmt.Printf("network traffic: %d messages, %v\n", rep.TotalMsgs, rep.TotalBytesSent)
	fmt.Printf("mean compute/wait per rank: %.6f s / %.6f s\n",
		rep.MeanBusy.Seconds(), rep.MeanWait.Seconds())
}

// firstPlane mirrors the solver's slab distribution.
func firstPlane(nz, p, id int) int {
	base := nz / p
	rem := nz % p
	lo := id*base + id
	if id >= rem {
		lo = id*base + rem
	}
	return lo
}
