package sparse

import (
	"testing"
)

// benchMatrix caches the assembled stencil so assembly cost is excluded
// from the kernel benchmarks.
var benchMatrix *CSR

func getBenchMatrix(b *testing.B) *CSR {
	if benchMatrix == nil {
		m, err := Stencil27(32, 32, 32)
		if err != nil {
			b.Fatal(err)
		}
		benchMatrix = m
	}
	return benchMatrix
}

func BenchmarkSpMV32cubed(b *testing.B) {
	m := getBenchMatrix(b)
	x := make([]float64, m.N)
	y := make([]float64, m.N)
	for i := range x {
		x[i] = float64(i%7) * 0.25
	}
	b.SetBytes(int64(m.NNZ()*12 + int64(m.N)*16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SpMV(x, y)
	}
	b.ReportMetric(2*float64(m.NNZ())*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkSymGS32cubed(b *testing.B) {
	m := getBenchMatrix(b)
	rhs := make([]float64, m.N)
	x := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = float64(i%5) * 0.5
	}
	b.SetBytes(int64(2 * (m.NNZ()*12 + int64(m.N)*16)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SymGS(rhs, x)
	}
}

func BenchmarkStencil27Assembly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Stencil27(16, 16, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStructuralAssembly(b *testing.B) {
	spec := StructuralSpec{NX: 8, NY: 8, NZ: 8, DofPerNode: 3}
	for i := 0; i < b.N; i++ {
		if _, err := spec.Assemble(); err != nil {
			b.Fatal(err)
		}
	}
}
