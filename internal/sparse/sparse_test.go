package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"a64fxbench/internal/linalg"
)

func TestBuilderBasic(t *testing.T) {
	t.Parallel()
	b := NewBuilder(3)
	b.StartRow(0)
	b.Add(0, 2)
	b.Add(1, -1)
	b.EndRow()
	b.StartRow(1)
	b.Add(2, -1)
	b.Add(0, -1)
	b.Add(1, 2) // unsorted input
	b.EndRow()
	b.StartRow(2)
	b.Add(1, -1)
	b.Add(2, 2)
	b.EndRow()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 7 {
		t.Errorf("NNZ = %d, want 7", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	d := m.Diagonal()
	for i, v := range d {
		if v != 2 {
			t.Errorf("diag[%d] = %v", i, v)
		}
	}
}

func TestBuilderDuplicatesMerged(t *testing.T) {
	t.Parallel()
	b := NewBuilder(1)
	b.StartRow(0)
	b.Add(0, 1)
	b.Add(0, 2)
	b.EndRow()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 || m.Vals[0] != 3 {
		t.Errorf("duplicates not merged: %+v", m)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Parallel()
	b := NewBuilder(2)
	b.StartRow(0)
	b.EndRow()
	if _, err := b.Build(); err == nil {
		t.Error("incomplete build should fail")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order StartRow should panic")
			}
		}()
		b.StartRow(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Add should panic")
			}
		}()
		b2 := NewBuilder(2)
		b2.StartRow(0)
		b2.Add(5, 1)
	}()
}

func TestSpMVTridiagonal(t *testing.T) {
	t.Parallel()
	// 1D Laplacian: A·1 = boundary effect only.
	m, err := RandomSPD(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	b := NewBuilder(3)
	for i := 0; i < 3; i++ {
		b.StartRow(i)
		if i > 0 {
			b.Add(i-1, -1)
		}
		b.Add(i, 2)
		if i < 2 {
			b.Add(i+1, -1)
		}
		b.EndRow()
	}
	a, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 3)
	a.SpMV([]float64{1, 1, 1}, y)
	want := []float64{1, 0, 1}
	for i := range y {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if a.SpMVFlops() != 2*7 {
		t.Errorf("SpMVFlops = %v", a.SpMVFlops())
	}
	if a.SymGSFlops() != 2*(2*7+3) {
		t.Errorf("SymGSFlops = %v", a.SymGSFlops())
	}
}

func TestSymGSReducesResidual(t *testing.T) {
	t.Parallel()
	m, err := Stencil27(6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	n := m.N
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i))
	}
	b := make([]float64, n)
	m.SpMV(xTrue, b)
	x := make([]float64, n)
	resid := func() float64 {
		r := make([]float64, n)
		m.SpMV(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		return linalg.Norm2(r)
	}
	r0 := resid()
	for it := 0; it < 5; it++ {
		m.SymGS(b, x)
	}
	r5 := resid()
	if r5 >= r0*0.5 {
		t.Errorf("SymGS barely converged: r0=%v r5=%v", r0, r5)
	}
	for it := 0; it < 45; it++ {
		m.SymGS(b, x)
	}
	if r := resid(); r >= r5 {
		t.Errorf("SymGS diverged later: %v → %v", r5, r)
	}
}

func TestStencil27Structure(t *testing.T) {
	t.Parallel()
	for _, dims := range [][3]int{{1, 1, 1}, {2, 2, 2}, {3, 4, 5}, {8, 8, 8}} {
		nx, ny, nz := dims[0], dims[1], dims[2]
		m, err := Stencil27(nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		if m.N != nx*ny*nz {
			t.Errorf("%v: N = %d", dims, m.N)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%v: %v", dims, err)
		}
		if got, want := m.NNZ(), Stencil27NNZ(nx, ny, nz); got != want {
			t.Errorf("%v: NNZ = %d, formula says %d", dims, got, want)
		}
		// Row sums: diagonal 26, each neighbour -1, so row sum =
		// 26 - (neighbours). Interior rows sum to 0 exactly.
		if nx >= 3 && ny >= 3 && nz >= 3 {
			interior := 1 + nx*(1+ny*1) // point (1,1,1)
			var sum float64
			for p := m.RowPtr[interior]; p < m.RowPtr[interior+1]; p++ {
				sum += m.Vals[p]
			}
			if sum != 0 {
				t.Errorf("%v: interior row sum = %v", dims, sum)
			}
		}
	}
	if _, err := Stencil27(0, 1, 1); err == nil {
		t.Error("degenerate grid should fail")
	}
}

func TestStencil27SPD(t *testing.T) {
	t.Parallel()
	// SPD check via x'Ax > 0 for random-ish x.
	m, _ := Stencil27(4, 4, 4)
	x := make([]float64, m.N)
	for i := range x {
		x[i] = math.Cos(float64(3 * i))
	}
	y := make([]float64, m.N)
	m.SpMV(x, y)
	if q := linalg.Dot(x, y); q <= 0 {
		t.Errorf("x'Ax = %v, matrix not PD", q)
	}
}

func TestBenchmark1Spec(t *testing.T) {
	t.Parallel()
	s := Benchmark1Spec()
	rows := s.Rows()
	// Within 1% of the paper's 9,573,984 dof.
	if math.Abs(float64(rows)-9573984)/9573984 > 0.01 {
		t.Errorf("Benchmark1 rows = %d", rows)
	}
	// Density within 15% of the paper's 72.7 nnz/row (ours is slightly
	// denser because the paper's matrix loses entries to constrained
	// boundary dof).
	density := float64(s.NNZ()) / float64(rows)
	if density < 60 || density > 85 {
		t.Errorf("Benchmark1 density = %v nnz/row", density)
	}
}

func TestStructuralAssembleMatchesFormulas(t *testing.T) {
	t.Parallel()
	s := StructuralSpec{NX: 3, NY: 4, NZ: 2, DofPerNode: 2}
	m, err := s.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if int64(m.N) != s.Rows() {
		t.Errorf("rows %d vs formula %d", m.N, s.Rows())
	}
	if m.NNZ() != s.NNZ() {
		t.Errorf("nnz %d vs formula %d", m.NNZ(), s.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestStructuralSymmetric(t *testing.T) {
	t.Parallel()
	s := StructuralSpec{NX: 3, NY: 3, NZ: 3, DofPerNode: 2}
	m, err := s.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// Check A == Aᵀ entry by entry.
	get := func(i, j int) float64 {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == j {
				return m.Vals[p]
			}
		}
		return 0
	}
	for i := 0; i < m.N; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			j := int(m.ColIdx[p])
			if got := get(j, i); got != m.Vals[p] {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", i, j, m.Vals[p], got)
			}
		}
	}
}

func TestStructuralDiagonallyDominant(t *testing.T) {
	t.Parallel()
	s := StructuralSpec{NX: 4, NY: 3, NZ: 3, DofPerNode: 3}
	m, err := s.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N; i++ {
		var off float64
		var diag float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == i {
				diag = m.Vals[p]
			} else {
				off += math.Abs(m.Vals[p])
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v vs %v", i, diag, off)
		}
	}
}

func TestStructuralInvalidSpec(t *testing.T) {
	t.Parallel()
	if _, err := (StructuralSpec{NX: 0, NY: 1, NZ: 1, DofPerNode: 1}).Assemble(); err == nil {
		t.Error("invalid spec should fail")
	}
}

func TestRandomSPD(t *testing.T) {
	t.Parallel()
	m, err := RandomSPD(50, 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	// Positive definite check via Gauss-Seidel convergence.
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, m.N)
	for it := 0; it < 100; it++ {
		m.SymGS(b, x)
	}
	r := make([]float64, m.N)
	m.SpMV(x, r)
	if linalg.AbsDiffMax(r, b) > 1e-8 {
		t.Errorf("SymGS on SPD matrix failed to converge: %v", linalg.AbsDiffMax(r, b))
	}
}

// Property: Stencil27NNZ formula equals assembled NNZ.
func TestStencilNNZProperty(t *testing.T) {
	t.Parallel()
	f := func(a, b, c uint8) bool {
		nx, ny, nz := int(a%5)+1, int(b%5)+1, int(c%5)+1
		m, err := Stencil27(nx, ny, nz)
		if err != nil {
			return false
		}
		return m.NNZ() == Stencil27NNZ(nx, ny, nz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: SpMV is linear: A(x+y) == Ax + Ay.
func TestSpMVLinearityProperty(t *testing.T) {
	t.Parallel()
	m, err := Stencil27(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		x := make([]float64, m.N)
		y := make([]float64, m.N)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s%1000) / 1000
		}
		for i := range x {
			x[i], y[i] = next(), next()
		}
		xy := make([]float64, m.N)
		for i := range xy {
			xy[i] = x[i] + y[i]
		}
		ax, ay, axy := make([]float64, m.N), make([]float64, m.N), make([]float64, m.N)
		m.SpMV(x, ax)
		m.SpMV(y, ay)
		m.SpMV(xy, axy)
		for i := range axy {
			if math.Abs(axy[i]-(ax[i]+ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
