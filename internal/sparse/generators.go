package sparse

import "fmt"

// Stencil27 builds the HPCG problem matrix on an nx×ny×nz grid: the
// 27-point stencil with value 26 on the diagonal and -1 for each
// neighbour, which is symmetric positive definite. Grid point (ix,iy,iz)
// maps to row ix + nx·(iy + ny·iz).
func Stencil27(nx, ny, nz int) (*CSR, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("sparse: invalid stencil grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	b := NewBuilder(n)
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				row := ix + nx*(iy+ny*iz)
				b.StartRow(row)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							jx, jy, jz := ix+dx, iy+dy, iz+dz
							if jx < 0 || jx >= nx || jy < 0 || jy >= ny || jz < 0 || jz >= nz {
								continue
							}
							col := jx + nx*(jy+ny*jz)
							if col == row {
								b.Add(col, 26)
							} else {
								b.Add(col, -1)
							}
						}
					}
				}
				b.EndRow()
			}
		}
	}
	return b.Build()
}

// Stencil27NNZ reports, without assembling, the exact non-zero count of
// Stencil27(nx, ny, nz): per dimension the neighbour-count sum over a line
// of n points is 3n-2, and counts multiply across dimensions.
func Stencil27NNZ(nx, ny, nz int) int64 {
	if nx < 1 || ny < 1 || nz < 1 {
		return 0
	}
	return int64(3*nx-2) * int64(3*ny-2) * int64(3*nz-2)
}

// StructuralSpec describes a minikab-style FEM structural matrix: nodes on
// an nx×ny×nz hexahedral grid, dofPerNode unknowns per node, each node
// coupled to its 27-point node neighbourhood. The paper's Benchmark1
// matrix (9,573,984 dof, 696,096,138 non-zeros, ~72.7 nnz/row) matches a
// grid of about 147³ nodes with 3 dof/node.
type StructuralSpec struct {
	NX, NY, NZ int
	DofPerNode int
}

// Benchmark1Spec returns the full-scale specification equivalent to the
// paper's Benchmark1 structural matrix: 147×147×147 nodes × 3 dof =
// 9,529,569 rows (0.5% from the paper's 9,573,984) with the same coupling
// density.
func Benchmark1Spec() StructuralSpec {
	return StructuralSpec{NX: 147, NY: 147, NZ: 147, DofPerNode: 3}
}

// Rows reports the matrix dimension of the spec.
func (s StructuralSpec) Rows() int64 {
	return int64(s.NX) * int64(s.NY) * int64(s.NZ) * int64(s.DofPerNode)
}

// NNZ reports the exact non-zero count: node pairs within the 27-point
// neighbourhood, each contributing a dense dofPerNode² block.
func (s StructuralSpec) NNZ() int64 {
	pairs := int64(3*s.NX-2) * int64(3*s.NY-2) * int64(3*s.NZ-2)
	return pairs * int64(s.DofPerNode) * int64(s.DofPerNode)
}

// Assemble builds the structural matrix: symmetric positive definite via
// diagonal dominance, with deterministic pseudo-random couplings so the
// matrix is reproducible. Intended for validation-scale specs; full-scale
// runs are metered analytically via Rows/NNZ.
func (s StructuralSpec) Assemble() (*CSR, error) {
	if s.NX < 1 || s.NY < 1 || s.NZ < 1 || s.DofPerNode < 1 {
		return nil, fmt.Errorf("sparse: invalid structural spec %+v", s)
	}
	nNodes := s.NX * s.NY * s.NZ
	d := s.DofPerNode
	n := nNodes * d
	node := func(ix, iy, iz int) int { return ix + s.NX*(iy+s.NY*iz) }

	// coupling returns a deterministic pseudo-random value in (0, 1] for
	// an unordered node pair and dof pair, so the matrix is symmetric.
	coupling := func(a, b, da, db int) float64 {
		if a > b || (a == b && da > db) {
			a, b = b, a
			da, db = db, da
		}
		h := uint64(a)*1000003 ^ uint64(b)*8191 ^ uint64(da)*131 ^ uint64(db)*31
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return float64(h%1000)/1000.0*0.9 + 0.1
	}

	bld := NewBuilder(n)
	for iz := 0; iz < s.NZ; iz++ {
		for iy := 0; iy < s.NY; iy++ {
			for ix := 0; ix < s.NX; ix++ {
				a := node(ix, iy, iz)
				for da := 0; da < d; da++ {
					row := a*d + da
					bld.StartRow(row)
					var rowSum float64
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								jx, jy, jz := ix+dx, iy+dy, iz+dz
								if jx < 0 || jx >= s.NX || jy < 0 || jy >= s.NY || jz < 0 || jz >= s.NZ {
									continue
								}
								b := node(jx, jy, jz)
								for db := 0; db < d; db++ {
									col := b*d + db
									if col == row {
										continue // diagonal added last
									}
									v := -coupling(a, b, da, db)
									bld.Add(col, v)
									rowSum += -v
								}
							}
						}
					}
					bld.Add(row, rowSum+1)
					bld.EndRow()
				}
			}
		}
	}
	return bld.Build()
}
