// Package sparse implements compressed sparse row matrices and the sparse
// kernels the benchmarks build on: SpMV, symmetric Gauss-Seidel, and the
// matrix generators for the HPCG 27-point stencil and the minikab
// structural (FEM-like) problem.
//
// Generators also expose exact size formulas (rows, non-zeros) so the
// performance model can meter full-scale problems that are validated
// numerically at reduced scale (DESIGN.md §1).
package sparse

import (
	"fmt"
	"math/rand"
)

// CSR is a square sparse matrix in compressed sparse row format.
type CSR struct {
	// N is the matrix dimension.
	N int
	// RowPtr has N+1 entries; row i occupies [RowPtr[i], RowPtr[i+1]).
	RowPtr []int64
	// ColIdx holds column indices, sorted within each row.
	ColIdx []int32
	// Vals holds the matching values.
	Vals []float64
	// DiagIdx caches the position of the diagonal entry of each row
	// (-1 if a row has no diagonal), for Gauss-Seidel sweeps.
	DiagIdx []int64
}

// NNZ reports the number of stored non-zeros.
func (m *CSR) NNZ() int64 { return int64(len(m.Vals)) }

// Validate checks structural invariants: monotone row pointers, in-range
// sorted column indices, and diagonal cache consistency.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.N+1 {
		return fmt.Errorf("sparse: RowPtr has %d entries for N=%d", len(m.RowPtr), m.N)
	}
	if m.RowPtr[0] != 0 || m.RowPtr[m.N] != int64(len(m.Vals)) {
		return fmt.Errorf("sparse: RowPtr bounds [%d, %d] with %d values",
			m.RowPtr[0], m.RowPtr[m.N], len(m.Vals))
	}
	if len(m.ColIdx) != len(m.Vals) {
		return fmt.Errorf("sparse: %d indices vs %d values", len(m.ColIdx), len(m.Vals))
	}
	for i := 0; i < m.N; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative extent", i)
		}
		for p := lo; p < hi; p++ {
			c := m.ColIdx[p]
			if c < 0 || int(c) >= m.N {
				return fmt.Errorf("sparse: row %d column %d out of range", i, c)
			}
			if p > lo && m.ColIdx[p-1] >= c {
				return fmt.Errorf("sparse: row %d columns not strictly sorted", i)
			}
		}
		if m.DiagIdx != nil {
			d := m.DiagIdx[i]
			if d >= 0 && (d < lo || d >= hi || int(m.ColIdx[d]) != i) {
				return fmt.Errorf("sparse: row %d diagonal cache wrong", i)
			}
		}
	}
	return nil
}

// buildDiagIdx populates the diagonal cache.
func (m *CSR) buildDiagIdx() {
	m.DiagIdx = make([]int64, m.N)
	for i := 0; i < m.N; i++ {
		m.DiagIdx[i] = -1
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if int(m.ColIdx[p]) == i {
				m.DiagIdx[i] = p
				break
			}
		}
	}
}

// Diagonal extracts the diagonal into a new slice (zero where absent).
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		if p := m.DiagIdx[i]; p >= 0 {
			d[i] = m.Vals[p]
		}
	}
	return d
}

// SpMV computes y = A·x.
func (m *CSR) SpMV(x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("sparse: SpMV size mismatch N=%d len(x)=%d len(y)=%d", m.N, len(x), len(y)))
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Vals[p] * x[m.ColIdx[p]]
		}
		y[i] = s
	}
}

// SpMVFlops reports the flop count of one SpMV (2 per stored non-zero).
func (m *CSR) SpMVFlops() float64 { return 2 * float64(m.NNZ()) }

// SymGS performs one symmetric Gauss-Seidel sweep (forward then backward)
// on A·x = b, updating x in place — HPCG's smoother.
func (m *CSR) SymGS(b, x []float64) {
	if len(b) != m.N || len(x) != m.N {
		panic("sparse: SymGS size mismatch")
	}
	// Forward sweep.
	for i := 0; i < m.N; i++ {
		m.gsRow(i, b, x)
	}
	// Backward sweep.
	for i := m.N - 1; i >= 0; i-- {
		m.gsRow(i, b, x)
	}
}

// gsRow relaxes one row: x_i = (b_i - Σ_{j≠i} a_ij x_j) / a_ii.
func (m *CSR) gsRow(i int, b, x []float64) {
	d := m.DiagIdx[i]
	if d < 0 {
		return // no diagonal: skip (degenerate rows in tests)
	}
	s := b[i]
	for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
		if p != d {
			s -= m.Vals[p] * x[m.ColIdx[p]]
		}
	}
	x[i] = s / m.Vals[d]
}

// SymGSFlops reports the flop count of one symmetric sweep:
// both directions touch every non-zero once (2 flops each) plus a divide.
func (m *CSR) SymGSFlops() float64 {
	return 2 * (2*float64(m.NNZ()) + float64(m.N))
}

// Builder assembles a CSR matrix from (row, col, value) triplets with
// duplicate entries summed. Rows must be added in order; columns within a
// row may arrive unsorted.
type Builder struct {
	n      int
	rowPtr []int64
	cols   []int32
	vals   []float64
	cur    int
	// scratch for per-row sort+dedup
	rowCols []int32
	rowVals []float64
}

// NewBuilder creates a builder for an n×n matrix.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, rowPtr: make([]int64, 1, n+1)}
}

// StartRow begins row i, which must be exactly the next row.
func (b *Builder) StartRow(i int) {
	if i != b.cur {
		panic(fmt.Sprintf("sparse: StartRow(%d) but next row is %d", i, b.cur))
	}
	b.rowCols = b.rowCols[:0]
	b.rowVals = b.rowVals[:0]
}

// Add appends an entry to the current row.
func (b *Builder) Add(col int, v float64) {
	if col < 0 || col >= b.n {
		panic(fmt.Sprintf("sparse: column %d out of range [0,%d)", col, b.n))
	}
	b.rowCols = append(b.rowCols, int32(col))
	b.rowVals = append(b.rowVals, v)
}

// EndRow finalises the current row: sorts columns, merges duplicates.
func (b *Builder) EndRow() {
	// Insertion sort: rows are short (≤ ~100 entries).
	for i := 1; i < len(b.rowCols); i++ {
		c, v := b.rowCols[i], b.rowVals[i]
		j := i - 1
		for j >= 0 && b.rowCols[j] > c {
			b.rowCols[j+1] = b.rowCols[j]
			b.rowVals[j+1] = b.rowVals[j]
			j--
		}
		b.rowCols[j+1] = c
		b.rowVals[j+1] = v
	}
	for i := 0; i < len(b.rowCols); i++ {
		if i > 0 && b.rowCols[i] == int32(b.cols[len(b.cols)-1]) && int64(len(b.cols)) > b.rowPtr[len(b.rowPtr)-1] {
			// merge duplicate with previous appended entry
			b.vals[len(b.vals)-1] += b.rowVals[i]
			continue
		}
		b.cols = append(b.cols, b.rowCols[i])
		b.vals = append(b.vals, b.rowVals[i])
	}
	b.rowPtr = append(b.rowPtr, int64(len(b.cols)))
	b.cur++
}

// Build finalises the matrix; all n rows must have been emitted.
func (b *Builder) Build() (*CSR, error) {
	if b.cur != b.n {
		return nil, fmt.Errorf("sparse: built %d of %d rows", b.cur, b.n)
	}
	m := &CSR{N: b.n, RowPtr: b.rowPtr, ColIdx: b.cols, Vals: b.vals}
	m.buildDiagIdx()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// RandomSPD generates a random sparse symmetric positive-definite matrix
// with about nnzPerRow off-diagonal entries per row, for tests: banded
// random coupling with a diagonally dominant diagonal.
func RandomSPD(n, nnzPerRow int, seed int64) (*CSR, error) {
	rng := rand.New(rand.NewSource(seed))
	if nnzPerRow < 1 {
		nnzPerRow = 1
	}
	half := nnzPerRow / 2
	if half < 1 {
		half = 1
	}
	// Symmetric band: couple i with i±k for k in 1..half.
	offVals := make([][]float64, n) // offVals[i][k-1] = value for (i, i+k)
	for i := range offVals {
		offVals[i] = make([]float64, half)
		for k := range offVals[i] {
			offVals[i][k] = -rng.Float64()
		}
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.StartRow(i)
		var rowSum float64
		for k := 1; k <= half; k++ {
			if i-k >= 0 {
				v := offVals[i-k][k-1]
				b.Add(i-k, v)
				rowSum += -v
			}
			if i+k < n {
				v := offVals[i][k-1]
				b.Add(i+k, v)
				rowSum += -v
			}
		}
		b.Add(i, rowSum+1) // strict diagonal dominance ⇒ SPD
		b.EndRow()
	}
	return b.Build()
}
