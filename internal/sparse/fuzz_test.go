package sparse

import (
	"testing"
)

// FuzzBuilder feeds arbitrary row contents through the Builder and checks
// that every successfully built matrix passes Validate.
func FuzzBuilder(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 1, 0})
	f.Add(uint8(1), []byte{0})
	f.Add(uint8(5), []byte{4, 4, 4, 0, 2, 3})
	f.Fuzz(func(t *testing.T, nRaw uint8, cols []byte) {
		n := int(nRaw)%8 + 1
		b := NewBuilder(n)
		ci := 0
		for row := 0; row < n; row++ {
			b.StartRow(row)
			// Up to 4 entries per row taken from the fuzz bytes.
			for k := 0; k < 4 && ci < len(cols); k++ {
				col := int(cols[ci]) % n
				ci++
				b.Add(col, float64(col)+0.5)
			}
			b.EndRow()
		}
		m, err := b.Build()
		if err != nil {
			t.Fatalf("build failed: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("built matrix invalid: %v", err)
		}
		// SpMV must not panic and must produce finite values.
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = 1
		}
		m.SpMV(x, y)
		for i, v := range y {
			if v != v {
				t.Fatalf("NaN at %d", i)
			}
		}
	})
}

// FuzzStencilNNZ cross-checks the closed-form NNZ formula against
// assembly for arbitrary small grids.
func FuzzStencilNNZ(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3))
	f.Add(uint8(4), uint8(4), uint8(4))
	f.Fuzz(func(t *testing.T, a, b, c uint8) {
		nx, ny, nz := int(a)%6+1, int(b)%6+1, int(c)%6+1
		m, err := Stencil27(nx, ny, nz)
		if err != nil {
			t.Fatal(err)
		}
		if m.NNZ() != Stencil27NNZ(nx, ny, nz) {
			t.Fatalf("%dx%dx%d: %d vs %d", nx, ny, nz, m.NNZ(), Stencil27NNZ(nx, ny, nz))
		}
	})
}
