// Package serve turns the experiment harness into a long-running
// sweep-as-a-service daemon: an HTTP/JSON API over the unified
// core.Request descriptor, backed by the concurrent sweep engine, a
// content-addressed response cache keyed by Request.Digest, in-flight
// deduplication (singleflight), bounded-queue backpressure and
// Prometheus-style self-instrumentation.
//
// The executors in this file are the single implementation of "do what
// a Request says and write the bytes": the CLI's run/trace/links/
// counters commands and the daemon's /v1/* handlers all call them, so a
// command line and a curl body produce byte-identical output for the
// same Request.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"a64fxbench/internal/core"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sweep"
)

// RunArtifacts executes the request's ids on the given sweep engine and
// returns the per-experiment results in input order. The context
// cancels experiments that have not started (sweep.Engine semantics).
func RunArtifacts(ctx context.Context, eng *sweep.Engine, req core.Request) ([]sweep.Result, error) {
	opt, err := req.Options()
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx, req.IDs, opt), nil
}

// WriteArtifacts renders every successful result of a run/sweep request
// to w in input order through the shared core.RenderArtifact path. The
// first failed result aborts with its error: the serving layer wants
// all-or-nothing responses (the CLI keeps its own partial-render loop).
func WriteArtifacts(w io.Writer, results []sweep.Result, req core.Request) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		if err := core.RenderArtifact(w, r.Artifact, req.Format, req.Compare); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun executes a single-id run request end to end and writes the
// rendered artifact bytes to w.
func WriteRun(ctx context.Context, w io.Writer, eng *sweep.Engine, req core.Request) error {
	results, err := RunArtifacts(ctx, eng, req)
	if err != nil {
		return err
	}
	return WriteArtifacts(w, results, req)
}

// WriteTrace runs the request's one experiment with tracing enabled and
// exports the event stream: format "text" streams the classic timeline,
// "chrome" writes a Perfetto-loadable trace-event file, "json" the full
// per-job analysis report (communication matrix, roofline, critical
// path).
func WriteTrace(ctx context.Context, w io.Writer, req core.Request) error {
	opt, err := req.Options()
	if err != nil {
		return err
	}
	var sink simmpi.TraceSink
	mem := &simmpi.MemorySink{}
	switch req.Format {
	case "text", "":
		// Streams as the simulation runs; nothing is buffered.
		sink = obs.NewTextSink(w)
	case "chrome", "json":
		sink = mem
	default:
		return fmt.Errorf("trace: unknown format %q (want text, chrome or json)", req.Format)
	}
	eng := sweep.New(1)
	eng.SinkFor = func(string) simmpi.TraceSink { return sink }
	res := eng.Run(ctx, req.IDs[:1], opt)[0]
	if res.Err != nil {
		return res.Err
	}
	if sink != mem {
		return sink.Close()
	}
	jobs := obs.SplitJobs(mem.Events)
	if req.Format == "chrome" {
		return obs.WriteChrome(w, jobs)
	}
	reports := make([]*obs.Report, 0, len(jobs))
	for _, jt := range jobs {
		rep, err := obs.Analyze(jt, obs.A64FXPeaks(jt))
		if err != nil {
			return err
		}
		reports = append(reports, rep)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// linkReport pairs one job's identity with its heatmap for JSON output.
type linkReport struct {
	Label string           `json:"label"`
	Ranks int              `json:"ranks"`
	Nodes int              `json:"nodes"`
	Links *obs.LinkHeatmap `json:"links"`
}

// WriteLinks runs the request's one experiment with congestion-aware
// network pricing forced on and renders the per-link contention heatmap
// of every simulated job: format "text" prints sparkline heatmaps,
// "json" the structured report. Experiments whose jobs are all
// single-node produce no contended links and say so.
func WriteLinks(ctx context.Context, w io.Writer, req core.Request) error {
	switch req.Format {
	case "text", "", "json":
	default:
		return fmt.Errorf("links: unknown format %q (want text or json)", req.Format)
	}
	opt, err := req.Options()
	if err != nil {
		return err
	}
	opt.Congestion = true
	mem := &simmpi.MemorySink{}
	eng := sweep.New(1)
	eng.SinkFor = func(string) simmpi.TraceSink { return mem }
	res := eng.Run(ctx, req.IDs[:1], opt)[0]
	if res.Err != nil {
		return res.Err
	}
	jobs := obs.SplitJobs(mem.Events)
	if req.Format == "json" {
		reports := make([]linkReport, 0, len(jobs))
		for _, jt := range jobs {
			reports = append(reports, linkReport{
				Label: jt.Label, Ranks: jt.NumRanks(), Nodes: jt.NumNodes(),
				Links: obs.BuildLinkHeatmap(jt),
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	contended := 0
	for _, jt := range jobs {
		hm := obs.BuildLinkHeatmap(jt)
		if hm == nil {
			continue
		}
		contended++
		if _, err := fmt.Fprintf(w, "=== %s: %d ranks on %d nodes ===\n",
			jt.Label, jt.NumRanks(), jt.NumNodes()); err != nil {
			return err
		}
		if err := hm.Render(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	if contended == 0 {
		_, err := fmt.Fprintf(w, "links %s: no contended links (%d simulated job(s), all single-node or untraced)\n",
			req.IDs[0], len(jobs))
		return err
	}
	return nil
}

// WriteCounters runs the request's experiments with the virtual PMU
// enabled and exports the counters: format "json" writes the regression
// sentinel's canonical snapshot, "csv" the sampled counter series in
// long form, "text" per-job totals with derived rates and phase
// attribution. workers bounds the sweep's concurrency (≤ 0 means
// GOMAXPROCS).
func WriteCounters(ctx context.Context, w io.Writer, req core.Request, workers int) error {
	opt, err := req.Options()
	if err != nil {
		return err
	}
	opt.Counters = req.CounterConfig()
	eng := sweep.New(workers)
	switch req.Format {
	case "json":
		snap, _, err := sweep.CounterSnapshot(ctx, eng, req.IDs, opt)
		if err != nil {
			return err
		}
		return snap.WriteJSON(w)
	case "text", "", "csv":
		jobs, err := runCounted(ctx, eng, req.IDs, opt)
		if err != nil {
			return err
		}
		if req.Format == "csv" {
			return obs.WriteCounterCSV(w, jobs)
		}
		for _, jt := range jobs {
			cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
			if cr == nil {
				continue
			}
			if err := cr.Render(w); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("counters: unknown format %q (want text, json or csv)", req.Format)
	}
}

// runCounted executes the (deduplicated) ids with per-id memory sinks
// and returns every simulated job's trace in id order.
func runCounted(ctx context.Context, eng *sweep.Engine, ids []string, opt core.Options) ([]obs.JobTrace, error) {
	uniq := make([]string, 0, len(ids))
	seen := map[string]bool{}
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sinks := make(map[string]*simmpi.MemorySink, len(uniq))
	for _, id := range uniq {
		sinks[id] = &simmpi.MemorySink{}
	}
	eng.SinkFor = func(id string) simmpi.TraceSink {
		if s, ok := sinks[id]; ok {
			return s
		}
		return nil
	}
	results := eng.Run(ctx, uniq, opt)
	if err := sweep.FirstError(results); err != nil {
		return nil, err
	}
	var jobs []obs.JobTrace
	for _, id := range uniq {
		jobs = append(jobs, obs.SplitJobs(sinks[id].Events)...)
	}
	return jobs, nil
}
