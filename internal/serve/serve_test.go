package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"a64fxbench/internal/core"
)

// The test extension: a registry-resident experiment whose executions
// can be counted and blocked, which is what lets these tests observe
// singleflight coalescing and fill the execution queue on demand.
var (
	extRuns int64 // atomic: total Run invocations
	extMu   sync.Mutex
	extGate chan struct{} // non-nil: Run blocks until it is closed
)

// holdExtension makes every subsequent test-extension run block until
// the returned release function is called.
func holdExtension() (release func()) {
	gate := make(chan struct{})
	extMu.Lock()
	extGate = gate
	extMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			extMu.Lock()
			extGate = nil
			extMu.Unlock()
			close(gate)
		})
	}
}

func init() {
	err := core.RegisterExtension(&core.Experiment{
		ID: "srvtest", Title: "serve test extension", Kind: core.Table,
		Description: "counts and optionally blocks executions (test only)",
		Run: func(opt core.Options) (*core.Artifact, error) {
			atomic.AddInt64(&extRuns, 1)
			extMu.Lock()
			gate := extGate
			extMu.Unlock()
			if gate != nil {
				<-gate
			}
			return &core.Artifact{
				ID: "srvtest", Title: "serve test extension", Kind: core.Table,
				Columns: []string{"runs"}, RowLabels: []string{"total"},
				Cells: [][]core.Cell{{{Value: 1}}},
			}, nil
		},
	})
	if err != nil {
		panic(err)
	}
}

// post drives one request through the handler in process.
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	return rec
}

func TestEndpointTable(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantType                 string // Content-Type prefix, "" = skip
		wantBody                 string // substring, "" = skip
	}{
		{"run ok", "POST", "/v1/run", `{"ids":["table1"],"quick":true,"format":"json"}`, 200, "application/json", `"table1"`},
		{"run text", "POST", "/v1/run", `{"ids":["table1"],"quick":true}`, 200, "text/plain", "TABLE1"},
		{"sweep ok", "POST", "/v1/sweep", `{"ids":["table1","table2"],"quick":true,"format":"json"}`, 200, "application/json", `"table2"`},
		{"trace ok", "POST", "/v1/trace", `{"ids":["srvtest"],"quick":true}`, 200, "text/plain", ""},
		{"counters ok", "POST", "/v1/counters", `{"ids":["table2"],"quick":true,"format":"json"}`, 200, "application/json", "schema"},
		{"links ok", "POST", "/v1/links", `{"ids":["table2"],"quick":true}`, 200, "text/plain", "links"},
		{"run two ids", "POST", "/v1/run", `{"ids":["table1","table2"]}`, 400, "application/json", "exactly one"},
		{"trace two ids", "POST", "/v1/trace", `{"ids":["table1","table2"]}`, 400, "application/json", "exactly one"},
		{"links two ids", "POST", "/v1/links", `{"ids":["table1","table2"]}`, 400, "application/json", "exactly one"},
		{"bad json", "POST", "/v1/run", `{"ids":`, 400, "application/json", "error"},
		{"unknown field", "POST", "/v1/run", `{"ids":["table1"],"quik":true}`, 400, "application/json", "quik"},
		{"unknown id", "POST", "/v1/run", `{"ids":["nope"]}`, 400, "application/json", "table1"},
		{"no ids", "POST", "/v1/sweep", `{}`, 400, "application/json", "no experiment ids"},
		{"bad format", "POST", "/v1/run", `{"ids":["table1"],"format":"xml"}`, 400, "application/json", "xml"},
		{"trace bad format", "POST", "/v1/trace", `{"ids":["table1"],"format":"chart"}`, 400, "application/json", "chart"},
		{"run GET", "GET", "/v1/run", "", 405, "application/json", "POST"},
		{"healthz", "GET", "/v1/healthz", "", 200, "application/json", `"ok"`},
		{"healthz POST", "POST", "/v1/healthz", "", 405, "application/json", "GET"},
		{"metrics", "GET", "/metrics", "", 200, "text/plain", "a64fxbench_serve_requests_total"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
			if rec.Code != tc.wantCode {
				t.Fatalf("%s %s: code %d, want %d (body %s)", tc.method, tc.path, rec.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantType != "" && !strings.HasPrefix(rec.Header().Get("Content-Type"), tc.wantType) {
				t.Fatalf("Content-Type %q, want prefix %q", rec.Header().Get("Content-Type"), tc.wantType)
			}
			if tc.wantBody != "" && !strings.Contains(rec.Body.String(), tc.wantBody) {
				t.Fatalf("body %q does not contain %q", rec.Body.String(), tc.wantBody)
			}
		})
	}
}

func TestResponseCacheAndHeaders(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	body := `{"ids":["table1"],"quick":true,"format":"json"}`

	first := post(h, "/v1/run", body)
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request: code %d, X-Cache %q; want 200 miss", first.Code, first.Header().Get("X-Cache"))
	}
	second := post(h, "/v1/run", body)
	if second.Code != 200 || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request: code %d, X-Cache %q; want 200 hit", second.Code, second.Header().Get("X-Cache"))
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("cached response bytes differ from the original")
	}
	// A semantically identical but differently-spelled request hits too:
	// the digest is computed on the normalized form.
	third := post(h, "/v1/run", `{"ids":[" TABLE1 "],"quick":true,"format":"json"}`)
	if third.Header().Get("X-Cache") != "hit" {
		t.Fatalf("normalized-equal request: X-Cache %q, want hit", third.Header().Get("X-Cache"))
	}
	if ratio := srv.Metrics().CacheHitRatio(); ratio <= 0 {
		t.Fatalf("cache hit ratio %v, want > 0", ratio)
	}
	// The same digest on a different endpoint is a different cache key.
	sweepRec := post(h, "/v1/sweep", body)
	if sweepRec.Code != 200 || sweepRec.Header().Get("X-Cache") != "miss" {
		t.Fatalf("sweep with run's digest: code %d, X-Cache %q; want 200 miss", sweepRec.Code, sweepRec.Header().Get("X-Cache"))
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSingleflightCoalescesIdenticalRequests(t *testing.T) {
	srv := New(Config{MaxConcurrent: 4})
	h := srv.Handler()
	release := holdExtension()
	defer release()
	before := atomic.LoadInt64(&extRuns)

	const n = 20
	body := `{"ids":["srvtest"],"format":"json"}`
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = post(h, "/v1/run", body)
		}(i)
	}
	// All n requests coalesce onto one execution, which is now blocked
	// inside the extension.
	waitFor(t, "the single execution to start", func() bool {
		return atomic.LoadInt64(&extRuns) == before+1
	})
	waitFor(t, "all requests to join the flight", func() bool {
		return srv.Metrics().Requests("/v1/run", 0) >= 0 && srv.Metrics().Inflight() == 1
	})
	release()
	wg.Wait()

	if got := atomic.LoadInt64(&extRuns) - before; got != 1 {
		t.Fatalf("%d identical concurrent requests ran the experiment %d times, want exactly 1", n, got)
	}
	var miss, coalesced int
	for i, rec := range recs {
		if rec.Code != 200 {
			t.Fatalf("request %d: code %d (body %s)", i, rec.Code, rec.Body.String())
		}
		switch xc := rec.Header().Get("X-Cache"); xc {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			// A request that arrived after the flight published.
		default:
			t.Fatalf("request %d: unexpected X-Cache %q", i, xc)
		}
		if rec.Body.String() != recs[0].Body.String() {
			t.Fatalf("request %d: body diverged", i)
		}
	}
	if miss != 1 {
		t.Fatalf("%d leaders (X-Cache: miss), want exactly 1 (coalesced %d)", miss, coalesced)
	}
}

func TestBackpressure429(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	h := srv.Handler()
	release := holdExtension()
	defer release()

	// Distinct digests (different formats) so nothing coalesces.
	bodies := []string{
		`{"ids":["srvtest"],"format":"text"}`,
		`{"ids":["srvtest"],"format":"json"}`,
	}
	recs := make([]*httptest.ResponseRecorder, len(bodies))
	var wg sync.WaitGroup
	for i, b := range bodies {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			recs[i] = post(h, "/v1/run", b)
		}(i, b)
	}
	waitFor(t, "one running and one queued execution", func() bool {
		return srv.Metrics().Inflight() == 1 && srv.Metrics().Queued() == 1
	})

	// Slots are exhausted (1 running + 1 queued): the next distinct
	// request must be rejected immediately with 429 + Retry-After.
	rejected := post(h, "/v1/run", `{"ids":["srvtest"],"format":"csv"}`)
	if rejected.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429 (body %s)", rejected.Code, rejected.Body.String())
	}
	if ra := rejected.Header().Get("Retry-After"); ra == "" {
		t.Fatal("429 response has no Retry-After header")
	}
	if xc := rejected.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("429 X-Cache %q, want miss", xc)
	}

	release()
	wg.Wait()
	for i, rec := range recs {
		if rec.Code != 200 {
			t.Fatalf("admitted request %d: code %d (body %s)", i, rec.Code, rec.Body.String())
		}
	}
	// Rejections are never cached: the same request succeeds afterwards.
	retry := post(h, "/v1/run", `{"ids":["srvtest"],"format":"csv"}`)
	if retry.Code != 200 {
		t.Fatalf("retry after 429: code %d, want 200", retry.Code)
	}
	if srv.Metrics().Requests("/v1/run", 429) != 1 {
		t.Fatalf("429 count %d, want 1", srv.Metrics().Requests("/v1/run", 429))
	}
}

func TestQueuedRequestCancellation(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 2})
	h := srv.Handler()
	release := holdExtension()
	defer release()
	before := atomic.LoadInt64(&extRuns)

	// A occupies the one execution slot.
	var wg sync.WaitGroup
	var aRec *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		aRec = post(h, "/v1/run", `{"ids":["srvtest"],"format":"text"}`)
	}()
	waitFor(t, "A to start", func() bool { return srv.Metrics().Inflight() == 1 })

	// B queues behind A, then its client hangs up.
	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan struct{})
	go func() {
		defer close(bDone)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/run", strings.NewReader(`{"ids":["srvtest"],"format":"json"}`))
		h.ServeHTTP(rec, req.WithContext(ctx))
	}()
	waitFor(t, "B to queue", func() bool { return srv.Metrics().Queued() == 1 })
	cancel()
	select {
	case <-bDone:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queued request did not return")
	}
	waitFor(t, "B's abandoned execution to drain", func() bool {
		return srv.Metrics().Queued() == 0
	})
	waitFor(t, "the 499 to be recorded", func() bool {
		return srv.Metrics().Requests("/v1/run", StatusClientClosedRequest) == 1
	})

	release()
	wg.Wait()
	if aRec.Code != 200 {
		t.Fatalf("A: code %d, want 200", aRec.Code)
	}
	// B never reached the extension: only A's execution ran.
	if got := atomic.LoadInt64(&extRuns) - before; got != 1 {
		t.Fatalf("extension ran %d times, want 1 (the cancelled request must not execute)", got)
	}
}

func TestHealthzReportsRegistries(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/healthz", nil))
	var body struct {
		Status      string  `json:"status"`
		Experiments int     `json:"experiments"`
		Extensions  int     `json:"extensions"`
		UptimeS     float64 `json:"uptime_s"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if body.Status != "ok" || body.Experiments != len(core.List()) || body.Extensions != len(core.Extensions()) {
		t.Fatalf("healthz = %+v; want ok with %d experiments, %d extensions",
			body, len(core.List()), len(core.Extensions()))
	}
}

func TestMetricsExposition(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	post(h, "/v1/run", `{"ids":["table2"],"quick":true,"format":"json"}`)
	post(h, "/v1/run", `{"ids":["table2"],"quick":true,"format":"json"}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`a64fxbench_serve_requests_total{endpoint="/v1/run",code="200"} 2`,
		"a64fxbench_serve_cache_hits_total 1",
		"a64fxbench_serve_cache_misses_total 1",
		"a64fxbench_serve_cache_hit_ratio 0.5",
		"a64fxbench_serve_queue_capacity",
		"a64fxbench_serve_request_seconds_bucket",
		`a64fxbench_serve_request_seconds_count{endpoint="/v1/run"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
