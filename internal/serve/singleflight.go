package serve

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent executions of the same request
// digest. The first caller for a key becomes the leader: its work runs
// in a dedicated goroutine under a context owned by the group, detached
// from any single HTTP request, so the run survives the leader client
// hanging up as long as at least one follower still wants the answer.
// Waiter counts are tracked per key; when the last waiter abandons the
// flight its context is cancelled and the computation is torn down.
//
// This is a hand-rolled stand-in for x/sync/singleflight (the module is
// dependency-free), extended with the ref-counted cancellation that the
// stock package lacks.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight computation.
type flightCall struct {
	cancel  context.CancelFunc
	done    chan struct{}
	waiters int
	resp    *response
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// Do returns the response for key, executing fn in a group-owned
// goroutine if no flight for key exists yet, or joining the existing
// flight otherwise. publish runs exactly once per flight, before any
// waiter is released — the server uses it to install the response in
// the cache with no window in which a new request could relaunch the
// work. shared reports whether the caller joined a flight started by
// someone else. If ctx expires first, Do abandons the flight (the
// computation keeps running for remaining waiters, or is cancelled if
// this was the last one) and returns the context error.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(context.Context) *response, publish func(*response)) (resp *response, shared bool, err error) {
	g.mu.Lock()
	c, ok := g.calls[key]
	if !ok {
		runCtx, cancel := context.WithCancel(context.Background())
		c = &flightCall{cancel: cancel, done: make(chan struct{})}
		g.calls[key] = c
		go func() {
			r := fn(runCtx)
			g.mu.Lock()
			c.resp = r
			// Publish under the lock: by the time any later request
			// misses the flight map, the cache already has the answer.
			if publish != nil {
				publish(r)
			}
			delete(g.calls, key)
			g.mu.Unlock()
			cancel()
			close(c.done)
		}()
	}
	c.waiters++
	g.mu.Unlock()

	select {
	case <-c.done:
		return c.resp, ok, nil
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandon := c.waiters == 0 && c.resp == nil
		if abandon && g.calls[key] == c {
			// Last waiter gone and the computation hasn't finished:
			// tear it down and clear the slot so a future request
			// starts fresh instead of joining a cancelled corpse.
			// (Guard against deleting a successor flight for the
			// same key.)
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if abandon {
			c.cancel()
		}
		return nil, ok, ctx.Err()
	}
}
