package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// unescapeLabel inverts escapeLabel — used to round-trip adversarial
// label values through the exposition.
func unescapeLabel(v string) string {
	var sb strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				sb.WriteByte('\\')
			case '"':
				sb.WriteByte('"')
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(v[i])
				sb.WriteByte(v[i+1])
			}
			i++
			continue
		}
		sb.WriteByte(v[i])
	}
	return sb.String()
}

func TestEscapeLabelRoundTrip(t *testing.T) {
	t.Parallel()
	cases := []string{
		"",
		"plain",
		`back\slash`,
		`quote"inside`,
		"new\nline",
		`all\three"of` + "\nthem",
		`trailing\`,
		"\n\n",
		`already\\escaped`,
	}
	for _, v := range cases {
		esc := escapeLabel(v)
		if strings.ContainsRune(esc, '\n') {
			t.Errorf("escapeLabel(%q) = %q still contains a raw newline", v, esc)
		}
		if got := unescapeLabel(esc); got != v {
			t.Errorf("round trip of %q: escaped %q, unescaped back to %q", v, esc, got)
		}
	}
}

// expositionLine is one parsed sample from the Prometheus text format.
type expositionLine struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition is a strict little parser for the subset of the
// Prometheus text format WritePrometheus emits. It fails the test on
// anything malformed, so it doubles as a well-formedness check.
func parseExposition(t *testing.T, text string) (samples []expositionLine, help, typ map[string]string, order []string) {
	t.Helper()
	help = map[string]string{}
	typ = map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := help[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = line
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: TYPE without kind: %q", ln+1, line)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		s := expositionLine{labels: map[string]string{}}
		body := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			s.name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			for _, pair := range splitLabels(t, line[i+1:j]) {
				k, v, found := strings.Cut(pair, "=")
				if !found || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label %q", ln+1, pair)
				}
				s.labels[k] = unescapeLabel(v[1 : len(v)-1])
			}
			body = strings.TrimSpace(line[j+1:])
		} else {
			var found bool
			s.name, body, found = strings.Cut(line, " ")
			if !found {
				t.Fatalf("line %d: sample without value: %q", ln+1, line)
			}
		}
		if _, err := fmt.Sscanf(body, "%g", &s.value); err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, body, err)
		}
		if base := baseName(s.name); len(order) == 0 || order[len(order)-1] != base {
			order = append(order, base)
		}
		samples = append(samples, s)
	}
	return samples, help, typ, order
}

// splitLabels splits `a="x",b="y"` on commas that are outside quoted
// values (escaped quotes inside values must not end the value).
func splitLabels(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote && c == '\\' && i+1 < len(s):
			cur.WriteByte(c)
			cur.WriteByte(s[i+1])
			i++
			continue
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
			continue
		}
		cur.WriteByte(c)
	}
	if inQuote {
		t.Fatalf("unterminated quote in label set %q", s)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// baseName maps a sample name to the metric name HELP/TYPE declare it
// under: histogram series append _bucket/_sum/_count to the base.
func baseName(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			return base
		}
	}
	return name
}

// populatedMetrics builds a Metrics with deterministic pseudo-random
// traffic across adversarial endpoint names, status codes and stages.
func populatedMetrics(t *testing.T, seed int64) *Metrics {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := newMetrics()
	m.queueCapacity = 8
	endpoints := []string{
		"/v1/run", "/v1/sweep", `/v1/od"d`, `/v1/back\slash`, "/v1/new\nline",
	}
	codes := []int{200, 400, 429, 500}
	for i := 0; i < 500; i++ {
		ep := endpoints[rng.Intn(len(endpoints))]
		code := codes[rng.Intn(len(codes))]
		// Span four orders of magnitude so observations land across the
		// whole bucket ladder, including +Inf.
		d := time.Duration(rng.ExpFloat64() * float64(rng.Intn(4)+1) * float64(10*time.Millisecond))
		m.Observe(ep, code, d)
	}
	stages := []string{"decode", "cache-lookup", "singleflight-wait", "engine-execute", "render", `st"age`}
	for i := 0; i < 500; i++ {
		st := stages[rng.Intn(len(stages))]
		d := time.Duration(rng.ExpFloat64() * float64(rng.Intn(6)+1) * float64(100*time.Microsecond))
		m.ObserveStage(st, d)
	}
	m.CacheHit()
	m.CacheMiss()
	m.Coalesced()
	return m
}

func exposition(t *testing.T, m *Metrics) string {
	t.Helper()
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestPrometheusLabelEscaping feeds endpoint and stage names containing
// every character the exposition format escapes and asserts they
// round-trip through a parse of the rendered output.
func TestPrometheusLabelEscaping(t *testing.T) {
	t.Parallel()
	m := populatedMetrics(t, 7)
	samples, _, _, _ := parseExposition(t, exposition(t, m))
	wantEndpoints := map[string]bool{`/v1/od"d`: false, `/v1/back\slash`: false, "/v1/new\nline": false}
	wantStages := map[string]bool{`st"age`: false}
	for _, s := range samples {
		if ep, ok := s.labels["endpoint"]; ok {
			if _, tracked := wantEndpoints[ep]; tracked {
				wantEndpoints[ep] = true
			}
		}
		if st, ok := s.labels["stage"]; ok {
			if _, tracked := wantStages[st]; tracked {
				wantStages[st] = true
			}
		}
	}
	for ep, seen := range wantEndpoints {
		if !seen {
			t.Errorf("endpoint %q did not survive the exposition round trip", ep)
		}
	}
	for st, seen := range wantStages {
		if !seen {
			t.Errorf("stage %q did not survive the exposition round trip", st)
		}
	}
}

// TestPrometheusHelpTypeOrdering asserts every sample belongs to a
// metric family that declared # HELP and # TYPE, and that each family's
// samples form one contiguous block (Prometheus requires all samples of
// a metric to be grouped under its metadata).
func TestPrometheusHelpTypeOrdering(t *testing.T) {
	t.Parallel()
	m := populatedMetrics(t, 11)
	samples, help, typ, order := parseExposition(t, exposition(t, m))
	if len(samples) == 0 {
		t.Fatal("no samples rendered")
	}
	for _, s := range samples {
		base := baseName(s.name)
		if _, ok := help[base]; !ok {
			t.Errorf("sample %s has no # HELP %s", s.name, base)
		}
		kind, ok := typ[base]
		if !ok {
			t.Errorf("sample %s has no # TYPE %s", s.name, base)
			continue
		}
		if s.name != base && kind != "histogram" {
			t.Errorf("suffixed sample %s declared under non-histogram type %q", s.name, kind)
		}
	}
	seen := map[string]bool{}
	for _, base := range order {
		if seen[base] {
			t.Errorf("metric family %s is split into non-contiguous blocks", base)
		}
		seen[base] = true
	}
	for name := range help {
		if _, ok := typ[name]; !ok {
			t.Errorf("# HELP %s has no matching # TYPE", name)
		}
	}
}

// TestPrometheusHistogramMonotonic asserts, for every histogram series
// in the exposition, that cumulative bucket counts never decrease with
// increasing le, that the +Inf bucket equals _count, and that _sum and
// _count agree with the in-memory histogram.
func TestPrometheusHistogramMonotonic(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{1, 2, 3} {
		m := populatedMetrics(t, seed)
		samples, _, typ, _ := parseExposition(t, exposition(t, m))

		type series struct {
			buckets []expositionLine // in emission order
			sum     float64
			count   float64
			hasInf  bool
			infVal  float64
		}
		families := map[string]*series{} // base name + label identity
		keyOf := func(s expositionLine) string {
			base := baseName(s.name)
			lbl := ""
			for _, k := range []string{"endpoint", "stage"} {
				if v, ok := s.labels[k]; ok {
					lbl += k + "=" + v + ";"
				}
			}
			return base + "{" + lbl + "}"
		}
		for _, s := range samples {
			base := baseName(s.name)
			if typ[base] != "histogram" {
				continue
			}
			key := keyOf(s)
			fam := families[key]
			if fam == nil {
				fam = &series{}
				families[key] = fam
			}
			switch {
			case strings.HasSuffix(s.name, "_bucket"):
				fam.buckets = append(fam.buckets, s)
				if s.labels["le"] == "+Inf" {
					fam.hasInf = true
					fam.infVal = s.value
				}
			case strings.HasSuffix(s.name, "_sum"):
				fam.sum = s.value
			case strings.HasSuffix(s.name, "_count"):
				fam.count = s.value
			}
		}
		if len(families) < 2 {
			t.Fatalf("seed %d: expected several histogram series, got %d", seed, len(families))
		}
		for key, fam := range families {
			if !fam.hasInf {
				t.Errorf("seed %d: %s has no +Inf bucket", seed, key)
				continue
			}
			prev := -1.0
			prevLE := ""
			for _, b := range fam.buckets {
				if b.value < prev {
					t.Errorf("seed %d: %s bucket le=%q count %g < previous le=%q count %g",
						seed, key, b.labels["le"], b.value, prevLE, prev)
				}
				prev = b.value
				prevLE = b.labels["le"]
			}
			if fam.infVal != fam.count {
				t.Errorf("seed %d: %s +Inf bucket %g != _count %g", seed, key, fam.infVal, fam.count)
			}
			if fam.count > 0 && fam.sum < 0 {
				t.Errorf("seed %d: %s negative _sum %g with %g observations", seed, key, fam.sum, fam.count)
			}
		}
	}
}

// TestHistogramQuantileBounds pins the quantile estimator: results must
// be monotone in q and bounded by the bucket holding the observations.
func TestHistogramQuantileBounds(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	h := newHistogram(stageBuckets)
	for i := 0; i < 1000; i++ {
		h.observe(rng.Float64() * 0.002) // 0..2ms
	}
	prev := -1.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.quantile(q)
		if v < prev {
			t.Fatalf("quantile(%g) = %g < quantile at lower q (%g)", q, v, prev)
		}
		if v < 0 || v > 0.0025 {
			t.Fatalf("quantile(%g) = %g outside the populated bucket range", q, v)
		}
		prev = v
	}
	if got := newHistogram(latencyBuckets).quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
}
