package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"a64fxbench/internal/telemetry"
)

// Request identity: every /v1 response carries an X-Request-ID so a
// client error report can be joined against the daemon's log line and
// flight-recorder entry. A client-supplied header is honored (gateways
// propagate their own ids); otherwise the id is a per-process random
// prefix plus an atomic counter — unique without coordination and cheap
// enough for the hot path.
var (
	reqCounter atomic.Uint64
	reqPrefix  = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
)

func newRequestID() string {
	return fmt.Sprintf("%s-%06d", reqPrefix, reqCounter.Add(1))
}

// statusWriter captures the status code a handler wrote so the
// middleware can log and record it after the fact.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// stageNames is the closed set of request-stage span names; the
// middleware folds exactly these into the per-stage histograms and the
// request log's stages object. Span names outside the set (artifact and
// job spans) stay in the span tree but are not stages.
var stageNames = []string{
	"decode", "cache-lookup", "singleflight-wait",
	"admission", "engine-execute", "render", "write",
}

// stageDurations walks a snapshot tree and sums the duration of every
// wall-clock span whose name is a stage name, wherever it nests (the
// leader's admission/engine-execute/render spans live under its
// singleflight-wait span).
func stageDurations(n *telemetry.SpanNode) map[string]time.Duration {
	out := make(map[string]time.Duration)
	var walk func(*telemetry.SpanNode)
	walk = func(n *telemetry.SpanNode) {
		if n == nil || n.Clock == string(telemetry.ClockVirtual) {
			return
		}
		for _, st := range stageNames {
			if n.Name == st {
				out[st] += time.Duration(n.DurationNS)
				break
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// withTelemetry wraps the mux with the request-identity and tracing
// middleware: every /v1 response gets an X-Request-ID; unless telemetry
// is disabled, each /v1 request also gets a root span whose children
// are the stage spans the handlers open, and on completion the tree is
// folded into the stage histograms, offered to the flight recorder and
// emitted as one structured log line.
func (s *Server) withTelemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		if s.cfg.DisableTelemetry {
			next.ServeHTTP(sw, r)
			return
		}

		start := time.Now()
		tr := telemetry.NewTrace(id, "request "+r.URL.Path)
		root := tr.Root()
		root.SetAttr("method", r.Method)
		next.ServeHTTP(sw, r.WithContext(telemetry.ContextWithSpan(r.Context(), root)))
		tr.Finish()

		tree := tr.Tree()
		status := sw.status()
		elapsed := time.Since(start)
		digest, _ := tree.Attrs["digest"].(string)
		cache, _ := tree.Attrs["cache"].(string)
		if cache == "" {
			cache = "none"
		}

		stages := stageDurations(tree)
		for st, d := range stages {
			s.met.ObserveStage(st, d)
		}
		s.rec.Observe(&telemetry.Entry{
			RequestID:  id,
			Op:         r.URL.Path,
			Digest:     digest,
			Status:     status,
			Cache:      cache,
			Start:      start,
			DurationMS: float64(elapsed) / float64(time.Millisecond),
			Counters:   s.met.CountersSnapshot(),
			Spans:      tree,
		})

		if s.logger != nil {
			stageAttrs := make([]any, 0, len(stageNames))
			for _, st := range stageNames {
				if d, ok := stages[st]; ok {
					stageAttrs = append(stageAttrs,
						slog.Float64(st, float64(d)/float64(time.Millisecond)))
				}
			}
			level := slog.LevelInfo
			if status >= 500 {
				level = slog.LevelError
			}
			s.logger.LogAttrs(r.Context(), level, "request",
				slog.String("request_id", id),
				slog.String("op", r.URL.Path),
				slog.String("method", r.Method),
				slog.Int("status", status),
				slog.String("cache", cache),
				slog.String("digest", digest),
				slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
				slog.Group("stages", stageAttrs...),
			)
		}
	})
}
