package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"a64fxbench/internal/obs"
	"a64fxbench/internal/telemetry"
)

// handleDebugSlow serves the flight recorder: GET /v1/debug/slow
// returns the retained slowest and errored requests with their full
// span trees. format=json (the default) dumps the snapshot; format=text
// renders each entry's span tree as an indented timing breakdown;
// format=chrome exports one Perfetto-loadable process per entry. The
// optional n query caps how many entries of each kind are returned.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("debug/slow: use GET"))
		return
	}
	snap := s.rec.Snapshot()
	if nq := r.URL.Query().Get("n"); nq != "" {
		n, err := strconv.Atoi(nq)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("debug/slow: bad n %q", nq))
			return
		}
		if n < len(snap.Slowest) {
			snap.Slowest = snap.Slowest[:n]
		}
		if n < len(snap.Errored) {
			snap.Errored = snap.Errored[:n]
		}
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "flight recorder: %d requests observed, %d slow retained, %d errored retained\n\n",
			snap.Total, len(snap.Slowest), len(snap.Errored))
		writeEntries(w, "slowest", snap.Slowest)
		writeEntries(w, "errored", snap.Errored)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		obs.WriteSpanChrome(w, append(snap.Slowest, snap.Errored...))
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("debug/slow: unknown format %q (want json, text or chrome)", format))
	}
}

func writeEntries(w io.Writer, title string, entries []*telemetry.Entry) {
	if len(entries) == 0 {
		return
	}
	fmt.Fprintf(w, "--- %s ---\n", title)
	for _, e := range entries {
		e.WriteText(w)
		fmt.Fprintln(w)
	}
}
