package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"a64fxbench/internal/core"
	"a64fxbench/internal/telemetry"
)

func init() {
	err := core.RegisterExtension(&core.Experiment{
		ID: "slowtest", Title: "telemetry slow extension", Kind: core.Table,
		Description: "sleeps so its request lands in the flight recorder (test only)",
		Run: func(opt core.Options) (*core.Artifact, error) {
			time.Sleep(30 * time.Millisecond)
			return &core.Artifact{
				ID: "slowtest", Title: "telemetry slow extension", Kind: core.Table,
				Columns: []string{"v"}, RowLabels: []string{"r"},
				Cells: [][]core.Cell{{{Value: 1}}},
			}, nil
		},
	})
	if err != nil {
		panic(err)
	}
}

func TestRequestIDOnEveryV1Response(t *testing.T) {
	t.Parallel()
	h := New(Config{}).Handler()
	cases := []struct {
		method, path, body string
	}{
		{"POST", "/v1/run", `{"ids":["srvtest"],"quick":true}`},
		{"POST", "/v1/run", `{"ids":`}, // 400 still carries the id
		{"GET", "/v1/run", ""},         // 405 too
		{"GET", "/v1/healthz", ""},
		{"GET", "/v1/machines", ""},
		{"GET", "/v1/debug/slow", ""},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body)))
		if id := rec.Header().Get("X-Request-ID"); id == "" {
			t.Errorf("%s %s: no X-Request-ID (status %d)", tc.method, tc.path, rec.Code)
		}
	}
	// A client-supplied id is honored verbatim.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("X-Request-ID", "client-chosen-7")
	h.ServeHTTP(rec, req)
	if id := rec.Header().Get("X-Request-ID"); id != "client-chosen-7" {
		t.Fatalf("client id not honored: got %q", id)
	}
	// Generated ids are unique across requests.
	a := post(h, "/v1/healthz", "")
	_ = a
	r1 := httptest.NewRecorder()
	h.ServeHTTP(r1, httptest.NewRequest("GET", "/v1/healthz", nil))
	r2 := httptest.NewRecorder()
	h.ServeHTTP(r2, httptest.NewRequest("GET", "/v1/healthz", nil))
	if r1.Header().Get("X-Request-ID") == r2.Header().Get("X-Request-ID") {
		t.Fatal("two requests got the same generated id")
	}
}

func TestSlowRequestInFlightRecorder(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	rec := post(h, "/v1/run", `{"ids":["slowtest"],"quick":true}`)
	if rec.Code != 200 {
		t.Fatalf("run: status %d: %s", rec.Code, rec.Body.String())
	}
	wantID := rec.Header().Get("X-Request-ID")

	dbg := httptest.NewRecorder()
	h.ServeHTTP(dbg, httptest.NewRequest("GET", "/v1/debug/slow", nil))
	if dbg.Code != 200 {
		t.Fatalf("debug/slow: status %d", dbg.Code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(dbg.Body.Bytes(), &snap); err != nil {
		t.Fatalf("debug/slow: bad JSON: %v", err)
	}
	var entry *telemetry.Entry
	for _, e := range snap.Slowest {
		if e.RequestID == wantID {
			entry = e
		}
	}
	if entry == nil {
		t.Fatalf("request %s not in flight recorder (have %d slow entries)", wantID, len(snap.Slowest))
	}
	if entry.Op != "/v1/run" || entry.Status != 200 || entry.Cache != "miss" {
		t.Fatalf("entry identity = %s/%d/%s, want /v1/run/200/miss", entry.Op, entry.Status, entry.Cache)
	}
	if entry.Digest == "" {
		t.Fatal("entry has no request digest")
	}
	if len(entry.Counters) == 0 {
		t.Fatal("entry has no counter snapshot")
	}
	if entry.Spans == nil {
		t.Fatal("entry has no span tree")
	}

	// The root's direct wall children tile the request: their durations
	// must sum to the end-to-end latency within tolerance.
	var sum time.Duration
	for _, d := range entry.Spans.Stages() {
		sum += d
	}
	total := time.Duration(entry.DurationMS * float64(time.Millisecond))
	if diff := (total - sum).Abs(); diff > total/4+5*time.Millisecond {
		t.Fatalf("stage sum %v vs end-to-end %v (diff %v) out of tolerance\nstages: %v",
			sum, total, diff, entry.Spans.Stages())
	}
	// The execution detail nests under the singleflight wait.
	for _, name := range []string{"singleflight-wait", "admission", "engine-execute", "render", "artifact:slowtest"} {
		if entry.Spans.Find(name) == nil {
			t.Errorf("span tree missing %q", name)
		}
	}

	// A repeat of the same request is a cache hit, and its recorder
	// entry says so.
	rec2 := post(h, "/v1/run", `{"ids":["slowtest"],"quick":true}`)
	if rec2.Code != 200 || rec2.Header().Get("X-Cache") != "hit" {
		t.Fatalf("repeat: status %d, X-Cache %q", rec2.Code, rec2.Header().Get("X-Cache"))
	}
	snap2 := srv.Recorder().Snapshot()
	found := false
	for _, e := range snap2.Slowest {
		if e.RequestID == rec2.Header().Get("X-Request-ID") {
			found = true
			if e.Cache != "hit" {
				t.Fatalf("cache-hit entry records cache=%q", e.Cache)
			}
			if e.Spans.Find("engine-execute") != nil {
				t.Fatal("cache-hit entry has an engine-execute span")
			}
		}
	}
	if !found {
		t.Skip("cache hit too fast to displace a slow entry (tiny slow set?)")
	}
}

func TestErroredRequestsEnterRing(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	rec := post(h, "/v1/run", `{"ids":["nope-no-such-id"]}`)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	snap := srv.Recorder().Snapshot()
	if len(snap.Errored) != 1 {
		t.Fatalf("errored ring holds %d entries, want 1", len(snap.Errored))
	}
	e := snap.Errored[0]
	if e.Status != 400 || e.RequestID != rec.Header().Get("X-Request-ID") {
		t.Fatalf("errored entry = %+v", e)
	}
	if e.Spans.Find("decode") == nil {
		t.Fatal("errored entry missing its decode span")
	}
}

func TestRequestLogLine(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	h := New(Config{Logger: logger}).Handler()
	rec := post(h, "/v1/run", `{"ids":["srvtest"],"quick":true,"format":"json"}`)
	if rec.Code != 200 {
		t.Fatalf("run: status %d", rec.Code)
	}
	line := strings.TrimSpace(buf.String())
	var got map[string]any
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("log line is not one JSON object: %v\n%s", err, line)
	}
	for _, key := range []string{"time", "level", "msg", "request_id", "op", "method", "status", "cache", "digest", "duration_ms", "stages"} {
		if _, ok := got[key]; !ok {
			t.Errorf("log line missing %q: %s", key, line)
		}
	}
	if got["msg"] != "request" || got["op"] != "/v1/run" || got["method"] != "POST" {
		t.Fatalf("log identity wrong: %s", line)
	}
	if got["status"].(float64) != 200 {
		t.Fatalf("status = %v", got["status"])
	}
	if got["request_id"] != rec.Header().Get("X-Request-ID") {
		t.Fatal("log request_id does not match the response header")
	}
	stages, ok := got["stages"].(map[string]any)
	if !ok || len(stages) == 0 {
		t.Fatalf("stages missing or empty: %s", line)
	}
	for _, st := range []string{"decode", "singleflight-wait", "engine-execute"} {
		if _, ok := stages[st]; !ok {
			t.Errorf("stages missing %q: %v", st, stages)
		}
	}
}

func TestStageMetricsAndBuildInfo(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	post(h, "/v1/run", `{"ids":["srvtest"],"quick":true}`)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		`a64fxbench_serve_build_info{version="`,
		"a64fxbench_serve_uptime_seconds",
		`a64fxbench_serve_stage_seconds_bucket{stage="decode",le="0.001"}`,
		`a64fxbench_serve_stage_seconds_bucket{stage="engine-execute",le="+Inf"}`,
		`a64fxbench_serve_stage_seconds_count{stage="write"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if got := srv.Metrics().StageCount("decode"); got == 0 {
		t.Fatal("decode stage has no observations")
	}
	qs := srv.Metrics().StageQuantiles("decode", 0.5, 0.9, 0.99)
	if qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("quantiles not monotone: %v", qs)
	}
}

func TestHeadRequests(t *testing.T) {
	t.Parallel()
	h := New(Config{}).Handler()
	for _, path := range []string{"/metrics", "/v1/healthz"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("HEAD", path, nil))
		if rec.Code != 200 {
			t.Errorf("HEAD %s: status %d", path, rec.Code)
		}
		if rec.Body.Len() != 0 {
			t.Errorf("HEAD %s: body %d bytes, want none", path, rec.Body.Len())
		}
	}
}

func TestDebugSlowFormats(t *testing.T) {
	t.Parallel()
	srv := New(Config{})
	h := srv.Handler()
	rec := post(h, "/v1/run", `{"ids":["srvtest"],"quick":true}`)
	id := rec.Header().Get("X-Request-ID")

	text := httptest.NewRecorder()
	h.ServeHTTP(text, httptest.NewRequest("GET", "/v1/debug/slow?format=text", nil))
	if text.Code != 200 || !strings.Contains(text.Body.String(), id) {
		t.Fatalf("text view (status %d) missing request id %s:\n%s", text.Code, id, text.Body.String())
	}
	if !strings.Contains(text.Body.String(), "singleflight-wait") {
		t.Fatal("text view missing span tree")
	}

	chrome := httptest.NewRecorder()
	h.ServeHTTP(chrome, httptest.NewRequest("GET", "/v1/debug/slow?format=chrome", nil))
	var doc map[string]any
	if err := json.Unmarshal(chrome.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome view is not JSON: %v", err)
	}
	events, ok := doc["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatal("chrome view has no traceEvents")
	}

	bad := httptest.NewRecorder()
	h.ServeHTTP(bad, httptest.NewRequest("GET", "/v1/debug/slow?format=xml", nil))
	if bad.Code != 400 {
		t.Fatalf("bad format: status %d, want 400", bad.Code)
	}
	capped := httptest.NewRecorder()
	h.ServeHTTP(capped, httptest.NewRequest("GET", "/v1/debug/slow?n=0", nil))
	var snap telemetry.Snapshot
	if err := json.Unmarshal(capped.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Slowest) != 0 {
		t.Fatalf("n=0 returned %d entries", len(snap.Slowest))
	}
}

func TestDisableTelemetry(t *testing.T) {
	t.Parallel()
	srv := New(Config{DisableTelemetry: true})
	h := srv.Handler()
	rec := post(h, "/v1/run", `{"ids":["srvtest"],"quick":true}`)
	if rec.Code != 200 {
		t.Fatalf("run: status %d", rec.Code)
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Fatal("disabled telemetry must still assign request ids")
	}
	if snap := srv.Recorder().Snapshot(); snap.Total != 0 {
		t.Fatalf("recorder observed %d requests with telemetry off", snap.Total)
	}
	met := httptest.NewRecorder()
	h.ServeHTTP(met, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(met.Body.String(), "a64fxbench_serve_stage_seconds") {
		t.Fatal("stage histograms populated with telemetry off")
	}
}
