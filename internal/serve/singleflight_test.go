package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupDeduplicates(t *testing.T) {
	t.Parallel()
	g := newFlightGroup()
	var runs, published int32
	block := make(chan struct{})
	fn := func(context.Context) *response {
		atomic.AddInt32(&runs, 1)
		<-block
		return &response{status: 200, body: []byte("x")}
	}
	publish := func(*response) { atomic.AddInt32(&published, 1) }

	const n = 50
	results := make([]*response, n)
	shareds := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, shared, err := g.Do(context.Background(), "k", fn, publish)
			if err != nil {
				t.Errorf("Do %d: %v", i, err)
			}
			results[i], shareds[i] = r, shared
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for atomic.LoadInt32(&runs) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("fn never started")
		}
		time.Sleep(time.Millisecond)
	}
	close(block)
	wg.Wait()

	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Fatalf("fn ran %d times for %d concurrent callers, want 1", got, n)
	}
	if got := atomic.LoadInt32(&published); got != 1 {
		t.Fatalf("publish ran %d times, want exactly 1", got)
	}
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("caller %d got a different response pointer", i)
		}
	}
}

func TestFlightGroupSequentialRunsAreIndependent(t *testing.T) {
	t.Parallel()
	g := newFlightGroup()
	var runs int32
	fn := func(context.Context) *response {
		atomic.AddInt32(&runs, 1)
		return &response{status: 200}
	}
	for i := 0; i < 3; i++ {
		if _, shared, err := g.Do(context.Background(), "k", fn, nil); err != nil || shared {
			t.Fatalf("run %d: shared=%v err=%v, want fresh flight", i, shared, err)
		}
	}
	if got := atomic.LoadInt32(&runs); got != 3 {
		t.Fatalf("fn ran %d times across sequential calls, want 3 (flights must not linger)", got)
	}
}

func TestFlightGroupLastWaiterCancelsTheRun(t *testing.T) {
	t.Parallel()
	g := newFlightGroup()
	started := make(chan struct{})
	sawCancel := make(chan struct{})
	fn := func(ctx context.Context) *response {
		close(started)
		<-ctx.Done()
		close(sawCancel)
		return &response{status: StatusClientClosedRequest}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", fn, nil)
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Do returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Do did not return after its context was cancelled")
	}
	select {
	case <-sawCancel:
		// The run context was cancelled once the last waiter left.
	case <-time.After(10 * time.Second):
		t.Fatal("the abandoned run's context was never cancelled")
	}
}

func TestFlightGroupSurvivesLeaderHangup(t *testing.T) {
	t.Parallel()
	g := newFlightGroup()
	started := make(chan struct{})
	block := make(chan struct{})
	var runs int32
	fn := func(ctx context.Context) *response {
		atomic.AddInt32(&runs, 1)
		close(started)
		select {
		case <-block:
			return &response{status: 200, body: []byte("survived")}
		case <-ctx.Done():
			return &response{status: StatusClientClosedRequest}
		}
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", fn, nil)
		leaderErr <- err
	}()
	<-started
	// A follower joins, then the leader hangs up: the run must keep
	// going because the follower still wants the answer.
	followerResp := make(chan *response, 1)
	go func() {
		r, _, _ := g.Do(context.Background(), "k", fn, nil)
		followerResp <- r
	}()
	// Let the follower actually register before the leader leaves.
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		w := 0
		if c := g.calls["k"]; c != nil {
			w = c.waiters
		}
		g.mu.Unlock()
		if w == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("leader got %v, want context.Canceled", err)
	}
	close(block)
	select {
	case r := <-followerResp:
		if r == nil || string(r.body) != "survived" {
			t.Fatalf("follower got %+v, want the completed response", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower never got the response")
	}
	if got := atomic.LoadInt32(&runs); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
}
