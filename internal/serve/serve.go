package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"a64fxbench/internal/core"
	"a64fxbench/internal/spec"
	"a64fxbench/internal/sweep"
	"a64fxbench/internal/telemetry"
)

// StatusClientClosedRequest is the (nginx-convention) status recorded
// when the client hangs up before its execution starts; there is nobody
// left to read the body, but the code keeps the metrics honest.
const StatusClientClosedRequest = 499

// Config tunes the daemon.
type Config struct {
	// Workers bounds each execution's internal sweep concurrency
	// (≤ 0 means GOMAXPROCS).
	Workers int
	// MaxConcurrent is the number of request executions allowed to run
	// simultaneously (≤ 0 means GOMAXPROCS). Cache hits and coalesced
	// singleflight joins do not consume an execution.
	MaxConcurrent int
	// QueueDepth is how many admitted executions may wait for a free
	// execution slot before new work is rejected with 429 (≤ 0 means 64).
	QueueDepth int
	// CacheEntries caps the response cache, evicting oldest-first
	// (≤ 0 means 4096).
	CacheEntries int
	// SlowRequests is how many of the slowest requests the flight
	// recorder retains for /v1/debug/slow (≤ 0 means 32).
	SlowRequests int
	// ErroredRequests is the flight recorder's ring size for requests
	// that finished with status ≥ 400 (≤ 0 means 64).
	ErroredRequests int
	// Logger, when non-nil, receives one structured line per /v1
	// request (request id, op, status, cache state, per-stage
	// durations). Nil disables request logging.
	Logger *slog.Logger
	// DisableTelemetry turns off per-request span collection, the
	// flight recorder and request logging; responses still carry
	// X-Request-ID. servebench uses it to price the span layer.
	DisableTelemetry bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	return c
}

// response is one materialized HTTP answer: what the cache stores and
// the singleflight group shares between coalesced requests.
type response struct {
	status      int
	contentType string
	retryAfter  int // seconds; 429 only
	body        []byte
}

// Server is the sweep-as-a-service daemon: five POST /v1/* operation
// endpoints over core.Request, plus /v1/healthz and /metrics. Responses
// for identical normalized requests are served from a digest-keyed
// cache; identical requests in flight are computed once (singleflight);
// executions beyond MaxConcurrent queue up to QueueDepth deep and are
// rejected with 429 + Retry-After past that.
type Server struct {
	cfg    Config
	eng    *sweep.Engine
	flight *flightGroup
	met    *Metrics
	rec    *telemetry.Recorder
	logger *slog.Logger
	mux    *http.ServeMux

	sem   chan struct{} // running executions, cap MaxConcurrent
	slots chan struct{} // running + queued, cap MaxConcurrent + QueueDepth

	cacheMu sync.Mutex
	cache   map[string]*response
	order   []string // insertion order for oldest-first eviction
}

// New builds a Server. The artifact-level sweep engine (and with it the
// run/sweep artifact cache) is shared across all requests for the
// server's lifetime.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		eng:    sweep.New(cfg.Workers),
		flight: newFlightGroup(),
		met:    newMetrics(),
		rec:    telemetry.NewRecorder(cfg.SlowRequests, cfg.ErroredRequests),
		logger: cfg.Logger,
		mux:    http.NewServeMux(),
		sem:    make(chan struct{}, cfg.MaxConcurrent),
		slots:  make(chan struct{}, cfg.MaxConcurrent+cfg.QueueDepth),
		cache:  make(map[string]*response),
	}
	s.met.queueCapacity = cfg.QueueDepth
	s.met.cachedEntries = func() int {
		s.cacheMu.Lock()
		defer s.cacheMu.Unlock()
		return len(s.cache)
	}
	for _, op := range []string{"run", "sweep", "trace", "counters", "links"} {
		s.mux.HandleFunc("/v1/"+op, s.opHandler(op))
	}
	s.mux.HandleFunc("/v1/machines", s.handleMachines)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/debug/slow", s.handleDebugSlow)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler: the mux wrapped in the
// request-identity/telemetry middleware.
func (s *Server) Handler() http.Handler { return s.withTelemetry(s.mux) }

// Recorder exposes the slow-request flight recorder (tests).
func (s *Server) Recorder() *telemetry.Recorder { return s.rec }

// Metrics exposes the server's instrumentation (tests, servebench).
func (s *Server) Metrics() *Metrics { return s.met }

// cacheGet / cachePut implement the digest-keyed response cache. Only
// 200s are stored (the caller enforces that), so errors and rejections
// are always recomputed.
func (s *Server) cacheGet(key string) (*response, bool) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	r, ok := s.cache[key]
	return r, ok
}

func (s *Server) cachePut(key string, r *response) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if _, dup := s.cache[key]; dup {
		return
	}
	for len(s.cache) >= s.cfg.CacheEntries && len(s.order) > 0 {
		delete(s.cache, s.order[0])
		s.order = s.order[1:]
	}
	s.cache[key] = r
	s.order = append(s.order, key)
}

// opHandler wraps one operation endpoint with latency/status metrics.
func (s *Server) opHandler(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		code := s.serveOp(op, w, r)
		s.met.Observe("/v1/"+op, code, time.Since(start))
	}
}

// serveOp is the request path every operation endpoint shares:
// strict-decode → validate arity and format → response cache →
// singleflight → bounded-queue execution. Each stage runs under its own
// span (a child of the middleware's request root); stage names tile the
// request end to end — decode, cache-lookup, singleflight-wait, write —
// so their durations sum to the logged latency, with the leader's
// admission/engine-execute/render spans nested inside the wait.
func (s *Server) serveOp(op string, w http.ResponseWriter, r *http.Request) int {
	span := telemetry.SpanFrom(r.Context())
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		return writeError(w, http.StatusMethodNotAllowed,
			fmt.Errorf("%s: use POST with a JSON request body", op))
	}
	dec := span.Child("decode")
	req, err := core.DecodeRequest(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = checkArity(op, req)
	}
	if err == nil {
		err = CheckFormat(op, req.Format)
	}
	dec.Fail(err)
	dec.End()
	if err != nil {
		return writeError(w, http.StatusBadRequest, err)
	}

	key := op + ":" + req.Digest()
	span.SetAttr("digest", req.Digest())
	lookup := span.Child("cache-lookup")
	resp, ok := s.cacheGet(key)
	lookup.End()
	if ok {
		s.met.CacheHit()
		span.SetAttr("cache", "hit")
		return s.writeResponseSpan(span, w, resp, "hit")
	}
	s.met.CacheMiss()

	wait := span.Child("singleflight-wait")
	resp, shared, err := s.flight.Do(r.Context(), key,
		func(ctx context.Context) *response {
			// The leader runs detached from any one HTTP request; its
			// admission/execute/render spans nest under the initiating
			// request's wait span (safe even after that trace finished —
			// trees are snapshots and the trace is lock-protected).
			return s.execute(telemetry.ContextWithSpan(ctx, wait), op, req)
		},
		func(resp *response) {
			if resp.status == http.StatusOK {
				s.cachePut(key, resp)
			}
		})
	wait.End()
	if err != nil {
		// The client went away while waiting; nothing to write.
		wait.Fail(err)
		span.SetAttr("cache", "abandoned")
		return StatusClientClosedRequest
	}
	xc := "miss"
	if shared {
		s.met.Coalesced()
		xc = "coalesced"
	}
	span.SetAttr("cache", xc)
	return s.writeResponseSpan(span, w, resp, xc)
}

// writeResponseSpan is writeResponse under a "write" stage span.
func (s *Server) writeResponseSpan(span *telemetry.Span, w http.ResponseWriter, resp *response, xcache string) int {
	ws := span.Child("write")
	defer ws.End()
	return writeResponse(w, resp, xcache)
}

// execute runs one operation under admission control. The slots channel
// is the total budget (running + queued): failing to take a slot
// without blocking is the backpressure signal. The sem channel is the
// execution budget; waiting on it is the queue, and the wait honors the
// flight context so abandoned work is torn down.
func (s *Server) execute(ctx context.Context, op string, req core.Request) *response {
	span := telemetry.SpanFrom(ctx)
	adm := span.Child("admission")
	select {
	case s.slots <- struct{}{}:
	default:
		adm.SetAttr("rejected", true)
		adm.End()
		// Full house: every execution slot busy and the queue at
		// capacity. Retry-After is the queue drain horizon, crudely:
		// one second per queued execution per worker, at least 1.
		ra := 1 + s.cfg.QueueDepth/s.cfg.MaxConcurrent
		return &response{
			status:      http.StatusTooManyRequests,
			contentType: "application/json",
			retryAfter:  ra,
			body:        errBody(fmt.Errorf("%s: server saturated (%d running, %d queued); retry later", op, s.cfg.MaxConcurrent, s.cfg.QueueDepth)),
		}
	}
	defer func() { <-s.slots }()

	s.met.AddQueued(1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.AddQueued(-1)
		adm.Fail(ctx.Err())
		adm.End()
		return &response{status: StatusClientClosedRequest, contentType: "application/json",
			body: errBody(fmt.Errorf("%s: abandoned while queued", op))}
	}
	s.met.AddQueued(-1)
	adm.End()
	s.met.AddInflight(1)
	defer func() {
		<-s.sem
		s.met.AddInflight(-1)
	}()

	var buf bytes.Buffer
	var err error
	exec := span.Child("engine-execute")
	execCtx := telemetry.ContextWithSpan(ctx, exec)
	switch op {
	case "run", "sweep":
		var results []sweep.Result
		results, err = RunArtifacts(execCtx, s.eng, req)
		if err == nil {
			err = sweep.FirstError(results)
		}
		exec.Fail(err)
		exec.End()
		if err == nil {
			render := span.Child("render")
			err = WriteArtifacts(&buf, results, req)
			render.Fail(err)
			render.End()
		}
	case "trace":
		err = WriteTrace(execCtx, &buf, req)
		exec.Fail(err)
		exec.End()
	case "links":
		err = WriteLinks(execCtx, &buf, req)
		exec.Fail(err)
		exec.End()
	case "counters":
		err = WriteCounters(execCtx, &buf, req, s.cfg.Workers)
		exec.Fail(err)
		exec.End()
	default:
		err = fmt.Errorf("unknown operation %q", op)
		exec.Fail(err)
		exec.End()
	}
	if err != nil {
		if ctx.Err() != nil {
			return &response{status: StatusClientClosedRequest, contentType: "application/json",
				body: errBody(ctx.Err())}
		}
		return &response{status: http.StatusInternalServerError,
			contentType: "application/json", body: errBody(err)}
	}
	return &response{status: http.StatusOK,
		contentType: contentTypeFor(op, req.Format), body: buf.Bytes()}
}

// checkArity enforces per-operation id counts: run, trace and links
// address exactly one experiment; sweep and counters take any number.
func checkArity(op string, req core.Request) error {
	switch op {
	case "run", "trace", "links":
		if len(req.IDs) != 1 {
			return fmt.Errorf("%s: exactly one experiment id required, got %d", op, len(req.IDs))
		}
	}
	return nil
}

// opFormats lists the valid formats per operation (first is the default).
var opFormats = map[string][]string{
	"run":      {"text", "chart", "json", "csv"},
	"sweep":    {"text", "chart", "json", "csv"},
	"trace":    {"text", "chrome", "json"},
	"links":    {"text", "json"},
	"counters": {"text", "json", "csv"},
}

// CheckFormat rejects formats the operation cannot render, so the error
// surfaces as a 400 before any work is queued.
func CheckFormat(op, format string) error {
	for _, f := range opFormats[op] {
		if format == f || format == "" {
			return nil
		}
	}
	return fmt.Errorf("%s: unknown format %q (want %v)", op, format, opFormats[op])
}

// contentTypeFor maps an operation+format to the response media type.
func contentTypeFor(op, format string) string {
	switch format {
	case "json", "chrome":
		return "application/json"
	case "csv":
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// writeResponse emits a materialized response with its cache-state
// header and returns the status code for metrics.
func writeResponse(w http.ResponseWriter, resp *response, xcache string) int {
	w.Header().Set("Content-Type", resp.contentType)
	w.Header().Set("X-Cache", xcache)
	if resp.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", resp.retryAfter))
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
	return resp.status
}

// writeError emits a JSON error body and returns the status code.
func writeError(w http.ResponseWriter, status int, err error) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(errBody(err))
	return status
}

// errBody is the uniform JSON error envelope.
func errBody(err error) []byte {
	b, _ := json.Marshal(map[string]string{"error": err.Error()})
	return append(b, '\n')
}

// handleMachines serves the machine-spec registry: GET /v1/machines
// lists every registered machine (embedded, -specs loads, and any spec
// a request registered by value); GET /v1/machines?name=X returns X's
// resolved canonical spec, which round-trips through the decoder — a
// client can fetch a stock machine, patch it, and post the result back
// inline in a /v1/run request.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	code := s.serveMachines(w, r)
	s.met.Observe("/v1/machines", code, time.Since(start))
}

func (s *Server) serveMachines(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		return writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("machines: use GET"))
	}
	if name := r.URL.Query().Get("name"); name != "" {
		m, ok := spec.Get(name)
		if !ok {
			return writeError(w, http.StatusNotFound,
				fmt.Errorf("machines: unknown machine %q (valid: %s)", name, strings.Join(spec.Names(), " ")))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(append(m.Spec.Canonical(), '\n'))
		return http.StatusOK
	}
	type entry struct {
		Name         string `json:"name"`
		Description  string `json:"description,omitempty"`
		Source       string `json:"source"`
		Digest       string `json:"digest"`
		CoresPerNode int    `json:"cores_per_node"`
		MaxNodes     int    `json:"max_nodes"`
	}
	var out []entry
	for _, m := range spec.Machines() {
		out = append(out, entry{
			Name:         m.Name(),
			Description:  m.Spec.Description,
			Source:       spec.Default.Source(m.Name()),
			Digest:       m.Digest(),
			CoresPerNode: m.CoresPerNode(),
			MaxNodes:     m.Spec.MaxNodes,
		})
	}
	body, err := json.Marshal(map[string]any{"machines": out})
	if err != nil {
		return writeError(w, http.StatusInternalServerError, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(body, '\n'))
	return http.StatusOK
}

// handleHealthz reports liveness plus the registry sizes, so a probe
// also verifies the experiment tables linked in.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		code := writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("healthz: use GET"))
		s.met.Observe("/v1/healthz", code, time.Since(start))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(map[string]any{
		"status":      "ok",
		"experiments": len(core.List()),
		"extensions":  len(core.Extensions()),
		"machines":    len(spec.Names()),
		"uptime_s":    time.Since(s.met.started).Seconds(),
	})
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodGet {
		w.Write(append(body, '\n'))
	}
	s.met.Observe("/v1/healthz", http.StatusOK, time.Since(start))
}

// handleMetrics renders the Prometheus text exposition. HEAD answers
// with the headers only, so scrapers and probes can check liveness
// without paying for the body.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("metrics: use GET"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		w.WriteHeader(http.StatusOK)
		return
	}
	s.met.WritePrometheus(w)
}
