package serve

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the endpoint histograms' bucket upper bounds in
// seconds, the classic Prometheus default ladder.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// stageBuckets extends the ladder down to 10µs for the per-stage
// histograms: request stages on the cached path (decode, cache-lookup,
// write) complete in microseconds, and a millisecond-floor ladder would
// flatten them all into one bucket.
var stageBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram over the given sorted
// upper bounds plus an implicit +Inf overflow bucket.
type histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; the last is +Inf
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket that holds the target rank — the same estimate a
// Prometheus histogram_quantile() would produce from the exposition.
// Observations in the +Inf bucket clamp to the largest finite bound.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		frac := (target - float64(cum-c)) / float64(c)
		return lo + (h.bounds[i]-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// escapeLabel escapes a Prometheus label value: backslash, double quote
// and newline, exactly the three escapes the text exposition defines
// (fmt's %q would also escape characters Prometheus wants verbatim).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Metrics is the daemon's self-instrumentation: request counts by
// endpoint and status code, response-cache and singleflight hit
// counters, queue/inflight gauges and per-endpoint latency histograms.
// All methods are safe for concurrent use. WritePrometheus renders the
// whole set in the Prometheus text exposition format, hand-rolled
// because the module takes no dependencies.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]map[int]uint64 // endpoint → code → count
	latency   map[string]*histogram     // endpoint → histogram
	stages    map[string]*histogram     // span stage → histogram
	cacheHits uint64
	cacheMiss uint64
	coalesced uint64
	rejected  uint64
	inflight  int64
	queued    int64

	// gauges sampled at scrape time, installed by the server
	queueCapacity int
	cachedEntries func() int
	started       time.Time

	// build identity, resolved once at construction
	buildVersion string
	buildGo      string
}

func newMetrics() *Metrics {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	return &Metrics{
		requests:     make(map[string]map[int]uint64),
		latency:      make(map[string]*histogram),
		stages:       make(map[string]*histogram),
		started:      time.Now(),
		buildVersion: version,
		buildGo:      runtime.Version(),
	}
}

// Observe records one completed request.
func (m *Metrics) Observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h := m.latency[endpoint]
	if h == nil {
		h = newHistogram(latencyBuckets)
		m.latency[endpoint] = h
	}
	h.observe(d.Seconds())
	if code == 429 {
		m.rejected++
	}
}

// ObserveStage records one request stage's duration from span
// telemetry (the stage label is the span name: decode, cache-lookup,
// singleflight-wait, admission, engine-execute, render, write).
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.stages[stage]
	if h == nil {
		h = newHistogram(stageBuckets)
		m.stages[stage] = h
	}
	h.observe(d.Seconds())
}

// StageQuantiles estimates the given quantiles (0..1) of a stage's
// latency in seconds, interpolated from the histogram buckets; all
// zeros when the stage has no observations. servebench uses it for its
// per-stage p50/p90/p99 report.
func (m *Metrics) StageQuantiles(stage string, qs ...float64) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]float64, len(qs))
	h := m.stages[stage]
	if h == nil {
		return out
	}
	for i, q := range qs {
		out[i] = h.quantile(q)
	}
	return out
}

// StageCount returns the number of observations a stage's histogram
// holds.
func (m *Metrics) StageCount(stage string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.stages[stage]; h != nil {
		return h.total
	}
	return 0
}

// CountersSnapshot captures the daemon's counter/gauge state as a flat
// map — what the flight recorder stamps on each retained request so a
// slow entry also shows the server's load at the time.
func (m *Metrics) CountersSnapshot() map[string]float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return map[string]float64{
		"cache_hits":   float64(m.cacheHits),
		"cache_misses": float64(m.cacheMiss),
		"coalesced":    float64(m.coalesced),
		"rejected":     float64(m.rejected),
		"inflight":     float64(m.inflight),
		"queued":       float64(m.queued),
	}
}

// CacheHit / CacheMiss / Coalesced record response-cache and
// singleflight outcomes for cacheable endpoints.
func (m *Metrics) CacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) CacheMiss() { m.mu.Lock(); m.cacheMiss++; m.mu.Unlock() }
func (m *Metrics) Coalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

// AddInflight / AddQueued move the execution gauges.
func (m *Metrics) AddInflight(d int64) { m.mu.Lock(); m.inflight += d; m.mu.Unlock() }
func (m *Metrics) AddQueued(d int64)   { m.mu.Lock(); m.queued += d; m.mu.Unlock() }

// Inflight returns the number of executions currently running.
func (m *Metrics) Inflight() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.inflight }

// Queued returns the number of executions waiting for a slot.
func (m *Metrics) Queued() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.queued }

// CacheHitRatio returns hits / (hits + misses), 0 when nothing has been
// looked up yet. Singleflight joins count as neither: they are their
// own metric.
func (m *Metrics) CacheHitRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.cacheHits + m.cacheMiss
	if total == 0 {
		return 0
	}
	return float64(m.cacheHits) / float64(total)
}

// Requests returns the total request count for an endpoint ("" sums all
// endpoints), optionally filtered to one status code (0 sums all).
func (m *Metrics) Requests(endpoint string, code int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for ep, byCode := range m.requests {
		if endpoint != "" && ep != endpoint {
			continue
		}
		for c, v := range byCode {
			if code != 0 && c != code {
				continue
			}
			n += v
		}
	}
	return n
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	p := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	p("# HELP a64fxbench_serve_requests_total Completed HTTP requests by endpoint and status code.\n")
	p("# TYPE a64fxbench_serve_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p("a64fxbench_serve_requests_total{endpoint=\"%s\",code=\"%d\"} %d\n", escapeLabel(ep), c, m.requests[ep][c])
		}
	}

	p("# HELP a64fxbench_serve_build_info Build metadata; the value is always 1.\n")
	p("# TYPE a64fxbench_serve_build_info gauge\n")
	p("a64fxbench_serve_build_info{version=\"%s\",go=\"%s\"} 1\n",
		escapeLabel(m.buildVersion), escapeLabel(m.buildGo))

	p("# HELP a64fxbench_serve_cache_hits_total Response-cache hits on cacheable endpoints.\n")
	p("# TYPE a64fxbench_serve_cache_hits_total counter\n")
	p("a64fxbench_serve_cache_hits_total %d\n", m.cacheHits)
	p("# HELP a64fxbench_serve_cache_misses_total Response-cache misses on cacheable endpoints.\n")
	p("# TYPE a64fxbench_serve_cache_misses_total counter\n")
	p("a64fxbench_serve_cache_misses_total %d\n", m.cacheMiss)
	ratio := 0.0
	if t := m.cacheHits + m.cacheMiss; t > 0 {
		ratio = float64(m.cacheHits) / float64(t)
	}
	p("# HELP a64fxbench_serve_cache_hit_ratio Hits over lookups since start.\n")
	p("# TYPE a64fxbench_serve_cache_hit_ratio gauge\n")
	p("a64fxbench_serve_cache_hit_ratio %g\n", ratio)
	p("# HELP a64fxbench_serve_flight_coalesced_total Requests that joined an identical in-flight execution.\n")
	p("# TYPE a64fxbench_serve_flight_coalesced_total counter\n")
	p("a64fxbench_serve_flight_coalesced_total %d\n", m.coalesced)
	p("# HELP a64fxbench_serve_rejected_total Requests rejected with 429 by queue backpressure.\n")
	p("# TYPE a64fxbench_serve_rejected_total counter\n")
	p("a64fxbench_serve_rejected_total %d\n", m.rejected)

	p("# HELP a64fxbench_serve_inflight Executions currently running.\n")
	p("# TYPE a64fxbench_serve_inflight gauge\n")
	p("a64fxbench_serve_inflight %d\n", m.inflight)
	p("# HELP a64fxbench_serve_queue_depth Executions admitted and waiting for a worker slot.\n")
	p("# TYPE a64fxbench_serve_queue_depth gauge\n")
	p("a64fxbench_serve_queue_depth %d\n", m.queued)
	p("# HELP a64fxbench_serve_queue_capacity Maximum queued executions before 429.\n")
	p("# TYPE a64fxbench_serve_queue_capacity gauge\n")
	p("a64fxbench_serve_queue_capacity %d\n", m.queueCapacity)
	if m.cachedEntries != nil {
		p("# HELP a64fxbench_serve_cached_responses Entries in the response cache.\n")
		p("# TYPE a64fxbench_serve_cached_responses gauge\n")
		p("a64fxbench_serve_cached_responses %d\n", m.cachedEntries())
	}
	p("# HELP a64fxbench_serve_uptime_seconds Seconds since the server started.\n")
	p("# TYPE a64fxbench_serve_uptime_seconds gauge\n")
	p("a64fxbench_serve_uptime_seconds %g\n", time.Since(m.started).Seconds())

	p("# HELP a64fxbench_serve_request_seconds Request latency by endpoint.\n")
	p("# TYPE a64fxbench_serve_request_seconds histogram\n")
	eps := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		h := m.latency[ep]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			p("a64fxbench_serve_request_seconds_bucket{endpoint=\"%s\",le=\"%g\"} %d\n", escapeLabel(ep), ub, cum)
		}
		p("a64fxbench_serve_request_seconds_bucket{endpoint=\"%s\",le=\"+Inf\"} %d\n", escapeLabel(ep), h.total)
		p("a64fxbench_serve_request_seconds_sum{endpoint=\"%s\"} %g\n", escapeLabel(ep), h.sum)
		p("a64fxbench_serve_request_seconds_count{endpoint=\"%s\"} %d\n", escapeLabel(ep), h.total)
	}

	if len(m.stages) > 0 {
		p("# HELP a64fxbench_serve_stage_seconds Per-stage request latency from span telemetry.\n")
		p("# TYPE a64fxbench_serve_stage_seconds histogram\n")
		stages := make([]string, 0, len(m.stages))
		for st := range m.stages {
			stages = append(stages, st)
		}
		sort.Strings(stages)
		for _, st := range stages {
			h := m.stages[st]
			var cum uint64
			for i, ub := range h.bounds {
				cum += h.counts[i]
				p("a64fxbench_serve_stage_seconds_bucket{stage=\"%s\",le=\"%g\"} %d\n", escapeLabel(st), ub, cum)
			}
			p("a64fxbench_serve_stage_seconds_bucket{stage=\"%s\",le=\"+Inf\"} %d\n", escapeLabel(st), h.total)
			p("a64fxbench_serve_stage_seconds_sum{stage=\"%s\"} %g\n", escapeLabel(st), h.sum)
			p("a64fxbench_serve_stage_seconds_count{stage=\"%s\"} %d\n", escapeLabel(st), h.total)
		}
	}

	_, err := w.Write(b)
	return err
}
