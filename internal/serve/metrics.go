package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the fixed histogram bucket upper bounds in seconds,
// the classic Prometheus default ladder.
var latencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numBuckets is len(latencyBuckets) plus the +Inf overflow bucket.
const numBuckets = 14

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [numBuckets]uint64 // last bucket is +Inf
	sum    float64
	total  uint64
}

func (h *histogram) observe(seconds float64) {
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	h.counts[i]++
	h.sum += seconds
	h.total++
}

// Metrics is the daemon's self-instrumentation: request counts by
// endpoint and status code, response-cache and singleflight hit
// counters, queue/inflight gauges and per-endpoint latency histograms.
// All methods are safe for concurrent use. WritePrometheus renders the
// whole set in the Prometheus text exposition format, hand-rolled
// because the module takes no dependencies.
type Metrics struct {
	mu        sync.Mutex
	requests  map[string]map[int]uint64 // endpoint → code → count
	latency   map[string]*histogram     // endpoint → histogram
	cacheHits uint64
	cacheMiss uint64
	coalesced uint64
	rejected  uint64
	inflight  int64
	queued    int64

	// gauges sampled at scrape time, installed by the server
	queueCapacity int
	cachedEntries func() int
	started       time.Time
}

func newMetrics() *Metrics {
	return &Metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*histogram),
		started:  time.Now(),
	}
}

// Observe records one completed request.
func (m *Metrics) Observe(endpoint string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byCode := m.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	h := m.latency[endpoint]
	if h == nil {
		h = &histogram{}
		m.latency[endpoint] = h
	}
	h.observe(d.Seconds())
	if code == 429 {
		m.rejected++
	}
}

// CacheHit / CacheMiss / Coalesced record response-cache and
// singleflight outcomes for cacheable endpoints.
func (m *Metrics) CacheHit()  { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }
func (m *Metrics) CacheMiss() { m.mu.Lock(); m.cacheMiss++; m.mu.Unlock() }
func (m *Metrics) Coalesced() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }

// AddInflight / AddQueued move the execution gauges.
func (m *Metrics) AddInflight(d int64) { m.mu.Lock(); m.inflight += d; m.mu.Unlock() }
func (m *Metrics) AddQueued(d int64)   { m.mu.Lock(); m.queued += d; m.mu.Unlock() }

// Inflight returns the number of executions currently running.
func (m *Metrics) Inflight() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.inflight }

// Queued returns the number of executions waiting for a slot.
func (m *Metrics) Queued() int64 { m.mu.Lock(); defer m.mu.Unlock(); return m.queued }

// CacheHitRatio returns hits / (hits + misses), 0 when nothing has been
// looked up yet. Singleflight joins count as neither: they are their
// own metric.
func (m *Metrics) CacheHitRatio() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.cacheHits + m.cacheMiss
	if total == 0 {
		return 0
	}
	return float64(m.cacheHits) / float64(total)
}

// Requests returns the total request count for an endpoint ("" sums all
// endpoints), optionally filtered to one status code (0 sums all).
func (m *Metrics) Requests(endpoint string, code int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for ep, byCode := range m.requests {
		if endpoint != "" && ep != endpoint {
			continue
		}
		for c, v := range byCode {
			if code != 0 && c != code {
				continue
			}
			n += v
		}
	}
	return n
}

// WritePrometheus renders every metric in the Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	p := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}

	p("# HELP a64fxbench_serve_requests_total Completed HTTP requests by endpoint and status code.\n")
	p("# TYPE a64fxbench_serve_requests_total counter\n")
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for c := range m.requests[ep] {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			p("a64fxbench_serve_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, m.requests[ep][c])
		}
	}

	p("# HELP a64fxbench_serve_cache_hits_total Response-cache hits on cacheable endpoints.\n")
	p("# TYPE a64fxbench_serve_cache_hits_total counter\n")
	p("a64fxbench_serve_cache_hits_total %d\n", m.cacheHits)
	p("# HELP a64fxbench_serve_cache_misses_total Response-cache misses on cacheable endpoints.\n")
	p("# TYPE a64fxbench_serve_cache_misses_total counter\n")
	p("a64fxbench_serve_cache_misses_total %d\n", m.cacheMiss)
	ratio := 0.0
	if t := m.cacheHits + m.cacheMiss; t > 0 {
		ratio = float64(m.cacheHits) / float64(t)
	}
	p("# HELP a64fxbench_serve_cache_hit_ratio Hits over lookups since start.\n")
	p("# TYPE a64fxbench_serve_cache_hit_ratio gauge\n")
	p("a64fxbench_serve_cache_hit_ratio %g\n", ratio)
	p("# HELP a64fxbench_serve_flight_coalesced_total Requests that joined an identical in-flight execution.\n")
	p("# TYPE a64fxbench_serve_flight_coalesced_total counter\n")
	p("a64fxbench_serve_flight_coalesced_total %d\n", m.coalesced)
	p("# HELP a64fxbench_serve_rejected_total Requests rejected with 429 by queue backpressure.\n")
	p("# TYPE a64fxbench_serve_rejected_total counter\n")
	p("a64fxbench_serve_rejected_total %d\n", m.rejected)

	p("# HELP a64fxbench_serve_inflight Executions currently running.\n")
	p("# TYPE a64fxbench_serve_inflight gauge\n")
	p("a64fxbench_serve_inflight %d\n", m.inflight)
	p("# HELP a64fxbench_serve_queue_depth Executions admitted and waiting for a worker slot.\n")
	p("# TYPE a64fxbench_serve_queue_depth gauge\n")
	p("a64fxbench_serve_queue_depth %d\n", m.queued)
	p("# HELP a64fxbench_serve_queue_capacity Maximum queued executions before 429.\n")
	p("# TYPE a64fxbench_serve_queue_capacity gauge\n")
	p("a64fxbench_serve_queue_capacity %d\n", m.queueCapacity)
	if m.cachedEntries != nil {
		p("# HELP a64fxbench_serve_cached_responses Entries in the response cache.\n")
		p("# TYPE a64fxbench_serve_cached_responses gauge\n")
		p("a64fxbench_serve_cached_responses %d\n", m.cachedEntries())
	}
	p("# HELP a64fxbench_serve_uptime_seconds Seconds since the server started.\n")
	p("# TYPE a64fxbench_serve_uptime_seconds gauge\n")
	p("a64fxbench_serve_uptime_seconds %g\n", time.Since(m.started).Seconds())

	p("# HELP a64fxbench_serve_request_seconds Request latency by endpoint.\n")
	p("# TYPE a64fxbench_serve_request_seconds histogram\n")
	eps := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		h := m.latency[ep]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			p("a64fxbench_serve_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		p("a64fxbench_serve_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.total)
		p("a64fxbench_serve_request_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		p("a64fxbench_serve_request_seconds_count{endpoint=%q} %d\n", ep, h.total)
	}

	_, err := w.Write(b)
	return err
}
