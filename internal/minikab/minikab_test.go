package minikab

import (
	"math"
	"strings"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/sparse"
)

// --- Numerical validation ---

func TestCGConverges(t *testing.T) {
	t.Parallel()
	spec := sparse.StructuralSpec{NX: 6, NY: 6, NZ: 6, DofPerNode: 3}
	stats, err := VerifySolve(spec, 500, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("CG did not converge: relres %v after %d iters",
			stats.RelativeResidual, stats.Iterations)
	}
}

func TestCGJacobiHelps(t *testing.T) {
	t.Parallel()
	spec := sparse.StructuralSpec{NX: 5, NY: 5, NZ: 5, DofPerNode: 2}
	a, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	_, plain := CG(a, b, 300, 1e-10, false)
	_, jacobi := CG(a, b, 300, 1e-10, true)
	if !jacobi.Converged {
		t.Fatal("Jacobi CG did not converge")
	}
	if plain.Converged && jacobi.Iterations > plain.Iterations+10 {
		t.Errorf("Jacobi (%d iters) much worse than plain (%d)",
			jacobi.Iterations, plain.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	t.Parallel()
	a, _ := sparse.RandomSPD(20, 4, 1)
	x, stats := CG(a, make([]float64, 20), 10, 1e-10, false)
	if !stats.Converged {
		t.Error("zero RHS should converge")
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero RHS should give zero solution")
		}
	}
}

// --- Metered benchmark ---

// TestTableVSingleCore pins the single-core runtimes to the paper's
// Table V within 5%.
func TestTableVSingleCore(t *testing.T) {
	t.Parallel()
	paper := map[arch.ID]float64{
		arch.A64FX:   1182,
		arch.NGIO:    1269,
		arch.Fulhame: 2415,
	}
	for id, want := range paper {
		res, err := Run(Config{System: arch.MustGet(id), Nodes: 1, RanksPerNode: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rel := math.Abs(res.Seconds-want) / want; rel > 0.05 {
			t.Errorf("%s single-core = %.0f s, paper %.0f (%.1f%% off)",
				id, res.Seconds, want, rel*100)
		}
	}
}

// TestTableVOrdering pins the paper's headline: A64FX 7%-ish faster than
// NGIO and just over 2× faster than Fulhame on one core.
func TestTableVOrdering(t *testing.T) {
	t.Parallel()
	a, _ := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, RanksPerNode: 1})
	n, _ := Run(Config{System: arch.MustGet(arch.NGIO), Nodes: 1, RanksPerNode: 1})
	f, _ := Run(Config{System: arch.MustGet(arch.Fulhame), Nodes: 1, RanksPerNode: 1})
	if !(a.Seconds < n.Seconds && n.Seconds < f.Seconds) {
		t.Fatalf("ordering wrong: %v %v %v", a.Seconds, n.Seconds, f.Seconds)
	}
	if ratio := f.Seconds / a.Seconds; ratio < 1.8 || ratio > 2.4 {
		t.Errorf("Fulhame/A64FX ratio = %.2f, paper says ≈2.04", ratio)
	}
	if ratio := n.Seconds / a.Seconds; ratio < 1.02 || ratio > 1.2 {
		t.Errorf("NGIO/A64FX ratio = %.2f, paper says ≈1.07", ratio)
	}
}

// TestFigure1MemoryConstraint: plain MPI cannot fully populate two A64FX
// nodes (the largest feasible plain-MPI run is 48 processes).
func TestFigure1MemoryConstraint(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	full := Config{System: sys, Nodes: 2, RanksPerNode: 48}
	if FitsMemory(full) {
		t.Error("96 plain-MPI ranks should not fit 2 A64FX nodes")
	}
	if _, err := Run(full); err == nil || !strings.Contains(err.Error(), "node has") {
		t.Errorf("expected memory error, got %v", err)
	}
	half := Config{System: sys, Nodes: 2, RanksPerNode: 24}
	if !FitsMemory(half) {
		t.Error("48 plain-MPI ranks should fit 2 A64FX nodes")
	}
	hybrid := Config{System: sys, Nodes: 2, RanksPerNode: 4, ThreadsPerRank: 12}
	if !FitsMemory(hybrid) {
		t.Error("4×12 hybrid should fit easily")
	}
}

// TestFigure1FullCoresBeatUnderpopulated: using all 96 cores (hybrid)
// beats the memory-limited 48-process plain MPI run.
func TestFigure1FullCoresBeatUnderpopulated(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	iter := 50
	plain, err := Run(Config{System: sys, Nodes: 2, RanksPerNode: 24, Iterations: iter})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Run(Config{System: sys, Nodes: 2, RanksPerNode: 4, ThreadsPerRank: 12, Iterations: iter})
	if err != nil {
		t.Fatal(err)
	}
	if best.Seconds >= plain.Seconds {
		t.Errorf("4×12 (%v s) should beat 24×1 (%v s)", best.Seconds, plain.Seconds)
	}
}

// TestFigure1HybridOrdering: among full-96-core configurations, fewer
// ranks with more threads is never slower (collective participation
// shrinks), making 4×12 — one rank per CMG — the best option, as the
// paper finds.
func TestFigure1HybridOrdering(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	iter := 50
	var prev float64
	for i, c := range []struct{ rpn, tpr int }{{24, 2}, {16, 3}, {8, 6}, {4, 12}} {
		res, err := Run(Config{System: sys, Nodes: 2, RanksPerNode: c.rpn, ThreadsPerRank: c.tpr, Iterations: iter})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res.Seconds > prev*1.001 {
			t.Errorf("config %dx%d (%.4f s) slower than previous (%.4f s)",
				c.rpn, c.tpr, res.Seconds, prev)
		}
		prev = res.Seconds
	}
}

// TestFigure2Shapes: A64FX outperforms Fulhame per node across the
// figure's range, while Fulhame's parallel efficiency is at least as good.
func TestFigure2Shapes(t *testing.T) {
	t.Parallel()
	iter := 100
	a2cfg := BestA64FXConfig(2)
	a2cfg.Iterations = iter
	a8cfg := BestA64FXConfig(8)
	a8cfg.Iterations = iter
	f1cfg := FulhameConfig(1)
	f1cfg.Iterations = iter
	f6cfg := FulhameConfig(6)
	f6cfg.Iterations = iter
	a2, err := Run(a2cfg)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := Run(a8cfg)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Run(f1cfg)
	if err != nil {
		t.Fatal(err)
	}
	f6, err := Run(f6cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node-for-node comparison at overlapping scales (§VI.A: "even
	// comparing node to node performance the A64FX is still
	// significantly faster").
	perNodeA := a2.Seconds * 2
	perNodeF := f1.Seconds
	if perNodeA*1.5 > perNodeF {
		t.Errorf("A64FX per-node advantage too small: %v vs %v", perNodeA, perNodeF)
	}
	// Fulhame parallel efficiency ≥ A64FX parallel efficiency.
	peA := a2.Seconds / a8.Seconds / 4
	peF := f1.Seconds / f6.Seconds / 6
	if peF < peA-0.02 {
		t.Errorf("Fulhame PE (%.3f) should not trail A64FX PE (%.3f)", peF, peA)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
	sys := arch.MustGet(arch.A64FX)
	if _, err := Run(Config{System: sys, RanksPerNode: 48, ThreadsPerRank: 2}); err == nil {
		t.Error("oversubscription should fail")
	}
}

func TestBenchmark1Constants(t *testing.T) {
	t.Parallel()
	m := Benchmark1()
	if m.Rows != 9573984 || m.NNZ != 696096138 {
		t.Errorf("Benchmark1 constants drifted: %+v", m)
	}
	if m.HaloDof != 147*147*3 {
		t.Errorf("halo dof = %d", m.HaloDof)
	}
}

func TestMemoryModelMonotonicity(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	// More ranks per node always needs more memory (fixed state
	// dominates the shrinking share).
	prev := MemoryPerNode(Config{System: sys, Nodes: 2, RanksPerNode: 1})
	for rpn := 2; rpn <= 48; rpn *= 2 {
		cur := MemoryPerNode(Config{System: sys, Nodes: 2, RanksPerNode: rpn})
		if cur <= prev {
			t.Errorf("memory not increasing at rpn=%d: %v vs %v", rpn, cur, prev)
		}
		prev = cur
	}
}
