// Package minikab implements the Mini Krylov ASiMoV Benchmark: a parallel
// conjugate-gradient solver over a large sparse structural matrix,
// supporting plain-MPI and mixed MPI+OpenMP execution configurations —
// the mini-app behind the paper's Table V (single-core runtimes),
// Figure 1 (process/thread configuration sweep on two A64FX nodes) and
// Figure 2 (strong scaling against Fulhame).
//
// The real CG algorithm is implemented and validated on reduced-scale
// structural matrices (sparse.StructuralSpec); benchmark runs meter the
// full Benchmark1 problem (9,573,984 dof, 696,096,138 non-zeros) through
// the simulated machine exactly as DESIGN.md §1 describes.
package minikab

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/sparse"
)

// CGStats reports a conjugate-gradient solve outcome.
type CGStats struct {
	Iterations       int
	RelativeResidual float64
	Converged        bool
}

// CG solves A·x = b with (optionally Jacobi-preconditioned) conjugate
// gradients from a zero start, returning the solution and statistics.
// This is the validation-scale implementation of minikab's solver loop.
func CG(a *sparse.CSR, b []float64, maxIter int, tol float64, jacobi bool) ([]float64, CGStats) {
	n := a.N
	if len(b) != n {
		panic(fmt.Sprintf("minikab: rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var invDiag []float64
	if jacobi {
		invDiag = a.Diagonal()
		for i, d := range invDiag {
			if d != 0 {
				invDiag[i] = 1 / d
			}
		}
	}
	applyM := func(src, dst []float64) {
		if jacobi {
			for i := range dst {
				dst[i] = src[i] * invDiag[i]
			}
		} else {
			copy(dst, src)
		}
	}

	normB := linalg.Norm2(b)
	if normB == 0 {
		return x, CGStats{Converged: true}
	}
	var stats CGStats
	applyM(r, z)
	copy(p, z)
	rz := linalg.Dot(r, z)
	for it := 0; it < maxIter; it++ {
		a.SpMV(p, ap)
		pap := linalg.Dot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		stats.Iterations = it + 1
		res := linalg.Norm2(r) / normB
		stats.RelativeResidual = res
		if res < tol {
			stats.Converged = true
			break
		}
		applyM(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		linalg.Waxpby(1, z, beta, p, p)
	}
	return x, stats
}

// VerifySolve builds a validation-scale structural matrix, manufactures a
// solution, and checks CG recovers it; used by tests and the quickstart
// example to demonstrate the solver is real.
func VerifySolve(spec sparse.StructuralSpec, maxIter int, tol float64) (CGStats, error) {
	a, err := spec.Assemble()
	if err != nil {
		return CGStats{}, err
	}
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = math.Sin(0.01 * float64(i))
	}
	b := make([]float64, a.N)
	a.SpMV(xTrue, b)
	x, stats := CG(a, b, maxIter, tol, true)
	if stats.Converged {
		if d := linalg.AbsDiffMax(x, xTrue); d > 1e-4 {
			return stats, fmt.Errorf("minikab: converged but solution error %v", d)
		}
	}
	return stats, nil
}
