package minikab

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
	"a64fxbench/internal/units"
)

// DistributedCG runs minikab's CG solve for real across the simmpi
// runtime: the matrix rows are block-partitioned over the ranks, each
// rank computes its own SpMV rows and partial reductions, and actual
// float64 payloads move through the simulated network (allgather of the
// search direction, allreduce of the scalars). It returns the full
// solution vector (identical on every rank) and the iteration count.
//
// This is the end-to-end integration path: the same runtime that meters
// the paper-scale benchmarks here carries real data and must produce
// exactly the same solution as the serial solver.
func DistributedCG(r *simmpi.Rank, a *sparse.CSR, b []float64, maxIter int, tol float64) ([]float64, int, error) {
	n := a.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("minikab: rhs length %d, want %d", len(b), n)
	}
	p := r.Size()
	// Row block for this rank: even partition with remainder up front.
	lo, hi := blockRange(n, p, r.ID())
	myRows := hi - lo

	// meter charges the virtual clock for the real work done.
	meterSpMV := func() {
		nnz := float64(a.RowPtr[hi] - a.RowPtr[lo])
		r.Compute(perfmodel.WorkProfile{
			Class: perfmodel.SpMV,
			Flops: units.Flops(2 * nnz),
			Bytes: units.Bytes(12 * nnz),
			Calls: 1,
		})
	}
	meterVec := func(k float64) {
		r.Compute(perfmodel.WorkProfile{
			Class: perfmodel.VectorOp,
			Flops: units.Flops(2 * k * float64(myRows)),
			Bytes: units.Bytes(24 * k * float64(myRows)),
			Calls: 1,
		})
	}

	// Fixed-length allgather blocks (padded to the largest block).
	blockLen := n/p + 1
	gatherX := func(local []float64) []float64 {
		contrib := make([]float64, blockLen)
		copy(contrib, local)
		all := r.Allgather(contrib)
		full := make([]float64, n)
		for rank := 0; rank < p; rank++ {
			rlo, rhi := blockRange(n, p, rank)
			copy(full[rlo:rhi], all[rank*blockLen:rank*blockLen+(rhi-rlo)])
		}
		return full
	}

	// Local state over this rank's rows.
	x := make([]float64, myRows)
	res := append([]float64(nil), b[lo:hi]...) // r = b - A·0
	pDir := append([]float64(nil), res...)
	ap := make([]float64, myRows)

	dotLocal := func(u, v []float64) float64 {
		s := linalg.Dot(u, v)
		meterVec(0.5)
		return r.AllreduceScalar(s, simmpi.OpSum)
	}

	normB2 := dotLocal(res, res)
	if normB2 == 0 {
		return gatherX(x), 0, nil
	}
	rr := normB2
	iters := 0
	for it := 0; it < maxIter; it++ {
		// Assemble the full search direction, then apply local rows.
		fullP := gatherX(pDir)
		for i := lo; i < hi; i++ {
			var s float64
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				s += a.Vals[q] * fullP[a.ColIdx[q]]
			}
			ap[i-lo] = s
		}
		meterSpMV()
		pap := dotLocal(pDir, ap)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		linalg.Axpy(alpha, pDir, x)
		linalg.Axpy(-alpha, ap, res)
		meterVec(2)
		iters = it + 1
		rrNew := dotLocal(res, res)
		if math.Sqrt(rrNew/normB2) < tol {
			rr = rrNew
			break
		}
		beta := rrNew / rr
		rr = rrNew
		linalg.Waxpby(1, res, beta, pDir, pDir)
		meterVec(1)
	}
	return gatherX(x), iters, nil
}

// blockRange computes rank `id`'s row interval of an n-row matrix over p
// ranks, remainder rows going to the first ranks.
func blockRange(n, p, id int) (lo, hi int) {
	base := n / p
	rem := n % p
	lo = id*base + min(id, rem)
	size := base
	if id < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
