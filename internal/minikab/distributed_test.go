package minikab

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
)

// distJob builds a small job on the A64FX model.
func distJob(procs, nodes int) simmpi.JobConfig {
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(max(1, procs/max(1, nodes)), 1)
	return simmpi.JobConfig{
		Procs: procs, Nodes: nodes, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(nodes),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestDistributedCGMatchesSerial is the end-to-end integration test: the
// distributed solve through the simulated runtime must agree with the
// serial solver to tight tolerance for various rank counts, including
// counts that do not divide the matrix size.
func TestDistributedCGMatchesSerial(t *testing.T) {
	t.Parallel()
	spec := sparse.StructuralSpec{NX: 5, NY: 5, NZ: 5, DofPerNode: 2}
	a, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = math.Sin(0.05 * float64(i))
	}
	b := make([]float64, a.N)
	a.SpMV(xTrue, b)

	serial, serialStats := CG(a, b, 400, 1e-10, false)
	if !serialStats.Converged {
		t.Fatal("serial CG did not converge")
	}

	for _, procs := range []int{1, 2, 3, 4, 7, 8} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			results := make([][]float64, procs)
			var mu sync.Mutex
			rep, err := simmpi.Run(distJob(procs, min(procs, 2)), func(r *simmpi.Rank) error {
				x, iters, err := DistributedCG(r, a, b, 400, 1e-10)
				if err != nil {
					return err
				}
				if iters == 0 {
					return fmt.Errorf("no iterations performed")
				}
				mu.Lock()
				results[r.ID()] = x
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Every rank holds the same full solution, matching serial.
			for rank, x := range results {
				if x == nil {
					t.Fatalf("rank %d produced no solution", rank)
				}
				if d := linalg.AbsDiffMax(x, serial); d > 1e-8 {
					t.Errorf("rank %d deviates from serial by %v", rank, d)
				}
				if d := linalg.AbsDiffMax(x, xTrue); d > 1e-6 {
					t.Errorf("rank %d deviates from truth by %v", rank, d)
				}
			}
			// Virtual time advanced and communication was priced.
			if rep.Makespan <= 0 {
				t.Error("no virtual time elapsed")
			}
			if procs > 1 && rep.TotalBytesSent == 0 {
				t.Error("no bytes moved through the network model")
			}
		})
	}
}

// TestDistributedCGZeroRHS exercises the early-exit path.
func TestDistributedCGZeroRHS(t *testing.T) {
	t.Parallel()
	a, err := sparse.RandomSPD(30, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = simmpi.Run(distJob(3, 1), func(r *simmpi.Rank) error {
		x, iters, err := DistributedCG(r, a, make([]float64, a.N), 10, 1e-10)
		if err != nil {
			return err
		}
		if iters != 0 {
			return fmt.Errorf("zero RHS should take 0 iterations, took %d", iters)
		}
		if linalg.MaxAbs(x) != 0 {
			return fmt.Errorf("zero RHS should give zero solution")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDistributedCGBadRHS exercises the validation path.
func TestDistributedCGBadRHS(t *testing.T) {
	t.Parallel()
	a, _ := sparse.RandomSPD(10, 2, 1)
	_, err := simmpi.Run(distJob(2, 1), func(r *simmpi.Rank) error {
		_, _, err := DistributedCG(r, a, make([]float64, 5), 10, 1e-10)
		return err
	})
	if err == nil {
		t.Error("wrong RHS length should fail")
	}
}

// TestDistributedCGVirtualTimeScales: more ranks on one node should not
// make the simulated solve slower than a single rank (it parallelises).
func TestDistributedCGVirtualTime(t *testing.T) {
	t.Parallel()
	a, err := sparse.RandomSPD(4000, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	makespan := func(procs int) float64 {
		rep, err := simmpi.Run(distJob(procs, 1), func(r *simmpi.Rank) error {
			_, _, err := DistributedCG(r, a, b, 20, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds()
	}
	t1 := makespan(1)
	t8 := makespan(8)
	if t8 >= t1 {
		t.Errorf("8-rank solve (%.6fs) not faster than 1-rank (%.6fs)", t8, t1)
	}
}

func TestBlockRange(t *testing.T) {
	t.Parallel()
	// 10 rows over 3 ranks: 4, 3, 3.
	cases := []struct{ id, lo, hi int }{{0, 0, 4}, {1, 4, 7}, {2, 7, 10}}
	for _, c := range cases {
		lo, hi := blockRange(10, 3, c.id)
		if lo != c.lo || hi != c.hi {
			t.Errorf("blockRange(10,3,%d) = [%d,%d), want [%d,%d)", c.id, lo, hi, c.lo, c.hi)
		}
	}
	// Coverage: every row owned exactly once for various (n, p).
	for _, n := range []int{1, 7, 100} {
		for _, p := range []int{1, 3, 8} {
			covered := make([]int, n)
			for id := 0; id < p; id++ {
				lo, hi := blockRange(n, p, id)
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d p=%d: row %d covered %d times", n, p, i, c)
				}
			}
		}
	}
}
