package minikab

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// MatrixSpec declares the workload matrix for metered runs. The default
// is the paper's Benchmark1.
type MatrixSpec struct {
	// Rows is the matrix dimension (degrees of freedom).
	Rows int64
	// NNZ is the stored non-zero count.
	NNZ int64
	// HaloDof is the number of coupled degrees of freedom on the
	// interface between two adjacent row blocks of the 1D (plane-wise)
	// decomposition.
	HaloDof int64
}

// Benchmark1 is the paper's structural test matrix: 9,573,984 degrees of
// freedom and 696,096,138 non-zeros (§VI.A), decomposed plane-wise so the
// interface between neighbouring ranks is one 147×147-node plane of
// 3-dof nodes.
func Benchmark1() MatrixSpec {
	return MatrixSpec{
		Rows:    9573984,
		NNZ:     696096138,
		HaloDof: 147 * 147 * 3,
	}
}

// Config describes one metered minikab run.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Nodes, RanksPerNode and ThreadsPerRank define the execution
	// configuration (Figure 1 sweeps these).
	Nodes          int
	RanksPerNode   int
	ThreadsPerRank int
	// Iterations is the CG iteration count. The paper does not state
	// Benchmark1's count; DefaultIterations reproduces Table V's A64FX
	// runtime, and all cross-system/cross-config numbers follow from
	// the model.
	Iterations int
	// Matrix is the workload; zero value means Benchmark1.
	Matrix MatrixSpec
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

// DefaultIterations is the fixed Benchmark1 CG iteration count used by
// the experiments (see Config.Iterations).
const DefaultIterations = 1382

// PerRankFixedBytes models minikab's per-process replicated setup state
// (mesh and index structures are duplicated on every rank during
// assembly). This is what prevents fully populating A64FX nodes with
// plain MPI in the paper (§VI.A: the largest plain-MPI configuration that
// fits on two nodes is 48 processes).
const PerRankFixedBytes = 900 * units.MiB

// Result is the outcome of a metered run.
type Result struct {
	// Seconds is the solver runtime (the quantity Figure 1/2 plot).
	Seconds float64
	// GFLOPs is the achieved rate over the solve.
	GFLOPs float64
	// Procs is the total MPI process count.
	Procs int
	// Cores is the total core count in use.
	Cores int
	// Report carries the full runtime accounting.
	Report simmpi.Report
}

func (c *Config) defaults() error {
	if c.System == nil {
		return fmt.Errorf("minikab: System is required")
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.RanksPerNode < 1 {
		c.RanksPerNode = 1
	}
	if c.ThreadsPerRank < 1 {
		c.ThreadsPerRank = 1
	}
	if c.RanksPerNode*c.ThreadsPerRank > c.System.CoresPerNode() {
		return fmt.Errorf("minikab: %d ranks × %d threads exceeds %d cores/node",
			c.RanksPerNode, c.ThreadsPerRank, c.System.CoresPerNode())
	}
	if c.Iterations == 0 {
		c.Iterations = DefaultIterations
	}
	if c.Matrix == (MatrixSpec{}) {
		c.Matrix = Benchmark1()
	}
	return nil
}

// MemoryPerNode estimates the resident bytes per node of a configuration:
// each rank holds its matrix share (12 bytes per non-zero), six solver
// vectors over its row share, and the fixed replicated setup state.
func MemoryPerNode(cfg Config) units.Bytes {
	m := cfg.Matrix
	if m == (MatrixSpec{}) {
		m = Benchmark1()
	}
	ranks := cfg.RanksPerNode
	if ranks < 1 {
		ranks = 1
	}
	nodes := cfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	procs := int64(ranks * nodes)
	perRankShare := (m.NNZ*12 + m.Rows*8*6) / procs
	return units.Bytes(ranks) * (units.Bytes(perRankShare) + PerRankFixedBytes)
}

// FitsMemory reports whether the configuration fits node memory.
func FitsMemory(cfg Config) bool {
	if cfg.System == nil {
		return false
	}
	return MemoryPerNode(cfg) <= cfg.System.MemoryPerNode()
}

// Run executes the metered minikab solve.
func Run(cfg Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	if !FitsMemory(cfg) {
		return Result{}, fmt.Errorf("minikab: configuration needs %v per node, node has %v",
			MemoryPerNode(cfg), cfg.System.MemoryPerNode())
	}
	sys := cfg.System
	procs := cfg.Nodes * cfg.RanksPerNode
	m := cfg.Matrix

	rowsPerRank := float64(m.Rows) / float64(procs)
	nnzPerRank := float64(m.NNZ) / float64(procs)
	haloBytes := units.Bytes(m.HaloDof * 8)

	spmv := perfmodel.WorkProfile{
		Class: perfmodel.SpMV,
		Flops: units.Flops(2 * nnzPerRank),
		Bytes: units.Bytes(12 * nnzPerRank),
		Calls: 1,
	}
	dot := perfmodel.WorkProfile{
		Class: perfmodel.DotProduct,
		Flops: units.Flops(2 * rowsPerRank),
		Bytes: units.Bytes(16 * rowsPerRank),
		Calls: 1,
	}
	axpy := perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: units.Flops(2 * rowsPerRank),
		Bytes: units.Bytes(24 * rowsPerRank),
		Calls: 1,
	}

	model := sys.PerRankModel(cfg.RanksPerNode, cfg.ThreadsPerRank)
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          cfg.Nodes,
		ThreadsPerRank: cfg.ThreadsPerRank,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Fabric:         sys.NewFabric(cfg.Nodes),
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("minikab %s n=%d r=%d t=%d", sys.ID, cfg.Nodes, cfg.RanksPerNode, cfg.ThreadsPerRank),
	}
	cfg.Instrumentation.Apply(&job)

	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		const tagHalo = 11
		exchange := func() {
			// 1D plane decomposition: halo with ±1 neighbours.
			r.Region("halo-exchange")
			if r.ID() > 0 {
				r.Send(r.ID()-1, tagHalo, nil, haloBytes)
			}
			if r.ID() < r.Size()-1 {
				r.Send(r.ID()+1, tagHalo, nil, haloBytes)
			}
			if r.ID() > 0 {
				r.Recv(r.ID()-1, tagHalo)
			}
			if r.ID() < r.Size()-1 {
				r.Recv(r.ID()+1, tagHalo)
			}
			r.EndRegion()
		}
		for it := 0; it < cfg.Iterations; it++ {
			r.Region("cg-iter")
			exchange()
			r.Compute(spmv) // A·p
			r.Compute(dot)  // p·Ap
			r.AllreduceScalar(0, simmpi.OpSum)
			r.Compute(axpy) // x update
			r.Compute(axpy) // r update
			r.Compute(dot)  // r·r
			r.AllreduceScalar(0, simmpi.OpSum)
			r.Compute(axpy) // p update
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seconds: rep.Seconds(),
		GFLOPs:  rep.GFLOPs(),
		Procs:   procs,
		Cores:   procs * cfg.ThreadsPerRank,
		Report:  rep,
	}, nil
}

// BestA64FXConfig returns the paper's best-performing two-node-and-up
// A64FX execution configuration: one MPI rank per CMG (4 per node), 12
// OpenMP threads each (§VI.A, Figure 1).
func BestA64FXConfig(nodes int) Config {
	return Config{
		System:         arch.MustGet(arch.A64FX),
		Nodes:          nodes,
		RanksPerNode:   4,
		ThreadsPerRank: 12,
	}
}

// FulhameConfig returns the paper's Fulhame setup: plain MPI, fully
// populated nodes (§VI.A, Figure 2).
func FulhameConfig(nodes int) Config {
	sys := arch.MustGet(arch.Fulhame)
	return Config{
		System:       sys,
		Nodes:        nodes,
		RanksPerNode: sys.CoresPerNode(),
	}
}
