package minikab

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
)

func TestCommModeString(t *testing.T) {
	t.Parallel()
	if AllGatherMode.String() != "allgather" || HaloMode.String() != "halo" {
		t.Error("mode names wrong")
	}
	if CommMode(9).String() != "commmode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestBandwidth(t *testing.T) {
	t.Parallel()
	// Tridiagonal: bandwidth 1.
	a, err := sparse.RandomSPD(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Bandwidth(a); got != 1 {
		t.Errorf("tridiagonal bandwidth = %d", got)
	}
	// Structural spec: bandwidth = coupling to the neighbouring plane.
	spec := sparse.StructuralSpec{NX: 3, NY: 3, NZ: 4, DofPerNode: 2}
	m, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b := Bandwidth(m)
	// One node plane is 3×3 nodes ×2 dof = 18; coupling reaches the
	// diagonally adjacent node of the next plane.
	if b < 18 || b > 27 {
		t.Errorf("structural bandwidth = %d", b)
	}
}

// TestHaloModeMatchesAllGather: both communication approaches produce
// the same solution, and halo mode moves fewer bytes.
func TestHaloModeMatchesAllGather(t *testing.T) {
	t.Parallel()
	spec := sparse.StructuralSpec{NX: 4, NY: 4, NZ: 8, DofPerNode: 2}
	a, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, a.N)
	for i := range xTrue {
		xTrue[i] = math.Cos(0.03 * float64(i))
	}
	b := make([]float64, a.N)
	a.SpMV(xTrue, b)

	run := func(mode CommMode, procs int) ([]float64, int64) {
		var sol []float64
		var mu sync.Mutex
		rep, err := simmpi.Run(distJob(procs, min(procs, 2)), func(r *simmpi.Rank) error {
			x, iters, err := DistributedCGMode(r, a, b, 500, 1e-10, mode)
			if err != nil {
				return err
			}
			if iters == 0 {
				return fmt.Errorf("no iterations")
			}
			mu.Lock()
			if r.ID() == 0 {
				sol = x
			}
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%v procs=%d: %v", mode, procs, err)
		}
		return sol, int64(rep.TotalBytesSent)
	}

	for _, procs := range []int{2, 4} {
		ag, agBytes := run(AllGatherMode, procs)
		halo, haloBytes := run(HaloMode, procs)
		if d := linalg.AbsDiffMax(ag, halo); d > 1e-8 {
			t.Errorf("procs=%d: modes disagree by %v", procs, d)
		}
		if d := linalg.AbsDiffMax(halo, xTrue); d > 1e-6 {
			t.Errorf("procs=%d: halo solution error %v", procs, d)
		}
		if haloBytes >= agBytes {
			t.Errorf("procs=%d: halo mode (%d B) should move less than allgather (%d B)",
				procs, haloBytes, agBytes)
		}
	}
}

func TestHaloModeRejectsTooManyRanks(t *testing.T) {
	t.Parallel()
	// Blocks smaller than the bandwidth are rejected.
	spec := sparse.StructuralSpec{NX: 4, NY: 4, NZ: 4, DofPerNode: 2}
	a, err := spec.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.N)
	_, err = simmpi.Run(distJob(8, 2), func(r *simmpi.Rank) error {
		_, _, err := DistributedCGMode(r, a, b, 10, 1e-10, HaloMode)
		if err == nil {
			return fmt.Errorf("expected bandwidth rejection")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
