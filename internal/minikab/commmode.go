package minikab

import (
	"fmt"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
	"a64fxbench/internal/units"
)

// CommMode selects minikab's communication approach (§VI.A lists the
// communication approach among the solver's command-line options).
type CommMode int

// The two implemented approaches.
const (
	// AllGatherMode assembles the full search direction on every rank
	// each iteration — simple, correct for any sparsity pattern.
	AllGatherMode CommMode = iota
	// HaloMode exchanges only the boundary rows that neighbouring
	// blocks actually couple to — valid for banded matrices (the
	// structural problems minikab targets), far less traffic.
	HaloMode
)

// String names the mode.
func (m CommMode) String() string {
	switch m {
	case AllGatherMode:
		return "allgather"
	case HaloMode:
		return "halo"
	default:
		return fmt.Sprintf("commmode(%d)", int(m))
	}
}

// Bandwidth computes the half-bandwidth of a matrix: the maximum |i-j|
// over stored entries. HaloMode is valid when each rank's block is at
// least this tall.
func Bandwidth(a *sparse.CSR) int {
	band := 0
	for i := 0; i < a.N; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			d := i - int(a.ColIdx[p])
			if d < 0 {
				d = -d
			}
			if d > band {
				band = d
			}
		}
	}
	return band
}

// DistributedCGMode is DistributedCG with a selectable communication
// approach. HaloMode requires the matrix bandwidth to fit within each
// neighbour's block.
func DistributedCGMode(r *simmpi.Rank, a *sparse.CSR, b []float64, maxIter int, tol float64, mode CommMode) ([]float64, int, error) {
	if mode == AllGatherMode {
		return DistributedCG(r, a, b, maxIter, tol)
	}
	n := a.N
	if len(b) != n {
		return nil, 0, fmt.Errorf("minikab: rhs length %d, want %d", len(b), n)
	}
	p := r.Size()
	lo, hi := blockRange(n, p, r.ID())
	myRows := hi - lo
	band := Bandwidth(a)
	// Halo validity: neighbours must own every coupled row.
	for other := 0; other < p; other++ {
		olo, ohi := blockRange(n, p, other)
		if ohi-olo < band && p > 1 {
			return nil, 0, fmt.Errorf("minikab: halo mode needs blocks ≥ bandwidth %d, rank %d has %d rows",
				band, other, ohi-olo)
		}
	}

	meterVec := func(k float64) {
		r.Compute(perfmodel.WorkProfile{
			Class: perfmodel.VectorOp,
			Flops: units.Flops(2 * k * float64(myRows)),
			Bytes: units.Bytes(24 * k * float64(myRows)),
			Calls: 1,
		})
	}
	meterSpMV := func() {
		nnz := float64(a.RowPtr[hi] - a.RowPtr[lo])
		r.Compute(perfmodel.WorkProfile{
			Class: perfmodel.SpMV,
			Flops: units.Flops(2 * nnz),
			Bytes: units.Bytes(12 * nnz),
			Calls: 1,
		})
	}

	// Halo exchange of the search direction's boundary rows: send the
	// top `band` rows down and the bottom `band` rows up, receive the
	// neighbours' counterparts. The extended vector covers
	// [lo-band, hi+band) clipped to the domain.
	extLo := lo - band
	if extLo < 0 {
		extLo = 0
	}
	extHi := hi + band
	if extHi > n {
		extHi = n
	}
	ext := make([]float64, extHi-extLo)
	const tagDown, tagUp = 31, 32
	exchange := func(local []float64) {
		if r.ID() > 0 {
			top := band
			if top > myRows {
				top = myRows
			}
			r.SendFloats(r.ID()-1, tagDown, append([]float64(nil), local[:top]...))
		}
		if r.ID() < p-1 {
			bot := band
			if bot > myRows {
				bot = myRows
			}
			r.SendFloats(r.ID()+1, tagUp, append([]float64(nil), local[myRows-bot:]...))
		}
		copy(ext[lo-extLo:], local)
		if r.ID() > 0 {
			lowRows := r.RecvFloats(r.ID()-1, tagUp)
			copy(ext[lo-extLo-len(lowRows):lo-extLo], lowRows)
		}
		if r.ID() < p-1 {
			highRows := r.RecvFloats(r.ID()+1, tagDown)
			copy(ext[hi-extLo:], highRows)
		}
	}

	x := make([]float64, myRows)
	res := append([]float64(nil), b[lo:hi]...)
	pDir := append([]float64(nil), res...)
	ap := make([]float64, myRows)

	dotGlobal := func(u, v []float64) float64 {
		s := linalg.Dot(u, v)
		meterVec(0.5)
		return r.AllreduceScalar(s, simmpi.OpSum)
	}
	normB2 := dotGlobal(res, res)
	if normB2 == 0 {
		full := make([]float64, n)
		return full, 0, nil
	}
	rr := normB2
	iters := 0
	for it := 0; it < maxIter; it++ {
		exchange(pDir)
		for i := lo; i < hi; i++ {
			var s float64
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				s += a.Vals[q] * ext[int(a.ColIdx[q])-extLo]
			}
			ap[i-lo] = s
		}
		meterSpMV()
		pap := dotGlobal(pDir, ap)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		linalg.Axpy(alpha, pDir, x)
		linalg.Axpy(-alpha, ap, res)
		meterVec(2)
		iters = it + 1
		rrNew := dotGlobal(res, res)
		if rrNew/normB2 < tol*tol {
			rr = rrNew
			break
		}
		beta := rrNew / rr
		rr = rrNew
		linalg.Waxpby(1, res, beta, pDir, pDir)
		meterVec(1)
	}
	// Assemble the full solution on every rank for comparison parity
	// with AllGatherMode.
	blockLen := n/p + 1
	contrib := make([]float64, blockLen)
	copy(contrib, x)
	all := r.Allgather(contrib)
	full := make([]float64, n)
	for rank := 0; rank < p; rank++ {
		rlo, rhi := blockRange(n, p, rank)
		copy(full[rlo:rhi], all[rank*blockLen:rank*blockLen+(rhi-rlo)])
	}
	return full, iters, nil
}
