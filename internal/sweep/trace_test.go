package sweep

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/simmpi"
)

// tracedIDs is the cheap subset used by the trace determinism tests:
// enough jobs per experiment to exercise interleaving, small enough to
// trace in memory.
var tracedIDs = []string{"table3", "table5"}

// renderSinks renders every per-id memory sink to its text timeline.
func renderSinks(t *testing.T, sinks map[string]*simmpi.MemorySink) map[string]string {
	t.Helper()
	out := map[string]string{}
	for id, s := range sinks {
		var b bytes.Buffer
		if _, err := s.Events.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		out[id] = b.String()
	}
	return out
}

// runTraced sweeps tracedIDs with a per-id sink on the given worker
// count and returns each id's rendered trace.
func runTraced(t *testing.T, workers int) map[string]string {
	t.Helper()
	eng := New(workers)
	var mu sync.Mutex
	sinks := map[string]*simmpi.MemorySink{}
	eng.SinkFor = func(id string) simmpi.TraceSink {
		mu.Lock()
		defer mu.Unlock()
		s := &simmpi.MemorySink{}
		sinks[id] = s
		return s
	}
	results := eng.Run(context.Background(), tracedIDs, core.Options{Quick: true})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if r.Cached {
			t.Fatalf("%s: traced run served from cache", r.ID)
		}
	}
	return renderSinks(t, sinks)
}

// TestTracedSweepParallelDeterministic is the ISSUE's byte-identity
// gate: an 8-worker traced sweep must produce exactly the trace stream
// of a sequential one, per experiment.
func TestTracedSweepParallelDeterministic(t *testing.T) {
	seq := runTraced(t, 1)
	par := runTraced(t, 8)
	for _, id := range tracedIDs {
		if seq[id] == "" {
			t.Errorf("%s: empty sequential trace", id)
		}
		if seq[id] != par[id] {
			t.Errorf("%s: parallel trace differs from sequential (%d vs %d bytes)",
				id, len(par[id]), len(seq[id]))
		}
	}
}

// TestTraceBypassesCache checks the cache discipline around observed
// runs: a traced execution neither reads nor writes the cache, and the
// artifacts it produces are identical to the untraced ones.
func TestTraceBypassesCache(t *testing.T) {
	ctx := context.Background()
	id := "table5"
	opt := core.Options{Quick: true}
	eng := New(1)

	// Prime the cache with an untraced run.
	r1 := eng.Run(ctx, []string{id}, opt)[0]
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}

	// Traced: must re-execute and must observe events.
	sink := &simmpi.MemorySink{}
	eng.SinkFor = func(string) simmpi.TraceSink { return sink }
	r2 := eng.Run(ctx, []string{id}, opt)[0]
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.Cached {
		t.Error("traced run was served from the cache")
	}
	if len(sink.Events) == 0 {
		t.Error("traced run recorded no events")
	}

	// Untraced again: still a cache hit (tracing didn't evict), and the
	// traced artifact matches the cached one (trace invariance).
	eng.SinkFor = nil
	r3 := eng.Run(ctx, []string{id}, opt)[0]
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if !r3.Cached {
		t.Error("untraced rerun missed the cache after a traced run")
	}
	for _, pair := range [][2]*core.Artifact{{r1.Artifact, r2.Artifact}, {r1.Artifact, r3.Artifact}} {
		a, b := renderJSON(t, pair[0]), renderJSON(t, pair[1])
		if a != b {
			t.Error("artifact changed across traced/untraced executions")
		}
	}
}

func renderJSON(t *testing.T, a *core.Artifact) string {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestProfileCollectsTimeline checks that Options.Profile attaches an
// in-memory collector and surfaces the events on the Result without
// changing the artifact.
func TestProfileCollectsTimeline(t *testing.T) {
	ctx := context.Background()
	id := "table5"
	eng := New(1)
	plain := eng.Run(ctx, []string{id}, core.Options{Quick: true})[0]
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	if plain.Timeline != nil {
		t.Error("unprofiled run carries a timeline")
	}
	prof := eng.Run(ctx, []string{id}, core.Options{Quick: true, Profile: true})[0]
	if prof.Err != nil {
		t.Fatal(prof.Err)
	}
	if len(prof.Timeline) == 0 {
		t.Fatal("profiled run collected no events")
	}
	if prof.Cached {
		t.Error("profiled run was served from the cache")
	}
	if renderJSON(t, plain.Artifact) != renderJSON(t, prof.Artifact) {
		t.Error("profiling changed the artifact")
	}

	// Profile plus an external sink: both get the full stream.
	sink := &simmpi.MemorySink{}
	eng.SinkFor = func(string) simmpi.TraceSink { return sink }
	both := eng.Run(ctx, []string{id}, core.Options{Quick: true, Profile: true})[0]
	if both.Err != nil {
		t.Fatal(both.Err)
	}
	if len(both.Timeline) != len(sink.Events) {
		t.Errorf("tee mismatch: profile saw %d events, sink saw %d",
			len(both.Timeline), len(sink.Events))
	}
}
