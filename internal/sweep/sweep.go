// Package sweep executes sets of experiments concurrently: a bounded
// worker pool runs any mix of paper artifacts and extension ablations in
// parallel, with per-experiment timing, an artifact cache keyed by
// (id, Options) so repeated renders never recompute, and cooperative
// cancellation through context.Context (first error under FailFast, or an
// external interrupt).
//
// Every experiment is a pure function of its Options — the simulation's
// virtual clocks make results independent of real scheduling — so a
// parallel sweep produces artifacts byte-identical to a sequential one.
// The golden subpackage turns that promise into a regression gate.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"a64fxbench/internal/core"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/telemetry"
)

// Result is the outcome of one experiment in a sweep.
type Result struct {
	// ID is the experiment id as requested.
	ID string
	// Artifact is the completed result; nil when Err is set.
	Artifact *core.Artifact
	// Err reports a lookup or execution failure, or context.Canceled /
	// context.DeadlineExceeded when the sweep was cancelled before this
	// experiment started.
	Err error
	// Elapsed is the wall-clock execution time. Cache hits report the
	// (near-zero) lookup time of the cached artifact.
	Elapsed time.Duration
	// Cached reports whether the artifact came from the engine's cache.
	Cached bool
	// Timeline is the in-memory event log of every simulated job the
	// experiment ran, collected when Options.Profile was set (and no
	// external sink claimed the events). Nil otherwise.
	Timeline simmpi.Timeline
}

// Skipped reports whether the experiment never ran because the sweep was
// cancelled first (as opposed to failing on its own).
func (r Result) Skipped() bool {
	return errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded)
}

// Lookup resolves an id against the paper experiments first, then the
// extension registry.
func Lookup(id string) (*core.Experiment, error) {
	if e, err := core.Get(id); err == nil {
		return e, nil
	}
	if e, err := core.GetExtension(id); err == nil {
		return e, nil
	}
	return nil, fmt.Errorf("sweep: unknown experiment or extension %q", id)
}

// cacheKey identifies one cached execution. The key carries only the
// artifact-affecting projection of the options (core.OptionsKey):
// observability settings never change artifact contents, so a traced
// and an untraced execution of the same experiment are interchangeable
// as far as the cache is concerned. The engine IS part of the key even
// though engines are bit-identical in output: a differential sweep that
// asks for both engines must actually execute both, not serve the
// second request from the first engine's cached artifact.
type cacheKey struct {
	id  string
	opt core.OptionsKey
	eng simmpi.Engine
}

// cacheEntry is a single-flight slot: the first requester runs the
// experiment and closes ready; everyone else waits on it.
type cacheEntry struct {
	ready chan struct{}
	art   *core.Artifact
	err   error
}

// Engine runs sweeps. The zero value is ready to use; engines are safe
// for concurrent use and the cache persists across Run calls.
type Engine struct {
	// Workers bounds concurrent experiment executions; ≤ 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// FailFast cancels the remaining sweep after the first failure:
	// experiments not yet started are marked skipped with the
	// cancellation cause. Already-running experiments complete (they do
	// not observe the context internally).
	FailFast bool
	// SinkFor, when non-nil, supplies a trace sink per experiment id; a
	// nil return leaves the experiment untraced. It must return a
	// distinct sink per id (ids run on concurrent workers, and one
	// experiment's jobs must not interleave with another's in a sink's
	// stream); within one experiment jobs run sequentially, so each
	// sink's stream is deterministic. The caller owns and closes the
	// sinks after Run returns.
	SinkFor func(id string) simmpi.TraceSink

	mu    sync.Mutex
	cache map[cacheKey]*cacheEntry
}

// New returns an engine with the given worker bound (≤ 0 for GOMAXPROCS).
func New(workers int) *Engine { return &Engine{Workers: workers} }

// workerCount resolves the effective pool size for n queued experiments.
func (e *Engine) workerCount(n int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes the given experiment ids under opt and returns results in
// input order. Duplicate ids coalesce onto one execution through the
// cache. Cancellation of ctx (or, with FailFast, the first failure) stops
// experiments that have not started; their results carry the context
// error.
func (e *Engine) Run(ctx context.Context, ids []string, opt core.Options) []Result {
	results := make([]Result, len(ids))
	if len(ids) == 0 {
		return results
	}
	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.workerCount(len(ids)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				results[i] = e.runOne(ctx, ids[i], opt)
				if results[i].Err != nil && e.FailFast {
					cancel(fmt.Errorf("sweep: %s failed: %w", ids[i], results[i].Err))
				}
			}
		}()
	}
	for i := range ids {
		queue <- i
	}
	close(queue)
	wg.Wait()
	return results
}

// runOne executes (or fetches from cache) a single experiment.
func (e *Engine) runOne(ctx context.Context, id string, opt core.Options) Result {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return Result{ID: id, Err: err}
	}
	// Per-artifact telemetry: one span per requested id, a child of
	// whatever span the caller carried in ctx (the serve daemon's
	// request, or nothing — every method on a nil span is a no-op).
	// Unlike Trace/Profile/Counters, telemetry does NOT bypass the
	// artifact cache: spans describe this request's path, and "served
	// from cache" is itself the story — hits are annotated cached=true
	// and simply carry no job spans, because nothing executed.
	span := telemetry.SpanFrom(ctx).Child("artifact:" + id)
	defer span.End()
	opt.Telemetry = span
	if e.SinkFor != nil {
		if s := e.SinkFor(id); s != nil {
			opt.Trace = s
		}
	}
	// Observed runs bypass the cache in both directions: a sink must see
	// the events of this execution (a cached artifact has none, and a
	// counted run's PMU stream lives in the events too), and the artifact
	// of a bypass run must not displace the single-flight slot other
	// workers may be waiting on.
	if opt.Trace != nil || opt.Profile || opt.Counters != nil {
		var mem *simmpi.MemorySink
		if opt.Profile {
			mem = &simmpi.MemorySink{}
			if opt.Trace != nil {
				opt.Trace = teeSink{opt.Trace, mem}
			} else {
				opt.Trace = mem
			}
		}
		art, err := runExperiment(id, opt)
		span.Fail(err)
		res := Result{ID: id, Artifact: art, Err: err, Elapsed: time.Since(start)}
		if mem != nil {
			res.Timeline = mem.Events
		}
		return res
	}
	entry, owner := e.entryFor(cacheKey{id, opt.ArtifactKey(), opt.Engine})
	if !owner {
		// Someone else is (or was) computing this key; wait for it.
		span.SetAttr("cached", true)
		select {
		case <-entry.ready:
			span.Fail(entry.err)
			return Result{ID: id, Artifact: entry.art, Err: entry.err,
				Elapsed: time.Since(start), Cached: true}
		case <-ctx.Done():
			span.Fail(ctx.Err())
			return Result{ID: id, Err: ctx.Err()}
		}
	}
	art, err := runExperiment(id, opt)
	span.Fail(err)
	entry.art, entry.err = art, err
	close(entry.ready)
	return Result{ID: id, Artifact: art, Err: err, Elapsed: time.Since(start)}
}

// teeSink duplicates a traced run's event stream into the profile
// collector without disturbing the caller's sink.
type teeSink struct {
	a, b simmpi.TraceSink
}

func (t teeSink) Record(e simmpi.Event) {
	t.a.Record(e)
	t.b.Record(e)
}

func (t teeSink) Close() error {
	err := t.a.Close()
	if err2 := t.b.Close(); err == nil {
		err = err2
	}
	return err
}

// entryFor returns the cache slot for key and whether the caller owns the
// execution (true exactly once per key).
func (e *Engine) entryFor(k cacheKey) (*cacheEntry, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		e.cache = map[cacheKey]*cacheEntry{}
	}
	if entry, ok := e.cache[k]; ok {
		return entry, false
	}
	entry := &cacheEntry{ready: make(chan struct{})}
	e.cache[k] = entry
	return entry, true
}

// runExperiment resolves and executes one experiment, converting panics
// into errors so a buggy experiment cannot take the whole sweep down.
func runExperiment(id string, opt core.Options) (art *core.Artifact, err error) {
	exp, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	defer func() {
		if p := recover(); p != nil {
			art, err = nil, fmt.Errorf("sweep: %s panicked: %v", id, p)
		}
	}()
	art, err = exp.Run(opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return art, nil
}

// Summary aggregates a sweep's outcomes for reporting.
type Summary struct {
	OK      int
	Failed  int
	Skipped int
	// Elapsed is the summed per-experiment execution time (the
	// sequential-equivalent cost; wall-clock is lower when Workers > 1).
	Elapsed time.Duration
}

// Summarize classifies every result of a sweep.
func Summarize(results []Result) Summary {
	var s Summary
	for _, r := range results {
		switch {
		case r.Err == nil:
			s.OK++
		case r.Skipped():
			s.Skipped++
		default:
			s.Failed++
		}
		s.Elapsed += r.Elapsed
	}
	return s
}

// String renders the summary in the CLI's one-line form.
func (s Summary) String() string {
	out := fmt.Sprintf("%d ok, %d failed", s.OK, s.Failed)
	if s.Skipped > 0 {
		out += fmt.Sprintf(", %d skipped", s.Skipped)
	}
	return out
}

// FirstError returns the first non-skip failure in input order, or nil.
func FirstError(results []Result) error {
	for _, r := range results {
		if r.Err != nil && !r.Skipped() {
			return r.Err
		}
	}
	return nil
}
