package golden

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"a64fxbench/internal/core"
)

func sample() *core.Artifact {
	return &core.Artifact{
		ID: "t1", Title: "Sample", Kind: core.Table,
		Columns:   []string{"a", "b"},
		RowLabels: []string{"r1", "r2"},
		Cells: [][]core.Cell{
			{{Value: 1.5, Paper: 1.4, Format: "%.2f"}, {Text: "x"}},
			{{Value: 2.5, Paper: math.NaN()}, {Value: math.NaN(), Paper: math.NaN()}},
		},
		Notes: []string{"n1"},
	}
}

func TestDigestStable(t *testing.T) {
	t.Parallel()
	a, b := sample(), sample()
	if Digest(a) != Digest(b) {
		t.Fatal("identical artifacts must share a digest")
	}
	if !bytes.Equal(Canonical(a), Canonical(b)) {
		t.Fatal("identical artifacts must share a canonical form")
	}
	if len(Digest(a)) != 64 {
		t.Fatalf("digest %q is not sha256 hex", Digest(a))
	}
}

func TestDigestSensitivity(t *testing.T) {
	t.Parallel()
	base := Digest(sample())
	mutations := map[string]func(*core.Artifact){
		"value":     func(a *core.Artifact) { a.Cells[0][0].Value += 1e-12 },
		"paper":     func(a *core.Artifact) { a.Cells[0][0].Paper = 9 },
		"text":      func(a *core.Artifact) { a.Cells[0][1].Text = "y" },
		"format":    func(a *core.Artifact) { a.Cells[0][0].Format = "%.3f" },
		"note":      func(a *core.Artifact) { a.Notes[0] = "n2" },
		"label":     func(a *core.Artifact) { a.RowLabels[1] = "r2'" },
		"column":    func(a *core.Artifact) { a.Columns[0] = "a'" },
		"id":        func(a *core.Artifact) { a.ID = "t2" },
		"title":     func(a *core.Artifact) { a.Title = "Other" },
		"kind":      func(a *core.Artifact) { a.Kind = core.Figure },
		"nan-value": func(a *core.Artifact) { a.Cells[1][1].Value = 0 },
	}
	for name, mutate := range mutations {
		a := sample()
		mutate(a)
		if Digest(a) == base {
			t.Errorf("mutation %q did not change the digest", name)
		}
	}
}

// TestNaNCanonical checks that every NaN bit pattern hashes identically:
// "not applicable" must not depend on how the NaN was produced.
func TestNaNCanonical(t *testing.T) {
	t.Parallel()
	a, b := sample(), sample()
	b.Cells[1][1].Value = math.Float64frombits(0x7FF8000000000001) // odd payload
	if Digest(a) != Digest(b) {
		t.Fatal("NaN payloads must canonicalise to one digest")
	}
}

// TestNoConcatenationCollision guards the length-prefixing: moving a
// character across a field boundary must change the encoding.
func TestNoConcatenationCollision(t *testing.T) {
	t.Parallel()
	a := &core.Artifact{ID: "ab", Title: "c"}
	b := &core.Artifact{ID: "a", Title: "bc"}
	if Digest(a) == Digest(b) {
		t.Fatal("field boundaries must be encoded")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	t.Parallel()
	path := filepath.Join(t.TempDir(), "golden", "manifest.txt")
	m := Manifest{"table1": strings.Repeat("a", 64), "fig4": strings.Repeat("b", 64)}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["table1"] != m["table1"] || got["fig4"] != m["fig4"] {
		t.Fatalf("round trip lost data: %v", got)
	}
}

func TestManifestRejectsMalformed(t *testing.T) {
	t.Parallel()
	if _, err := Read(strings.NewReader("justoneword\n")); err == nil {
		t.Error("one-field line should fail")
	}
	if _, err := Read(strings.NewReader("a 1\na 2\n")); err == nil {
		t.Error("duplicate id should fail")
	}
	m, err := Read(strings.NewReader("# comment\n\n  id1  d1  \n"))
	if err != nil || m["id1"] != "d1" {
		t.Errorf("comments/blank lines should be ignored: %v %v", m, err)
	}
}

func TestDiff(t *testing.T) {
	t.Parallel()
	got := Manifest{"a": "1", "b": "2"}
	want := Manifest{"a": "1", "b": "3", "c": "4"}
	diffs := Diff(got, want)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %v", diffs)
	}
	joined := strings.Join(diffs, "\n")
	for _, frag := range []string{"b:", "c:"} {
		if !strings.Contains(joined, frag) {
			t.Errorf("diff misses %q: %v", frag, diffs)
		}
	}
	if len(Diff(got, got)) != 0 {
		t.Error("identical manifests must not diff")
	}
}
