// Package golden is the determinism gate for experiment artifacts: it
// defines a canonical byte serialization of core.Artifact, hashes it, and
// reads/writes the checked-in digest manifests that pin every artifact
// bit-for-bit across runs, worker counts, and code changes.
//
// The canonical form covers everything an artifact reports — identity,
// layout, every cell's value/paper/text/format, notes, and the derived
// paper-deviation statistics — with float64s serialized as IEEE-754 bit
// patterns, so two artifacts share a digest if and only if they are
// semantically identical (NaN included).
package golden

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"a64fxbench/internal/core"
)

// Canonical serializes an artifact deterministically. The encoding is
// length-prefixed per field group so distinct structures can never
// collide by concatenation.
func Canonical(a *core.Artifact) []byte {
	var b canonBuf
	b.str(a.ID)
	b.str(a.Title)
	b.str(string(a.Kind))
	b.strs(a.Columns)
	b.strs(a.RowLabels)
	b.u64(uint64(len(a.Cells)))
	for _, row := range a.Cells {
		b.u64(uint64(len(row)))
		for _, c := range row {
			b.f64(c.Value)
			b.f64(c.Paper)
			b.str(c.Text)
			b.str(c.Format)
		}
	}
	b.strs(a.Notes)
	// Deviation statistics: derived, but pinned so a change in how
	// deviations are computed also trips the gate.
	worst, refCells := a.MaxAbsDeviation()
	b.f64(worst)
	b.u64(uint64(refCells))
	return b.buf
}

// Digest returns the SHA-256 hex digest of the canonical serialization.
func Digest(a *core.Artifact) string {
	return fmt.Sprintf("%x", sha256.Sum256(Canonical(a)))
}

// canonBuf builds the canonical encoding.
type canonBuf struct{ buf []byte }

func (b *canonBuf) u64(v uint64) {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
}

// f64 appends the IEEE-754 bit pattern, quieting every NaN to one
// canonical payload so "not applicable" hashes identically everywhere.
func (b *canonBuf) f64(v float64) {
	bits := math.Float64bits(v)
	if v != v {
		bits = 0x7FF8000000000000
	}
	b.u64(bits)
}

func (b *canonBuf) str(s string) {
	b.u64(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

func (b *canonBuf) strs(ss []string) {
	b.u64(uint64(len(ss)))
	for _, s := range ss {
		b.str(s)
	}
}

// Manifest maps experiment id → hex digest. It is the on-disk golden
// format: one "id  digest" line per artifact, sorted by id.
type Manifest map[string]string

// Load reads a manifest file. A missing file is an error — run the gate
// test with -update to create it.
func Load(path string) (Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses a manifest from r.
func Read(r io.Reader) (Manifest, error) {
	m := Manifest{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("golden: manifest line %d: want \"id digest\", got %q", line, text)
		}
		if _, dup := m[fields[0]]; dup {
			return nil, fmt.Errorf("golden: manifest line %d: duplicate id %q", line, fields[0])
		}
		m[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Write stores the manifest at path (creating parent directories),
// sorted by id for stable diffs.
func (m Manifest) Write(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("# Golden artifact digests — SHA-256 of the canonical serialization\n")
	b.WriteString("# (internal/sweep/golden). Regenerate with:\n")
	b.WriteString("#   go test ./internal/sweep -run TestGolden -update\n")
	for _, id := range m.IDs() {
		fmt.Fprintf(&b, "%s  %s\n", id, m[id])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// IDs returns the manifest's ids, sorted.
func (m Manifest) IDs() []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Diff compares a freshly-computed manifest against the checked-in one
// and describes every mismatch: changed digests, ids missing from the
// golden set, and golden ids that no longer exist.
func Diff(got, want Manifest) []string {
	var out []string
	for _, id := range got.IDs() {
		w, ok := want[id]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s: not in golden manifest (new experiment? rerun with -update)", id))
		case w != got[id]:
			out = append(out, fmt.Sprintf("%s: digest %s, golden %s", id, got[id], w))
		}
	}
	for _, id := range want.IDs() {
		if _, ok := got[id]; !ok {
			out = append(out, fmt.Sprintf("%s: in golden manifest but not produced", id))
		}
	}
	return out
}
