package sweep

import (
	"context"
	"strings"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/telemetry"
)

// A telemetry-carrying sweep must produce artifacts byte-identical to a
// bare one: spans are observability, never part of the result or the
// cache key.
func TestTelemetryIsResultNeutral(t *testing.T) {
	t.Parallel()
	const id = "table3"
	bare := New(1).Run(context.Background(), []string{id}, core.Options{Quick: true})
	if bare[0].Err != nil {
		t.Fatalf("bare run: %v", bare[0].Err)
	}

	tr := telemetry.NewTrace("req-neutral", "request")
	ctx := telemetry.ContextWithSpan(context.Background(), tr.Root())
	traced := New(1).Run(ctx, []string{id}, core.Options{Quick: true})
	if traced[0].Err != nil {
		t.Fatalf("traced run: %v", traced[0].Err)
	}
	tr.Finish()

	if got, want := traced[0].Artifact.Render(), bare[0].Artifact.Render(); got != want {
		t.Fatalf("telemetry changed the artifact:\n--- bare ---\n%s\n--- traced ---\n%s", want, got)
	}
}

// A served sweep's span tree holds one artifact span per id, with the
// simulated jobs' phase spans (and virtual makespan) nested inside.
func TestSweepSpanTree(t *testing.T) {
	t.Parallel()
	tr := telemetry.NewTrace("req-tree", "request")
	ctx := telemetry.ContextWithSpan(context.Background(), tr.Root())
	eng := New(1)
	res := eng.Run(ctx, []string{"table3"}, core.Options{Quick: true})
	if res[0].Err != nil {
		t.Fatalf("run: %v", res[0].Err)
	}
	tr.Finish()
	root := tr.Tree()

	art := root.Find("artifact:table3")
	if art == nil {
		t.Fatalf("no artifact span in tree:\n%s", renderTree(root))
	}
	var job *telemetry.SpanNode
	for _, c := range art.Children {
		if strings.HasPrefix(c.Name, "job:") {
			job = c
			break
		}
	}
	if job == nil {
		t.Fatalf("artifact span has no job children:\n%s", renderTree(root))
	}
	for _, phase := range []string{"setup", "run-pass", "report"} {
		if job.Find(phase) == nil {
			t.Errorf("job span missing phase %q:\n%s", phase, renderTree(root))
		}
	}
	vm := job.Find("virtual-makespan")
	if vm == nil {
		t.Fatalf("job span missing virtual-makespan:\n%s", renderTree(root))
	}
	if vm.Clock != string(telemetry.ClockVirtual) {
		t.Fatalf("virtual-makespan clock = %q, want %q", vm.Clock, telemetry.ClockVirtual)
	}
	if vm.DurationNS <= 0 {
		t.Fatalf("virtual-makespan duration = %d, want > 0", vm.DurationNS)
	}

	// A second run of the same key is a cache hit: the artifact span is
	// annotated cached=true and carries no job spans.
	tr2 := telemetry.NewTrace("req-tree-2", "request")
	ctx2 := telemetry.ContextWithSpan(context.Background(), tr2.Root())
	res2 := eng.Run(ctx2, []string{"table3"}, core.Options{Quick: true})
	if res2[0].Err != nil {
		t.Fatalf("cached run: %v", res2[0].Err)
	}
	if !res2[0].Cached {
		t.Fatal("second run was not served from cache")
	}
	tr2.Finish()
	art2 := tr2.Tree().Find("artifact:table3")
	if art2 == nil {
		t.Fatal("cached run has no artifact span")
	}
	if v, ok := art2.Attrs["cached"].(bool); !ok || !v {
		t.Fatalf("cached artifact span attrs = %v, want cached=true", art2.Attrs)
	}
	if len(art2.Children) != 0 {
		t.Fatalf("cached artifact span has %d children, want none", len(art2.Children))
	}
}

func renderTree(n *telemetry.SpanNode) string {
	var sb strings.Builder
	_ = telemetry.WriteTree(&sb, n)
	return sb.String()
}
