package sweep

import (
	"bytes"
	"context"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/sweep/golden"
)

// congestedIDs are the experiments whose workloads cross nodes and so
// actually exercise the routed contention model under Options.Congestion.
var congestedIDs = []string{"hpcg-weak", "table4", "ext-network"}

// TestCongestedSweepIsDeterministic is the determinism gate for the
// congestion path: a congested 8-worker sweep must produce artifacts
// byte-identical to a congested sequential one. The two-pass flow replay
// runs once per experiment invocation, so any divergence here means the
// max-min solve or the replay leaks goroutine-scheduling order.
func TestCongestedSweepIsDeterministic(t *testing.T) {
	t.Parallel()
	opt := core.Options{Quick: true, Congestion: true}
	seqEng := New(1)
	seq := seqEng.Run(context.Background(), congestedIDs, opt)
	parEng := New(8)
	par := parEng.Run(context.Background(), congestedIDs, opt)
	for i, r := range par {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if seq[i].Err != nil {
			t.Fatalf("%s (sequential): %v", seq[i].ID, seq[i].Err)
		}
		if !bytes.Equal(golden.Canonical(r.Artifact), golden.Canonical(seq[i].Artifact)) {
			t.Errorf("%s: congested parallel artifact differs from sequential (digest %s vs %s)",
				r.ID, golden.Digest(r.Artifact), golden.Digest(seq[i].Artifact))
		}
	}
}

// TestCongestionOptionKeysTheCache pins the cache-correctness contract:
// the same experiment run with and without Congestion must occupy
// distinct cache slots, and the congested run of a multi-node experiment
// must not silently reuse (or be reused by) the default-path artifact.
func TestCongestionOptionKeysTheCache(t *testing.T) {
	t.Parallel()
	eng := New(1)
	free := eng.Run(context.Background(), []string{"table4"}, core.Options{Quick: true})[0]
	if free.Err != nil {
		t.Fatal(free.Err)
	}
	cong := eng.Run(context.Background(), []string{"table4"}, core.Options{Quick: true, Congestion: true})[0]
	if cong.Err != nil {
		t.Fatal(cong.Err)
	}
	if cong.Cached {
		t.Error("congested run was served from the contention-free cache slot")
	}
	if bytes.Equal(golden.Canonical(free.Artifact), golden.Canonical(cong.Artifact)) {
		t.Error("congestion left the multi-node table4 artifact byte-identical")
	}
	// Same options again: now it may (and must) hit its own slot.
	again := eng.Run(context.Background(), []string{"table4"}, core.Options{Quick: true, Congestion: true})[0]
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if !again.Cached {
		t.Error("identical congested rerun missed the cache")
	}
	if !bytes.Equal(golden.Canonical(again.Artifact), golden.Canonical(cong.Artifact)) {
		t.Error("cached congested artifact differs from the original")
	}
}
