package sweep

import (
	"bytes"
	"context"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sweep/golden"
)

// TestEventEngineMatchesGoroutine is the whole-repo differential gate
// for the discrete-event engine: every paper artifact and extension
// ablation of the quick-mode sweep, re-run on the event engine, must be
// byte-identical to the goroutine-engine fixture. Together with the
// golden manifest this pins the event engine to the same digests the
// repo has always shipped.
func TestEventEngineMatchesGoroutine(t *testing.T) {
	t.Parallel()
	seq := sequentialArtifacts(t)
	eng := New(0)
	results := eng.Run(context.Background(), allIDs(), core.Options{
		Quick: true, Engine: simmpi.EngineEvent,
	})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s (event engine): %v", r.ID, r.Err)
		}
		want, ok := seq[r.ID]
		if !ok {
			t.Fatalf("%s: no goroutine-engine counterpart", r.ID)
		}
		if !bytes.Equal(golden.Canonical(r.Artifact), golden.Canonical(want)) {
			t.Errorf("%s: event-engine artifact differs from goroutine engine (digest %s vs %s)",
				r.ID, golden.Digest(r.Artifact), golden.Digest(want))
		}
	}
	if len(results) != len(seq) {
		t.Errorf("event-engine sweep produced %d artifacts, goroutine %d", len(results), len(seq))
	}
}

// TestCacheKeysOnEngine pins the cache contract the differential gate
// depends on: requests that differ only in engine must execute
// separately, while a repeat under the same engine is served cached.
func TestCacheKeysOnEngine(t *testing.T) {
	t.Parallel()
	eng := New(1)
	ctx := context.Background()
	gor := eng.Run(ctx, []string{"table3"}, core.Options{Quick: true})[0]
	if gor.Err != nil {
		t.Fatal(gor.Err)
	}
	evt := eng.Run(ctx, []string{"table3"}, core.Options{Quick: true, Engine: simmpi.EngineEvent})[0]
	if evt.Err != nil {
		t.Fatal(evt.Err)
	}
	if evt.Cached {
		t.Fatal("event-engine run was served from the goroutine engine's cache slot")
	}
	if !bytes.Equal(golden.Canonical(gor.Artifact), golden.Canonical(evt.Artifact)) {
		t.Fatalf("engines disagree on table3: %s vs %s",
			golden.Digest(gor.Artifact), golden.Digest(evt.Artifact))
	}
	again := eng.Run(ctx, []string{"table3"}, core.Options{Quick: true, Engine: simmpi.EngineEvent})[0]
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if !again.Cached {
		t.Fatal("repeat event-engine run missed the cache")
	}
}
