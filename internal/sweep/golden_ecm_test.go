package sweep

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/sweep/golden"
)

// ecmManifestPath is the checked-in golden digest set for the ECM-mode
// sweep. It lives beside the stock roofline manifest.txt, which this
// file must never touch: the neutrality contract is that adding the ECM
// mode leaves every default-model digest byte-identical.
var ecmManifestPath = filepath.Join("testdata", "golden", "manifest-ecm.txt")

// ecmIDs is the model-sensitive subset the ECM golden gate pins:
// the compute-heavy paper tables whose phase times the pricing model
// directly sets. Config-only artifacts are deliberately absent — they
// render identically under every model.
func ecmIDs() []string {
	return []string{"table3", "table4", "table6", "fig3"}
}

// The ECM quick-mode sweep fixture, computed once and shared by the
// golden gate and the worker-count determinism gate.
var (
	ecmOnce sync.Once
	ecmArts map[string]*core.Artifact
	ecmErr  error
)

func ecmArtifacts(t *testing.T) map[string]*core.Artifact {
	t.Helper()
	ecmOnce.Do(func() {
		eng := New(1)
		results := eng.Run(context.Background(), ecmIDs(),
			core.Options{Quick: true, Model: perfmodel.ModelECM})
		ecmArts = map[string]*core.Artifact{}
		for _, r := range results {
			if r.Err != nil {
				ecmErr = r.Err
				return
			}
			ecmArts[r.ID] = r.Artifact
		}
	})
	if ecmErr != nil {
		t.Fatalf("ecm sweep failed: %v", ecmErr)
	}
	return ecmArts
}

// TestGoldenDigestsECM pins the ECM-mode artifacts to their checked-in
// digests — the ECM twin of TestGoldenDigests, regenerated with the
// same -update flag. Reviewing a manifest-ecm.txt diff answers "did the
// ECM model's predictions move", exactly as manifest.txt answers it for
// the roofline.
func TestGoldenDigestsECM(t *testing.T) {
	t.Parallel()
	arts := ecmArtifacts(t)
	got := golden.Manifest{}
	for id, a := range arts {
		got[id] = golden.Digest(a)
	}
	if *update {
		if err := got.Write(ecmManifestPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d ECM golden digests to %s", len(got), ecmManifestPath)
		return
	}
	want, err := golden.Load(ecmManifestPath)
	if err != nil {
		t.Fatalf("loading ECM golden manifest (run with -update to create it): %v", err)
	}
	for _, line := range golden.Diff(got, want) {
		t.Error(line)
	}
}

// TestECMDistinctFromRoofline proves the model option actually reaches
// the simulation: every pinned ECM artifact must differ from its
// roofline counterpart. A model knob that cached or digested into the
// roofline slot would silently disable the entire ECM suite.
func TestECMDistinctFromRoofline(t *testing.T) {
	t.Parallel()
	ecm := ecmArtifacts(t)
	roofline := sequentialArtifacts(t)
	for _, id := range ecmIDs() {
		e, r := ecm[id], roofline[id]
		if e == nil || r == nil {
			t.Fatalf("%s: missing artifact (ecm %v, roofline %v)", id, e != nil, r != nil)
		}
		if golden.Digest(e) == golden.Digest(r) {
			t.Errorf("%s: ECM artifact digest equals roofline digest %s — model option not applied",
				id, golden.Digest(r))
		}
	}
}

// TestECMParallelMatchesSequential is the worker-count determinism gate
// for the ECM mode: a j8 ECM sweep must produce artifacts byte-identical
// to the j1 fixture.
func TestECMParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	seq := ecmArtifacts(t)
	eng := New(8)
	results := eng.Run(context.Background(), ecmIDs(),
		core.Options{Quick: true, Model: perfmodel.ModelECM})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		want, ok := seq[r.ID]
		if !ok {
			t.Fatalf("%s: no sequential counterpart", r.ID)
		}
		if !bytes.Equal(golden.Canonical(r.Artifact), golden.Canonical(want)) {
			t.Errorf("%s: j8 ECM artifact differs from j1 (digest %s vs %s)",
				r.ID, golden.Digest(r.Artifact), golden.Digest(want))
		}
	}
	if len(results) != len(seq) {
		t.Errorf("j8 ECM sweep produced %d artifacts, j1 %d", len(results), len(seq))
	}
}
