package sweep

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"a64fxbench/internal/core"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
)

// CounterSnapshot runs the given experiments with the virtual PMU
// enabled and flattens every counted job into one canonical metrics
// snapshot — the unit the regression sentinel diffs run against run.
//
// Each unique id runs once (duplicates coalesce); every job an
// experiment simulates contributes its makespan, counter totals, and
// derived rates under the key prefix "<id>/<job#> <label>". The
// snapshot is sorted and ready for WriteJSON; results are returned for
// error reporting (the error is FirstError over them).
//
// Counters never change artifact contents, and the simulation is
// deterministic in virtual time, so the snapshot is byte-identical
// across worker counts and goroutine schedules.
func CounterSnapshot(ctx context.Context, eng *Engine, ids []string, opt core.Options) (*metrics.Snapshot, []Result, error) {
	if opt.Counters == nil {
		opt.Counters = &metrics.Config{}
	}
	cfg := opt.Counters.Sanitized()
	opt.Counters = &cfg

	// Deduplicate ids: counted runs bypass the cache, so a duplicate
	// would re-run the experiment into the same sink and interleave
	// streams across workers.
	uniq := make([]string, 0, len(ids))
	seen := map[string]bool{}
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			uniq = append(uniq, id)
		}
	}
	sinks := make(map[string]*simmpi.MemorySink, len(uniq))
	for _, id := range uniq {
		sinks[id] = &simmpi.MemorySink{}
	}
	// A private engine mirrors the caller's settings without clobbering
	// a shared SinkFor (and without polluting the caller's cache with
	// nothing — counted runs bypass it anyway).
	run := &Engine{Workers: eng.Workers, FailFast: eng.FailFast,
		SinkFor: func(id string) simmpi.TraceSink {
			if s, ok := sinks[id]; ok {
				return s
			}
			return nil
		}}
	results := run.Run(ctx, uniq, opt)

	snap := metrics.NewSnapshot(map[string]string{
		"quick":      strconv.FormatBool(opt.Quick),
		"congestion": strconv.FormatBool(opt.Congestion),
		"period_ns":  strconv.FormatInt(int64(cfg.Period), 10),
		// The canonical model name ("" → "roofline") identifies which
		// pricing model produced the snapshot; `a64fxbench diff` switches
		// to the report-only roofline-vs-ECM delta table when two
		// snapshots disagree here.
		"model": string(opt.ArtifactKey().Model),
	})
	order := make([]string, len(uniq))
	copy(order, uniq)
	sort.Strings(order)
	for _, id := range order {
		for j, jt := range obs.SplitJobs(sinks[id].Events) {
			cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
			if cr == nil {
				continue
			}
			prefix := fmt.Sprintf("%s/%03d %s", id, j, jt.Label)
			obs.AppendCounterEntries(snap, prefix, cr)
		}
	}
	snap.Sort()
	return snap, results, FirstError(results)
}
