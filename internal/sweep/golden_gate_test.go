package sweep

import (
	"bytes"
	"context"
	"flag"
	"path/filepath"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/sweep/golden"
)

// update regenerates the golden digest manifest:
//
//	go test ./internal/sweep -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden with freshly computed digests")

// manifestPath is the checked-in golden digest set for the Quick-mode
// sweep (the full-fidelity sweep takes minutes; Quick exercises the same
// code paths with fewer simulated iterations).
var manifestPath = filepath.Join("testdata", "golden", "manifest.txt")

// TestGoldenDigests pins every artifact of the full sweep — all paper
// tables/figures plus the extension ablations — to its checked-in
// SHA-256 digest. Any change to simulation results, artifact layout, or
// the canonical serialization trips this gate; if the change is
// intended, regenerate with -update and review the manifest diff.
func TestGoldenDigests(t *testing.T) {
	t.Parallel()
	arts := sequentialArtifacts(t)
	got := golden.Manifest{}
	for id, a := range arts {
		got[id] = golden.Digest(a)
	}
	if *update {
		if err := got.Write(manifestPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden digests to %s", len(got), manifestPath)
		return
	}
	want, err := golden.Load(manifestPath)
	if err != nil {
		t.Fatalf("loading golden manifest (run with -update to create it): %v", err)
	}
	for _, line := range golden.Diff(got, want) {
		t.Error(line)
	}
}

// TestParallelMatchesSequential is the determinism gate for the sweep
// engine itself: a maximally parallel sweep must produce artifacts
// byte-identical to the sequential one, for every experiment and
// extension. The simulation runs on virtual clocks, so any divergence
// here is a real scheduling-dependence bug.
func TestParallelMatchesSequential(t *testing.T) {
	t.Parallel()
	seq := sequentialArtifacts(t)
	eng := New(8) // fresh engine: nothing shared with the fixture's cache
	results := eng.Run(context.Background(), allIDs(), core.Options{Quick: true})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		want, ok := seq[r.ID]
		if !ok {
			t.Fatalf("%s: no sequential counterpart", r.ID)
		}
		if !bytes.Equal(golden.Canonical(r.Artifact), golden.Canonical(want)) {
			t.Errorf("%s: parallel artifact differs from sequential (digest %s vs %s)",
				r.ID, golden.Digest(r.Artifact), golden.Digest(want))
		}
	}
	if len(results) != len(seq) {
		t.Errorf("parallel sweep produced %d artifacts, sequential %d", len(results), len(seq))
	}
}
