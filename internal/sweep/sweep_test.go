package sweep

import (
	"context"
	"strings"
	"sync"
	"testing"

	"a64fxbench/internal/core"
)

// allIDs lists every paper experiment and extension, excluding the
// throwaway ext-test-* experiments other tests register.
func allIDs() []string {
	var ids []string
	for _, e := range core.List() {
		ids = append(ids, e.ID)
	}
	for _, e := range core.Extensions() {
		if !strings.HasPrefix(e.ID, "ext-test-") {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// The full quick-mode sweep is the expensive fixture both the
// parallel-vs-sequential test and the golden gate need; compute it once.
var (
	seqOnce sync.Once
	seqArts map[string]*core.Artifact
	seqErr  error
)

func sequentialArtifacts(t *testing.T) map[string]*core.Artifact {
	t.Helper()
	seqOnce.Do(func() {
		eng := New(1)
		results := eng.Run(context.Background(), allIDs(), core.Options{Quick: true})
		seqArts = map[string]*core.Artifact{}
		for _, r := range results {
			if r.Err != nil {
				seqErr = r.Err
				return
			}
			seqArts[r.ID] = r.Artifact
		}
	})
	if seqErr != nil {
		t.Fatalf("sequential sweep failed: %v", seqErr)
	}
	return seqArts
}

func TestLookup(t *testing.T) {
	t.Parallel()
	if _, err := Lookup("table3"); err != nil {
		t.Fatalf("table3: %v", err)
	}
	if _, err := Lookup("ext-network"); err != nil {
		t.Fatalf("ext-network: %v", err)
	}
	if _, err := Lookup("nosuch"); err == nil {
		t.Fatal("want error for unknown id")
	}
}

func TestRunReturnsInputOrder(t *testing.T) {
	t.Parallel()
	eng := New(4)
	ids := []string{"table1", "table2", "table1"}
	results := eng.Run(context.Background(), ids, core.Options{Quick: true})
	if len(results) != len(ids) {
		t.Fatalf("got %d results, want %d", len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Errorf("result %d: id %q, want %q", i, r.ID, ids[i])
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.ID, r.Err)
		}
		if r.Artifact == nil {
			t.Errorf("%s: nil artifact", r.ID)
		}
	}
	// The duplicate id coalesces onto one execution.
	if !results[0].Cached && !results[2].Cached {
		t.Error("duplicate id should have hit the single-flight cache")
	}
}

func TestCachePersistsAcrossRuns(t *testing.T) {
	t.Parallel()
	eng := New(2)
	ctx := context.Background()
	first := eng.Run(ctx, []string{"table2"}, core.Options{Quick: true})
	if first[0].Err != nil {
		t.Fatal(first[0].Err)
	}
	if first[0].Cached {
		t.Error("first execution reported as cached")
	}
	second := eng.Run(ctx, []string{"table2"}, core.Options{Quick: true})
	if second[0].Err != nil {
		t.Fatal(second[0].Err)
	}
	if !second[0].Cached {
		t.Error("second execution should be a cache hit")
	}
	if second[0].Artifact != first[0].Artifact {
		t.Error("cache hit should return the same artifact")
	}
	// Different Options are a different cache key.
	third := eng.Run(ctx, []string{"table2"}, core.Options{Quick: false})
	if third[0].Err != nil {
		t.Fatal(third[0].Err)
	}
	if third[0].Cached {
		t.Error("different Options must not hit the Quick cache entry")
	}
}

func TestFailFastSkipsRemaining(t *testing.T) {
	t.Parallel()
	eng := New(1) // one worker makes the skip deterministic
	eng.FailFast = true
	results := eng.Run(context.Background(),
		[]string{"nosuch", "table1", "table2"}, core.Options{Quick: true})
	if results[0].Err == nil {
		t.Fatal("unknown id should fail")
	}
	if results[0].Skipped() {
		t.Error("the failing experiment itself is not a skip")
	}
	for _, r := range results[1:] {
		if !r.Skipped() {
			t.Errorf("%s: want skipped after fail-fast, got err=%v artifact=%v",
				r.ID, r.Err, r.Artifact != nil)
		}
	}
	sum := Summarize(results)
	if sum.Failed != 1 || sum.Skipped != 2 || sum.OK != 0 {
		t.Errorf("summary %+v, want 1 failed / 2 skipped", sum)
	}
	if FirstError(results) == nil {
		t.Error("FirstError should surface the lookup failure")
	}
	if !strings.Contains(sum.String(), "2 skipped") {
		t.Errorf("summary string %q should mention skips", sum)
	}
}

func TestWithoutFailFastAllRun(t *testing.T) {
	t.Parallel()
	eng := New(2)
	results := eng.Run(context.Background(),
		[]string{"table1", "nosuch", "table2"}, core.Options{Quick: true})
	sum := Summarize(results)
	if sum.OK != 2 || sum.Failed != 1 || sum.Skipped != 0 {
		t.Fatalf("summary %+v, want 2 ok / 1 failed / 0 skipped", sum)
	}
	if results[0].Artifact == nil || results[2].Artifact == nil {
		t.Error("experiments after a failure must still produce artifacts")
	}
}

func TestCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := New(2).Run(ctx, []string{"table1", "table2"}, core.Options{Quick: true})
	for _, r := range results {
		if !r.Skipped() {
			t.Errorf("%s: want skip under cancelled context, got %v", r.ID, r.Err)
		}
	}
}

func TestPerExperimentTiming(t *testing.T) {
	t.Parallel()
	results := New(1).Run(context.Background(), []string{"table3"}, core.Options{Quick: true})
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Elapsed <= 0 {
		t.Error("want a positive per-experiment elapsed time")
	}
}

func TestPanicBecomesError(t *testing.T) {
	// Registered once for the whole package; not parallel with itself.
	const id = "ext-test-panic"
	if _, err := core.GetExtension(id); err != nil {
		if err := core.RegisterExtension(&core.Experiment{
			ID: id, Title: "panics", Kind: core.Table,
			Run: func(core.Options) (*core.Artifact, error) { panic("boom") },
		}); err != nil {
			t.Fatal(err)
		}
	}
	results := New(1).Run(context.Background(), []string{id}, core.Options{})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "panicked") {
		t.Fatalf("want panic converted to error, got %v", results[0].Err)
	}
}
