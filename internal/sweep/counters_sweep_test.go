package sweep

import (
	"bytes"
	"context"
	"testing"

	"a64fxbench/internal/core"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/sweep/golden"
)

// counterIDs is a small mixed set — single-node, multi-node and an
// extension — enough to exercise snapshot assembly without the full
// suite's runtime.
var counterIDs = []string{"table3", "fig2", "table3"}

// snapshotBytes runs CounterSnapshot at the given worker bound and
// returns the canonical JSON.
func snapshotBytes(t *testing.T, workers int) []byte {
	t.Helper()
	snap, _, err := CounterSnapshot(context.Background(), New(workers), counterIDs,
		core.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := snap.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestCounterSnapshotDeterministicAcrossWorkers is the sentinel's own
// determinism gate: -j1 and -j8 sweeps must serialize byte-identical
// snapshots (the regression diff gates on exact work counts, so any
// schedule dependence here would make CI flake).
func TestCounterSnapshotDeterministicAcrossWorkers(t *testing.T) {
	t.Parallel()
	seq := snapshotBytes(t, 1)
	if len(seq) == 0 {
		t.Fatal("empty snapshot")
	}
	par := snapshotBytes(t, 8)
	if !bytes.Equal(seq, par) {
		t.Fatal("-j1 and -j8 counter snapshots differ")
	}
	// And the snapshot is self-diff clean.
	snap, err := metrics.ReadSnapshot(bytes.NewReader(seq))
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := metrics.ReadSnapshot(bytes.NewReader(par))
	if err != nil {
		t.Fatal(err)
	}
	if res := metrics.Diff(snap, snap2, metrics.DiffOptions{}); res.Failed() || res.Compared == 0 {
		t.Fatalf("self-diff not clean: %+v", res)
	}
}

// TestCountersArtifactNeutral pins Options.Counters as an observability
// field: the artifact of a counted run must be byte-identical to the
// uncounted (cached-path) one.
func TestCountersArtifactNeutral(t *testing.T) {
	t.Parallel()
	eng := New(2)
	ids := []string{"table3", "fig2"}
	plain := eng.Run(context.Background(), ids, core.Options{Quick: true})
	counted := eng.Run(context.Background(), ids, core.Options{
		Quick:    true,
		Counters: &metrics.Config{},
	})
	for i, id := range ids {
		if plain[i].Err != nil || counted[i].Err != nil {
			t.Fatalf("%s: %v / %v", id, plain[i].Err, counted[i].Err)
		}
		if counted[i].Cached {
			t.Errorf("%s: counted run hit the cache — it must bypass it", id)
		}
		if !bytes.Equal(golden.Canonical(plain[i].Artifact), golden.Canonical(counted[i].Artifact)) {
			t.Errorf("%s: counters changed the artifact (digest %s vs %s)",
				id, golden.Digest(counted[i].Artifact), golden.Digest(plain[i].Artifact))
		}
	}
}
