package decomp

import "testing"

// FuzzFactor3D checks the 3D grid factorisation invariants for arbitrary
// rank counts: the factors multiply back to p, are ordered px ≥ py ≥ pz,
// and the resulting grid's rank/coordinate maps are inverse bijections.
func FuzzFactor3D(f *testing.F) {
	f.Add(uint16(1))
	f.Add(uint16(2))
	f.Add(uint16(48))   // one A64FX node, one rank per core
	f.Add(uint16(64))   // perfect cube
	f.Add(uint16(97))   // prime
	f.Add(uint16(4920)) // ARCHER's full node count
	f.Fuzz(func(t *testing.T, pRaw uint16) {
		p := int(pRaw)
		px, py, pz := Factor3D(p)
		if p < 1 {
			if px != 1 || py != 1 || pz != 1 {
				t.Fatalf("Factor3D(%d) = %d,%d,%d, want 1,1,1", p, px, py, pz)
			}
			return
		}
		if px*py*pz != p {
			t.Fatalf("Factor3D(%d) = %d·%d·%d = %d", p, px, py, pz, px*py*pz)
		}
		if px < py || py < pz || pz < 1 {
			t.Fatalf("Factor3D(%d) = %d,%d,%d not ordered", p, px, py, pz)
		}
		g := NewGrid3D(p)
		if g.Size() != p {
			t.Fatalf("grid size %d, want %d", g.Size(), p)
		}
		// Rank ↔ coordinate round trip, sampled across the grid.
		step := 1
		if p > 64 {
			step = p / 64
		}
		for r := 0; r < p; r += step {
			x, y, z := g.Coords(r)
			if back := g.Rank(x, y, z); back != r {
				t.Fatalf("p=%d rank %d → (%d,%d,%d) → %d", p, r, x, y, z, back)
			}
			if n := g.CountInteriorNeighbors(r); n < 0 || n > 6 {
				t.Fatalf("p=%d rank %d: %d neighbours", p, r, n)
			}
		}
		// Out-of-grid coordinates must map to -1, not a live rank.
		if g.Rank(-1, 0, 0) != -1 || g.Rank(g.PX, 0, 0) != -1 {
			t.Fatal("out-of-grid coordinates must return -1")
		}
	})
}

// FuzzFactor2D checks the 2D factorisation: exact product, px ≥ py, and
// py is the largest divisor not exceeding √p.
func FuzzFactor2D(f *testing.F) {
	f.Add(uint16(1))
	f.Add(uint16(36))
	f.Add(uint16(37))
	f.Add(uint16(1024))
	f.Fuzz(func(t *testing.T, pRaw uint16) {
		p := int(pRaw)
		px, py := Factor2D(p)
		if p < 1 {
			if px != 1 || py != 1 {
				t.Fatalf("Factor2D(%d) = %d,%d, want 1,1", p, px, py)
			}
			return
		}
		if px*py != p || px < py || py < 1 {
			t.Fatalf("Factor2D(%d) = %d·%d", p, px, py)
		}
		for d := py + 1; d*d <= p; d++ {
			if p%d == 0 {
				t.Fatalf("Factor2D(%d) = %d,%d but %d divides more squarely", p, px, py, d)
			}
		}
	})
}
