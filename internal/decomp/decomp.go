// Package decomp provides the regular domain decompositions the
// benchmarks share: 1D/2D/3D process grids, neighbour identification, and
// face-halo exchange over the simmpi runtime.
package decomp

import (
	"fmt"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// Factor3D factors p into the most cubic process grid px·py·pz = p, with
// px ≥ py ≥ pz as balanced as possible — the decomposition HPCG uses.
func Factor3D(p int) (px, py, pz int) {
	if p < 1 {
		return 1, 1, 1
	}
	best := [3]int{p, 1, 1}
	bestScore := score3(p, 1, 1)
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b != 0 {
				continue
			}
			c := q / b
			if s := score3(c, b, a); s < bestScore {
				best = [3]int{c, b, a}
				bestScore = s
			}
		}
	}
	return best[0], best[1], best[2]
}

// score3 measures how far a factorisation is from cubic (lower is better).
func score3(a, b, c int) int {
	max, min := a, a
	for _, v := range []int{b, c} {
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	return max - min
}

// Factor2D factors p into the most square px·py = p grid with px ≥ py.
func Factor2D(p int) (px, py int) {
	if p < 1 {
		return 1, 1
	}
	best := [2]int{p, 1}
	for a := 1; a*a <= p; a++ {
		if p%a == 0 {
			best = [2]int{p / a, a}
		}
	}
	return best[0], best[1]
}

// Grid3D is a 3D process grid of PX×PY×PZ ranks.
type Grid3D struct {
	PX, PY, PZ int
}

// NewGrid3D builds the most cubic grid for p ranks.
func NewGrid3D(p int) Grid3D {
	px, py, pz := Factor3D(p)
	return Grid3D{PX: px, PY: py, PZ: pz}
}

// Size returns the total rank count.
func (g Grid3D) Size() int { return g.PX * g.PY * g.PZ }

// Coords maps a rank to its (x, y, z) grid position (x fastest).
func (g Grid3D) Coords(rank int) (x, y, z int) {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("decomp: rank %d outside grid %dx%dx%d", rank, g.PX, g.PY, g.PZ))
	}
	x = rank % g.PX
	y = (rank / g.PX) % g.PY
	z = rank / (g.PX * g.PY)
	return
}

// Rank maps grid coordinates to a rank, or -1 if outside the grid.
func (g Grid3D) Rank(x, y, z int) int {
	if x < 0 || x >= g.PX || y < 0 || y >= g.PY || z < 0 || z >= g.PZ {
		return -1
	}
	return x + g.PX*(y+g.PY*z)
}

// Face identifies one of the six axis-aligned faces of a subdomain.
type Face int

// The six faces, in exchange order.
const (
	XMinus Face = iota
	XPlus
	YMinus
	YPlus
	ZMinus
	ZPlus
	NumFaces
)

// FaceBytes reports the wire size of one face halo of a local nx×ny×nz
// block with the given halo width and element size.
func FaceBytes(f Face, nx, ny, nz, width int, elem units.Bytes) units.Bytes {
	var cells int
	switch f {
	case XMinus, XPlus:
		cells = ny * nz
	case YMinus, YPlus:
		cells = nx * nz
	case ZMinus, ZPlus:
		cells = nx * ny
	default:
		panic("decomp: invalid face")
	}
	return units.Bytes(cells*width) * elem
}

// HaloSpec describes one face-halo exchange: the local block extents, the
// halo width in cells, and the per-cell payload size.
type HaloSpec struct {
	NX, NY, NZ int
	Width      int
	Elem       units.Bytes
}

// Exchange performs a six-face halo exchange for the given rank on the
// grid: each existing neighbour receives this rank's face and supplies its
// own. Wire sizes are declared exactly; payloads are placeholder slices
// (the runtime meters bytes, not payload length). The tag parameter
// separates concurrent exchanges.
func Exchange(r *simmpi.Rank, g Grid3D, spec HaloSpec, tag int) {
	r.Region("halo")
	defer r.EndRegion()
	type pending struct {
		nbr  int
		face Face
	}
	var posts []pending
	// Post all sends first (eager), then drain receives — the standard
	// deadlock-free ordering.
	for f := XMinus; f < NumFaces; f++ {
		nbr := neighborOf(g, r.ID(), f)
		if nbr < 0 {
			continue
		}
		bytes := FaceBytes(f, spec.NX, spec.NY, spec.NZ, spec.Width, spec.Elem)
		r.Send(nbr, tag+int(f), nil, bytes)
		posts = append(posts, pending{nbr, f})
	}
	for _, p := range posts {
		// The neighbour sent its matching opposite face with the
		// opposite face's tag.
		r.Recv(p.nbr, tag+int(opposite(p.face)))
	}
}

// neighborOf computes the neighbour across a face (all six handled).
func neighborOf(g Grid3D, rank int, f Face) int {
	x, y, z := g.Coords(rank)
	switch f {
	case XMinus:
		return g.Rank(x-1, y, z)
	case XPlus:
		return g.Rank(x+1, y, z)
	case YMinus:
		return g.Rank(x, y-1, z)
	case YPlus:
		return g.Rank(x, y+1, z)
	case ZMinus:
		return g.Rank(x, y, z-1)
	case ZPlus:
		return g.Rank(x, y, z+1)
	}
	panic("decomp: invalid face")
}

// NeighborAcross is the exported form of neighborOf.
func (g Grid3D) NeighborAcross(rank int, f Face) int { return neighborOf(g, rank, f) }

// opposite returns the facing face.
func opposite(f Face) Face {
	switch f {
	case XMinus:
		return XPlus
	case XPlus:
		return XMinus
	case YMinus:
		return YPlus
	case YPlus:
		return YMinus
	case ZMinus:
		return ZPlus
	case ZPlus:
		return ZMinus
	}
	panic("decomp: invalid face")
}

// CountInteriorNeighbors reports how many of the six neighbours exist for
// a rank — useful for load metrics in tests.
func (g Grid3D) CountInteriorNeighbors(rank int) int {
	n := 0
	for f := XMinus; f < NumFaces; f++ {
		if neighborOf(g, rank, f) >= 0 {
			n++
		}
	}
	return n
}

// BlockPartition splits n items over p parts: part i gets Part(i) items,
// with the remainder spread over the first parts — the distribution COSA
// uses for blocks over processes.
type BlockPartition struct {
	N, P int
}

// Part reports the item count of part i.
func (b BlockPartition) Part(i int) int {
	if b.P <= 0 || i < 0 || i >= b.P {
		return 0
	}
	base := b.N / b.P
	if i < b.N%b.P {
		return base + 1
	}
	return base
}

// MaxPart reports the largest part size (the load-balance bottleneck).
func (b BlockPartition) MaxPart() int {
	if b.P <= 0 {
		return 0
	}
	return b.Part(0)
}

// ActiveParts reports how many parts receive at least one item.
func (b BlockPartition) ActiveParts() int {
	if b.P <= 0 {
		return 0
	}
	if b.N >= b.P {
		return b.P
	}
	return b.N
}
