package decomp

import (
	"testing"
	"testing/quick"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

func TestFactor3D(t *testing.T) {
	t.Parallel()
	cases := []struct {
		p          int
		px, py, pz int
	}{
		{1, 1, 1, 1},
		{8, 2, 2, 2},
		{48, 4, 4, 3},
		{64, 4, 4, 4},
		{24, 4, 3, 2},
		{7, 7, 1, 1},
		{0, 1, 1, 1},
	}
	for _, c := range cases {
		px, py, pz := Factor3D(c.p)
		if px != c.px || py != c.py || pz != c.pz {
			t.Errorf("Factor3D(%d) = %d,%d,%d want %d,%d,%d", c.p, px, py, pz, c.px, c.py, c.pz)
		}
	}
}

func TestFactor2D(t *testing.T) {
	t.Parallel()
	if px, py := Factor2D(12); px != 4 || py != 3 {
		t.Errorf("Factor2D(12) = %d,%d", px, py)
	}
	if px, py := Factor2D(1); px != 1 || py != 1 {
		t.Errorf("Factor2D(1) = %d,%d", px, py)
	}
	if px, py := Factor2D(13); px != 13 || py != 1 {
		t.Errorf("Factor2D(13) = %d,%d", px, py)
	}
}

func TestGridCoordsRoundTrip(t *testing.T) {
	t.Parallel()
	g := NewGrid3D(48)
	if g.Size() != 48 {
		t.Fatalf("size = %d", g.Size())
	}
	for r := 0; r < g.Size(); r++ {
		x, y, z := g.Coords(r)
		if back := g.Rank(x, y, z); back != r {
			t.Errorf("rank %d → (%d,%d,%d) → %d", r, x, y, z, back)
		}
	}
}

func TestCoordsPanicsOutOfRange(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGrid3D(8).Coords(8)
}

func TestNeighborAcross(t *testing.T) {
	t.Parallel()
	g := Grid3D{PX: 2, PY: 2, PZ: 2}
	// Rank 0 is at (0,0,0): neighbours exist only in + directions.
	if g.NeighborAcross(0, XMinus) != -1 {
		t.Error("XMinus at boundary should be -1")
	}
	if g.NeighborAcross(0, XPlus) != 1 {
		t.Error("XPlus of rank 0 should be 1")
	}
	if g.NeighborAcross(0, YPlus) != 2 {
		t.Error("YPlus of rank 0 should be 2")
	}
	if g.NeighborAcross(0, ZPlus) != 4 {
		t.Error("ZPlus of rank 0 should be 4")
	}
	if g.CountInteriorNeighbors(0) != 3 {
		t.Errorf("corner rank has %d neighbours", g.CountInteriorNeighbors(0))
	}
}

func TestFaceBytes(t *testing.T) {
	t.Parallel()
	// X faces of a 4×5×6 block with width 1 and 8-byte cells: 5·6·8.
	if got := FaceBytes(XPlus, 4, 5, 6, 1, 8); got != 240 {
		t.Errorf("X face = %d", got)
	}
	if got := FaceBytes(YMinus, 4, 5, 6, 2, 8); got != 4*6*2*8 {
		t.Errorf("Y face = %d", got)
	}
	if got := FaceBytes(ZPlus, 4, 5, 6, 1, 8); got != 4*5*8 {
		t.Errorf("Z face = %d", got)
	}
}

func testJob(p, nodes int) simmpi.JobConfig {
	model := func(int) *perfmodel.CostModel {
		return &perfmodel.CostModel{
			Node: perfmodel.NodeCapability{
				Name: "t", Cores: 1,
				PeakFlops:          units.GFlopPerSec,
				ScalarFlopsPerCore: units.GFlopPerSec,
				Domains: []perfmodel.MemoryDomain{{
					Cores: 1, PeakBandwidth: units.GBPerSec,
					PerCoreBandwidth: units.GBPerSec, Capacity: units.GiB,
				}},
			},
		}
	}
	return simmpi.JobConfig{
		Procs: p, Nodes: nodes, RankModel: model,
		Fabric: &netmodel.Fabric{
			Name: "t", Topo: &topo.FatTree{NodesPerLeaf: 4},
			SoftwareOverhead: units.Microsecond,
			HopLatency:       units.Duration(100 * units.Nanosecond),
			LinkBandwidth:    10 * units.GBPerSec,
		},
	}
}

func TestExchangeCompletes(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 4, 8, 12} {
		p := p
		g := NewGrid3D(p)
		spec := HaloSpec{NX: 8, NY: 8, NZ: 8, Width: 1, Elem: 8}
		rep, err := simmpi.Run(testJob(p, min(p, 4)), func(r *simmpi.Rank) error {
			for it := 0; it < 3; it++ {
				Exchange(r, g, spec, 100*it)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if p > 1 && rep.TotalMsgs == 0 {
			t.Errorf("p=%d: no messages exchanged", p)
		}
		if p == 1 && rep.TotalMsgs != 0 {
			t.Errorf("p=1 should exchange nothing, got %d msgs", rep.TotalMsgs)
		}
	}
}

func TestExchangeByteAccounting(t *testing.T) {
	t.Parallel()
	// 2 ranks in a 2×1×1 grid exchange one X face each per call.
	g := Grid3D{PX: 2, PY: 1, PZ: 1}
	spec := HaloSpec{NX: 4, NY: 5, NZ: 6, Width: 1, Elem: 8}
	rep, err := simmpi.Run(testJob(2, 2), func(r *simmpi.Rank) error {
		Exchange(r, g, spec, 0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPer := FaceBytes(XPlus, 4, 5, 6, 1, 8)
	if rep.TotalBytesSent != 2*wantPer {
		t.Errorf("bytes = %d, want %d", rep.TotalBytesSent, 2*wantPer)
	}
	if rep.TotalMsgs != 2 {
		t.Errorf("msgs = %d, want 2", rep.TotalMsgs)
	}
}

func TestBlockPartition(t *testing.T) {
	t.Parallel()
	b := BlockPartition{N: 800, P: 768}
	// 800 blocks over 768 procs: 32 procs get 2 blocks, rest get 1 —
	// the paper's Fig. 4 load-imbalance case.
	twos := 0
	total := 0
	for i := 0; i < b.P; i++ {
		p := b.Part(i)
		total += p
		if p == 2 {
			twos++
		} else if p != 1 {
			t.Errorf("part %d = %d", i, p)
		}
	}
	if twos != 32 || total != 800 {
		t.Errorf("twos = %d, total = %d", twos, total)
	}
	if b.MaxPart() != 2 {
		t.Errorf("MaxPart = %d", b.MaxPart())
	}
	// 800 blocks over 1024 procs: only 800 active (13 of 16 Fulhame
	// nodes do work).
	b = BlockPartition{N: 800, P: 1024}
	if b.ActiveParts() != 800 {
		t.Errorf("ActiveParts = %d", b.ActiveParts())
	}
	if b.Part(900) != 0 {
		t.Error("inactive part should be 0")
	}
	if (BlockPartition{N: 5, P: 0}).MaxPart() != 0 {
		t.Error("degenerate partition")
	}
}

// Property: Factor3D always multiplies back to p, ordered descending.
func TestFactor3DProperty(t *testing.T) {
	t.Parallel()
	f := func(raw uint16) bool {
		p := int(raw%2048) + 1
		a, b, c := Factor3D(p)
		return a*b*c == p && a >= b && b >= c && c >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: partition parts sum to N and differ by at most 1.
func TestBlockPartitionProperty(t *testing.T) {
	t.Parallel()
	f := func(nRaw, pRaw uint16) bool {
		n, p := int(nRaw%5000), int(pRaw%1024)+1
		b := BlockPartition{N: n, P: p}
		sum, maxP, minP := 0, 0, 1<<30
		for i := 0; i < p; i++ {
			v := b.Part(i)
			sum += v
			if v > maxP {
				maxP = v
			}
			if v < minP {
				minP = v
			}
		}
		return sum == n && maxP-minP <= 1 && b.MaxPart() == maxP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
