package paper

import (
	"math"
	"testing"
)

func TestCitation(t *testing.T) {
	t.Parallel()
	c := Source()
	if c.DOI != "10.1109/CLUSTER49012.2020.00078" || c.Year != 2020 {
		t.Errorf("citation drifted: %+v", c)
	}
	if len(c.Authors) != 5 || c.Authors[0] != "Adrian Jackson" {
		t.Errorf("authors drifted: %v", c.Authors)
	}
}

func TestTableIInternalConsistency(t *testing.T) {
	t.Parallel()
	for name, row := range TableI {
		if row.CoresPerNode%row.CoresPerProcessor != 0 {
			t.Errorf("%s: %d cores/node not a multiple of %d cores/proc",
				name, row.CoresPerNode, row.CoresPerProcessor)
		}
		// Memory per core ≈ memory per node / cores (the paper rounds).
		derived := row.MemoryPerNodeGB / float64(row.CoresPerNode)
		if math.Abs(derived-row.MemoryPerCoreGB) > 0.05*row.MemoryPerCoreGB+0.01 {
			t.Errorf("%s: memory/core %v inconsistent with %v/%d",
				name, row.MemoryPerCoreGB, row.MemoryPerNodeGB, row.CoresPerNode)
		}
	}
	if len(TableI) != 5 {
		t.Errorf("Table I should have 5 systems, has %d", len(TableI))
	}
}

func TestTableIIIRatios(t *testing.T) {
	t.Parallel()
	// The optimised builds gain ≈1.43-1.44× on both systems.
	var ngioU, ngioO, fulU, fulO float64
	for _, r := range TableIII {
		switch {
		case r.System == NGIO && !r.Optimised:
			ngioU = r.GFlops
		case r.System == NGIO && r.Optimised:
			ngioO = r.GFlops
		case r.System == Fulhame && !r.Optimised:
			fulU = r.GFlops
		case r.System == Fulhame && r.Optimised:
			fulO = r.GFlops
		}
	}
	if g := ngioO / ngioU; g < 1.40 || g > 1.48 {
		t.Errorf("NGIO optimised gain %v", g)
	}
	if g := fulO / fulU; g < 1.40 || g > 1.48 {
		t.Errorf("Fulhame optimised gain %v", g)
	}
}

func TestTableIVConsistentWithTableIII(t *testing.T) {
	t.Parallel()
	// Table IV's 1-node column repeats Table III's best values.
	want := map[SystemName]float64{
		A64FX: 38.26, ARCHER: 15.65, Cirrus: 17.27, NGIO: 37.61, Fulhame: 33.80,
	}
	for sys, cols := range TableIV {
		if cols[0] != want[sys] {
			t.Errorf("%s: Table IV 1-node %v != Table III %v", sys, cols[0], want[sys])
		}
	}
}

func TestTableVIRatiosConsistent(t *testing.T) {
	t.Parallel()
	base := TableVI[A64FX]
	for sys, row := range TableVI {
		// The paper's printed ratios are rounded (ARCHER's 0.40 is
		// really 0.379); allow the rounding slack.
		if got := row.GFlops / base.GFlops; math.Abs(got-row.RatioToA64FX) > 0.025 {
			t.Errorf("%s plain ratio printed %v, computed %v", sys, row.RatioToA64FX, got)
		}
		if got := row.GFlopsFastMath / base.GFlopsFastMath; math.Abs(got-row.FastRatioToA64FX) > 0.025 {
			t.Errorf("%s fast ratio printed %v, computed %v", sys, row.FastRatioToA64FX, got)
		}
	}
}

func TestTableIXRatiosConsistent(t *testing.T) {
	t.Parallel()
	base := TableIX[A64FX]
	for sys, row := range TableIX {
		got := row.SCFCyclesPerSec / base.SCFCyclesPerSec
		if math.Abs(got-row.RatioToA64FX) > 0.015 {
			t.Errorf("%s ratio printed %v, computed %v", sys, row.RatioToA64FX, got)
		}
	}
}

func TestBenchmark1Density(t *testing.T) {
	t.Parallel()
	density := float64(Benchmark1NNZ) / float64(Benchmark1DOF)
	if density < 70 || density > 75 {
		t.Errorf("Benchmark1 density %v nnz/row, expected ≈72.7", density)
	}
}

func TestTableVIIRange(t *testing.T) {
	t.Parallel()
	for sys, pes := range TableVII {
		for i, pe := range pes {
			if pe < 0.9 || pe > 1.0 {
				t.Errorf("%s PE[%d] = %v outside plausible range", sys, i, pe)
			}
		}
	}
}

func TestTableXFulhameAnomaly(t *testing.T) {
	t.Parallel()
	// The paper's Fulhame column is non-monotone at 4 nodes (0.74 →
	// 0.65 → 0.28); the reproduction documents it as a measurement
	// outlier. Pin it so nobody "fixes" the reference data.
	f := TableX[Fulhame]
	if !(f[2] > f[3] && f[2] < f[1]*0.95) {
		t.Skip("anomaly shape changed") // defensive: data is hand-typed
	}
	if f[2] != 0.65 {
		t.Errorf("Fulhame 4-node = %v, paper prints 0.65", f[2])
	}
}

func TestClaimsCoverAllFigures(t *testing.T) {
	t.Parallel()
	figs := map[string]bool{}
	for _, c := range Claims {
		figs[c.Artifact] = true
		if c.Statement == "" {
			t.Error("empty claim")
		}
	}
	for _, f := range []string{"fig1", "fig2", "fig3", "fig4", "fig5"} {
		if !figs[f] {
			t.Errorf("no claims recorded for %s", f)
		}
	}
}
