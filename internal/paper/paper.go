// Package paper is the single source of truth for every numeric value
// published in Jackson et al., "Investigating Applications on the A64FX"
// (IEEE CLUSTER 2020): the citation itself, Table I's specifications and
// Tables III-X's measurements. Experiments and tests reference these
// values rather than re-typing them, so a transcription fix lands
// everywhere at once.
//
// Figures 1-5 carry no numeric labels in the paper; their qualitative
// claims are recorded as Claims entries instead.
package paper

// Citation identifies the reproduced paper.
type Citation struct {
	Title   string
	Authors []string
	Venue   string
	Pages   string
	DOI     string
	Year    int
}

// Source returns the full citation.
func Source() Citation {
	return Citation{
		Title: "Investigating Applications on the A64FX",
		Authors: []string{
			"Adrian Jackson", "Michèle Weiland", "Nick Brown",
			"Andrew Turner", "Mark Parsons",
		},
		Venue: "2020 IEEE International Conference on Cluster Computing (CLUSTER)",
		Pages: "549-558",
		DOI:   "10.1109/CLUSTER49012.2020.00078",
		Year:  2020,
	}
}

// SystemName matches internal/arch's identifiers.
type SystemName string

// The five systems, named as the paper's tables name them.
const (
	A64FX   SystemName = "A64FX"
	ARCHER  SystemName = "ARCHER"
	Cirrus  SystemName = "Cirrus"
	NGIO    SystemName = "EPCC NGIO"
	Fulhame SystemName = "Fulhame"
)

// TableIRow is one column of the paper's Table I (transposed to rows).
type TableIRow struct {
	Processor         string
	Microarch         string
	ClockGHz          float64
	CoresPerProcessor int
	CoresPerNode      int
	ThreadsPerCore    string
	VectorBits        int
	MaxNodeDPGFlops   float64
	MemoryPerNodeGB   float64
	MemoryPerCoreGB   float64
}

// TableI reproduces "Compute node specifications".
var TableI = map[SystemName]TableIRow{
	A64FX: {
		Processor: "Fujitsu A64FX", Microarch: "SVE", ClockGHz: 2.2,
		CoresPerProcessor: 48, CoresPerNode: 48, ThreadsPerCore: "1",
		VectorBits: 512, MaxNodeDPGFlops: 3379,
		MemoryPerNodeGB: 32, MemoryPerCoreGB: 0.66,
	},
	ARCHER: {
		Processor: "Intel Xeon E5-2697 v2", Microarch: "IvyBridge", ClockGHz: 2.7,
		CoresPerProcessor: 12, CoresPerNode: 24, ThreadsPerCore: "1 or 2",
		VectorBits: 256, MaxNodeDPGFlops: 518.4,
		MemoryPerNodeGB: 64, MemoryPerCoreGB: 2.66,
	},
	Cirrus: {
		Processor: "Intel Xeon E5-2695", Microarch: "Broadwell", ClockGHz: 2.1,
		CoresPerProcessor: 18, CoresPerNode: 36, ThreadsPerCore: "1 or 2",
		VectorBits: 256, MaxNodeDPGFlops: 1209.6,
		MemoryPerNodeGB: 256, MemoryPerCoreGB: 7.11,
	},
	NGIO: {
		Processor: "Intel Xeon Platinum 8260M", Microarch: "Cascade Lake", ClockGHz: 2.4,
		CoresPerProcessor: 24, CoresPerNode: 48, ThreadsPerCore: "1 or 2",
		VectorBits: 512, MaxNodeDPGFlops: 2662.4,
		MemoryPerNodeGB: 192, MemoryPerCoreGB: 4,
	},
	Fulhame: {
		Processor: "Marvell ThunderX2", Microarch: "ARMv8", ClockGHz: 2.2,
		CoresPerProcessor: 32, CoresPerNode: 64, ThreadsPerCore: "1, 2, or 4",
		VectorBits: 128, MaxNodeDPGFlops: 1126.4,
		MemoryPerNodeGB: 256, MemoryPerCoreGB: 4,
	},
}

// TableIIIRow is one row of "Single node HPCG performance".
type TableIIIRow struct {
	System    SystemName
	Optimised bool
	GFlops    float64
	// PctPeakPrinted is the percentage column exactly as printed; note
	// the EPCC NGIO rows are inconsistent with their own GFLOP/s (the
	// repository derives self-consistent references instead).
	PctPeakPrinted float64
}

// TableIII reproduces the single-node HPCG results, in row order.
var TableIII = []TableIIIRow{
	{A64FX, false, 38.26, 1.1},
	{ARCHER, false, 15.65, 3.0},
	{Cirrus, false, 17.27, 1.4},
	{NGIO, false, 26.16, 1.4},
	{NGIO, true, 37.61, 2.0},
	{Fulhame, false, 23.58, 2.0},
	{Fulhame, true, 33.80, 3.0},
}

// TableIV reproduces "Multiple node HPCG performance (GFLOP/s)" at 1, 2,
// 4 and 8 nodes. The NGIO and Fulhame rows are the optimised builds.
var TableIV = map[SystemName][4]float64{
	A64FX:   {38.26, 78.94, 157.46, 313.50},
	ARCHER:  {15.65, 26.25, 55.63, 110.52},
	Cirrus:  {17.27, 34.26, 68.44, 136.06},
	NGIO:    {37.61, 73.90, 147.94, 292.60},
	Fulhame: {33.80, 67.68, 133.29, 261.32},
}

// TableIVNodes lists Table IV's node counts, in column order.
var TableIVNodes = [4]int{1, 2, 4, 8}

// TableV reproduces "Single core minikab performance" (seconds).
var TableV = map[SystemName]float64{
	A64FX:   1182,
	NGIO:    1269,
	Fulhame: 2415,
}

// Benchmark1DOF and Benchmark1NNZ are the minikab test matrix's published
// dimensions (§VI.A).
const (
	Benchmark1DOF = 9573984
	Benchmark1NNZ = 696096138
)

// TableVIRow is one row of "Node performance of Nekbone".
type TableVIRow struct {
	Cores            int
	GFlops           float64
	RatioToA64FX     float64
	GFlopsFastMath   float64
	FastRatioToA64FX float64
}

// TableVI reproduces the Nekbone node results.
var TableVI = map[SystemName]TableVIRow{
	A64FX:   {48, 175.74, 1.00, 312.34, 1.00},
	NGIO:    {48, 127.19, 0.72, 90.37, 0.29},
	Fulhame: {64, 121.63, 0.69, 132.65, 0.42},
	ARCHER:  {24, 66.55, 0.40, 68.22, 0.21},
}

// NekboneGPUReference records §VI.B.1's GPU comparison points (GFLOP/s,
// from Karp et al. 2020).
var NekboneGPUReference = map[string]float64{
	"P100": 200,
	"V100": 300,
}

// TableVII reproduces "Inter-node parallel efficiency" at 2, 4, 8 and 16
// nodes.
var TableVII = map[SystemName][4]float64{
	A64FX:   {0.99, 0.97, 0.97, 0.96},
	Fulhame: {0.99, 0.99, 0.97, 0.98},
	ARCHER:  {0.98, 0.98, 0.97, 0.97},
}

// TableVIINodes lists Table VII's node counts, in column order.
var TableVIINodes = [4]int{2, 4, 8, 16}

// TableVIII reproduces "COSA: processes per node".
var TableVIII = map[SystemName]int{
	A64FX: 48, ARCHER: 24, Cirrus: 36, Fulhame: 64, NGIO: 48,
}

// COSA test-case constants (§VII.A.1).
const (
	COSAHarmonics  = 4
	COSABlocks     = 800
	COSACells      = 3690218
	COSAMemoryGB   = 60
	COSAIterations = 100
)

// TableIXRow is one row of "CASTEP TiN best single node performance".
type TableIXRow struct {
	Cores           int
	SCFCyclesPerSec float64
	RatioToA64FX    float64
}

// TableIX reproduces the CASTEP results.
var TableIX = map[SystemName]TableIXRow{
	A64FX:   {48, 0.145, 1.00},
	ARCHER:  {24, 0.074, 0.51},
	NGIO:    {48, 0.184, 1.27},
	Cirrus:  {32, 0.125, 0.86},
	Fulhame: {64, 0.141, 0.97},
}

// TableX reproduces "OpenSBLI performance (total runtime in seconds)" at
// 1, 2, 4 and 8 nodes.
var TableX = map[SystemName][4]float64{
	A64FX:   {3.44, 1.89, 1.04, 0.69},
	Cirrus:  {1.90, 0.93, 0.53, 0.35},
	NGIO:    {1.18, 0.75, 0.46, 0.31},
	Fulhame: {1.17, 0.74, 0.65, 0.28},
}

// TableXNodes lists Table X's node counts, in column order.
var TableXNodes = [4]int{1, 2, 4, 8}

// Claim records one of the paper's qualitative statements attached to a
// figure (the figures carry no numeric labels).
type Claim struct {
	Artifact  string
	Statement string
}

// Claims lists the figure-level statements the reproduction checks.
var Claims = []Claim{
	{"fig1", "using 1 process per CMG with 12 OpenMP threads per process gives the best performance for minikab"},
	{"fig1", "the largest plain MPI configuration able to fit into the available memory is 48 MPI processes"},
	{"fig2", "the A64FX system outperforms Fulhame across the range of core counts"},
	{"fig2", "it does not scale as well as the Fulhame system"},
	{"fig3", "the Arm technologies, both the A64FX and ThunderX2 are scaling much better at higher core counts than the Intel technologies"},
	{"fig3", "the Ivy Bridge in ARCHER performs very well initially, competitive with the Cascade Lake, but then experiences a significant relative performance decrease beyond four cores"},
	{"fig4", "the benchmark would not fit on a single A64FX node"},
	{"fig4", "the A64FX consistently outperforms the other systems, all the way up to 16 nodes, where performance is overtaken by Fulhame"},
	{"fig5", "on all systems, the best performance was achieved using MPI only"},
	{"fig5", "the benchmark can only be run with total core counts that are either a factor or multiple of 8"},
}
