package hpcg_test

import (
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
)

// quickCfg is a small HPCG configuration (16³ local grid, 2 MG levels,
// 2 iterations) that keeps these golden-gate tests fast while still
// exercising halo exchange on every level.
func quickCfg(nodes int, congestion bool) hpcg.Config {
	cfg := hpcg.Config{
		System: arch.MustGet(arch.A64FX),
		Nodes:  nodes, NX: 16, NY: 16, NZ: 16,
		Levels: 2, Iterations: 2,
	}
	cfg.Congestion = congestion
	return cfg
}

// TestCongestionSlowsMultiNodeHPCG is the golden gate for the contention
// model's sign: with the routed congestion model on, a multi-node HPCG
// run must get strictly slower — halo exchanges and allreduces now share
// links — and never faster.
func TestCongestionSlowsMultiNodeHPCG(t *testing.T) {
	t.Parallel()
	free, err := hpcg.Run(quickCfg(2, false))
	if err != nil {
		t.Fatal(err)
	}
	cong, err := hpcg.Run(quickCfg(2, true))
	if err != nil {
		t.Fatal(err)
	}
	if cong.Seconds <= free.Seconds {
		t.Errorf("congested 2-node HPCG took %vs, contention-free %vs; want strictly slower",
			cong.Seconds, free.Seconds)
	}
	if cong.GFLOPs >= free.GFLOPs {
		t.Errorf("congested GFLOPs %v ≥ contention-free %v", cong.GFLOPs, free.GFLOPs)
	}
	if cong.Report.Links == nil {
		t.Error("congested multi-node run reported no link accounting")
	}
	if free.Report.Links != nil {
		t.Error("contention-free run reported link accounting")
	}
}

// TestCongestionLeavesSingleNodeExact pins the flag's no-op contract:
// on one node there is no interconnect, so every result field must be
// bit-identical with Congestion on or off.
func TestCongestionLeavesSingleNodeExact(t *testing.T) {
	t.Parallel()
	free, err := hpcg.Run(quickCfg(1, false))
	if err != nil {
		t.Fatal(err)
	}
	cong, err := hpcg.Run(quickCfg(1, true))
	if err != nil {
		t.Fatal(err)
	}
	if cong.GFLOPs != free.GFLOPs || cong.Seconds != free.Seconds {
		t.Errorf("single-node results differ under Congestion: %v/%v vs %v/%v GFLOPs/s",
			cong.GFLOPs, cong.Seconds, free.GFLOPs, free.Seconds)
	}
	if cong.Report.Links != nil {
		t.Error("single-node congested run reported link accounting")
	}
}

// TestCongestedHPCGIsDeterministic reruns the same congested
// configuration and demands bit-identical ratings: the two-pass replay
// must not depend on goroutine scheduling.
func TestCongestedHPCGIsDeterministic(t *testing.T) {
	t.Parallel()
	first, err := hpcg.Run(quickCfg(2, true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		again, err := hpcg.Run(quickCfg(2, true))
		if err != nil {
			t.Fatal(err)
		}
		if again.GFLOPs != first.GFLOPs || again.Seconds != first.Seconds {
			t.Fatalf("run %d diverged: %v/%v vs %v/%v", i+2,
				again.GFLOPs, again.Seconds, first.GFLOPs, first.Seconds)
		}
	}
}
