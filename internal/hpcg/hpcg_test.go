package hpcg

import (
	"math"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/linalg"
	"a64fxbench/internal/units"
)

// --- Numerical validation of the real solver ---

func TestSolverConverges(t *testing.T) {
	t.Parallel()
	s, err := NewSolver(16, 16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i) * 0.1)
	}
	b := make([]float64, n)
	s.levels[0].a.SpMV(xTrue, b)

	x, stats := s.Solve(b, 50, 1e-10)
	if !stats.Converged {
		t.Fatalf("CG did not converge in 50 iterations: relres=%v", stats.RelativeResidual)
	}
	if d := linalg.AbsDiffMax(x, xTrue); d > 1e-6 {
		t.Errorf("solution error %v", d)
	}
	// MG-preconditioned CG on this problem should converge fast.
	if stats.Iterations > 25 {
		t.Errorf("took %d iterations, preconditioner not effective", stats.Iterations)
	}
}

func TestSolverResidualMonotone(t *testing.T) {
	t.Parallel()
	s, err := NewSolver(8, 8, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = 1
	}
	_, stats := s.Solve(b, 30, 1e-12)
	for i := 1; i < len(stats.ResidualHistory); i++ {
		// CG residuals are not strictly monotone, but should never
		// blow up by more than a small factor for this SPD problem.
		if stats.ResidualHistory[i] > stats.ResidualHistory[i-1]*10 {
			t.Errorf("residual exploded at iter %d: %v → %v",
				i, stats.ResidualHistory[i-1], stats.ResidualHistory[i])
		}
	}
}

func TestSolverZeroRHS(t *testing.T) {
	t.Parallel()
	s, _ := NewSolver(8, 8, 8, 2)
	x, stats := s.Solve(make([]float64, s.N()), 10, 1e-10)
	if !stats.Converged {
		t.Error("zero RHS should converge immediately")
	}
	if linalg.MaxAbs(x) != 0 {
		t.Error("zero RHS should give zero solution")
	}
}

func TestSolverPreconditionerReducesError(t *testing.T) {
	t.Parallel()
	s, _ := NewSolver(16, 16, 16, 4)
	n := s.N()
	r := make([]float64, n)
	for i := range r {
		r[i] = math.Cos(float64(i) * 0.37)
	}
	z := make([]float64, n)
	s.Precondition(r, z)
	// z should approximate A⁻¹r, so A·z ≈ r at least in direction:
	// the residual after preconditioning must be smaller than ‖r‖.
	az := make([]float64, n)
	s.levels[0].a.SpMV(z, az)
	diff := make([]float64, n)
	linalg.Waxpby(1, r, -1, az, diff)
	if linalg.Norm2(diff) >= linalg.Norm2(r) {
		t.Errorf("V-cycle did not reduce residual: %v vs %v",
			linalg.Norm2(diff), linalg.Norm2(r))
	}
}

func TestNewSolverValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSolver(10, 10, 10, 3); err == nil {
		t.Error("grid not divisible by 4 should fail")
	}
	if _, err := NewSolver(8, 8, 8, 0); err == nil {
		t.Error("zero levels should fail")
	}
	s, err := NewSolver(8, 8, 8, 2)
	if err != nil || s.Levels() != 2 {
		t.Errorf("levels = %v, err = %v", s.Levels(), err)
	}
}

// --- Metered benchmark ---

// paperTable3 holds the published single-node HPCG results.
var paperTable3 = map[arch.ID]struct {
	unopt, opt float64
}{
	arch.A64FX:   {38.26, 0},
	arch.ARCHER:  {15.65, 0},
	arch.Cirrus:  {17.27, 0},
	arch.NGIO:    {26.16, 37.61},
	arch.Fulhame: {23.58, 33.80},
}

func TestTableIIISingleNode(t *testing.T) {
	t.Parallel()
	for id, want := range paperTable3 {
		sys := arch.MustGet(id)
		res, err := Run(Config{System: sys, Nodes: 1, Iterations: 5})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rel := math.Abs(res.GFLOPs-want.unopt) / want.unopt; rel > 0.10 {
			t.Errorf("%s unoptimised = %.2f GF/s, paper %.2f (%.0f%% off)",
				id, res.GFLOPs, want.unopt, rel*100)
		}
		if want.opt > 0 {
			res, err := Run(Config{System: sys, Nodes: 1, Iterations: 5, Optimised: true})
			if err != nil {
				t.Fatalf("%s opt: %v", id, err)
			}
			if rel := math.Abs(res.GFLOPs-want.opt) / want.opt; rel > 0.10 {
				t.Errorf("%s optimised = %.2f GF/s, paper %.2f", id, res.GFLOPs, want.opt)
			}
		}
	}
}

func TestA64FXBeatsAllSingleNode(t *testing.T) {
	t.Parallel()
	// The paper's headline: unoptimised A64FX beats even the optimised
	// variants of every other system on HPCG.
	a, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []arch.ID{arch.ARCHER, arch.Cirrus, arch.NGIO, arch.Fulhame} {
		o, err := Run(Config{System: arch.MustGet(id), Nodes: 1, Iterations: 5, Optimised: true})
		if err != nil {
			t.Fatal(err)
		}
		if o.GFLOPs >= a.GFLOPs {
			t.Errorf("%s (%.2f) should not beat A64FX (%.2f)", id, o.GFLOPs, a.GFLOPs)
		}
	}
}

func TestMultiNodeScaling(t *testing.T) {
	t.Parallel()
	sys := arch.MustGet(arch.A64FX)
	r1, err := Run(Config{System: sys, Nodes: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(Config{System: sys, Nodes: 4, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	speedup := r4.GFLOPs / r1.GFLOPs
	if speedup < 3.5 || speedup > 4.05 {
		t.Errorf("4-node speedup = %.2f, expected near-linear", speedup)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
	sys := arch.MustGet(arch.A64FX)
	if _, err := Run(Config{System: sys, NX: 4, NY: 4, NZ: 4}); err == nil {
		t.Error("too-small grid should fail")
	}
	if _, err := Run(Config{System: sys, NX: 24, NY: 24, NZ: 20, Levels: 4}); err == nil {
		t.Error("non-divisible grid should fail")
	}
}

func TestPctPeak(t *testing.T) {
	t.Parallel()
	// Paper: A64FX achieves ≈1.1% of peak, ARCHER ≈3.0%.
	res, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PctPeak < 0.9 || res.PctPeak > 1.4 {
		t.Errorf("A64FX %%peak = %.2f, paper says 1.1", res.PctPeak)
	}
	res, err = Run(Config{System: arch.MustGet(arch.ARCHER), Nodes: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PctPeak < 2.5 || res.PctPeak > 3.5 {
		t.Errorf("ARCHER %%peak = %.2f, paper says 3.0", res.PctPeak)
	}
}

func TestMemoryPerRankFitsA64FX(t *testing.T) {
	t.Parallel()
	// §V.A: 80³ per process was chosen to fit into the 32 GB node.
	sys := arch.MustGet(arch.A64FX)
	perRank := MemoryPerRank(Config{})
	total := units.Bytes(sys.CoresPerNode()) * perRank
	if total > sys.MemoryPerNode() {
		t.Errorf("80³ per rank needs %v per node, exceeding %v",
			total, sys.MemoryPerNode())
	}
	// But it should be a substantial fraction — HPCG sizes the problem
	// to stress memory.
	if float64(total) < 0.3*float64(sys.MemoryPerNode()) {
		t.Errorf("problem suspiciously small: %v of %v", total, sys.MemoryPerNode())
	}
}

func TestOptimisedFasterEverywhere(t *testing.T) {
	t.Parallel()
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		u, err1 := Run(Config{System: sys, Nodes: 1, Iterations: 3})
		o, err2 := Run(Config{System: sys, Nodes: 1, Iterations: 3, Optimised: true})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if o.GFLOPs <= u.GFLOPs {
			t.Errorf("%s: optimised (%.2f) not faster than unoptimised (%.2f)",
				id, o.GFLOPs, u.GFLOPs)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	t.Parallel()
	cfg := Config{System: arch.MustGet(arch.Fulhame), Nodes: 2, Iterations: 3}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.GFLOPs != b.GFLOPs || a.Seconds != b.Seconds {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}
