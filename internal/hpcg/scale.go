package hpcg

import (
	"a64fxbench/internal/arch"
	"a64fxbench/internal/simmpi"
)

// EngineScaleConfig is the weak-scaled engine-benchmark scenario: the
// metered HPCG CG loop with a deliberately tiny 8³ local problem and a
// shallow V-cycle, so runtime cost is dominated by the simulation
// engine (events, rendezvous, collectives) rather than by work
// metering. One rank per core, as everywhere else; on the A64FX model
// 2084 nodes yields the 100k-rank smoke scenario (100,032 ranks).
//
// The same scenario backs BenchmarkEngineRanksPerSec, the scale smoke
// tests, and the `a64fxbench enginebench` CI gate, so the recorded
// ranks/sec numbers are comparable across all three.
func EngineScaleConfig(sys *arch.System, nodes int, eng simmpi.Engine) Config {
	return Config{
		System: sys, Nodes: nodes,
		NX: 8, NY: 8, NZ: 8,
		Levels:     2,
		Iterations: 2,
		Engine:     eng,
	}
}

// ScaleSmokeNodes is the node count of the 100k-rank smoke scenario on
// the A64FX model: 2084 nodes × 48 cores = 100,032 ranks.
const ScaleSmokeNodes = 2084
