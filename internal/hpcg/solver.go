// Package hpcg implements the High Performance Conjugate Gradients
// benchmark: the real numerical algorithm (multigrid-preconditioned CG on
// the 27-point stencil) used for validation, and the metered distributed
// version that reproduces the paper's Table III (single node) and
// Table IV (multi-node) results on the five simulated systems.
package hpcg

import (
	"fmt"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/sparse"
)

// level is one rung of the multigrid hierarchy.
type level struct {
	nx, ny, nz int
	a          *sparse.CSR
	// work vectors
	r, z, tmp []float64
}

// MGSolver is a real, runnable HPCG solver: CG preconditioned by a
// geometric multigrid V-cycle with symmetric Gauss-Seidel smoothing —
// the reference HPCG algorithm.
type MGSolver struct {
	levels []*level
}

// NewSolver builds the hierarchy for an nx×ny×nz grid with nlevels
// levels (each coarsening halves every dimension, so dimensions must be
// divisible by 2^(nlevels-1)).
func NewSolver(nx, ny, nz, nlevels int) (*MGSolver, error) {
	if nlevels < 1 {
		return nil, fmt.Errorf("hpcg: need at least 1 level, got %d", nlevels)
	}
	div := 1 << uint(nlevels-1)
	if nx%div != 0 || ny%div != 0 || nz%div != 0 {
		return nil, fmt.Errorf("hpcg: grid %dx%dx%d not divisible by %d", nx, ny, nz, div)
	}
	s := &MGSolver{}
	for l := 0; l < nlevels; l++ {
		lnx, lny, lnz := nx>>uint(l), ny>>uint(l), nz>>uint(l)
		a, err := sparse.Stencil27(lnx, lny, lnz)
		if err != nil {
			return nil, err
		}
		n := a.N
		s.levels = append(s.levels, &level{
			nx: lnx, ny: lny, nz: lnz, a: a,
			r: make([]float64, n), z: make([]float64, n), tmp: make([]float64, n),
		})
	}
	return s, nil
}

// Levels reports the hierarchy depth.
func (s *MGSolver) Levels() int { return len(s.levels) }

// N reports the fine-grid dimension.
func (s *MGSolver) N() int { return s.levels[0].a.N }

// restrict injects the fine residual onto the coarse grid (HPCG-style
// injection at even points).
func restrictVec(fine *level, coarse *level, rf, rc []float64) {
	for kz := 0; kz < coarse.nz; kz++ {
		for ky := 0; ky < coarse.ny; ky++ {
			for kx := 0; kx < coarse.nx; kx++ {
				fi := (2 * kx) + fine.nx*((2*ky)+fine.ny*(2*kz))
				ci := kx + coarse.nx*(ky+coarse.ny*kz)
				rc[ci] = rf[fi]
			}
		}
	}
}

// prolong adds the coarse correction back at the even fine points.
func prolong(fine *level, coarse *level, xc, xf []float64) {
	for kz := 0; kz < coarse.nz; kz++ {
		for ky := 0; ky < coarse.ny; ky++ {
			for kx := 0; kx < coarse.nx; kx++ {
				fi := (2 * kx) + fine.nx*((2*ky)+fine.ny*(2*kz))
				ci := kx + coarse.nx*(ky+coarse.ny*kz)
				xf[fi] += xc[ci]
			}
		}
	}
}

// vcycle applies one multigrid V-cycle for A·z = r at level l, with z
// assumed zeroed on entry.
func (s *MGSolver) vcycle(l int, r, z []float64) {
	lv := s.levels[l]
	if l == len(s.levels)-1 {
		lv.a.SymGS(r, z)
		return
	}
	// Pre-smooth.
	lv.a.SymGS(r, z)
	// Residual: tmp = r - A z.
	lv.a.SpMV(z, lv.tmp)
	for i := range lv.tmp {
		lv.tmp[i] = r[i] - lv.tmp[i]
	}
	// Restrict and recurse.
	coarse := s.levels[l+1]
	restrictVec(lv, coarse, lv.tmp, coarse.r)
	linalg.Fill(coarse.z, 0)
	s.vcycle(l+1, coarse.r, coarse.z)
	// Prolong correction.
	prolong(lv, coarse, coarse.z, z)
	// Post-smooth.
	lv.a.SymGS(r, z)
}

// Precondition applies the V-cycle preconditioner: z = M⁻¹ r.
func (s *MGSolver) Precondition(r, z []float64) {
	linalg.Fill(z, 0)
	s.vcycle(0, r, z)
}

// SolveStats reports the outcome of a Solve call.
type SolveStats struct {
	// Iterations actually performed.
	Iterations int
	// RelativeResidual is ‖b - A·x‖ / ‖b‖ at exit.
	RelativeResidual float64
	// Converged is true if the tolerance was met.
	Converged bool
	// ResidualHistory records the relative residual after each
	// iteration.
	ResidualHistory []float64
}

// Solve runs preconditioned CG on A·x = b from a zero initial guess and
// returns the solution with convergence statistics.
func (s *MGSolver) Solve(b []float64, maxIter int, tol float64) ([]float64, SolveStats) {
	a := s.levels[0].a
	n := a.N
	if len(b) != n {
		panic(fmt.Sprintf("hpcg: rhs length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	normB := linalg.Norm2(b)
	if normB == 0 {
		return x, SolveStats{Converged: true}
	}
	var stats SolveStats
	s.Precondition(r, z)
	copy(p, z)
	rz := linalg.Dot(r, z)
	for it := 0; it < maxIter; it++ {
		a.SpMV(p, ap)
		pap := linalg.Dot(p, ap)
		if pap <= 0 {
			break // loss of positive definiteness (numerical)
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		stats.Iterations = it + 1
		res := linalg.Norm2(r) / normB
		stats.ResidualHistory = append(stats.ResidualHistory, res)
		stats.RelativeResidual = res
		if res < tol {
			stats.Converged = true
			break
		}
		s.Precondition(r, z)
		rzNew := linalg.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		linalg.Waxpby(1, z, beta, p, p)
	}
	return x, stats
}
