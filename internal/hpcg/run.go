package hpcg

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/decomp"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
	"a64fxbench/internal/units"
)

// Config describes one HPCG benchmark run on a simulated system, matching
// the paper's §V.A setup: MPI-only, one process per core, local problem
// --nx=80 --ny=80 --nz=80.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Nodes is the node count (Table IV sweeps 1–8).
	Nodes int
	// NX, NY, NZ are the local subdomain dimensions per process
	// (default 80³, the paper's configuration).
	NX, NY, NZ int
	// Levels is the multigrid depth (default 4, the HPCG standard).
	Levels int
	// Iterations is the number of CG iterations to simulate (the rate
	// is steady state, so a modest count suffices; default 25).
	Iterations int
	// Optimised selects the vendor-optimised kernel variant of
	// Table III (Intel-optimised on NGIO, Arm-optimised on Fulhame).
	Optimised bool
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

// OptimisedKernelGain is the memory-efficiency gain of the vendor-
// optimised HPCG builds, calibrated from the paper's own opt/unopt
// ratios (NGIO 37.61/26.16 = 1.44, Fulhame 33.80/23.58 = 1.43).
const OptimisedKernelGain = 1.43

func (c *Config) defaults() error {
	if c.System == nil {
		return fmt.Errorf("hpcg: System is required")
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.NX == 0 {
		c.NX, c.NY, c.NZ = 80, 80, 80
	}
	if c.NX < 8 || c.NY < 8 || c.NZ < 8 {
		return fmt.Errorf("hpcg: local grid %dx%dx%d too small", c.NX, c.NY, c.NZ)
	}
	if c.Levels == 0 {
		c.Levels = 4
	}
	div := 1 << uint(c.Levels-1)
	if c.NX%div != 0 || c.NY%div != 0 || c.NZ%div != 0 {
		return fmt.Errorf("hpcg: local grid %dx%dx%d not divisible by %d", c.NX, c.NY, c.NZ, div)
	}
	if c.Iterations == 0 {
		c.Iterations = 25
	}
	return nil
}

// Result is the outcome of a metered HPCG run.
type Result struct {
	// GFLOPs is the benchmark rating: total flops over makespan.
	GFLOPs float64
	// PctPeak is GFLOPs as a percentage of the machine's peak
	// (Table III's second column).
	PctPeak float64
	// Seconds is the simulated runtime.
	Seconds float64
	// Procs is the MPI process count used.
	Procs int
	// Report carries the full runtime accounting.
	Report simmpi.Report
}

// levelWork captures the per-iteration metered work of one MG level for
// one rank.
type levelWork struct {
	nx, ny, nz int     // local dims at this level
	n          float64 // local rows
	nnz        float64 // local non-zeros
	halo       decomp.HaloSpec
}

// buildLevels derives the per-level local work for a rank given the
// process grid.
func buildLevels(cfg *Config, grid decomp.Grid3D) []levelWork {
	levels := make([]levelWork, cfg.Levels)
	for l := range levels {
		lnx, lny, lnz := cfg.NX>>uint(l), cfg.NY>>uint(l), cfg.NZ>>uint(l)
		gnx, gny, gnz := lnx*grid.PX, lny*grid.PY, lnz*grid.PZ
		nnzGlobal := sparse.Stencil27NNZ(gnx, gny, gnz)
		levels[l] = levelWork{
			nx: lnx, ny: lny, nz: lnz,
			n:   float64(lnx * lny * lnz),
			nnz: float64(nnzGlobal) / float64(grid.Size()),
			halo: decomp.HaloSpec{
				NX: lnx, NY: lny, NZ: lnz, Width: 1, Elem: 8,
			},
		}
	}
	return levels
}

// Work profiles for the HPCG kernels, following the benchmark's own
// operation accounting. Byte counts assume 8-byte values, 4-byte column
// indices, and streaming vector traffic.

func spmvProfile(lw levelWork) perfmodel.WorkProfile {
	// 8 bytes per value; index and gathered-x traffic partially cached
	// (the 27-point stencil re-touches x heavily), for an effective
	// 10 bytes per stored non-zero — the ~5 bytes/flop measured for
	// reference HPCG.
	return perfmodel.WorkProfile{
		Class: perfmodel.SpMV,
		Flops: units.Flops(2 * lw.nnz),
		Bytes: units.Bytes(10*lw.nnz + 2*8*lw.n),
		Calls: 1,
	}
}

func symgsProfile(lw levelWork) perfmodel.WorkProfile {
	// Forward + backward sweep: every non-zero twice, plus the divide.
	return perfmodel.WorkProfile{
		Class: perfmodel.SymGS,
		Flops: units.Flops(4*lw.nnz + 2*lw.n),
		Bytes: units.Bytes(2 * (10*lw.nnz + 8*lw.n)),
		Calls: 1,
	}
}

func dotProfile(n float64) perfmodel.WorkProfile {
	return perfmodel.WorkProfile{
		Class: perfmodel.DotProduct,
		Flops: units.Flops(2 * n),
		Bytes: units.Bytes(2 * 8 * n),
		Calls: 1,
	}
}

func waxpbyProfile(n float64) perfmodel.WorkProfile {
	return perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: units.Flops(2 * n),
		Bytes: units.Bytes(3 * 8 * n),
		Calls: 1,
	}
}

func gridTransferProfile(nCoarse float64) perfmodel.WorkProfile {
	// Injection restriction or prolongation-and-add: one flop and ~20
	// bytes (value + index + read-modify-write) per coarse point.
	return perfmodel.WorkProfile{
		Class: perfmodel.GatherScatter,
		Flops: units.Flops(nCoarse),
		Bytes: units.Bytes(20 * nCoarse),
		Calls: 1,
	}
}

// Run executes the metered HPCG benchmark and returns its rating.
func Run(cfg Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	sys := cfg.System
	procs := sys.CoresPerNode() * cfg.Nodes
	grid := decomp.NewGrid3D(procs)
	levels := buildLevels(&cfg, grid)

	base := sys.PerRankModel(sys.CoresPerNode(), 1)
	model := base
	if cfg.Optimised {
		model = base.ScaleEfficiency(1, OptimisedKernelGain,
			perfmodel.SymGS, perfmodel.SpMV, perfmodel.VectorOp, perfmodel.DotProduct)
	}
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          cfg.Nodes,
		ThreadsPerRank: 1,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Fabric:         sys.NewFabric(cfg.Nodes),
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("hpcg %s n=%d %dx%dx%d", sys.ID, cfg.Nodes, cfg.NX, cfg.NY, cfg.NZ),
	}
	cfg.Instrumentation.Apply(&job)

	levelName := make([]string, cfg.Levels)
	for l := range levelName {
		levelName[l] = fmt.Sprintf("mg-level-%d", l)
	}
	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		fine := levels[0]
		tagBase := 0
		// Tags are reset every iteration so channel routes are reused
		// across iterations; the exchange sequence is identical on all
		// ranks (SPMD), so tags always match.
		nextTag := func() int { tagBase += 8; return tagBase }
		// One CG iteration of HPCG, repeated.
		for it := 0; it < cfg.Iterations; it++ {
			tagBase = 0
			r.Region("cg-iter")
			// Preconditioner: multigrid V-cycle.
			var down func(l int)
			down = func(l int) {
				lw := levels[l]
				r.Region(levelName[l])
				defer r.EndRegion()
				if l == cfg.Levels-1 {
					decomp.Exchange(r, grid, lw.halo, nextTag())
					r.Compute(symgsProfile(lw))
					return
				}
				// Pre-smooth.
				decomp.Exchange(r, grid, lw.halo, nextTag())
				r.Compute(symgsProfile(lw))
				// Residual SpMV.
				decomp.Exchange(r, grid, lw.halo, nextTag())
				r.Compute(spmvProfile(lw))
				// Restrict.
				r.Compute(gridTransferProfile(levels[l+1].n))
				down(l + 1)
				// Prolong.
				r.Compute(gridTransferProfile(levels[l+1].n))
				// Post-smooth.
				decomp.Exchange(r, grid, lw.halo, nextTag())
				r.Compute(symgsProfile(lw))
			}
			r.Region("vcycle")
			down(0)
			r.EndRegion()
			// dot(r, z)
			r.Compute(dotProfile(fine.n))
			r.AllreduceScalar(0, simmpi.OpSum)
			// p update
			r.Compute(waxpbyProfile(fine.n))
			// SpMV A·p
			r.Region("spmv")
			decomp.Exchange(r, grid, fine.halo, nextTag())
			r.Compute(spmvProfile(fine))
			r.EndRegion()
			// dot(p, Ap)
			r.Compute(dotProfile(fine.n))
			r.AllreduceScalar(0, simmpi.OpSum)
			// x, r updates
			r.Compute(waxpbyProfile(fine.n))
			r.Compute(waxpbyProfile(fine.n))
			// dot(r, r) for convergence
			r.Compute(dotProfile(fine.n))
			r.AllreduceScalar(0, simmpi.OpSum)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		GFLOPs:  rep.GFLOPs(),
		Seconds: rep.Seconds(),
		Procs:   procs,
		Report:  rep,
	}
	peak := sys.PeakNodeGFlops() * float64(cfg.Nodes)
	if peak > 0 {
		res.PctPeak = res.GFLOPs / peak * 100
	}
	return res, nil
}

// MemoryPerRank estimates the resident bytes one rank needs for the
// configured local problem — matrix (values, indices, row pointers) plus
// the CG and MG vectors — used to check the paper's observation that 80³
// fits the A64FX's 32 GB.
func MemoryPerRank(cfg Config) units.Bytes {
	if cfg.NX == 0 {
		cfg.NX, cfg.NY, cfg.NZ = 80, 80, 80
	}
	if cfg.Levels == 0 {
		cfg.Levels = 4
	}
	var total float64
	for l := 0; l < cfg.Levels; l++ {
		n := float64((cfg.NX >> uint(l)) * (cfg.NY >> uint(l)) * (cfg.NZ >> uint(l)))
		nnz := 27 * n
		total += nnz*12 + n*8 // matrix + row pointers
		total += 4 * n * 8    // level vectors
	}
	total += 5 * float64(cfg.NX*cfg.NY*cfg.NZ) * 8 // CG vectors
	return units.Bytes(total)
}
