package hpcg

import (
	"testing"

	"a64fxbench/internal/arch"
)

// BenchmarkVCycle measures the real multigrid V-cycle at validation
// scale.
func BenchmarkVCycle(b *testing.B) {
	s, err := NewSolver(32, 32, 32, 4)
	if err != nil {
		b.Fatal(err)
	}
	r := make([]float64, s.N())
	z := make([]float64, s.N())
	for i := range r {
		r[i] = float64(i%11) - 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Precondition(r, z)
	}
}

// BenchmarkSolve measures the full preconditioned CG at validation scale.
func BenchmarkSolve(b *testing.B) {
	s, err := NewSolver(16, 16, 16, 3)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, s.N())
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(rhs, 25, 1e-9)
	}
}

// BenchmarkMeteredSingleNode measures the simulator's own cost for a
// single-node metered HPCG run.
func BenchmarkMeteredSingleNode(b *testing.B) {
	cfg := Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 5}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
