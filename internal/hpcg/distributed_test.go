package hpcg

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/sparse"
)

func distJob(procs, nodes int) simmpi.JobConfig {
	sys := arch.MustGet(arch.A64FX)
	rpn := procs / nodes
	if rpn < 1 {
		rpn = 1
	}
	model := sys.PerRankModel(rpn, 1)
	return simmpi.JobConfig{
		Procs: procs, Nodes: nodes, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(nodes),
	}
}

// serialReference solves the same system with plain CG on the assembled
// CSR matrix.
func serialReference(t *testing.T, nx, ny, nz int, b []float64, iters int, tol float64) []float64 {
	t.Helper()
	a, err := sparse.Stencil27(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	n := a.N
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rr := linalg.Dot(r, r)
	normB2 := rr
	for it := 0; it < iters && math.Sqrt(rr/normB2) >= tol; it++ {
		a.SpMV(p, ap)
		alpha := rr / linalg.Dot(p, ap)
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		rrNew := linalg.Dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		linalg.Waxpby(1, r, beta, p, p)
	}
	return x
}

// TestDistributedStencilMatchesAssembledOperator checks the matrix-free
// operator against the assembled CSR matrix, across rank counts.
func TestDistributedStencilMatchesAssembledOperator(t *testing.T) {
	t.Parallel()
	nx, ny, nz := 6, 5, 8
	a, err := sparse.Stencil27(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, a.N)
	for i := range u {
		u[i] = math.Sin(float64(i) * 0.7)
	}
	want := make([]float64, a.N)
	a.SpMV(u, want)

	for _, procs := range []int{1, 2, 3, 4, 8} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			got := make([]float64, a.N)
			var mu sync.Mutex
			_, err := simmpi.Run(distJob(procs, minInt(procs, 2)), func(r *simmpi.Rank) error {
				d, err := NewDistributedStencilCG(r, nx, ny, nz)
				if err != nil {
					return err
				}
				lo := d.z0 * nx * ny
				local := append([]float64(nil), u[lo:lo+d.LocalLen()]...)
				y := make([]float64, d.LocalLen())
				d.Apply(local, y, 10)
				mu.Lock()
				copy(got[lo:], y)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if diff := linalg.AbsDiffMax(got, want); diff > 1e-11 {
				t.Errorf("matrix-free operator deviates by %v", diff)
			}
		})
	}
}

// TestDistributedStencilCGMatchesSerial runs the full distributed solve
// and compares with the serial assembled-matrix CG.
func TestDistributedStencilCGMatchesSerial(t *testing.T) {
	t.Parallel()
	nx, ny, nz := 8, 8, 12
	n := nx * ny * nz
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(i) * 0.3)
	}
	serial := serialReference(t, nx, ny, nz, b, 400, 1e-11)

	for _, procs := range []int{1, 3, 4, 6} {
		procs := procs
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			got := make([]float64, n)
			var mu sync.Mutex
			rep, err := simmpi.Run(distJob(procs, minInt(procs, 2)), func(r *simmpi.Rank) error {
				d, err := NewDistributedStencilCG(r, nx, ny, nz)
				if err != nil {
					return err
				}
				lo := d.z0 * nx * ny
				x, iters, relres := d.Solve(b[lo:lo+d.LocalLen()], 400, 1e-11)
				if relres > 1e-11 {
					return fmt.Errorf("did not converge: %v after %d iters", relres, iters)
				}
				mu.Lock()
				copy(got[lo:], x)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if diff := linalg.AbsDiffMax(got, serial); diff > 1e-7 {
				t.Errorf("distributed solution deviates from serial by %v", diff)
			}
			if rep.Makespan <= 0 {
				t.Error("no virtual time elapsed")
			}
			if procs > 1 && rep.TotalBytesSent == 0 {
				t.Error("no halo traffic recorded")
			}
		})
	}
}

func TestDistributedStencilValidation(t *testing.T) {
	t.Parallel()
	_, err := simmpi.Run(distJob(4, 1), func(r *simmpi.Rank) error {
		if _, err := NewDistributedStencilCG(r, 4, 4, 2); err == nil {
			return fmt.Errorf("4 ranks over 2 planes should fail")
		}
		if _, err := NewDistributedStencilCG(r, 0, 4, 8); err == nil {
			return fmt.Errorf("degenerate grid should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedStencilZeroRHS(t *testing.T) {
	t.Parallel()
	_, err := simmpi.Run(distJob(2, 1), func(r *simmpi.Rank) error {
		d, err := NewDistributedStencilCG(r, 4, 4, 4)
		if err != nil {
			return err
		}
		x, iters, _ := d.Solve(make([]float64, d.LocalLen()), 10, 1e-10)
		if iters != 0 || linalg.MaxAbs(x) != 0 {
			return fmt.Errorf("zero RHS mishandled")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBlockJacobiMGPreconditioner: the preconditioned distributed solve
// reaches the same answer in fewer iterations.
func TestBlockJacobiMGPreconditioner(t *testing.T) {
	t.Parallel()
	nx, ny, nz := 8, 8, 16
	n := nx * ny * nz
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.11)
	}
	serial := serialReference(t, nx, ny, nz, b, 600, 1e-11)

	run := func(precond bool) (sol []float64, iters int) {
		got := make([]float64, n)
		itersCh := make(chan int, 4)
		var mu sync.Mutex
		_, err := simmpi.Run(distJob(2, 1), func(r *simmpi.Rank) error {
			d, err := NewDistributedStencilCG(r, nx, ny, nz)
			if err != nil {
				return err
			}
			if precond {
				if err := d.EnableBlockJacobiMG(3); err != nil {
					return err
				}
			}
			lo := d.z0 * nx * ny
			x, it, relres := d.Solve(b[lo:lo+d.LocalLen()], 600, 1e-11)
			if relres > 1e-11 {
				return fmt.Errorf("did not converge: %v", relres)
			}
			itersCh <- it
			mu.Lock()
			copy(got[lo:], x)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got, <-itersCh
	}

	plain, plainIters := run(false)
	pre, preIters := run(true)
	if d := linalg.AbsDiffMax(plain, serial); d > 1e-7 {
		t.Errorf("plain solve deviates by %v", d)
	}
	if d := linalg.AbsDiffMax(pre, serial); d > 1e-7 {
		t.Errorf("preconditioned solve deviates by %v", d)
	}
	if preIters >= plainIters {
		t.Errorf("MG preconditioner did not help: %d vs %d iterations", preIters, plainIters)
	}
}

func TestEnableBlockJacobiMGValidation(t *testing.T) {
	t.Parallel()
	_, err := simmpi.Run(distJob(1, 1), func(r *simmpi.Rank) error {
		d, err := NewDistributedStencilCG(r, 10, 10, 10)
		if err != nil {
			return err
		}
		// 10 planes are not divisible by 4 (3 coarsenings).
		if err := d.EnableBlockJacobiMG(3); err == nil {
			return fmt.Errorf("indivisible slab should fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
