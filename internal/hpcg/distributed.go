package hpcg

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// DistributedStencilCG solves the HPCG 27-point-stencil system A·x = b on
// a global nx×ny×nz grid, decomposed into z-slabs across the simmpi
// ranks, with a matrix-free operator: real boundary planes move between
// neighbouring ranks before every operator application, and the scalar
// reductions are real allreduces. It returns this rank's slab of the
// solution and the iteration count.
//
// This is the integration path that proves the simulated runtime carries
// real numerics: the result must agree with a serial solve on the
// assembled matrix to solver tolerance (see the tests).
type DistributedStencilCG struct {
	NX, NY, NZ int // global dims
	rank       *simmpi.Rank
	z0, z1     int // this rank's slab [z0, z1)
	// mg is the optional block-Jacobi multigrid preconditioner (see
	// EnableBlockJacobiMG).
	mg *MGSolver
}

// NewDistributedStencilCG validates the decomposition: every rank needs
// at least one plane.
func NewDistributedStencilCG(r *simmpi.Rank, nx, ny, nz int) (*DistributedStencilCG, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("hpcg: invalid grid %dx%dx%d", nx, ny, nz)
	}
	if r.Size() > nz {
		return nil, fmt.Errorf("hpcg: %d ranks for %d planes", r.Size(), nz)
	}
	z0, z1 := slabRange(nz, r.Size(), r.ID())
	return &DistributedStencilCG{NX: nx, NY: ny, NZ: nz, rank: r, z0: z0, z1: z1}, nil
}

// slabRange distributes nz planes over p ranks.
func slabRange(nz, p, id int) (int, int) {
	base := nz / p
	rem := nz % p
	lo := id*base + minInt(id, rem)
	size := base
	if id < rem {
		size++
	}
	return lo, lo + size
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Planes reports this rank's plane count.
func (d *DistributedStencilCG) Planes() int { return d.z1 - d.z0 }

// LocalLen reports this rank's vector length.
func (d *DistributedStencilCG) LocalLen() int { return d.NX * d.NY * d.Planes() }

// exchangeHalos sends this slab's boundary planes to the z-neighbours and
// returns the received lower and upper halo planes (nil at the domain
// boundary). Tag space distinguishes up/down traffic.
func (d *DistributedStencilCG) exchangeHalos(u []float64, tag int) (lower, upper []float64) {
	r := d.rank
	plane := d.NX * d.NY
	if r.ID() > 0 {
		r.SendFloats(r.ID()-1, tag, append([]float64(nil), u[:plane]...))
	}
	if r.ID() < r.Size()-1 {
		r.SendFloats(r.ID()+1, tag+1, append([]float64(nil), u[len(u)-plane:]...))
	}
	if r.ID() > 0 {
		lower = r.RecvFloats(r.ID()-1, tag+1)
	}
	if r.ID() < r.Size()-1 {
		upper = r.RecvFloats(r.ID()+1, tag)
	}
	return lower, upper
}

// Apply computes y = A·u for the 27-point operator (diagonal 26,
// neighbours -1) matrix-free on this slab, using halo planes from the
// neighbours. The virtual clock is charged for the metered stencil work.
func (d *DistributedStencilCG) Apply(u, y []float64, tag int) {
	if len(u) != d.LocalLen() || len(y) != d.LocalLen() {
		panic("hpcg: Apply length mismatch")
	}
	lower, upper := d.exchangeHalos(u, tag)
	nx, ny := d.NX, d.NY
	plane := nx * ny
	// at fetches the value at global plane z, local coords (ix, iy),
	// from the slab or a halo; ok=false outside the domain.
	at := func(ix, iy, z int) (float64, bool) {
		if ix < 0 || ix >= nx || iy < 0 || iy >= ny || z < 0 || z >= d.NZ {
			return 0, false
		}
		switch {
		case z < d.z0-1 || z > d.z1:
			return 0, false // beyond single-plane halo (cannot happen)
		case z == d.z0-1:
			if lower == nil {
				return 0, false
			}
			return lower[ix+nx*iy], true
		case z == d.z1:
			if upper == nil {
				return 0, false
			}
			return upper[ix+nx*iy], true
		default:
			return u[ix+nx*iy+plane*(z-d.z0)], true
		}
	}
	for z := d.z0; z < d.z1; z++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				var sum float64
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 && dz == 0 {
								continue
							}
							if v, ok := at(ix+dx, iy+dy, z+dz); ok {
								sum += v
							}
						}
					}
				}
				idx := ix + nx*iy + plane*(z-d.z0)
				y[idx] = 26*u[idx] - sum
			}
		}
	}
	// Meter the real work: 27 points touched per row.
	n := float64(d.LocalLen())
	d.rank.Compute(perfmodel.WorkProfile{
		Class: perfmodel.SpMV,
		Flops: units.Flops(2 * 27 * n),
		Bytes: units.Bytes(10*27*n + 16*n),
		Calls: 1,
	})
}

// EnableBlockJacobiMG attaches a block-Jacobi multigrid preconditioner:
// each rank builds a local MG hierarchy over its own slab (interfaces
// treated as Dirichlet) and preconditions its residual locally — the
// additive-Schwarz flavour of HPCG's preconditioner. The slab dimensions
// must support `levels` coarsenings.
func (d *DistributedStencilCG) EnableBlockJacobiMG(levels int) error {
	s, err := NewSolver(d.NX, d.NY, d.Planes(), levels)
	if err != nil {
		return err
	}
	d.mg = s
	return nil
}

// Solve runs (optionally preconditioned) CG from a zero start on this
// rank's slab of A·x = b (b given as the local slab). Returns the local
// solution, iterations and the final relative residual.
func (d *DistributedStencilCG) Solve(b []float64, maxIter int, tol float64) ([]float64, int, float64) {
	n := d.LocalLen()
	if len(b) != n {
		panic(fmt.Sprintf("hpcg: local rhs length %d, want %d", len(b), n))
	}
	r := d.rank
	x := make([]float64, n)
	res := append([]float64(nil), b...)
	z := make([]float64, n)
	ap := make([]float64, n)

	gdot := func(u, v []float64) float64 {
		return r.AllreduceScalar(linalg.Dot(u, v), simmpi.OpSum)
	}
	// precond applies z = M⁻¹·res: the local MG V-cycle when enabled
	// (metered as SymGS-class work), identity otherwise.
	precond := func() {
		if d.mg == nil {
			copy(z, res)
			return
		}
		d.mg.Precondition(res, z)
		nn := float64(n)
		d.rank.Compute(perfmodel.WorkProfile{
			Class: perfmodel.SymGS,
			Flops: units.Flops(4 * 27 * nn * 1.2), // V-cycle ≈ 1.2× fine-level sweeps
			Bytes: units.Bytes(2 * 10 * 27 * nn * 1.2),
			Calls: 1,
		})
	}
	normB2 := gdot(b, b)
	if normB2 == 0 {
		return x, 0, 0
	}
	precond()
	p := append([]float64(nil), z...)
	rz := gdot(res, z)
	rr := normB2
	iters := 0
	tagSeq := 100
	for it := 0; it < maxIter; it++ {
		tagSeq += 4
		if tagSeq > 1<<16 {
			tagSeq = 100
		}
		d.Apply(p, ap, tagSeq)
		pap := gdot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rz / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, res)
		iters = it + 1
		rr = gdot(res, res)
		if math.Sqrt(rr/normB2) < tol {
			break
		}
		precond()
		rzNew := gdot(res, z)
		beta := rzNew / rz
		rz = rzNew
		linalg.Waxpby(1, z, beta, p, p)
	}
	return x, iters, math.Sqrt(rr / normB2)
}
