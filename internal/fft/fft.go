// Package fft implements complex discrete Fourier transforms: an
// iterative radix-2 Cooley-Tukey transform for power-of-two lengths,
// Bluestein's chirp-z algorithm for arbitrary lengths, and 3D transforms
// over cubic grids — the transform mix CASTEP's plane-wave solver needs.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// nextPow2 returns the smallest power of two ≥ n.
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Forward transforms x in place: X[k] = Σ x[j]·e^{-2πijk/n}.
func Forward(x []complex128) { transform(x, false) }

// Inverse transforms x in place with 1/n normalisation, so
// Inverse(Forward(x)) == x.
func Inverse(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// transform dispatches on length.
func transform(x []complex128, inverse bool) {
	n := len(x)
	switch {
	case n <= 1:
	case IsPow2(n):
		radix2(x, inverse)
	default:
		bluestein(x, inverse)
	}
}

// radix2 is the iterative in-place Cooley-Tukey transform.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Rect(1, ang)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein handles arbitrary lengths via the chirp-z transform: an
// n-point DFT expressed as a convolution, evaluated with power-of-two
// FFTs of length ≥ 2n-1.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	m := nextPow2(2*n - 1)
	// chirp[i] = e^{sign·πi²/n}
	chirp := make([]complex128, n)
	for i := 0; i < n; i++ {
		// i² mod 2n avoids precision loss for large i.
		j := (int64(i) * int64(i)) % int64(2*n)
		chirp[i] = cmplx.Rect(1, sign*math.Pi*float64(j)/float64(n))
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for i := 0; i < n; i++ {
		a[i] = x[i] * chirp[i]
		b[i] = cmplx.Conj(chirp[i])
	}
	for i := 1; i < n; i++ {
		b[m-i] = b[i]
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for i := 0; i < n; i++ {
		x[i] = a[i] * scale * chirp[i]
	}
}

// Flops estimates the flop count of one n-point complex transform using
// the standard 5·n·log₂(n) accounting.
func Flops(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// Grid3D is a complex field on an n×n×n grid stored x-fastest, with 3D
// transforms applied dimension by dimension.
type Grid3D struct {
	N    int
	Data []complex128
}

// NewGrid3D allocates a zeroed n³ grid.
func NewGrid3D(n int) *Grid3D {
	if n < 1 {
		panic(fmt.Sprintf("fft: invalid grid size %d", n))
	}
	return &Grid3D{N: n, Data: make([]complex128, n*n*n)}
}

// At returns element (i, j, k).
func (g *Grid3D) At(i, j, k int) complex128 { return g.Data[i+g.N*(j+g.N*k)] }

// Set assigns element (i, j, k).
func (g *Grid3D) Set(i, j, k int, v complex128) { g.Data[i+g.N*(j+g.N*k)] = v }

// Forward3D transforms the grid in place along all three dimensions.
func (g *Grid3D) Forward3D() { g.transform3D(false) }

// Inverse3D inverts Forward3D (with full 1/n³ normalisation).
func (g *Grid3D) Inverse3D() { g.transform3D(true) }

func (g *Grid3D) transform3D(inverse bool) {
	n := g.N
	buf := make([]complex128, n)
	// X direction: contiguous rows.
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			row := g.Data[n*(j+n*k) : n*(j+n*k)+n]
			if inverse {
				Inverse(row)
			} else {
				Forward(row)
			}
		}
	}
	// Y direction.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				buf[j] = g.At(i, j, k)
			}
			if inverse {
				Inverse(buf)
			} else {
				Forward(buf)
			}
			for j := 0; j < n; j++ {
				g.Set(i, j, k, buf[j])
			}
		}
	}
	// Z direction.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				buf[k] = g.At(i, j, k)
			}
			if inverse {
				Inverse(buf)
			} else {
				Forward(buf)
			}
			for k := 0; k < n; k++ {
				g.Set(i, j, k, buf[k])
			}
		}
	}
}

// Flops3D estimates the flop count of one 3D transform on an n³ grid:
// 3·n² one-dimensional transforms of length n.
func Flops3D(n int) float64 {
	return 3 * float64(n) * float64(n) * Flops(n)
}

// NaiveDFT computes the n²-cost reference transform, for tests.
func NaiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Rect(1, sign*2*math.Pi*float64(j)*float64(k)/float64(n))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}
