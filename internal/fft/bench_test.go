package fft

import (
	"fmt"
	"testing"
)

func BenchmarkForward(b *testing.B) {
	for _, n := range []int{64, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := randSlice(n, 1)
			work := make([]complex128, n)
			b.SetBytes(int64(16 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, x)
				Forward(work)
			}
			b.ReportMetric(Flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	// Non-power-of-two lengths exercise the chirp-z path.
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := randSlice(n, 2)
			work := make([]complex128, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, x)
				Forward(work)
			}
		})
	}
}

func BenchmarkGrid3D(b *testing.B) {
	for _, n := range []int{16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := NewGrid3D(n)
			for i := range g.Data {
				g.Data[i] = complex(float64(i%11), float64(i%7))
			}
			b.SetBytes(int64(16 * n * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Forward3D()
				g.Inverse3D()
			}
		})
	}
}
