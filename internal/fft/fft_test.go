package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSlice(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPow2(t *testing.T) {
	t.Parallel()
	for _, c := range []struct {
		n    int
		want bool
	}{{1, true}, {2, true}, {3, false}, {64, true}, {0, false}, {-4, false}, {96, false}} {
		if got := IsPow2(c.n); got != c.want {
			t.Errorf("IsPow2(%d) = %v", c.n, got)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 30, 64, 100} {
		x := randSlice(n, int64(n))
		want := NaiveDFT(x, false)
		got := append([]complex128(nil), x...)
		Forward(got)
		if e := maxErr(got, want); e > 1e-9 {
			t.Errorf("n=%d forward error %v", n, e)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 8, 12, 64} {
		x := randSlice(n, int64(100+n))
		want := NaiveDFT(x, true)
		got := append([]complex128(nil), x...)
		Inverse(got)
		if e := maxErr(got, want); e > 1e-9 {
			t.Errorf("n=%d inverse error %v", n, e)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	t.Parallel()
	for _, n := range []int{1, 2, 5, 8, 17, 48, 128} {
		x := randSlice(n, int64(200+n))
		got := append([]complex128(nil), x...)
		Forward(got)
		Inverse(got)
		if e := maxErr(got, x); e > 1e-9 {
			t.Errorf("n=%d round-trip error %v", n, e)
		}
	}
}

func TestParseval(t *testing.T) {
	t.Parallel()
	// Σ|x|² == (1/n)·Σ|X|².
	for _, n := range []int{8, 48, 100} {
		x := randSlice(n, int64(300+n))
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		if math.Abs(freqE/float64(n)-timeE) > 1e-8*timeE {
			t.Errorf("n=%d Parseval violated: %v vs %v", n, freqE/float64(n), timeE)
		}
	}
}

func TestImpulseResponse(t *testing.T) {
	t.Parallel()
	// DFT of a unit impulse is all ones.
	n := 16
	x := make([]complex128, n)
	x[0] = 1
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("X[%d] = %v, want 1", i, v)
		}
	}
}

func TestFlops(t *testing.T) {
	t.Parallel()
	if Flops(1) != 0 {
		t.Error("Flops(1) should be 0")
	}
	if got := Flops(8); got != 5*8*3 {
		t.Errorf("Flops(8) = %v", got)
	}
	if got := Flops3D(4); got != 3*16*Flops(4) {
		t.Errorf("Flops3D(4) = %v", got)
	}
}

func TestGrid3DRoundTrip(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 3, 4, 8} {
		g := NewGrid3D(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range g.Data {
			g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), g.Data...)
		g.Forward3D()
		g.Inverse3D()
		if e := maxErr(g.Data, orig); e > 1e-9 {
			t.Errorf("n=%d 3D round-trip error %v", n, e)
		}
	}
}

func TestGrid3DPlaneWave(t *testing.T) {
	t.Parallel()
	// A single plane wave e^{2πi·(x·kx)/n} transforms to one spike.
	n := 8
	g := NewGrid3D(n)
	kx := 3
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				g.Set(i, j, k, cmplx.Rect(1, 2*math.Pi*float64(kx*i)/float64(n)))
			}
		}
	}
	g.Forward3D()
	want := complex(float64(n*n*n), 0)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				exp := complex128(0)
				if i == kx && j == 0 && k == 0 {
					exp = want
				}
				if cmplx.Abs(g.At(i, j, k)-exp) > 1e-6 {
					t.Fatalf("spike wrong at (%d,%d,%d): %v", i, j, k, g.At(i, j, k))
				}
			}
		}
	}
}

func TestGrid3DAtSet(t *testing.T) {
	t.Parallel()
	g := NewGrid3D(3)
	g.Set(1, 2, 0, 5)
	if g.At(1, 2, 0) != 5 {
		t.Error("At/Set inconsistent")
	}
	if g.Data[1+3*2] != 5 {
		t.Error("layout not x-fastest")
	}
}

func TestNewGrid3DInvalid(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGrid3D(0)
}

// Property: linearity of the transform.
func TestLinearityProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 2
		x := randSlice(n, seed)
		y := randSlice(n, seed+1)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + 2*y[i]
		}
		Forward(x)
		Forward(y)
		Forward(sum)
		for i := range sum {
			if cmplx.Abs(sum[i]-(x[i]+2*y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: round trip at arbitrary lengths.
func TestRoundTripProperty(t *testing.T) {
	t.Parallel()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		x := randSlice(n, seed)
		got := append([]complex128(nil), x...)
		Forward(got)
		Inverse(got)
		return maxErr(got, x) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
