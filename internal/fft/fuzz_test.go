package fft

import (
	"math"
	"testing"
)

// FuzzRoundTrip checks Forward∘Inverse identity for arbitrary lengths and
// content derived from fuzzer input.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(8), int64(1))
	f.Add(uint8(7), int64(42))
	f.Add(uint8(100), int64(-3))
	f.Add(uint8(1), int64(0))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64) {
		n := int(nRaw)%200 + 1
		x := make([]complex128, n)
		s := seed
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			re := float64(int32(s>>32)) / float64(1<<28)
			s = s*6364136223846793005 + 1442695040888963407
			im := float64(int32(s>>32)) / float64(1<<28)
			x[i] = complex(re, im)
		}
		got := append([]complex128(nil), x...)
		Forward(got)
		Inverse(got)
		var scale float64 = 1
		for _, v := range x {
			if a := math.Abs(real(v)) + math.Abs(imag(v)); a > scale {
				scale = a
			}
		}
		for i := range got {
			d := got[i] - x[i]
			if math.Abs(real(d))+math.Abs(imag(d)) > 1e-8*scale {
				t.Fatalf("n=%d: round-trip error at %d: %v vs %v", n, i, got[i], x[i])
			}
		}
	})
}
