package cosa

import (
	"math"
	"testing"

	"a64fxbench/internal/arch"
)

// BenchmarkHBApplyD measures the real time-spectral operator.
func BenchmarkHBApplyD(b *testing.B) {
	hb, err := NewHarmonicBalance(4, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	m := hb.Instances()
	u := make([]float64, m)
	du := make([]float64, m)
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hb.ApplyD(u, du)
	}
}

// BenchmarkHBSolverStep measures one pseudo-time step of the real block
// solver.
func BenchmarkHBSolverStep(b *testing.B) {
	hb, _ := NewHarmonicBalance(2, 1)
	s, err := NewHBSolver(hb, 4, 16, 16, 0.5, 0.5, 1)
	if err != nil {
		b.Fatal(err)
	}
	s.SetForcing(
		func(x, y, t float64) float64 { return math.Sin(x + y) },
		func(x, y, t float64) float64 { return math.Cos(x + y) },
		func(x, y, t float64) float64 { return math.Cos(x + y) },
		func(x, y, t float64) float64 { return -math.Sin(x + y) },
		func(x, y, t float64) float64 { return -math.Sin(x + y) },
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0.01)
	}
}

// BenchmarkMeteredScaling measures the simulator's cost for a 2-node
// metered COSA run.
func BenchmarkMeteredScaling(b *testing.B) {
	cfg := Config{System: arch.MustGet(arch.A64FX), Nodes: 2}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
