// Package cosa implements the COSA computational fluid dynamics
// benchmark: a harmonic-balance (frequency-domain) finite-volume
// multigrid solver over a block-structured grid, parallelised by
// distributing grid blocks to MPI processes (§VII.A of the paper).
//
// The harmonic-balance time-spectral operator and a real block-structured
// advection-diffusion HB solver are implemented and validated in the
// tests; the metered benchmark reproduces Figure 4 (strong scaling of the
// 800-block, 4-harmonic, 3.69M-cell test case over 1–16 nodes, with the
// paper's block-distribution load-imbalance effects) and Table VIII
// (processes per node).
package cosa

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
)

// HarmonicBalance holds the time-spectral machinery for N harmonics:
// 2N+1 equally spaced time instances over one period, coupled by the
// spectral time-derivative matrix D.
type HarmonicBalance struct {
	// N is the harmonic count.
	N int
	// Omega is the fundamental angular frequency.
	Omega float64
	// D is the (2N+1)×(2N+1) spectral time-derivative matrix.
	D *linalg.Matrix
}

// Instances reports the number of time instances, 2N+1.
func (hb *HarmonicBalance) Instances() int { return 2*hb.N + 1 }

// NewHarmonicBalance builds the operator for n harmonics at fundamental
// frequency omega.
func NewHarmonicBalance(n int, omega float64) (*HarmonicBalance, error) {
	if n < 1 {
		return nil, fmt.Errorf("cosa: need ≥1 harmonic, got %d", n)
	}
	if omega <= 0 {
		return nil, fmt.Errorf("cosa: frequency must be positive, got %v", omega)
	}
	m := 2*n + 1
	d := linalg.NewMatrix(m, m)
	// Standard time-spectral derivative for an odd number of samples:
	// D_ij = (ω/2)·(-1)^(i-j) / sin(π(i-j)/M), D_ii = 0.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			k := i - j
			sign := 1.0
			if k%2 != 0 {
				sign = -1.0
			}
			d.Set(i, j, omega*0.5*sign/math.Sin(math.Pi*float64(k)/float64(m)))
		}
	}
	return &HarmonicBalance{N: n, Omega: omega, D: d}, nil
}

// TimeSample returns the time of instance i within the period.
func (hb *HarmonicBalance) TimeSample(i int) float64 {
	m := float64(hb.Instances())
	return 2 * math.Pi / hb.Omega * float64(i) / m
}

// ApplyD computes the spectral time derivative of a per-instance value
// vector u (length 2N+1), writing into du.
func (hb *HarmonicBalance) ApplyD(u, du []float64) {
	hb.D.MulVec(u, du)
}
