package cosa

import (
	"fmt"
	"math"
)

// Block is one structured grid block of the validation solver: a 2D
// nx×ny cell patch carrying 2N+1 harmonic-balance instances of a scalar
// field, with one-cell halos on each side.
type Block struct {
	NX, NY int
	// U holds the field: U[inst][cell], cells indexed with halo,
	// stride (NX+2).
	U [][]float64
}

// idx maps interior coordinates (0-based, excluding halo) to storage.
func (b *Block) idx(i, j int) int { return (i + 1) + (b.NX+2)*(j+1) }

// NewBlock allocates a zeroed block for m instances.
func NewBlock(nx, ny, instances int) *Block {
	b := &Block{NX: nx, NY: ny, U: make([][]float64, instances)}
	for k := range b.U {
		b.U[k] = make([]float64, (nx+2)*(ny+2))
	}
	return b
}

// HBSolver is the validation-scale COSA analogue: a harmonic-balance
// advection-diffusion solver du/dt + a·∇u − ν∇²u = f on a periodic
// domain decomposed into blocks, marched to steady state in pseudo-time
// — the structure (block loop, halo exchange, per-instance stencil
// update, HB coupling) of COSA's multigrid smoother.
type HBSolver struct {
	HB     *HarmonicBalance
	Blocks []*Block // blocks side by side along x
	AX, AY float64  // advection velocity
	Nu     float64  // diffusivity
	DX, DY float64  // cell sizes
	F      [][][]float64
	// scratch
	du []float64
	un []float64
}

// NewHBSolver builds a solver over `blocks` blocks of nx×ny cells each,
// on the periodic domain [0,2π)², with the given physics.
func NewHBSolver(hb *HarmonicBalance, blocks, nx, ny int, ax, ay, nu float64) (*HBSolver, error) {
	if blocks < 1 || nx < 2 || ny < 2 {
		return nil, fmt.Errorf("cosa: invalid block layout %d×(%dx%d)", blocks, nx, ny)
	}
	if nu <= 0 {
		return nil, fmt.Errorf("cosa: diffusivity must be positive")
	}
	s := &HBSolver{
		HB: hb, AX: ax, AY: ay, Nu: nu,
		DX: 2 * math.Pi / float64(blocks*nx),
		DY: 2 * math.Pi / float64(ny),
		du: make([]float64, hb.Instances()),
		un: make([]float64, hb.Instances()),
	}
	for b := 0; b < blocks; b++ {
		s.Blocks = append(s.Blocks, NewBlock(nx, ny, hb.Instances()))
	}
	s.F = make([][][]float64, blocks)
	for b := range s.F {
		s.F[b] = make([][]float64, hb.Instances())
		for k := range s.F[b] {
			s.F[b][k] = make([]float64, nx*ny)
		}
	}
	return s, nil
}

// X returns the physical x of cell i in block b; Y likewise for j.
func (s *HBSolver) X(b, i int) float64 {
	return (float64(b*s.Blocks[0].NX+i) + 0.5) * s.DX
}

// Y returns the physical y coordinate of cell row j.
func (s *HBSolver) Y(j int) float64 { return (float64(j) + 0.5) * s.DY }

// SetForcing fills the forcing so that uExact is the steady HB solution:
// f = D_t u* + a·∇u* − ν∇²u* evaluated spectrally in t and analytically
// in space via the supplied derivatives.
func (s *HBSolver) SetForcing(uExact func(x, y, t float64) float64,
	ux, uy, uxx, uyy func(x, y, t float64) float64) {
	m := s.HB.Instances()
	uk := make([]float64, m)
	duk := make([]float64, m)
	for b, blk := range s.Blocks {
		for j := 0; j < blk.NY; j++ {
			for i := 0; i < blk.NX; i++ {
				x, y := s.X(b, i), s.Y(j)
				for k := 0; k < m; k++ {
					uk[k] = uExact(x, y, s.HB.TimeSample(k))
				}
				s.HB.ApplyD(uk, duk)
				for k := 0; k < m; k++ {
					t := s.HB.TimeSample(k)
					s.F[b][k][i+blk.NX*j] = duk[k] +
						s.AX*ux(x, y, t) + s.AY*uy(x, y, t) -
						s.Nu*(uxx(x, y, t)+uyy(x, y, t))
				}
			}
		}
	}
}

// exchangeHalos copies periodic halos between neighbouring blocks in x
// and applies periodicity in y within each block.
func (s *HBSolver) exchangeHalos() {
	nb := len(s.Blocks)
	for bi, blk := range s.Blocks {
		left := s.Blocks[(bi-1+nb)%nb]
		right := s.Blocks[(bi+1)%nb]
		for k := range blk.U {
			u := blk.U[k]
			lu := left.U[k]
			ru := right.U[k]
			stride := blk.NX + 2
			for j := 0; j < blk.NY; j++ {
				// x halos from neighbouring blocks (periodic chain).
				u[0+stride*(j+1)] = lu[blk.idx(left.NX-1, j)]
				u[(blk.NX+1)+stride*(j+1)] = ru[blk.idx(0, j)]
			}
			// y periodicity inside the block.
			for i := 0; i < blk.NX; i++ {
				u[blk.idx(i, -1)] = u[blk.idx(i, blk.NY-1)]
				u[blk.idx(i, blk.NY)] = u[blk.idx(i, 0)]
			}
		}
	}
}

// Residual computes the HB residual R = f − (D_t u + a·∇u − ν∇²u) at
// every cell and returns its max-norm. Central differences in space.
func (s *HBSolver) Residual(apply func(b, k, cell int, r float64)) float64 {
	s.exchangeHalos()
	m := s.HB.Instances()
	var maxR float64
	uk := make([]float64, m)
	duk := make([]float64, m)
	for bi, blk := range s.Blocks {
		for j := 0; j < blk.NY; j++ {
			for i := 0; i < blk.NX; i++ {
				for k := 0; k < m; k++ {
					uk[k] = blk.U[k][blk.idx(i, j)]
				}
				s.HB.ApplyD(uk, duk)
				for k := 0; k < m; k++ {
					u := blk.U[k]
					c := u[blk.idx(i, j)]
					xm := u[blk.idx(i, j)-1]
					xp := u[blk.idx(i, j)+1]
					ym := u[blk.idx(i, j)-(blk.NX+2)]
					yp := u[blk.idx(i, j)+(blk.NX+2)]
					adv := s.AX*(xp-xm)/(2*s.DX) + s.AY*(yp-ym)/(2*s.DY)
					diff := s.Nu * ((xp-2*c+xm)/(s.DX*s.DX) + (yp-2*c+ym)/(s.DY*s.DY))
					r := s.F[bi][k][i+blk.NX*j] - (duk[k] + adv - diff)
					if a := math.Abs(r); a > maxR {
						maxR = a
					}
					if apply != nil {
						apply(bi, k, blk.idx(i, j), r)
					}
				}
			}
		}
	}
	return maxR
}

// Step advances one pseudo-time iteration u += τ·R and returns the
// residual max-norm before the update.
func (s *HBSolver) Step(tau float64) float64 {
	return s.Residual(func(b, k, cell int, r float64) {
		s.Blocks[b].U[k][cell] += tau * r
	})
}

// Solve iterates until the residual max-norm falls below tol or maxIter
// is reached, returning iterations used and the final residual.
func (s *HBSolver) Solve(tau, tol float64, maxIter int) (int, float64) {
	var res float64
	for it := 1; it <= maxIter; it++ {
		res = s.Step(tau)
		if res < tol {
			return it, res
		}
	}
	return maxIter, res
}

// MaxErrorAgainst compares the current field with an exact solution.
func (s *HBSolver) MaxErrorAgainst(uExact func(x, y, t float64) float64) float64 {
	var maxE float64
	for b, blk := range s.Blocks {
		for j := 0; j < blk.NY; j++ {
			for i := 0; i < blk.NX; i++ {
				for k := 0; k < s.HB.Instances(); k++ {
					e := math.Abs(blk.U[k][blk.idx(i, j)] -
						uExact(s.X(b, i), s.Y(j), s.HB.TimeSample(k)))
					if e > maxE {
						maxE = e
					}
				}
			}
		}
	}
	return maxE
}
