package cosa

import (
	"math"
	"testing"
)

// mgProblem builds a fine-level manufactured problem on the given MG
// hierarchy and returns the exact solution for error checks.
func mgProblem(t *testing.T, levels int) (*MGSolver, func(x, y, tt float64) float64) {
	t.Helper()
	omega := 1.0
	hb, err := NewHarmonicBalance(1, omega)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMGSolver(hb, 2, 16, 32, 0.6, 0.4, 0.8, levels, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	uE := func(x, y, tt float64) float64 {
		return math.Sin(x)*math.Cos(omega*tt) + 0.3*math.Cos(y)*math.Sin(omega*tt)
	}
	m.Fine().SetForcing(uE,
		func(x, y, tt float64) float64 { return math.Cos(x) * math.Cos(omega*tt) },
		func(x, y, tt float64) float64 { return -0.3 * math.Sin(y) * math.Sin(omega*tt) },
		func(x, y, tt float64) float64 { return -math.Sin(x) * math.Cos(omega*tt) },
		func(x, y, tt float64) float64 { return -0.3 * math.Cos(y) * math.Sin(omega*tt) },
	)
	return m, uE
}

func TestMGValidation(t *testing.T) {
	t.Parallel()
	hb, _ := NewHarmonicBalance(1, 1)
	if _, err := NewMGSolver(hb, 2, 16, 32, 1, 1, 1, 0, 0.01); err == nil {
		t.Error("0 levels should fail")
	}
	if _, err := NewMGSolver(hb, 2, 10, 32, 1, 1, 1, 3, 0.01); err == nil {
		t.Error("grid not divisible by 4 should fail")
	}
}

func TestMGConverges(t *testing.T) {
	t.Parallel()
	m, uE := mgProblem(t, 2)
	cycles, resid := m.Solve(1e-4, 500)
	if resid > 1e-4 {
		t.Fatalf("MG did not converge: %v after %d cycles", resid, cycles)
	}
	if e := m.Fine().MaxErrorAgainst(uE); e > 0.06 {
		t.Errorf("solution error %v too large", e)
	}
}

func TestMGBeatsSingleLevel(t *testing.T) {
	t.Parallel()
	// Multigrid reaches the tolerance in far fewer fine-level sweeps
	// than single-level pseudo-time stepping — the reason COSA uses MG.
	fineSweepsPerCycle := 1 + 4 + 4 // Cycle() step + pre + post smooths

	mg, _ := mgProblem(t, 2)
	mgCycles, mgResid := mg.Solve(1e-3, 300)
	if mgResid > 1e-3 {
		t.Fatalf("MG did not converge: %v", mgResid)
	}
	mgFineSweeps := mgCycles * fineSweepsPerCycle

	single, _ := mgProblem(t, 1)
	// Single level: same smoother, same tau; count plain sweeps to the
	// same tolerance.
	s := single.Fine()
	sweeps := 0
	for ; sweeps < 20000; sweeps++ {
		if s.Step(single.Tau) < 1e-3 {
			break
		}
	}
	if sweeps < 2*mgFineSweeps {
		t.Errorf("MG advantage too small: %d MG fine sweeps vs %d single-level sweeps",
			mgFineSweeps, sweeps)
	}
}

func TestMGResidualNormFinite(t *testing.T) {
	t.Parallel()
	m, _ := mgProblem(t, 2)
	if r := m.ResidualNorm(); math.IsInf(r, 1) || math.IsNaN(r) {
		t.Errorf("residual norm = %v", r)
	}
}
