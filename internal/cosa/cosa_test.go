package cosa

import (
	"math"
	"testing"
	"testing/quick"

	"a64fxbench/internal/arch"
)

// --- Harmonic-balance operator ---

func TestHBValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewHarmonicBalance(0, 1); err == nil {
		t.Error("0 harmonics should fail")
	}
	if _, err := NewHarmonicBalance(2, -1); err == nil {
		t.Error("negative frequency should fail")
	}
	hb, err := NewHarmonicBalance(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Instances() != 9 {
		t.Errorf("instances = %d, want 9", hb.Instances())
	}
}

func TestHBDerivativeExactOnHarmonics(t *testing.T) {
	t.Parallel()
	// The spectral derivative is exact for sin(kωt), cos(kωt), k ≤ N.
	omega := 3.0
	hb, err := NewHarmonicBalance(3, omega)
	if err != nil {
		t.Fatal(err)
	}
	m := hb.Instances()
	for k := 1; k <= hb.N; k++ {
		u := make([]float64, m)
		want := make([]float64, m)
		for i := 0; i < m; i++ {
			ti := hb.TimeSample(i)
			u[i] = math.Sin(float64(k) * omega * ti)
			want[i] = float64(k) * omega * math.Cos(float64(k)*omega*ti)
		}
		du := make([]float64, m)
		hb.ApplyD(u, du)
		for i := range du {
			if math.Abs(du[i]-want[i]) > 1e-9 {
				t.Fatalf("harmonic %d: D u mismatch at %d: %v vs %v", k, i, du[i], want[i])
			}
		}
	}
}

func TestHBDerivativeOfConstantIsZero(t *testing.T) {
	t.Parallel()
	hb, _ := NewHarmonicBalance(4, 1)
	m := hb.Instances()
	u := make([]float64, m)
	for i := range u {
		u[i] = 42
	}
	du := make([]float64, m)
	hb.ApplyD(u, du)
	for _, v := range du {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("D const = %v, want 0", v)
		}
	}
}

// Property: the HB derivative is a linear operator.
func TestHBLinearityProperty(t *testing.T) {
	t.Parallel()
	hb, _ := NewHarmonicBalance(2, 1.7)
	m := hb.Instances()
	f := func(raw [5]int8, scale int8) bool {
		u := make([]float64, m)
		v := make([]float64, m)
		for i := 0; i < m; i++ {
			u[i] = float64(raw[i%5]) / 3
			v[i] = float64(raw[(i+2)%5]) / 7
		}
		a := float64(scale) / 16
		sum := make([]float64, m)
		for i := range sum {
			sum[i] = u[i] + a*v[i]
		}
		du, dv, dsum := make([]float64, m), make([]float64, m), make([]float64, m)
		hb.ApplyD(u, du)
		hb.ApplyD(v, dv)
		hb.ApplyD(sum, dsum)
		for i := range dsum {
			if math.Abs(dsum[i]-(du[i]+a*dv[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- Block HB solver (validation-scale COSA) ---

func TestHBSolverManufacturedSolution(t *testing.T) {
	t.Parallel()
	omega := 1.0
	hb, err := NewHarmonicBalance(2, omega)
	if err != nil {
		t.Fatal(err)
	}
	// Exact solution u = sin(x)·cos(ωt) + 0.5·cos(y)·sin(ωt).
	uE := func(x, y, tt float64) float64 {
		return math.Sin(x)*math.Cos(omega*tt) + 0.5*math.Cos(y)*math.Sin(omega*tt)
	}
	ux := func(x, y, tt float64) float64 { return math.Cos(x) * math.Cos(omega*tt) }
	uy := func(x, y, tt float64) float64 { return -0.5 * math.Sin(y) * math.Sin(omega*tt) }
	uxx := func(x, y, tt float64) float64 { return -math.Sin(x) * math.Cos(omega*tt) }
	uyy := func(x, y, tt float64) float64 { return -0.5 * math.Cos(y) * math.Sin(omega*tt) }

	s, err := NewHBSolver(hb, 4, 16, 32, 0.7, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s.SetForcing(uE, ux, uy, uxx, uyy)
	iters, res := s.Solve(0.02, 1e-8, 20000)
	if res > 1e-8 {
		t.Fatalf("did not converge: residual %v after %d iters", res, iters)
	}
	// The converged discrete solution approximates the exact one to
	// second order in the grid spacing.
	if e := s.MaxErrorAgainst(uE); e > 0.05 {
		t.Errorf("solution error %v too large", e)
	}
}

func TestHBSolverResidualDecreases(t *testing.T) {
	t.Parallel()
	hb, _ := NewHarmonicBalance(1, 2.0)
	s, err := NewHBSolver(hb, 2, 8, 8, 0.5, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Nonzero forcing, zero initial field.
	s.SetForcing(
		func(x, y, tt float64) float64 { return math.Sin(x + y) },
		func(x, y, tt float64) float64 { return math.Cos(x + y) },
		func(x, y, tt float64) float64 { return math.Cos(x + y) },
		func(x, y, tt float64) float64 { return -math.Sin(x + y) },
		func(x, y, tt float64) float64 { return -math.Sin(x + y) },
	)
	r0 := s.Step(0.02)
	for i := 0; i < 400; i++ {
		s.Step(0.02)
	}
	r1 := s.Step(0.02)
	if r1 >= r0*0.5 {
		t.Errorf("residual barely fell: %v → %v", r0, r1)
	}
}

func TestHBSolverValidation(t *testing.T) {
	t.Parallel()
	hb, _ := NewHarmonicBalance(1, 1)
	if _, err := NewHBSolver(hb, 0, 8, 8, 1, 1, 1); err == nil {
		t.Error("zero blocks should fail")
	}
	if _, err := NewHBSolver(hb, 1, 8, 8, 1, 1, 0); err == nil {
		t.Error("zero diffusivity should fail")
	}
}

// --- Metered benchmark ---

func TestPaperTestCase(t *testing.T) {
	t.Parallel()
	tc := PaperTestCase()
	if tc.Harmonics != 4 || tc.Blocks != 800 || tc.Cells != 3690218 {
		t.Errorf("test case drifted: %+v", tc)
	}
	if tc.Instances() != 9 {
		t.Errorf("instances = %d", tc.Instances())
	}
	if d := tc.CellsPerBlock(); d < 4000 || d > 5000 {
		t.Errorf("cells/block = %v", d)
	}
}

func TestA64FXNeedsTwoNodes(t *testing.T) {
	t.Parallel()
	// §VII.3: the case does not fit one 32 GB A64FX node.
	sys := arch.MustGet(arch.A64FX)
	if _, err := Run(Config{System: sys, Nodes: 1}); err == nil {
		t.Error("60 GB case should not fit one A64FX node")
	}
	if _, err := Run(Config{System: sys, Nodes: 2}); err != nil {
		t.Errorf("2 nodes should fit: %v", err)
	}
	// All other systems fit on a single node.
	for _, id := range []arch.ID{arch.ARCHER, arch.Cirrus, arch.NGIO, arch.Fulhame} {
		if _, err := Run(Config{System: arch.MustGet(id), Nodes: 1}); err != nil {
			t.Errorf("%s single node should fit: %v", id, err)
		}
	}
}

func TestFigure4A64FXFastestUntil16(t *testing.T) {
	t.Parallel()
	// A64FX outperforms every other system at 2–8 nodes.
	for _, nodes := range []int{2, 4, 8} {
		a, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range []arch.ID{arch.ARCHER, arch.Cirrus, arch.NGIO, arch.Fulhame} {
			o, err := Run(Config{System: arch.MustGet(id), Nodes: nodes})
			if err != nil {
				t.Fatal(err)
			}
			if o.Seconds <= a.Seconds {
				t.Errorf("%d nodes: %s (%.2fs) beat A64FX (%.2fs)", nodes, id, o.Seconds, a.Seconds)
			}
		}
	}
}

func TestFigure4FulhameOvertakesAt16(t *testing.T) {
	t.Parallel()
	// The paper's crossover: at 16 nodes Fulhame wins because its 1024
	// ranks leave every active rank exactly one block, while the
	// A64FX's 768 ranks give 32 of them two.
	a, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Run(Config{System: arch.MustGet(arch.Fulhame), Nodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if f.Seconds >= a.Seconds {
		t.Errorf("Fulhame (%.2fs) should overtake A64FX (%.2fs) at 16 nodes", f.Seconds, a.Seconds)
	}
	if a.MaxBlocksPerProc != 2 {
		t.Errorf("A64FX max blocks/proc = %d, want 2", a.MaxBlocksPerProc)
	}
	if f.MaxBlocksPerProc != 1 {
		t.Errorf("Fulhame max blocks/proc = %d, want 1", f.MaxBlocksPerProc)
	}
	// Only 800 of Fulhame's 1024 ranks work (13 of 16 nodes).
	if f.ActiveProcs != 800 {
		t.Errorf("Fulhame active procs = %d, want 800", f.ActiveProcs)
	}
}

func TestStrongScalingMonotone(t *testing.T) {
	t.Parallel()
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		start := 1
		if id == arch.A64FX {
			start = 2
		}
		var prev float64 = math.Inf(1)
		for nodes := start; nodes <= 16; nodes *= 2 {
			r, err := Run(Config{System: sys, Nodes: nodes})
			if err != nil {
				t.Fatalf("%s %d nodes: %v", id, nodes, err)
			}
			if r.Seconds >= prev {
				t.Errorf("%s: no speedup at %d nodes (%.2fs vs %.2fs)", id, nodes, r.Seconds, prev)
			}
			prev = r.Seconds
		}
	}
}

func TestTableVIIIProcessesPerNode(t *testing.T) {
	t.Parallel()
	want := map[arch.ID]int{
		arch.A64FX: 48, arch.ARCHER: 24, arch.Cirrus: 36,
		arch.Fulhame: 64, arch.NGIO: 48,
	}
	got := ProcessesPerNode()
	for id, w := range want {
		if got[id] != w {
			t.Errorf("%s: %d processes/node, want %d", id, got[id], w)
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
}
