package cosa

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/decomp"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// TestCase describes the benchmark problem of §VII.A: a harmonic-balance
// case with 4 harmonics, 800 grid blocks, 3,690,218 cells, fitting in
// about 60 GB.
type TestCase struct {
	// Harmonics is the HB harmonic count (time instances = 2H+1).
	Harmonics int
	// Blocks is the number of grid blocks (the decomposition unit).
	Blocks int
	// Cells is the total cell count over all blocks.
	Cells int64
	// MemoryBytes is the resident size of the case.
	MemoryBytes units.Bytes
	// Iterations is the benchmark iteration count (100 in the paper,
	// far fewer than production but enough to measure).
	Iterations int
}

// PaperTestCase returns the exact configuration benchmarked in §VII.A.
func PaperTestCase() TestCase {
	return TestCase{
		Harmonics:   4,
		Blocks:      800,
		Cells:       3690218,
		MemoryBytes: 60 * units.GiB,
		Iterations:  100,
	}
}

// Instances reports the time-instance count 2H+1.
func (tc TestCase) Instances() int { return 2*tc.Harmonics + 1 }

// CellsPerBlock reports the average block size.
func (tc TestCase) CellsPerBlock() float64 { return float64(tc.Cells) / float64(tc.Blocks) }

// Config describes one metered COSA run.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Nodes is the node count (Figure 4 sweeps 1–16).
	Nodes int
	// Case is the workload; zero value means PaperTestCase.
	Case TestCase
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

// Result is the outcome of a metered run.
type Result struct {
	// Seconds is the simulated runtime for the configured iterations
	// (the quantity Figure 4 plots).
	Seconds float64
	// Procs is the MPI process count (one per core, Table VIII).
	Procs int
	// ActiveProcs is the number of processes that received at least
	// one block (≤ Procs when Procs > Blocks, the Fulhame-at-16-nodes
	// effect).
	ActiveProcs int
	// MaxBlocksPerProc reports the load-balance bottleneck.
	MaxBlocksPerProc int
	// Report carries full accounting.
	Report simmpi.Report
}

// Per-cell-per-instance work of one multigrid iteration: flux assembly,
// residual, smoothing and coarse-grid visits for the 5 conservative
// variables. Derived from COSA's operation structure; absolute scale is
// not pinned by the paper (Figure 4 is relative), so these set a
// plausible ~450 flops and ~400 bytes per cell-instance.
const (
	flopsPerCellInstance = 450
	bytesPerCellInstance = 400
)

// Run executes the metered COSA strong-scaling benchmark.
func Run(cfg Config) (Result, error) {
	if cfg.System == nil {
		return Result{}, fmt.Errorf("cosa: System is required")
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Case.Blocks == 0 {
		cfg.Case = PaperTestCase()
	}
	sys := cfg.System
	tc := cfg.Case

	// Memory check: the case must fit the aggregate node memory
	// (§VII.3: "the benchmark would not fit on a single A64FX node").
	if units.Bytes(cfg.Nodes)*sys.MemoryPerNode() < tc.MemoryBytes {
		return Result{}, fmt.Errorf("cosa: case needs %v, %d %s nodes have %v",
			tc.MemoryBytes, cfg.Nodes, sys.ID, units.Bytes(cfg.Nodes)*sys.MemoryPerNode())
	}

	procs := cfg.Nodes * sys.CoresPerNode()
	part := decomp.BlockPartition{N: tc.Blocks, P: procs}

	// Per-block work per iteration.
	cellsBlk := tc.CellsPerBlock()
	inst := float64(tc.Instances())
	blockWork := perfmodel.WorkProfile{
		Class: perfmodel.FluxFV,
		Flops: units.Flops(cellsBlk * inst * flopsPerCellInstance),
		Bytes: units.Bytes(cellsBlk * inst * bytesPerCellInstance),
		Calls: 1,
	}
	// Halo: each block exchanges its perimeter with neighbouring
	// blocks. A block of ~4613 cells has a perimeter of ~4·√4613 ≈ 272
	// cells, each carrying 5 variables × (2H+1) instances.
	perimeter := 4 * int(sqrtApprox(cellsBlk))
	haloBytes := units.Bytes(float64(perimeter) * 5 * inst * 8)

	model := sys.PerRankModel(sys.CoresPerNode(), 1)
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          cfg.Nodes,
		ThreadsPerRank: 1,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Fabric:         sys.NewFabric(cfg.Nodes),
		NoiseProb:      1e-5,
		NoiseDuration:  units.Duration(30 * units.Millisecond),
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("cosa %s n=%d", sys.ID, cfg.Nodes),
	}
	cfg.Instrumentation.Apply(&job)

	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		myBlocks := part.Part(r.ID())
		const tagHalo = 13
		for it := 0; it < tc.Iterations; it++ {
			r.Region("hb-iter")
			// Work for all owned blocks.
			if myBlocks > 0 {
				r.Region("flux")
				r.Compute(blockWork.Scale(int64(myBlocks)))
				r.EndRegion()
			}
			// Halo exchange: blocks are distributed contiguously, so
			// inter-process traffic is with adjacent ranks in the
			// active set.
			active := part.ActiveParts()
			if r.ID() < active && active > 1 {
				r.Region("halo")
				if r.ID() > 0 {
					r.Send(r.ID()-1, tagHalo, nil, haloBytes)
				}
				if r.ID() < active-1 {
					r.Send(r.ID()+1, tagHalo, nil, haloBytes)
				}
				if r.ID() > 0 {
					r.Recv(r.ID()-1, tagHalo)
				}
				if r.ID() < active-1 {
					r.Recv(r.ID()+1, tagHalo)
				}
				r.EndRegion()
			}
			// Residual-monitoring reduction each iteration.
			r.AllreduceScalar(0, simmpi.OpMax)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seconds:          rep.Seconds(),
		Procs:            procs,
		ActiveProcs:      part.ActiveParts(),
		MaxBlocksPerProc: part.MaxPart(),
		Report:           rep,
	}, nil
}

// sqrtApprox is an integer-friendly Newton square root for sizing.
func sqrtApprox(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// ProcessesPerNode reproduces Table VIII: the MPI processes per node used
// on each system (one per core). Only the paper's five systems appear —
// derived ablation systems are not part of Table VIII.
func ProcessesPerNode() map[arch.ID]int {
	out := make(map[arch.ID]int)
	for _, id := range arch.IDs() {
		out[id] = arch.MustGet(id).CoresPerNode()
	}
	return out
}
