package cosa

import (
	"fmt"
	"math"
)

// MGSolver accelerates the harmonic-balance solver with a geometric
// multigrid hierarchy in space — COSA's actual integration scheme
// (§VII.A: "finite volume space-discretisation and multigrid (MG)
// integration"). Each level is an HBSolver on a grid coarsened 2× per
// direction; the cycle smooths with pseudo-time steps, restricts the
// residual by averaging, and prolongs corrections by injection.
type MGSolver struct {
	// Levels, finest first.
	Levels []*HBSolver
	// Tau is the pseudo-time step used for smoothing at every level.
	Tau float64
	// PreSmooth and PostSmooth are the smoothing step counts.
	PreSmooth, PostSmooth int
	// CoarseSteps is the iteration count at the coarsest level.
	CoarseSteps int
	// Damping scales the prolongated coarse correction — under-
	// relaxation keeps the advective modes of the correction scheme
	// stable (standard practice for convection-dominated multigrid).
	Damping float64
}

// NewMGSolver builds a hierarchy of `levels` grids under the given fine
// solver constructor parameters. Block count and ny must be divisible by
// 2^(levels-1); nx is per block.
func NewMGSolver(hb *HarmonicBalance, blocks, nx, ny int, ax, ay, nu float64, levels int, tau float64) (*MGSolver, error) {
	if levels < 1 {
		return nil, fmt.Errorf("cosa: need ≥1 level, got %d", levels)
	}
	div := 1 << uint(levels-1)
	if nx%div != 0 || ny%div != 0 {
		return nil, fmt.Errorf("cosa: grid %dx%d not divisible by %d", nx, ny, div)
	}
	m := &MGSolver{Tau: tau, PreSmooth: 4, PostSmooth: 4, CoarseSteps: 40, Damping: 0.8}
	for l := 0; l < levels; l++ {
		s, err := NewHBSolver(hb, blocks, nx>>uint(l), ny>>uint(l), ax, ay, nu)
		if err != nil {
			return nil, err
		}
		m.Levels = append(m.Levels, s)
	}
	return m, nil
}

// Fine returns the finest-level solver (whose F and Blocks the caller
// initialises and reads).
func (m *MGSolver) Fine() *HBSolver { return m.Levels[0] }

// restrictTo transfers the fine level's residual to the coarse level's
// forcing by 2×2 cell averaging, and zeroes the coarse field.
func (m *MGSolver) restrictTo(l int) {
	fine, coarse := m.Levels[l], m.Levels[l+1]
	// Gather the fine residual per (block, instance, cell).
	nbx := fine.Blocks[0].NX
	resid := make([][][]float64, len(fine.Blocks))
	for b := range resid {
		resid[b] = make([][]float64, fine.HB.Instances())
		for k := range resid[b] {
			resid[b][k] = make([]float64, nbx*fine.Blocks[0].NY)
		}
	}
	fine.Residual(func(b, k, cell int, r float64) {
		// cell is a halo-indexed offset; convert to interior coords.
		stride := nbx + 2
		j := cell/stride - 1
		i := cell%stride - 1
		resid[b][k][i+nbx*j] = r
	})
	cnx := coarse.Blocks[0].NX
	for b, blk := range coarse.Blocks {
		for k := range blk.U {
			for j := 0; j < blk.NY; j++ {
				for i := 0; i < blk.NX; i++ {
					sum := resid[b][k][(2*i)+nbx*(2*j)] +
						resid[b][k][(2*i+1)+nbx*(2*j)] +
						resid[b][k][(2*i)+nbx*(2*j+1)] +
						resid[b][k][(2*i+1)+nbx*(2*j+1)]
					coarse.F[b][k][i+cnx*j] = sum / 4
				}
			}
			for idx := range blk.U[k] {
				blk.U[k][idx] = 0
			}
		}
	}
}

// prolongFrom adds the coarse correction to the fine field with bilinear
// (cell-centred) interpolation: each fine child blends its parent with
// the diagonal neighbours at weights 9/16, 3/16, 3/16, 1/16. Periodic
// halos supply the neighbours across block and domain boundaries.
func (m *MGSolver) prolongFrom(l int) {
	fine, coarse := m.Levels[l], m.Levels[l+1]
	coarse.exchangeHalos()
	for b, cblk := range coarse.Blocks {
		fblk := fine.Blocks[b]
		for k := range cblk.U {
			cu := cblk.U[k]
			for j := 0; j < cblk.NY; j++ {
				for i := 0; i < cblk.NX; i++ {
					for dj := 0; dj < 2; dj++ {
						for di := 0; di < 2; di++ {
							// Nearest neighbour offset per quadrant.
							ni := i + 2*di - 1
							nj := j + 2*dj - 1
							v := 9*cu[cblk.idx(i, j)] +
								3*cu[cblk.idx(ni, j)] +
								3*cu[cblk.idx(i, nj)] +
								1*cu[cblk.idx(ni, nj)]
							fblk.U[k][fblk.idx(2*i+di, 2*j+dj)] += m.Damping * v / 16
						}
					}
				}
			}
		}
	}
}

// Cycle performs one V-cycle and returns the fine-level residual
// max-norm measured before the cycle.
func (m *MGSolver) Cycle() float64 {
	r0 := m.Levels[0].Step(m.Tau) // first pre-smooth measures residual
	m.vcycle(0)
	return r0
}

func (m *MGSolver) vcycle(l int) {
	s := m.Levels[l]
	if l == len(m.Levels)-1 {
		for i := 0; i < m.CoarseSteps; i++ {
			s.Step(m.Tau)
		}
		return
	}
	for i := 0; i < m.PreSmooth; i++ {
		s.Step(m.Tau)
	}
	m.restrictTo(l)
	m.vcycle(l + 1)
	m.prolongFrom(l)
	for i := 0; i < m.PostSmooth; i++ {
		s.Step(m.Tau)
	}
}

// Solve cycles until the fine residual max-norm falls below tol or
// maxCycles is reached; returns cycles used and the final residual.
func (m *MGSolver) Solve(tol float64, maxCycles int) (int, float64) {
	for c := 1; c <= maxCycles; c++ {
		m.Cycle()
		if r := m.Levels[0].Residual(nil); r < tol {
			return c, r
		}
	}
	return maxCycles, m.Levels[0].Residual(nil)
}

// ResidualNorm reports the fine level's current residual max-norm.
func (m *MGSolver) ResidualNorm() float64 {
	r := m.Levels[0].Residual(nil)
	if math.IsNaN(r) {
		return math.Inf(1)
	}
	return r
}
