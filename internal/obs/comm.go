package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// CommMatrix is the rank×rank (or, after NodeView, node×node)
// point-to-point traffic matrix of one or more traced jobs: entry
// [src][dst] counts messages and wire bytes sent from src to dst,
// collective internals included.
type CommMatrix struct {
	// N is the matrix dimension (ranks, or nodes for a node view).
	N int `json:"n"`
	// Msgs and Bytes index [src][dst].
	Msgs  [][]int64       `json:"msgs"`
	Bytes [][]units.Bytes `json:"bytes"`
	// NodeOf maps rank→node; nil in node views.
	NodeOf []int `json:"node_of,omitempty"`
	// Nodes is true for a per-node aggregated view.
	Nodes bool `json:"nodes,omitempty"`
}

// BuildCommMatrix accumulates the traffic matrix from the jobs' send
// events.
func BuildCommMatrix(jobs ...JobTrace) *CommMatrix {
	n := 0
	for i := range jobs {
		if r := jobs[i].NumRanks(); r > n {
			n = r
		}
	}
	m := newCommMatrix(n)
	m.NodeOf = make([]int, n)
	for i := range jobs {
		for r, node := range jobs[i].NodeOf() {
			m.NodeOf[r] = node
		}
		for _, e := range jobs[i].Events {
			if e.Kind != simmpi.EvSend || e.Peer < 0 || e.Peer >= n {
				continue
			}
			m.Msgs[e.Rank][e.Peer]++
			m.Bytes[e.Rank][e.Peer] += e.Bytes
		}
	}
	return m
}

func newCommMatrix(n int) *CommMatrix {
	m := &CommMatrix{N: n, Msgs: make([][]int64, n), Bytes: make([][]units.Bytes, n)}
	for i := 0; i < n; i++ {
		m.Msgs[i] = make([]int64, n)
		m.Bytes[i] = make([]units.Bytes, n)
	}
	return m
}

// NodeView aggregates the rank matrix into a node×node matrix using the
// placement recorded in the trace.
func (m *CommMatrix) NodeView() *CommMatrix {
	nodes := 0
	for _, n := range m.NodeOf {
		if n >= nodes {
			nodes = n + 1
		}
	}
	if nodes == 0 {
		nodes = 1
	}
	v := newCommMatrix(nodes)
	v.Nodes = true
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			v.Msgs[m.NodeOf[s]][m.NodeOf[d]] += m.Msgs[s][d]
			v.Bytes[m.NodeOf[s]][m.NodeOf[d]] += m.Bytes[s][d]
		}
	}
	return v
}

// Totals sums the matrix.
func (m *CommMatrix) Totals() (msgs int64, bytes units.Bytes) {
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			msgs += m.Msgs[s][d]
			bytes += m.Bytes[s][d]
		}
	}
	return msgs, bytes
}

// pair is one (src,dst) traffic entry for the heavy-hitters listing.
type pair struct {
	src, dst int
	msgs     int64
	bytes    units.Bytes
}

// heaviest lists the k heaviest (by bytes, then msgs) traffic pairs.
func (m *CommMatrix) heaviest(k int) []pair {
	var ps []pair
	for s := 0; s < m.N; s++ {
		for d := 0; d < m.N; d++ {
			if m.Msgs[s][d] > 0 {
				ps = append(ps, pair{s, d, m.Msgs[s][d], m.Bytes[s][d]})
			}
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].bytes != ps[j].bytes {
			return ps[i].bytes > ps[j].bytes
		}
		if ps[i].msgs != ps[j].msgs {
			return ps[i].msgs > ps[j].msgs
		}
		if ps[i].src != ps[j].src {
			return ps[i].src < ps[j].src
		}
		return ps[i].dst < ps[j].dst
	})
	if len(ps) > k {
		ps = ps[:k]
	}
	return ps
}

// Render writes a human-readable traffic report: totals, the full
// matrix (bytes) when it is small enough to read, the node-aggregated
// view for multi-node jobs, and the heaviest pairs.
func (m *CommMatrix) Render(w io.Writer) error {
	unit := "rank"
	if m.Nodes {
		unit = "node"
	}
	msgs, bytes := m.Totals()
	if _, err := fmt.Fprintf(w, "communication matrix (%d %ss): %d msgs, %v total\n",
		m.N, unit, msgs, bytes); err != nil {
		return err
	}
	if m.N <= 16 {
		if err := m.renderGrid(w, unit); err != nil {
			return err
		}
	}
	for _, p := range m.heaviest(10) {
		if _, err := fmt.Fprintf(w, "  %s %3d → %-3d  %8d msgs  %v\n",
			unit, p.src, p.dst, p.msgs, p.bytes); err != nil {
			return err
		}
	}
	if !m.Nodes && m.NodeOf != nil {
		if nv := m.NodeView(); nv.N > 1 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
			return nv.Render(w)
		}
	}
	return nil
}

// renderGrid prints the byte matrix as a src×dst grid.
func (m *CommMatrix) renderGrid(w io.Writer, unit string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "  %8s", unit+`\`+unit)
	for d := 0; d < m.N; d++ {
		fmt.Fprintf(&b, " %10d", d)
	}
	b.WriteByte('\n')
	for s := 0; s < m.N; s++ {
		fmt.Fprintf(&b, "  %8d", s)
		for d := 0; d < m.N; d++ {
			if m.Msgs[s][d] == 0 {
				fmt.Fprintf(&b, " %10s", "·")
			} else {
				fmt.Fprintf(&b, " %10v", m.Bytes[s][d])
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
