package obs_test

import (
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// checkPathInvariants asserts the two critical-path consistency bounds:
// the path can never exceed the makespan, and it can never undercut the
// busiest rank's recorded event time (every rank's events form one chain
// of the DAG).
func checkPathInvariants(t *testing.T, label string, sink *simmpi.MemorySink, rep simmpi.Report) *obs.CriticalPath {
	t.Helper()
	jobs := obs.SplitJobs(sink.Events)
	if len(jobs) != 1 {
		t.Fatalf("%s: %d jobs in stream", label, len(jobs))
	}
	cp, err := obs.ComputeCriticalPath(jobs[0])
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if cp.Length <= 0 || cp.Steps == 0 {
		t.Fatalf("%s: degenerate path %+v", label, cp)
	}
	if cp.Length > rep.Makespan {
		t.Errorf("%s: path %v exceeds makespan %v", label, cp.Length, rep.Makespan)
	}
	// Busiest rank: total recorded event time (busy work plus recv
	// waits) per rank is a single DAG chain, so the path must cover it.
	perRank := map[int]units.Duration{}
	for _, e := range jobs[0].Events {
		switch e.Kind {
		case simmpi.EvCompute, simmpi.EvSend, simmpi.EvRecv, simmpi.EvNoise:
			perRank[e.Rank] += e.Duration
		}
	}
	var busiest units.Duration
	for _, d := range perRank {
		if d > busiest {
			busiest = d
		}
	}
	if cp.Length < busiest {
		t.Errorf("%s: path %v undercuts busiest rank chain %v", label, cp.Length, busiest)
	}
	// The clock-level busy time is a lower bound too (it excludes
	// waits, which the chain includes).
	var maxBusy units.Duration
	for _, rr := range rep.Ranks {
		if rr.Busy > maxBusy {
			maxBusy = rr.Busy
		}
	}
	if cp.Length < maxBusy {
		t.Errorf("%s: path %v undercuts busiest rank busy time %v", label, cp.Length, maxBusy)
	}
	if cp.Fraction <= 0 || cp.Fraction > 1.0000001 {
		t.Errorf("%s: fraction %v out of (0,1]", label, cp.Fraction)
	}
	sum := units.Duration(0)
	for _, p := range cp.Phases {
		sum += p.Time
	}
	if sum != cp.Length {
		t.Errorf("%s: phase contributions %v don't sum to path %v", label, sum, cp.Length)
	}
	return cp
}

// TestCriticalPathHPCGMultiNode runs the annotated HPCG benchmark on a
// 2-node A64FX job and checks the path invariants (ISSUE acceptance:
// hpcg multi-node).
func TestCriticalPathHPCGMultiNode(t *testing.T) {
	t.Parallel()
	sink := &simmpi.MemorySink{}
	res, err := hpcg.Run(hpcg.Config{
		System: arch.MustGet(arch.A64FX),
		Nodes:  2,
		NX:     8, NY: 8, NZ: 8,
		Levels:          2,
		Iterations:      3,
		Instrumentation: simmpi.Instrumentation{Trace: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := checkPathInvariants(t, "hpcg", sink, res.Report)
	// Phase attribution must surface the solver-level annotations.
	foundRegion := false
	for _, p := range cp.Phases {
		if len(p.Label) > 0 && p.Label[0] != ':' &&
			(containsRegion(p.Label, "cg-iter") || containsRegion(p.Label, "vcycle")) {
			foundRegion = true
		}
	}
	if !foundRegion {
		t.Errorf("no region-labelled phases on the path: %+v", cp.Phases)
	}
}

func containsRegion(label, region string) bool {
	for i := 0; i+len(region) <= len(label); i++ {
		if label[i:i+len(region)] == region {
			return true
		}
	}
	return false
}

// TestCriticalPathNekboneMultiNode runs the annotated Nekbone benchmark
// (noise injection included) on a 4-node job and checks the invariants
// (ISSUE acceptance: nekbone multi-node).
func TestCriticalPathNekboneMultiNode(t *testing.T) {
	t.Parallel()
	sink := &simmpi.MemorySink{}
	res, err := nekbone.Run(nekbone.Config{
		System:          arch.MustGet(arch.A64FX),
		Nodes:           4,
		CoresPerNode:    4,
		ElementsPerRank: 4,
		Order:           4,
		Iterations:      10,
		Instrumentation: simmpi.Instrumentation{Trace: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkPathInvariants(t, "nekbone", sink, res.Report)
}

// TestCriticalPathSerialChain checks the exact path on a hand-built
// two-rank pipeline: rank 0 computes then sends; rank 1's recv waits on
// it. The path is rank 0's chain plus the post-overlap tail of the recv
// and rank 1's final compute.
func TestCriticalPathSynthetic(t *testing.T) {
	t.Parallel()
	sink, rep := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	cp, err := obs.ComputeCriticalPath(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if cp.Length > rep.Makespan {
		t.Errorf("path %v > makespan %v", cp.Length, rep.Makespan)
	}
	// The job is perfectly balanced, so the path should be nearly the
	// whole makespan (the send/recv overheads differ at the margins).
	if cp.Fraction < 0.5 {
		t.Errorf("balanced job path fraction %.3f suspiciously low", cp.Fraction)
	}
}
