// Package obs is the observability layer over the simmpi runtime: it
// consumes traced event timelines (via simmpi.TraceSink) and turns them
// into analyses the paper's methodology rests on — Chrome/Perfetto trace
// files, rank×rank communication matrices, per-kernel-class roofline
// utilization, and critical-path analysis over the send/recv
// happens-before DAG.
//
// The package is strictly an event consumer: it never touches the
// virtual clocks, so every analysis is observationally neutral to the
// simulation and byte-deterministic for a given job.
package obs

import (
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// JobTrace is the event log of one simulated job, extracted from a
// sink's stream. Events hold only rank-recorded entries (no job
// markers), merged in deterministic (Start, Rank) order with each rank's
// program order preserved.
type JobTrace struct {
	// Label is the job's name from its EvJobBegin marker.
	Label string
	// Makespan is the job runtime from its EvJobEnd marker (or the
	// latest event finish when the stream was truncated).
	Makespan units.Duration
	// Events is the merged per-rank event log.
	Events simmpi.Timeline
}

// NumRanks reports the number of ranks observed in the trace.
func (jt *JobTrace) NumRanks() int {
	n := 0
	for _, e := range jt.Events {
		if e.Rank >= n {
			n = e.Rank + 1
		}
	}
	return n
}

// NodeOf reconstructs the rank→node placement from the events (every
// event carries its recorder's node index).
func (jt *JobTrace) NodeOf() []int {
	nodes := make([]int, jt.NumRanks())
	for _, e := range jt.Events {
		if e.Rank >= 0 {
			nodes[e.Rank] = e.Node
		}
	}
	return nodes
}

// NumNodes reports the number of distinct nodes observed in the trace.
func (jt *JobTrace) NumNodes() int {
	n := 0
	for _, node := range jt.NodeOf() {
		if node >= n {
			n = node + 1
		}
	}
	return n
}

// SplitJobs partitions a sink's event stream into per-job traces using
// the EvJobBegin/EvJobEnd markers the runtime emits around each job.
// Events outside any marker pair (possible only with hand-built
// streams) open an implicit unlabelled job.
func SplitJobs(tl simmpi.Timeline) []JobTrace {
	var jobs []JobTrace
	var cur *JobTrace
	for _, e := range tl {
		switch e.Kind {
		case simmpi.EvJobBegin:
			jobs = append(jobs, JobTrace{Label: e.Name})
			cur = &jobs[len(jobs)-1]
		case simmpi.EvJobEnd:
			if cur != nil {
				cur.Makespan = e.Duration
				cur = nil
			}
		default:
			if cur == nil {
				jobs = append(jobs, JobTrace{})
				cur = &jobs[len(jobs)-1]
			}
			cur.Events = append(cur.Events, e)
		}
	}
	// Truncated stream (no EvJobEnd): derive the makespan from events.
	for i := range jobs {
		if jobs[i].Makespan == 0 {
			var last vclock.Time
			for _, e := range jobs[i].Events {
				if f := e.Finish(); f > last {
					last = f
				}
			}
			jobs[i].Makespan = units.Duration(last)
		}
	}
	return jobs
}
