package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// countedFourRankJob is fourRankJob with the virtual PMU on.
func countedFourRankJob(t *testing.T) (obs.JobTrace, simmpi.Report) {
	t.Helper()
	return countedFourRankJobModel(t, "")
}

// countedFourRankJobModel is countedFourRankJob under an explicit
// pricing model so the ECM attribution tests run the identical body.
func countedFourRankJobModel(t *testing.T, pm perfmodel.Model) (obs.JobTrace, simmpi.Report) {
	t.Helper()
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(2, 1)
	sink := &simmpi.MemorySink{}
	cfg := simmpi.JobConfig{
		Procs: 4, Nodes: 2, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(2),
		Sink:      sink,
		Counters:  &metrics.Config{Period: 50 * units.Microsecond},
		Model:     pm,
		Label:     "counted-4rank",
	}
	work := perfmodel.WorkProfile{
		Class: perfmodel.SpMV,
		Flops: 10 * units.MFlop,
		Bytes: 8 * units.MiB,
	}
	rep, err := simmpi.Run(cfg, func(r *simmpi.Rank) error {
		for it := 0; it < 2; it++ {
			r.Region("iter")
			r.Region("stream")
			r.Compute(work)
			r.EndRegion()
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			r.Send(right, 5, nil, 64*units.KiB)
			r.Recv(left, 5)
			r.AllreduceScalar(1, simmpi.OpSum)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := obs.SplitJobs(sink.Events)
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(jobs))
	}
	return jobs[0], rep
}

func TestCounterReportTotalsMatchRuntime(t *testing.T) {
	t.Parallel()
	jt, rep := countedFourRankJob(t)
	cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
	if cr == nil {
		t.Fatal("counted trace produced no counter report")
	}
	// Reconstructed totals must equal the runtime's own accounting: the
	// EvCounter events carry the exact per-rank finals.
	tot := rep.Counters.Totals()
	for id, want := range tot {
		name := metrics.ID(id).Def().Name
		if got := cr.Total(name); got != want {
			t.Errorf("%s: trace total %v, runtime %v", name, got, want)
		}
	}
	if cr.Ranks != 4 || cr.Nodes != 2 {
		t.Errorf("shape %d ranks / %d nodes, want 4/2", cr.Ranks, cr.Nodes)
	}
	if cr.Derived.GFlops <= 0 || cr.Derived.DRAMGBps <= 0 {
		t.Errorf("derived rates not positive: %+v", cr.Derived)
	}
	if cr.Derived.FlopUtil <= 0 || cr.Derived.FlopUtil > 1 {
		t.Errorf("flop utilization out of range: %v", cr.Derived.FlopUtil)
	}
}

// TestPhaseCountersSumToTotals is the attribution property: every
// compute/send/noise event lands in exactly one phase, so the per-phase
// columns must sum to the job totals.
func TestPhaseCountersSumToTotals(t *testing.T) {
	t.Parallel()
	jt, rep := countedFourRankJob(t)
	cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
	if cr == nil || len(cr.Phases) == 0 {
		t.Fatal("no phase attribution")
	}
	labels := map[string]bool{}
	var flops units.Flops
	var mem, sent units.Bytes
	var msgs int64
	var busyTime, wait units.Duration
	for _, p := range cr.Phases {
		if labels[p.Label] {
			t.Fatalf("duplicate phase label %q", p.Label)
		}
		labels[p.Label] = true
		flops += p.Flops
		mem += p.MemBytes
		msgs += p.Msgs
		sent += p.SentBytes
		busyTime += p.Time
		wait += p.Wait
	}
	if !labels["iter/stream"] || !labels["iter"] {
		t.Fatalf("expected region paths missing: %v", labels)
	}
	if flops != rep.TotalFlops {
		t.Errorf("phase flops %v, job %v", flops, rep.TotalFlops)
	}
	if msgs != rep.TotalMsgs || sent != rep.TotalBytesSent {
		t.Errorf("phase traffic %d/%v, job %d/%v", msgs, sent, rep.TotalMsgs, rep.TotalBytesSent)
	}
	tot := rep.Counters.Totals()
	if got, want := float64(mem), tot[metrics.MemDRAM]; got != want {
		t.Errorf("phase mem bytes %v, counter %v", got, want)
	}
	if got, want := float64(wait), tot[metrics.StallNet]; got != want {
		t.Errorf("phase wait %v, stall.net %v", got, want)
	}
	// Phase busy time covers the event-visible time counters (Elapse is
	// not an event, so time.other.ns is deliberately absent here). The
	// ECM terms extend the identity uniformly: a roofline job leaves
	// every ecm.* counter at zero.
	want := tot[metrics.TimeFlops] + tot[metrics.StallMem] + tot[metrics.StallCall] +
		tot[metrics.StallNoise] + tot[metrics.NetInject] +
		tot[metrics.ECML1] + tot[metrics.ECML2] + tot[metrics.ECMMem] - tot[metrics.ECMHidden]
	if got := float64(busyTime); got != want {
		t.Errorf("phase time %v, time counters %v", got, want)
	}
}

// TestPhaseCountersSumToTotalsECM re-runs the attribution property with
// the ECM pricing model: per-phase times must still cover the extended
// time-counter partition (core + per-level transfer phases − hidden),
// and the per-level phase counters must actually be populated.
func TestPhaseCountersSumToTotalsECM(t *testing.T) {
	t.Parallel()
	jt, rep := countedFourRankJobModel(t, perfmodel.ModelECM)
	cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt))
	if cr == nil || len(cr.Phases) == 0 {
		t.Fatal("no phase attribution")
	}
	var busyTime units.Duration
	for _, p := range cr.Phases {
		busyTime += p.Time
	}
	tot := rep.Counters.Totals()
	if tot[metrics.ECML1] <= 0 || tot[metrics.ECML2] <= 0 || tot[metrics.ECMMem] <= 0 {
		t.Fatalf("ECM job recorded no per-level phases: L1 %v, L2 %v, mem %v",
			tot[metrics.ECML1], tot[metrics.ECML2], tot[metrics.ECMMem])
	}
	want := tot[metrics.TimeFlops] + tot[metrics.StallMem] + tot[metrics.StallCall] +
		tot[metrics.StallNoise] + tot[metrics.NetInject] +
		tot[metrics.ECML1] + tot[metrics.ECML2] + tot[metrics.ECMMem] - tot[metrics.ECMHidden]
	if got := float64(busyTime); got != want {
		t.Errorf("phase time %v, extended time counters %v", got, want)
	}
}

// TestCounterReportNilWithoutPMU: an uncounted trace yields no report
// and an Analyze report without the section.
func TestCounterReportNilWithoutPMU(t *testing.T) {
	t.Parallel()
	sink, _ := fourRankJob(t)
	jt := obs.SplitJobs(sink.Events)[0]
	if cr := obs.BuildCounterReport(jt, obs.A64FXPeaks(jt)); cr != nil {
		t.Fatal("uncounted trace produced a counter report")
	}
	rep, err := obs.Analyze(jt, obs.A64FXPeaks(jt))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Counters != nil {
		t.Fatal("Analyze invented a counters section")
	}
	var b bytes.Buffer
	if err := rep.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "\"counters\"") {
		t.Fatal("nil counters section serialized")
	}
}

// TestCounterCSV checks the long-form series export: header, sparse
// change-only rows, and parseable values.
func TestCounterCSV(t *testing.T) {
	t.Parallel()
	jt, _ := countedFourRankJob(t)
	var b bytes.Buffer
	if err := obs.WriteCounterCSV(&b, []obs.JobTrace{jt}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "job,label,at_ns,counter,value" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Fatal("no series rows; the sampling period should produce samples for this job")
	}
}

// TestRooflineZeroDurationSafe pins the zero-guard: a class whose
// summed busy time is zero (quick-mode rounding) must yield zero rates
// — never Inf/NaN, which encoding/json rejects outright.
func TestRooflineZeroDurationSafe(t *testing.T) {
	t.Parallel()
	jt := obs.JobTrace{Label: "degenerate", Events: []simmpi.Event{
		{Kind: simmpi.EvCompute, Rank: 0, Class: perfmodel.DotProduct,
			Duration: 0, Flops: 1000, Bytes: 0, Peer: -1},
	}}
	points := obs.BuildRoofline(obs.Peaks{}, jt)
	if len(points) != 1 {
		t.Fatalf("got %d points", len(points))
	}
	p := points[0]
	if p.FlopRate != 0 || p.Bandwidth != 0 || p.Intensity != 0 {
		t.Fatalf("zero-duration point leaked non-zero rates: %+v", p)
	}
	if _, err := json.Marshal(points); err != nil {
		t.Fatalf("roofline point not JSON-encodable: %v", err)
	}
}
