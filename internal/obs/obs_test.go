package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// fourRankJob runs the reference 4-rank, 2-node traced job used across
// the tests: two annotated iterations of compute + ring exchange +
// allreduce on the A64FX model.
func fourRankJob(t *testing.T) (*simmpi.MemorySink, simmpi.Report) {
	t.Helper()
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(2, 1)
	sink := &simmpi.MemorySink{}
	cfg := simmpi.JobConfig{
		Procs: 4, Nodes: 2, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(2),
		Sink:      sink,
		Label:     "golden-4rank",
	}
	work := perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: 10 * units.MFlop,
		Bytes: 8 * units.MiB,
	}
	rep, err := simmpi.Run(cfg, func(r *simmpi.Rank) error {
		for it := 0; it < 2; it++ {
			r.Region("iter")
			r.Region("stream")
			r.Compute(work)
			r.EndRegion()
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			r.Send(right, 5, nil, 64*units.KiB)
			r.Recv(left, 5)
			r.AllreduceScalar(1, simmpi.OpSum)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sink, rep
}

func TestSplitJobs(t *testing.T) {
	t.Parallel()
	sink, rep := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	if len(jobs) != 1 {
		t.Fatalf("got %d jobs, want 1", len(jobs))
	}
	jt := jobs[0]
	if jt.Label != "golden-4rank" {
		t.Errorf("label %q", jt.Label)
	}
	if jt.Makespan != rep.Makespan {
		t.Errorf("makespan %v != report %v", jt.Makespan, rep.Makespan)
	}
	if jt.NumRanks() != 4 || jt.NumNodes() != 2 {
		t.Errorf("ranks=%d nodes=%d, want 4/2", jt.NumRanks(), jt.NumNodes())
	}
	for _, e := range jt.Events {
		if e.Kind == simmpi.EvJobBegin || e.Kind == simmpi.EvJobEnd {
			t.Fatal("job markers must not leak into JobTrace events")
		}
	}
	nodeOf := jt.NodeOf()
	want := []int{0, 0, 1, 1}
	for r, n := range nodeOf {
		if n != want[r] {
			t.Errorf("rank %d on node %d, want %d", r, n, want[r])
		}
	}
}

func TestTextSinkMatchesWriteTo(t *testing.T) {
	t.Parallel()
	sink, _ := fourRankJob(t)

	// Replaying the stream through a TextSink must reproduce the
	// classic Timeline.WriteTo rendering byte for byte.
	var direct bytes.Buffer
	if _, err := sink.Events.WriteTo(&direct); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	ts := obs.NewTextSink(&streamed)
	for _, e := range sink.Events {
		ts.Record(e)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if direct.String() != streamed.String() {
		t.Error("TextSink output differs from Timeline.WriteTo")
	}
	for _, needle := range []string{"compute", "send", "recv", "iter", "stream", "golden-4rank"} {
		if !strings.Contains(streamed.String(), needle) {
			t.Errorf("text output missing %q", needle)
		}
	}
}

func TestCommMatrix(t *testing.T) {
	t.Parallel()
	sink, rep := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	m := obs.BuildCommMatrix(jobs...)
	if m.N != 4 {
		t.Fatalf("matrix dim %d", m.N)
	}
	msgs, bytesTotal := m.Totals()
	if msgs != rep.TotalMsgs {
		t.Errorf("matrix msgs %d != report %d", msgs, rep.TotalMsgs)
	}
	if bytesTotal != rep.TotalBytesSent {
		t.Errorf("matrix bytes %v != report %v", bytesTotal, rep.TotalBytesSent)
	}
	// The ring: every rank sent to its right neighbour twice.
	for s := 0; s < 4; s++ {
		d := (s + 1) % 4
		if m.Msgs[s][d] < 2 {
			t.Errorf("ring edge %d→%d has %d msgs", s, d, m.Msgs[s][d])
		}
	}
	nv := m.NodeView()
	if nv.N != 2 {
		t.Fatalf("node view dim %d", nv.N)
	}
	nmsgs, nbytes := nv.Totals()
	if nmsgs != msgs || nbytes != bytesTotal {
		t.Error("node view must conserve totals")
	}
	var out bytes.Buffer
	if err := m.Render(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "communication matrix") {
		t.Errorf("render output:\n%s", out.String())
	}
}

func TestRoofline(t *testing.T) {
	t.Parallel()
	sink, rep := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	sys := arch.MustGet(arch.A64FX)
	peaks := obs.Peaks{
		FlopRate:  sys.Node.PeakFlops / units.FlopRate(2),
		Bandwidth: sys.Node.PeakBandwidth() / units.ByteRate(2),
	}
	points := obs.BuildRoofline(peaks, jobs...)
	if len(points) != 1 {
		t.Fatalf("got %d classes, want 1 (vecop): %+v", len(points), points)
	}
	p := points[0]
	if p.Class != perfmodel.VectorOp {
		t.Errorf("class %v", p.Class)
	}
	// 4 ranks × 2 iterations of the profile.
	if p.Flops != 8*10*units.MFlop {
		t.Errorf("flops %v", p.Flops)
	}
	if p.Flops != rep.TotalFlops {
		t.Errorf("roofline flops %v != report %v", p.Flops, rep.TotalFlops)
	}
	if p.Bound != "memory" {
		t.Errorf("a 0.15 flop/byte stream kernel must be memory bound, got %q (util %.3f)",
			p.Bound, p.Utilization)
	}
	if p.Utilization <= 0 || p.Utilization > 1.5 {
		t.Errorf("utilization %.3f out of range", p.Utilization)
	}
	var out bytes.Buffer
	if err := obs.RenderRoofline(&out, peaks, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "vecop") {
		t.Errorf("roofline render:\n%s", out.String())
	}
}

func TestAnalyzeReportJSON(t *testing.T) {
	t.Parallel()
	sink, _ := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	rep, err := obs.Analyze(jobs[0], obs.Peaks{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ranks != 4 || rep.Nodes != 2 || rep.CommByNode == nil {
		t.Errorf("report shape: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"critical_path", "roofline", "comm_by_node", "makespan_ns"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("JSON report missing %q", key)
		}
	}
	var text bytes.Buffer
	if err := rep.Render(&text, obs.Peaks{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "critical path") {
		t.Errorf("text report:\n%s", text.String())
	}
}
