package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/obs"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// congestedJob runs an 8-rank, 8-node congestion-enabled traced job with
// enough overlapping traffic to contend every injection port.
func congestedJob(t *testing.T) *simmpi.MemorySink {
	t.Helper()
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(8, 1)
	sink := &simmpi.MemorySink{}
	cfg := simmpi.JobConfig{
		Procs: 8, Nodes: 8, ThreadsPerRank: 1,
		RankModel:  func(int) *perfmodel.CostModel { return model },
		Fabric:     sys.NewFabric(8),
		Congestion: true,
		Sink:       sink,
		Label:      "congested-8rank",
	}
	_, err := simmpi.Run(cfg, func(r *simmpi.Rank) error {
		// Fan-in: every rank eagerly sends to rank 0, contending its
		// ejection link with 7 concurrent flows.
		buf := make([]float64, 1<<15)
		if r.ID() != 0 {
			r.SendFloats(0, 7, buf)
			return nil
		}
		for src := 1; src < r.Size(); src++ {
			r.RecvFloats(src, 7)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sink
}

func TestBuildLinkHeatmap(t *testing.T) {
	t.Parallel()
	sink := congestedJob(t)
	jobs := obs.SplitJobs(sink.Events)
	if len(jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(jobs))
	}
	hm := obs.BuildLinkHeatmap(jobs[0])
	if hm == nil || len(hm.Links) == 0 {
		t.Fatal("no link heatmap from congested trace")
	}
	if hm.MaxPeakFlows() < 2 {
		t.Errorf("peak concurrency %d, want ≥ 2", hm.MaxPeakFlows())
	}
	var withSeries int
	for _, l := range hm.Links {
		if l.Name == "" {
			t.Error("link with empty name")
		}
		if l.Util < 0 || l.Util > 1 {
			t.Errorf("link %s util %v out of [0,1]", l.Name, l.Util)
		}
		if len(l.Series) > 0 {
			withSeries++
			for b, v := range l.Series {
				if v < 0 || v > 1 {
					t.Errorf("link %s bucket %d util %v out of [0,1]", l.Name, b, v)
				}
			}
		}
	}
	if withSeries == 0 {
		t.Error("no link carries a utilization series")
	}
}

func TestLinkHeatmapAbsentWithoutCongestion(t *testing.T) {
	t.Parallel()
	sink, _ := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	if hm := obs.BuildLinkHeatmap(jobs[0]); hm != nil {
		t.Errorf("contention-free trace produced a heatmap: %+v", hm)
	}
}

func TestLinkHeatmapRender(t *testing.T) {
	t.Parallel()
	sink := congestedJob(t)
	jobs := obs.SplitJobs(sink.Events)
	hm := obs.BuildLinkHeatmap(jobs[0])
	var buf bytes.Buffer
	if err := hm.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "link heatmap") || !strings.Contains(out, "util") {
		t.Errorf("render missing expected fields:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != len(hm.Links)+1 {
		t.Errorf("render line count mismatch:\n%s", out)
	}
}

func TestAnalyzeCarriesLinks(t *testing.T) {
	t.Parallel()
	sink := congestedJob(t)
	jobs := obs.SplitJobs(sink.Events)
	rep, err := obs.Analyze(jobs[0], obs.Peaks{FlopRate: units.GFlopPerSec, Bandwidth: units.GBPerSec})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Links == nil {
		t.Fatal("Analyze dropped the link heatmap")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"links"`) {
		t.Error("report JSON missing links section")
	}
}

func TestChromeCounterTracks(t *testing.T) {
	t.Parallel()
	sink := congestedJob(t)
	jobs := obs.SplitJobs(sink.Events)
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ph":"C"`) {
		t.Error("chrome trace has no counter events for link utilization")
	}
	if !strings.Contains(out, `"util"`) {
		t.Error("chrome counter events carry no util arg")
	}
}
