package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"a64fxbench/internal/simmpi"
)

// chromeEvent is one entry of the Chrome trace-event JSON format
// (catapult "JSON Array Format", as loaded by Perfetto and
// chrome://tracing). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// micros converts virtual nanoseconds to trace microseconds.
func micros[T ~int64](d T) float64 { return float64(d) / 1e3 }

// WriteChrome renders the jobs as a Chrome trace-event JSON document:
// one process (pid) per job labelled with the job name, one thread (tid)
// track per rank, compute/send/recv/noise as complete ("X") slices, and
// Region annotations as nested "B"/"E" slices. Load the file at
// https://ui.perfetto.dev or chrome://tracing.
//
// Output is byte-deterministic for a given trace: events are emitted in
// the timeline's (Start, Rank) order and all maps have sorted keys.
func WriteChrome(w io.Writer, jobs []JobTrace) error {
	if _, err := io.WriteString(w, "{\"traceEvents\": [\n"); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		b, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		sep := ",\n"
		if first {
			sep = ""
			first = false
		}
		_, err = fmt.Fprintf(w, "%s%s", sep, b)
		return err
	}
	for pid, jt := range jobs {
		label := jt.Label
		if label == "" {
			label = fmt.Sprintf("job %d", pid)
		}
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": label},
		}); err != nil {
			return err
		}
		for rank := 0; rank < jt.NumRanks(); rank++ {
			if err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: rank,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
			}); err != nil {
				return err
			}
			if err := emit(chromeEvent{
				Name: "thread_sort_index", Ph: "M", Pid: pid, Tid: rank,
				Args: map[string]any{"sort_index": rank},
			}); err != nil {
				return err
			}
		}
		for _, e := range jt.Events {
			ce, ok := chromeEventFor(e, pid)
			if !ok {
				continue
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n], \"displayTimeUnit\": \"ms\"}\n")
	return err
}

// chromeEventFor maps one runtime event onto the trace-event format.
func chromeEventFor(e simmpi.Event, pid int) (chromeEvent, bool) {
	ce := chromeEvent{Ph: "X", Ts: micros(e.Start), Pid: pid, Tid: e.Rank}
	dur := micros(e.Duration)
	ce.Dur = &dur
	switch e.Kind {
	case simmpi.EvCompute:
		ce.Name = e.Class.String()
		ce.Cat = "compute"
		ce.Args = map[string]any{"flops": float64(e.Flops), "bytes": int64(e.Bytes)}
	case simmpi.EvSend:
		ce.Name = fmt.Sprintf("send → %d", e.Peer)
		ce.Cat = "comm"
		ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag, "bytes": int64(e.Bytes)}
	case simmpi.EvRecv:
		ce.Name = fmt.Sprintf("recv ← %d", e.Peer)
		ce.Cat = "comm"
		ce.Args = map[string]any{"peer": e.Peer, "tag": e.Tag, "bytes": int64(e.Bytes)}
	case simmpi.EvNoise:
		ce.Name = "os noise"
		ce.Cat = "noise"
	case simmpi.EvRegionBegin:
		return chromeEvent{
			Name: e.Name, Cat: "region", Ph: "B",
			Ts: micros(e.Start), Pid: pid, Tid: e.Rank,
		}, true
	case simmpi.EvRegionEnd:
		return chromeEvent{
			Name: e.Name, Cat: "region", Ph: "E",
			Ts: micros(e.Start), Pid: pid, Tid: e.Rank,
		}, true
	case simmpi.EvLinkSample:
		// Counter track per link: Perfetto renders these as a stacked
		// area chart of utilization over time.
		return chromeEvent{
			Name: "link " + e.Name, Cat: "link", Ph: "C",
			Ts: micros(e.Start), Pid: pid, Tid: 0,
			Args: map[string]any{"util": e.Value},
		}, true
	case simmpi.EvCounterSample:
		// One Perfetto counter track per virtual PMU counter, fed by
		// the job-aggregate series.
		return chromeEvent{
			Name: "ctr " + e.Name, Cat: "counter", Ph: "C",
			Ts: micros(e.Start), Pid: pid, Tid: 0,
			Args: map[string]any{"value": e.Value},
		}, true
	default:
		return chromeEvent{}, false
	}
	return ce, true
}
