package obs

import (
	"fmt"
	"io"
	"sort"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// Peaks carries the per-rank machine peaks a roofline is judged
// against: the flop rate and memory bandwidth one rank's share of the
// node can reach. A zero Peaks still yields achieved rates and
// arithmetic intensities, just no utilization/bound classification.
type Peaks struct {
	FlopRate  units.FlopRate
	Bandwidth units.ByteRate
}

// RooflinePoint is one kernel class's position on the roofline:
// aggregate work, achieved rates, and — when peaks are known — its
// utilization of the limiting resource.
type RooflinePoint struct {
	Class perfmodel.KernelClass `json:"class"`
	// Time sums the class's busy time across all ranks.
	Time units.Duration `json:"time_ns"`
	// Flops and Bytes total the metered work of the class.
	Flops units.Flops `json:"flops"`
	Bytes units.Bytes `json:"bytes"`
	// FlopRate and Bandwidth are the achieved per-rank rates
	// (work divided by summed busy time).
	FlopRate  units.FlopRate `json:"flop_rate"`
	Bandwidth units.ByteRate `json:"bandwidth"`
	// Intensity is flops per byte of memory traffic.
	Intensity float64 `json:"intensity"`
	// Bound is "flops" or "memory" — which roofline ceiling the class
	// sits under — or "" when no peaks were supplied.
	Bound string `json:"bound,omitempty"`
	// Utilization is the achieved fraction of the limiting ceiling
	// (0 when no peaks were supplied).
	Utilization float64 `json:"utilization"`
}

// BuildRoofline aggregates the jobs' compute events per kernel class
// and positions each class against the supplied peaks. Classes are
// returned ordered by descending time (ties by class id).
func BuildRoofline(peaks Peaks, jobs ...JobTrace) []RooflinePoint {
	byClass := map[perfmodel.KernelClass]*RooflinePoint{}
	for i := range jobs {
		for _, e := range jobs[i].Events {
			if e.Kind != simmpi.EvCompute {
				continue
			}
			p := byClass[e.Class]
			if p == nil {
				p = &RooflinePoint{Class: e.Class}
				byClass[e.Class] = p
			}
			p.Time += e.Duration
			p.Flops += e.Flops
			p.Bytes += e.Bytes
		}
	}
	points := make([]RooflinePoint, 0, len(byClass))
	for _, p := range byClass {
		// Quick-mode runs can legitimately produce zero-duration phases
		// (rounding of tiny modelled times); every derived rate must
		// come out 0 then — never +Inf/NaN, which would also be invalid
		// JSON.
		p.FlopRate = units.FlopRate(safeRate(float64(p.Flops), p.Time))
		p.Bandwidth = units.ByteRate(safeRate(float64(p.Bytes), p.Time))
		p.Intensity = safeDiv(float64(p.Flops), float64(p.Bytes))
		if peaks.FlopRate > 0 && peaks.Bandwidth > 0 {
			fu := float64(p.FlopRate) / float64(peaks.FlopRate)
			bu := float64(p.Bandwidth) / float64(peaks.Bandwidth)
			if fu >= bu {
				p.Bound, p.Utilization = "flops", fu
			} else {
				p.Bound, p.Utilization = "memory", bu
			}
		}
		points = append(points, *p)
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].Time != points[j].Time {
			return points[i].Time > points[j].Time
		}
		return points[i].Class < points[j].Class
	})
	return points
}

// safeRate is amount/duration in units per second, 0 for zero-duration
// (units.Rate already guards; the named helper is the package-wide
// contract that derived rates never go Inf/NaN).
func safeRate(amount float64, d units.Duration) float64 {
	return units.Rate(amount, d)
}

// safeDiv is a/b with 0 for a non-positive denominator.
func safeDiv(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}

// RenderRoofline writes the per-class roofline table.
func RenderRoofline(w io.Writer, peaks Peaks, points []RooflinePoint) error {
	if _, err := fmt.Fprintf(w, "roofline (per-rank peaks: %.1f GFLOP/s, %.1f GB/s)\n",
		peaks.FlopRate.GFLOPs(), float64(peaks.Bandwidth)/1e9); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %12s %12s %12s %10s %8s %s\n",
		"class", "time", "GFLOP/s", "GB/s", "flops/byte", "util", "bound"); err != nil {
		return err
	}
	for _, p := range points {
		bound := p.Bound
		if bound == "" {
			bound = "-"
		}
		if _, err := fmt.Fprintf(w, "  %-10s %12v %12.2f %12.2f %10.3f %7.1f%% %s\n",
			p.Class, p.Time, p.FlopRate.GFLOPs(), float64(p.Bandwidth)/1e9,
			p.Intensity, 100*p.Utilization, bound); err != nil {
			return err
		}
	}
	return nil
}
