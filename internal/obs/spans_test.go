package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/telemetry"
)

func spanFixture() *telemetry.SpanNode {
	tr := telemetry.NewTrace("req-1", "request /v1/run")
	root := tr.Root()
	dec := root.Child("decode")
	dec.End()
	wait := root.Child("singleflight-wait")
	exec := wait.Child("engine-execute")
	art := exec.Child("artifact:table3")
	art.Record("virtual-makespan", telemetry.ClockVirtual, 0, 5_000_000_000)
	art.End()
	exec.End()
	wait.End()
	tr.Finish()
	return tr.Tree()
}

func TestSpanJobRegionPairs(t *testing.T) {
	t.Parallel()
	jt := SpanJob("req-1 /v1/run", spanFixture())
	if jt.Label != "req-1 /v1/run" {
		t.Fatalf("label = %q", jt.Label)
	}
	// Every wall span contributes one begin and one end, properly
	// nested; the virtual span is excluded.
	depth := 0
	opens := map[string]int{}
	for _, e := range jt.Events {
		switch e.Kind {
		case simmpi.EvRegionBegin:
			depth++
			opens[e.Name]++
		case simmpi.EvRegionEnd:
			depth--
			if depth < 0 {
				t.Fatal("region end without matching begin")
			}
		default:
			t.Fatalf("unexpected event kind %v", e.Kind)
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced regions: depth %d at stream end", depth)
	}
	for _, name := range []string{"request /v1/run", "decode", "singleflight-wait", "engine-execute", "artifact:table3"} {
		if opens[name] != 1 {
			t.Errorf("span %q opened %d times, want 1", name, opens[name])
		}
	}
	if opens["virtual-makespan"] != 0 {
		t.Error("virtual span leaked into the wall timeline")
	}
	if jt.NumRanks() != 1 {
		t.Fatalf("NumRanks = %d, want 1", jt.NumRanks())
	}
}

func TestSpanJobNil(t *testing.T) {
	t.Parallel()
	jt := SpanJob("empty", nil)
	if len(jt.Events) != 0 || jt.Makespan != 0 {
		t.Fatalf("nil root produced %d events", len(jt.Events))
	}
}

func TestWriteSpanChrome(t *testing.T) {
	t.Parallel()
	entries := []*telemetry.Entry{
		{RequestID: "req-1", Op: "/v1/run", Status: 200, DurationMS: 3.5, Spans: spanFixture()},
		nil,                  // skipped
		{RequestID: "req-2"}, // no spans: skipped
	}
	var buf bytes.Buffer
	if err := WriteSpanChrome(&buf, entries); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	pids := map[float64]bool{}
	var sawDecode bool
	for _, ev := range doc.TraceEvents {
		pids[ev["pid"].(float64)] = true
		if ev["name"] == "decode" {
			sawDecode = true
		}
	}
	if len(pids) != 1 {
		t.Fatalf("expected 1 process, got %d", len(pids))
	}
	if !sawDecode {
		t.Fatal("decode span missing from chrome export")
	}
}
