package obs

import (
	"fmt"
	"io"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// LinkLine is the contention accounting of one interconnect link,
// reconstructed from a job's EvLink/EvLinkSample events.
type LinkLine struct {
	// Name is the link's rendered identity, e.g. "dim0 3→4" or
	// "inj 5→gw2".
	Name string `json:"name"`
	// Bytes is the traffic the link carried; Busy the virtual time it
	// had at least one active flow.
	Bytes units.Bytes    `json:"bytes"`
	Busy  units.Duration `json:"busy_ns"`
	// Flows and PeakFlows count total and peak-concurrent flows.
	Flows     int64 `json:"flows"`
	PeakFlows int   `json:"peak_flows"`
	// Util is the mean utilization while busy, in [0, 1].
	Util float64 `json:"util"`
	// Series is the bucketed utilization over the contention window
	// (only the busiest links carry one).
	Series []float64 `json:"series,omitempty"`
}

// LinkHeatmap is the per-link contention view of one congestion-enabled
// job, busiest link first (the emitter's order is preserved).
type LinkHeatmap struct {
	Links []LinkLine `json:"links"`
}

// BuildLinkHeatmap reconstructs the heatmap from a job's link events.
// It returns nil when the trace carries none (contention-free runs).
func BuildLinkHeatmap(jt JobTrace) *LinkHeatmap {
	var hm LinkHeatmap
	idx := map[string]int{}
	start := map[string]int64{}
	for _, e := range jt.Events {
		switch e.Kind {
		case simmpi.EvLink:
			idx[e.Name] = len(hm.Links)
			start[e.Name] = int64(e.Start)
			hm.Links = append(hm.Links, LinkLine{
				Name: e.Name, Bytes: e.Bytes, Busy: e.Duration,
				Flows: e.Flows, PeakFlows: e.PeakFlows, Util: e.Value,
			})
		case simmpi.EvLinkSample:
			i, ok := idx[e.Name]
			if !ok || e.Duration <= 0 {
				continue
			}
			// Samples are one bucket wide; place by offset from the
			// link's contention-window start so zero buckets the
			// emitter skipped stay zero.
			l := &hm.Links[i]
			b := int((int64(e.Start) - start[e.Name]) / int64(e.Duration))
			if b < 0 {
				continue
			}
			for len(l.Series) <= b {
				l.Series = append(l.Series, 0)
			}
			l.Series[b] = e.Value
		}
	}
	if len(hm.Links) == 0 {
		return nil
	}
	return &hm
}

// MaxPeakFlows reports the largest peak-concurrency on any link.
func (hm *LinkHeatmap) MaxPeakFlows() int {
	worst := 0
	for _, l := range hm.Links {
		if l.PeakFlows > worst {
			worst = l.PeakFlows
		}
	}
	return worst
}

// sparkRunes grade utilization for the text heatmap.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders a utilization series as unicode block bars.
func sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	out := make([]rune, len(series))
	for i, v := range series {
		if v <= 0 {
			out[i] = '·'
			continue
		}
		g := int(v * float64(len(sparkRunes)))
		if g >= len(sparkRunes) {
			g = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[g]
	}
	return string(out)
}

// Render writes the human-readable heatmap: one line per link, busiest
// first, with a utilization sparkline for the links that carry a series.
func (hm *LinkHeatmap) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "link heatmap (%d contended links, peak concurrency %d):\n",
		len(hm.Links), hm.MaxPeakFlows()); err != nil {
		return err
	}
	for _, l := range hm.Links {
		if _, err := fmt.Fprintf(w, "  %-22s busy %-12v util %3.0f%%  flows %-6d peak %-4d %-10v %s\n",
			l.Name, l.Busy, 100*l.Util, l.Flows, l.PeakFlows, l.Bytes,
			sparkline(l.Series)); err != nil {
			return err
		}
	}
	return nil
}
