package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// CounterTotal is one virtual PMU counter summed across ranks.
type CounterTotal struct {
	Name  string       `json:"name"`
	Unit  string       `json:"unit"`
	Kind  metrics.Kind `json:"kind"`
	Value float64      `json:"value"`
}

// PhaseCounters attributes counter deltas to one region phase: every
// rank-recorded event is charged to the innermost region path open on
// its rank when it completed ("(top)" outside all regions).
type PhaseCounters struct {
	// Label is the region path, e.g. "cg-iter/mg-level-0".
	Label string `json:"label"`
	// Time sums the phase's busy-side event durations across ranks:
	// compute (flop + memory-stall + call overhead), injected noise,
	// and send-injection overhead.
	Time units.Duration `json:"time_ns"`
	// Wait sums receive-side blocked time.
	Wait units.Duration `json:"wait_ns"`
	// Flops and MemBytes total the metered compute work.
	Flops    units.Flops `json:"flops"`
	MemBytes units.Bytes `json:"mem_bytes"`
	// Msgs and SentBytes total the phase's point-to-point sends.
	Msgs      int64       `json:"msgs"`
	SentBytes units.Bytes `json:"sent_bytes"`
	// Events counts attributed events.
	Events int `json:"events"`
}

// DerivedRates are the job-level throughputs the paper's tables speak
// in, computed from counter totals over the makespan. All rates are 0
// (never Inf/NaN) for zero-duration jobs.
type DerivedRates struct {
	// GFlops is the achieved aggregate flop rate.
	GFlops float64 `json:"gflops"`
	// DRAMGBps is the achieved aggregate main-memory bandwidth.
	DRAMGBps float64 `json:"dram_gbps"`
	// NetGBps is the injected point-to-point wire bandwidth.
	NetGBps float64 `json:"net_gbps"`
	// FlopUtil and MemUtil are achieved-vs-peak fractions against the
	// supplied job-wide peaks (0 when peaks are unknown).
	FlopUtil float64 `json:"flop_util"`
	MemUtil  float64 `json:"mem_util"`
	// BytesPerFlop is the job's aggregate memory intensity.
	BytesPerFlop float64 `json:"bytes_per_flop"`
}

// CounterReport aggregates a counted job's PMU stream: totals, derived
// rates, and per-phase attribution.
type CounterReport struct {
	Label    string         `json:"label"`
	Ranks    int            `json:"ranks"`
	Nodes    int            `json:"nodes"`
	Makespan units.Duration `json:"makespan_ns"`
	// Totals lists every nonzero counter in registry order.
	Totals []CounterTotal `json:"totals"`
	// Derived holds the rates computed from the totals.
	Derived DerivedRates `json:"derived"`
	// Phases attributes counter deltas per region path, largest Time
	// first.
	Phases []PhaseCounters `json:"phases,omitempty"`
}

// Total returns one counter's job total (0 when absent).
func (cr *CounterReport) Total(name string) float64 {
	for _, t := range cr.Totals {
		if t.Name == name {
			return t.Value
		}
	}
	return 0
}

// BuildCounterReport aggregates one job's counter events. It returns
// nil when the trace carries no EvCounter events — the job was run
// without the virtual PMU.
func BuildCounterReport(jt JobTrace, peaks Peaks) *CounterReport {
	defs := metrics.Counters()
	totals := make([]float64, len(defs))
	counted := false
	for _, e := range jt.Events {
		if e.Kind != simmpi.EvCounter {
			continue
		}
		counted = true
		if id, ok := metrics.Lookup(e.Name); ok {
			totals[id] += e.Value
		}
	}
	if !counted {
		return nil
	}
	cr := &CounterReport{
		Label:    jt.Label,
		Ranks:    jt.NumRanks(),
		Nodes:    jt.NumNodes(),
		Makespan: jt.Makespan,
		Phases:   buildPhaseCounters(jt),
	}
	for id, v := range totals {
		if v == 0 {
			continue
		}
		d := defs[id]
		cr.Totals = append(cr.Totals, CounterTotal{Name: d.Name, Unit: d.Unit, Kind: d.Kind, Value: v})
	}

	var flops float64
	for c := range defs {
		if strings.HasPrefix(defs[c].Name, "flops.") {
			flops += totals[c]
		}
	}
	dram := totals[metrics.MemDRAM]
	sent := totals[metrics.SentBytes]
	cr.Derived = DerivedRates{
		GFlops:       safeRate(flops, cr.Makespan) / 1e9,
		DRAMGBps:     safeRate(dram, cr.Makespan) / 1e9,
		NetGBps:      safeRate(sent, cr.Makespan) / 1e9,
		FlopUtil:     safeDiv(safeRate(flops, cr.Makespan), float64(peaks.FlopRate)*float64(cr.Ranks)),
		MemUtil:      safeDiv(safeRate(dram, cr.Makespan), float64(peaks.Bandwidth)*float64(cr.Ranks)),
		BytesPerFlop: safeDiv(dram, flops),
	}
	return cr
}

// buildPhaseCounters walks each rank's region stack over the merged
// timeline (each rank's program order is preserved in it) and charges
// every event to the innermost open region path of its rank.
func buildPhaseCounters(jt JobTrace) []PhaseCounters {
	byPhase := map[string]*PhaseCounters{}
	regions := map[int][]string{}
	get := func(rank int) *PhaseCounters {
		label := "(top)"
		if s := regions[rank]; len(s) > 0 {
			label = strings.Join(s, "/")
		}
		pc := byPhase[label]
		if pc == nil {
			pc = &PhaseCounters{Label: label}
			byPhase[label] = pc
		}
		return pc
	}
	for _, e := range jt.Events {
		switch e.Kind {
		case simmpi.EvRegionBegin:
			regions[e.Rank] = append(regions[e.Rank], e.Name)
		case simmpi.EvRegionEnd:
			if s := regions[e.Rank]; len(s) > 0 {
				regions[e.Rank] = s[:len(s)-1]
			}
		case simmpi.EvCompute:
			pc := get(e.Rank)
			pc.Time += e.Duration
			pc.Flops += e.Flops
			pc.MemBytes += e.Bytes
			pc.Events++
		case simmpi.EvNoise:
			pc := get(e.Rank)
			pc.Time += e.Duration
			pc.Events++
		case simmpi.EvSend:
			pc := get(e.Rank)
			pc.Time += e.Duration
			pc.Msgs++
			pc.SentBytes += e.Bytes
			pc.Events++
		case simmpi.EvRecv:
			pc := get(e.Rank)
			pc.Wait += e.Duration
			pc.Events++
		}
	}
	phases := make([]PhaseCounters, 0, len(byPhase))
	for _, pc := range byPhase {
		phases = append(phases, *pc)
	}
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].Time != phases[j].Time {
			return phases[i].Time > phases[j].Time
		}
		return phases[i].Label < phases[j].Label
	})
	return phases
}

// A64FXPeaks derives per-rank roofline peaks from the A64FX node model
// and the job's observed rank placement. Experiments may run other
// systems too; the A64FX — the paper's subject — is the fixed yardstick.
func A64FXPeaks(jt JobTrace) Peaks {
	sys := arch.MustGet(arch.A64FX)
	rpn := 1
	if n := jt.NumNodes(); n > 0 {
		if r := (jt.NumRanks() + n - 1) / n; r > 0 {
			rpn = r
		}
	}
	return Peaks{
		FlopRate:  sys.Node.PeakFlops / units.FlopRate(rpn),
		Bandwidth: sys.Node.PeakBandwidth() / units.ByteRate(rpn),
	}
}

// AppendCounterEntries flattens one job's counter report into snapshot
// entries under the given key prefix: the makespan, every nonzero
// counter total under "ctr/", the derived rates under "rate/", and
// each region phase's attributed time and work under "phase/". The
// phase entries give the regression sentinel per-phase resolution and
// are what the roofline-vs-ECM model-delta table compares (ModelDelta).
func AppendCounterEntries(snap *metrics.Snapshot, prefix string, cr *CounterReport) {
	snap.Add(prefix+"/makespan.ns", float64(cr.Makespan), metrics.Time, "ns")
	for _, t := range cr.Totals {
		snap.Add(prefix+"/ctr/"+t.Name, t.Value, t.Kind, t.Unit)
	}
	snap.Add(prefix+"/rate/gflops", cr.Derived.GFlops, metrics.Rate, "gflop/s")
	snap.Add(prefix+"/rate/dram.gbps", cr.Derived.DRAMGBps, metrics.Rate, "gb/s")
	snap.Add(prefix+"/rate/net.gbps", cr.Derived.NetGBps, metrics.Rate, "gb/s")
	snap.Add(prefix+"/rate/flop.util", cr.Derived.FlopUtil, metrics.Rate, "fraction")
	snap.Add(prefix+"/rate/mem.util", cr.Derived.MemUtil, metrics.Rate, "fraction")
	for _, p := range cr.Phases {
		pp := prefix + "/phase/" + p.Label
		snap.Add(pp+"/time.ns", float64(p.Time), metrics.Time, "ns")
		snap.Add(pp+"/wait.ns", float64(p.Wait), metrics.Time, "ns")
		snap.Add(pp+"/flops", float64(p.Flops), metrics.Work, "flops")
		snap.Add(pp+"/mem.bytes", float64(p.MemBytes), metrics.Work, "bytes")
	}
}

// WriteCounterCSV exports the jobs' aggregate counter series in long
// form: one row per (job, sample time, changed counter), cumulative
// values. The stream is sparse — a counter appears at a sample exactly
// when its value changed — so consumers should carry values forward.
func WriteCounterCSV(w io.Writer, jobs []JobTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "label", "at_ns", "counter", "value"}); err != nil {
		return err
	}
	for ji, jt := range jobs {
		for _, e := range jt.Events {
			if e.Kind != simmpi.EvCounterSample {
				continue
			}
			if err := cw.Write([]string{
				strconv.Itoa(ji),
				jt.Label,
				strconv.FormatInt(int64(e.Start), 10),
				e.Name,
				strconv.FormatFloat(e.Value, 'g', -1, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the human-readable counter report.
func (cr *CounterReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== %s: %d ranks on %d nodes, makespan %v ===\n",
		cr.Label, cr.Ranks, cr.Nodes, cr.Makespan); err != nil {
		return err
	}
	d := cr.Derived
	if _, err := fmt.Fprintf(w, "derived: %.2f GFLOP/s, %.2f GB/s DRAM (%.3f B/flop), %.2f GB/s net, util flops %.1f%% mem %.1f%%\n",
		d.GFlops, d.DRAMGBps, d.BytesPerFlop, d.NetGBps, 100*d.FlopUtil, 100*d.MemUtil); err != nil {
		return err
	}
	for _, t := range cr.Totals {
		if _, err := fmt.Fprintf(w, "  %-24s %18.6g %s\n", t.Name, t.Value, t.Unit); err != nil {
			return err
		}
	}
	if len(cr.Phases) > 0 {
		if _, err := fmt.Fprintf(w, "  %-28s %12s %12s %14s %12s %8s\n",
			"phase", "time", "wait", "flops", "mem", "msgs"); err != nil {
			return err
		}
		top := cr.Phases
		if len(top) > 16 {
			top = top[:16]
		}
		for _, p := range top {
			if _, err := fmt.Fprintf(w, "  %-28s %12v %12v %14v %12v %8d\n",
				p.Label, p.Time, p.Wait, p.Flops, p.MemBytes, p.Msgs); err != nil {
				return err
			}
		}
	}
	return nil
}
