package obs

import (
	"io"

	"a64fxbench/internal/simmpi"
)

// TextSink streams events as flat text lines — one per event, in the
// classic timeline format — as the runtime records them. It implements
// simmpi.TraceSink.
type TextSink struct {
	w   io.Writer
	err error
}

// NewTextSink returns a sink writing the flat text timeline to w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Record writes one event line; the first write error sticks and
// surfaces from Close.
func (s *TextSink) Record(e simmpi.Event) {
	if s.err != nil {
		return
	}
	_, s.err = simmpi.WriteEvent(s.w, e)
}

// Close reports the first write error, if any.
func (s *TextSink) Close() error { return s.err }
