package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"a64fxbench/internal/metrics"
	"a64fxbench/internal/units"
)

// ModelDeltaRow is one predicted time compared across two pricing
// models: a job makespan or one region phase's attributed busy time.
type ModelDeltaRow struct {
	// Key is the snapshot key minus its "/time.ns" (phase) or ".ns"
	// (makespan) suffix, e.g. "table3/000 hpcg p=4/phase/cg-iter".
	Key string `json:"key"`
	// Old and New are the predicted nanoseconds under each model.
	Old float64 `json:"old_ns"`
	New float64 `json:"new_ns"`
	// Delta is the relative change (new-old)/old; +Inf when old is 0.
	Delta float64 `json:"delta"`
}

// ModelDeltaReport tabulates how two compute-phase pricing models
// disagree, per job and per region phase. It is a report, not a gate:
// two models predicting different times is the point of having two
// models, so nothing here fails a diff.
type ModelDeltaReport struct {
	// OldModel and NewModel name the models (snapshot Meta["model"]).
	OldModel string `json:"old_model"`
	NewModel string `json:"new_model"`
	// Compared counts time keys present in both snapshots; Rows lists
	// them in key order.
	Compared int             `json:"compared"`
	Rows     []ModelDeltaRow `json:"rows"`
}

// ModelDelta compares the predicted times of two counter snapshots
// produced under different pricing models (e.g. roofline vs ECM). It
// pairs every makespan and per-phase time key present in both
// snapshots; work counters are skipped — both models price the same
// metered work, only its time differs.
func ModelDelta(old, new *metrics.Snapshot) *ModelDeltaReport {
	rep := &ModelDeltaReport{
		OldModel: old.Meta["model"],
		NewModel: new.Meta["model"],
	}
	oldBy := map[string]float64{}
	for _, e := range old.Entries {
		if k, ok := deltaKey(e.Key); ok {
			oldBy[k] = e.Value
		}
	}
	for _, e := range new.Entries {
		k, ok := deltaKey(e.Key)
		if !ok {
			continue
		}
		o, both := oldBy[k]
		if !both {
			continue
		}
		rep.Compared++
		row := ModelDeltaRow{Key: k, Old: o, New: e.Value}
		if o != 0 {
			row.Delta = (e.Value - o) / o
		} else if e.Value != 0 {
			row.Delta = math.Inf(1)
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Key < rep.Rows[j].Key })
	return rep
}

// deltaKey reduces a snapshot key to its model-delta identity: job
// makespans keep their prefix, phase busy times keep "<job>/phase/<p>".
// Every other key (counter totals, rates, waits, work) is skipped.
func deltaKey(key string) (string, bool) {
	if strings.HasSuffix(key, "/makespan.ns") {
		return strings.TrimSuffix(key, ".ns"), true
	}
	if i := strings.Index(key, "/phase/"); i >= 0 && strings.HasSuffix(key, "/time.ns") {
		return strings.TrimSuffix(key, "/time.ns"), true
	}
	return "", false
}

// Render writes the aligned model-delta table.
func (r *ModelDeltaReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "model delta: %s → %s (%d predicted times compared)\n",
		r.OldModel, r.NewModel, r.Compared); err != nil {
		return err
	}
	width := len("key")
	for _, row := range r.Rows {
		if len(row.Key) > width {
			width = len(row.Key)
		}
	}
	if _, err := fmt.Fprintf(w, "  %-*s  %14s  %14s  %9s\n",
		width, "key", r.OldModel, r.NewModel, "delta"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "  %-*s  %14v  %14v  %+8.1f%%\n",
			width, row.Key, units.Duration(row.Old), units.Duration(row.New),
			100*row.Delta); err != nil {
			return err
		}
	}
	return nil
}
