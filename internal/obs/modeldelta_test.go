package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"a64fxbench/internal/metrics"
	"a64fxbench/internal/obs"
)

// TestModelDelta builds two tiny snapshots by hand and checks the
// pairing rules: makespans and phase times compare, rates and work
// counters are ignored, keys missing on either side are skipped.
func TestModelDelta(t *testing.T) {
	t.Parallel()
	old := metrics.NewSnapshot(map[string]string{"model": "roofline"})
	old.Add("t3/000 job/makespan.ns", 100, metrics.Time, "ns")
	old.Add("t3/000 job/phase/iter/time.ns", 80, metrics.Time, "ns")
	old.Add("t3/000 job/phase/iter/flops", 5, metrics.Work, "flops")
	old.Add("t3/000 job/rate/gflops", 2, metrics.Rate, "gflop/s")
	old.Add("t3/000 job/phase/only-old/time.ns", 7, metrics.Time, "ns")

	new := metrics.NewSnapshot(map[string]string{"model": "ecm"})
	new.Add("t3/000 job/makespan.ns", 150, metrics.Time, "ns")
	new.Add("t3/000 job/phase/iter/time.ns", 40, metrics.Time, "ns")
	new.Add("t3/000 job/phase/iter/flops", 5, metrics.Work, "flops")
	new.Add("t3/000 job/rate/gflops", 3, metrics.Rate, "gflop/s")
	new.Add("t3/000 job/phase/only-new/time.ns", 9, metrics.Time, "ns")

	rep := obs.ModelDelta(old, new)
	if rep.OldModel != "roofline" || rep.NewModel != "ecm" {
		t.Fatalf("models %q → %q", rep.OldModel, rep.NewModel)
	}
	if rep.Compared != 2 || len(rep.Rows) != 2 {
		t.Fatalf("compared %d rows %d, want 2/2", rep.Compared, len(rep.Rows))
	}
	mk := rep.Rows[0]
	if mk.Key != "t3/000 job/makespan" || mk.Old != 100 || mk.New != 150 || mk.Delta != 0.5 {
		t.Errorf("makespan row %+v", mk)
	}
	ph := rep.Rows[1]
	if ph.Key != "t3/000 job/phase/iter" || ph.Delta != -0.5 {
		t.Errorf("phase row %+v", ph)
	}
	var b bytes.Buffer
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"roofline → ecm", "phase/iter", "+50.0%", "-50.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "only-old") || strings.Contains(out, "only-new") || strings.Contains(out, "gflops") {
		t.Errorf("render includes unpaired or non-time keys:\n%s", out)
	}
}
