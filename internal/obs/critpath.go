package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// PhaseContrib attributes a slice of the critical path to one phase —
// a region (with its kind/class suffix) or, outside any region, the
// bare kind/class.
type PhaseContrib struct {
	// Label is "region-path:kind" (e.g. "cg-iter/halo:recv") or the
	// bare kind/class for unannotated events.
	Label string `json:"label"`
	// Time is the path time attributed to the phase and Fraction its
	// share of the whole path.
	Time     units.Duration `json:"time_ns"`
	Fraction float64        `json:"fraction"`
	// Steps counts path events attributed to the phase.
	Steps int `json:"steps"`
}

// CriticalPath is the longest dependency chain through a job's
// happens-before DAG: events ordered by rank program order plus
// send→recv message edges. Its length bounds how fast the job could
// ever finish; the gap to the makespan is pure scheduling slack.
type CriticalPath struct {
	// Length is the path's elapsed virtual time and Makespan the job's;
	// Fraction is Length/Makespan.
	Length   units.Duration `json:"length_ns"`
	Makespan units.Duration `json:"makespan_ns"`
	Fraction float64        `json:"fraction"`
	// Steps counts events on the path.
	Steps int `json:"steps"`
	// Phases attributes the path time, largest first.
	Phases []PhaseContrib `json:"phases"`
}

// cpNode is one DAG node of the critical-path computation.
type cpNode struct {
	start  vclock.Time
	finish vclock.Time
	// prev is the same-rank predecessor node index, -1 for the first.
	prev int
	// sender is the matching send's node index for recv nodes, -1
	// otherwise.
	sender int
	label  string
}

// routeKey identifies one FIFO message route.
type routeKey struct {
	src, dst, tag int
}

// ComputeCriticalPath runs the longest-path dynamic program over the
// job's happens-before DAG. Overlap is handled exactly: a successor
// only accrues the time past its predecessor's finish, so the path
// length never exceeds the makespan, and — because each rank's events
// chain — never undercuts the busiest rank's recorded time.
func ComputeCriticalPath(jt JobTrace) (*CriticalPath, error) {
	nodes, err := buildDAG(jt)
	if err != nil {
		return nil, err
	}
	cp := &CriticalPath{Makespan: jt.Makespan}
	if len(nodes) == 0 {
		return cp, nil
	}

	// Longest path to each node's finish. L(e) = max over predecessors
	// p of L(p) + (finish_e − max(start_e, finish_p)), with the virtual
	// source (L=0, finish=0) always a predecessor. Recursion is
	// memoized with an explicit stack: the merged timeline's order is
	// NOT topological (a recv can start before its matching send), so
	// a simple left-to-right sweep would read uncomputed states.
	longest := make([]units.Duration, len(nodes))
	via := make([]int, len(nodes)) // chosen predecessor, -1 = source
	done := make([]bool, len(nodes))
	var stack []int
	compute := func(root int) {
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			if done[i] {
				stack = stack[:len(stack)-1]
				continue
			}
			n := &nodes[i]
			ready := true
			for _, p := range [2]int{n.prev, n.sender} {
				if p >= 0 && !done[p] {
					stack = append(stack, p)
					ready = false
				}
			}
			if !ready {
				continue
			}
			stack = stack[:len(stack)-1]
			best := units.Duration(n.finish - n.start)
			bestVia := -1
			for _, p := range [2]int{n.prev, n.sender} {
				if p < 0 {
					continue
				}
				gate := nodes[p].finish
				if n.start > gate {
					gate = n.start
				}
				if l := longest[p] + units.Duration(n.finish-gate); l > best {
					best, bestVia = l, p
				}
			}
			longest[i], via[i] = best, bestVia
			done[i] = true
		}
	}

	end := 0
	for i := range nodes {
		compute(i)
		if longest[i] > longest[end] {
			end = i
		}
	}
	cp.Length = longest[end]
	if cp.Makespan > 0 {
		cp.Fraction = cp.Length.Seconds() / cp.Makespan.Seconds()
	}

	// Walk the path backwards, attributing each step's contribution.
	byPhase := map[string]*PhaseContrib{}
	for i := end; i >= 0; {
		n := &nodes[i]
		contrib := longest[i]
		if p := via[i]; p >= 0 {
			contrib -= longest[p]
		}
		pc := byPhase[n.label]
		if pc == nil {
			pc = &PhaseContrib{Label: n.label}
			byPhase[n.label] = pc
		}
		pc.Time += contrib
		pc.Steps++
		cp.Steps++
		i = via[i]
	}
	for _, pc := range byPhase {
		if cp.Length > 0 {
			pc.Fraction = pc.Time.Seconds() / cp.Length.Seconds()
		}
		cp.Phases = append(cp.Phases, *pc)
	}
	sort.Slice(cp.Phases, func(i, j int) bool {
		if cp.Phases[i].Time != cp.Phases[j].Time {
			return cp.Phases[i].Time > cp.Phases[j].Time
		}
		return cp.Phases[i].Label < cp.Phases[j].Label
	})
	return cp, nil
}

// buildDAG turns the timeline into DAG nodes: per-rank program-order
// chains plus send→recv edges matched per (src,dst,tag) route in FIFO
// order — exactly the runtime's mailbox semantics.
func buildDAG(jt JobTrace) ([]cpNode, error) {
	var nodes []cpNode
	lastOnRank := map[int]int{}
	regions := map[int][]string{}
	sends := map[routeKey][]int{}
	type recvRef struct {
		node int
		key  routeKey
		seq  int
	}
	var recvs []recvRef
	recvSeq := map[routeKey]int{}

	for _, e := range jt.Events {
		switch e.Kind {
		case simmpi.EvRegionBegin:
			regions[e.Rank] = append(regions[e.Rank], e.Name)
			continue
		case simmpi.EvRegionEnd:
			if s := regions[e.Rank]; len(s) > 0 {
				regions[e.Rank] = s[:len(s)-1]
			}
			continue
		case simmpi.EvCompute, simmpi.EvSend, simmpi.EvRecv, simmpi.EvNoise:
		default:
			continue
		}
		prev, ok := lastOnRank[e.Rank]
		if !ok {
			prev = -1
		}
		n := cpNode{
			start:  e.Start,
			finish: e.Finish(),
			prev:   prev,
			sender: -1,
			label:  phaseLabel(e, regions[e.Rank]),
		}
		idx := len(nodes)
		nodes = append(nodes, n)
		lastOnRank[e.Rank] = idx
		switch e.Kind {
		case simmpi.EvSend:
			k := routeKey{src: e.Rank, dst: e.Peer, tag: e.Tag}
			sends[k] = append(sends[k], idx)
		case simmpi.EvRecv:
			k := routeKey{src: e.Peer, dst: e.Rank, tag: e.Tag}
			recvs = append(recvs, recvRef{node: idx, key: k, seq: recvSeq[k]})
			recvSeq[k]++
		}
	}

	// Second pass: the merged timeline orders each route's sends (one
	// sender, program order) and recvs (one receiver, program order),
	// so the k-th recv on a route matches the k-th send.
	for _, r := range recvs {
		ss := sends[r.key]
		if r.seq >= len(ss) {
			return nil, fmt.Errorf("obs: recv %d on route %+v has no matching send (trace truncated?)", r.seq, r.key)
		}
		nodes[r.node].sender = ss[r.seq]
	}
	return nodes, nil
}

// phaseLabel names an event's phase: the enclosing region path plus the
// kind (or kernel class for compute), e.g. "cg-iter/halo:recv" or
// "spmv" outside regions.
func phaseLabel(e simmpi.Event, regionStack []string) string {
	var base string
	switch e.Kind {
	case simmpi.EvCompute:
		base = e.Class.String()
	default:
		base = e.Kind.String()
	}
	if len(regionStack) == 0 {
		return base
	}
	return strings.Join(regionStack, "/") + ":" + base
}

// Render writes the critical-path report.
func (cp *CriticalPath) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "critical path: %v of %v makespan (%.1f%%), %d events\n",
		cp.Length, cp.Makespan, 100*cp.Fraction, cp.Steps); err != nil {
		return err
	}
	top := cp.Phases
	if len(top) > 12 {
		top = top[:12]
	}
	for _, p := range top {
		if _, err := fmt.Fprintf(w, "  %-32s %12v %6.1f%%  (%d events)\n",
			p.Label, p.Time, 100*p.Fraction, p.Steps); err != nil {
			return err
		}
	}
	return nil
}
