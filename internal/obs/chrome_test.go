package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"a64fxbench/internal/obs"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// chromeDoc mirrors the trace-event JSON document for validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestChromeGolden pins the Chrome trace export of the reference 4-rank
// job to a checked-in golden file, and structurally validates the
// format: parseable JSON, per-rank thread tracks, balanced nested
// region slices.
func TestChromeGolden(t *testing.T) {
	t.Parallel()
	sink, _ := fourRankJob(t)
	jobs := obs.SplitJobs(sink.Events)
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, jobs); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "chrome_4rank.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
	} else {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("reading golden file (run with -update to create): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("chrome export differs from golden file %s (regenerate with -update if intended)", goldenPath)
		}
	}

	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	threads := map[int]bool{}
	begins := map[int]int{}
	slices := 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				threads[e.Tid] = true
			}
		case "B":
			begins[e.Tid]++
		case "E":
			begins[e.Tid]--
			if begins[e.Tid] < 0 {
				t.Fatalf("tid %d: E without matching B", e.Tid)
			}
		case "X":
			slices++
			if e.Ts < 0 {
				t.Errorf("negative timestamp %v", e.Ts)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	for rank := 0; rank < 4; rank++ {
		if !threads[rank] {
			t.Errorf("missing thread_name metadata for rank %d", rank)
		}
	}
	for tid, n := range begins {
		if n != 0 {
			t.Errorf("tid %d: %d unbalanced region slices", tid, n)
		}
	}
	if slices == 0 {
		t.Error("no complete (X) slices")
	}
}

// TestChromeDeterministic regenerates the export and demands identical
// bytes — the property the sweep-level trace determinism gate rests on.
func TestChromeDeterministic(t *testing.T) {
	t.Parallel()
	var out [2]bytes.Buffer
	for i := range out {
		sink, _ := fourRankJob(t)
		if err := obs.WriteChrome(&out[i], obs.SplitJobs(sink.Events)); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Error("chrome export is not deterministic")
	}
}
