package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"a64fxbench/internal/units"
)

// Report bundles every analysis of one traced job: the communication
// matrix, the per-class roofline, and the critical path.
type Report struct {
	Label    string         `json:"label"`
	Ranks    int            `json:"ranks"`
	Nodes    int            `json:"nodes"`
	Makespan units.Duration `json:"makespan_ns"`

	Comm         *CommMatrix     `json:"comm"`
	CommByNode   *CommMatrix     `json:"comm_by_node,omitempty"`
	Roofline     []RooflinePoint `json:"roofline"`
	CriticalPath *CriticalPath   `json:"critical_path"`
	// Links is the interconnect contention heatmap; present only for
	// congestion-enabled jobs (traces without link events leave it nil).
	Links *LinkHeatmap `json:"links,omitempty"`
	// Counters is the virtual PMU aggregation; present only for jobs
	// run with counters enabled (traces without counter events leave it
	// nil).
	Counters *CounterReport `json:"counters,omitempty"`
}

// Analyze runs every analysis over one job trace.
func Analyze(jt JobTrace, peaks Peaks) (*Report, error) {
	cp, err := ComputeCriticalPath(jt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Label:        jt.Label,
		Ranks:        jt.NumRanks(),
		Nodes:        jt.NumNodes(),
		Makespan:     jt.Makespan,
		Comm:         BuildCommMatrix(jt),
		Roofline:     BuildRoofline(peaks, jt),
		CriticalPath: cp,
		Links:        BuildLinkHeatmap(jt),
		Counters:     BuildCounterReport(jt, peaks),
	}
	if rep.Nodes > 1 {
		rep.CommByNode = rep.Comm.NodeView()
	}
	return rep, nil
}

// AnalyzeAll analyzes every job in a sink's stream.
func AnalyzeAll(jobs []JobTrace, peaks Peaks) ([]*Report, error) {
	reps := make([]*Report, 0, len(jobs))
	for _, jt := range jobs {
		r, err := Analyze(jt, peaks)
		if err != nil {
			return nil, err
		}
		reps = append(reps, r)
	}
	return reps, nil
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the full human-readable report.
func (r *Report) Render(w io.Writer, peaks Peaks) error {
	if _, err := fmt.Fprintf(w, "=== %s: %d ranks on %d nodes, makespan %v ===\n",
		r.Label, r.Ranks, r.Nodes, r.Makespan); err != nil {
		return err
	}
	if err := r.CriticalPath.Render(w); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if err := RenderRoofline(w, peaks, r.Roofline); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	if err := r.Comm.Render(w); err != nil {
		return err
	}
	if r.Links != nil {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := r.Links.Render(w); err != nil {
			return err
		}
	}
	if r.Counters != nil {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		return r.Counters.Render(w)
	}
	return nil
}
