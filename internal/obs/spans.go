package obs

import (
	"io"

	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/telemetry"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// Span-tree export: the serve daemon's flight recorder retains one
// telemetry span tree per slow or errored request, and this file maps
// those trees onto the existing Chrome/Perfetto exporter — one process
// (pid) per request, the span hierarchy as nested region slices — so
// "why was this request slow" is answered with the same viewer as "why
// was this job slow".

// SpanJob converts one request's span tree into a JobTrace whose
// timeline is the tree rendered as nested region begin/end pairs on a
// single track. Virtual-clock spans are skipped: their times live on
// the simulated clock and would land nonsensically on the request's
// wall timeline (the text and JSON views of the same entry retain
// them). A nil root yields an empty job.
func SpanJob(label string, root *telemetry.SpanNode) JobTrace {
	jt := JobTrace{Label: label}
	if root == nil {
		return jt
	}
	jt.Makespan = units.Duration(root.DurationNS)
	var emit func(n *telemetry.SpanNode)
	emit = func(n *telemetry.SpanNode) {
		if n == nil || n.Clock == string(telemetry.ClockVirtual) {
			return
		}
		jt.Events = append(jt.Events, simmpi.Event{
			Kind: simmpi.EvRegionBegin, Rank: 0, Node: 0, Peer: -1,
			Name: n.Name, Start: vclock.Time(n.StartNS),
		})
		for _, c := range n.Children {
			emit(c)
		}
		jt.Events = append(jt.Events, simmpi.Event{
			Kind: simmpi.EvRegionEnd, Rank: 0, Node: 0, Peer: -1,
			Name: n.Name, Start: vclock.Time(n.StartNS + n.DurationNS),
			Duration: units.Duration(n.DurationNS),
		})
	}
	emit(root)
	return jt
}

// WriteSpanChrome renders flight-recorder entries as one Chrome
// trace-event document, one process per entry labelled with the
// entry's identity line.
func WriteSpanChrome(w io.Writer, entries []*telemetry.Entry) error {
	jobs := make([]JobTrace, 0, len(entries))
	for _, e := range entries {
		if e == nil || e.Spans == nil {
			continue
		}
		jobs = append(jobs, SpanJob(e.Label(), e.Spans))
	}
	return WriteChrome(w, jobs)
}
