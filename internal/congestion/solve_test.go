package congestion

import (
	"math"
	"reflect"
	"testing"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// ring is a 1-D torus: routes between nodes are chains of dim0 links,
// which makes hand-computing max-min shares easy.
func ring(n int) *topo.Torus { return &topo.Torus{Dims: []int{n}} }

// flat prices every link at the same capacity.
func flat(c units.ByteRate) func(topo.Link) units.ByteRate {
	return func(topo.Link) units.ByteRate { return c }
}

func key(src, dst, tag, seq int) FlowKey { return FlowKey{Src: src, Dst: dst, Tag: tag, Seq: seq} }

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %.12f, want %.12f", name, got, want)
	}
}

func TestSoloFlowNoDilation(t *testing.T) {
	t.Parallel()
	sol := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, []Flow{
		{Key: key(0, 1, 7, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
	})
	approx(t, "solo dilation", sol.Dilation(key(0, 1, 7, 0)), 1)
	if len(sol.Links.Links) != 1 {
		t.Fatalf("want 1 contended link, got %v", sol.Links.Links)
	}
	ls := sol.Links.Links[0]
	approx(t, "busy", ls.Busy.Seconds(), 1.0)
	approx(t, "util", ls.Util, 1.0)
	if ls.Flows != 1 || ls.PeakFlows != 1 {
		t.Errorf("flows = %d peak = %d, want 1/1", ls.Flows, ls.PeakFlows)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	t.Parallel()
	// Two simultaneous equal flows over the same link: each gets half
	// the bandwidth, so both take twice as long.
	flows := []Flow{
		{Key: key(0, 8, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
		{Key: key(1, 9, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
	}
	sol := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, flows)
	approx(t, "flow A dilation", sol.Dilation(flows[0].Key), 2)
	approx(t, "flow B dilation", sol.Dilation(flows[1].Key), 2)
	ls := sol.Links.Links[0]
	if ls.Flows != 2 || ls.PeakFlows != 2 {
		t.Errorf("flows = %d peak = %d, want 2/2", ls.Flows, ls.PeakFlows)
	}
	approx(t, "busy", ls.Busy.Seconds(), 2.0)
	approx(t, "span", sol.Links.Span.Seconds(), 2.0)
}

func TestDisjointFlowsDontInteract(t *testing.T) {
	t.Parallel()
	flows := []Flow{
		{Key: key(0, 1, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
		{Key: key(4, 5, 1, 0), SrcNode: 4, DstNode: 5, Start: 0, Bytes: 1e6},
	}
	sol := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, flows)
	approx(t, "A", sol.Dilation(flows[0].Key), 1)
	approx(t, "B", sol.Dilation(flows[1].Key), 1)
	if sol.MaxDilation() != 1 {
		t.Errorf("max dilation = %v, want 1", sol.MaxDilation())
	}
}

func TestMaxMinWaterfilling(t *testing.T) {
	t.Parallel()
	// Three flows on a chain 0-1-2 with link 0→1 at 1 MB/s and link
	// 1→2 at 10 MB/s:
	//   A: 0→1 (slow link only)      B: 0→2 (both)      C: 1→2 (fast only)
	// Max-min: A and B split the slow link at 0.5 MB/s; C gets the
	// fast link's remainder, 9.5 MB/s.
	cap := func(l topo.Link) units.ByteRate {
		if l.From == 0 {
			return 1e6
		}
		return 10e6
	}
	flows := []Flow{
		{Key: key(0, 0, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
		{Key: key(1, 0, 1, 0), SrcNode: 0, DstNode: 2, Start: 0, Bytes: 1e6},
		{Key: key(2, 0, 1, 0), SrcNode: 1, DstNode: 2, Start: 0, Bytes: 1e6},
	}
	sol := Solve(Config{Topo: ring(8), Capacity: cap}, flows)
	// A: ideal 1s at 1 MB/s, runs at 0.5 MB/s until B finishes — but B
	// finishes with A (same share, same bytes): both take 2s.
	approx(t, "A dilation", sol.Dilation(flows[0].Key), 2)
	approx(t, "B dilation", sol.Dilation(flows[1].Key), 2)
	// C: ideal 0.1s at 10 MB/s; shares with B at 9.5 MB/s until its
	// 1e6 bytes finish at t = 1/9.5e6 s, i.e. dilation 10/9.5.
	approx(t, "C dilation", sol.Dilation(flows[2].Key), 10.0/9.5)
}

func TestStaggeredArrivalsDilatePartially(t *testing.T) {
	t.Parallel()
	// B arrives halfway through A's solo transfer. A: 0.5s alone at
	// full rate, then 1s at half rate — finishes at 1.5s (dilation
	// 1.5). B: 1s at half rate, then 0.5s alone — finishes at 2.0s,
	// for a 1.5s transfer (dilation 1.5). The link never idles, so
	// busy == span == 2s and utilization is exactly 1.
	flows := []Flow{
		{Key: key(0, 0, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
		{Key: key(1, 0, 1, 0), SrcNode: 0, DstNode: 1, Start: vclock.Time(5e8), Bytes: 1e6},
	}
	sol := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, flows)
	approx(t, "A dilation", sol.Dilation(flows[0].Key), 1.5)
	approx(t, "B dilation", sol.Dilation(flows[1].Key), 1.5)
	approx(t, "span", sol.Links.Span.Seconds(), 2.0)
	ls := sol.Links.Links[0]
	approx(t, "busy", ls.Busy.Seconds(), 2.0)
	approx(t, "util", ls.Util, 1.0)
	if ls.PeakFlows != 2 {
		t.Errorf("peak = %d, want 2", ls.PeakFlows)
	}
}

func TestInjectionCapacityAddsHostLinks(t *testing.T) {
	t.Parallel()
	// Torus routes are switch-level; with InjectionCapacity set, two
	// flows leaving node 0 toward opposite ring directions — disjoint
	// torus links — still contend at node 0's injection port.
	flows := []Flow{
		{Key: key(0, 0, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 1e6},
		{Key: key(1, 0, 1, 0), SrcNode: 0, DstNode: 7, Start: 0, Bytes: 1e6},
	}
	noInj := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, flows)
	approx(t, "no injection cap", noInj.MaxDilation(), 1)
	inj := Solve(Config{Topo: ring(8), Capacity: flat(1e6), InjectionCapacity: 1e6}, flows)
	approx(t, "injection-shared A", inj.Dilation(flows[0].Key), 2)
	approx(t, "injection-shared B", inj.Dilation(flows[1].Key), 2)
}

func TestZeroByteAndIntraNodeFlowsIgnored(t *testing.T) {
	t.Parallel()
	sol := Solve(Config{Topo: ring(8), Capacity: flat(1e6)}, []Flow{
		{Key: key(0, 0, 1, 0), SrcNode: 0, DstNode: 1, Start: 0, Bytes: 0},
		{Key: key(1, 0, 1, 0), SrcNode: 3, DstNode: 3, Start: 0, Bytes: 1e6},
	})
	if len(sol.Links.Links) != 0 {
		t.Errorf("want empty report, got %v", sol.Links.Links)
	}
	approx(t, "zero-byte", sol.Dilation(key(0, 0, 1, 0)), 1)
}

func TestSolveDeterministicUnderPermutation(t *testing.T) {
	t.Parallel()
	// The recorder hands flows over in whatever order rank goroutines
	// finished; the solution must not depend on it.
	base := []Flow{
		{Key: key(0, 4, 1, 0), SrcNode: 0, DstNode: 4, Start: 0, Bytes: 3e5},
		{Key: key(1, 5, 1, 0), SrcNode: 1, DstNode: 5, Start: 0, Bytes: 7e5},
		{Key: key(2, 6, 2, 0), SrcNode: 2, DstNode: 6, Start: vclock.Time(1e8), Bytes: 5e5},
		{Key: key(3, 7, 2, 1), SrcNode: 3, DstNode: 7, Start: vclock.Time(2e8), Bytes: 9e5},
		{Key: key(0, 4, 1, 1), SrcNode: 0, DstNode: 4, Start: vclock.Time(2e8), Bytes: 2e5},
	}
	cfg := Config{Topo: ring(8), Capacity: flat(1e6), InjectionCapacity: 8e5}
	ref := Solve(cfg, append([]Flow(nil), base...))
	perm := []Flow{base[4], base[2], base[0], base[3], base[1]}
	got := Solve(cfg, perm)
	for _, f := range base {
		approx(t, "dilation "+f.Key.string(), got.Dilation(f.Key), ref.Dilation(f.Key))
	}
	if !reflect.DeepEqual(ref.Links, got.Links) {
		t.Errorf("link reports differ under input permutation:\n%+v\nvs\n%+v", ref.Links, got.Links)
	}
}

// string renders a key for test output.
func (k FlowKey) string() string {
	return string(rune('0'+k.Src)) + "→" + string(rune('0'+k.Dst))
}

func TestDilatedFlowsConserveWork(t *testing.T) {
	t.Parallel()
	// Many flows over one bottleneck: total transfer time must equal
	// total bytes over capacity (the fluid model conserves work), and
	// every flow's dilation must be ≥ 1.
	var flows []Flow
	total := 0.0
	for i := 0; i < 20; i++ {
		b := float64(1e5 * (i + 1))
		total += b
		flows = append(flows, Flow{
			Key: key(i, 0, 3, 0), SrcNode: 0, DstNode: 1,
			Start: vclock.Time(int64(i) * 1e7), Bytes: units.Bytes(b),
		})
	}
	sol := Solve(Config{Topo: ring(2), Capacity: flat(1e6)}, flows)
	ls := sol.Links.Links[0]
	if got := float64(ls.Bytes); math.Abs(got-total) > 1 {
		t.Errorf("link bytes = %v, want %v", got, total)
	}
	// The link is saturated from the first arrival to the last finish:
	// busy == span == total/capacity + the staggered lead-in slack.
	if ls.Busy.Seconds() < total/1e6-1e-9 {
		t.Errorf("busy %v shorter than serialization bound %v", ls.Busy.Seconds(), total/1e6)
	}
	for _, f := range flows {
		if d := sol.Dilation(f.Key); d < 1 {
			t.Errorf("dilation %v < 1 for %+v", d, f.Key)
		}
	}
}
