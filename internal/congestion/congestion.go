// Package congestion is the contention-aware pricing layer under the
// simmpi runtime. The contention-free netmodel prices every message on
// an infinitely-provisioned fabric; this package instead routes every
// recorded inter-node flow onto concrete topology links (topo.Route),
// plays the whole flow schedule through a fluid bandwidth-sharing
// simulation, and reports how much each flow was slowed down by the
// traffic it shared links with.
//
// Bandwidth on each directed link is divided by iterative max-min fair
// sharing (progressive filling / waterfilling): at every instant the
// solver raises all active flows' rates together until some link
// saturates, freezes the flows crossing it at their fair share, removes
// that capacity, and repeats. The fluid schedule is re-solved at every
// flow arrival and departure, so a flow's effective bandwidth varies
// over its lifetime exactly as the set of competitors changes.
//
// The result per flow is a dilation factor D ≥ 1 — the ratio of its
// fluid completion time to the time it would take alone at its
// bottleneck-link bandwidth. The runtime multiplies the serialization
// term of the LogGP price by D on a replayed run (see simmpi). The
// solver is deterministic: flows are processed in (start time, flow
// key) order, links are interned in first-use order, and no map
// iteration ever reaches an output.
package congestion

import (
	"math"
	"sort"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// FlowKey identifies one message flow across the two passes of a
// congested run: the (src, dst, tag) route plus a per-route sequence
// number in the sender's program order. SPMD bodies re-issue the same
// keys on replay, which is what lets the replay look its dilation up.
type FlowKey struct {
	Src, Dst, Tag, Seq int
}

// Flow is one recorded inter-node message.
type Flow struct {
	Key FlowKey
	// SrcNode and DstNode place the flow on the topology.
	SrcNode, DstNode int
	// Start is the sender's virtual time at injection.
	Start vclock.Time
	// Bytes is the wire size; zero-byte flows carry no bandwidth and
	// are ignored by the solver.
	Bytes units.Bytes
}

// Config parameterizes a solve.
type Config struct {
	// Topo supplies minimal routes between node indices.
	Topo topo.Topology
	// Capacity prices one directed link's bandwidth. Links priced ≤ 0
	// are treated as unconstrained and drop out of the contention model.
	// A nil Capacity disables contention entirely (empty solution).
	Capacity func(topo.Link) units.ByteRate
	// InjectionCapacity, when > 0, adds a host injection and ejection
	// link per node to routes that do not already include them (torus
	// routes are switch-level only), priced at this rate.
	InjectionCapacity units.ByteRate
	// Buckets is the utilization-series resolution (default 64).
	Buckets int
	// SeriesLinks bounds how many of the busiest links carry a
	// utilization series (default 16).
	SeriesLinks int
}

// Solution is the outcome of a solve: per-flow dilations and the
// per-link accounting behind them.
type Solution struct {
	dil map[FlowKey]float64
	// Links is the per-link contention report (never nil).
	Links *LinkReport
}

// Dilation returns the flow's slowdown factor, ≥ 1. Unknown keys (and a
// nil solution) dilate by exactly 1, so replayed messages the recorder
// never saw — zero-byte or intra-node — price identically to the
// contention-free path.
func (s *Solution) Dilation(k FlowKey) float64 {
	if s == nil {
		return 1
	}
	if d, ok := s.dil[k]; ok {
		return d
	}
	return 1
}

// MaxDilation reports the largest per-flow slowdown in the solution.
func (s *Solution) MaxDilation() float64 {
	worst := 1.0
	if s == nil {
		return worst
	}
	for _, d := range s.dil {
		if d > worst {
			worst = d
		}
	}
	return worst
}

// model is the prepared fluid-simulation input: filtered flows in
// deterministic order with interned, capacitated routes.
type model struct {
	flows    []Flow
	startSec []float64
	bytes    []float64
	routes   [][]int32
	links    []topo.Link
	cap      []float64 // bytes/sec per link id, all > 0
	minCap   float64
	totals   linkTotals
}

// Solve routes the flows, plays them through the fluid max-min sharing
// simulation and returns dilations plus the link report.
func Solve(cfg Config, flows []Flow) *Solution {
	s := &Solution{dil: map[FlowKey]float64{}, Links: &LinkReport{}}
	if cfg.Topo == nil || cfg.Capacity == nil {
		return s
	}
	fs := make([]Flow, 0, len(flows))
	for _, f := range flows {
		if f.Bytes > 0 && f.SrcNode != f.DstNode {
			fs = append(fs, f)
		}
	}
	if len(fs) == 0 {
		return s
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Start != fs[j].Start {
			return fs[i].Start < fs[j].Start
		}
		return flowKeyLess(fs[i].Key, fs[j].Key)
	})

	m := buildModel(cfg, fs)
	finish := m.run(nil)

	// Dilation = fluid duration over the alone-at-bottleneck duration.
	for i := range m.flows {
		minCap := math.Inf(1)
		for _, l := range m.routes[i] {
			if m.cap[l] < minCap {
				minCap = m.cap[l]
			}
		}
		if math.IsInf(minCap, 1) {
			continue // unconstrained flow: dilation 1
		}
		ideal := m.bytes[i] / minCap
		if ideal <= 0 {
			continue
		}
		d := (finish[i] - m.startSec[i]) / ideal
		if d > 1 {
			m.setDilation(s, i, d)
		}
	}
	s.Links = m.report(cfg, finish)
	return s
}

// setDilation records one flow's dilation.
func (m *model) setDilation(s *Solution, i int, d float64) {
	s.dil[m.flows[i].Key] = d
}

// flowKeyLess orders flow keys lexicographically.
func flowKeyLess(a, b FlowKey) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	if a.Tag != b.Tag {
		return a.Tag < b.Tag
	}
	return a.Seq < b.Seq
}

// buildModel interns every flow's capacitated route. Links are numbered
// in first-use order over the sorted flows, so ids are deterministic.
func buildModel(cfg Config, fs []Flow) *model {
	m := &model{
		flows:    fs,
		startSec: make([]float64, len(fs)),
		bytes:    make([]float64, len(fs)),
		routes:   make([][]int32, len(fs)),
		minCap:   math.Inf(1),
	}
	ids := map[topo.Link]int32{}
	intern := func(l topo.Link) (int32, bool) {
		if id, ok := ids[l]; ok {
			return id, id >= 0
		}
		c := float64(cfg.Capacity(l))
		if l.Level == topo.LevelHostUp || l.Level == topo.LevelHostDown {
			if inj := float64(cfg.InjectionCapacity); inj > 0 {
				c = inj
			}
		}
		if c <= 0 {
			ids[l] = -1 // unconstrained: excluded from the model
			return -1, false
		}
		id := int32(len(m.links))
		ids[l] = id
		m.links = append(m.links, l)
		m.cap = append(m.cap, c)
		if c < m.minCap {
			m.minCap = c
		}
		return id, true
	}
	type pairKey struct{ a, b int }
	pairRoutes := map[pairKey][]int32{}
	var buf []topo.Link
	for i, f := range fs {
		m.startSec[i] = f.Start.Seconds()
		m.bytes[i] = float64(f.Bytes)
		pk := pairKey{f.SrcNode, f.DstNode}
		route, ok := pairRoutes[pk]
		if !ok {
			buf = topo.RouteAppend(cfg.Topo, buf[:0], f.SrcNode, f.DstNode)
			hosts := len(buf) > 0 && buf[0].Level == topo.LevelHostUp
			if !hosts && cfg.InjectionCapacity > 0 {
				// Switch-level routes (tori) still funnel through the
				// source and destination nodes' network interfaces.
				if id, ok := intern(topo.Link{Level: topo.LevelHostUp, From: int32(f.SrcNode), To: -1}); ok {
					route = append(route, id)
				}
			}
			for _, l := range buf {
				if id, ok := intern(l); ok {
					route = append(route, id)
				}
			}
			if !hosts && cfg.InjectionCapacity > 0 {
				if id, ok := intern(topo.Link{Level: topo.LevelHostDown, From: -1, To: int32(f.DstNode)}); ok {
					route = append(route, id)
				}
			}
			pairRoutes[pk] = route
		}
		m.routes[i] = route
	}
	return m
}

// segFunc observes one fluid integration step on one link: bytes moved
// across the link during [t0, t0+dt).
type segFunc func(link int32, t0, dt, bytes float64)

// linkTotals is the per-link accounting a run accumulates.
type linkTotals struct {
	busy  []float64
	bytes []float64
	flows []int64
	peak  []int32
}

// run plays the fluid max-min schedule and returns every flow's finish
// time (seconds). The accounting of the most recent run is kept on
// m.totals; seg, when non-nil, additionally observes every per-link
// integration step (used to build bucketed utilization series).
func (m *model) run(seg segFunc) []float64 {
	n := len(m.flows)
	nl := len(m.links)
	m.totals = linkTotals{
		busy:  make([]float64, nl),
		bytes: make([]float64, nl),
		flows: make([]int64, nl),
		peak:  make([]int32, nl),
	}
	finish := make([]float64, n)
	rem := append([]float64(nil), m.bytes...)
	rates := make([]float64, n)
	frozen := make([]bool, n)
	active := make([]int, 0, 64)

	cnt := make([]int32, nl)     // active flows per link (incremental)
	cntWork := make([]int32, nl) // waterfill working copy
	capLeft := make([]float64, nl)
	rateSum := make([]float64, nl)
	stamp := make([]int, nl)  // touched-set membership, by generation
	bstamp := make([]int, nl) // bottleneck marks, by generation
	gen, bgen := 0, 0
	touched := make([]int32, 0, 256)

	const epsBytes = 1e-3
	i := 0
	t := m.startSec[0]
	for i < n || len(active) > 0 {
		for i < n && m.startSec[i] <= t {
			active = append(active, i)
			for _, l := range m.routes[i] {
				cnt[l]++
				m.totals.flows[l]++
				if cnt[l] > m.totals.peak[l] {
					m.totals.peak[l] = cnt[l]
				}
			}
			i++
		}
		if len(active) == 0 {
			t = m.startSec[i]
			continue
		}

		// Waterfill: progressively freeze flows at the fair share of
		// their first-saturating link.
		gen++
		touched = touched[:0]
		unfrozen := len(active)
		for _, f := range active {
			frozen[f] = false
			if len(m.routes[f]) == 0 {
				// Unconstrained flow: transfers at infinite fluid rate
				// (it retires this event with zero elapsed time).
				rates[f], frozen[f] = math.Inf(1), true
				unfrozen--
				continue
			}
			for _, l := range m.routes[f] {
				if stamp[l] != gen {
					stamp[l] = gen
					capLeft[l] = m.cap[l]
					cntWork[l] = cnt[l]
					rateSum[l] = 0
					touched = append(touched, l)
				}
			}
		}
		for unfrozen > 0 {
			share := math.Inf(1)
			for _, l := range touched {
				if cntWork[l] > 0 {
					if s := capLeft[l] / float64(cntWork[l]); s < share {
						share = s
					}
				}
			}
			if share <= 0 {
				// Float residue from near-tied bottlenecks; keep the
				// schedule moving at a negligible rate.
				share = m.minCap * 1e-9
			}
			bgen++
			for _, l := range touched {
				if cntWork[l] > 0 && capLeft[l]/float64(cntWork[l]) <= share {
					bstamp[l] = bgen
				}
			}
			for _, f := range active {
				if frozen[f] {
					continue
				}
				hit := false
				for _, l := range m.routes[f] {
					if bstamp[l] == bgen {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				rates[f], frozen[f] = share, true
				unfrozen--
				for _, l := range m.routes[f] {
					capLeft[l] -= share
					if capLeft[l] < 0 {
						capLeft[l] = 0
					}
					cntWork[l]--
				}
			}
		}

		// Advance to the next arrival or the first completion.
		dtFin := math.Inf(1)
		for _, f := range active {
			if d := rem[f] / rates[f]; d < dtFin {
				dtFin = d
			}
		}
		arrival := false
		dt := dtFin
		if i < n {
			if dtArr := m.startSec[i] - t; dtArr < dtFin {
				dt, arrival = dtArr, true
			}
		}
		if dt < 0 {
			dt = 0
		}
		for _, f := range active {
			if math.IsInf(rates[f], 1) {
				rem[f] = 0 // unconstrained: completes within this event
				continue
			}
			rem[f] -= rates[f] * dt
			for _, l := range m.routes[f] {
				rateSum[l] += rates[f]
			}
		}
		for _, l := range touched {
			m.totals.busy[l] += dt
			moved := rateSum[l] * dt
			m.totals.bytes[l] += moved
			if seg != nil {
				seg(l, t, dt, moved)
			}
		}
		if arrival {
			t = m.startSec[i]
		} else {
			t += dt
		}
		w := 0
		for _, f := range active {
			if rem[f] <= epsBytes {
				finish[f] = t
				for _, l := range m.routes[f] {
					cnt[l]--
				}
			} else {
				active[w] = f
				w++
			}
		}
		active = active[:w]
	}
	return finish
}
