package congestion

import (
	"sort"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// LinkStats is the contention accounting of one directed link.
type LinkStats struct {
	// Link is the topology edge; Name is its rendered form (stable,
	// human-readable, and what trace events carry).
	Link topo.Link `json:"-"`
	Name string    `json:"name"`
	// Capacity is the link's modelled bandwidth.
	Capacity units.ByteRate `json:"capacity_bps"`
	// Bytes is the total traffic the link carried.
	Bytes units.Bytes `json:"bytes"`
	// Busy is the virtual time the link had at least one active flow.
	Busy units.Duration `json:"busy_ns"`
	// Flows counts flows routed over the link; PeakFlows is the largest
	// number sharing it at one instant.
	Flows     int64 `json:"flows"`
	PeakFlows int   `json:"peak_flows"`
	// Util is the link's mean utilization while busy: bytes carried
	// over capacity×busy, in [0, 1].
	Util float64 `json:"util"`
	// Series is the bucketed utilization over the report window (only
	// the busiest links carry one; see Config.SeriesLinks).
	Series []float64 `json:"series,omitempty"`
}

// LinkReport is the per-link view of one solved flow schedule, busiest
// link first.
type LinkReport struct {
	// Start and Span bound the window: first flow injection to last
	// flow completion, in virtual time.
	Start vclock.Time    `json:"start_ns"`
	Span  units.Duration `json:"span_ns"`
	// BucketWidth is the Series resolution (Span / buckets).
	BucketWidth units.Duration `json:"bucket_ns"`
	// Links holds every contended link, sorted by busy time (desc),
	// then bytes (desc), then name.
	Links []LinkStats `json:"links"`
}

// MaxPeakFlows reports the largest concurrent-flow count on any link.
func (r *LinkReport) MaxPeakFlows() int {
	worst := 0
	for _, l := range r.Links {
		if l.PeakFlows > worst {
			worst = l.PeakFlows
		}
	}
	return worst
}

// report assembles the LinkReport from the totals of the completed run,
// re-running the fluid schedule once more to bucket the busiest links'
// utilization over the now-known window.
func (m *model) report(cfg Config, finish []float64) *LinkReport {
	rep := &LinkReport{Start: m.flows[0].Start}
	t0 := m.startSec[0]
	t1 := t0
	for _, f := range finish {
		if f > t1 {
			t1 = f
		}
	}
	rep.Span = units.DurationFromSeconds(t1 - t0)

	order := make([]int, len(m.links))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := order[a], order[b]
		if m.totals.busy[la] != m.totals.busy[lb] {
			return m.totals.busy[la] > m.totals.busy[lb]
		}
		if m.totals.bytes[la] != m.totals.bytes[lb] {
			return m.totals.bytes[la] > m.totals.bytes[lb]
		}
		return m.links[la].String() < m.links[lb].String()
	})

	buckets := cfg.Buckets
	if buckets <= 0 {
		buckets = 64
	}
	seriesLinks := cfg.SeriesLinks
	if seriesLinks <= 0 {
		seriesLinks = 16
	}
	bw := (t1 - t0) / float64(buckets)
	series := map[int32][]float64{}
	if bw > 0 {
		for i := 0; i < len(order) && i < seriesLinks; i++ {
			series[int32(order[i])] = make([]float64, buckets)
		}
		m.run(func(l int32, segT0, dt, bytes float64) {
			bs, ok := series[l]
			if !ok || dt <= 0 || bytes <= 0 {
				return
			}
			lo := int((segT0 - t0) / bw)
			hi := int((segT0 + dt - t0) / bw)
			for b := lo; b <= hi && b < buckets; b++ {
				if b < 0 {
					continue
				}
				s := t0 + float64(b)*bw
				e := s + bw
				if s < segT0 {
					s = segT0
				}
				if e > segT0+dt {
					e = segT0 + dt
				}
				if e > s {
					bs[b] += bytes * (e - s) / dt
				}
			}
		})
	}

	rep.BucketWidth = units.DurationFromSeconds(bw)
	rep.Links = make([]LinkStats, 0, len(order))
	for _, id := range order {
		ls := LinkStats{
			Link:      m.links[id],
			Name:      m.links[id].String(),
			Capacity:  units.ByteRate(m.cap[id]),
			Bytes:     units.Bytes(m.totals.bytes[id] + 0.5),
			Busy:      units.DurationFromSeconds(m.totals.busy[id]),
			Flows:     m.totals.flows[id],
			PeakFlows: int(m.totals.peak[id]),
		}
		if m.totals.busy[id] > 0 {
			ls.Util = clamp01(m.totals.bytes[id] / (m.cap[id] * m.totals.busy[id]))
		}
		if bs, ok := series[int32(id)]; ok {
			ls.Series = make([]float64, buckets)
			for b, v := range bs {
				ls.Series[b] = clamp01(v / (m.cap[id] * bw))
			}
		}
		rep.Links = append(rep.Links, ls)
	}
	return rep
}

// clamp01 bounds a utilization ratio to [0, 1] (float residue from
// bucket-boundary splitting can overshoot by an ulp).
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
