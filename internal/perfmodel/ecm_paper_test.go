// Paper-pinned validation of the ECM mode: the shipped A64FX spec,
// priced by ECMBreakdown, must reproduce the published single-node
// STREAM-triad and SpMV numbers of the model's source study
// (arXiv:2103.03013) within the tolerance bands committed in testdata.
// The test lives in the external package so it can compile the real
// A64FX spec through internal/arch without an import cycle.
package perfmodel_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// paperCase is one published measurement the ECM mode must land on.
type paperCase struct {
	Name         string  `json:"name"`
	Class        string  `json:"class"`
	Elems        float64 `json:"elems"`
	FlopsPerElem float64 `json:"flops_per_elem"`
	BytesPerElem float64 `json:"bytes_per_elem"`
	Cores        int     `json:"cores"`
	Metric       string  `json:"metric"` // "gbps" or "gflops"
	Paper        float64 `json:"paper"`
	Tol          float64 `json:"tol"`
}

type paperFile struct {
	Source string      `json:"source"`
	Cases  []paperCase `json:"cases"`
}

// classByName maps the testdata spellings onto kernel classes.
var classByName = map[string]perfmodel.KernelClass{
	"VectorOp": perfmodel.VectorOp,
	"SpMV":     perfmodel.SpMV,
}

func TestECMPaperPins(t *testing.T) {
	t.Parallel()
	raw, err := os.ReadFile(filepath.Join("testdata", "ecm_paper.json"))
	if err != nil {
		t.Fatalf("reading pins: %v", err)
	}
	var pins paperFile
	if err := json.Unmarshal(raw, &pins); err != nil {
		t.Fatalf("parsing pins: %v", err)
	}
	if pins.Source == "" || len(pins.Cases) == 0 {
		t.Fatal("testdata carries no source attribution or no cases")
	}
	m := arch.MustGet(arch.A64FX).CostModel()
	for _, c := range pins.Cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			class, ok := classByName[c.Class]
			if !ok {
				t.Fatalf("unknown kernel class %q", c.Class)
			}
			if c.Paper <= 0 || c.Tol <= 0 || c.Tol >= 1 {
				t.Fatalf("bad pin: paper %v, tol %v", c.Paper, c.Tol)
			}
			w := perfmodel.WorkProfile{
				Class: class,
				Flops: units.Flops(c.Elems * c.FlopsPerElem),
				Bytes: units.Bytes(c.Elems * c.BytesPerElem),
			}
			bd := m.ECMBreakdown(w, perfmodel.PhaseOptions{Cores: c.Cores})
			if bd.Time <= 0 {
				t.Fatalf("non-positive ECM time %v", bd.Time)
			}
			// bytes/ns ≡ GB/s and flops/ns ≡ GFLOP/s.
			var got float64
			switch c.Metric {
			case "gbps":
				got = float64(w.Bytes) / float64(bd.Time)
			case "gflops":
				got = float64(w.Flops) / float64(bd.Time)
			default:
				t.Fatalf("unknown metric %q", c.Metric)
			}
			dev := (got - c.Paper) / c.Paper
			if dev < 0 {
				dev = -dev
			}
			if dev > c.Tol {
				t.Errorf("%s on %d cores: ECM predicts %.1f %s, paper %.1f (%.1f%% off, tol %.0f%%)",
					c.Name, c.Cores, got, c.Metric, c.Paper, 100*dev, 100*c.Tol)
			}
		})
	}
}
