package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"a64fxbench/internal/units"
)

// testNode builds a simple two-domain node: 8 cores, 100 GFLOP/s peak,
// 2×50 GB/s domains, 16 GiB memory.
func testNode() NodeCapability {
	dom := MemoryDomain{
		Cores:            4,
		PeakBandwidth:    50 * units.GBPerSec,
		PerCoreBandwidth: 20 * units.GBPerSec,
		Capacity:         8 * units.GiB,
	}
	return NodeCapability{
		Name:               "test",
		Cores:              8,
		PeakFlops:          100 * units.GFlopPerSec,
		ScalarFlopsPerCore: 2 * units.GFlopPerSec,
		Domains:            []MemoryDomain{dom, dom},
		L2PerDomain:        8 * units.MiB,
	}
}

func testModel() *CostModel {
	return &CostModel{
		Node: testNode(),
		Eff: map[KernelClass]Efficiency{
			SpMV:      {Compute: 0.10, Memory: 0.80},
			LargeGEMM: {Compute: 0.90, Memory: 0.90},
		},
		FastMathGain: map[KernelClass]float64{LargeGEMM: 1.5},
	}
}

func TestKernelClassString(t *testing.T) {
	t.Parallel()
	for _, k := range KernelClasses() {
		if s := k.String(); s == "" || s[0] == 'k' && s != "kernel(0)" {
			t.Errorf("class %d has suspicious name %q", int(k), s)
		}
	}
	if KernelClass(99).String() != "kernel(99)" {
		t.Error("unknown class should format numerically")
	}
}

func TestWorkProfileAdd(t *testing.T) {
	t.Parallel()
	var w WorkProfile
	w.Add(WorkProfile{Class: SpMV, Flops: 10, Bytes: 100, Calls: 1})
	w.Add(WorkProfile{Class: SpMV, Flops: 5, Bytes: 50, Calls: 2})
	if w.Flops != 15 || w.Bytes != 150 || w.Calls != 3 {
		t.Errorf("Add result %+v", w)
	}
}

func TestWorkProfileAddMismatchPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on class mismatch")
		}
	}()
	w := WorkProfile{Class: SpMV, Flops: 1}
	w.Add(WorkProfile{Class: LargeGEMM, Flops: 1})
}

func TestWorkProfileScale(t *testing.T) {
	t.Parallel()
	w := WorkProfile{Class: SpMV, Flops: 10, Bytes: 100, Calls: 1}
	s := w.Scale(3)
	if s.Flops != 30 || s.Bytes != 300 || s.Calls != 3 || s.Class != SpMV {
		t.Errorf("Scale result %+v", s)
	}
}

func TestArithmeticIntensity(t *testing.T) {
	t.Parallel()
	w := WorkProfile{Flops: 100, Bytes: 400}
	if got := w.ArithmeticIntensity(); got != 0.25 {
		t.Errorf("AI = %v, want 0.25", got)
	}
	if !math.IsInf(WorkProfile{Flops: 1}.ArithmeticIntensity(), 1) {
		t.Error("zero bytes should give +Inf intensity")
	}
}

func TestMemoryDomainBandwidthSaturation(t *testing.T) {
	t.Parallel()
	d := testNode().Domains[0]
	if got := d.Bandwidth(1); got != 20*units.GBPerSec {
		t.Errorf("1 core bw = %v", got)
	}
	if got := d.Bandwidth(2); got != 40*units.GBPerSec {
		t.Errorf("2 core bw = %v", got)
	}
	// 3 cores: 60 > peak 50, saturate.
	if got := d.Bandwidth(3); got != 50*units.GBPerSec {
		t.Errorf("3 core bw = %v", got)
	}
	if got := d.Bandwidth(100); got != 50*units.GBPerSec {
		t.Errorf("overfull bw = %v", got)
	}
	if d.Bandwidth(0) != 0 {
		t.Error("0 cores should have 0 bandwidth")
	}
}

func TestPlacementBandwidthRoundRobin(t *testing.T) {
	t.Parallel()
	n := testNode()
	// 2 cores round-robin over 2 domains: one core each = 2×20.
	if got := n.PlacementBandwidth(2); got != 40*units.GBPerSec {
		t.Errorf("2-core placement = %v", got)
	}
	// Full node saturates both domains.
	if got := n.PlacementBandwidth(8); got != 100*units.GBPerSec {
		t.Errorf("full placement = %v", got)
	}
	// Odd core count splits unevenly: 2+1 cores = 40+20.
	if got := n.PlacementBandwidth(3); got != 60*units.GBPerSec {
		t.Errorf("3-core placement = %v", got)
	}
}

func TestNodeTotals(t *testing.T) {
	t.Parallel()
	n := testNode()
	if n.TotalMemory() != 16*units.GiB {
		t.Errorf("TotalMemory = %v", n.TotalMemory())
	}
	if n.PeakBandwidth() != 100*units.GBPerSec {
		t.Errorf("PeakBandwidth = %v", n.PeakBandwidth())
	}
}

func TestFlopRate(t *testing.T) {
	t.Parallel()
	n := testNode()
	// Full node at 100% vector efficiency = peak.
	if got := n.FlopRate(8, 1.0); got != 100*units.GFlopPerSec {
		t.Errorf("full rate = %v", got)
	}
	// Half node at 50% = 25 GF/s.
	if got := n.FlopRate(4, 0.5); got != 25*units.GFlopPerSec {
		t.Errorf("half rate = %v", got)
	}
	// Floor: absurdly small efficiency is clamped above zero.
	if got := n.FlopRate(1, 1e-9); got <= 0 {
		t.Errorf("floored rate = %v", got)
	}
}

func TestPhaseTimeMemoryBound(t *testing.T) {
	t.Parallel()
	m := testModel()
	// SpMV: 1 GFLOP, 100 GB traffic on full node. Memory clearly binds:
	// 100e9 bytes / (100 GB/s × 0.8) = 1.25 s.
	w := WorkProfile{Class: SpMV, Flops: units.GFlop, Bytes: 100 * 1e9}
	got := m.PhaseTime(w, PhaseOptions{Cores: 8}).Seconds()
	if math.Abs(got-1.25) > 1e-9 {
		t.Errorf("memory-bound time = %v, want 1.25", got)
	}
	if m.Bound(w, PhaseOptions{Cores: 8}) != "memory" {
		t.Error("expected memory bound")
	}
}

func TestPhaseTimeComputeBound(t *testing.T) {
	t.Parallel()
	m := testModel()
	// GEMM: 90 GFLOP, tiny traffic. 90e9 / (100e9×0.9) = 1.0 s.
	w := WorkProfile{Class: LargeGEMM, Flops: 90 * units.GFlop, Bytes: 1000}
	got := m.PhaseTime(w, PhaseOptions{Cores: 8}).Seconds()
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("compute-bound time = %v, want 1.0", got)
	}
	if m.Bound(w, PhaseOptions{Cores: 8}) != "compute" {
		t.Error("expected compute bound")
	}
}

func TestFastMathGain(t *testing.T) {
	t.Parallel()
	m := testModel()
	w := WorkProfile{Class: LargeGEMM, Flops: 90 * units.GFlop, Bytes: 1000}
	base := m.PhaseTime(w, PhaseOptions{Cores: 8})
	fast := m.PhaseTime(w, PhaseOptions{Cores: 8, FastMath: true})
	if !(fast < base) {
		t.Errorf("fast math should be faster: base=%v fast=%v", base, fast)
	}
	// Gain 1.5 on base efficiency 0.9 caps at 1.0, so the realised
	// speedup is 1/0.9.
	ratio := base.Seconds() / fast.Seconds()
	if math.Abs(ratio-1/0.9) > 1e-6 {
		t.Errorf("fast-math speedup = %v, want %v", ratio, 1/0.9)
	}
	// Gain is capped at 100% efficiency.
	m.FastMathGain[LargeGEMM] = 100
	capped := m.PhaseTime(w, PhaseOptions{Cores: 8, FastMath: true}).Seconds()
	want := 0.9 // 90 GFLOP at full 100 GF/s peak
	if math.Abs(capped-want) > 1e-9 {
		t.Errorf("capped time = %v, want %v", capped, want)
	}
}

func TestPerCallOverhead(t *testing.T) {
	t.Parallel()
	m := testModel()
	m.Node.PerCallOverhead = units.Microsecond
	w := WorkProfile{Class: SpMV, Flops: 1, Bytes: 1, Calls: 1000}
	got := m.PhaseTime(w, PhaseOptions{Cores: 8})
	if got < units.Millisecond {
		t.Errorf("1000 calls at 1µs should cost ≥1ms, got %v", got)
	}
}

func TestUncalibratedClassFallback(t *testing.T) {
	t.Parallel()
	m := testModel()
	w := WorkProfile{Class: FFTKernel, Flops: units.GFlop, Bytes: units.GiB}
	if m.PhaseTime(w, PhaseOptions{Cores: 4}) <= 0 {
		t.Error("uncalibrated class must still cost time")
	}
}

func TestPhaseRate(t *testing.T) {
	t.Parallel()
	m := testModel()
	w := WorkProfile{Class: LargeGEMM, Flops: 90 * units.GFlop, Bytes: 1000}
	r := m.PhaseRate(w, PhaseOptions{Cores: 8})
	if math.Abs(r.GFLOPs()-90.0) > 1e-6 {
		t.Errorf("rate = %v GF/s, want 90", r.GFLOPs())
	}
}

func TestCacheTraffic(t *testing.T) {
	t.Parallel()
	cache := 8 * units.MiB
	// Fits in cache: traffic is one pass regardless of pass count.
	if got := CacheTraffic(units.MiB, 10, cache); got != units.MiB {
		t.Errorf("in-cache traffic = %v", got)
	}
	// Exceeds cache: full traffic each pass.
	if got := CacheTraffic(16*units.MiB, 10, cache); got != 160*units.MiB {
		t.Errorf("streaming traffic = %v", got)
	}
	if CacheTraffic(units.MiB, 0, cache) != 0 {
		t.Error("zero passes is zero traffic")
	}
}

// Property: phase time is monotone non-increasing in core count for a
// fixed profile (more cores never slows the model down).
func TestPhaseTimeMonotoneCores(t *testing.T) {
	t.Parallel()
	m := testModel()
	w := WorkProfile{Class: SpMV, Flops: 10 * units.GFlop, Bytes: 10 * 1e9}
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw%8) + 1
		b := int(bRaw%8) + 1
		if a > b {
			a, b = b, a
		}
		ta := m.PhaseTime(w, PhaseOptions{Cores: a})
		tb := m.PhaseTime(w, PhaseOptions{Cores: b})
		return tb <= ta
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: phase time is additive-superadditive under profile scaling:
// time(k×w) == k×time(w) exactly for this linear model (within ns
// quantisation).
func TestPhaseTimeLinearInWork(t *testing.T) {
	t.Parallel()
	m := testModel()
	f := func(kRaw uint8) bool {
		k := int64(kRaw%16) + 1
		w := WorkProfile{Class: SpMV, Flops: units.GFlop, Bytes: 1e9}
		t1 := m.PhaseTime(w, PhaseOptions{Cores: 8}).Seconds()
		tk := m.PhaseTime(w.Scale(k), PhaseOptions{Cores: 8}).Seconds()
		return math.Abs(tk-float64(k)*t1) < 1e-6*float64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTurboFactor(t *testing.T) {
	t.Parallel()
	n := testNode()
	n.TurboBoost1 = 1.4
	n.TurboFlatCores = 2
	if got := n.TurboFactor(1); got != 1.4 {
		t.Errorf("1 core boost = %v", got)
	}
	if got := n.TurboFactor(2); got != 1.4 {
		t.Errorf("flat-core boost = %v", got)
	}
	// Full node: no boost.
	if got := n.TurboFactor(8); got != 1.0 {
		t.Errorf("full-node boost = %v", got)
	}
	// Between flat and full: linear decay, monotone non-increasing.
	prev := 1.41
	for c := 1; c <= 8; c++ {
		b := n.TurboFactor(c)
		if b > prev+1e-12 {
			t.Errorf("boost increased at %d cores: %v > %v", c, b, prev)
		}
		prev = b
	}
	// No turbo configured: always 1.
	plain := testNode()
	if plain.TurboFactor(1) != 1 {
		t.Error("no-turbo node should report 1")
	}
	if n.TurboFactor(0) != 1 {
		t.Error("0 active cores should report 1")
	}
}

func TestScaleEfficiency(t *testing.T) {
	t.Parallel()
	m := testModel()
	scaled := m.ScaleEfficiency(1, 1.1, SpMV)
	base := m.Eff[SpMV]
	got := scaled.Eff[SpMV]
	if math.Abs(got.Memory-base.Memory*1.1) > 1e-12 {
		t.Errorf("memory eff = %v, want %v", got.Memory, base.Memory*1.1)
	}
	if got.Compute != base.Compute {
		t.Errorf("compute eff changed: %v", got.Compute)
	}
	// Other classes untouched.
	if scaled.Eff[LargeGEMM] != m.Eff[LargeGEMM] {
		t.Error("unrelated class modified")
	}
	// Original untouched.
	if m.Eff[SpMV] != base {
		t.Error("base model mutated")
	}
	// Capping at 1.0.
	capped := m.ScaleEfficiency(100, 100, LargeGEMM)
	if e := capped.Eff[LargeGEMM]; e.Compute != 1 || e.Memory != 1 {
		t.Errorf("capping failed: %+v", e)
	}
	// Uncalibrated class gets the fallback before scaling.
	fb := m.ScaleEfficiency(2, 1, FFTKernel)
	if fb.Eff[FFTKernel].Compute <= 0 {
		t.Error("fallback scaling broken")
	}
}
