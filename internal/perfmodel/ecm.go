// ECM (Execution-Cache-Memory) mode: an alternative to the roofline
// evaluation that prices a kernel phase as explicit per-level transfer
// phases — in-core execution, L1↔L2 traffic, L2↔memory traffic, and
// memory(HBM/DRAM) transfers — composed under architecture-specific
// overlap rules.
//
// The formulation follows the A64FX ECM study (Alappat et al.,
// "Performance Modeling of Streaming Kernels and Sparse Matrix-Vector
// Multiplication on A64FX", arXiv:2103.03013), whose headline finding
// is that the A64FX overlaps almost nothing: in-core execution and all
// data transfers serialize, so the single-core runtime is close to the
// plain sum of the phases, and multicore performance is that chain
// scaled by cores and capped by the saturated memory bandwidth. Two
// spec-declared knobs place a machine between the fully additive A64FX
// rule and the classic overlapping x86 rule:
//
//	c = ECMCoreOverlap  — fraction of in-core time that overlaps data
//	    transfers (0 = A64FX serial rule, 1 = Intel-style T_OL)
//	m = ECMMemOverlap   — fraction of the memory transfer phase hidden
//	    under the upstream (core + L1 + L2) phases
//
// With work W on n cores the phase times are
//
//	T_core = F / Pcore(n)         in-core execution at the class's
//	                              in-core efficiency (not the roofline
//	                              calibration — see ecmCoreEff)
//	T_L1   = V_L1 / (n·b_L1)      register↔L1 operand traffic
//	T_L2   = V_L2 / (n·b_L2)      L1↔L2 traffic
//	T_mem  = V_mem / B_mem(n)     memory traffic at the saturating
//	                              placement bandwidth
//
// where V_L1/V_L2 come from CacheAmplification and V_mem is the metered
// WorkProfile traffic. The composed runtime is
//
//	chain  = (1−c)·T_core + T_L1 + T_L2 + T_memlin − hidden
//	hidden = m · min(T_memlin, (1−c)·T_core + T_L1 + T_L2)
//	T      = max(c·T_core, chain, T_mem) + T_over
//
// with T_memlin the unsaturated (linear per-core) memory time: the
// per-core chains run concurrently across cores, so the chain scales
// with n until the shared memory interface saturates and T_mem takes
// over — the standard ECM multicore saturation rule.
package perfmodel

import (
	"fmt"

	"a64fxbench/internal/units"
)

// Model selects the analytic performance model that prices compute
// phases: the calibrated roofline (the default, what every paper
// artifact pins) or the ECM memory-hierarchy model.
type Model string

// The two models. The empty string means ModelRoofline everywhere.
const (
	ModelRoofline Model = "roofline"
	ModelECM      Model = "ecm"
)

// ParseModel canonicalizes a model name; the empty string is the
// roofline default.
func ParseModel(s string) (Model, error) {
	switch Model(s) {
	case "", ModelRoofline:
		return ModelRoofline, nil
	case ModelECM:
		return ModelECM, nil
	}
	return "", fmt.Errorf("perfmodel: unknown model %q (want %q or %q)", s, ModelRoofline, ModelECM)
}

// ecmCoreEff is the per-class in-core execution efficiency: the
// fraction of vector peak the kernel loop retires with all operands in
// L1. Unlike the roofline's calibrated Efficiency.Compute — which is
// fit against end-to-end measurements and therefore absorbs memory
// effects — these are literature-grounded in-core estimates in the
// spirit of the ECM model's T_core (derived from port-throughput
// analysis): streaming kernels run near peak in-core, gather-dominated
// kernels are limited by the load pipes, generated stencil code by
// instruction overhead.
var ecmCoreEff = [numKernelClasses]float64{
	SpMV:          0.45,
	SymGS:         0.35,
	DotProduct:    0.85,
	VectorOp:      0.90,
	SmallGEMM:     0.50,
	LargeGEMM:     0.85,
	StencilFD:     0.70,
	FluxFV:        0.75,
	FFTKernel:     0.60,
	GatherScatter: 0.40,
	Precond:       0.85,
}

// ECMCoreEfficiency reports the class's in-core execution efficiency
// used by the ECM model's T_core phase. Unknown classes get a
// conservative scalar-ish default.
func ECMCoreEfficiency(c KernelClass) float64 {
	if c < 0 || c >= numKernelClasses {
		return 0.25
	}
	return ecmCoreEff[c]
}

// Default per-level cache bandwidths when a machine spec declares none,
// expressed as multiples of ScalarFlopsPerCore (2 flops/cycle × clock,
// so ×32 ≡ 64 B/cycle and ×16 ≡ 32 B/cycle — typical L1 and L2 port
// widths across the study's machines).
const (
	defaultL1BytesPerScalarFlop = 32 // 64 B/cycle per core
	defaultL2BytesPerScalarFlop = 16 // 32 B/cycle per core
)

// L1Bandwidth reports the per-core L1 bandwidth the ECM model prices
// register↔L1 traffic at, falling back to 64 B/cycle when the spec
// declares none.
func (n NodeCapability) L1Bandwidth() units.ByteRate {
	if n.L1BandwidthPerCore > 0 {
		return n.L1BandwidthPerCore
	}
	return units.ByteRate(n.ScalarFlopsPerCore) * defaultL1BytesPerScalarFlop
}

// L2Bandwidth reports the per-core L1↔L2 bandwidth, falling back to
// 32 B/cycle when the spec declares none.
func (n NodeCapability) L2Bandwidth() units.ByteRate {
	if n.L2BandwidthPerCore > 0 {
		return n.L2BandwidthPerCore
	}
	return units.ByteRate(n.ScalarFlopsPerCore) * defaultL2BytesPerScalarFlop
}

// linearBandwidth is the unsaturated aggregate memory bandwidth of
// `cores` active cores: the per-core draw summed with no domain cap.
// It is ≥ PlacementBandwidth by construction, so the chain's memory
// term never exceeds the saturated one.
func (n NodeCapability) linearBandwidth(cores int) units.ByteRate {
	if cores <= 0 || len(n.Domains) == 0 {
		return 0
	}
	if cores > n.Cores {
		cores = n.Cores
	}
	return units.ByteRate(float64(cores)) * n.Domains[0].PerCoreBandwidth
}

// ECMBreakdown is the ECM model's phase split. The exact identity
//
//	Time = CoreTime + L1Time + L2Time + MemTime + Overhead − Hidden
//
// holds by construction: the four phase times are the raw (pre-overlap)
// transfer times and Hidden is the overlap credit the composition rule
// grants.
type ECMBreakdown struct {
	// Time is the composed phase duration.
	Time units.Duration
	// CoreTime is the in-core execution phase T_core.
	CoreTime units.Duration
	// L1Time and L2Time are the register↔L1 and L1↔L2 transfer phases.
	L1Time units.Duration
	L2Time units.Duration
	// MemTime is the memory transfer phase at the saturated placement
	// bandwidth (the roof the multicore chain is capped by).
	MemTime units.Duration
	// Hidden is the total time removed from the plain phase sum by the
	// overlap rules (core overlap, memory overlap, and multicore
	// concurrency of the per-core chains).
	Hidden units.Duration
	// Overhead is the per-invocation cost Calls × PerCallOverhead.
	Overhead units.Duration
	// L1Bytes and L2Bytes are the modelled per-level traffic volumes
	// (same cache model as PhaseBreakdown).
	L1Bytes units.Bytes
	L2Bytes units.Bytes
}

// clamp01 confines an overlap knob to [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ECMBreakdown evaluates the phase under the ECM memory-hierarchy
// model. The node's overlap knobs select the composition rule; the
// A64FX specs declare the no-overlap in-core / partial memory overlap
// rule the ECM paper measured.
func (m *CostModel) ECMBreakdown(w WorkProfile, opt PhaseOptions) ECMBreakdown {
	cores := opt.Cores
	if cores <= 0 {
		cores = 1
	}
	ceff := ECMCoreEfficiency(w.Class)
	if opt.FastMath {
		if g, ok := m.FastMathGain[w.Class]; ok && g > 0 {
			ceff *= g
		}
		if ceff > 1 {
			ceff = 1
		}
	}
	var bd ECMBreakdown
	bd.CoreTime = units.TimeFor(float64(w.Flops), float64(m.Node.FlopRate(cores, ceff)))
	if w.Calls > 0 {
		bd.Overhead = units.Duration(w.Calls) * m.Node.PerCallOverhead
	}

	// Per-level traffic volumes: identical cache model to the roofline
	// breakdown, so the two models disagree on time, never on bytes.
	l1PerFlop, l2Amp := CacheAmplification(w.Class)
	bd.L2Bytes = units.Bytes(float64(w.Bytes) * l2Amp)
	if bd.L2Bytes < w.Bytes {
		bd.L2Bytes = w.Bytes
	}
	bd.L1Bytes = units.Bytes(float64(w.Flops) * l1PerFlop)
	if bd.L1Bytes < bd.L2Bytes {
		bd.L1Bytes = bd.L2Bytes
	}

	nc := float64(cores)
	bd.L1Time = units.TimeFor(float64(bd.L1Bytes), nc*float64(m.Node.L1Bandwidth()))
	bd.L2Time = units.TimeFor(float64(bd.L2Bytes), nc*float64(m.Node.L2Bandwidth()))
	bd.MemTime = units.TimeFor(float64(w.Bytes), float64(m.Node.PlacementBandwidth(cores)))
	tMemLin := units.TimeFor(float64(w.Bytes), float64(m.Node.linearBandwidth(cores)))

	c := clamp01(m.Node.ECMCoreOverlap)
	mo := clamp01(m.Node.ECMMemOverlap)
	upstream := units.Duration((1-c)*float64(bd.CoreTime)) + bd.L1Time + bd.L2Time
	hiddenMem := tMemLin
	if upstream < hiddenMem {
		hiddenMem = upstream
	}
	hiddenMem = units.Duration(mo * float64(hiddenMem))
	chain := upstream + tMemLin - hiddenMem
	t := chain
	if oc := units.Duration(c * float64(bd.CoreTime)); oc > t {
		t = oc
	}
	if bd.MemTime > t {
		t = bd.MemTime
	}
	bd.Time = t + bd.Overhead
	// Derive the overlap credit so the busy-partition identity is exact
	// regardless of which term of the max won. tMemLin ≤ MemTime and
	// chain ≥ (1−c)·CoreTime guarantee Hidden ≥ 0.
	bd.Hidden = bd.CoreTime + bd.L1Time + bd.L2Time + bd.MemTime + bd.Overhead - bd.Time
	return bd
}

// ECMTime returns the composed ECM phase duration (ECMBreakdown.Time).
func (m *CostModel) ECMTime(w WorkProfile, opt PhaseOptions) units.Duration {
	return m.ECMBreakdown(w, opt).Time
}

// PhaseTimeFor prices a phase under the selected model: the roofline
// PhaseTime for ModelRoofline (and the empty default), the composed ECM
// time for ModelECM.
func (m *CostModel) PhaseTimeFor(model Model, w WorkProfile, opt PhaseOptions) units.Duration {
	if model == ModelECM {
		return m.ECMTime(w, opt)
	}
	return m.PhaseTime(w, opt)
}
