package perfmodel

import (
	"fmt"
	"testing"

	"a64fxbench/internal/units"
)

// propShapes are the work shapes the shared breakdown property suite
// sweeps for every kernel class: memory-heavy, flop-heavy, balanced,
// call-dominated, and empty.
func propShapes(c KernelClass) []WorkProfile {
	return []WorkProfile{
		{Class: c, Flops: units.GFlop, Bytes: 100 * 1e9},
		{Class: c, Flops: 90 * units.GFlop, Bytes: 1000},
		{Class: c, Flops: 3 * units.MFlop, Bytes: 24 * units.MiB},
		{Class: c, Flops: units.MFlop, Bytes: units.MiB, Calls: 1000},
		{Class: c},
	}
}

// propOptions are the evaluation option mixes the suite sweeps.
var propOptions = []PhaseOptions{
	{Cores: 1}, {Cores: 3}, {Cores: 8}, {Cores: 8, FastMath: true},
}

// propModels builds cost models across the overlap-rule space: the
// A64FX-style serial rule, a partially overlapping machine, and the
// fully overlapping classic rule.
func propModels() map[string]*CostModel {
	models := map[string]*CostModel{}
	for name, ov := range map[string][2]float64{
		"serial":  {0, 0},
		"a64fx":   {0, 0.4},
		"partial": {0.5, 0.3},
		"overlap": {1, 1},
	} {
		m := testModel()
		m.Node.ECMCoreOverlap = ov[0]
		m.Node.ECMMemOverlap = ov[1]
		models[name] = m
	}
	return models
}

// durTol is the busy-partition tolerance: phase times are integer
// nanoseconds derived from float64 math, so the partition identity must
// hold to within a couple of ulps of the largest term — i.e. single
// nanoseconds at these magnitudes.
const durTol = 2 * units.Duration(1)

func absDur(d units.Duration) units.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// TestBreakdownInvariants is the shared property suite over BOTH
// pricing models: for every kernel class, work shape, option mix and
// overlap rule,
//
//  1. every phase component is non-negative,
//  2. the busy partition sums to the modelled time (roofline:
//     FlopTime+MemStall+Overhead == Time exactly; ECM:
//     CoreTime+L1Time+L2Time+MemTime+Overhead−Hidden == Time within
//     1-ulp-scale tolerance),
//  3. the modelled traffic respects the hierarchy:
//     L1Bytes ≥ L2Bytes ≥ DRAM bytes,
//  4. the breakdown's Time equals the model's scalar phase time
//     bit-for-bit (counted and uncounted runs advance clocks
//     identically).
func TestBreakdownInvariants(t *testing.T) {
	t.Parallel()
	for name, m := range propModels() {
		for _, class := range KernelClasses() {
			name, m, class := name, m, class
			t.Run(fmt.Sprintf("%s/%v", name, class), func(t *testing.T) {
				t.Parallel()
				for _, w := range propShapes(class) {
					for _, opt := range propOptions {
						checkRoofline(t, m, w, opt)
						checkECM(t, m, w, opt)
					}
				}
			})
		}
	}
}

func checkRoofline(t *testing.T, m *CostModel, w WorkProfile, opt PhaseOptions) {
	t.Helper()
	bd := m.PhaseBreakdown(w, opt)
	if bd.FlopTime < 0 || bd.MemStall < 0 || bd.Overhead < 0 || bd.Time < 0 {
		t.Fatalf("roofline %v/%+v: negative component in %+v", w.Class, opt, bd)
	}
	if got := bd.FlopTime + bd.MemStall + bd.Overhead; got != bd.Time {
		t.Fatalf("roofline %v/%+v: partition %v != time %v", w.Class, opt, got, bd.Time)
	}
	if bd.L1Bytes < bd.L2Bytes || bd.L2Bytes < w.Bytes {
		t.Fatalf("roofline %v: traffic not monotone: L1 %v < L2 %v < DRAM %v",
			w.Class, bd.L1Bytes, bd.L2Bytes, w.Bytes)
	}
	if want := m.PhaseTimeFor(ModelRoofline, w, opt); bd.Time != want {
		t.Fatalf("roofline %v/%+v: breakdown time %v, PhaseTimeFor %v", w.Class, opt, bd.Time, want)
	}
}

func checkECM(t *testing.T, m *CostModel, w WorkProfile, opt PhaseOptions) {
	t.Helper()
	bd := m.ECMBreakdown(w, opt)
	if bd.CoreTime < 0 || bd.L1Time < 0 || bd.L2Time < 0 || bd.MemTime < 0 ||
		bd.Hidden < 0 || bd.Overhead < 0 || bd.Time < 0 {
		t.Fatalf("ecm %v/%+v: negative component in %+v", w.Class, opt, bd)
	}
	sum := bd.CoreTime + bd.L1Time + bd.L2Time + bd.MemTime + bd.Overhead - bd.Hidden
	if absDur(sum-bd.Time) > durTol {
		t.Fatalf("ecm %v/%+v: partition %v != time %v (%+v)", w.Class, opt, sum, bd.Time, bd)
	}
	if bd.L1Bytes < bd.L2Bytes || bd.L2Bytes < w.Bytes {
		t.Fatalf("ecm %v: traffic not monotone: L1 %v < L2 %v < DRAM %v",
			w.Class, bd.L1Bytes, bd.L2Bytes, w.Bytes)
	}
	if want := m.PhaseTimeFor(ModelECM, w, opt); bd.Time != want {
		t.Fatalf("ecm %v/%+v: breakdown time %v, PhaseTimeFor %v", w.Class, opt, bd.Time, want)
	}
	// The composed time never beats the pure memory roof: the saturated
	// memory phase is a hard floor of the ECM composition.
	if bd.Time < bd.MemTime {
		t.Fatalf("ecm %v/%+v: time %v below memory roof %v", w.Class, opt, bd.Time, bd.MemTime)
	}
	// Both models price the same traffic: byte-for-byte identical cache
	// volumes (the models disagree on time, never on bytes).
	rbd := m.PhaseBreakdown(w, opt)
	if bd.L1Bytes != rbd.L1Bytes || bd.L2Bytes != rbd.L2Bytes {
		t.Fatalf("ecm %v: traffic differs from roofline: L1 %v vs %v, L2 %v vs %v",
			w.Class, bd.L1Bytes, rbd.L1Bytes, bd.L2Bytes, rbd.L2Bytes)
	}
}

// TestParseModel pins the model-name canonicalization: "" and
// "roofline" are the default, "ecm" selects ECM, anything else fails
// with both valid spellings in the message.
func TestParseModel(t *testing.T) {
	t.Parallel()
	for s, want := range map[string]Model{
		"": ModelRoofline, "roofline": ModelRoofline, "ecm": ModelECM,
	} {
		got, err := ParseModel(s)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseModel("lookaside"); err == nil {
		t.Error("ParseModel(lookaside) succeeded, want error")
	}
}

// TestECMCoreEfficiency pins the in-core table's range and the
// conservative unknown-class fallback.
func TestECMCoreEfficiency(t *testing.T) {
	t.Parallel()
	for _, c := range KernelClasses() {
		if e := ECMCoreEfficiency(c); e <= 0 || e > 1 {
			t.Errorf("%v: in-core efficiency %v out of (0, 1]", c, e)
		}
	}
	if e := ECMCoreEfficiency(KernelClass(200)); e != 0.25 {
		t.Errorf("unknown class efficiency = %v, want 0.25", e)
	}
}

// TestECMOverlapRules pins the composition's direction: more overlap
// never slows a phase down, and the fully overlapping rule is bounded
// below by the largest single phase.
func TestECMOverlapRules(t *testing.T) {
	t.Parallel()
	w := WorkProfile{Class: SpMV, Flops: units.GFlop, Bytes: 8 * 1e9}
	opt := PhaseOptions{Cores: 4}
	serial := testModel()
	full := testModel()
	full.Node.ECMCoreOverlap = 1
	full.Node.ECMMemOverlap = 1
	ts, tf := serial.ECMTime(w, opt), full.ECMTime(w, opt)
	if tf > ts {
		t.Errorf("full overlap %v slower than serial %v", tf, ts)
	}
	bd := full.ECMBreakdown(w, opt)
	for _, ph := range []units.Duration{bd.CoreTime, bd.MemTime} {
		if bd.Time < ph {
			t.Errorf("full overlap time %v below phase floor %v", bd.Time, ph)
		}
	}
}
