package perfmodel

import (
	"testing"

	"a64fxbench/internal/units"
)

// TestPhaseBreakdownMatchesPhaseTime is the neutrality contract behind
// the virtual PMU: PhaseBreakdown evaluates the same roofline terms as
// PhaseTime, so bd.Time must be bit-identical for every class, shape
// and option mix — a counted run advances clocks exactly like an
// uncounted one.
func TestPhaseBreakdownMatchesPhaseTime(t *testing.T) {
	t.Parallel()
	m := testModel()
	shapes := []WorkProfile{
		{Class: SpMV, Flops: units.GFlop, Bytes: 100 * 1e9},
		{Class: LargeGEMM, Flops: 90 * units.GFlop, Bytes: 1000},
		{Class: DotProduct, Flops: 3 * units.MFlop, Bytes: 24 * units.MiB},
		{Class: StencilFD, Flops: 0, Bytes: 0},
		{Class: FFTKernel, Flops: 7 * units.MFlop, Bytes: 333},
	}
	opts := []PhaseOptions{
		{Cores: 1}, {Cores: 8}, {Cores: 8, FastMath: true}, {Cores: 3},
	}
	for _, w := range shapes {
		for _, opt := range opts {
			bd := m.PhaseBreakdown(w, opt)
			if want := m.PhaseTime(w, opt); bd.Time != want {
				t.Errorf("%v/%+v: breakdown time %v, PhaseTime %v", w.Class, opt, bd.Time, want)
			}
			if got := bd.FlopTime + bd.MemStall + bd.Overhead; got != bd.Time {
				t.Errorf("%v/%+v: components %v do not sum to %v", w.Class, opt, got, bd.Time)
			}
			if bd.MemStall < 0 || bd.FlopTime < 0 || bd.Overhead < 0 {
				t.Errorf("%v/%+v: negative component in %+v", w.Class, opt, bd)
			}
			if bd.L1Bytes < bd.L2Bytes || bd.L2Bytes < w.Bytes {
				t.Errorf("%v: cache traffic not monotone: L1 %v, L2 %v, DRAM %v",
					w.Class, bd.L1Bytes, bd.L2Bytes, w.Bytes)
			}
		}
	}
}

// TestCacheAmplification pins the per-class factors' invariants: L2
// amplification never shrinks traffic and unknown classes get the
// neutral default.
func TestCacheAmplification(t *testing.T) {
	t.Parallel()
	for _, c := range KernelClasses() {
		l1, l2 := CacheAmplification(c)
		if l1 <= 0 || l2 < 1 {
			t.Errorf("%v: amplification (%v, %v) out of range", c, l1, l2)
		}
	}
	if l1, l2 := CacheAmplification(KernelClass(200)); l1 != 8 || l2 != 1 {
		t.Errorf("unknown class default = (%v, %v), want (8, 1)", l1, l2)
	}
}
