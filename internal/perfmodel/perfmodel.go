// Package perfmodel converts metered kernel work into simulated execution
// time using a roofline-style analytic model.
//
// The model follows the classic two-bound formulation: a kernel phase
// running on n cores of a node takes
//
//	T = max( F / Peff(n),  B / Beff(n) ) + Tover
//
// where F is the double-precision flop count, B the effective main-memory
// traffic in bytes, Peff the achievable flop rate, Beff the achievable
// memory bandwidth, and Tover a small per-invocation overhead. Achievable
// rates are the hardware capability (package arch supplies those from the
// paper's Table I) scaled by per-kernel-class efficiency factors, which are
// calibrated once against published measurements (see
// internal/arch/calibration.go and DESIGN.md §4).
//
// Memory bandwidth follows a two-regime saturation curve per memory domain
// (a CMG on the A64FX, a socket elsewhere): bandwidth grows linearly with
// cores until the domain's peak is reached, then saturates. This is the
// behaviour STREAM sweeps show on all five machines in the study.
package perfmodel

import (
	"fmt"
	"math"

	"a64fxbench/internal/units"
)

// KernelClass labels the broad performance character of a kernel so the
// model can apply class-specific efficiency factors. The classes cover the
// kernels that appear in the paper's six benchmarks.
type KernelClass int

// Kernel classes used across the benchmark suite.
const (
	// SpMV is sparse matrix-vector multiplication (CSR traversal):
	// bandwidth bound with irregular access.
	SpMV KernelClass = iota
	// SymGS is the symmetric Gauss-Seidel smoother in HPCG: bandwidth
	// bound and serialised along dependencies, the slowest class.
	SymGS
	// DotProduct is a reduction over one or two vectors.
	DotProduct
	// VectorOp is an element-wise streaming vector update (AXPY, WAXPBY,
	// scaling): pure STREAM traffic.
	VectorOp
	// SmallGEMM is a dense matrix multiply on matrices far below the
	// cache-blocking sweet spot (Nekbone's element operators).
	SmallGEMM
	// LargeGEMM is a blocked dense matrix multiply near peak.
	LargeGEMM
	// StencilFD is a regular finite-difference stencil sweep as emitted
	// by code generators (OpenSBLI's OPS backend).
	StencilFD
	// FluxFV is a hand-written finite-volume flux/residual kernel
	// (COSA's harmonic-balance multigrid solver), which vectorises far
	// better than generated stencil code on the A64FX.
	FluxFV
	// FFTKernel is a fast Fourier transform butterfly pass.
	FFTKernel
	// GatherScatter is indexed copy traffic (halo packing, spectral
	// element gather/scatter).
	GatherScatter
	// Precond is a lightweight pointwise preconditioner application.
	Precond
	numKernelClasses
)

// String names the class for diagnostics and tables.
func (k KernelClass) String() string {
	switch k {
	case SpMV:
		return "spmv"
	case SymGS:
		return "symgs"
	case DotProduct:
		return "dot"
	case VectorOp:
		return "vecop"
	case SmallGEMM:
		return "small-gemm"
	case LargeGEMM:
		return "large-gemm"
	case StencilFD:
		return "stencil"
	case FluxFV:
		return "flux-fv"
	case FFTKernel:
		return "fft"
	case GatherScatter:
		return "gather-scatter"
	case Precond:
		return "precond"
	default:
		return fmt.Sprintf("kernel(%d)", int(k))
	}
}

// KernelClasses lists every class, for table-driven calibration and tests.
func KernelClasses() []KernelClass {
	out := make([]KernelClass, numKernelClasses)
	for i := range out {
		out[i] = KernelClass(i)
	}
	return out
}

// KernelClassNames lists every class name in declaration order — the
// valid key set of a machine spec's efficiency table.
func KernelClassNames() []string {
	names := make([]string, numKernelClasses)
	for i := range names {
		names[i] = KernelClass(i).String()
	}
	return names
}

// ParseKernelClass resolves a class name as produced by String (the
// spelling machine specs use); ok is false for unknown names.
func ParseKernelClass(name string) (KernelClass, bool) {
	for i := 0; i < int(numKernelClasses); i++ {
		if KernelClass(i).String() == name {
			return KernelClass(i), true
		}
	}
	return 0, false
}

// WorkProfile meters one kernel phase: the real operation counts produced
// by executing the actual numerical code.
type WorkProfile struct {
	Class KernelClass
	// Flops is the double-precision operation count.
	Flops units.Flops
	// Bytes is the effective main-memory traffic (reads+writes reaching
	// DRAM/HBM after the cache model has discounted reuse).
	Bytes units.Bytes
	// Calls is the number of kernel invocations folded into this
	// profile; it scales the per-call overhead.
	Calls int64
}

// Add accumulates another profile of the same class. Mixing classes is a
// programming error and panics, because the efficiency factors differ.
func (w *WorkProfile) Add(o WorkProfile) {
	if w.Calls == 0 && w.Flops == 0 && w.Bytes == 0 {
		w.Class = o.Class
	}
	if w.Class != o.Class {
		panic(fmt.Sprintf("perfmodel: adding %v profile into %v profile", o.Class, w.Class))
	}
	w.Flops += o.Flops
	w.Bytes += o.Bytes
	w.Calls += o.Calls
}

// Scale multiplies the profile by n (e.g. to account for repeated
// identical iterations without re-executing them).
func (w WorkProfile) Scale(n int64) WorkProfile {
	return WorkProfile{
		Class: w.Class,
		Flops: w.Flops * units.Flops(n),
		Bytes: w.Bytes * units.Bytes(n),
		Calls: w.Calls * n,
	}
}

// ArithmeticIntensity reports flops per byte of main-memory traffic.
func (w WorkProfile) ArithmeticIntensity() float64 {
	if w.Bytes <= 0 {
		return math.Inf(1)
	}
	return float64(w.Flops) / float64(w.Bytes)
}

// Efficiency holds the calibrated fraction of hardware capability a kernel
// class achieves on a particular architecture/toolchain combination.
type Efficiency struct {
	// Compute is the fraction of vector peak flops achieved when the
	// kernel is compute bound (0, 1].
	Compute float64
	// Memory is the fraction of STREAM bandwidth achieved when the
	// kernel is memory bound (0, 1].
	Memory float64
}

// Valid reports whether both factors are usable fractions.
func (e Efficiency) Valid() bool {
	return e.Compute > 0 && e.Compute <= 1 && e.Memory > 0 && e.Memory <= 1
}

// MemoryDomain describes one bandwidth domain of a node: a CMG on the
// A64FX, a socket on the x86 and ThunderX2 systems.
type MemoryDomain struct {
	// Cores sharing the domain.
	Cores int
	// PeakBandwidth is the saturated STREAM-like bandwidth of the domain.
	PeakBandwidth units.ByteRate
	// PerCoreBandwidth is the bandwidth one core can draw on its own;
	// the two-regime curve is min(n*PerCore, Peak).
	PerCoreBandwidth units.ByteRate
	// Capacity is the memory attached to this domain.
	Capacity units.Bytes
}

// Bandwidth reports the aggregate achievable bandwidth with n active cores
// in the domain, following the two-regime saturation curve.
func (d MemoryDomain) Bandwidth(n int) units.ByteRate {
	if n <= 0 {
		return 0
	}
	if n > d.Cores {
		n = d.Cores
	}
	linear := units.ByteRate(float64(n)) * d.PerCoreBandwidth
	if linear > d.PeakBandwidth {
		return d.PeakBandwidth
	}
	return linear
}

// NodeCapability is the hardware capability of one compute node as the
// cost model sees it. Package arch constructs these from Table I.
type NodeCapability struct {
	// Name identifies the node type for diagnostics.
	Name string
	// Cores is the user-visible core count per node.
	Cores int
	// PeakFlops is the maximum node double-precision flop rate
	// (Table I, "Maximum node DP GFLOP/s").
	PeakFlops units.FlopRate
	// ScalarFlops is the flop rate per core with no vectorisation at
	// all (2 flops/cycle FMA); the fast-math/vectorisation model
	// interpolates between scalar and vector peak.
	ScalarFlopsPerCore units.FlopRate
	// Domains lists the memory domains. All domains are identical on
	// every system in the study.
	Domains []MemoryDomain
	// L2PerDomain is the last-level cache per domain, used by callers'
	// cache-traffic estimates.
	L2PerDomain units.Bytes
	// PerCallOverhead is the fixed cost per kernel invocation (loop
	// setup, runtime dispatch).
	PerCallOverhead units.Duration
	// TurboBoost1 is the clock boost factor with one active core
	// relative to the all-core clock (1.0 = no turbo, the A64FX case).
	TurboBoost1 float64
	// TurboFlatCores is the active-core count up to which the full
	// boost holds; beyond it the boost decays linearly to 1.0 at the
	// full core count.
	TurboFlatCores int
	// L1BandwidthPerCore and L2BandwidthPerCore are the per-core cache
	// bandwidths the ECM model prices register↔L1 and L1↔L2 transfers
	// at; 0 selects the port-width defaults (see L1Bandwidth /
	// L2Bandwidth in ecm.go). The roofline model never reads them.
	L1BandwidthPerCore units.ByteRate
	L2BandwidthPerCore units.ByteRate
	// ECMCoreOverlap and ECMMemOverlap are the ECM composition knobs in
	// [0, 1]: the fraction of in-core time that overlaps data transfers
	// (0 = the A64FX serial rule) and the fraction of the memory phase
	// hidden under the upstream phases. See ecm.go.
	ECMCoreOverlap float64
	ECMMemOverlap  float64
}

// TurboFactor reports the clock boost when `active` cores are busy.
func (n NodeCapability) TurboFactor(active int) float64 {
	if n.TurboBoost1 <= 1 || active <= 0 {
		return 1
	}
	if active <= n.TurboFlatCores {
		return n.TurboBoost1
	}
	if active >= n.Cores || n.Cores <= n.TurboFlatCores {
		return 1
	}
	frac := float64(n.Cores-active) / float64(n.Cores-n.TurboFlatCores)
	return 1 + (n.TurboBoost1-1)*frac
}

// TotalMemory reports the node's memory capacity.
func (n NodeCapability) TotalMemory() units.Bytes {
	var total units.Bytes
	for _, d := range n.Domains {
		total += d.Capacity
	}
	return total
}

// PeakBandwidth reports the node's aggregate saturated bandwidth.
func (n NodeCapability) PeakBandwidth() units.ByteRate {
	var total units.ByteRate
	for _, d := range n.Domains {
		total += d.PeakBandwidth
	}
	return total
}

// PlacementBandwidth reports achievable aggregate bandwidth when `cores`
// cores are active, assuming the runtime pins processes round-robin across
// domains (the paper's pinning methodology, §III.a).
func (n NodeCapability) PlacementBandwidth(cores int) units.ByteRate {
	if cores <= 0 || len(n.Domains) == 0 {
		return 0
	}
	if cores > n.Cores {
		cores = n.Cores
	}
	per := cores / len(n.Domains)
	extra := cores % len(n.Domains)
	var total units.ByteRate
	for i, d := range n.Domains {
		c := per
		if i < extra {
			c++
		}
		total += d.Bandwidth(c)
	}
	return total
}

// FlopRate reports achievable flop rate with `cores` active cores at the
// given vector efficiency (fraction of the per-core share of PeakFlops).
func (n NodeCapability) FlopRate(cores int, vectorEff float64) units.FlopRate {
	if cores <= 0 || n.Cores <= 0 {
		return 0
	}
	if cores > n.Cores {
		cores = n.Cores
	}
	perCore := n.PeakFlops / units.FlopRate(n.Cores)
	eff := perCore * units.FlopRate(vectorEff)
	if eff < n.ScalarFlopsPerCore*0.05 {
		// Even scalar code retires some flops; floor the model at 5%
		// of the scalar rate to avoid pathological infinities.
		eff = n.ScalarFlopsPerCore * 0.05
	}
	return eff * units.FlopRate(cores)
}

// CostModel evaluates phase times for one node type given its calibrated
// efficiency table.
type CostModel struct {
	Node NodeCapability
	// Eff maps kernel class to calibrated efficiency on this node.
	Eff map[KernelClass]Efficiency
	// FastMathGain scales compute efficiency when the aggressive
	// compiler mode is enabled (-Kfast on Fujitsu, -ffast-math on GCC);
	// 1.0 means no gain.
	FastMathGain map[KernelClass]float64
}

// PhaseOptions modulates a phase evaluation.
type PhaseOptions struct {
	// Cores actively executing the phase on this node.
	Cores int
	// FastMath enables the aggressive-compiler efficiency gain.
	FastMath bool
}

// effFor looks up the efficiency for a class, falling back to a modest
// default so un-calibrated classes still behave plausibly.
func (m *CostModel) effFor(class KernelClass) Efficiency {
	if e, ok := m.Eff[class]; ok && e.Valid() {
		return e
	}
	return Efficiency{Compute: 0.10, Memory: 0.60}
}

// phaseTimes evaluates the three roofline terms of a phase: the flop
// term, the memory term, and the per-call overhead. PhaseTime and
// PhaseBreakdown both build on it, so the two agree bit-for-bit.
func (m *CostModel) phaseTimes(w WorkProfile, opt PhaseOptions) (tFlops, tBytes, overhead units.Duration) {
	cores := opt.Cores
	if cores <= 0 {
		cores = 1
	}
	eff := m.effFor(w.Class)
	ceff := eff.Compute
	if opt.FastMath {
		if g, ok := m.FastMathGain[w.Class]; ok && g > 0 {
			ceff *= g
		}
		if ceff > 1 {
			ceff = 1
		}
	}
	flopRate := m.Node.FlopRate(cores, ceff)
	bw := units.ByteRate(float64(m.Node.PlacementBandwidth(cores)) * eff.Memory)

	tFlops = units.TimeFor(float64(w.Flops), float64(flopRate))
	tBytes = units.TimeFor(float64(w.Bytes), float64(bw))
	if w.Calls > 0 {
		overhead = units.Duration(w.Calls) * m.Node.PerCallOverhead
	}
	return tFlops, tBytes, overhead
}

// PhaseTime returns the simulated duration of the metered phase.
func (m *CostModel) PhaseTime(w WorkProfile, opt PhaseOptions) units.Duration {
	tFlops, tBytes, overhead := m.phaseTimes(w, opt)
	t := tFlops
	if tBytes > t {
		t = tBytes
	}
	return t + overhead
}

// PhaseBreakdown splits a phase's modelled time into its roofline
// attribution — the counter-grade view the virtual PMU records. The
// identity Time = FlopTime + MemStall + Overhead holds exactly, and
// Time equals PhaseTime bit-for-bit (both evaluate the same terms).
type PhaseBreakdown struct {
	// Time is the full phase duration (== PhaseTime).
	Time units.Duration
	// FlopTime is the roofline flop term F/Peff.
	FlopTime units.Duration
	// MemStall is the memory-bound excess max(0, B/Beff − F/Peff):
	// the time the cores spend waiting on memory beyond useful compute.
	// Zero for compute-bound phases.
	MemStall units.Duration
	// Overhead is the per-invocation cost Calls × PerCallOverhead.
	Overhead units.Duration
	// L1Bytes and L2Bytes are modelled cache-level traffic estimates
	// (see CacheAmplification); the metered WorkProfile bytes are the
	// DRAM/HBM level.
	L1Bytes units.Bytes
	L2Bytes units.Bytes
}

// PhaseBreakdown evaluates the counter-grade split of a phase.
func (m *CostModel) PhaseBreakdown(w WorkProfile, opt PhaseOptions) PhaseBreakdown {
	tFlops, tBytes, overhead := m.phaseTimes(w, opt)
	bd := PhaseBreakdown{FlopTime: tFlops, Overhead: overhead}
	t := tFlops
	if tBytes > t {
		t = tBytes
		bd.MemStall = tBytes - tFlops
	}
	bd.Time = t + overhead
	l1PerFlop, l2Amp := CacheAmplification(w.Class)
	bd.L2Bytes = units.Bytes(float64(w.Bytes) * l2Amp)
	if bd.L2Bytes < w.Bytes {
		bd.L2Bytes = w.Bytes
	}
	bd.L1Bytes = units.Bytes(float64(w.Flops) * l1PerFlop)
	if bd.L1Bytes < bd.L2Bytes {
		bd.L1Bytes = bd.L2Bytes
	}
	return bd
}

// cacheAmp is the per-class cache-traffic estimate: L1 bytes per flop
// (register/L1 operand traffic) and the L2 amplification of DRAM bytes
// (cache-resident reuse that never reaches memory). These are model
// estimates in the spirit of the ECM model's per-level transfer
// volumes, not measurements: dense blocked kernels move far more cache
// than DRAM traffic, streaming kernels move almost the same at every
// level, and irregular kernels sit in between.
var cacheAmp = [numKernelClasses]struct{ l1PerFlop, l2Amp float64 }{
	SpMV:          {12, 1.5},
	SymGS:         {12, 1.6},
	DotProduct:    {8, 1.0},
	VectorOp:      {12, 1.0},
	SmallGEMM:     {16, 2.0},
	LargeGEMM:     {24, 4.0},
	StencilFD:     {16, 1.8},
	FluxFV:        {14, 1.6},
	FFTKernel:     {16, 2.0},
	GatherScatter: {16, 1.3},
	Precond:       {8, 1.0},
}

// CacheAmplification reports the class's cache-traffic model: bytes of
// L1 traffic per flop, and the L2:DRAM traffic ratio (≥ 1). Unknown
// classes get a conservative streaming profile.
func CacheAmplification(c KernelClass) (l1PerFlop, l2Amp float64) {
	if c < 0 || c >= numKernelClasses {
		return 8, 1.0
	}
	a := cacheAmp[c]
	return a.l1PerFlop, a.l2Amp
}

// PhaseRate reports the achieved flop rate of a phase (flops / PhaseTime),
// the quantity most of the paper's tables present.
func (m *CostModel) PhaseRate(w WorkProfile, opt PhaseOptions) units.FlopRate {
	t := m.PhaseTime(w, opt)
	return units.FlopRate(units.Rate(float64(w.Flops), t))
}

// Bound reports which roofline bound the phase sits under on this node:
// "memory" or "compute".
func (m *CostModel) Bound(w WorkProfile, opt PhaseOptions) string {
	cores := opt.Cores
	if cores <= 0 {
		cores = 1
	}
	eff := m.effFor(w.Class)
	flopRate := m.Node.FlopRate(cores, eff.Compute)
	bw := units.ByteRate(float64(m.Node.PlacementBandwidth(cores)) * eff.Memory)
	tFlops := units.TimeFor(float64(w.Flops), float64(flopRate))
	tBytes := units.TimeFor(float64(w.Bytes), float64(bw))
	if tBytes >= tFlops {
		return "memory"
	}
	return "compute"
}

// ScaleEfficiency returns a copy of the model with the listed classes'
// compute and memory efficiencies multiplied by the given factors (capped
// at 1.0). It models vendor-optimised kernel variants — e.g. the Intel-
// and Arm-optimised HPCG builds in the paper's Table III — without
// touching the base calibration.
func (m *CostModel) ScaleEfficiency(computeScale, memoryScale float64, classes ...KernelClass) *CostModel {
	eff := make(map[KernelClass]Efficiency, len(m.Eff))
	for k, v := range m.Eff {
		eff[k] = v
	}
	for _, c := range classes {
		e := m.effFor(c)
		e.Compute *= computeScale
		e.Memory *= memoryScale
		if e.Compute > 1 {
			e.Compute = 1
		}
		if e.Memory > 1 {
			e.Memory = 1
		}
		eff[c] = e
	}
	return &CostModel{Node: m.Node, Eff: eff, FastMathGain: m.FastMathGain}
}

// CacheTraffic estimates the main-memory traffic of a working set streamed
// `passes` times when the node's per-domain L2 can hold `resident` bytes of
// it: traffic below the cache capacity is free after the first pass.
// Kernels use this to convert touched-bytes into DRAM-bytes.
func CacheTraffic(workingSet units.Bytes, passes int, cache units.Bytes) units.Bytes {
	if passes <= 0 || workingSet <= 0 {
		return 0
	}
	if workingSet <= cache {
		// Fits in cache: one compulsory load plus final writeback is
		// charged by callers separately; re-passes are free.
		return workingSet
	}
	return workingSet * units.Bytes(passes)
}
