package netmodel

import (
	"testing"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

func TestPointToPointDilated(t *testing.T) {
	t.Parallel()
	f := NewTofuD(16)
	const bytes = units.MiB
	base := f.PointToPoint(0, 5, bytes)
	if got := f.PointToPointDilated(0, 5, bytes, 1); got != base {
		t.Errorf("dilation 1: %v != PointToPoint %v", got, base)
	}
	if got := f.PointToPointDilated(0, 5, bytes, 0.5); got != base {
		t.Errorf("dilation < 1 must clamp to PointToPoint: %v != %v", got, base)
	}
	if got := f.PointToPointDilated(0, 0, bytes, 3); got != f.PointToPoint(0, 0, bytes) {
		t.Errorf("intra-node is never dilated: got %v", got)
	}
	// Dilation 2 adds exactly one extra serialization term.
	ser := units.TimeFor(float64(bytes), float64(f.effBandwidth()))
	want := base + ser
	got := f.PointToPointDilated(0, 5, bytes, 2)
	if diff := (got - want).Seconds(); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("dilation 2 = %v, want %v", got, want)
	}
}

func TestLinkCapacity(t *testing.T) {
	t.Parallel()
	f := NewFDRInfiniBand()
	up := topo.Link{Level: topo.LevelHostUp, From: 0, To: 1}
	down := topo.Link{Level: topo.LevelHostDown, From: 1, To: 3}
	core := topo.Link{Level: topo.LevelUp, From: 0, To: 1}
	if got := f.LinkCapacity(up); got != f.InjectionBandwidth {
		t.Errorf("injection link capacity = %v, want %v", got, f.InjectionBandwidth)
	}
	if got := f.LinkCapacity(down); got != f.InjectionBandwidth {
		t.Errorf("ejection link capacity = %v, want %v", got, f.InjectionBandwidth)
	}
	if got := f.LinkCapacity(core); got != f.LinkBandwidth {
		t.Errorf("switch link capacity = %v, want %v", got, f.LinkBandwidth)
	}
	// Zero injection bandwidth falls back to the link rate.
	bare := &Fabric{LinkBandwidth: 5 * units.GBPerSec}
	if got := bare.LinkCapacity(up); got != bare.LinkBandwidth {
		t.Errorf("fallback capacity = %v, want %v", got, bare.LinkBandwidth)
	}
}

func TestOversubscribedFatTreeConstructors(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		f       *Fabric
		uplinks int
	}{
		{NewFDRInfiniBand(), 18},
		{NewOmniPath(), 16},
		{NewEDRInfiniBand(), 0}, // non-blocking
	} {
		ft, ok := tc.f.Topo.(*topo.FatTree)
		if !ok {
			t.Fatalf("%s: not a fat tree", tc.f.Name)
		}
		if ft.Uplinks != tc.uplinks {
			t.Errorf("%s: Uplinks = %d, want %d", tc.f.Name, ft.Uplinks, tc.uplinks)
		}
	}
}
