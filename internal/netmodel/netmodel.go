// Package netmodel prices inter-node communication: point-to-point
// transfers and MPI-style collectives on a given fabric.
//
// The point-to-point model is LogGP-flavoured:
//
//	T(a→b, s) = o_sw + hops(a,b)·l_hop + s / B
//
// where o_sw is the software/injection overhead of the MPI stack, l_hop
// the per-hop switch+wire latency, and B the per-link (or injection-
// limited) bandwidth. Collective costs use the standard algorithm models
// (binomial broadcast, recursive-doubling allreduce, ring allgather),
// evaluated at an effective latency derived from the topology's mean hop
// distance — what a vendor-tuned collective achieves without us modelling
// per-message routing inside the collective tree.
package netmodel

import (
	"math"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

// Fabric is a priced interconnect: topology plus link/stack parameters.
type Fabric struct {
	// Name identifies the fabric in reports, e.g. "TofuD".
	Name string
	// Topo supplies hop distances.
	Topo topo.Topology
	// SoftwareOverhead is the per-message MPI stack cost at sender plus
	// receiver (the dominant term of small-message latency).
	SoftwareOverhead units.Duration
	// HopLatency is the per-hop switch traversal plus wire time.
	HopLatency units.Duration
	// LinkBandwidth is the per-direction bandwidth of one link.
	LinkBandwidth units.ByteRate
	// InjectionBandwidth caps what one node can push into the fabric
	// regardless of path (NIC limit); 0 means same as LinkBandwidth.
	InjectionBandwidth units.ByteRate
}

// effBandwidth is the bandwidth one stream achieves.
func (f *Fabric) effBandwidth() units.ByteRate {
	bw := f.LinkBandwidth
	if f.InjectionBandwidth > 0 && f.InjectionBandwidth < bw {
		bw = f.InjectionBandwidth
	}
	return bw
}

// PointToPoint prices a message of `bytes` from node a to node b.
// Intra-node messages (a == b) cost only a reduced software overhead plus
// a memory-speed copy; MPI implementations short-circuit shared-memory
// transfers.
func (f *Fabric) PointToPoint(a, b int, bytes units.Bytes) units.Duration {
	if a == b {
		// Shared-memory path: half the stack overhead and a copy at
		// an optimistic 10 GB/s single-stream memcpy rate.
		return f.SoftwareOverhead/2 + units.TimeFor(float64(bytes), 10e9)
	}
	hops := f.Topo.Hops(a, b)
	t := f.SoftwareOverhead + units.Duration(hops)*f.HopLatency
	t += units.TimeFor(float64(bytes), float64(f.effBandwidth()))
	return t
}

// PointToPointDilated prices a message whose serialization term is
// stretched by a contention dilation factor dil ≥ 1 (computed by the
// congestion package from the link-level flow schedule). The latency
// terms are unaffected — contention queues bytes, not signal time — so
// dil == 1 reproduces PointToPoint exactly.
func (f *Fabric) PointToPointDilated(a, b int, bytes units.Bytes, dil float64) units.Duration {
	if a == b || dil <= 1 {
		return f.PointToPoint(a, b, bytes)
	}
	hops := f.Topo.Hops(a, b)
	t := f.SoftwareOverhead + units.Duration(hops)*f.HopLatency
	t += units.TimeFor(float64(bytes)*dil, float64(f.effBandwidth()))
	return t
}

// LinkCapacity prices one topology link for the contention model: host
// injection/ejection ports carry the NIC's injection bandwidth, every
// switch-level link the link bandwidth.
func (f *Fabric) LinkCapacity(l topo.Link) units.ByteRate {
	if l.Level == topo.LevelHostUp || l.Level == topo.LevelHostDown {
		if f.InjectionBandwidth > 0 {
			return f.InjectionBandwidth
		}
	}
	return f.LinkBandwidth
}

// Latency reports the zero-byte one-way latency between two nodes.
func (f *Fabric) Latency(a, b int) units.Duration {
	return f.PointToPoint(a, b, 0)
}

// effAlpha is the effective per-step latency of a collective over the
// first n nodes: software overhead plus mean-hop wire time.
func (f *Fabric) effAlpha(n int) units.Duration {
	mean := topo.MeanHops(f.Topo, n)
	return f.SoftwareOverhead + units.DurationFromSeconds(mean*f.HopLatency.Seconds())
}

// log2ceil returns ⌈log₂ n⌉ for n ≥ 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Allreduce prices an allreduce of `bytes` across `procs` processes spread
// over `nodes` nodes. Intra-node combining happens first at memory speed,
// then the inter-node phase uses Rabenseifner's algorithm for large
// payloads and recursive doubling for small ones.
func (f *Fabric) Allreduce(procs, nodes int, bytes units.Bytes) units.Duration {
	if procs <= 1 {
		return 0
	}
	var t units.Duration
	ppn := (procs + max(nodes, 1) - 1) / max(nodes, 1)
	if ppn > 1 {
		// Shared-memory tree combine within the node.
		steps := log2ceil(ppn)
		t += units.Duration(steps) * (f.SoftwareOverhead / 2)
		t += units.Duration(steps) * units.TimeFor(float64(bytes), 10e9)
	}
	if nodes > 1 {
		alpha := f.effAlpha(nodes)
		beta := float64(f.effBandwidth())
		steps := log2ceil(nodes)
		if bytes >= 64*units.KiB {
			// Rabenseifner: reduce-scatter + allgather moves
			// 2·s·(n-1)/n bytes in 2·log n latency steps.
			vol := 2 * float64(bytes) * float64(nodes-1) / float64(nodes)
			t += units.Duration(2*steps) * alpha
			t += units.TimeFor(vol, beta)
		} else {
			// Recursive doubling: log n steps of the full payload.
			t += units.Duration(steps) * (alpha + units.TimeFor(float64(bytes), beta))
		}
	}
	return t
}

// Barrier prices a barrier across procs/nodes: an allreduce of nothing.
func (f *Fabric) Barrier(procs, nodes int) units.Duration {
	return f.Allreduce(procs, nodes, 0)
}

// Bcast prices a binomial-tree broadcast of `bytes` to `procs` processes on
// `nodes` nodes.
func (f *Fabric) Bcast(procs, nodes int, bytes units.Bytes) units.Duration {
	if procs <= 1 {
		return 0
	}
	var t units.Duration
	if nodes > 1 {
		alpha := f.effAlpha(nodes)
		steps := log2ceil(nodes)
		t += units.Duration(steps) * (alpha + units.TimeFor(float64(bytes), float64(f.effBandwidth())))
	}
	ppn := (procs + max(nodes, 1) - 1) / max(nodes, 1)
	if ppn > 1 {
		steps := log2ceil(ppn)
		t += units.Duration(steps) * (f.SoftwareOverhead/2 + units.TimeFor(float64(bytes), 10e9))
	}
	return t
}

// Allgather prices a ring allgather where each process contributes `bytes`.
func (f *Fabric) Allgather(procs, nodes int, bytes units.Bytes) units.Duration {
	if procs <= 1 {
		return 0
	}
	if nodes <= 1 {
		steps := procs - 1
		return units.Duration(steps) * (f.SoftwareOverhead/2 + units.TimeFor(float64(bytes), 10e9))
	}
	alpha := f.effAlpha(nodes)
	steps := procs - 1
	return units.Duration(steps)*alpha +
		units.TimeFor(float64(bytes)*float64(steps), float64(f.effBandwidth()))
}

// Alltoall prices a pairwise-exchange all-to-all where each process sends
// `bytes` to every other process.
func (f *Fabric) Alltoall(procs, nodes int, bytes units.Bytes) units.Duration {
	if procs <= 1 {
		return 0
	}
	alpha := f.effAlpha(max(nodes, 2))
	if nodes <= 1 {
		alpha = f.SoftwareOverhead / 2
		steps := procs - 1
		return units.Duration(steps)*alpha + units.TimeFor(float64(bytes)*float64(steps), 10e9)
	}
	steps := procs - 1
	return units.Duration(steps)*alpha +
		units.TimeFor(float64(bytes)*float64(steps), float64(f.effBandwidth()))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Standard fabrics for the five systems. Latency and bandwidth parameters
// come from the interconnect literature cited in the paper: TofuD (Ajima et
// al. 2018: 6.8 GB/s links, ~0.5 µs put latency), Aries (~1.3 µs MPI
// latency, ~10 GB/s injection), FDR and EDR InfiniBand and OmniPath vendor
// figures.

// NewTofuD prices the A64FX system's Tofu Interconnect D.
func NewTofuD(nodes int) *Fabric {
	return &Fabric{
		Name:               "TofuD",
		Topo:               topo.NewTofuD(nodes),
		SoftwareOverhead:   units.Duration(900 * units.Nanosecond),
		HopLatency:         units.Duration(120 * units.Nanosecond),
		LinkBandwidth:      6.8 * units.GBPerSec,
		InjectionBandwidth: 6.8 * units.GBPerSec,
	}
}

// NewAries prices ARCHER's Cray Aries dragonfly.
func NewAries() *Fabric {
	return &Fabric{
		Name:               "Aries",
		Topo:               topo.NewAries(),
		SoftwareOverhead:   units.Duration(1100 * units.Nanosecond),
		HopLatency:         units.Duration(100 * units.Nanosecond),
		LinkBandwidth:      9.0 * units.GBPerSec,
		InjectionBandwidth: 9.0 * units.GBPerSec,
	}
}

// NewFDRInfiniBand prices Cirrus's Mellanox FDR fat tree.
func NewFDRInfiniBand() *Fabric {
	return &Fabric{
		Name: "FDR InfiniBand",
		// 2:1 oversubscribed at the leaf (18 uplinks per 36-port edge
		// switch) — Hops is unchanged, only contention sees it.
		Topo:               &topo.FatTree{NodesPerLeaf: 36, Uplinks: 18, Label: "FDR fat-tree"},
		SoftwareOverhead:   units.Duration(1200 * units.Nanosecond),
		HopLatency:         units.Duration(150 * units.Nanosecond),
		LinkBandwidth:      6.8 * units.GBPerSec, // 56 Gb/s signalling
		InjectionBandwidth: 6.0 * units.GBPerSec,
	}
}

// NewEDRInfiniBand prices Fulhame's Mellanox EDR non-blocking fat tree.
func NewEDRInfiniBand() *Fabric {
	return &Fabric{
		Name:               "EDR InfiniBand",
		Topo:               &topo.FatTree{NodesPerLeaf: 32, Label: "EDR fat-tree"},
		SoftwareOverhead:   units.Duration(1000 * units.Nanosecond),
		HopLatency:         units.Duration(130 * units.Nanosecond),
		LinkBandwidth:      12.5 * units.GBPerSec, // 100 Gb/s
		InjectionBandwidth: 11.0 * units.GBPerSec,
	}
}

// NewOmniPath prices EPCC NGIO's Intel OmniPath fabric.
func NewOmniPath() *Fabric {
	return &Fabric{
		Name: "OmniPath",
		// 2:1 oversubscribed at the leaf; EDR above stays non-blocking.
		Topo:               &topo.FatTree{NodesPerLeaf: 32, Uplinks: 16, Label: "OPA fat-tree"},
		SoftwareOverhead:   units.Duration(1300 * units.Nanosecond),
		HopLatency:         units.Duration(140 * units.Nanosecond),
		LinkBandwidth:      12.5 * units.GBPerSec, // 100 Gb/s
		InjectionBandwidth: 10.5 * units.GBPerSec,
	}
}
