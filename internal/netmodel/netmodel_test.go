package netmodel

import (
	"testing"
	"testing/quick"

	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

func testFabric() *Fabric {
	return &Fabric{
		Name:             "test",
		Topo:             &topo.FatTree{NodesPerLeaf: 2},
		SoftwareOverhead: units.Microsecond,
		HopLatency:       units.Duration(100 * units.Nanosecond),
		LinkBandwidth:    10 * units.GBPerSec,
	}
}

func TestPointToPointLatency(t *testing.T) {
	t.Parallel()
	f := testFabric()
	// Same leaf (nodes 0,1): 1µs + 2×0.1µs = 1.2µs.
	got := f.Latency(0, 1)
	want := units.Duration(1200 * units.Nanosecond)
	if got != want {
		t.Errorf("Latency(0,1) = %v, want %v", got, want)
	}
	// Cross leaf: 1µs + 4×0.1µs.
	if got := f.Latency(0, 2); got != units.Duration(1400*units.Nanosecond) {
		t.Errorf("Latency(0,2) = %v", got)
	}
}

func TestPointToPointBandwidthTerm(t *testing.T) {
	t.Parallel()
	f := testFabric()
	// 10 MB at 10 GB/s = 1 ms, dwarfing latency.
	got := f.PointToPoint(0, 2, 10*1000*1000).Seconds()
	if got < 0.001 || got > 0.0011 {
		t.Errorf("10MB transfer = %v s, want ≈0.001", got)
	}
}

func TestIntraNodeShortCircuit(t *testing.T) {
	t.Parallel()
	f := testFabric()
	intra := f.PointToPoint(3, 3, 64*units.KiB)
	inter := f.PointToPoint(0, 2, 64*units.KiB)
	if intra >= inter {
		t.Errorf("intra-node (%v) should beat inter-node (%v)", intra, inter)
	}
}

func TestInjectionCap(t *testing.T) {
	t.Parallel()
	f := testFabric()
	f.InjectionBandwidth = 1 * units.GBPerSec
	slow := f.PointToPoint(0, 2, 1000*1000*1000)
	f.InjectionBandwidth = 0
	fast := f.PointToPoint(0, 2, 1000*1000*1000)
	if slow <= fast {
		t.Errorf("injection cap should slow transfers: capped=%v uncapped=%v", slow, fast)
	}
}

func TestAllreduceScaling(t *testing.T) {
	t.Parallel()
	f := testFabric()
	// Single process: free.
	if f.Allreduce(1, 1, 8) != 0 {
		t.Error("1-process allreduce should be free")
	}
	// More nodes cost more.
	t2 := f.Allreduce(2, 2, 8)
	t16 := f.Allreduce(16, 16, 8)
	if t16 <= t2 {
		t.Errorf("allreduce should grow with node count: 2→%v 16→%v", t2, t16)
	}
	// Large payloads switch to Rabenseifner and remain finite/monotone.
	small := f.Allreduce(8, 8, 1*units.KiB)
	large := f.Allreduce(8, 8, 16*units.MiB)
	if large <= small {
		t.Errorf("large allreduce should cost more: %v vs %v", large, small)
	}
}

func TestAllreduceIntraNodeOnly(t *testing.T) {
	t.Parallel()
	f := testFabric()
	// 8 procs on one node still pay shared-memory combining.
	if f.Allreduce(8, 1, 1024) <= 0 {
		t.Error("intra-node allreduce must cost time")
	}
}

func TestBarrier(t *testing.T) {
	t.Parallel()
	f := testFabric()
	if f.Barrier(1, 1) != 0 {
		t.Error("1-proc barrier should be free")
	}
	if f.Barrier(64, 8) <= 0 {
		t.Error("multi-node barrier must cost time")
	}
	if f.Barrier(64, 8) >= f.Allreduce(64, 8, 1*units.MiB) {
		t.Error("barrier should be cheaper than a 1MB allreduce")
	}
}

func TestBcast(t *testing.T) {
	t.Parallel()
	f := testFabric()
	if f.Bcast(1, 1, 1024) != 0 {
		t.Error("1-proc bcast should be free")
	}
	small := f.Bcast(16, 4, 8)
	big := f.Bcast(16, 4, 1*units.MiB)
	if big <= small {
		t.Error("bcast should scale with payload")
	}
}

func TestAllgatherAndAlltoall(t *testing.T) {
	t.Parallel()
	f := testFabric()
	if f.Allgather(1, 1, 8) != 0 || f.Alltoall(1, 1, 8) != 0 {
		t.Error("single-proc collectives should be free")
	}
	// All-to-all moves more data than allgather per proc at same size,
	// but both use (p-1) steps; alltoall ≥ allgather does not generally
	// hold, so just check positivity and payload monotonicity.
	if f.Allgather(8, 4, 1024) <= 0 || f.Alltoall(8, 4, 1024) <= 0 {
		t.Error("collectives must cost time")
	}
	if f.Alltoall(8, 4, 1*units.MiB) <= f.Alltoall(8, 4, 1024) {
		t.Error("alltoall should scale with payload")
	}
	// Intra-node paths.
	if f.Allgather(8, 1, 1024) <= 0 || f.Alltoall(8, 1, 1024) <= 0 {
		t.Error("intra-node collectives must cost time")
	}
}

func TestStandardFabrics(t *testing.T) {
	t.Parallel()
	fabrics := []*Fabric{
		NewTofuD(48), NewAries(), NewFDRInfiniBand(), NewEDRInfiniBand(), NewOmniPath(),
	}
	for _, f := range fabrics {
		if f.Name == "" || f.Topo == nil {
			t.Errorf("fabric %+v incomplete", f)
		}
		lat := f.Latency(0, 1).Seconds()
		if lat < 0.5e-6 || lat > 5e-6 {
			t.Errorf("%s latency %v s outside credible MPI range", f.Name, lat)
		}
		// 1 MB transfer should complete in well under 1 ms on all.
		tt := f.PointToPoint(0, 1, 1000*1000).Seconds()
		if tt <= 0 || tt > 1e-3 {
			t.Errorf("%s 1MB transfer = %v s", f.Name, tt)
		}
	}
}

func TestTofuDLowerLatencyThanOmniPath(t *testing.T) {
	t.Parallel()
	// The paper observes no network penalty on the A64FX system vs NGIO;
	// our model encodes TofuD as at least as fast at small messages.
	tofu := NewTofuD(48)
	opa := NewOmniPath()
	if tofu.Latency(0, 1) > opa.Latency(0, 1) {
		t.Error("TofuD should not have worse latency than OmniPath")
	}
}

// Property: point-to-point cost is symmetric and monotone in payload.
func TestPointToPointProperties(t *testing.T) {
	t.Parallel()
	f := testFabric()
	prop := func(aRaw, bRaw uint8, s1Raw, s2Raw uint16) bool {
		a, b := int(aRaw)%16, int(bRaw)%16
		s1 := units.Bytes(s1Raw)
		s2 := units.Bytes(s2Raw)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		if f.PointToPoint(a, b, s1) != f.PointToPoint(b, a, s1) {
			return false
		}
		return f.PointToPoint(a, b, s1) <= f.PointToPoint(a, b, s2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: collective costs are monotone in process count at fixed
// payload and nodes = procs.
func TestCollectiveMonotoneProperty(t *testing.T) {
	t.Parallel()
	f := testFabric()
	prop := func(pRaw uint8) bool {
		p := int(pRaw%63) + 1
		return f.Allreduce(p, p, 1024) <= f.Allreduce(p+1, p+1, 1024)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
