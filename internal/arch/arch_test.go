package arch

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// deriveSeq makes registry IDs minted by tests unique across -count reruns.
var deriveSeq atomic.Int64

// TestTableISpecs pins the registry to the paper's Table I.
func TestTableISpecs(t *testing.T) {
	t.Parallel()
	cases := []struct {
		id        ID
		clock     float64
		coresProc int
		coresNode int
		vector    int
		peakGF    float64
		memGB     float64
	}{
		{A64FX, 2.2, 48, 48, 512, 3379, 32},
		{ARCHER, 2.7, 12, 24, 256, 518.4, 64},
		{Cirrus, 2.1, 18, 36, 256, 1209.6, 256},
		{NGIO, 2.4, 24, 48, 512, 2662.4, 192},
		{Fulhame, 2.2, 32, 64, 128, 1126.4, 256},
	}
	for _, c := range cases {
		s := MustGet(c.id)
		if s.ClockGHz != c.clock {
			t.Errorf("%s clock = %v, want %v", c.id, s.ClockGHz, c.clock)
		}
		if s.CoresPerProcessor != c.coresProc {
			t.Errorf("%s cores/proc = %d, want %d", c.id, s.CoresPerProcessor, c.coresProc)
		}
		if s.CoresPerNode() != c.coresNode {
			t.Errorf("%s cores/node = %d, want %d", c.id, s.CoresPerNode(), c.coresNode)
		}
		if s.VectorBits != c.vector {
			t.Errorf("%s vector = %d, want %d", c.id, s.VectorBits, c.vector)
		}
		if got := s.PeakNodeGFlops(); math.Abs(got-c.peakGF) > 0.01 {
			t.Errorf("%s peak = %v GF, want %v", c.id, got, c.peakGF)
		}
		gotMem := float64(s.MemoryPerNode()) / float64(units.GiB)
		if math.Abs(gotMem-c.memGB) > 0.01 {
			t.Errorf("%s memory = %v GiB, want %v", c.id, gotMem, c.memGB)
		}
	}
}

func TestMemoryPerCore(t *testing.T) {
	t.Parallel()
	// Table I: 0.66 GB/core on A64FX, 4 GB/core on NGIO.
	a := MustGet(A64FX)
	got := float64(a.MemoryPerCore()) / float64(units.GiB)
	if math.Abs(got-0.6667) > 0.01 {
		t.Errorf("A64FX memory/core = %v GiB", got)
	}
	n := MustGet(NGIO)
	if n.MemoryPerCore() != 4*units.GiB {
		t.Errorf("NGIO memory/core = %v", n.MemoryPerCore())
	}
}

func TestGetUnknown(t *testing.T) {
	t.Parallel()
	if _, err := Get("nonexistent"); err == nil {
		t.Error("expected error for unknown system")
	}
}

func TestMustGetPanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on unknown ID")
		}
	}()
	MustGet("nonexistent")
}

func TestAllOrder(t *testing.T) {
	t.Parallel()
	// Other tests may register derived systems concurrently, so assert
	// the ordering invariant rather than an exact count: the five paper
	// systems lead in IDs() order, and anything after them is sorted.
	all := All()
	if len(all) < 5 {
		t.Fatalf("All() returned %d systems, want at least 5", len(all))
	}
	for i, id := range IDs() {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].ID, id)
		}
	}
	for i := 6; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("derived systems out of order: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
}

func TestA64FXBandwidthAdvantage(t *testing.T) {
	t.Parallel()
	// The HBM2 node must have several times the bandwidth of every
	// DDR system — the paper's central architectural point.
	a := MustGet(A64FX).Node.PeakBandwidth()
	for _, id := range []ID{ARCHER, Cirrus, NGIO, Fulhame} {
		o := MustGet(id).Node.PeakBandwidth()
		if float64(a) < 3*float64(o) {
			t.Errorf("A64FX bandwidth %v not ≫ %s %v", a, id, o)
		}
	}
}

func TestFulhameStreamCitation(t *testing.T) {
	t.Parallel()
	// §II: "STREAM triad memory bandwidth in excess of 240 GB/s per
	// dual-socket node" on ThunderX2.
	bw := MustGet(Fulhame).Node.PeakBandwidth()
	if bw < 240*units.GBPerSec {
		t.Errorf("Fulhame node bandwidth %v below the cited 240 GB/s", bw)
	}
}

func TestCostModelCalibrationPresent(t *testing.T) {
	t.Parallel()
	for _, s := range All() {
		m := s.CostModel()
		if len(m.Eff) == 0 {
			t.Errorf("%s has no calibration", s.ID)
		}
		for class, e := range m.Eff {
			if !e.Valid() {
				t.Errorf("%s %v efficiency %+v invalid", s.ID, class, e)
			}
		}
		for class, g := range m.FastMathGain {
			if g <= 0 || g > 3 {
				t.Errorf("%s %v fast-math gain %v implausible", s.ID, class, g)
			}
		}
	}
}

func TestPerRankCapabilityFullNode(t *testing.T) {
	t.Parallel()
	s := MustGet(A64FX)
	// 48 ranks × 1 thread: each rank gets 1/48 of flops and bandwidth.
	cap1 := s.PerRankCapability(48, 1)
	if cap1.Cores != 1 {
		t.Errorf("rank cores = %d", cap1.Cores)
	}
	wantFlops := s.Node.PeakFlops / 48
	if math.Abs(float64(cap1.PeakFlops-wantFlops)) > 1e6 {
		t.Errorf("rank flops = %v, want %v", cap1.PeakFlops, wantFlops)
	}
	wantBW := float64(s.Node.PlacementBandwidth(48)) / 48
	if math.Abs(float64(cap1.Domains[0].PeakBandwidth)-wantBW) > 1 {
		t.Errorf("rank bw = %v, want %v", cap1.Domains[0].PeakBandwidth, wantBW)
	}
	// Memory splits evenly.
	if cap1.TotalMemory() != s.MemoryPerNode()/48 {
		t.Errorf("rank memory = %v", cap1.TotalMemory())
	}
}

func TestPerRankCapabilityHybrid(t *testing.T) {
	t.Parallel()
	s := MustGet(A64FX)
	// The paper's best minikab config: 4 ranks/node × 12 threads
	// (one per CMG). Each rank owns a CMG's worth of everything.
	c := s.PerRankCapability(4, 12)
	if c.Cores != 12 {
		t.Errorf("hybrid rank cores = %d", c.Cores)
	}
	wantBW := float64(s.Node.PlacementBandwidth(48)) / 4
	if math.Abs(float64(c.Domains[0].PeakBandwidth)-wantBW) > 1 {
		t.Errorf("hybrid rank bw = %v, want %v", c.Domains[0].PeakBandwidth, wantBW)
	}
}

func TestPerRankCapabilitySingleCore(t *testing.T) {
	t.Parallel()
	// A lone rank on an idle node sees single-core bandwidth, not the
	// saturated node bandwidth — that distinction drives Table V.
	s := MustGet(NGIO)
	c := s.PerRankCapability(1, 1)
	perCore := s.Node.Domains[0].PerCoreBandwidth
	if c.Domains[0].PeakBandwidth != perCore {
		t.Errorf("single-core bw = %v, want %v", c.Domains[0].PeakBandwidth, perCore)
	}
}

func TestPerRankModelUsesCalibration(t *testing.T) {
	t.Parallel()
	m := MustGet(A64FX).PerRankModel(48, 1)
	w := perfmodel.WorkProfile{Class: perfmodel.SpMV, Flops: units.GFlop, Bytes: 1e9}
	if m.PhaseTime(w, perfmodel.PhaseOptions{Cores: 1}) <= 0 {
		t.Error("per-rank model must produce positive times")
	}
}

func TestPerRankDegenerateArgs(t *testing.T) {
	t.Parallel()
	s := MustGet(ARCHER)
	c := s.PerRankCapability(0, 0)
	if c.Cores != 1 || c.TotalMemory() != s.MemoryPerNode() {
		t.Errorf("degenerate per-rank capability %+v", c)
	}
}

func TestToolchainsTableII(t *testing.T) {
	t.Parallel()
	rows := Toolchains()
	if len(rows) < 20 {
		t.Fatalf("Table II has %d rows, expected ≥20", len(rows))
	}
	// Spot-check the A64FX HPCG row.
	tc, ok := ToolchainFor("HPCG", A64FX)
	if !ok {
		t.Fatal("missing HPCG/A64FX toolchain")
	}
	if tc.Compiler != "Fujitsu 1.2.24" || !tc.HasFastMath() {
		t.Errorf("HPCG/A64FX row wrong: %+v", tc)
	}
	// OpenSBLI has no A64FX row in the paper.
	if _, ok := ToolchainFor("OpenSBLI", A64FX); ok {
		t.Error("paper's Table II has no OpenSBLI/A64FX row")
	}
	// Benchmark groups in paper order.
	groups := ToolchainBenchmarks()
	want := []string{"HPCG", "minikab", "nekbone", "CASTEP", "COSA", "OpenSBLI"}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v", groups)
	}
	for i := range want {
		if groups[i] != want[i] {
			t.Errorf("group[%d] = %s, want %s", i, groups[i], want[i])
		}
	}
}

func TestHasFastMathDetection(t *testing.T) {
	t.Parallel()
	cases := []struct {
		flags string
		want  bool
	}{
		{"-O3 -Kfast", true},
		{"-O3 -ffast-math", true},
		{"-Ofast", true},
		{"-O3 -xCore-AVX512", false},
		{"", false},
	}
	for _, c := range cases {
		tc := Toolchain{Flags: c.flags}
		if got := tc.HasFastMath(); got != c.want {
			t.Errorf("HasFastMath(%q) = %v, want %v", c.flags, got, c.want)
		}
	}
}

func TestFabricConstruction(t *testing.T) {
	t.Parallel()
	for _, s := range All() {
		f := s.NewFabric(16)
		if f == nil || f.Topo == nil {
			t.Errorf("%s fabric construction failed", s.ID)
		}
		if f.Latency(0, 1) <= 0 {
			t.Errorf("%s fabric has non-positive latency", s.ID)
		}
	}
}

func TestCalibrationAccessors(t *testing.T) {
	t.Parallel()
	if Efficiencies(A64FX) == nil {
		t.Error("Efficiencies(A64FX) missing")
	}
	if FastMathGains(A64FX) == nil {
		t.Error("FastMathGains(A64FX) missing")
	}
	// The A64FX fast-math gain on SmallGEMM is the Table VI anchor: the
	// end-to-end Nekbone gain is 312.34/175.74 ≈ 1.78, which needs a
	// larger per-kernel gain once the non-ax phases are accounted for.
	if g := FastMathGains(A64FX)[perfmodel.SmallGEMM]; g < 1.78 || g > 2.6 {
		t.Errorf("A64FX SmallGEMM gain = %v, outside calibrated range", g)
	}
	// NGIO loses performance with fast math (Table VI).
	if g := FastMathGains(NGIO)[perfmodel.SmallGEMM]; g >= 1 {
		t.Errorf("NGIO SmallGEMM gain = %v, want <1", g)
	}
}

func TestDerive(t *testing.T) {
	t.Parallel()
	// Unique per invocation so -count=N reruns in one process don't
	// collide in the global registry.
	did := ID(fmt.Sprintf("A64FX-test-derive-%d", deriveSeq.Add(1)))
	d, err := Derive(A64FX, did, func(s *System) {
		s.Node.Domains[0].PeakBandwidth *= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	base := MustGet(A64FX)
	// Mutation applied to the copy only.
	if d.Node.Domains[0].PeakBandwidth != 2*base.Node.Domains[0].PeakBandwidth {
		t.Error("mutation missing on derived system")
	}
	if base.Node.Domains[0].PeakBandwidth == d.Node.Domains[0].PeakBandwidth {
		t.Error("base system mutated")
	}
	// Calibration inherited.
	if len(d.CostModel().Eff) == 0 {
		t.Error("derived system has no calibration")
	}
	// Registered and retrievable.
	if got := MustGet(did); got != d {
		t.Error("derived system not registered")
	}
	// Duplicates rejected.
	if _, err := Derive(A64FX, did, nil); err == nil {
		t.Error("duplicate derive should fail")
	}
	if _, err := Derive("nonexistent", "x", nil); err == nil {
		t.Error("unknown base should fail")
	}
}

func TestSetEfficienciesGuard(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("overwriting base calibration should panic")
		}
	}()
	SetEfficiencies(A64FX, nil)
}

func TestNUMASpanningPenalty(t *testing.T) {
	t.Parallel()
	s := MustGet(A64FX)
	// One rank per CMG (12 threads): no penalty.
	within := s.PerRankCapability(4, 12)
	// One rank spanning all four CMGs (48 threads).
	spanning := s.PerRankCapability(1, 48)
	// Per-node bandwidth: within-CMG layout keeps the full node rate;
	// the spanning layout pays the cross-domain penalty.
	withinNode := 4 * float64(within.Domains[0].PeakBandwidth)
	spanningNode := float64(spanning.Domains[0].PeakBandwidth)
	if spanningNode >= withinNode {
		t.Errorf("spanning layout (%v) should trail per-CMG layout (%v)",
			spanningNode, withinNode)
	}
	if spanningNode < 0.5*withinNode {
		t.Errorf("penalty implausibly harsh: %v vs %v", spanningNode, withinNode)
	}
}

func TestTurboUnderpopulated(t *testing.T) {
	t.Parallel()
	// A single active core on NGIO clocks up; a full node does not.
	s := MustGet(NGIO)
	one := s.PerRankCapability(1, 1)
	perCoreFull := float64(s.Node.PeakFlops) / float64(s.Node.Cores)
	if float64(one.PeakFlops) <= perCoreFull {
		t.Error("single-core run should see turbo boost")
	}
	full := s.PerRankCapability(48, 1)
	if float64(full.PeakFlops)*48 > float64(s.Node.PeakFlops)*1.0001 {
		t.Error("full node must not exceed spec peak")
	}
	// The A64FX has no turbo.
	a := MustGet(A64FX)
	aOne := a.PerRankCapability(1, 1)
	if float64(aOne.PeakFlops) > float64(a.Node.PeakFlops)/48*1.0001 {
		t.Error("A64FX has no turbo; single-core peak should be 1/48 of node")
	}
}
