// Package arch describes the five benchmarking systems of the study
// exactly as the paper's Table I specifies them: processor, clock, core
// counts, vector width, peak flops, memory, plus the memory-domain
// structure (CMGs on the A64FX, sockets elsewhere) and interconnect that
// the performance model needs.
//
// It also carries the Table II toolchain metadata and the calibrated
// per-kernel efficiency tables (calibration.go) that turn hardware
// capability into achievable rates.
package arch

import (
	"fmt"
	"sort"
	"sync"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// ID names one of the five benchmarked systems.
type ID string

// The five systems of the study.
const (
	A64FX   ID = "A64FX"
	ARCHER  ID = "ARCHER"
	Cirrus  ID = "Cirrus"
	NGIO    ID = "EPCC NGIO"
	Fulhame ID = "Fulhame"
)

// IDs lists the systems in the paper's column order.
func IDs() []ID { return []ID{A64FX, ARCHER, Cirrus, NGIO, Fulhame} }

// System is a complete machine description: one node's capability, the
// node count, and the interconnect.
type System struct {
	// ID is the canonical system name.
	ID ID
	// Description is the one-line platform summary from §IV.
	Description string
	// Processor is the CPU product name.
	Processor string
	// Microarch is the microarchitecture label used in Table I.
	Microarch string
	// ClockGHz is the processor clock in GHz.
	ClockGHz float64
	// CoresPerProcessor and ProcessorsPerNode multiply to cores/node.
	CoresPerProcessor int
	ProcessorsPerNode int
	// ThreadsPerCore is Table I's SMT description (informational; the
	// study pins one process/thread per core throughout).
	ThreadsPerCore string
	// VectorBits is the SIMD width.
	VectorBits int
	// Node is the capability model fed to the roofline.
	Node perfmodel.NodeCapability
	// MaxNodes is the machine (or benchmark-accessible) node count.
	MaxNodes int
	// NewFabric constructs the interconnect model for a job of the
	// given node count.
	NewFabric func(nodes int) *netmodel.Fabric
}

// CoresPerNode reports the user-visible cores per node.
func (s *System) CoresPerNode() int { return s.CoresPerProcessor * s.ProcessorsPerNode }

// MemoryPerNode reports the node memory capacity.
func (s *System) MemoryPerNode() units.Bytes { return s.Node.TotalMemory() }

// MemoryPerCore reports bytes of memory per user core.
func (s *System) MemoryPerCore() units.Bytes {
	c := s.CoresPerNode()
	if c == 0 {
		return 0
	}
	return s.MemoryPerNode() / units.Bytes(c)
}

// PeakNodeGFlops reports Table I's "Maximum node DP GFLOP/s".
func (s *System) PeakNodeGFlops() float64 { return s.Node.PeakFlops.GFLOPs() }

// CostModel builds the calibrated roofline model for this system's nodes.
func (s *System) CostModel() *perfmodel.CostModel {
	eff, gains := calibration(s.ID)
	return &perfmodel.CostModel{
		Node:         s.Node,
		Eff:          eff,
		FastMathGain: gains,
	}
}

// PerRankCapability returns the slice of a node's capability that one MPI
// rank owns when the node runs ranksPerNode ranks of threadsPerRank
// threads each, pinned round-robin across memory domains (the paper's
// methodology, §III.a). The returned capability treats the rank as a
// one-domain mini-node, which is exact for the symmetric workloads in the
// study.
func (s *System) PerRankCapability(ranksPerNode, threadsPerRank int) perfmodel.NodeCapability {
	if ranksPerNode < 1 {
		ranksPerNode = 1
	}
	if threadsPerRank < 1 {
		threadsPerRank = 1
	}
	active := ranksPerNode * threadsPerRank
	if active > s.Node.Cores {
		active = s.Node.Cores
	}
	totalBW := s.Node.PlacementBandwidth(active)
	rankBW := units.ByteRate(float64(totalBW) / float64(ranksPerNode))
	// NUMA penalty: a rank whose threads span multiple memory domains
	// (CMGs on the A64FX, sockets elsewhere) pays for cross-domain
	// traffic over the on-chip ring/interconnect. This is why one rank
	// per CMG with 12 threads is the paper's best minikab layout.
	if nd := len(s.Node.Domains); nd > 0 {
		coresPerDomain := s.Node.Cores / nd
		if coresPerDomain > 0 && threadsPerRank > coresPerDomain {
			spans := (threadsPerRank + coresPerDomain - 1) / coresPerDomain
			rankBW = units.ByteRate(float64(rankBW) / (1 + 0.15*float64(spans-1)))
		}
	}
	// Underpopulated nodes clock up (turbo); the factor decays to 1 as
	// the node fills, so fully-populated calibration anchors are
	// unaffected.
	boost := s.Node.TurboFactor(active)
	perCoreFlops := s.Node.PeakFlops / units.FlopRate(s.Node.Cores) * units.FlopRate(boost)

	totalL2 := s.Node.L2PerDomain * units.Bytes(len(s.Node.Domains))
	l2Share := totalL2 / units.Bytes(ranksPerNode)
	if l2Share > totalL2 {
		l2Share = totalL2
	}

	return perfmodel.NodeCapability{
		Name:               fmt.Sprintf("%s[%dx%d]", s.ID, ranksPerNode, threadsPerRank),
		Cores:              threadsPerRank,
		PeakFlops:          perCoreFlops * units.FlopRate(threadsPerRank),
		ScalarFlopsPerCore: s.Node.ScalarFlopsPerCore,
		Domains: []perfmodel.MemoryDomain{{
			Cores:            threadsPerRank,
			PeakBandwidth:    rankBW,
			PerCoreBandwidth: units.ByteRate(float64(rankBW) / float64(threadsPerRank)),
			Capacity:         s.MemoryPerNode() / units.Bytes(ranksPerNode),
		}},
		L2PerDomain:     l2Share,
		PerCallOverhead: s.Node.PerCallOverhead,
		// The ECM per-core cache bandwidths and overlap knobs are
		// per-core quantities; they survive rank slicing unchanged.
		L1BandwidthPerCore: s.Node.L1BandwidthPerCore,
		L2BandwidthPerCore: s.Node.L2BandwidthPerCore,
		ECMCoreOverlap:     s.Node.ECMCoreOverlap,
		ECMMemOverlap:      s.Node.ECMMemOverlap,
	}
}

// PerRankModel builds a calibrated cost model for one rank's share of a
// node under the given process/thread layout.
func (s *System) PerRankModel(ranksPerNode, threadsPerRank int) *perfmodel.CostModel {
	return s.PerRankModelWith(nil, nil, ranksPerNode, threadsPerRank)
}

// PerRankModelWith is PerRankModel with explicit calibration tables in
// place of the system's registered ones (nil eff means "use the
// registered calibration"). The calibration protocol iterates candidate
// tables through this without ever touching the registry.
func (s *System) PerRankModelWith(eff map[perfmodel.KernelClass]perfmodel.Efficiency, gains map[perfmodel.KernelClass]float64, ranksPerNode, threadsPerRank int) *perfmodel.CostModel {
	if eff == nil {
		eff, gains = calibration(s.ID)
	}
	return &perfmodel.CostModel{
		Node:         s.PerRankCapability(ranksPerNode, threadsPerRank),
		Eff:          eff,
		FastMathGain: gains,
	}
}

// Derive registers a new system modelled on an existing one: the base
// system's description and calibration are copied, then mutate may adjust
// any field (memory domains, clock, interconnect, ...). This is the
// entry point for ablation studies — e.g. "A64FX with DDR4 instead of
// HBM2" — which inherit the base machine's kernel efficiencies.
func Derive(base ID, newID ID, mutate func(*System)) (*System, error) {
	regMu.Lock()
	defer regMu.Unlock()
	return deriveLocked(base, newID, mutate, nil)
}

// DeriveOrGet returns the already-registered system newID, or atomically
// derives it from base as Derive would. When eff is non-nil it becomes
// the new system's calibration table, installed under the same lock so no
// concurrent reader ever observes the system with the base calibration.
// Concurrency-safe: two goroutines racing to create the same ablation
// system both receive the one registered copy.
func DeriveOrGet(base ID, newID ID, mutate func(*System), eff map[perfmodel.KernelClass]perfmodel.Efficiency) (*System, error) {
	regMu.Lock()
	defer regMu.Unlock()
	if s, ok := systems[newID]; ok {
		return s, nil
	}
	return deriveLocked(base, newID, mutate, eff)
}

// deriveLocked implements Derive; regMu must be held.
func deriveLocked(base ID, newID ID, mutate func(*System), eff map[perfmodel.KernelClass]perfmodel.Efficiency) (*System, error) {
	b, ok := systems[base]
	if !ok {
		return nil, fmt.Errorf("arch: unknown system %q", base)
	}
	if _, dup := systems[newID]; dup {
		return nil, fmt.Errorf("arch: system %q already exists", newID)
	}
	s := *b
	s.ID = newID
	// Deep-copy the memory domains so mutations don't alias the base.
	s.Node.Domains = append([]perfmodel.MemoryDomain(nil), b.Node.Domains...)
	if mutate != nil {
		mutate(&s)
	}
	if eff != nil {
		efficiencies[newID] = eff
		fastMathGains[newID] = fastMathGains[base]
	} else if _, ok := efficiencies[newID]; !ok {
		// Share the base calibration under the new ID.
		efficiencies[newID] = efficiencies[base]
		fastMathGains[newID] = fastMathGains[base]
	}
	registerLocked(&s)
	return &s, nil
}

// systems holds the registry, keyed by ID. regMu guards it together with
// the calibration maps in calibration.go: the five base systems are
// registered at init, but ablation studies (Derive) extend all three maps
// at run time, possibly from concurrent sweep workers.
var (
	regMu   sync.RWMutex
	systems = map[ID]*System{}
)

func register(s *System) *System {
	regMu.Lock()
	defer regMu.Unlock()
	return registerLocked(s)
}

func registerLocked(s *System) *System {
	if _, dup := systems[s.ID]; dup {
		panic("arch: duplicate system " + string(s.ID))
	}
	systems[s.ID] = s
	return s
}

// Get returns the system with the given ID.
func Get(id ID) (*System, error) {
	regMu.RLock()
	s, ok := systems[id]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("arch: unknown system %q", id)
	}
	return s, nil
}

// MustGet is Get for known-constant IDs; it panics on failure.
func MustGet(id ID) *System {
	s, err := Get(id)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every registered system in the paper's column order, then
// any extras sorted by name.
func All() []*System {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []*System
	seen := map[ID]bool{}
	for _, id := range IDs() {
		if s, ok := systems[id]; ok {
			out = append(out, s)
			seen[id] = true
		}
	}
	var rest []*System
	for id, s := range systems {
		if !seen[id] {
			rest = append(rest, s)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	return append(out, rest...)
}

// The five machines of the study are no longer hard-coded here: they
// load from the embedded machine specs in internal/spec/specs/*.json
// (machines.go), the same declarative format users extend with
// `-specs DIR`. A neutrality test pins the loaded systems bit-for-bit
// against the paper's Table-I values.
