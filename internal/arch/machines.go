package arch

import (
	"fmt"

	"a64fxbench/internal/spec"
)

// The registry is spec-backed: the five Table-I systems load from the
// embedded machine specs at init, and any machine a user declares in
// JSON (spec files, inline request specs) registers through the same
// path. Specs are the data source; System stays the model-facing view.

// machineSpecs records the compiled spec behind each spec-backed
// system, keyed by ID; guarded by regMu with the other registry maps.
var machineSpecs = map[ID]*spec.Machine{}

func init() {
	for _, m := range spec.Embedded() {
		if _, err := RegisterMachine(m); err != nil {
			panic("arch: embedded spec: " + err.Error())
		}
	}
}

// RegisterMachine installs a compiled machine spec as a System,
// including its calibration tables. Registration is idempotent by spec
// digest: the same machine registers once, while a same-name machine
// with different content is an error — names stay injective to specs
// for the process lifetime, so artifact caches may key on the name.
func RegisterMachine(m *spec.Machine) (*System, error) {
	regMu.Lock()
	defer regMu.Unlock()
	id := ID(m.Name())
	if s, ok := systems[id]; ok {
		prev, specBacked := machineSpecs[id]
		if specBacked && prev.Digest() == m.Digest() {
			return s, nil
		}
		if specBacked {
			return nil, fmt.Errorf("arch: machine %q already registered with a different spec (digest %.12s vs %.12s)",
				id, prev.Digest(), m.Digest())
		}
		return nil, fmt.Errorf("arch: machine %q collides with a non-spec system of the same name", id)
	}
	s := &System{
		ID:                id,
		Description:       m.Spec.Description,
		Processor:         m.Spec.Processor,
		Microarch:         m.Spec.Microarch,
		ClockGHz:          m.Spec.ClockGHz,
		CoresPerProcessor: m.Spec.CoresPerProcessor,
		ProcessorsPerNode: m.Spec.ProcessorsPerNode,
		ThreadsPerCore:    m.Spec.ThreadsPerCore,
		VectorBits:        m.Spec.VectorBits,
		MaxNodes:          m.Spec.MaxNodes,
		Node:              m.Node,
		NewFabric:         m.NewFabric,
	}
	efficiencies[id] = m.Efficiency
	fastMathGains[id] = m.FastMathGain
	machineSpecs[id] = m
	registerLocked(s)
	return s, nil
}

// MachineSpec returns the compiled spec behind a spec-backed system;
// ok is false for systems created by Derive or legacy registration.
func MachineSpec(id ID) (*spec.Machine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := machineSpecs[id]
	return m, ok
}
