package arch

// Table II of the paper: compilers, compiler flags and libraries used for
// each benchmark on each system. In the simulation these records are
// metadata — the semantic effects (vectorisation quality, fast-math
// behaviour) are carried by the calibration tables — but they are
// reproduced in full so the harness can regenerate Table II and so the
// fast-math flag detection is data-driven rather than hard-coded.

import "strings"

// Toolchain is one row of Table II.
type Toolchain struct {
	// Benchmark is the application name as Table II groups it.
	Benchmark string
	// System the row applies to.
	System ID
	// Compiler is the compiler and version string.
	Compiler string
	// Flags is the compile flag set.
	Flags string
	// Libraries lists MPI and numerical libraries.
	Libraries []string
}

// HasFastMath reports whether the flag set enables aggressive FP
// optimisation (-Kfast on Fujitsu, -ffast-math on GCC/Clang, -Ofast).
func (t Toolchain) HasFastMath() bool {
	return strings.Contains(t.Flags, "-Kfast") ||
		strings.Contains(t.Flags, "-ffast-math") ||
		strings.Contains(t.Flags, "-Ofast")
}

// toolchains is Table II verbatim (whitespace normalised).
var toolchains = []Toolchain{
	// HPCG
	{"HPCG", A64FX, "Fujitsu 1.2.24", "-Nnoclang -O3 -Kfast", []string{"Fujitsu MPI"}},
	{"HPCG", ARCHER, "Intel 17", "-O3", []string{"Cray MPI"}},
	{"HPCG", Cirrus, "Intel 17", "-O3 -cxx=icpc -qopt-zmm-usage=high", []string{"HPE MPI"}},
	{"HPCG", NGIO, "Intel 19", "-O3 -cxx=icpc -xCore-AVX512 -qopt-zmm-usage=high", []string{"Intel MPI"}},
	{"HPCG", Fulhame, "GCC 8.2", "-O3 -ffast-math -funroll-loops -std=c++11 -ffp-contract=fast -mcpu=native", []string{"OpenMPI"}},

	// minikab
	{"minikab", A64FX, "Fujitsu 1.2.25",
		"-O3 -Kopenmp -Kfast -KA64FX -KSVE -KARMV8_3_A -Kassume=noshortloop -Kassume=memory_bandwidth -Kassume=notime_saving_compilation",
		[]string{"Fujitsu MPI"}},
	{"minikab", NGIO, "Intel 19", "-O3 -warn all", []string{"Intel MPI library"}},
	{"minikab", Fulhame, "Arm Clang 20", "-O3 -armpl -mcpu=native -fopenmp", []string{"OpenMPI", "ArmPL"}},

	// nekbone
	{"nekbone", A64FX, "Fujitsu 1.2.24",
		"-CcdRR8 -Cpp -Fixed -O3 -Kfast -KA64FX -KSVE -KARMV8_3_A -Kassume=noshortloop -Kassume=memory_bandwidth -Kassume=notime_saving_compilation",
		[]string{"Fujitsu MPI"}},
	{"nekbone", ARCHER, "GCC 6.3", "-fdefault-real-8 -O3", []string{"Cray MPICH2 library 7.5.5"}},
	{"nekbone", NGIO, "Intel 19.03", "-fdefault-real-8 -O3", []string{"Intel MPI 19.3"}},
	{"nekbone", Fulhame, "GNU 8.2", "-fdefault-real-8 -O3", []string{"OpenMPI 4.0.2"}},

	// CASTEP
	{"CASTEP", A64FX, "Fujitsu 1.2.24", "-O3", []string{"Fujitsu MPI", "Fujitsu SSL2", "FFTW 3.3.3"}},
	{"CASTEP", ARCHER, "GCC 6.2",
		"-fconvert=big-endian -fno-realloc-lhs -fopenmp -fPIC -O3 -funroll-loops -ftree-loop-distribution -g -fbacktrace",
		[]string{"Cray MPICH2 library 7.5.5", "Intel MKL 17.0.0.098", "FFTW 3.3.4.11"}},
	{"CASTEP", Cirrus, "Intel 17", "-O3 -debug minimal -traceback -xHost",
		[]string{"SGI MPT 2.16", "Intel MKL 17", "FFTW 3.3.5"}},
	{"CASTEP", NGIO, "Intel 17", "-O3 -debug minimal -traceback -xHost",
		[]string{"Intel MPI library 17.4", "Intel MKL 17.4", "FFTW 3.3.3"}},
	{"CASTEP", Fulhame, "GCC 8.2",
		"-fconvert=big-endian -fno-realloc-lhs -fopenmp -fPIC -O3 -funroll-loops -ftree-loop-distribution -g -fbacktrace",
		[]string{"HPE MPT MPI library (v2.20)", "ARM Performance Libraries 19.0.0", "FFTW 3.3.8"}},

	// COSA
	{"COSA", A64FX, "Fujitsu 1.2.24",
		"-X9 -Fwide -Cfpp -Cpp -m64 -Ad -O3 -Kfast -KA64FX -KSVE -KARMV8_3_A -Kassume=noshortloop -Kassume=memory_bandwidth -Kassume=notime_saving_compilation",
		[]string{"Fujitsu MPI", "Fujitsu SSL2", "FFTW 3.3.3"}},
	{"COSA", ARCHER, "GNU 7.2",
		"-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer -ftree-vectorize -O3 -ffixed-line-length-132",
		[]string{"Cray MPI library (v7.5.5)", "Cray LibSci (v16.11.1)"}},
	{"COSA", Cirrus, "GNU 8.2",
		"-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer -ftree-vectorize -O3 -ffixed-line-length-132",
		[]string{"SGI MPT 2.16", "Intel MKL 17.0.2.174"}},
	{"COSA", NGIO, "Intel 18",
		"-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer -ftree-vectorize -O3 -ffixed-line-length-132",
		[]string{"Intel MPI", "Intel MKL 18"}},
	{"COSA", Fulhame, "GNU 8.2",
		"-g -fdefault-double-8 -fdefault-real-8 -fcray-pointer -ftree-vectorize -O3 -ffixed-line-length-132",
		[]string{"HPE MPT MPI library (v2.20)", "ARM Performance Libraries (v19.0.0)"}},

	// OpenSBLI (the paper has no A64FX row in Table II; its A64FX runs
	// used the OPS C backend with the Fujitsu C compiler at -O3).
	{"OpenSBLI", ARCHER, "Cray Compiler v8.5.8", "-O3 -hgnu",
		[]string{"Cray MPICH2 (v7.5.2)", "HDF5 (v1.10.0.1)"}},
	{"OpenSBLI", Cirrus, "Intel 17.0.2.174", "-O3 -ipo -restrict -fno-alias",
		[]string{"SGI MPT 2.16", "HDF5 1.10.1"}},
	{"OpenSBLI", NGIO, "Intel 17.4", "-O3 -ipo -restrict -fno-alias",
		[]string{"Intel MPI 17.4", "HDF5 1.10.1"}},
	{"OpenSBLI", Fulhame, "Arm Clang 19.0.0", "-O3 -std=c99 -fPIC -Wall",
		[]string{"OpenMPI 4.0.0", "HDF5 1.10.4"}},
}

// Toolchains returns every Table II row in the paper's order.
func Toolchains() []Toolchain {
	out := make([]Toolchain, len(toolchains))
	copy(out, toolchains)
	return out
}

// ToolchainFor finds the Table II row for a benchmark/system pair; ok is
// false when the paper has no such row (e.g. OpenSBLI on A64FX).
func ToolchainFor(benchmark string, sys ID) (Toolchain, bool) {
	for _, t := range toolchains {
		if t.Benchmark == benchmark && t.System == sys {
			return t, true
		}
	}
	return Toolchain{}, false
}

// ToolchainBenchmarks lists the benchmark groups of Table II in order.
func ToolchainBenchmarks() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range toolchains {
		if !seen[t.Benchmark] {
			out = append(out, t.Benchmark)
			seen[t.Benchmark] = true
		}
	}
	return out
}
