package arch

import "a64fxbench/internal/perfmodel"

// This file holds the calibrated kernel-efficiency tables — the only free
// parameters of the performance model (DESIGN.md §4). Hardware capability
// (clocks, peaks, bandwidths) lives in systems.go and comes from Table I;
// the numbers below express what fraction of that capability each kernel
// class achieves on each architecture with the paper's toolchains
// (Table II), calibrated once against the paper's published single-node
// measurements. Everything else the harness reports — multi-node scaling,
// process/thread sweeps, crossover points — is model prediction.
//
// Calibration anchors:
//   - Table III (single-node HPCG) pins SymGS/SpMV memory efficiency.
//   - Table V (single-core minikab) pins single-stream SpMV behaviour.
//   - Table VI (Nekbone ± fast math) pins SmallGEMM compute efficiency and
//     the Fujitsu -Kfast gain (and the slight fast-math *loss* on NGIO).
//   - Table IX (CASTEP) pins FFT/LargeGEMM efficiency.
//   - Table X (OpenSBLI) pins the StencilFD penalty the paper traces to
//     instruction-fetch stalls and L2 behaviour on the A64FX.

// eff is shorthand for an Efficiency literal.
func eff(compute, memory float64) perfmodel.Efficiency {
	return perfmodel.Efficiency{Compute: compute, Memory: memory}
}

// The tables themselves are data, not code: each machine spec's
// "efficiency" and "fast_math_gain" sections (internal/spec/specs for
// the five Table-I systems) install here via RegisterMachine. The
// calibration anchors these numbers encode:
//   - Table III (single-node HPCG) pins SymGS/SpMV memory efficiency.
//   - Table V (single-core minikab) pins single-stream SpMV behaviour.
//   - Table VI (Nekbone ± fast math) pins SmallGEMM compute efficiency
//     and the Fujitsu -Kfast gain (and the slight fast-math *loss* on
//     NGIO: 127.19 → 90.37 GFLOP/s).
//   - Table IX (CASTEP) pins FFT/LargeGEMM efficiency.
//   - Table X (OpenSBLI) pins the StencilFD penalty on the A64FX.

// efficiencies maps system → kernel class → calibrated efficiency.
var efficiencies = map[ID]map[perfmodel.KernelClass]perfmodel.Efficiency{}

// fastMathGains maps system → kernel class → multiplicative compute-
// efficiency gain under the aggressive compiler mode (-Kfast on the
// Fujitsu toolchain, -ffast-math/-Ofast elsewhere).
var fastMathGains = map[ID]map[perfmodel.KernelClass]float64{}

// calibration returns both calibration tables for one system under the
// registry lock. The returned maps are shared and treated as immutable
// once published.
func calibration(id ID) (map[perfmodel.KernelClass]perfmodel.Efficiency, map[perfmodel.KernelClass]float64) {
	regMu.RLock()
	defer regMu.RUnlock()
	return efficiencies[id], fastMathGains[id]
}

// Efficiencies exposes the calibration table for one system (read-only by
// convention) so tests and reports can inspect it.
func Efficiencies(id ID) map[perfmodel.KernelClass]perfmodel.Efficiency {
	eff, _ := calibration(id)
	return eff
}

// FastMathGains exposes the fast-math gain table for one system.
func FastMathGains(id ID) map[perfmodel.KernelClass]float64 {
	_, gains := calibration(id)
	return gains
}

// SetEfficiencies installs a calibration table for a derived (custom)
// system. The five base systems' calibrations are immutable; attempting
// to overwrite one panics, because every experiment depends on them.
func SetEfficiencies(id ID, eff map[perfmodel.KernelClass]perfmodel.Efficiency) {
	for _, base := range IDs() {
		if id == base {
			panic("arch: refusing to overwrite base calibration for " + string(id))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	efficiencies[id] = eff
}
