package arch

import "a64fxbench/internal/perfmodel"

// This file holds the calibrated kernel-efficiency tables — the only free
// parameters of the performance model (DESIGN.md §4). Hardware capability
// (clocks, peaks, bandwidths) lives in systems.go and comes from Table I;
// the numbers below express what fraction of that capability each kernel
// class achieves on each architecture with the paper's toolchains
// (Table II), calibrated once against the paper's published single-node
// measurements. Everything else the harness reports — multi-node scaling,
// process/thread sweeps, crossover points — is model prediction.
//
// Calibration anchors:
//   - Table III (single-node HPCG) pins SymGS/SpMV memory efficiency.
//   - Table V (single-core minikab) pins single-stream SpMV behaviour.
//   - Table VI (Nekbone ± fast math) pins SmallGEMM compute efficiency and
//     the Fujitsu -Kfast gain (and the slight fast-math *loss* on NGIO).
//   - Table IX (CASTEP) pins FFT/LargeGEMM efficiency.
//   - Table X (OpenSBLI) pins the StencilFD penalty the paper traces to
//     instruction-fetch stalls and L2 behaviour on the A64FX.

// eff is shorthand for an Efficiency literal.
func eff(compute, memory float64) perfmodel.Efficiency {
	return perfmodel.Efficiency{Compute: compute, Memory: memory}
}

// efficiencies maps system → kernel class → calibrated efficiency.
var efficiencies = map[ID]map[perfmodel.KernelClass]perfmodel.Efficiency{
	A64FX: {
		// Unoptimised HPCG: the SVE compiler vectorises the smoother
		// poorly; effective bandwidth is a modest fraction of HBM2.
		perfmodel.SpMV:          eff(0.040, 0.348),
		perfmodel.SymGS:         eff(0.030, 0.200),
		perfmodel.DotProduct:    eff(0.050, 0.527),
		perfmodel.VectorOp:      eff(0.050, 0.653),
		perfmodel.SmallGEMM:     eff(0.068, 0.550),
		perfmodel.LargeGEMM:     eff(0.560, 0.700),
		perfmodel.StencilFD:     eff(0.0164, 0.110),
		perfmodel.FluxFV:        eff(0.060, 0.350),
		perfmodel.FFTKernel:     eff(0.053, 0.400),
		perfmodel.GatherScatter: eff(0.020, 0.300),
		perfmodel.Precond:       eff(0.050, 0.500),
	},
	ARCHER: {
		perfmodel.SpMV:          eff(0.080, 0.960),
		perfmodel.SymGS:         eff(0.060, 0.904),
		perfmodel.DotProduct:    eff(0.100, 0.960),
		perfmodel.VectorOp:      eff(0.100, 0.960),
		perfmodel.SmallGEMM:     eff(0.293, 0.800),
		perfmodel.LargeGEMM:     eff(0.800, 0.850),
		perfmodel.StencilFD:     eff(0.070, 0.600),
		perfmodel.FluxFV:        eff(0.090, 0.800),
		perfmodel.FFTKernel:     eff(0.180, 0.660),
		perfmodel.GatherScatter: eff(0.050, 0.600),
		perfmodel.Precond:       eff(0.100, 0.800),
	},
	Cirrus: {
		perfmodel.SpMV:          eff(0.060, 0.805),
		perfmodel.SymGS:         eff(0.045, 0.727),
		perfmodel.DotProduct:    eff(0.080, 0.960),
		perfmodel.VectorOp:      eff(0.080, 0.960),
		perfmodel.SmallGEMM:     eff(0.100, 0.750),
		perfmodel.LargeGEMM:     eff(0.820, 0.850),
		perfmodel.StencilFD:     eff(0.0831, 0.600),
		perfmodel.FluxFV:        eff(0.085, 0.800),
		perfmodel.FFTKernel:     eff(0.190, 0.790),
		perfmodel.GatherScatter: eff(0.045, 0.550),
		perfmodel.Precond:       eff(0.080, 0.750),
	},
	NGIO: {
		// MKL-backed (the unopt/opt HPCG split is handled by the
		// benchmark's Optimised flag, not here).
		perfmodel.SpMV:          eff(0.045, 0.699),
		perfmodel.SymGS:         eff(0.035, 0.624),
		perfmodel.DotProduct:    eff(0.070, 0.936),
		perfmodel.VectorOp:      eff(0.070, 0.960),
		perfmodel.SmallGEMM:     eff(0.087, 0.700),
		perfmodel.LargeGEMM:     eff(0.850, 0.880),
		perfmodel.StencilFD:     eff(0.0615, 0.680),
		perfmodel.FluxFV:        eff(0.080, 0.800),
		perfmodel.FFTKernel:     eff(0.160, 0.690),
		perfmodel.GatherScatter: eff(0.040, 0.550),
		perfmodel.Precond:       eff(0.070, 0.750),
	},
	Fulhame: {
		perfmodel.SpMV:          eff(0.110, 0.541),
		perfmodel.SymGS:         eff(0.090, 0.488),
		perfmodel.DotProduct:    eff(0.140, 0.654),
		perfmodel.VectorOp:      eff(0.140, 0.698),
		perfmodel.SmallGEMM:     eff(0.210, 0.720),
		perfmodel.LargeGEMM:     eff(0.700, 0.800),
		perfmodel.StencilFD:     eff(0.1497, 0.680),
		perfmodel.FluxFV:        eff(0.130, 0.850),
		perfmodel.FFTKernel:     eff(0.155, 0.700),
		perfmodel.GatherScatter: eff(0.080, 0.550),
		perfmodel.Precond:       eff(0.140, 0.750),
	},
}

// fastMathGains maps system → kernel class → multiplicative compute-
// efficiency gain under the aggressive compiler mode (-Kfast on the
// Fujitsu toolchain, -ffast-math/-Ofast elsewhere). The A64FX gains are
// large (Table VI: Nekbone 175.74 → 312.34 GFLOP/s); the paper finds the
// equivalent flags roughly neutral on the other machines, and slightly
// *negative* on NGIO (127.19 → 90.37).
var fastMathGains = map[ID]map[perfmodel.KernelClass]float64{
	A64FX: {
		perfmodel.SmallGEMM: 2.48,
		perfmodel.VectorOp:  1.60,
		perfmodel.StencilFD: 1.30,
		perfmodel.SpMV:      1.15,
		perfmodel.SymGS:     1.10,
		perfmodel.FFTKernel: 1.25,
	},
	ARCHER: {
		perfmodel.SmallGEMM: 1.05,
		perfmodel.VectorOp:  1.02,
	},
	Cirrus: {
		perfmodel.SmallGEMM: 1.03,
		perfmodel.VectorOp:  1.02,
	},
	NGIO: {
		// Fast math perturbs MKL-friendly code generation on Cascade
		// Lake; the paper measures a net slowdown for Nekbone.
		perfmodel.SmallGEMM: 0.56,
		perfmodel.VectorOp:  0.95,
	},
	Fulhame: {
		perfmodel.SmallGEMM: 1.13,
		perfmodel.VectorOp:  1.05,
	},
}

// calibration returns both calibration tables for one system under the
// registry lock. The returned maps are shared and treated as immutable
// once published.
func calibration(id ID) (map[perfmodel.KernelClass]perfmodel.Efficiency, map[perfmodel.KernelClass]float64) {
	regMu.RLock()
	defer regMu.RUnlock()
	return efficiencies[id], fastMathGains[id]
}

// Efficiencies exposes the calibration table for one system (read-only by
// convention) so tests and reports can inspect it.
func Efficiencies(id ID) map[perfmodel.KernelClass]perfmodel.Efficiency {
	eff, _ := calibration(id)
	return eff
}

// FastMathGains exposes the fast-math gain table for one system.
func FastMathGains(id ID) map[perfmodel.KernelClass]float64 {
	_, gains := calibration(id)
	return gains
}

// SetEfficiencies installs a calibration table for a derived (custom)
// system. The five base systems' calibrations are immutable; attempting
// to overwrite one panics, because every experiment depends on them.
func SetEfficiencies(id ID, eff map[perfmodel.KernelClass]perfmodel.Efficiency) {
	for _, base := range IDs() {
		if id == base {
			panic("arch: refusing to overwrite base calibration for " + string(id))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	efficiencies[id] = eff
}
