package arch

import (
	"reflect"
	"testing"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// The five Table-I systems used to be Go literals in this package; they
// now load from the embedded machine specs. This test is the neutrality
// gate: the spec-loaded systems must reproduce the old hard-coded
// values bit-for-bit — every float compared with ==, not a tolerance —
// so every committed golden digest stays byte-identical. The literals
// below are the pre-spec tables, frozen.

func legacyDomains(n int, cores int, peak, perCore units.ByteRate, capacity units.Bytes) []perfmodel.MemoryDomain {
	out := make([]perfmodel.MemoryDomain, n)
	for i := range out {
		out[i] = perfmodel.MemoryDomain{
			Cores:            cores,
			PeakBandwidth:    peak,
			PerCoreBandwidth: perCore,
			Capacity:         capacity,
		}
	}
	return out
}

var legacySystems = []*System{
	{
		ID:                A64FX,
		Description:       "Fujitsu A64FX test system, 48 single-processor nodes, TofuD network",
		Processor:         "Fujitsu A64FX",
		Microarch:         "SVE",
		ClockGHz:          2.2,
		CoresPerProcessor: 48,
		ProcessorsPerNode: 1,
		ThreadsPerCore:    "1",
		VectorBits:        512,
		MaxNodes:          48,
		Node: perfmodel.NodeCapability{
			Name:               "A64FX",
			Cores:              48,
			PeakFlops:          3379 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * 2.2 * units.GFlopPerSec,
			Domains:            legacyDomains(4, 12, 210*units.GBPerSec, 30*units.GBPerSec, 8*units.GiB),
			L2PerDomain:        8 * units.MiB,
			PerCallOverhead:    units.Duration(300 * units.Nanosecond),
			L1BandwidthPerCore: 140.8 * units.GBPerSec,
			L2BandwidthPerCore: 70.4 * units.GBPerSec,
			ECMMemOverlap:      0.4,
		},
		NewFabric: netmodel.NewTofuD,
	},
	{
		ID:                ARCHER,
		Description:       "Cray XC30, dual Intel Xeon E5-2697v2, Aries dragonfly network",
		Processor:         "Intel Xeon E5-2697 v2",
		Microarch:         "IvyBridge",
		ClockGHz:          2.7,
		CoresPerProcessor: 12,
		ProcessorsPerNode: 2,
		ThreadsPerCore:    "1 or 2",
		VectorBits:        256,
		MaxNodes:          4920,
		Node: perfmodel.NodeCapability{
			Name:               "ARCHER",
			Cores:              24,
			PeakFlops:          518.4 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * 2.7 * units.GFlopPerSec,
			Domains:            legacyDomains(2, 12, 44*units.GBPerSec, 10*units.GBPerSec, 32*units.GiB),
			L2PerDomain:        30 * units.MiB,
			PerCallOverhead:    units.Duration(250 * units.Nanosecond),
			TurboBoost1:        1.30,
			TurboFlatCores:     4,
			L1BandwidthPerCore: 172.8 * units.GBPerSec,
			L2BandwidthPerCore: 86.4 * units.GBPerSec,
			ECMCoreOverlap:     1,
		},
		NewFabric: func(int) *netmodel.Fabric { return netmodel.NewAries() },
	},
	{
		ID:                Cirrus,
		Description:       "SGI ICE XA, dual Intel Xeon E5-2695 (Broadwell), FDR InfiniBand",
		Processor:         "Intel Xeon E5-2695",
		Microarch:         "Broadwell",
		ClockGHz:          2.1,
		CoresPerProcessor: 18,
		ProcessorsPerNode: 2,
		ThreadsPerCore:    "1 or 2",
		VectorBits:        256,
		MaxNodes:          280,
		Node: perfmodel.NodeCapability{
			Name:               "Cirrus",
			Cores:              36,
			PeakFlops:          1209.6 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * 2.1 * units.GFlopPerSec,
			Domains:            legacyDomains(2, 18, 60*units.GBPerSec, 11*units.GBPerSec, 128*units.GiB),
			L2PerDomain:        45 * units.MiB,
			PerCallOverhead:    units.Duration(250 * units.Nanosecond),
			TurboBoost1:        1.35,
			TurboFlatCores:     4,
			L1BandwidthPerCore: 134.4 * units.GBPerSec,
			L2BandwidthPerCore: 67.2 * units.GBPerSec,
			ECMCoreOverlap:     1,
		},
		NewFabric: func(int) *netmodel.Fabric { return netmodel.NewFDRInfiniBand() },
	},
	{
		ID:                NGIO,
		Description:       "Fujitsu-built system, dual Intel Xeon Platinum 8260M, OmniPath",
		Processor:         "Intel Xeon Platinum 8260M",
		Microarch:         "Cascade Lake",
		ClockGHz:          2.4,
		CoresPerProcessor: 24,
		ProcessorsPerNode: 2,
		ThreadsPerCore:    "1 or 2",
		VectorBits:        512,
		MaxNodes:          40,
		Node: perfmodel.NodeCapability{
			Name:               "EPCC NGIO",
			Cores:              48,
			PeakFlops:          2662.4 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * 2.4 * units.GFlopPerSec,
			Domains:            legacyDomains(2, 24, 105*units.GBPerSec, 13.8*units.GBPerSec, 96*units.GiB),
			L2PerDomain:        units.Bytes(35.75 * float64(units.MiB)),
			PerCallOverhead:    units.Duration(250 * units.Nanosecond),
			TurboBoost1:        1.45,
			TurboFlatCores:     4,
			L1BandwidthPerCore: 153.6 * units.GBPerSec,
			L2BandwidthPerCore: 76.8 * units.GBPerSec,
			ECMCoreOverlap:     1,
		},
		NewFabric: func(int) *netmodel.Fabric { return netmodel.NewOmniPath() },
	},
	{
		ID:                Fulhame,
		Description:       "HPE Apollo 70, dual Marvell ThunderX2, EDR InfiniBand fat tree",
		Processor:         "Marvell ThunderX2",
		Microarch:         "ARMv8",
		ClockGHz:          2.2,
		CoresPerProcessor: 32,
		ProcessorsPerNode: 2,
		ThreadsPerCore:    "1, 2, or 4",
		VectorBits:        128,
		MaxNodes:          64,
		Node: perfmodel.NodeCapability{
			Name:               "Fulhame",
			Cores:              64,
			PeakFlops:          1126.4 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * 2.2 * units.GFlopPerSec,
			Domains:            legacyDomains(2, 32, 122*units.GBPerSec, 9.45*units.GBPerSec, 128*units.GiB),
			L2PerDomain:        32 * units.MiB,
			PerCallOverhead:    units.Duration(250 * units.Nanosecond),
			TurboBoost1:        1.14,
			TurboFlatCores:     8,
			L1BandwidthPerCore: 140.8 * units.GBPerSec,
			L2BandwidthPerCore: 70.4 * units.GBPerSec,
			ECMCoreOverlap:     0.5,
			ECMMemOverlap:      0.2,
		},
		NewFabric: func(int) *netmodel.Fabric { return netmodel.NewEDRInfiniBand() },
	},
}

var legacyEfficiencies = map[ID]map[perfmodel.KernelClass]perfmodel.Efficiency{
	A64FX: {
		perfmodel.SpMV:          eff(0.040, 0.348),
		perfmodel.SymGS:         eff(0.030, 0.200),
		perfmodel.DotProduct:    eff(0.050, 0.527),
		perfmodel.VectorOp:      eff(0.050, 0.653),
		perfmodel.SmallGEMM:     eff(0.068, 0.550),
		perfmodel.LargeGEMM:     eff(0.560, 0.700),
		perfmodel.StencilFD:     eff(0.0164, 0.110),
		perfmodel.FluxFV:        eff(0.060, 0.350),
		perfmodel.FFTKernel:     eff(0.053, 0.400),
		perfmodel.GatherScatter: eff(0.020, 0.300),
		perfmodel.Precond:       eff(0.050, 0.500),
	},
	ARCHER: {
		perfmodel.SpMV:          eff(0.080, 0.960),
		perfmodel.SymGS:         eff(0.060, 0.904),
		perfmodel.DotProduct:    eff(0.100, 0.960),
		perfmodel.VectorOp:      eff(0.100, 0.960),
		perfmodel.SmallGEMM:     eff(0.293, 0.800),
		perfmodel.LargeGEMM:     eff(0.800, 0.850),
		perfmodel.StencilFD:     eff(0.070, 0.600),
		perfmodel.FluxFV:        eff(0.090, 0.800),
		perfmodel.FFTKernel:     eff(0.180, 0.660),
		perfmodel.GatherScatter: eff(0.050, 0.600),
		perfmodel.Precond:       eff(0.100, 0.800),
	},
	Cirrus: {
		perfmodel.SpMV:          eff(0.060, 0.805),
		perfmodel.SymGS:         eff(0.045, 0.727),
		perfmodel.DotProduct:    eff(0.080, 0.960),
		perfmodel.VectorOp:      eff(0.080, 0.960),
		perfmodel.SmallGEMM:     eff(0.100, 0.750),
		perfmodel.LargeGEMM:     eff(0.820, 0.850),
		perfmodel.StencilFD:     eff(0.0831, 0.600),
		perfmodel.FluxFV:        eff(0.085, 0.800),
		perfmodel.FFTKernel:     eff(0.190, 0.790),
		perfmodel.GatherScatter: eff(0.045, 0.550),
		perfmodel.Precond:       eff(0.080, 0.750),
	},
	NGIO: {
		perfmodel.SpMV:          eff(0.045, 0.699),
		perfmodel.SymGS:         eff(0.035, 0.624),
		perfmodel.DotProduct:    eff(0.070, 0.936),
		perfmodel.VectorOp:      eff(0.070, 0.960),
		perfmodel.SmallGEMM:     eff(0.087, 0.700),
		perfmodel.LargeGEMM:     eff(0.850, 0.880),
		perfmodel.StencilFD:     eff(0.0615, 0.680),
		perfmodel.FluxFV:        eff(0.080, 0.800),
		perfmodel.FFTKernel:     eff(0.160, 0.690),
		perfmodel.GatherScatter: eff(0.040, 0.550),
		perfmodel.Precond:       eff(0.070, 0.750),
	},
	Fulhame: {
		perfmodel.SpMV:          eff(0.110, 0.541),
		perfmodel.SymGS:         eff(0.090, 0.488),
		perfmodel.DotProduct:    eff(0.140, 0.654),
		perfmodel.VectorOp:      eff(0.140, 0.698),
		perfmodel.SmallGEMM:     eff(0.210, 0.720),
		perfmodel.LargeGEMM:     eff(0.700, 0.800),
		perfmodel.StencilFD:     eff(0.1497, 0.680),
		perfmodel.FluxFV:        eff(0.130, 0.850),
		perfmodel.FFTKernel:     eff(0.155, 0.700),
		perfmodel.GatherScatter: eff(0.080, 0.550),
		perfmodel.Precond:       eff(0.140, 0.750),
	},
}

var legacyFastMathGains = map[ID]map[perfmodel.KernelClass]float64{
	A64FX: {
		perfmodel.SmallGEMM: 2.48,
		perfmodel.VectorOp:  1.60,
		perfmodel.StencilFD: 1.30,
		perfmodel.SpMV:      1.15,
		perfmodel.SymGS:     1.10,
		perfmodel.FFTKernel: 1.25,
	},
	ARCHER: {
		perfmodel.SmallGEMM: 1.05,
		perfmodel.VectorOp:  1.02,
	},
	Cirrus: {
		perfmodel.SmallGEMM: 1.03,
		perfmodel.VectorOp:  1.02,
	},
	NGIO: {
		perfmodel.SmallGEMM: 0.56,
		perfmodel.VectorOp:  0.95,
	},
	Fulhame: {
		perfmodel.SmallGEMM: 1.13,
		perfmodel.VectorOp:  1.05,
	},
}

// TestSpecReproducesTable1 pins every field of the spec-loaded systems
// against the frozen literals, exactly.
func TestSpecReproducesTable1(t *testing.T) {
	t.Parallel()
	if len(legacySystems) != len(IDs()) {
		t.Fatalf("legacy table has %d systems, want %d", len(legacySystems), len(IDs()))
	}
	for _, want := range legacySystems {
		want := want
		t.Run(string(want.ID), func(t *testing.T) {
			t.Parallel()
			got, err := Get(want.ID)
			if err != nil {
				t.Fatal(err)
			}
			// Compare everything except the fabric constructor (a func)
			// field-for-field; floats must be identical, not close.
			gotCmp, wantCmp := *got, *want
			gotCmp.NewFabric, wantCmp.NewFabric = nil, nil
			if !reflect.DeepEqual(gotCmp, wantCmp) {
				t.Errorf("spec-loaded system differs from legacy literal:\n got: %+v\nwant: %+v", gotCmp, wantCmp)
			}
			for _, nodes := range []int{2, 16} {
				gf, wf := got.NewFabric(nodes), want.NewFabric(nodes)
				if gf.Name != wf.Name ||
					gf.SoftwareOverhead != wf.SoftwareOverhead ||
					gf.HopLatency != wf.HopLatency ||
					gf.LinkBandwidth != wf.LinkBandwidth ||
					gf.InjectionBandwidth != wf.InjectionBandwidth {
					t.Errorf("fabric(%d) pricing differs: got %+v want %+v", nodes, gf, wf)
				}
				if gf.Topo.Name() != wf.Topo.Name() {
					t.Errorf("fabric(%d) topology %q, want %q", nodes, gf.Topo.Name(), wf.Topo.Name())
				}
				if gh, wh := gf.Topo.Hops(0, nodes-1), wf.Topo.Hops(0, nodes-1); gh != wh {
					t.Errorf("fabric(%d) hops(0,%d) = %d, want %d", nodes, nodes-1, gh, wh)
				}
			}
		})
	}
}

// TestSpecReproducesCalibration pins the installed calibration tables
// against the frozen literals, exactly.
func TestSpecReproducesCalibration(t *testing.T) {
	t.Parallel()
	for _, id := range IDs() {
		if got, want := Efficiencies(id), legacyEfficiencies[id]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: efficiency table differs from legacy literal:\n got: %v\nwant: %v", id, got, want)
		}
		if got, want := FastMathGains(id), legacyFastMathGains[id]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: fast-math table differs from legacy literal:\n got: %v\nwant: %v", id, got, want)
		}
	}
}
