package simmpi

import (
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/vclock"
)

// emitCounterEvents streams a counted job's PMU accounting into its
// trace sink, between the merged timeline and the EvJobEnd marker
// (mirroring emitLinkEvents):
//
//   - one EvCounter per (rank, nonzero counter) with the final
//     cumulative value, in rank-major then counter-ID order;
//   - one EvCounterSample per changed counter of each point of the
//     job-aggregate series (metrics.JobCounters.AggregateSeries), in
//     time-major then counter-ID order.
//
// Both orders are pure functions of the per-rank accounting, which is
// itself driven by virtual clocks and program order — so the emitted
// stream is bit-deterministic across goroutine schedules.
func emitCounterEvents(sink TraceSink, rep *Report) {
	jc := rep.Counters
	if jc == nil || sink == nil {
		return
	}
	defs := metrics.Counters()
	for _, rc := range jc.Ranks {
		node := rep.Ranks[rc.Rank].Node
		finish := rep.Ranks[rc.Rank].Finish
		for id, v := range rc.Values {
			if v == 0 {
				continue
			}
			sink.Record(Event{
				Kind: EvCounter, Rank: rc.Rank, Node: node, Peer: -1,
				Name: defs[id].Name, Start: finish, Value: v,
			})
		}
	}
	period, samples := jc.AggregateSeries()
	if len(samples) == 0 {
		return
	}
	prev := make([]float64, len(defs))
	for _, s := range samples {
		for id, v := range s.Values {
			if v == prev[id] {
				continue
			}
			prev[id] = v
			sink.Record(Event{
				Kind: EvCounterSample, Rank: -1, Node: -1, Peer: -1,
				Name: defs[id].Name, Start: vclock.Time(s.At),
				Duration: period, Value: v,
			})
		}
	}
}
