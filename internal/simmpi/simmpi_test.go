package simmpi

import (
	"fmt"
	"math"
	"testing"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

// testModel returns a uniform simple cost model.
func testModel(int) *perfmodel.CostModel {
	return &perfmodel.CostModel{
		Node: perfmodel.NodeCapability{
			Name:               "t",
			Cores:              1,
			PeakFlops:          10 * units.GFlopPerSec,
			ScalarFlopsPerCore: 2 * units.GFlopPerSec,
			Domains: []perfmodel.MemoryDomain{{
				Cores: 1, PeakBandwidth: 10 * units.GBPerSec,
				PerCoreBandwidth: 10 * units.GBPerSec, Capacity: units.GiB,
			}},
		},
		Eff: map[perfmodel.KernelClass]perfmodel.Efficiency{
			perfmodel.VectorOp: {Compute: 1, Memory: 1},
		},
	}
}

func testFabric() *netmodel.Fabric {
	return &netmodel.Fabric{
		Name:             "test",
		Topo:             &topo.FatTree{NodesPerLeaf: 4},
		SoftwareOverhead: units.Microsecond,
		HopLatency:       units.Duration(100 * units.Nanosecond),
		LinkBandwidth:    10 * units.GBPerSec,
	}
}

func cfg(procs, nodes int) JobConfig {
	return JobConfig{
		Procs:     procs,
		Nodes:     nodes,
		RankModel: testModel,
		Fabric:    testFabric(),
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(JobConfig{Procs: 0, RankModel: testModel}, func(*Rank) error { return nil }); err == nil {
		t.Error("zero procs should fail")
	}
	if _, err := Run(JobConfig{Procs: 2}, func(*Rank) error { return nil }); err == nil {
		t.Error("missing RankModel should fail")
	}
	if _, err := Run(JobConfig{Procs: 2, Nodes: 4, RankModel: testModel}, func(*Rank) error { return nil }); err == nil {
		t.Error("more nodes than procs should fail")
	}
	if _, err := Run(JobConfig{Procs: 4, Nodes: 2, RankModel: testModel}, func(*Rank) error { return nil }); err == nil {
		t.Error("multi-node without fabric should fail")
	}
	// Single node without fabric gets the shared-memory default.
	if _, err := Run(JobConfig{Procs: 2, RankModel: testModel}, func(*Rank) error { return nil }); err != nil {
		t.Errorf("single-node default fabric: %v", err)
	}
}

func TestRankIdentity(t *testing.T) {
	t.Parallel()
	seen := make([]bool, 8)
	rep, err := Run(cfg(8, 2), func(r *Rank) error {
		if r.Size() != 8 {
			return fmt.Errorf("size %d", r.Size())
		}
		// Block placement: ranks 0-3 on node 0, 4-7 on node 1.
		if want := r.ID() / 4; r.Node() != want {
			return fmt.Errorf("rank %d on node %d, want %d", r.ID(), r.Node(), want)
		}
		seen[r.ID()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seen {
		if !s {
			t.Errorf("rank %d never ran", i)
		}
	}
	if len(rep.Ranks) != 8 {
		t.Errorf("report has %d ranks", len(rep.Ranks))
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(4, 1), func(r *Rank) error {
		if r.ID() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestPanicRecovered(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(2, 1), func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic should surface as error")
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(1, 1), func(r *Rank) error {
		// 10 GFLOP at 10 GFLOP/s (VectorOp eff 1.0) = 1 s.
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: 10 * units.GFlop})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Seconds(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("makespan = %v, want 1.0", got)
	}
	if rep.TotalFlops != 10*units.GFlop {
		t.Errorf("flops = %v", rep.TotalFlops)
	}
	if got := rep.GFLOPs(); math.Abs(got-10) > 1e-6 {
		t.Errorf("GFLOPs = %v, want 10", got)
	}
}

func TestSendRecvCausality(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(2, 2), func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: 10 * units.GFlop}) // 1 s
			r.SendFloats(1, 7, []float64{42})
		} else {
			data := r.RecvFloats(0, 7)
			if data[0] != 42 {
				return fmt.Errorf("payload %v", data)
			}
			// Receiver idled until at least sender's 1 s + latency.
			if r.Now().Seconds() < 1.0 {
				return fmt.Errorf("causality violated: recv at %v", r.Now())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 1's wait time should be ≈1 s.
	if w := rep.Ranks[1].Wait.Seconds(); w < 0.99 {
		t.Errorf("rank 1 wait = %v, want ≈1", w)
	}
}

func TestElapse(t *testing.T) {
	t.Parallel()
	rep, _ := Run(cfg(1, 1), func(r *Rank) error {
		r.Elapse(units.Second)
		return nil
	})
	if rep.Seconds() != 1.0 {
		t.Errorf("makespan = %v", rep.Seconds())
	}
}

func TestSendrecvExchange(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(2, 1), func(r *Rank) error {
		mine := []float64{float64(r.ID())}
		theirs := r.Sendrecv(1-r.ID(), 3, mine)
		if theirs[0] != float64(1-r.ID()) {
			return fmt.Errorf("rank %d got %v", r.ID(), theirs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRanksPanic(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(2, 1), func(r *Rank) error {
		if r.ID() == 0 {
			r.SendFloats(5, 0, nil) // invalid
		}
		return nil
	})
	if err == nil {
		t.Error("send to invalid rank should error via recovered panic")
	}
	_, err = Run(cfg(2, 1), func(r *Rank) error {
		if r.ID() == 0 {
			r.RecvFloats(-1, 0)
		}
		return nil
	})
	if err == nil {
		t.Error("recv from invalid rank should error")
	}
}

func TestBarrierSynchronises(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(4, 4), func(r *Rank) error {
		// Rank r computes r seconds, then a barrier.
		r.Compute(perfmodel.WorkProfile{
			Class: perfmodel.VectorOp,
			Flops: units.Flops(r.ID()) * 10 * units.GFlop,
		})
		r.Barrier()
		// Everyone must now be at ≥3 s (slowest rank's time).
		if r.Now().Seconds() < 3.0 {
			return fmt.Errorf("rank %d left barrier at %v", r.ID(), r.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds() < 3.0 {
		t.Errorf("makespan = %v", rep.Seconds())
	}
}

func allreduceSizes() []int { return []int{1, 2, 3, 4, 5, 7, 8, 16, 24} }

func TestAllreduceSum(t *testing.T) {
	t.Parallel()
	for _, p := range allreduceSizes() {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			nodes := p
			if nodes > 4 {
				nodes = 4
			}
			_, err := Run(cfg(p, nodes), func(r *Rank) error {
				buf := []float64{float64(r.ID() + 1), 1}
				r.Allreduce(buf, OpSum)
				wantSum := float64(p*(p+1)) / 2
				if buf[0] != wantSum || buf[1] != float64(p) {
					return fmt.Errorf("rank %d got %v, want [%v %v]", r.ID(), buf, wantSum, p)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(6, 2), func(r *Rank) error {
		v := r.AllreduceScalar(float64(r.ID()), OpMax)
		if v != 5 {
			return fmt.Errorf("max = %v", v)
		}
		v = r.AllreduceScalar(float64(r.ID()), OpMin)
		if v != 0 {
			return fmt.Errorf("min = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < p; root += max(1, p/3) {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
					var buf []float64
					if r.ID() == root {
						buf = []float64{3.14, 2.71}
					}
					buf = r.Bcast(root, buf)
					if len(buf) != 2 || buf[0] != 3.14 || buf[1] != 2.71 {
						return fmt.Errorf("rank %d got %v", r.ID(), buf)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestReduce(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 3, 6, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				buf := []float64{1}
				r.Reduce(0, buf, OpSum)
				if r.ID() == 0 && buf[0] != float64(p) {
					return fmt.Errorf("root sum = %v, want %d", buf[0], p)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				out := r.Allgather([]float64{float64(r.ID()), float64(r.ID() * 10)})
				if len(out) != 2*p {
					return fmt.Errorf("len = %d", len(out))
				}
				for i := 0; i < p; i++ {
					if out[2*i] != float64(i) || out[2*i+1] != float64(i*10) {
						return fmt.Errorf("rank %d block %d = %v", r.ID(), i, out[2*i:2*i+2])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				send := make([][]float64, p)
				for i := range send {
					send[i] = []float64{float64(r.ID()*100 + i)}
				}
				recv := r.Alltoall(send)
				for i := 0; i < p; i++ {
					want := float64(i*100 + r.ID())
					if len(recv[i]) != 1 || recv[i][0] != want {
						return fmt.Errorf("rank %d from %d: %v, want %v", r.ID(), i, recv[i], want)
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAlltoallWrongBlocksPanics(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(2, 1), func(r *Rank) error {
		r.Alltoall(make([][]float64, 1))
		return nil
	})
	if err == nil {
		t.Error("wrong block count should error")
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	run := func() Report {
		rep, err := Run(cfg(8, 4), func(r *Rank) error {
			for it := 0; it < 5; it++ {
				r.Compute(perfmodel.WorkProfile{
					Class: perfmodel.VectorOp,
					Flops: units.Flops(1+r.ID()) * units.MFlop,
				})
				r.AllreduceScalar(float64(r.ID()), OpSum)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.TotalMsgs != b.TotalMsgs || a.TotalBytesSent != b.TotalBytesSent {
		t.Error("nondeterministic message accounting")
	}
}

func TestStatsAccounting(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(2, 2), func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop, Bytes: 1000})
		if r.ID() == 0 {
			r.SendFloats(1, 1, make([]float64, 100))
		} else {
			r.RecvFloats(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalMsgs != 1 {
		t.Errorf("msgs = %d, want 1", rep.TotalMsgs)
	}
	if rep.TotalBytesSent != 800 {
		t.Errorf("bytes = %d, want 800", rep.TotalBytesSent)
	}
	st := rep.Ranks[0].Stats
	if st.Flops != units.MFlop || st.MemBytes != 1000 {
		t.Errorf("rank 0 stats %+v", st)
	}
	if st.ClassTime[perfmodel.VectorOp] <= 0 {
		t.Error("class time not recorded")
	}
}

func TestMoreNodesCostMoreForCollectives(t *testing.T) {
	t.Parallel()
	run := func(nodes int) float64 {
		rep, err := Run(cfg(16, nodes), func(r *Rank) error {
			for i := 0; i < 10; i++ {
				r.AllreduceScalar(1, OpSum)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Seconds()
	}
	if run(16) <= run(1) {
		t.Error("spreading ranks across nodes should slow collectives")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
