package simmpi

import (
	"fmt"
	"io"
	"sort"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// EventKind labels one entry of a rank's execution timeline.
type EventKind int

// Event kinds.
const (
	// EvCompute is a metered kernel phase.
	EvCompute EventKind = iota
	// EvSend is a point-to-point injection.
	EvSend
	// EvRecv is a receive completion (including any wait).
	EvRecv
	// EvNoise is an injected OS-noise delay.
	EvNoise
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvNoise:
		return "noise"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timeline entry: what a rank did, when (virtual time), and
// for how long.
type Event struct {
	Rank  int
	Kind  EventKind
	Start vclock.Time
	// Duration covers the event in virtual time (for EvRecv this is
	// the blocked/wait portion).
	Duration units.Duration
	// Class is set for EvCompute.
	Class perfmodel.KernelClass
	// Peer is the other rank for EvSend/EvRecv, -1 otherwise.
	Peer int
	// Bytes is the wire size for EvSend/EvRecv.
	Bytes units.Bytes
}

// Timeline is the merged, time-ordered event log of a traced job.
type Timeline []Event

// WriteTo renders the timeline as one line per event (sorted by start
// time, then rank) — a poor man's trace viewer.
func (tl Timeline) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range tl {
		var desc string
		switch e.Kind {
		case EvCompute:
			desc = fmt.Sprintf("%-8s %v", e.Class, e.Duration)
		case EvSend:
			desc = fmt.Sprintf("→ rank %-4d %v", e.Peer, e.Bytes)
		case EvRecv:
			desc = fmt.Sprintf("← rank %-4d %v (waited %v)", e.Peer, e.Bytes, e.Duration)
		case EvNoise:
			desc = fmt.Sprintf("os noise %v", e.Duration)
		}
		n, err := fmt.Fprintf(w, "%12.6fs rank %-4d %-8s %s\n",
			e.Start.Seconds(), e.Rank, e.Kind, desc)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// sortTimeline orders events by start time, breaking ties by rank.
func sortTimeline(tl Timeline) {
	sort.SliceStable(tl, func(i, j int) bool {
		if tl[i].Start != tl[j].Start {
			return tl[i].Start < tl[j].Start
		}
		return tl[i].Rank < tl[j].Rank
	})
}

// record appends an event when tracing is on.
func (r *Rank) record(e Event) {
	if !r.job.cfg.Trace {
		return
	}
	e.Rank = r.id
	r.events = append(r.events, e)
}
