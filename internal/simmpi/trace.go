package simmpi

import (
	"fmt"
	"io"
	"sort"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// EventKind labels one entry of a rank's execution timeline.
type EventKind int

// Event kinds.
const (
	// EvCompute is a metered kernel phase.
	EvCompute EventKind = iota
	// EvSend is a point-to-point injection.
	EvSend
	// EvRecv is a receive completion (including any wait).
	EvRecv
	// EvNoise is an injected OS-noise delay.
	EvNoise
	// EvRegionBegin opens a named phase/region (see Rank.Region).
	EvRegionBegin
	// EvRegionEnd closes the innermost open region; Duration spans the
	// whole region in virtual time.
	EvRegionEnd
	// EvJobBegin marks the start of a job's event stream on a sink
	// (Rank is -1; Name carries the job label).
	EvJobBegin
	// EvJobEnd marks the end of a job's event stream (Duration is the
	// job makespan).
	EvJobEnd
	// EvLink summarises one interconnect link of a congestion-enabled
	// job (Rank is -1; Name is the link, Bytes/Duration its traffic and
	// busy time, Flows/PeakFlows its flow counts, Value its mean
	// utilization). Emitted between the timeline and EvJobEnd.
	EvLink
	// EvLinkSample is one utilization bucket of a busy link's time
	// series (Value is the bucket utilization in [0, 1]).
	EvLinkSample
	// EvCounter is one rank's final value of one virtual PMU counter
	// (Name is the counter, Value the cumulative value, Start the
	// rank's finish time). Emitted between the timeline and EvJobEnd
	// for jobs run with JobConfig.Counters, zero-valued counters
	// omitted, in (rank, counter-ID) order.
	EvCounter
	// EvCounterSample is one point of the job-aggregate counter series
	// (Rank is -1; Name is the counter, Start the sample's virtual
	// time, Duration the sampling period, Value the cumulative sum over
	// ranks). Only counters that changed since the previous sample are
	// emitted.
	EvCounterSample
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvCompute:
		return "compute"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvNoise:
		return "noise"
	case EvRegionBegin:
		return "begin"
	case EvRegionEnd:
		return "end"
	case EvJobBegin:
		return "job"
	case EvJobEnd:
		return "jobend"
	case EvLink:
		return "link"
	case EvLinkSample:
		return "linksample"
	case EvCounter:
		return "counter"
	case EvCounterSample:
		return "ctrsample"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one timeline entry: what a rank did, when (virtual time), and
// for how long.
type Event struct {
	Rank int
	// Node is the node index of the recording rank (-1 for job markers).
	Node  int
	Kind  EventKind
	Start vclock.Time
	// Duration covers the event in virtual time (for EvRecv this is
	// the blocked/wait portion; for EvRegionEnd the whole region; for
	// EvJobEnd the job makespan).
	Duration units.Duration
	// Class is set for EvCompute.
	Class perfmodel.KernelClass
	// Peer is the other rank for EvSend/EvRecv, -1 otherwise.
	Peer int
	// Tag is the message tag for EvSend/EvRecv (collective internals
	// use tags ≥ 1<<20).
	Tag int
	// Bytes is the wire size for EvSend/EvRecv, and the metered memory
	// traffic for EvCompute.
	Bytes units.Bytes
	// Flops is the metered floating-point work for EvCompute.
	Flops units.Flops
	// Name is the region name (EvRegionBegin/End), job label
	// (EvJobBegin/End), or link name (EvLink/EvLinkSample).
	Name string
	// Flows and PeakFlows are the total and peak-concurrent flow counts
	// of an EvLink event.
	Flows     int64
	PeakFlows int
	// Value is the utilization in [0, 1] for EvLink (mean while busy)
	// and EvLinkSample (one bucket).
	Value float64
}

// Finish is the virtual time at which the event completed.
func (e Event) Finish() vclock.Time { return e.Start.Add(e.Duration) }

// TraceSink consumes the event stream of traced jobs. The runtime calls
// Record once per event, from a single goroutine, in deterministic
// (Start, Rank) order, bracketed by EvJobBegin/EvJobEnd markers; Close is
// the owner's signal that no further jobs will be recorded. A nil sink on
// JobConfig disables tracing entirely.
type TraceSink interface {
	Record(Event)
	Close() error
}

// MemorySink is a TraceSink that retains the full event stream in memory
// for later analysis (e.g. by package obs).
type MemorySink struct {
	Events Timeline
}

// Record appends the event.
func (m *MemorySink) Record(e Event) { m.Events = append(m.Events, e) }

// Close is a no-op.
func (m *MemorySink) Close() error { return nil }

// Timeline is the merged, time-ordered event log of a traced job.
type Timeline []Event

// WriteEvent renders one event as a single text line — the line format of
// the classic flat timeline view.
func WriteEvent(w io.Writer, e Event) (int, error) {
	var desc string
	switch e.Kind {
	case EvCompute:
		desc = fmt.Sprintf("%-8s %v", e.Class, e.Duration)
	case EvSend:
		desc = fmt.Sprintf("→ rank %-4d %v", e.Peer, e.Bytes)
	case EvRecv:
		desc = fmt.Sprintf("← rank %-4d %v (waited %v)", e.Peer, e.Bytes, e.Duration)
	case EvNoise:
		desc = fmt.Sprintf("os noise %v", e.Duration)
	case EvRegionBegin:
		desc = e.Name
	case EvRegionEnd:
		desc = fmt.Sprintf("%s (%v)", e.Name, e.Duration)
	case EvJobBegin:
		desc = e.Name
	case EvJobEnd:
		desc = fmt.Sprintf("%s makespan %v", e.Name, e.Duration)
	case EvLink:
		desc = fmt.Sprintf("%-22s busy %v util %3.0f%% flows %d peak %d %v",
			e.Name, e.Duration, 100*e.Value, e.Flows, e.PeakFlows, e.Bytes)
	case EvLinkSample:
		desc = fmt.Sprintf("%-22s util %3.0f%%", e.Name, 100*e.Value)
	case EvCounter, EvCounterSample:
		desc = fmt.Sprintf("%-22s %g", e.Name, e.Value)
	}
	return fmt.Fprintf(w, "%12.6fs rank %-4d %-8s %s\n",
		e.Start.Seconds(), e.Rank, e.Kind, desc)
}

// WriteTo renders the timeline as one line per event (sorted by start
// time, then rank) — a poor man's trace viewer.
func (tl Timeline) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, e := range tl {
		n, err := WriteEvent(w, e)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// sortTimeline orders events by start time, breaking ties by rank.
// The sort is stable, so each rank's program order is preserved.
func sortTimeline(tl Timeline) {
	sort.SliceStable(tl, func(i, j int) bool {
		if tl[i].Start != tl[j].Start {
			return tl[i].Start < tl[j].Start
		}
		return tl[i].Rank < tl[j].Rank
	})
}

// record appends an event when tracing is on.
func (r *Rank) record(e Event) {
	if r.job.cfg.Sink == nil {
		return
	}
	e.Rank = r.id
	e.Node = r.node
	r.events = append(r.events, e)
}

// regionFrame is one open region on a rank's region stack.
type regionFrame struct {
	name  string
	start vclock.Time
}

// Region opens a named phase/region on the rank's timeline. Regions nest;
// each Region must be balanced by EndRegion (unbalanced regions are
// closed automatically at job end). When the job has no trace sink this
// is a complete no-op — annotations cost nothing in untraced runs and
// never touch the virtual clock or statistics.
func (r *Rank) Region(name string) {
	if r.job.cfg.Sink == nil {
		return
	}
	now := r.clock.Now()
	r.regions = append(r.regions, regionFrame{name: name, start: now})
	r.record(Event{Kind: EvRegionBegin, Start: now, Name: name, Peer: -1})
}

// EndRegion closes the innermost open region. No-op when tracing is off;
// panics on an unmatched EndRegion in a traced run.
func (r *Rank) EndRegion() {
	if r.job.cfg.Sink == nil {
		return
	}
	if len(r.regions) == 0 {
		panic("simmpi: EndRegion without a matching Region")
	}
	f := r.regions[len(r.regions)-1]
	r.regions = r.regions[:len(r.regions)-1]
	now := r.clock.Now()
	r.record(Event{
		Kind: EvRegionEnd, Start: now,
		Duration: units.Duration(now - f.start),
		Name:     f.name, Peer: -1,
	})
}

// closeRegions force-closes any regions a body left open at job end.
func (r *Rank) closeRegions() {
	for len(r.regions) > 0 {
		r.EndRegion()
	}
}
