package simmpi

import (
	"fmt"
	"testing"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// BenchmarkSendRecv measures the simulator's message throughput (wall
// time of the runtime itself, not virtual time).
func BenchmarkSendRecv(b *testing.B) {
	rep, err := Run(cfg(2, 2), func(r *Rank) error {
		payload := make([]float64, 128)
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				r.SendFloats(1, 1, payload)
				r.RecvFloats(1, 2)
			} else {
				r.RecvFloats(0, 1)
				r.SendFloats(0, 2, payload)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = rep
}

// BenchmarkAllreduce measures the runtime cost of the real recursive-
// doubling allreduce at several rank counts.
func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{4, 16, 48} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			nodes := p
			if nodes > 4 {
				nodes = 4
			}
			_, err := Run(cfg(p, nodes), func(r *Rank) error {
				buf := make([]float64, 8)
				for i := 0; i < b.N; i++ {
					r.Allreduce(buf, OpSum)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCompute measures the pure metering overhead of Compute calls.
func BenchmarkCompute(b *testing.B) {
	w := perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: units.MFlop,
		Bytes: units.MiB,
		Calls: 1,
	}
	_, err := Run(cfg(1, 1), func(r *Rank) error {
		for i := 0; i < b.N; i++ {
			r.Compute(w)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures the dissemination barrier.
func BenchmarkBarrier(b *testing.B) {
	_, err := Run(cfg(16, 4), func(r *Rank) error {
		for i := 0; i < b.N; i++ {
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
