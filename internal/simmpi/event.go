package simmpi

// The discrete-event engine (JobConfig.Engine == EngineEvent).
//
// All ranks of a job are driven by a single-threaded event loop. Rank
// bodies still run on goroutines — Go has no first-class continuations —
// but exactly one of them is runnable at any instant: the loop hands a
// rank the execution token, the rank runs until it blocks (an empty-box
// Recv, a world collective, a Split) or finishes, and hands the token
// back. The loop then pops the next runnable rank from a binary-heap
// ready queue keyed on (virtual time, rank, sequence).
//
// Correctness rests on the conservative virtual-time rule (see package
// vclock): every inter-rank coupling happens through a message stamped
// with its availability time, and a receive completes at
// max(receiver clock, stamp). Any scheduling that runs a receive after
// its matching send therefore produces bit-identical results — the
// event loop's ordering is a real-time optimisation, never a semantic
// choice. The differential suite in engine_test.go holds both engines
// to that promise.
//
// Three things make this engine fast at 10⁴–10⁵ ranks:
//
//   - World collectives are executed as one batched event (see
//     collective_batch.go): when all p ranks have parked at the same
//     collective, the loop replays each rank's exact per-rank message
//     sequence in a dependency-valid cross-rank order, eliminating the
//     ~2·p·log p goroutine context switches per collective.
//   - Identical messages collapse onto shared symmetric state: the
//     point-to-point model is a pure function of (hop count, bytes), so
//     the engine memoises prices and the p equal-size transfers of a
//     collective round cost a handful of model evaluations instead of p.
//   - The ready queue is an alloc-free slice-backed binary heap, and
//     rank goroutines are spawned lazily on first dispatch.

import (
	"fmt"

	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// rankState is where a rank currently is, from the loop's point of view.
type rankState uint8

const (
	stateReady rankState = iota // in the ready heap (or running)
	stateRecv                   // parked on an empty mailbox
	stateColl                   // parked at a world collective
	stateSplit                  // parked at a Split rendezvous
	stateDone                   // body returned (or unwound)
)

// evItem is one ready-queue entry: rank `rank` becomes runnable at
// virtual time `at`. seq breaks (at, rank) ties in insertion order —
// with unique ranks per entry it is belt-and-braces, but it pins the
// ordering contract down to a total order.
type evItem struct {
	at   vclock.Time
	rank int
	seq  uint64
}

// evHeap is a slice-backed binary min-heap of evItems ordered by
// (at, rank, seq). It never allocates beyond its high-water mark.
type evHeap struct {
	a []evItem
}

func (h *evHeap) len() int { return len(h.a) }

func evLess(x, y evItem) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.rank != y.rank {
		return x.rank < y.rank
	}
	return x.seq < y.seq
}

func (h *evHeap) push(it evItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evLess(h.a[i], h.a[parent]) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *evHeap) pop() evItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && evLess(h.a[l], h.a[small]) {
			small = l
		}
		if r < last && evLess(h.a[r], h.a[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

// msgQueue is a FIFO of in-flight messages on one (src, dst, tag) route.
// Head-index draining keeps pops O(1); the backing array is reused once
// the queue empties. waiting marks the route's (single) receiver as
// parked on it — routes are single-reader, so a flag replaces a map.
type msgQueue struct {
	q       []message
	head    int
	waiting bool
}

func (q *msgQueue) empty() bool { return q.head == len(q.q) }

func (q *msgQueue) push(m message) { q.q = append(q.q, m) }

func (q *msgQueue) pop() message {
	m := q.q[q.head]
	q.q[q.head] = message{}
	q.head++
	if q.head == len(q.q) {
		q.q = q.q[:0]
		q.head = 0
	}
	return m
}

// queueArena hands out msgQueues in chunks so a job with r routes costs
// r/queueChunk allocations instead of r. Queues live for the whole job;
// nothing is ever returned.
type queueArena struct {
	chunk []msgQueue
}

const queueChunk = 256

func (a *queueArena) get() *msgQueue {
	if len(a.chunk) == 0 {
		a.chunk = make([]msgQueue, queueChunk)
	}
	q := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return q
}

// routeKey packs (src, tag) into the uint64 key of a per-receiver route
// table — the receiver is implicit in which table is consulted. The
// packed form keeps route lookups on the runtime's fast integer-map
// path, which the struct-keyed alternative misses; it requires tags to
// fit in 32 bits, which every tag in this codebase (user tags, the
// <= 2^27 internal collective tags, Comm tag bases) does by a wide
// margin.
func routeKey(src, tag int) uint64 {
	if int(uint32(tag)) != tag {
		panic(fmt.Sprintf("simmpi: tag %d overflows the event engine's 32-bit tag space", tag))
	}
	return uint64(uint32(src))<<32 | uint64(uint32(tag))
}

// engineKilled unwinds a parked rank goroutine when the loop aborts;
// the runner recognises it and exits without recording an error.
type engineKilled struct{}

// eventEngine is the per-job state of the discrete-event loop. It is
// mutated by the loop goroutine and by whichever rank goroutine holds
// the execution token — never by two goroutines at once, so it needs no
// locks.
type eventEngine struct {
	j     *job
	ranks []*Rank
	body  func(*Rank) error

	// Token handoff: the loop resumes rank i by sending on resume[i];
	// a rank hands the token back by sending on yield (when it parks
	// or finishes). Both are unbuffered, so the handoff is a rendezvous.
	resume  []chan struct{}
	yield   chan struct{}
	started []bool
	state   []rankState

	ready evHeap
	seq   uint64

	// Point-to-point routing: per-receiver route tables keyed on
	// (src, tag), so each table stays small and cache-resident at any
	// rank count, and every lookup is an integer-keyed fast path. A
	// parked receiver is marked in the queue itself (routes are
	// single-reader, and the reader's identity is the table index).
	routes []map[uint64]*msgQueue
	arena  queueArena

	// World-collective rendezvous: per-rank arguments and results, and
	// the count of ranks parked in the current collective.
	collArgs []collArgs
	collRes  []any
	collIn   int
	collKind collKind

	// Split rendezvous: ranks parked waiting for the last arriver.
	splitParked []int

	// Scratch for the batched collective executor (collective_batch.go);
	// allocated once at first use, reused for every collective.
	slots   []message
	starts  []vclock.Time
	starts2 []vclock.Time
	blocks  [][]float64
	ints    []int
	lims    []int

	prices map[uint64]units.Duration

	errs    []error
	done    int
	aborted bool
}

// runEventLoop executes body on every rank under the discrete-event
// engine. It is the event-engine half of runRanks.
func runEventLoop(j *job, ranks []*Rank, body func(*Rank) error) error {
	p := len(ranks)
	e := &eventEngine{
		j:        j,
		ranks:    ranks,
		body:     body,
		resume:   make([]chan struct{}, p),
		yield:    make(chan struct{}),
		started:  make([]bool, p),
		state:    make([]rankState, p),
		routes:   make([]map[uint64]*msgQueue, p),
		collArgs: make([]collArgs, p),
		collRes:  make([]any, p),
		prices:   make(map[uint64]units.Duration),
		errs:     make([]error, p),
	}
	e.ready.a = make([]evItem, 0, p)
	for i := range ranks {
		ranks[i].eng = e
		e.resume[i] = make(chan struct{})
		e.push(i, 0)
	}
	for e.done < p {
		if e.collIn == p {
			e.runCollective()
			continue
		}
		if e.ready.len() == 0 {
			return e.abort()
		}
		e.dispatch(e.ready.pop().rank)
	}
	for _, err := range e.errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// push schedules rank i as runnable at virtual time `at`.
func (e *eventEngine) push(i int, at vclock.Time) {
	e.state[i] = stateReady
	e.ready.push(evItem{at: at, rank: i, seq: e.seq})
	e.seq++
}

// dispatch hands the execution token to rank i and blocks until it
// comes back (the rank parked or finished).
func (e *eventEngine) dispatch(i int) {
	if !e.started[i] {
		e.started[i] = true
		go e.runner(e.ranks[i])
	} else {
		e.resume[i] <- struct{}{}
	}
	<-e.yield
}

// runner is a rank goroutine: it owns the token on entry and whenever
// park returns, and surrenders it exactly once on exit.
func (e *eventEngine) runner(r *Rank) {
	defer func() {
		if p := recover(); p != nil {
			if _, killed := p.(engineKilled); !killed {
				e.errs[r.id] = fmt.Errorf("rank %d panicked: %v", r.id, p)
			}
		}
		e.state[r.id] = stateDone
		e.done++
		e.yield <- struct{}{}
	}()
	if err := e.body(r); err != nil {
		e.errs[r.id] = err
	}
}

// park surrenders the token and blocks until the loop resumes this
// rank. Must be called from r's own goroutine while it holds the token.
func (e *eventEngine) park(r *Rank) {
	e.yield <- struct{}{}
	<-e.resume[r.id]
	if e.aborted {
		panic(engineKilled{})
	}
}

// route resolves (or creates) the queue for messages src→dst with tag.
func (e *eventEngine) route(src, dst, tag int) *msgQueue {
	t := e.routes[dst]
	if t == nil {
		t = make(map[uint64]*msgQueue, 8)
		e.routes[dst] = t
	}
	k := routeKey(src, tag)
	q := t[k]
	if q == nil {
		q = e.arena.get()
		t[k] = q
	}
	return q
}

// post delivers a sent message. Sends never block; if the route's
// receiver is parked on it, the receiver becomes runnable at the later
// of its own clock and the message's availability.
func (e *eventEngine) post(src, dst, tag int, m message) {
	q := e.route(src, dst, tag)
	q.push(m)
	if q.waiting {
		q.waiting = false
		e.push(dst, vclock.Max(e.ranks[dst].clock.Now(), m.avail))
	}
}

// await returns the next message sent src→r with tag, parking the rank
// if none is pending yet. A route has a single reader, so at most one
// rank ever waits on it.
func (e *eventEngine) await(r *Rank, src, tag int) message {
	q := e.route(src, r.id, tag)
	if q.empty() {
		e.state[r.id] = stateRecv
		q.waiting = true
		e.park(r)
	}
	return q.pop()
}

// price memoises the contention-free point-to-point cost, which is a
// pure function of (hop count, bytes) for the job's fabric. The memo
// key packs hops+1 into the low byte (sizes here are byte counts well
// under 2^56, hop counts well under 255).
func (e *eventEngine) price(srcNode, dstNode int, bytes units.Bytes) units.Duration {
	f := e.j.cfg.Fabric
	hops := -1
	if srcNode != dstNode {
		hops = f.Topo.Hops(srcNode, dstNode)
	}
	if hops >= 255 {
		return f.PointToPoint(srcNode, dstNode, bytes) // beyond the memo's hop range
	}
	k := uint64(bytes)<<8 | uint64(uint8(hops+1))
	if d, ok := e.prices[k]; ok {
		return d
	}
	d := f.PointToPoint(srcNode, dstNode, bytes)
	e.prices[k] = d
	return d
}

// collective parks r at a world collective and returns its per-rank
// result once all ranks have arrived and the batched executor has run.
func (e *eventEngine) collective(r *Rank, a collArgs) any {
	if e.collIn == 0 {
		e.collKind = a.kind
	} else if a.kind != e.collKind {
		panic(fmt.Sprintf("simmpi: collective mismatch: rank %d entered %s while others are in %s",
			r.id, a.kind, e.collKind))
	}
	e.collArgs[r.id] = a
	e.collIn++
	e.state[r.id] = stateColl
	e.park(r)
	res := e.collRes[r.id]
	e.collRes[r.id] = nil
	return res
}

// runCollective fires once every rank has parked at the same world
// collective: the batched executor replays each rank's exact message
// sequence, then all ranks become runnable at their post-collective
// clocks.
func (e *eventEngine) runCollective() {
	runBatched(e, e.collKind, e.collArgs, e.collRes)
	e.collIn = 0
	for i, r := range e.ranks {
		e.collArgs[i] = collArgs{}
		e.push(i, r.clock.Now())
	}
}

// splitWait implements the Split rendezvous (comm.go): non-last
// arrivers park; the last arriver — done is already closed when it gets
// here — wakes everyone and continues without yielding. Splits
// serialise globally (a rank cannot reach its next Split before every
// rank passed the current one), so one parked list suffices.
func (e *eventEngine) splitWait(r *Rank, done <-chan struct{}) {
	select {
	case <-done:
		for _, id := range e.splitParked {
			e.push(id, e.ranks[id].clock.Now())
		}
		e.splitParked = e.splitParked[:0]
	default:
		e.state[r.id] = stateSplit
		e.splitParked = append(e.splitParked, r.id)
		e.park(r)
	}
}

// abort reports why the loop stalled — a rank's error if one occurred,
// otherwise a deadlock diagnosis — and unwinds every parked goroutine
// so nothing leaks. (The goroutine engine hangs forever on the same
// programs; erroring out is the stricter behaviour.)
func (e *eventEngine) abort() error {
	var err error
	for _, rerr := range e.errs {
		if rerr != nil {
			err = rerr
			break
		}
	}
	if err == nil {
		var inRecv, inSplit int
		for _, s := range e.state {
			switch s {
			case stateRecv:
				inRecv++
			case stateSplit:
				inSplit++
			}
		}
		err = fmt.Errorf("simmpi: event engine deadlock: %d/%d ranks finished, %d parked in a collective, %d on recv, %d in split",
			e.done, len(e.ranks), e.collIn, inRecv, inSplit)
	}
	e.aborted = true
	for i := range e.ranks {
		if e.started[i] && e.state[i] != stateDone {
			e.resume[i] <- struct{}{}
			<-e.yield
		}
	}
	return err
}
