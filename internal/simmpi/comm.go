package simmpi

import (
	"fmt"
	"sort"
	"sync"

	"a64fxbench/internal/units"
)

// Comm is a sub-communicator: a subset of the job's ranks with its own
// contiguous numbering, as produced by Split (the analogue of
// MPI_Comm_split). Collectives on a Comm involve only its members and
// use a tag space disjoint from the world's.
type Comm struct {
	rank    *Rank
	members []int // world ranks, sorted; index = comm rank
	myRank  int
	// tagBase separates this communicator's traffic: derived from the
	// split color so all members agree.
	tagBase int
}

// splitState coordinates one Split call across the job's ranks.
type splitState struct {
	mu      sync.Mutex
	entries map[int][]splitEntry // color → entries
	done    chan struct{}
	arrived int
}

type splitEntry struct {
	worldRank int
	key       int
}

// Split partitions the world's ranks by color, ordering each new
// communicator by key (ties broken by world rank) — MPI_Comm_split.
// Every rank of the job must call Split the same number of times.
func (r *Rank) Split(color, key int) *Comm {
	j := r.job
	j.splitMu.Lock()
	if j.splits == nil {
		j.splits = map[int]*splitState{}
	}
	seq := j.splitSeq[r.id]
	j.splitSeq[r.id]++
	st, ok := j.splits[seq]
	if !ok {
		st = &splitState{
			entries: map[int][]splitEntry{},
			done:    make(chan struct{}),
		}
		j.splits[seq] = st
	}
	j.splitMu.Unlock()

	st.mu.Lock()
	st.entries[color] = append(st.entries[color], splitEntry{r.id, key})
	st.arrived++
	if st.arrived == r.size {
		close(st.done)
	}
	st.mu.Unlock()
	if r.eng != nil {
		// Event engine: a real-time channel wait would stall the one
		// runnable rank forever; park in the loop's rendezvous instead.
		r.eng.splitWait(r, st.done)
	} else {
		<-st.done
	}

	// The barrier above is a synchronisation in real time only; in
	// virtual time MPI_Comm_split is a collective, so charge a
	// barrier's worth of virtual time too.
	r.Barrier()

	st.mu.Lock()
	// Copy before sorting: every member sorts its own view.
	entries := append([]splitEntry(nil), st.entries[color]...)
	st.mu.Unlock()
	sort.Slice(entries, func(i, k int) bool {
		if entries[i].key != entries[k].key {
			return entries[i].key < entries[k].key
		}
		return entries[i].worldRank < entries[k].worldRank
	})
	c := &Comm{
		rank:    r,
		tagBase: 1<<27 + (seq<<8+color&0xff)<<12,
	}
	for i, e := range entries {
		c.members = append(c.members, e.worldRank)
		if e.worldRank == r.id {
			c.myRank = i
		}
	}
	return c
}

// Rank returns this member's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.members) }

// WorldRank translates a communicator rank to the world rank.
func (c *Comm) WorldRank(commRank int) int {
	if commRank < 0 || commRank >= len(c.members) {
		panic(fmt.Sprintf("simmpi: comm rank %d outside [0,%d)", commRank, len(c.members)))
	}
	return c.members[commRank]
}

// Send transmits to a communicator rank.
func (c *Comm) Send(dst, tag int, payload any, bytes units.Bytes) {
	c.rank.Send(c.WorldRank(dst), c.tagBase+tag, payload, bytes)
}

// Recv receives from a communicator rank.
func (c *Comm) Recv(src, tag int) any {
	return c.rank.Recv(c.WorldRank(src), c.tagBase+tag)
}

// SendFloats sends a float64 slice within the communicator without
// boxing it (see Rank.SendFloats).
func (c *Comm) SendFloats(dst, tag int, data []float64) {
	c.rank.SendFloats(c.WorldRank(dst), c.tagBase+tag, data)
}

// RecvFloats receives a float64 slice within the communicator.
func (c *Comm) RecvFloats(src, tag int) []float64 {
	return c.rank.RecvFloats(c.WorldRank(src), c.tagBase+tag)
}

// AllreduceScalar reduces one value across the communicator's members
// with a recursive-doubling pattern over communicator ranks.
func (c *Comm) AllreduceScalar(v float64, op Op) float64 {
	p := c.Size()
	if p == 1 {
		return v
	}
	// Fold to the largest power of two, double, unfold — the world
	// Allreduce algorithm restated over communicator ranks.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	id := c.myRank
	acc := v
	newID := -1
	switch {
	case id < 2*rem && id%2 == 0:
		c.SendFloats(id+1, 0, []float64{acc})
	case id < 2*rem:
		acc = op(acc, c.RecvFloats(id-1, 0)[0])
		newID = id / 2
	default:
		newID = id - rem
	}
	if newID >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerNew := newID ^ mask
			var partner int
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			} else {
				partner = partnerNew + rem
			}
			c.SendFloats(partner, 1+mask, []float64{acc})
			acc = op(acc, c.RecvFloats(partner, 1+mask)[0])
		}
	}
	switch {
	case id < 2*rem && id%2 == 0:
		acc = c.RecvFloats(id+1, 2)[0]
	case id < 2*rem:
		c.SendFloats(id-1, 2, []float64{acc})
	}
	return acc
}

// Barrier synchronises the communicator's members (dissemination over
// communicator ranks).
func (c *Comm) Barrier() {
	p := c.Size()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (c.myRank + k) % p
		src := (c.myRank - k + p) % p
		c.Send(dst, 3+round, nil, 0)
		c.Recv(src, 3+round)
	}
}
