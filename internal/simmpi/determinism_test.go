// Determinism stress test: the runtime's core promise is that virtual
// time is a pure function of the job, independent of how the Go
// scheduler interleaves the rank goroutines. This external test package
// (simmpi_test, so it can import the benchmark codes without a cycle)
// replays the same distributed HPCG and Nekbone jobs under a range of
// GOMAXPROCS values and demands bit-identical outcomes every time.
package simmpi_test

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// gomaxSchedule is the 10-run sweep of scheduler widths; repeats are
// deliberate — a run must match not only across widths but across
// repetitions at the same width.
var gomaxSchedule = []int{1, 2, 3, 4, 8, 16, 1, 4, 2, 8}

// hpcgOutcome captures everything a distributed HPCG job reports, with
// floats as bit patterns so equality is exact.
type hpcgOutcome struct {
	makespan   units.Duration
	gflopsBits uint64
	events     int
	msgs       int64
	bytes      units.Bytes
	iters      int
	solSum     uint64 // order-independent checksum of the solution bits
}

// runTracedHPCG executes a 6-rank, 2-node distributed HPCG solve on the
// A64FX model with tracing on under the given engine, and reduces it to
// a comparable outcome.
func runTracedHPCG(t *testing.T, eng simmpi.Engine) hpcgOutcome {
	t.Helper()
	const nx, ny, nz, procs, nodes = 8, 8, 12, 6, 2
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(procs/nodes, 1)
	sink := &simmpi.MemorySink{}
	cfg := simmpi.JobConfig{
		Procs: procs, Nodes: nodes, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(nodes),
		Sink:      sink,
		Engine:    eng,
	}
	b := make([]float64, nx*ny*nz)
	for i := range b {
		b[i] = math.Cos(float64(i) * 0.3)
	}
	var (
		mu     sync.Mutex
		solSum uint64
		iters  int
	)
	rep, err := simmpi.Run(cfg, func(r *simmpi.Rank) error {
		d, err := hpcg.NewDistributedStencilCG(r, nx, ny, nz)
		if err != nil {
			return err
		}
		// Reconstruct this rank's slab offset from the public extents.
		lo := slabStart(nz, r.Size(), r.ID()) * nx * ny
		x, it, relres := d.Solve(b[lo:lo+d.LocalLen()], 400, 1e-11)
		if relres > 1e-11 {
			return fmt.Errorf("rank %d did not converge: %v", r.ID(), relres)
		}
		var sum uint64
		for _, v := range x {
			sum += math.Float64bits(v)
		}
		mu.Lock()
		solSum += sum
		if r.ID() == 0 {
			iters = it
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return hpcgOutcome{
		makespan:   rep.Makespan,
		gflopsBits: math.Float64bits(rep.GFLOPs()),
		events:     len(sink.Events),
		msgs:       rep.TotalMsgs,
		bytes:      rep.TotalBytesSent,
		iters:      iters,
		solSum:     solSum,
	}
}

// slabStart mirrors hpcg's z-slab distribution of nz planes over p ranks.
func slabStart(nz, p, id int) int {
	base, rem := nz/p, nz%p
	lo := id * base
	if id < rem {
		return lo + id
	}
	return lo + rem
}

// TestHPCGDeterministicAcrossGOMAXPROCS replays the traced distributed
// solve ten times under varying scheduler widths — under BOTH engines,
// and demands the engines match each other as well as themselves. Must
// not run in parallel with other tests: GOMAXPROCS is process-global.
func TestHPCGDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	ref := runTracedHPCG(t, simmpi.EngineGoroutine)
	if ref.events == 0 {
		t.Fatal("tracing produced no events; the event-count assertion would be vacuous")
	}
	if ref.makespan <= 0 || ref.msgs == 0 {
		t.Fatalf("degenerate reference outcome: %+v", ref)
	}
	for i, n := range gomaxSchedule {
		runtime.GOMAXPROCS(n)
		for _, eng := range []simmpi.Engine{simmpi.EngineGoroutine, simmpi.EngineEvent} {
			got := runTracedHPCG(t, eng)
			if got != ref {
				t.Fatalf("run %d (GOMAXPROCS=%d, engine=%s): outcome diverged\n got %+v\nwant %+v", i, n, eng, got, ref)
			}
		}
	}
}

// TestNekboneDeterministicAcrossGOMAXPROCS does the same for the public
// Nekbone benchmark on a 4-node job (noise injection included — it is
// hashed, not random, and must replay exactly).
func TestNekboneDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	run := func() [5]uint64 {
		res, err := nekbone.Run(nekbone.Config{
			System: arch.MustGet(arch.A64FX), Nodes: 4,
			ElementsPerRank: 8, Order: 4, Iterations: 12,
		})
		if err != nil {
			t.Fatal(err)
		}
		return [5]uint64{
			math.Float64bits(res.GFLOPs),
			math.Float64bits(res.Seconds),
			uint64(res.Procs),
			uint64(res.Report.Makespan),
			uint64(res.Report.TotalMsgs),
		}
	}
	ref := run()
	for i, n := range gomaxSchedule {
		runtime.GOMAXPROCS(n)
		if got := run(); got != ref {
			t.Fatalf("run %d (GOMAXPROCS=%d): %v != %v", i, n, got, ref)
		}
	}
}
