// Package simmpi is a message-passing runtime for simulated parallel
// jobs: MPI ranks execute as goroutines, real data moves between them
// through channels, and every operation is priced in virtual time by the
// perfmodel (compute) and netmodel (communication) packages.
//
// The design keeps the classic MPI shape — ranks, tags, point-to-point
// sends and receives, and collectives built from them — so the benchmark
// codes read like their MPI originals. Virtual-time causality follows the
// conservative rule implemented in package vclock: a receive completes at
// max(receiver clock, message availability), where availability is the
// sender's clock at the send plus the fabric's transfer cost.
//
// Collectives are implemented as real message patterns (dissemination
// barrier, recursive-doubling allreduce, binomial broadcast, ring
// allgather), so their virtual-time behaviour — including load imbalance
// arriving at a collective — emerges from the runtime rather than from a
// closed-form formula.
package simmpi

import (
	"fmt"
	"math"
	"sync"

	"a64fxbench/internal/congestion"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/telemetry"
	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// Engine selects the execution substrate that drives the simulated
// ranks. Both engines implement the same virtual-time semantics and are
// bit-identical in every observable output (reports, traces, counters,
// link heatmaps); they differ only in how rank bodies are scheduled in
// real time.
type Engine string

// The available engines.
const (
	// EngineGoroutine (the default) runs every rank as its own
	// goroutine with channel-backed mailboxes — simple, parallel across
	// cores, and fine up to a few thousand ranks.
	EngineGoroutine Engine = "goroutine"
	// EngineEvent runs all ranks under a single-threaded discrete-event
	// loop: rank bodies become coroutine-style continuations that yield
	// at the blocking points (Recv, collectives, Split), a binary-heap
	// ready queue keyed on (virtual time, rank, sequence) picks the next
	// continuation, and world collectives are executed as one batched
	// event instead of N point-to-point rendezvous. This is the engine
	// for 10⁴–10⁵ rank jobs.
	EngineEvent Engine = "event"
)

// ParseEngine resolves a CLI-style engine name ("" means the default).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineGoroutine:
		return EngineGoroutine, nil
	case EngineEvent:
		return EngineEvent, nil
	}
	return "", fmt.Errorf("simmpi: unknown engine %q (want %q or %q)", s, EngineGoroutine, EngineEvent)
}

// JobConfig describes one simulated parallel job.
type JobConfig struct {
	// Procs is the total number of MPI ranks.
	Procs int
	// Nodes is the number of compute nodes the ranks occupy.
	Nodes int
	// ThreadsPerRank is the OpenMP-style thread count each rank drives;
	// it becomes PhaseOptions.Cores for compute phases.
	ThreadsPerRank int
	// FastMath enables the aggressive-compiler efficiency mode for all
	// compute phases of the job.
	FastMath bool
	// RankModel supplies the calibrated per-rank cost model; it is
	// called once per rank at startup. Required.
	RankModel func(rank int) *perfmodel.CostModel
	// Fabric prices inter-node communication. Required if Nodes > 1;
	// a nil fabric with Nodes == 1 prices all messages as intra-node
	// at a default shared-memory cost.
	Fabric *netmodel.Fabric
	// NodeOf maps a rank to its node index; nil means block placement
	// (rank r lives on node r/(Procs/Nodes)).
	NodeOf func(rank int) int
	// NoiseProb and NoiseDuration model OS/system noise: with the
	// given probability per compute phase (deterministically hashed
	// from rank and sequence number, so runs are reproducible), a rank
	// is delayed by NoiseDuration. In bulk-synchronous codes this is
	// what erodes parallel efficiency at scale — the effect behind the
	// paper's Table VII values.
	NoiseProb     float64
	NoiseDuration units.Duration
	// Congestion switches inter-node message pricing to the
	// contention-aware two-pass replay: the job first runs contention-
	// free with tracing off while recording every inter-node flow, the
	// congestion package solves per-flow dilations by max-min fair
	// sharing over the topology's routed links, and the job then re-runs
	// with each message's serialization term stretched by its flow's
	// dilation. Deterministic bodies see identical data in both passes,
	// so results stay bit-reproducible; only virtual times change.
	// Single-node jobs are never congested (shared memory is priced
	// separately), so their results are exactly those of the default.
	Congestion bool
	// Counters enables the virtual PMU: every rank accumulates the
	// metrics registry's counters (flops by class, cache-level traffic,
	// stall attribution, per-peer messages, collective time) and samples
	// them in virtual time at the configured period. The job report then
	// carries Report.Counters, and traced jobs additionally stream
	// EvCounter / EvCounterSample events. Nil — the default — disables
	// the PMU entirely; it costs nothing and changes no results either
	// way (phase times are evaluated through the same model terms).
	Counters *metrics.Config
	// Sink receives the job's event timeline (compute phases, sends,
	// receives, noise, region annotations). When nil — the default —
	// tracing is off and costs nothing. Events are streamed to the sink
	// after the job completes, merged across ranks in deterministic
	// (Start, Rank) order and bracketed by EvJobBegin/EvJobEnd markers;
	// the sink is NOT closed, so one sink can observe a sequence of jobs.
	Sink TraceSink
	// Label names the job in trace output (EvJobBegin/EvJobEnd markers);
	// empty defaults to "job p=<Procs>".
	Label string
	// Engine selects the execution substrate (see Engine). The empty
	// value means EngineGoroutine. Results are bit-identical across
	// engines; Engine is therefore an execution detail, like the worker
	// count of a sweep, and never part of an artifact's identity.
	Engine Engine
	// Model selects the analytic model pricing compute phases: the
	// calibrated roofline (the empty default) or the ECM memory-
	// hierarchy model (perfmodel.ModelECM). Unlike Engine, the model
	// changes simulated results, so it is part of every artifact's
	// identity (core.OptionsKey.Model).
	Model perfmodel.Model
	// Telemetry, when non-nil, is the parent span the runtime hangs the
	// job's phase spans under: setup, the congestion record/solve
	// passes, the run pass, report assembly, and the job's virtual
	// makespan (a virtual-clock span). Nil — the default — records
	// nothing and costs nothing; telemetry never changes simulated
	// results.
	Telemetry *telemetry.Span
}

// validate normalises and checks the configuration.
func (c *JobConfig) validate() error {
	if c.Procs < 1 {
		return fmt.Errorf("simmpi: Procs = %d, need ≥ 1", c.Procs)
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.Nodes > c.Procs {
		return fmt.Errorf("simmpi: Nodes (%d) > Procs (%d)", c.Nodes, c.Procs)
	}
	if c.ThreadsPerRank < 1 {
		c.ThreadsPerRank = 1
	}
	if c.RankModel == nil {
		return fmt.Errorf("simmpi: RankModel is required")
	}
	if c.Fabric == nil {
		if c.Nodes > 1 {
			return fmt.Errorf("simmpi: Fabric required for %d nodes", c.Nodes)
		}
		c.Fabric = &netmodel.Fabric{
			Name:             "shared-memory",
			Topo:             singleNodeTopo{},
			SoftwareOverhead: units.Duration(600 * units.Nanosecond),
			HopLatency:       0,
			LinkBandwidth:    10 * units.GBPerSec,
		}
	}
	if c.NodeOf == nil {
		perNode := (c.Procs + c.Nodes - 1) / c.Nodes
		c.NodeOf = func(r int) int { return r / perNode }
	}
	switch c.Engine {
	case "":
		c.Engine = EngineGoroutine
	case EngineGoroutine, EngineEvent:
	default:
		return fmt.Errorf("simmpi: unknown engine %q", c.Engine)
	}
	model, err := perfmodel.ParseModel(string(c.Model))
	if err != nil {
		return err
	}
	c.Model = model
	return nil
}

// singleNodeTopo is the trivial topology of one node.
type singleNodeTopo struct{}

func (singleNodeTopo) Name() string               { return "single-node" }
func (singleNodeTopo) Hops(a, b int) int          { return 0 }
func (singleNodeTopo) Route(a, b int) []topo.Link { return nil }
func (singleNodeTopo) MaxNodes() int              { return 1 }

// message is the unit carried between ranks. Float payloads — the
// overwhelming majority, including every collective internal — travel
// in the concrete floats field; boxing a slice into `any` costs a heap
// allocation per message, which at 10⁵ ranks is most of the garbage a
// job makes. payload carries the rare non-float Send.
type message struct {
	floats  []float64
	payload any
	bytes   units.Bytes
	avail   vclock.Time
}

// mailboxKey routes messages: exact (src, dst, tag) matching, FIFO order.
type mailboxKey struct {
	src, dst, tag int
}

// job is the shared state of a running simulated job.
type job struct {
	cfg     JobConfig
	congest *congestState // nil unless Congestion is on and Nodes > 1
	boxes   boxTable      // goroutine-engine mailboxes (see mailbox.go)

	// Split coordination (see comm.go).
	splitMu  sync.Mutex
	splits   map[int]*splitState
	splitSeq map[int]int
}

// Stats accumulates one rank's activity.
type Stats struct {
	// Flops and MemBytes total the metered compute work.
	Flops    units.Flops
	MemBytes units.Bytes
	// MsgsSent and BytesSent total point-to-point traffic (collective
	// internals included).
	MsgsSent  int64
	BytesSent units.Bytes
	// ClassTime breaks busy time down by kernel class.
	ClassTime map[perfmodel.KernelClass]units.Duration
}

// Rank is one simulated MPI process. The body function owns it; it is not
// safe for concurrent use.
type Rank struct {
	id       int
	size     int
	node     int
	clock    *vclock.Clock
	model    *perfmodel.CostModel
	job      *job
	eng      *eventEngine // nil under the goroutine engine
	stats    Stats
	noiseSeq uint64
	events   []Event
	regions  []regionFrame

	// pmu is the rank's virtual performance-counter unit (nil unless
	// JobConfig.Counters is set); collDepth tracks collective nesting so
	// only the outermost collective attributes its time.
	pmu       *metrics.RankPMU
	collDepth int

	// Congestion-replay state (see congested.go): flowSeq numbers this
	// rank's sends per (dst, tag) in program order so both passes derive
	// identical flow keys; flows is the recording pass's log.
	flowSeq map[flowRoute]int
	flows   []congestion.Flow
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the total rank count.
func (r *Rank) Size() int { return r.size }

// Node returns the node index this rank is placed on.
func (r *Rank) Node() int { return r.node }

// Now returns the rank's current virtual time.
func (r *Rank) Now() vclock.Time { return r.clock.Now() }

// Model exposes the rank's cost model (read-only use).
func (r *Rank) Model() *perfmodel.CostModel { return r.model }

// Stats returns a copy of the rank's accumulated statistics.
func (r *Rank) Stats() Stats {
	s := r.stats
	s.ClassTime = make(map[perfmodel.KernelClass]units.Duration, len(r.stats.ClassTime))
	for k, v := range r.stats.ClassTime {
		s.ClassTime[k] = v
	}
	return s
}

// Compute executes a metered kernel phase: the rank's clock advances by
// the modelled phase time.
func (r *Rank) Compute(w perfmodel.WorkProfile) {
	opt := perfmodel.PhaseOptions{
		Cores:    r.job.cfg.ThreadsPerRank,
		FastMath: r.job.cfg.FastMath,
	}
	var d units.Duration
	switch {
	case r.pmu != nil && r.job.cfg.Model == perfmodel.ModelECM:
		// ECM mode: the per-level transfer phases are first-class
		// counters. TimeFlops carries the in-core phase; the memory
		// wait is split across the ecm.* level counters instead of
		// stall.mem, and the overlap credit is subtracted so
		// TimeFlops + ecm.l1 + ecm.l2 + ecm.mem + stall.call −
		// ecm.hidden == phase time exactly.
		bd := r.model.ECMBreakdown(w, opt)
		d = bd.Time
		r.pmu.Add(metrics.FlopsFor(w.Class), float64(w.Flops))
		r.pmu.Add(metrics.MemDRAM, float64(w.Bytes))
		r.pmu.Add(metrics.MemL2, float64(bd.L2Bytes))
		r.pmu.Add(metrics.MemL1, float64(bd.L1Bytes))
		r.pmu.AddTime(metrics.TimeFlops, bd.CoreTime)
		r.pmu.AddTime(metrics.ECML1, bd.L1Time)
		r.pmu.AddTime(metrics.ECML2, bd.L2Time)
		r.pmu.AddTime(metrics.ECMMem, bd.MemTime)
		r.pmu.AddTime(metrics.ECMHidden, bd.Hidden)
		r.pmu.AddTime(metrics.StallCall, bd.Overhead)
	case r.pmu != nil:
		// PhaseBreakdown evaluates the same roofline terms as PhaseTime
		// (bd.Time is bit-identical), plus the counter-grade split.
		bd := r.model.PhaseBreakdown(w, opt)
		d = bd.Time
		r.pmu.Add(metrics.FlopsFor(w.Class), float64(w.Flops))
		r.pmu.Add(metrics.MemDRAM, float64(w.Bytes))
		r.pmu.Add(metrics.MemL2, float64(bd.L2Bytes))
		r.pmu.Add(metrics.MemL1, float64(bd.L1Bytes))
		r.pmu.AddTime(metrics.TimeFlops, bd.FlopTime)
		r.pmu.AddTime(metrics.StallMem, bd.MemStall)
		r.pmu.AddTime(metrics.StallCall, bd.Overhead)
	default:
		d = r.model.PhaseTimeFor(r.job.cfg.Model, w, opt)
	}
	start := r.clock.Now()
	r.clock.Advance(d)
	r.observe()
	r.record(Event{
		Kind: EvCompute, Start: start, Duration: d, Class: w.Class,
		Peer: -1, Flops: w.Flops, Bytes: w.Bytes,
	})
	if p := r.job.cfg.NoiseProb; p > 0 {
		r.noiseSeq++
		h := splitmix64(uint64(r.id)*0x9E3779B97F4A7C15 + r.noiseSeq)
		if float64(h>>11)/(1<<53) < p {
			r.record(Event{Kind: EvNoise, Start: r.clock.Now(), Duration: r.job.cfg.NoiseDuration, Peer: -1})
			r.clock.Advance(r.job.cfg.NoiseDuration)
			if r.pmu != nil {
				r.pmu.AddTime(metrics.StallNoise, r.job.cfg.NoiseDuration)
				r.observe()
			}
		}
	}
	r.stats.Flops += w.Flops
	r.stats.MemBytes += w.Bytes
	if r.stats.ClassTime == nil {
		r.stats.ClassTime = make(map[perfmodel.KernelClass]units.Duration)
	}
	r.stats.ClassTime[w.Class] += d
}

// observe samples the PMU at the rank's current clock. No-op without a
// PMU.
func (r *Rank) observe() {
	if r.pmu != nil {
		r.pmu.Observe(units.Duration(r.clock.Now()))
	}
}

// splitmix64 is the SplitMix64 mixing function — a fast, deterministic
// hash used for reproducible noise injection.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Elapse advances the rank's clock by a fixed duration (setup phases,
// modelled I/O, etc.).
func (r *Rank) Elapse(d units.Duration) {
	r.clock.Advance(d)
	if r.pmu != nil {
		r.pmu.AddTime(metrics.TimeOther, d)
		r.observe()
	}
}

// sendCore prices one outgoing message and performs every per-rank side
// effect of a send — clock, PMU, statistics, congestion flows, and the
// trace event — but leaves delivery to the caller. Both engines and the
// batched collective executor share it, which is what makes their
// observable outputs bit-identical by construction.
func (r *Rank) sendCore(dst, tag int, payload any, bytes units.Bytes) message {
	m := r.sendFloatsCore(dst, tag, nil, bytes)
	m.payload = payload
	return m
}

// sendFloatsCore is sendCore for float-slice payloads — the dominant
// case, including every collective internal. Keeping the slice header
// in the message's concrete floats field avoids the interface-boxing
// heap allocation that Send pays once per message.
func (r *Rank) sendFloatsCore(dst, tag int, data []float64, bytes units.Bytes) message {
	if dst < 0 || dst >= r.size {
		panic(fmt.Sprintf("simmpi: send to invalid rank %d (size %d)", dst, r.size))
	}
	f := r.job.cfg.Fabric
	dstNode := r.job.cfg.NodeOf(dst)
	sendAt := r.clock.Now()
	var total units.Duration
	if cs := r.job.congest; cs != nil && dstNode != r.node {
		k := congestion.FlowKey{Src: r.id, Dst: dst, Tag: tag, Seq: r.nextFlowSeq(dst, tag)}
		if cs.recording {
			total = f.PointToPoint(r.node, dstNode, bytes)
			if bytes > 0 {
				r.flows = append(r.flows, congestion.Flow{
					Key: k, SrcNode: r.node, DstNode: dstNode,
					Start: sendAt, Bytes: bytes,
				})
			}
		} else {
			total = f.PointToPointDilated(r.node, dstNode, bytes, cs.sol.Dilation(k))
		}
	} else if r.eng != nil {
		// Contention-free pricing is a pure function of (hops, bytes);
		// the event engine memoises it (see eventEngine.price).
		total = r.eng.price(r.node, dstNode, bytes)
	} else {
		total = f.PointToPoint(r.node, dstNode, bytes)
	}
	// The sender's CPU is occupied for the injection overhead; the rest
	// of the transfer overlaps with whatever the sender does next.
	r.clock.Advance(f.SoftwareOverhead / 2)
	if r.pmu != nil {
		r.pmu.AddTime(metrics.NetInject, f.SoftwareOverhead/2)
		r.pmu.Add(metrics.SentMsgs, 1)
		r.pmu.Add(metrics.SentBytes, float64(bytes))
		r.pmu.AddPeer(dst, bytes)
		r.observe()
	}
	r.stats.MsgsSent++
	r.stats.BytesSent += bytes
	r.record(Event{Kind: EvSend, Start: sendAt, Duration: f.SoftwareOverhead / 2, Peer: dst, Tag: tag, Bytes: bytes})
	return message{
		floats: data,
		bytes:  bytes,
		avail:  sendAt.Add(total),
	}
}

// recvCore performs every per-rank side effect of receiving m — the
// virtual-time jump to its availability, PMU, and the trace event — and
// returns the payload. The caller has already matched the message.
func (r *Rank) recvCore(m message, src, tag int) any {
	r.recvFloatsCore(m, src, tag)
	if m.floats != nil {
		return m.floats
	}
	return m.payload
}

// recvFloatsCore is recvCore for float-slice payloads: identical side
// effects, but the payload stays a concrete []float64 end to end.
func (r *Rank) recvFloatsCore(m message, src, tag int) []float64 {
	start := r.clock.Now()
	r.clock.AdvanceTo(m.avail)
	wait := units.Duration(vclock.Max(m.avail, start) - start)
	if r.pmu != nil {
		r.pmu.AddTime(metrics.StallNet, wait)
		r.pmu.Add(metrics.RecvMsgs, 1)
		r.pmu.Add(metrics.RecvBytes, float64(m.bytes))
		r.observe()
	}
	r.record(Event{
		Kind: EvRecv, Start: start,
		Duration: wait,
		Peer:     src, Tag: tag, Bytes: m.bytes,
	})
	return m.floats
}

// deliver hands a priced message to the active engine's matching layer.
func (r *Rank) deliver(dst, tag int, m message) {
	if r.eng != nil {
		r.eng.post(r.id, dst, tag, m)
		return
	}
	r.job.boxes.send(mailboxKey{r.id, dst, tag}, m)
}

// fetch blocks until a message from src with the given tag is matched.
func (r *Rank) fetch(src, tag int) message {
	if src < 0 || src >= r.size {
		panic(fmt.Sprintf("simmpi: recv from invalid rank %d (size %d)", src, r.size))
	}
	if r.eng != nil {
		return r.eng.await(r, src, tag)
	}
	return r.job.boxes.recv(mailboxKey{src, r.id, tag})
}

// Send transmits payload to rank dst with the given tag. The payload's
// ownership passes to the receiver; senders must not mutate it afterwards.
// bytes is the modelled wire size (callers know their datatype sizes).
func (r *Rank) Send(dst, tag int, payload any, bytes units.Bytes) {
	r.deliver(dst, tag, r.sendCore(dst, tag, payload, bytes))
}

// Recv blocks until a message from src with the given tag arrives,
// advances virtual time to its availability, and returns the payload.
func (r *Rank) Recv(src, tag int) any {
	return r.recvCore(r.fetch(src, tag), src, tag)
}

// SendFloats sends a float64 slice (8 bytes per element on the wire).
// Unlike Send, the slice is never boxed into an interface, so the send
// itself does not allocate.
func (r *Rank) SendFloats(dst, tag int, data []float64) {
	r.deliver(dst, tag, r.sendFloatsCore(dst, tag, data, units.Bytes(8*len(data))))
}

// RecvFloats receives a float64 slice sent with SendFloats.
func (r *Rank) RecvFloats(src, tag int) []float64 {
	return r.recvFloatsCore(r.fetch(src, tag), src, tag)
}

// Sendrecv exchanges slices with a partner rank without deadlock (sends
// are buffered/eager). It returns the partner's payload.
func (r *Rank) Sendrecv(partner, tag int, data []float64) []float64 {
	r.SendFloats(partner, tag, data)
	return r.RecvFloats(partner, tag)
}

// Internal tags for collectives live far above user tags.
const (
	tagBarrier = 1 << 20
	tagReduce  = 1 << 21
	tagBcast   = 1 << 22
	tagGather  = 1 << 23
	tagA2A     = 1 << 24
	tagRS      = 1 << 25
	tagScan    = 1 << 26
)

// collBegin opens a collective for PMU time attribution and returns
// its start time; collEnd (deferred) closes it. Only the outermost
// collective attributes — nested ones (e.g. the non-power-of-two
// ReduceScatter path reducing to a root) are part of their parent.
func (r *Rank) collBegin() vclock.Time {
	r.collDepth++
	return r.clock.Now()
}

func (r *Rank) collEnd(c metrics.Collective, start vclock.Time) {
	r.collDepth--
	if r.pmu != nil && r.collDepth == 0 {
		r.pmu.AddTime(metrics.CollTime(c), units.Duration(r.clock.Now()-start))
	}
}

// Barrier synchronises all ranks with a dissemination barrier.
func (r *Rank) Barrier() {
	p := r.size
	if p == 1 {
		return
	}
	if r.eng != nil {
		r.eng.collective(r, collArgs{kind: collBarrier})
		return
	}
	defer r.collEnd(metrics.CollBarrier, r.collBegin())
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		r.Send(dst, tagBarrier+round, nil, 0)
		r.Recv(src, tagBarrier+round)
	}
}

// Op is a reduction operator for float64 elements.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	OpSum Op = func(a, b float64) float64 { return a + b }
	OpMax Op = math.Max
	OpMin Op = math.Min
)

// Allreduce combines buf element-wise across all ranks with op, leaving
// the result in buf on every rank. It uses recursive doubling with the
// standard pre/post folding for non-power-of-two sizes.
func (r *Rank) Allreduce(buf []float64, op Op) {
	p := r.size
	if p == 1 {
		return
	}
	if r.eng != nil {
		r.eng.collective(r, collArgs{kind: collAllreduce, buf: buf, op: op})
		return
	}
	defer r.collEnd(metrics.CollAllreduce, r.collBegin())
	// pof2 is the largest power of two ≤ p.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	id := r.id
	// Phase 1: the first 2*rem ranks fold pairs so pof2 ranks remain.
	newID := -1
	switch {
	case id < 2*rem && id%2 == 0:
		// Sends data to the odd partner and drops out.
		r.SendFloats(id+1, tagReduce, append([]float64(nil), buf...))
	case id < 2*rem:
		other := r.RecvFloats(id-1, tagReduce)
		for i := range buf {
			buf[i] = op(buf[i], other[i])
		}
		newID = id / 2
	default:
		newID = id - rem
	}
	// Phase 2: recursive doubling among the pof2 survivors.
	if newID >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			partnerNew := newID ^ mask
			var partner int
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			} else {
				partner = partnerNew + rem
			}
			other := r.Sendrecv(partner, tagReduce+1+mask, append([]float64(nil), buf...))
			for i := range buf {
				buf[i] = op(buf[i], other[i])
			}
		}
	}
	// Phase 3: survivors return results to the dropped-out ranks.
	switch {
	case id < 2*rem && id%2 == 0:
		res := r.RecvFloats(id+1, tagReduce+2)
		copy(buf, res)
	case id < 2*rem:
		r.SendFloats(id-1, tagReduce+2, append([]float64(nil), buf...))
	}
}

// AllreduceScalar reduces a single value across ranks.
func (r *Rank) AllreduceScalar(v float64, op Op) float64 {
	buf := []float64{v}
	r.Allreduce(buf, op)
	return buf[0]
}

// Bcast distributes root's buf to every rank via a binomial tree and
// returns the (possibly replaced) slice.
func (r *Rank) Bcast(root int, buf []float64) []float64 {
	p := r.size
	if p == 1 {
		return buf
	}
	if r.eng != nil {
		return r.eng.collective(r, collArgs{kind: collBcast, buf: buf, root: root}).([]float64)
	}
	defer r.collEnd(metrics.CollBcast, r.collBegin())
	// Rotate so the root is virtual rank 0.
	vrank := (r.id - root + p) % p
	// Receive from parent (highest set bit), then forward down.
	if vrank != 0 {
		mask := 1
		for mask <= vrank {
			mask <<= 1
		}
		mask >>= 1
		parent := ((vrank - mask) + root) % p
		buf = r.RecvFloats(parent, tagBcast)
	}
	// Children: vrank + m for each m > current highest bit, m < p.
	low := 1
	for low <= vrank {
		low <<= 1
	}
	for m := low; vrank+m < p; m <<= 1 {
		child := (vrank + m + root) % p
		r.SendFloats(child, tagBcast, append([]float64(nil), buf...))
	}
	return buf
}

// Reduce combines buf onto the root (binomial tree). Non-root ranks'
// buffers are left partially combined, as in MPI.
func (r *Rank) Reduce(root int, buf []float64, op Op) {
	p := r.size
	if p == 1 {
		return
	}
	if r.eng != nil {
		r.eng.collective(r, collArgs{kind: collReduce, buf: buf, op: op, root: root})
		return
	}
	defer r.collEnd(metrics.CollReduce, r.collBegin())
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask == 0 {
			partner := vrank | mask
			if partner < p {
				other := r.RecvFloats((partner+root)%p, tagReduce+3)
				for i := range buf {
					buf[i] = op(buf[i], other[i])
				}
			}
		} else {
			parent := vrank &^ mask
			r.SendFloats((parent+root)%p, tagReduce+3, append([]float64(nil), buf...))
			return
		}
		mask <<= 1
	}
}

// Allgather concatenates each rank's contribution, in rank order, on all
// ranks using the ring algorithm. Each contribution must have length n.
func (r *Rank) Allgather(contrib []float64) []float64 {
	p := r.size
	n := len(contrib)
	out := make([]float64, n*p)
	copy(out[r.id*n:], contrib)
	if p == 1 {
		return out
	}
	if r.eng != nil {
		return r.eng.collective(r, collArgs{kind: collAllgather, buf: contrib, out: out}).([]float64)
	}
	defer r.collEnd(metrics.CollAllgather, r.collBegin())
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	cur := r.id
	block := append([]float64(nil), contrib...)
	for step := 0; step < p-1; step++ {
		r.SendFloats(right, tagGather+step, block)
		block = r.RecvFloats(left, tagGather+step)
		cur = (cur - 1 + p) % p
		copy(out[cur*n:], block)
	}
	return out
}

// Alltoall performs a pairwise-exchange all-to-all: send[i] goes to rank
// i, and the returned slice holds what each rank sent to us, indexed by
// source. Each send[i] must have equal length.
func (r *Rank) Alltoall(send [][]float64) [][]float64 {
	p := r.size
	if len(send) != p {
		panic(fmt.Sprintf("simmpi: Alltoall needs %d blocks, got %d", p, len(send)))
	}
	recv := make([][]float64, p)
	recv[r.id] = send[r.id]
	if p == 1 {
		return recv
	}
	if r.eng != nil {
		return r.eng.collective(r, collArgs{kind: collAlltoall, mat: send, recvMat: recv}).([][]float64)
	}
	defer r.collEnd(metrics.CollAlltoall, r.collBegin())
	if p&(p-1) == 0 {
		// Power of two: XOR pairwise exchange.
		for step := 1; step < p; step++ {
			partner := r.id ^ step
			recv[partner] = r.Sendrecv(partner, tagA2A+step, send[partner])
		}
		return recv
	}
	// General case: rotation schedule — every rank sends to (id+step)
	// and receives from (id-step) each step, so all steps match.
	for step := 1; step < p; step++ {
		dst := (r.id + step) % p
		src := (r.id - step + p) % p
		r.SendFloats(dst, tagA2A+step, send[dst])
		recv[src] = r.RecvFloats(src, tagA2A+step)
	}
	return recv
}

// ReduceScatter reduces buf element-wise across ranks and scatters the
// result: rank i receives the reduced block i of the p equal blocks of
// buf (len(buf) must be divisible by p). Implemented as the first half
// of Rabenseifner's allreduce: pairwise exchange with recursive halving.
func (r *Rank) ReduceScatter(buf []float64, op Op) []float64 {
	p := r.size
	n := len(buf)
	if n%p != 0 {
		panic(fmt.Sprintf("simmpi: ReduceScatter length %d not divisible by %d ranks", n, p))
	}
	blk := n / p
	if p == 1 {
		return append([]float64(nil), buf...)
	}
	if r.eng != nil {
		return r.eng.collective(r, collArgs{kind: collReduceScatter, buf: buf, op: op}).([]float64)
	}
	defer r.collEnd(metrics.CollReduceScatter, r.collBegin())
	if p&(p-1) != 0 {
		// Non-power-of-two: reduce to root then scatter (simple and
		// correct; the common benchmark sizes are powers of two).
		work := append([]float64(nil), buf...)
		r.Reduce(0, work, op)
		if r.id == 0 {
			for dst := 1; dst < p; dst++ {
				r.SendFloats(dst, tagRS, work[dst*blk:(dst+1)*blk])
			}
			return append([]float64(nil), work[:blk]...)
		}
		return r.RecvFloats(0, tagRS)
	}
	// Recursive halving: at each step exchange the half of the buffer
	// the partner is responsible for.
	work := append([]float64(nil), buf...)
	lo, hi := 0, n
	for mask := p >> 1; mask >= 1; mask >>= 1 {
		partner := r.id ^ mask
		mid := (lo + hi) / 2
		var sendLo, sendHi, keepLo, keepHi int
		if r.id&mask == 0 {
			sendLo, sendHi, keepLo, keepHi = mid, hi, lo, mid
		} else {
			sendLo, sendHi, keepLo, keepHi = lo, mid, mid, hi
		}
		other := r.Sendrecv(partner, tagRS+1+mask, append([]float64(nil), work[sendLo:sendHi]...))
		for i := keepLo; i < keepHi; i++ {
			work[i] = op(work[i], other[i-keepLo])
		}
		lo, hi = keepLo, keepHi
	}
	return append([]float64(nil), work[lo:hi]...)
}

// ExScan computes the exclusive prefix reduction: rank i receives
// op(buf₀, …, buf_{i-1}) element-wise; rank 0 receives zeros (the
// additive identity — intended for OpSum-style operators). Linear
// pipeline implementation.
func (r *Rank) ExScan(buf []float64, op Op) []float64 {
	if r.eng != nil && r.size > 1 {
		return r.eng.collective(r, collArgs{kind: collExScan, buf: buf, op: op}).([]float64)
	}
	if r.size > 1 {
		defer r.collEnd(metrics.CollExScan, r.collBegin())
	}
	out := make([]float64, len(buf))
	if r.id > 0 {
		prev := r.RecvFloats(r.id-1, tagScan)
		copy(out, prev)
	}
	if r.id < r.size-1 {
		next := make([]float64, len(buf))
		if r.id == 0 {
			copy(next, buf)
		} else {
			for i := range next {
				next[i] = op(out[i], buf[i])
			}
		}
		r.SendFloats(r.id+1, tagScan, next)
	}
	return out
}

// RankResult captures one rank's final accounting.
type RankResult struct {
	Rank   int
	Node   int
	Finish vclock.Time
	Busy   units.Duration
	Wait   units.Duration
	Stats  Stats
}

// Report summarises a completed job.
type Report struct {
	// Makespan is the virtual time at which the slowest rank finished —
	// the simulated job runtime.
	Makespan units.Duration
	// TotalFlops sums metered flops across ranks.
	TotalFlops units.Flops
	// TotalBytesSent sums point-to-point wire traffic.
	TotalBytesSent units.Bytes
	// TotalMsgs counts point-to-point messages.
	TotalMsgs int64
	// MeanBusy and MeanWait average the per-rank busy/wait split.
	MeanBusy units.Duration
	MeanWait units.Duration
	// Ranks holds per-rank results, indexed by rank.
	Ranks []RankResult
	// Links is the per-link contention accounting of a congestion-
	// enabled multi-node run; nil otherwise.
	Links *congestion.LinkReport
	// Counters is the virtual PMU's accounting — final per-rank counter
	// vectors, sampled virtual-time series, and per-peer traffic —
	// present exactly when JobConfig.Counters was set.
	Counters *metrics.JobCounters
}

// GFLOPs reports the aggregate achieved rate: total flops over makespan.
func (rep Report) GFLOPs() float64 {
	return units.Rate(float64(rep.TotalFlops), rep.Makespan) / 1e9
}

// Seconds reports the makespan in seconds.
func (rep Report) Seconds() float64 { return rep.Makespan.Seconds() }

// Run executes body on every rank of the configured job and returns the
// aggregated report. The first non-nil error from any rank aborts the
// report (but all goroutines are still joined).
func Run(cfg JobConfig, body func(*Rank) error) (Report, error) {
	label := cfg.Label
	if label == "" {
		label = fmt.Sprintf("job p=%d", cfg.Procs)
	}
	jobSpan := cfg.Telemetry.Child("job:" + label)
	defer jobSpan.End()
	setup := jobSpan.Child("setup")
	if err := cfg.validate(); err != nil {
		setup.Fail(err)
		setup.End()
		jobSpan.Fail(err)
		return Report{}, err
	}
	setup.End()
	jobSpan.SetAttr("ranks", cfg.Procs)
	jobSpan.SetAttr("nodes", cfg.Nodes)
	jobSpan.SetAttr("engine", string(cfg.Engine))
	var cs *congestState
	if cfg.Congestion && cfg.Nodes > 1 {
		sol, err := recordAndSolve(cfg, body, jobSpan)
		if err != nil {
			jobSpan.Fail(err)
			return Report{}, err
		}
		cs = &congestState{sol: sol}
	}
	runSpan := jobSpan.Child("run-pass")
	ranks, err := runRanks(cfg, body, cs)
	runSpan.Fail(err)
	runSpan.End()
	if err != nil {
		jobSpan.Fail(err)
		return Report{}, err
	}
	reportSpan := jobSpan.Child("report")
	defer reportSpan.End()

	rep := Report{Ranks: make([]RankResult, cfg.Procs)}
	if cs != nil {
		rep.Links = cs.sol.Links
	}
	var busySum, waitSum float64
	for i, r := range ranks {
		r.closeRegions()
		res := RankResult{
			Rank:   i,
			Node:   r.node,
			Finish: r.clock.Now(),
			Busy:   r.clock.BusyTime(),
			Wait:   r.clock.WaitTime(),
			Stats:  r.Stats(),
		}
		rep.Ranks[i] = res
		if units.Duration(res.Finish) > rep.Makespan {
			rep.Makespan = units.Duration(res.Finish)
		}
		rep.TotalFlops += res.Stats.Flops
		rep.TotalBytesSent += res.Stats.BytesSent
		rep.TotalMsgs += res.Stats.MsgsSent
		busySum += res.Busy.Seconds()
		waitSum += res.Wait.Seconds()
	}
	n := float64(cfg.Procs)
	rep.MeanBusy = units.DurationFromSeconds(busySum / n)
	rep.MeanWait = units.DurationFromSeconds(waitSum / n)

	if cfg.Counters != nil {
		jc := &metrics.JobCounters{Ranks: make([]metrics.RankCounters, len(ranks))}
		for i, r := range ranks {
			jc.Ranks[i] = r.pmu.Counters(i)
		}
		rep.Counters = jc
	}

	if cfg.Sink != nil {
		// Merge per-rank logs into one deterministic stream. The ranks
		// have joined, so this runs on a single goroutine; virtual-time
		// ordering makes the result independent of real scheduling.
		var tl Timeline
		for _, r := range ranks {
			tl = append(tl, r.events...)
		}
		sortTimeline(tl)
		label := cfg.Label
		if label == "" {
			label = fmt.Sprintf("job p=%d", cfg.Procs)
		}
		cfg.Sink.Record(Event{Kind: EvJobBegin, Rank: -1, Node: -1, Peer: -1, Name: label})
		for _, e := range tl {
			cfg.Sink.Record(e)
		}
		emitLinkEvents(cfg.Sink, rep.Links)
		emitCounterEvents(cfg.Sink, &rep)
		cfg.Sink.Record(Event{
			Kind: EvJobEnd, Rank: -1, Node: -1, Peer: -1, Name: label,
			Start: vclock.Time(rep.Makespan), Duration: rep.Makespan,
		})
	}
	// The virtual-clock side of the story: how long the simulated
	// machine ran, alongside the wall-clock spans of how long the host
	// worked to simulate it.
	jobSpan.Record("virtual-makespan", telemetry.ClockVirtual, 0, int64(rep.Makespan),
		telemetry.Attr{Key: "gflops", Value: rep.GFLOPs()})
	return rep, nil
}

// runRanks executes body on every rank under the configured engine and
// returns the ranks with their final clocks and logs. cs selects the
// congestion-replay mode (nil = contention-free pricing).
func runRanks(cfg JobConfig, body func(*Rank) error, cs *congestState) ([]*Rank, error) {
	j := &job{cfg: cfg, congest: cs, splitSeq: map[int]int{}}
	ranks := make([]*Rank, cfg.Procs)
	for i := range ranks {
		ranks[i] = &Rank{
			id:    i,
			size:  cfg.Procs,
			node:  cfg.NodeOf(i),
			clock: vclock.NewClock(),
			model: cfg.RankModel(i),
			job:   j,
		}
		if cfg.Counters != nil {
			ranks[i].pmu = metrics.NewRankPMU(*cfg.Counters, cfg.Procs)
		}
	}
	if cfg.Engine == EngineEvent {
		return ranks, runEventLoop(j, ranks, body)
	}
	return ranks, runGoroutines(ranks, body)
}

// runGoroutines is the classic engine: one goroutine per rank, real
// channels between them, the Go scheduler free to interleave.
func runGoroutines(ranks []*Rank, body func(*Rank) error) error {
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for i := range ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r.id] = fmt.Errorf("rank %d panicked: %v", r.id, p)
				}
			}()
			errs[r.id] = body(r)
		}(ranks[i])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
