package simmpi

import (
	"fmt"
	"testing"
)

func TestSplitByParity(t *testing.T) {
	t.Parallel()
	// 8 ranks split into even/odd communicators of 4.
	_, err := Run(cfg(8, 2), func(r *Rank) error {
		c := r.Split(r.ID()%2, r.ID())
		if c.Size() != 4 {
			return fmt.Errorf("rank %d: comm size %d", r.ID(), c.Size())
		}
		// Comm rank follows key order: world 0,2,4,6 → comm 0,1,2,3.
		if want := r.ID() / 2; c.Rank() != want {
			return fmt.Errorf("world %d: comm rank %d, want %d", r.ID(), c.Rank(), want)
		}
		// World-rank translation round-trips.
		if c.WorldRank(c.Rank()) != r.ID() {
			return fmt.Errorf("world %d: translation broken", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	t.Parallel()
	// Reverse keys invert the communicator ordering.
	_, err := Run(cfg(4, 1), func(r *Rank) error {
		c := r.Split(0, -r.ID())
		if want := 3 - r.ID(); c.Rank() != want {
			return fmt.Errorf("world %d: comm rank %d, want %d", r.ID(), c.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommAllreduce(t *testing.T) {
	t.Parallel()
	// Two communicators reduce independently: evens sum even world
	// ranks, odds sum odd ones.
	for _, p := range []int{2, 5, 8, 12} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				c := r.Split(r.ID()%2, r.ID())
				got := c.AllreduceScalar(float64(r.ID()), OpSum)
				want := 0.0
				for w := r.ID() % 2; w < p; w += 2 {
					want += float64(w)
				}
				if got != want {
					return fmt.Errorf("world %d: sum %v, want %v", r.ID(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCommSendRecv(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(6, 2), func(r *Rank) error {
		c := r.Split(r.ID()%2, r.ID())
		// Ring within the communicator.
		next := (c.Rank() + 1) % c.Size()
		prev := (c.Rank() - 1 + c.Size()) % c.Size()
		c.SendFloats(next, 9, []float64{float64(r.ID())})
		got := c.RecvFloats(prev, 9)
		wantWorld := c.WorldRank(prev)
		if got[0] != float64(wantWorld) {
			return fmt.Errorf("world %d: got %v from comm rank %d (world %d)",
				r.ID(), got[0], prev, wantWorld)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommBarrier(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(8, 2), func(r *Rank) error {
		c := r.Split(r.ID()/4, r.ID()) // two comms of 4
		c.Barrier()
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleSplits(t *testing.T) {
	t.Parallel()
	// Row/column communicators of a 2×4 grid, as hybrid codes build.
	_, err := Run(cfg(8, 2), func(r *Rank) error {
		row := r.Split(r.ID()/4, r.ID())
		col := r.Split(r.ID()%4, r.ID())
		if row.Size() != 4 || col.Size() != 2 {
			return fmt.Errorf("world %d: row %d col %d", r.ID(), row.Size(), col.Size())
		}
		// Sum over rows then over columns reaches the global sum.
		rowSum := row.AllreduceScalar(float64(r.ID()), OpSum)
		total := col.AllreduceScalar(rowSum, OpSum)
		if total != 28 { // 0+1+...+7
			return fmt.Errorf("world %d: total %v", r.ID(), total)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankPanics(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(2, 1), func(r *Rank) error {
		c := r.Split(0, r.ID())
		c.WorldRank(5)
		return nil
	})
	if err == nil {
		t.Error("out-of-range comm rank should error via recovered panic")
	}
}
