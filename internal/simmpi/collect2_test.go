package simmpi

import (
	"fmt"
	"testing"
)

func TestReduceScatter(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 4, 8, 3, 6} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				// buf[j] = rank+1 for all j; reduced sum = p(p+1)/2.
				buf := make([]float64, 2*p)
				for j := range buf {
					buf[j] = float64(r.ID() + 1)
				}
				out := r.ReduceScatter(buf, OpSum)
				if len(out) != 2 {
					return fmt.Errorf("block length %d, want 2", len(out))
				}
				want := float64(p*(p+1)) / 2
				if out[0] != want || out[1] != want {
					return fmt.Errorf("rank %d got %v, want %v", r.ID(), out, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceScatterBlocks(t *testing.T) {
	t.Parallel()
	// Distinct blocks: buf block k filled with k; each rank receives
	// p×(its own index).
	p := 4
	_, err := Run(cfg(p, 2), func(r *Rank) error {
		buf := make([]float64, p)
		for k := 0; k < p; k++ {
			buf[k] = float64(k)
		}
		out := r.ReduceScatter(buf, OpSum)
		want := float64(p * r.ID())
		if out[0] != want {
			return fmt.Errorf("rank %d got %v, want %v", r.ID(), out[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterIndivisiblePanics(t *testing.T) {
	t.Parallel()
	_, err := Run(cfg(3, 1), func(r *Rank) error {
		r.ReduceScatter(make([]float64, 4), OpSum)
		return nil
	})
	if err == nil {
		t.Error("indivisible buffer should error")
	}
}

func TestExScan(t *testing.T) {
	t.Parallel()
	for _, p := range []int{1, 2, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			_, err := Run(cfg(p, min(p, 4)), func(r *Rank) error {
				out := r.ExScan([]float64{float64(r.ID() + 1)}, OpSum)
				// Exclusive prefix sum of 1..p at rank i is i(i+1)/2.
				want := float64(r.ID()*(r.ID()+1)) / 2
				if out[0] != want {
					return fmt.Errorf("rank %d got %v, want %v", r.ID(), out[0], want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
