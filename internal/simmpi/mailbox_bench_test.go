package simmpi

// Allocation guard for the mailbox rework: a steady-state ping-pong
// exchange must not allocate per message under either engine. The old
// sync.Map mailboxes allocated a 64-deep channel per route and never
// reclaimed anything within a job; the pooled boxTable (mailbox.go) and
// the event engine's arena-backed route queues (event.go) both reuse
// their structures, and these tests pin that.

import (
	"runtime"
	"testing"
)

// pingPongMallocs runs a 2-rank ping-pong of iters round trips under
// eng and returns the process malloc count it took. The payload slice's
// ownership round-trips, so a leak-free runtime allocates only job
// setup, not per-iteration state.
func pingPongMallocs(t *testing.T, eng Engine, iters int) uint64 {
	t.Helper()
	c := cfg(2, 1)
	c.Engine = eng
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	_, err := Run(c, func(r *Rank) error {
		buf := make([]float64, 64)
		for i := 0; i < iters; i++ {
			if r.ID() == 0 {
				r.SendFloats(1, 7, buf)
				buf = r.RecvFloats(1, 9)
			} else {
				buf = r.RecvFloats(0, 7)
				r.SendFloats(0, 9, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestPingPongAllocGuard pins steady-state allocations per ping-pong
// round trip. Differencing a long run against a short one cancels the
// fixed job-setup allocations; the bound is deliberately loose against
// incidental runtime allocations but far below one alloc per message —
// the regression this guards against (per-route channels, per-message
// boxes) costs hundreds per thousand round trips.
func TestPingPongAllocGuard(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates per channel operation")
	}
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		t.Run(string(eng), func(t *testing.T) {
			const short, long = 200, 5200
			base := pingPongMallocs(t, eng, short)
			full := pingPongMallocs(t, eng, long)
			var extra uint64
			if full > base {
				extra = full - base
			}
			perK := float64(extra) / float64(long-short) * 1000
			t.Logf("%s: %d extra mallocs over %d round trips (%.1f per 1000)",
				eng, extra, long-short, perK)
			if perK > 100 { // 0.1 allocs per round trip
				t.Fatalf("%s engine allocates %.1f times per 1000 ping-pong round trips; mailboxes are leaking again", eng, perK)
			}
		})
	}
}

// BenchmarkMailboxPingPong reports ns and allocs per ping-pong round
// trip for both engines (allocs/op is the headline: it must be ~0).
func BenchmarkMailboxPingPong(b *testing.B) {
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		b.Run(string(eng), func(b *testing.B) {
			c := cfg(2, 1)
			c.Engine = eng
			b.ReportAllocs()
			_, err := Run(c, func(r *Rank) error {
				buf := make([]float64, 64)
				for i := 0; i < b.N; i++ {
					if r.ID() == 0 {
						r.SendFloats(1, 7, buf)
						buf = r.RecvFloats(1, 9)
					} else {
						buf = r.RecvFloats(0, 7)
						r.SendFloats(0, 9, buf)
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}
