package simmpi

import (
	"a64fxbench/internal/congestion"
	"a64fxbench/internal/telemetry"
	"a64fxbench/internal/units"
)

// Congestion support: the runtime prices inter-node messages against
// link-level contention with a two-pass replay. Pass one runs the body
// contention-free (tracing off) and records every inter-node flow with a
// deterministic key — (src rank, dst rank, tag, per-route sequence
// number), all derived from program order, never from goroutine
// scheduling. The congestion package routes the flows over the fabric's
// topology and solves a max-min fair (waterfilling) fluid schedule,
// yielding one dilation factor ≥ 1 per flow. Pass two re-runs the same
// body; each send looks up its flow's dilation by re-deriving the same
// key and stretches its serialization term accordingly. Because bodies
// are data-deterministic, both passes issue identical flow keys; a key
// the solution has never seen dilates by exactly 1.

// congestState selects the replay mode of one pass.
type congestState struct {
	// recording marks pass one: price contention-free, log flows.
	recording bool
	// sol holds pass two's solved dilations (nil while recording).
	sol *congestion.Solution
}

// flowRoute keys a rank's per-(destination, tag) send counters.
type flowRoute struct {
	dst, tag int
}

// nextFlowSeq returns this rank's program-order sequence number for the
// next send on (dst, tag). Both passes call it for every inter-node
// send, so the numbering is identical across passes.
func (r *Rank) nextFlowSeq(dst, tag int) int {
	if r.flowSeq == nil {
		r.flowSeq = make(map[flowRoute]int)
	}
	k := flowRoute{dst: dst, tag: tag}
	s := r.flowSeq[k]
	r.flowSeq[k] = s + 1
	return s
}

// recordAndSolve runs the contention-free recording pass and solves the
// flow schedule over the fabric's routed links. jobSpan (nil-safe)
// receives one span per replay phase: the recording pass and the
// max-min fair solve.
func recordAndSolve(cfg JobConfig, body func(*Rank) error, jobSpan *telemetry.Span) (*congestion.Solution, error) {
	recSpan := jobSpan.Child("replay-record")
	recCfg := cfg
	recCfg.Sink = nil     // the recording pass is never traced
	recCfg.Counters = nil // ... and never counted: only pass two's times are real
	ranks, err := runRanks(recCfg, body, &congestState{recording: true})
	recSpan.Fail(err)
	recSpan.End()
	if err != nil {
		return nil, err
	}
	var flows []congestion.Flow
	for _, r := range ranks {
		flows = append(flows, r.flows...)
	}
	solveSpan := jobSpan.Child("replay-solve")
	solveSpan.SetAttr("flows", len(flows))
	defer solveSpan.End()
	f := cfg.Fabric
	return congestion.Solve(congestion.Config{
		Topo:              f.Topo,
		Capacity:          f.LinkCapacity,
		InjectionCapacity: f.InjectionBandwidth,
	}, flows), nil
}

// emitLinkEvents streams a congestion report's per-link summaries (and
// utilization series, for the links that carry one) into a trace sink.
// Called between the job timeline and the EvJobEnd marker.
func emitLinkEvents(sink TraceSink, links *congestion.LinkReport) {
	if links == nil {
		return
	}
	for _, ls := range links.Links {
		sink.Record(Event{
			Kind: EvLink, Rank: -1, Node: -1, Peer: -1,
			Name: ls.Name, Start: links.Start,
			Duration: ls.Busy, Bytes: ls.Bytes,
			Flows: ls.Flows, PeakFlows: ls.PeakFlows, Value: ls.Util,
		})
		for b, u := range ls.Series {
			if u <= 0 {
				continue
			}
			sink.Record(Event{
				Kind: EvLinkSample, Rank: -1, Node: -1, Peer: -1,
				Name:  ls.Name,
				Start: links.Start.Add(units.Duration(b) * links.BucketWidth),
				// One bucket wide; Value is the bucket utilization.
				Duration: links.BucketWidth, Value: u,
			})
		}
	}
}
