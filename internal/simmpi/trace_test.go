package simmpi

import (
	"bytes"
	"strings"
	"testing"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// jobEvents strips the EvJobBegin/EvJobEnd markers from a sink's stream,
// leaving the rank-recorded events.
func jobEvents(tl Timeline) Timeline {
	var out Timeline
	for _, e := range tl {
		if e.Kind != EvJobBegin && e.Kind != EvJobEnd {
			out = append(out, e)
		}
	}
	return out
}

func TestTraceTimeline(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	c := cfg(2, 2)
	c.Sink = sink
	c.Label = "trace-test"
	_, err := Run(c, func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		if r.ID() == 0 {
			r.SendFloats(1, 1, []float64{1})
		} else {
			r.RecvFloats(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream bracketed by job markers.
	if len(sink.Events) < 2 || sink.Events[0].Kind != EvJobBegin ||
		sink.Events[len(sink.Events)-1].Kind != EvJobEnd {
		t.Fatalf("stream not bracketed by job markers: %+v", sink.Events)
	}
	if sink.Events[0].Name != "trace-test" {
		t.Errorf("job label = %q, want trace-test", sink.Events[0].Name)
	}
	tl := jobEvents(sink.Events)
	// 2 computes + 1 send + 1 recv.
	if len(tl) != 4 {
		t.Fatalf("timeline has %d events: %+v", len(tl), tl)
	}
	// Sorted by start time.
	for i := 1; i < len(tl); i++ {
		if tl[i].Start < tl[i-1].Start {
			t.Error("timeline not sorted")
		}
	}
	kinds := map[EventKind]int{}
	for _, e := range tl {
		kinds[e.Kind]++
		// Two ranks on two nodes: block placement puts rank r on node r.
		if e.Node != e.Rank {
			t.Errorf("rank %d event carries node %d", e.Rank, e.Node)
		}
	}
	if kinds[EvCompute] != 2 || kinds[EvSend] != 1 || kinds[EvRecv] != 1 {
		t.Errorf("kind counts: %v", kinds)
	}
	for _, e := range tl {
		switch e.Kind {
		case EvCompute:
			if e.Flops != units.MFlop {
				t.Errorf("compute event flops = %v, want %v", e.Flops, units.MFlop)
			}
		case EvSend, EvRecv:
			if e.Tag != 1 {
				t.Errorf("%s event tag = %d, want 1", e.Kind, e.Tag)
			}
		}
	}
	var buf bytes.Buffer
	if _, err := tl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"compute", "send", "recv", "vecop"} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace output missing %q:\n%s", needle, out)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(2, 1), func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		// Region annotations must be free no-ops when tracing is off.
		r.Region("phase")
		r.EndRegion()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan <= 0 {
		t.Error("degenerate untraced run")
	}
}

func TestTraceNoise(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	c := cfg(1, 1)
	c.Sink = sink
	c.NoiseProb = 1.0
	c.NoiseDuration = units.Second
	_, err := Run(c, func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range sink.Events {
		if e.Kind == EvNoise && e.Duration == units.Second {
			found = true
		}
	}
	if !found {
		t.Error("noise event not traced")
	}
}

func TestRegions(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	c := cfg(2, 1)
	c.Sink = sink
	_, err := Run(c, func(r *Rank) error {
		r.Region("outer")
		r.Region("inner")
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		r.EndRegion()
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.DotProduct, Flops: units.MFlop})
		r.EndRegion()
		r.Region("dangling") // closed automatically at job end
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	type rkey struct {
		rank int
		kind EventKind
		name string
	}
	counts := map[rkey]int{}
	var innerSpan, outerSpan units.Duration
	for _, e := range sink.Events {
		switch e.Kind {
		case EvRegionBegin, EvRegionEnd:
			counts[rkey{e.Rank, e.Kind, e.Name}]++
			if e.Rank == 0 && e.Kind == EvRegionEnd {
				switch e.Name {
				case "inner":
					innerSpan = e.Duration
				case "outer":
					outerSpan = e.Duration
				}
			}
		}
	}
	for rank := 0; rank < 2; rank++ {
		for _, name := range []string{"outer", "inner", "dangling"} {
			if counts[rkey{rank, EvRegionBegin, name}] != 1 {
				t.Errorf("rank %d: region %q begins = %d, want 1",
					rank, name, counts[rkey{rank, EvRegionBegin, name}])
			}
			if counts[rkey{rank, EvRegionEnd, name}] != 1 {
				t.Errorf("rank %d: region %q ends = %d, want 1",
					rank, name, counts[rkey{rank, EvRegionEnd, name}])
			}
		}
	}
	if innerSpan <= 0 || outerSpan < innerSpan {
		t.Errorf("region spans inconsistent: inner %v, outer %v", innerSpan, outerSpan)
	}
}

func TestEndRegionUnmatchedPanics(t *testing.T) {
	t.Parallel()
	c := cfg(1, 1)
	c.Sink = &MemorySink{}
	_, err := Run(c, func(r *Rank) error {
		r.EndRegion()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "EndRegion") {
		t.Fatalf("unmatched EndRegion should surface as a panic error, got %v", err)
	}
}

func TestMultipleJobsOneSink(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	for i := 0; i < 2; i++ {
		c := cfg(1, 1)
		c.Sink = sink
		if _, err := Run(c, func(r *Rank) error {
			r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	begins, ends := 0, 0
	for _, e := range sink.Events {
		switch e.Kind {
		case EvJobBegin:
			begins++
		case EvJobEnd:
			ends++
		}
	}
	if begins != 2 || ends != 2 {
		t.Errorf("want 2 job begin/end pairs, got %d/%d", begins, ends)
	}
	// Default label names the rank count.
	if sink.Events[0].Name != "job p=1" {
		t.Errorf("default label = %q", sink.Events[0].Name)
	}
}

func TestEventKindString(t *testing.T) {
	t.Parallel()
	if EvCompute.String() != "compute" || EventKind(99).String() != "event(99)" {
		t.Error("EventKind names wrong")
	}
	for _, k := range []EventKind{EvSend, EvRecv, EvNoise, EvRegionBegin, EvRegionEnd, EvJobBegin, EvJobEnd} {
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
