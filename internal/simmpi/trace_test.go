package simmpi

import (
	"bytes"
	"strings"
	"testing"

	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

func TestTraceTimeline(t *testing.T) {
	t.Parallel()
	c := cfg(2, 2)
	c.Trace = true
	rep, err := Run(c, func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		if r.ID() == 0 {
			r.SendFloats(1, 1, []float64{1})
		} else {
			r.RecvFloats(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 computes + 1 send + 1 recv.
	if len(rep.Timeline) != 4 {
		t.Fatalf("timeline has %d events: %+v", len(rep.Timeline), rep.Timeline)
	}
	// Sorted by start time.
	for i := 1; i < len(rep.Timeline); i++ {
		if rep.Timeline[i].Start < rep.Timeline[i-1].Start {
			t.Error("timeline not sorted")
		}
	}
	kinds := map[EventKind]int{}
	for _, e := range rep.Timeline {
		kinds[e.Kind]++
	}
	if kinds[EvCompute] != 2 || kinds[EvSend] != 1 || kinds[EvRecv] != 1 {
		t.Errorf("kind counts: %v", kinds)
	}
	var buf bytes.Buffer
	if _, err := rep.Timeline.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"compute", "send", "recv", "vecop"} {
		if !strings.Contains(out, needle) {
			t.Errorf("trace output missing %q:\n%s", needle, out)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	t.Parallel()
	rep, err := Run(cfg(2, 1), func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Timeline) != 0 {
		t.Error("untraced run should have no timeline")
	}
}

func TestTraceNoise(t *testing.T) {
	t.Parallel()
	c := cfg(1, 1)
	c.Trace = true
	c.NoiseProb = 1.0
	c.NoiseDuration = units.Second
	rep, err := Run(c, func(r *Rank) error {
		r.Compute(perfmodel.WorkProfile{Class: perfmodel.VectorOp, Flops: units.MFlop})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range rep.Timeline {
		if e.Kind == EvNoise && e.Duration == units.Second {
			found = true
		}
	}
	if !found {
		t.Error("noise event not traced")
	}
}

func TestEventKindString(t *testing.T) {
	t.Parallel()
	if EvCompute.String() != "compute" || EventKind(99).String() != "event(99)" {
		t.Error("EventKind names wrong")
	}
}
