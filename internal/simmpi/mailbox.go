package simmpi

// Goroutine-engine mailboxes. The previous implementation kept a
// sync.Map of 64-slot channels, one per (src, dst, tag) route, created
// on first use and never reclaimed — a long job with step-numbered tags
// (every collective round mints a fresh tag) leaked a 64-message buffer
// per route, and a sender stalled in real time once 64 messages were in
// flight on one route. boxTable replaces that with a sharded map of
// pooled mailbox structs: sends append to an unbounded FIFO and never
// block, a drained mailbox is removed from its shard and returned to a
// sync.Pool, and the wake channel makes receiver parking race-free.
// All of it is real-time machinery only — virtual-time results are
// decided by message stamps and are identical to the old code's.
//
// Every route has exactly one sender (rank src) and one receiver
// (rank dst), which is what keeps the protocol simple: only the
// receiver parks, only the sender wakes, and only the receiver reclaims.

import "sync"

// boxShards is the shard count of a boxTable; a power of two so the
// hash can mask instead of mod.
const boxShards = 64

// mailbox is one route's in-flight queue. Protected by its shard's
// mutex; wake carries at most one token, sent when the sender observes
// a parked receiver.
type mailbox struct {
	q       []message
	head    int
	waiting bool
	wake    chan struct{}
}

// boxShard is one lock domain of the table.
type boxShard struct {
	mu    sync.Mutex
	boxes map[mailboxKey]*mailbox
}

// boxTable is the goroutine engine's routing table. The zero value is
// ready to use.
type boxTable struct {
	shards [boxShards]boxShard
	pool   sync.Pool
}

// shard hashes a route to its lock domain.
func (t *boxTable) shard(k mailboxKey) *boxShard {
	h := uint64(k.src)*0x9E3779B97F4A7C15 ^ uint64(k.dst)*0xBF58476D1CE4E5B9 ^ uint64(k.tag)*0x94D049BB133111EB
	h ^= h >> 29
	return &t.shards[h&(boxShards-1)]
}

// get pops a pooled mailbox (or makes one) with its queue reset.
func (t *boxTable) get() *mailbox {
	if b, ok := t.pool.Get().(*mailbox); ok {
		return b
	}
	return &mailbox{wake: make(chan struct{}, 1)}
}

// send enqueues m on route k, waking the receiver if it is parked.
// Sends never block, whatever the queue depth.
func (t *boxTable) send(k mailboxKey, m message) {
	s := t.shard(k)
	s.mu.Lock()
	if s.boxes == nil {
		s.boxes = make(map[mailboxKey]*mailbox)
	}
	b := s.boxes[k]
	if b == nil {
		b = t.get()
		s.boxes[k] = b
	}
	b.q = append(b.q, m)
	wake := b.waiting
	b.waiting = false
	s.mu.Unlock()
	if wake {
		b.wake <- struct{}{}
	}
}

// recv dequeues the next message on route k, blocking until one
// arrives. A mailbox drained to empty is reclaimed into the pool — the
// receiver is the only party that removes boxes, so a parked receiver's
// box can never vanish underneath it.
func (t *boxTable) recv(k mailboxKey) message {
	s := t.shard(k)
	for {
		s.mu.Lock()
		if s.boxes == nil {
			s.boxes = make(map[mailboxKey]*mailbox)
		}
		b := s.boxes[k]
		if b == nil {
			b = t.get()
			s.boxes[k] = b
		}
		if b.head < len(b.q) {
			m := b.q[b.head]
			b.q[b.head] = message{}
			b.head++
			if b.head == len(b.q) {
				delete(s.boxes, k)
				b.q = b.q[:0]
				b.head = 0
				t.pool.Put(b)
			}
			s.mu.Unlock()
			return m
		}
		b.waiting = true
		s.mu.Unlock()
		<-b.wake
	}
}
