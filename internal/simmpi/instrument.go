package simmpi

import (
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/telemetry"
)

// Instrumentation bundles the per-run observability and network-pricing
// options that every benchmark Config embeds. Before it existed, each of
// the six benchmark packages hand-copied the same three fields
// (Trace/Congestion/Counters) and threaded them into JobConfig
// individually; embedding one shared struct makes "what instrumentation
// does a run carry" a single type that core.Options, core.Request and
// the serving layer can all project onto.
//
// Every field is result-neutral or documented otherwise: Trace and
// Counters never change simulated results; Congestion changes multi-node
// virtual times (and is therefore part of the artifact cache key), but
// single-node results are identical either way.
type Instrumentation struct {
	// Trace, when non-nil, receives the job's phase-annotated event
	// timeline. Tracing never alters the simulated result.
	Trace TraceSink
	// Congestion enables contention-aware interconnect pricing for
	// multi-node runs (JobConfig.Congestion). Single-node jobs are never
	// congested, so their results are exactly those of the default.
	Congestion bool
	// Counters enables the virtual PMU for every simulated job (see
	// JobConfig.Counters); nil disables it.
	Counters *metrics.Config
	// Model selects the compute-phase pricing model (JobConfig.Model):
	// the calibrated roofline (the empty default) or the ECM memory-
	// hierarchy model. Like Congestion it changes simulated results and
	// is part of the artifact cache key.
	Model perfmodel.Model
	// Telemetry, when non-nil, is the parent span under which the
	// runtime records each simulated job's setup/run/replay phases
	// (wall clock) and virtual makespan. Like Trace it never alters
	// simulated results; nil — the default — costs nothing.
	Telemetry *telemetry.Span
}

// Apply copies the bundle into a job configuration. Benchmarks call it
// instead of assigning the fields by hand.
func (i Instrumentation) Apply(job *JobConfig) {
	job.Sink = i.Trace
	job.Congestion = i.Congestion
	job.Counters = i.Counters
	job.Model = i.Model
	job.Telemetry = i.Telemetry
}
