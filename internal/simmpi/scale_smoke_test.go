// Engine throughput at scale: the weak-scaled HPCG scenario (see
// hpcg.EngineScaleConfig) measured in simulated ranks per wall-clock
// second under both engines. The always-on test pins correctness at a
// moderate scale; the expensive speedup and 100k-rank assertions are
// env-gated so they run in the dedicated CI bench step, not in every
// `go test ./...`.
package simmpi_test

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/simmpi"
)

// runScale executes the weak-scaled scenario once and reports the
// result with its wall-clock duration.
func runScale(tb testing.TB, nodes int, eng simmpi.Engine) (hpcg.Result, time.Duration) {
	tb.Helper()
	start := time.Now()
	res, err := hpcg.Run(hpcg.EngineScaleConfig(arch.MustGet(arch.A64FX), nodes, eng))
	if err != nil {
		tb.Fatalf("%s engine, %d nodes: %v", eng, nodes, err)
	}
	return res, time.Since(start)
}

// scaleOutcome reduces a run to the exactly-comparable fields.
func scaleOutcome(res hpcg.Result) [4]uint64 {
	return [4]uint64{
		uint64(res.Report.Makespan),
		math.Float64bits(res.GFLOPs),
		uint64(res.Report.TotalMsgs),
		uint64(res.Report.TotalBytesSent),
	}
}

// TestEngineScaleDifferential runs the scale scenario at a moderate
// size under both engines and demands identical results — the same
// bit-identity contract the full differential suite pins, exercised on
// the exact workload the throughput numbers are quoted on.
func TestEngineScaleDifferential(t *testing.T) {
	t.Parallel()
	gor, _ := runScale(t, 2, simmpi.EngineGoroutine) // 96 ranks
	evt, _ := runScale(t, 2, simmpi.EngineEvent)
	if scaleOutcome(gor) != scaleOutcome(evt) {
		t.Fatalf("engines diverged at 96 ranks:\n goroutine %+v\n event     %+v",
			scaleOutcome(gor), scaleOutcome(evt))
	}
	if gor.Report.Makespan <= 0 || gor.Report.TotalMsgs == 0 {
		t.Fatalf("degenerate scenario: %+v", scaleOutcome(gor))
	}
}

// TestEngineScaleSpeedup is the throughput gate for the event engine's
// reason to exist: at 4096+ ranks it must out-simulate the goroutine
// engine per core. Both engines share sendCore/recvCore (the price of
// bit-identity), so that shared accounting floors the achievable ratio:
// measured on a dedicated core the event engine runs ~1.8× at 4128
// ranks, widening to ~2× at 100k as the goroutine scheduler's per-rank
// costs grow. The gate asserts a conservative 1.2× so scheduler noise
// never flakes it while any regression that erases the event engine's
// advantage still fails; the finer-grained 10%-ratio regression fence
// is `a64fxbench enginebench -baseline` against BENCH_engine.json.
// GOMAXPROCS is pinned to 1 for the measurement because a single-
// threaded DES versus a parallel scheduler is only comparable per core.
// Wall-clock assertions are noisy on shared runners, so this only runs
// when the CI bench step (or a developer) opts in via A64FX_ENGINE_SMOKE=1.
func TestEngineScaleSpeedup(t *testing.T) {
	if os.Getenv("A64FX_ENGINE_SMOKE") == "" {
		t.Skip("set A64FX_ENGINE_SMOKE=1 to run the timed speedup gate")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const nodes = 86 // 4128 ranks ≥ the 4096 floor
	gor, gorWall := runScale(t, nodes, simmpi.EngineGoroutine)
	evt, evtWall := runScale(t, nodes, simmpi.EngineEvent)
	if scaleOutcome(gor) != scaleOutcome(evt) {
		t.Fatalf("engines diverged at %d ranks", gor.Procs)
	}
	speedup := gorWall.Seconds() / evtWall.Seconds()
	ranksPerSec := float64(evt.Procs) / evtWall.Seconds()
	t.Logf("%d ranks: goroutine %v, event %v — %.1f× (event: %.0f ranks/s)",
		evt.Procs, gorWall.Round(time.Millisecond), evtWall.Round(time.Millisecond),
		speedup, ranksPerSec)
	if speedup < 1.2 {
		t.Fatalf("event engine only %.2f× the goroutine engine per core at %d ranks; want ≥ 1.2×", speedup, evt.Procs)
	}
}

// TestEngine100kRankSmoke runs the full 100,032-rank weak-scaled HPCG
// scenario under the event engine and enforces the CI wall-clock
// budget. Env-gated for the same reason as the speedup test.
func TestEngine100kRankSmoke(t *testing.T) {
	if os.Getenv("A64FX_SMOKE_100K") == "" {
		t.Skip("set A64FX_SMOKE_100K=1 to run the 100k-rank smoke")
	}
	const budget = 5 * time.Minute
	res, wall := runScale(t, hpcg.ScaleSmokeNodes, simmpi.EngineEvent)
	if res.Procs < 100000 {
		t.Fatalf("smoke ran %d ranks, want ≥ 100000", res.Procs)
	}
	if res.Report.Makespan <= 0 || res.Report.TotalMsgs == 0 {
		t.Fatalf("degenerate 100k result: %+v", scaleOutcome(res))
	}
	t.Logf("100k smoke: %d ranks in %v (%.0f ranks/s, %d msgs)",
		res.Procs, wall.Round(time.Millisecond),
		float64(res.Procs)/wall.Seconds(), res.Report.TotalMsgs)
	if wall > budget {
		t.Fatalf("100k-rank smoke took %v, budget %v", wall.Round(time.Second), budget)
	}
}

// BenchmarkEngineRanksPerSec measures simulated-ranks/sec for both
// engines across scales. The custom ranks/s metric is the headline
// number; wall time per op is the full scenario execution.
func BenchmarkEngineRanksPerSec(b *testing.B) {
	for _, eng := range []simmpi.Engine{simmpi.EngineGoroutine, simmpi.EngineEvent} {
		for _, nodes := range []int{2, 11, 86} { // 96, 528, 4128 ranks
			procs := nodes * 48
			b.Run(fmt.Sprintf("%s/ranks=%d", eng, procs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := hpcg.Run(hpcg.EngineScaleConfig(arch.MustGet(arch.A64FX), nodes, eng))
					if err != nil {
						b.Fatal(err)
					}
					_ = res
				}
				b.ReportMetric(float64(procs*b.N)/b.Elapsed().Seconds(), "ranks/s")
			})
		}
	}
}
