package simmpi

// Batched world collectives for the discrete-event engine.
//
// When all p ranks have parked at the same collective, the functions
// here execute it as one event: each rank's exact per-rank operation
// sequence — the same sendCore/recvCore calls, buffer copies, and
// reduction folds as the goroutine implementations in simmpi.go — is
// replayed in a dependency-valid cross-rank order. All simulator state
// is per-rank (clocks, PMUs, stats, flow sequences, trace logs), and
// cross-rank coupling happens only through message stamps, so any order
// that runs every receive after its matching send yields bit-identical
// results; the trace merge in Run re-sorts events into (Start, Rank)
// order afterwards. That "same per-rank sequence, shared executor"
// construction — not testing alone — is what makes the two engines
// equivalent.
//
// Message slots: within one round of every algorithm the send→recv
// pairing is a bijection (each rank receives at most one message), so a
// single scratch slice indexed by receiver replaces the mailbox map.
//
// The valid cross-rank orders used below:
//   - round-based exchanges (barrier, allreduce doubling, allgather
//     ring, alltoall, reduce-scatter halving): all sends of the round,
//     then all receives;
//   - trees (bcast, reduce): nodes in depth order — increasing virtual
//     rank for bcast, mask-ascending sender/receiver rounds for reduce;
//   - the ExScan chain: ranks in ascending order.

import (
	"fmt"

	"a64fxbench/internal/metrics"
	"a64fxbench/internal/units"
	"a64fxbench/internal/vclock"
)

// collKind names a world collective for the rendezvous in event.go.
type collKind int

const (
	collBarrier collKind = iota
	collAllreduce
	collBcast
	collReduce
	collAllgather
	collAlltoall
	collReduceScatter
	collExScan
)

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "Barrier"
	case collAllreduce:
		return "Allreduce"
	case collBcast:
		return "Bcast"
	case collReduce:
		return "Reduce"
	case collAllgather:
		return "Allgather"
	case collAlltoall:
		return "Alltoall"
	case collReduceScatter:
		return "ReduceScatter"
	case collExScan:
		return "ExScan"
	}
	return fmt.Sprintf("collKind(%d)", int(k))
}

// collArgs carries one rank's arguments into the batched executor.
type collArgs struct {
	kind    collKind
	buf     []float64   // Allreduce/Bcast/Reduce/ReduceScatter/ExScan buffer; Allgather contribution
	op      Op          // reduction operator where applicable
	root    int         // Bcast/Reduce root (must agree across ranks)
	out     []float64   // Allgather output, pre-filled with own block
	mat     [][]float64 // Alltoall send blocks
	recvMat [][]float64 // Alltoall receive blocks, pre-filled with own block
}

// scratch (re)sizes the executor's per-rank scratch arrays.
func (e *eventEngine) scratch() {
	p := len(e.ranks)
	if e.slots == nil {
		e.slots = make([]message, p)
		e.starts = make([]vclock.Time, p)
		e.starts2 = make([]vclock.Time, p)
		e.blocks = make([][]float64, p)
		e.ints = make([]int, p)
		e.lims = make([]int, p)
	}
}

// beginAll/endAll replicate each rank's collBegin/collEnd bracket. The
// bracket is per-rank state only, so running all begins first and all
// ends last preserves every rank's program order exactly.
func (e *eventEngine) beginAll(starts []vclock.Time) {
	for i, r := range e.ranks {
		starts[i] = r.collBegin()
	}
}

func (e *eventEngine) endAll(c metrics.Collective, starts []vclock.Time) {
	for i, r := range e.ranks {
		r.collEnd(c, starts[i])
	}
}

// runBatched executes one world collective across all ranks, leaving
// each rank's return value (if any) in res.
func runBatched(e *eventEngine, kind collKind, args []collArgs, res []any) {
	e.scratch()
	switch kind {
	case collBarrier:
		batchBarrier(e)
	case collAllreduce:
		batchAllreduce(e, args)
	case collBcast:
		batchBcast(e, args, res)
	case collReduce:
		e.beginAll(e.starts)
		batchReduceTree(e, args, collRoot(e, args), tagReduce+3)
		e.endAll(metrics.CollReduce, e.starts)
	case collAllgather:
		batchAllgather(e, args, res)
	case collAlltoall:
		batchAlltoall(e, args, res)
	case collReduceScatter:
		batchReduceScatter(e, args, res)
	case collExScan:
		batchExScan(e, args, res)
	}
}

// collRoot checks that every rank named the same root (a mismatched
// root would deadlock the goroutine engine; failing loudly is kinder).
func collRoot(e *eventEngine, args []collArgs) int {
	root := args[0].root
	for i := 1; i < len(args); i++ {
		if args[i].root != root {
			panic(fmt.Sprintf("simmpi: %s root mismatch: rank 0 used %d, rank %d used %d",
				args[i].kind, root, i, args[i].root))
		}
	}
	return root
}

// batchBarrier mirrors Rank.Barrier: log₂p dissemination rounds, each
// rank sending to (id+k) and receiving from (id-k).
func batchBarrier(e *eventEngine) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		tag := tagBarrier + round
		for id, r := range rs {
			e.slots[(id+k)%p] = r.sendFloatsCore((id+k)%p, tag, nil, 0)
		}
		for id, r := range rs {
			r.recvFloatsCore(e.slots[id], (id-k+p)%p, tag)
		}
	}
	e.endAll(metrics.CollBarrier, e.starts)
}

// arNewID maps a rank to its recursive-doubling id for Allreduce's
// non-power-of-two folding: -1 for the even halves that drop out.
func arNewID(id, rem int) int {
	switch {
	case id < 2*rem && id%2 == 0:
		return -1
	case id < 2*rem:
		return id / 2
	default:
		return id - rem
	}
}

// batchAllreduce mirrors Rank.Allreduce: pre-fold to a power of two,
// recursive doubling, post-unfold. Results land in each rank's own buf.
func batchAllreduce(e *eventEngine, args []collArgs) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	// Phase 1: evens below 2*rem send to their odd partner and drop out.
	for id := 0; id < 2*rem; id += 2 {
		buf := args[id].buf
		e.slots[id+1] = rs[id].sendFloatsCore(id+1, tagReduce,
			append([]float64(nil), buf...), units.Bytes(8*len(buf)))
	}
	for id := 1; id < 2*rem; id += 2 {
		other := rs[id].recvFloatsCore(e.slots[id], id-1, tagReduce)
		buf, op := args[id].buf, args[id].op
		for i := range buf {
			buf[i] = op(buf[i], other[i])
		}
	}
	// Phase 2: recursive doubling among the pof2 survivors. Each round's
	// partner pairing is an involution, so sends-then-recvs per round is
	// a valid order.
	for mask := 1; mask < pof2; mask <<= 1 {
		tag := tagReduce + 1 + mask
		for id := 0; id < p; id++ {
			nid := arNewID(id, rem)
			if nid < 0 {
				continue
			}
			partnerNew := nid ^ mask
			partner := partnerNew + rem
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			}
			buf := args[id].buf
			e.slots[partner] = rs[id].sendFloatsCore(partner, tag,
				append([]float64(nil), buf...), units.Bytes(8*len(buf)))
		}
		for id := 0; id < p; id++ {
			nid := arNewID(id, rem)
			if nid < 0 {
				continue
			}
			partnerNew := nid ^ mask
			partner := partnerNew + rem
			if partnerNew < rem {
				partner = partnerNew*2 + 1
			}
			other := rs[id].recvFloatsCore(e.slots[id], partner, tag)
			buf, op := args[id].buf, args[id].op
			for i := range buf {
				buf[i] = op(buf[i], other[i])
			}
		}
	}
	// Phase 3: survivors return the result to the dropped-out evens.
	for id := 1; id < 2*rem; id += 2 {
		buf := args[id].buf
		e.slots[id-1] = rs[id].sendFloatsCore(id-1, tagReduce+2,
			append([]float64(nil), buf...), units.Bytes(8*len(buf)))
	}
	for id := 0; id < 2*rem; id += 2 {
		got := rs[id].recvFloatsCore(e.slots[id], id+1, tagReduce+2)
		copy(args[id].buf, got)
	}
	e.endAll(metrics.CollAllreduce, e.starts)
}

// batchBcast mirrors Rank.Bcast: binomial tree rooted at root,
// processed in increasing virtual rank so every parent's send precedes
// its child's receive.
func batchBcast(e *eventEngine, args []collArgs, res []any) {
	rs, p := e.ranks, len(e.ranks)
	root := collRoot(e, args)
	e.beginAll(e.starts)
	for v := 0; v < p; v++ {
		id := (v + root) % p
		r := rs[id]
		buf := args[id].buf
		if v != 0 {
			mask := 1
			for mask <= v {
				mask <<= 1
			}
			mask >>= 1
			parent := ((v - mask) + root) % p
			buf = r.recvFloatsCore(e.slots[id], parent, tagBcast)
		}
		low := 1
		for low <= v {
			low <<= 1
		}
		for m := low; v+m < p; m <<= 1 {
			child := (v + m + root) % p
			e.slots[child] = r.sendFloatsCore(child, tagBcast,
				append([]float64(nil), buf...), units.Bytes(8*len(buf)))
		}
		res[id] = buf
	}
	e.endAll(metrics.CollBcast, e.starts)
}

// batchReduceTree mirrors Rank.Reduce's binomial combine onto the root,
// without the collBegin/collEnd bracket (callers bracket it, because
// ReduceScatter's non-power-of-two path nests it inside its own
// bracket exactly as the goroutine code nests r.Reduce). bufs come from
// args[i].buf; mask-ascending rounds run senders before receivers.
func batchReduceTree(e *eventEngine, args []collArgs, root, tag int) {
	rs, p := e.ranks, len(e.ranks)
	for mask := 1; mask < p; mask <<= 1 {
		// Senders this round: active ranks whose vrank has `mask` set.
		for v := mask; v < p; v += 2 * mask {
			id := (v + root) % p
			dst := (v&^mask + root) % p
			buf := args[id].buf
			e.slots[dst] = rs[id].sendFloatsCore(dst, tag,
				append([]float64(nil), buf...), units.Bytes(8*len(buf)))
		}
		// Receivers: active ranks with the bit clear and a live partner.
		for v := 0; v+mask < p; v += 2 * mask {
			id := (v + root) % p
			src := (v + mask + root) % p
			other := rs[id].recvFloatsCore(e.slots[id], src, tag)
			buf, op := args[id].buf, args[id].op
			for i := range buf {
				buf[i] = op(buf[i], other[i])
			}
		}
	}
}

// batchAllgather mirrors Rank.Allgather's ring: p-1 steps, blocks
// travelling rank→rank+1, each rank copying the block it just received
// into its output at the rotating cursor.
func batchAllgather(e *eventEngine, args []collArgs, res []any) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	for id := range rs {
		e.blocks[id] = append([]float64(nil), args[id].buf...)
		e.ints[id] = id // cursor
	}
	for step := 0; step < p-1; step++ {
		tag := tagGather + step
		for id, r := range rs {
			right := (id + 1) % p
			e.slots[right] = r.sendFloatsCore(right, tag, e.blocks[id],
				units.Bytes(8*len(e.blocks[id])))
		}
		for id, r := range rs {
			left := (id - 1 + p) % p
			e.blocks[id] = r.recvFloatsCore(e.slots[id], left, tag)
			e.ints[id] = (e.ints[id] - 1 + p) % p
			n := len(args[id].buf)
			copy(args[id].out[e.ints[id]*n:], e.blocks[id])
		}
	}
	for id := range rs {
		e.blocks[id] = nil
		res[id] = args[id].out
	}
	e.endAll(metrics.CollAllgather, e.starts)
}

// batchAlltoall mirrors Rank.Alltoall: XOR pairwise exchange for
// power-of-two sizes, the rotation schedule otherwise.
func batchAlltoall(e *eventEngine, args []collArgs, res []any) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	if p&(p-1) == 0 {
		for step := 1; step < p; step++ {
			tag := tagA2A + step
			for id, r := range rs {
				partner := id ^ step
				blk := args[id].mat[partner]
				e.slots[partner] = r.sendFloatsCore(partner, tag, blk, units.Bytes(8*len(blk)))
			}
			for id, r := range rs {
				partner := id ^ step
				args[id].recvMat[partner] = r.recvFloatsCore(e.slots[id], partner, tag)
			}
		}
	} else {
		for step := 1; step < p; step++ {
			tag := tagA2A + step
			for id, r := range rs {
				dst := (id + step) % p
				blk := args[id].mat[dst]
				e.slots[dst] = r.sendFloatsCore(dst, tag, blk, units.Bytes(8*len(blk)))
			}
			for id, r := range rs {
				src := (id - step + p) % p
				args[id].recvMat[src] = r.recvFloatsCore(e.slots[id], src, tag)
			}
		}
	}
	for id := range rs {
		res[id] = args[id].recvMat
	}
	e.endAll(metrics.CollAlltoall, e.starts)
}

// batchReduceScatter mirrors Rank.ReduceScatter: recursive halving for
// power-of-two sizes; otherwise a nested Reduce to rank 0 followed by a
// linear scatter, with the inner Reduce bracketed in its own
// collBegin/collEnd exactly as the goroutine code's r.Reduce call is.
func batchReduceScatter(e *eventEngine, args []collArgs, res []any) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	if p&(p-1) != 0 {
		// Work copies stand in for each rank's `work` local; reuse the
		// args slots so batchReduceTree folds into them directly.
		inner := make([]collArgs, p)
		for id := range rs {
			e.blocks[id] = append([]float64(nil), args[id].buf...)
			inner[id] = collArgs{buf: e.blocks[id], op: args[id].op}
		}
		e.beginAll(e.starts2)
		batchReduceTree(e, inner, 0, tagReduce+3)
		e.endAll(metrics.CollReduce, e.starts2)
		blk := len(args[0].buf) / p
		work0 := e.blocks[0]
		for dst := 1; dst < p; dst++ {
			e.slots[dst] = rs[0].sendFloatsCore(dst, tagRS,
				work0[dst*blk:(dst+1)*blk], units.Bytes(8*blk))
		}
		res[0] = append([]float64(nil), work0[:blk]...)
		for dst := 1; dst < p; dst++ {
			res[dst] = rs[dst].recvFloatsCore(e.slots[dst], 0, tagRS)
		}
		for id := range rs {
			e.blocks[id] = nil
		}
		e.endAll(metrics.CollReduceScatter, e.starts)
		return
	}
	for id := range rs {
		e.blocks[id] = append([]float64(nil), args[id].buf...)
		e.ints[id] = 0                 // lo
		e.lims[id] = len(args[id].buf) // hi
	}
	for mask := p >> 1; mask >= 1; mask >>= 1 {
		tag := tagRS + 1 + mask
		for id, r := range rs {
			partner := id ^ mask
			mid := (e.ints[id] + e.lims[id]) / 2
			sLo, sHi := e.ints[id], mid
			if id&mask == 0 {
				sLo, sHi = mid, e.lims[id]
			}
			e.slots[partner] = r.sendFloatsCore(partner, tag,
				append([]float64(nil), e.blocks[id][sLo:sHi]...), units.Bytes(8*(sHi-sLo)))
		}
		for id, r := range rs {
			partner := id ^ mask
			mid := (e.ints[id] + e.lims[id]) / 2
			kLo, kHi := mid, e.lims[id]
			if id&mask == 0 {
				kLo, kHi = e.ints[id], mid
			}
			other := r.recvFloatsCore(e.slots[id], partner, tag)
			w, op := e.blocks[id], args[id].op
			for i := kLo; i < kHi; i++ {
				w[i] = op(w[i], other[i-kLo])
			}
			e.ints[id], e.lims[id] = kLo, kHi
		}
	}
	for id := range rs {
		res[id] = append([]float64(nil), e.blocks[id][e.ints[id]:e.lims[id]]...)
		e.blocks[id] = nil
	}
	e.endAll(metrics.CollReduceScatter, e.starts)
}

// batchExScan mirrors Rank.ExScan's linear pipeline: ranks in ascending
// order each receive the running prefix and forward it combined with
// their own contribution.
func batchExScan(e *eventEngine, args []collArgs, res []any) {
	rs, p := e.ranks, len(e.ranks)
	e.beginAll(e.starts)
	for id := 0; id < p; id++ {
		r := rs[id]
		buf := args[id].buf
		out := make([]float64, len(buf))
		if id > 0 {
			prev := r.recvFloatsCore(e.slots[id], id-1, tagScan)
			copy(out, prev)
		}
		if id < p-1 {
			next := make([]float64, len(buf))
			if id == 0 {
				copy(next, buf)
			} else {
				op := args[id].op
				for i := range next {
					next[i] = op(out[i], buf[i])
				}
			}
			e.slots[id+1] = r.sendFloatsCore(id+1, tagScan, next, units.Bytes(8*len(next)))
		}
		res[id] = out
	}
	e.endAll(metrics.CollExScan, e.starts)
}
