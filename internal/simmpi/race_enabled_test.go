//go:build race

package simmpi

// raceEnabled reports whether the race detector instruments this build.
// Its shadow-memory bookkeeping allocates on channel operations, so
// allocation-exactness tests must skip under -race.
const raceEnabled = true
