package simmpi

// Virtual-time edge cases, exercised identically under both engines:
// simultaneous events at equal virtual time across ranks, the
// (Start, Rank) tie-break in the merged timeline, the (time, rank, seq)
// tie-break in the event engine's ready heap, and zero-duration Elapse.
// These are the cases where a sloppy engine would let real-time
// scheduling leak into results.

import (
	"fmt"
	"testing"

	"a64fxbench/internal/vclock"
)

// vclockEdgeCases is the table shared by both engines. Every body is
// deterministic and leans on events landing at exactly equal virtual
// times.
var vclockEdgeCases = []struct {
	name  string
	procs int
	nodes int
	body  func(r *Rank) error
}{
	{
		// All ranks send to rank 0 having done zero work: every send
		// starts at exactly t=0 on every rank.
		name: "simultaneous-sends-at-zero", procs: 5, nodes: 1,
		body: func(r *Rank) error {
			if r.ID() == 0 {
				for src := 1; src < r.Size(); src++ {
					r.RecvFloats(src, 1)
				}
				return nil
			}
			r.SendFloats(0, 1, []float64{1})
			return nil
		},
	},
	{
		// Zero-duration Elapse must advance nothing and change nothing,
		// under either engine, including between sends.
		name: "zero-duration-elapse", procs: 4, nodes: 2,
		body: func(r *Rank) error {
			before := r.Now()
			r.Elapse(0)
			if r.Now() != before {
				return fmt.Errorf("Elapse(0) moved the clock: %v -> %v", before, r.Now())
			}
			r.Elapse(0)
			r.Barrier()
			r.Elapse(0)
			if got := r.AllreduceScalar(1, OpSum); got != float64(r.Size()) {
				return fmt.Errorf("allreduce after zero elapse: %v", got)
			}
			return nil
		},
	},
	{
		// Zero-byte, zero-compute ping-pong chains: every message on a
		// single node shares latency, so whole fronts of events tie.
		name: "tied-event-fronts", procs: 6, nodes: 1,
		body: func(r *Rank) error {
			p := r.Size()
			for step := 0; step < 3; step++ {
				r.Send((r.ID()+1)%p, 70+step, nil, 0)
				r.Recv((r.ID()-1+p)%p, 70+step)
			}
			return nil
		},
	},
	{
		// Equal-time collective entry: identical work on every rank, so
		// all p ranks hit the collective at the same virtual instant.
		name: "equal-time-collective", procs: 8, nodes: 4,
		body: func(r *Rank) error {
			r.Compute(vecWork(1000))
			r.Barrier()
			buf := []float64{1}
			r.Allreduce(buf, OpSum)
			if buf[0] != float64(r.Size()) {
				return fmt.Errorf("allreduce got %v", buf)
			}
			return nil
		},
	},
}

func TestVclockEdgeCasesAcrossEngines(t *testing.T) {
	t.Parallel()
	for _, tc := range vclockEdgeCases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			assertEngineEquivalent(t, cfg(tc.procs, tc.nodes), true, tc.body)
		})
	}
}

// TestTimelineTieBreak pins the merged-trace ordering contract: events
// with equal Start times appear in ascending rank order, under both
// engines.
func TestTimelineTieBreak(t *testing.T) {
	t.Parallel()
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		c := cfg(4, 1)
		c.Engine = eng
		sink := &MemorySink{}
		c.Sink = sink
		_, err := Run(c, func(r *Rank) error {
			r.Compute(vecWork(100)) // identical on every rank: equal Start
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var last vclock.Time
		lastRank := -1
		for _, e := range sink.Events {
			if e.Kind != EvCompute {
				continue
			}
			if e.Start < last {
				t.Fatalf("%s: timeline not Start-ordered", eng)
			}
			if e.Start == last && e.Rank <= lastRank {
				t.Fatalf("%s: equal-Start events not rank-ordered: rank %d after %d", eng, e.Rank, lastRank)
			}
			last, lastRank = e.Start, e.Rank
		}
	}
}

// TestEvHeapOrdering pins the ready queue's total order: virtual time
// first, then rank, then insertion sequence.
func TestEvHeapOrdering(t *testing.T) {
	t.Parallel()
	var h evHeap
	var seq uint64
	push := func(at vclock.Time, rank int) {
		h.push(evItem{at: at, rank: rank, seq: seq})
		seq++
	}
	// Deliberately shuffled inserts with heavy ties.
	push(10, 3)
	push(5, 7)
	push(10, 1)
	push(5, 2)
	push(0, 9)
	push(10, 1) // duplicate (at, rank): seq must break the tie FIFO
	push(5, 2)
	want := []struct {
		at   vclock.Time
		rank int
	}{
		{0, 9}, {5, 2}, {5, 2}, {5, 7}, {10, 1}, {10, 1}, {10, 3},
	}
	var lastSeq uint64
	for i, w := range want {
		it := h.pop()
		if it.at != w.at || it.rank != w.rank {
			t.Fatalf("pop %d = (%v, r%d), want (%v, r%d)", i, it.at, it.rank, w.at, w.rank)
		}
		if i > 0 && it.at == want[i-1].at && it.rank == want[i-1].rank && it.seq < lastSeq {
			t.Fatalf("pop %d: tie broken against insertion order", i)
		}
		lastSeq = it.seq
	}
	if h.len() != 0 {
		t.Fatalf("heap not drained: %d left", h.len())
	}
}

// TestZeroDurationElapseAccounting pins Elapse(0) at the vclock level
// as the engines see it: no time, no busy, no wait.
func TestZeroDurationElapseAccounting(t *testing.T) {
	t.Parallel()
	for _, eng := range []Engine{EngineGoroutine, EngineEvent} {
		c := cfg(2, 1)
		c.Engine = eng
		rep, err := Run(c, func(r *Rank) error {
			for i := 0; i < 5; i++ {
				r.Elapse(0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Makespan != 0 {
			t.Fatalf("%s: Elapse(0)s produced makespan %v", eng, rep.Makespan)
		}
		for _, rr := range rep.Ranks {
			if rr.Busy != 0 || rr.Wait != 0 {
				t.Fatalf("%s: rank %d accounted busy=%v wait=%v", eng, rr.Rank, rr.Busy, rr.Wait)
			}
		}
	}
}
