package simmpi

import (
	"reflect"
	"testing"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

// congFabric builds a fabric on the given topology with serialization-
// dominated pricing, so contention effects are visible above latency.
func congFabric(tp topo.Topology) *netmodel.Fabric {
	return &netmodel.Fabric{
		Name:               "cong-test",
		Topo:               tp,
		SoftwareOverhead:   units.Microsecond,
		HopLatency:         units.Duration(100 * units.Nanosecond),
		LinkBandwidth:      10 * units.GBPerSec,
		InjectionBandwidth: 10 * units.GBPerSec,
	}
}

// fanIn is a many-to-one workload: every rank streams a large message to
// rank 0, so rank 0's ejection port is a guaranteed bottleneck.
func fanIn(r *Rank) error {
	const n = 1 << 17 // 1 MiB of float64s
	if r.ID() == 0 {
		for src := 1; src < r.Size(); src++ {
			r.RecvFloats(src, 1)
		}
		return nil
	}
	r.SendFloats(0, 1, make([]float64, n))
	return nil
}

func TestCongestionSlowsOverlappingSends(t *testing.T) {
	t.Parallel()
	mk := func(congested bool) Report {
		rep, err := Run(JobConfig{
			Procs: 8, Nodes: 8, RankModel: testModel,
			Fabric:     congFabric(&topo.Torus{Dims: []int{8}}),
			Congestion: congested,
		}, fanIn)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, cong := mk(false), mk(true)
	if cong.Makespan <= base.Makespan {
		t.Errorf("congested makespan %v not larger than contention-free %v",
			cong.Makespan, base.Makespan)
	}
	if base.Links != nil {
		t.Error("contention-free run carries a link report")
	}
	if cong.Links == nil || len(cong.Links.Links) == 0 {
		t.Fatal("congested run has no link report")
	}
	// Seven simultaneous flows converge on rank 0's ejection port.
	if got := cong.Links.MaxPeakFlows(); got != 7 {
		t.Errorf("max peak flows = %d, want 7", got)
	}
}

func TestCongestionSingleNodeUnchanged(t *testing.T) {
	t.Parallel()
	body := func(r *Rank) error {
		v := r.AllreduceScalar(float64(r.ID()), OpSum)
		r.SendFloats((r.ID()+1)%r.Size(), 9, []float64{v})
		r.RecvFloats((r.ID()-1+r.Size())%r.Size(), 9)
		return nil
	}
	run := func(congested bool) Report {
		rep, err := Run(JobConfig{
			Procs: 4, Nodes: 1, RankModel: testModel, Congestion: congested,
		}, body)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base, cong := run(false), run(true)
	if base.Makespan != cong.Makespan {
		t.Errorf("single-node makespan changed under Congestion: %v vs %v",
			base.Makespan, cong.Makespan)
	}
	if cong.Links != nil {
		t.Error("single-node congested run carries a link report")
	}
}

func TestCongestedRunsAreDeterministic(t *testing.T) {
	t.Parallel()
	run := func() Report {
		rep, err := Run(JobConfig{
			Procs: 16, Nodes: 8, RankModel: testModel,
			Fabric:     congFabric(topo.NewTofuD(8)),
			Congestion: true,
		}, func(r *Rank) error {
			buf := make([]float64, 1<<12)
			for i := range buf {
				buf[i] = float64(r.ID() + i)
			}
			r.Allreduce(buf, OpSum)
			r.SendFloats((r.ID()+1)%r.Size(), 5, buf[:1<<10])
			r.RecvFloats((r.ID()-1+r.Size())%r.Size(), 5)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("congested makespan not deterministic: %v vs %v", a.Makespan, b.Makespan)
	}
	if !reflect.DeepEqual(a.Links, b.Links) {
		t.Error("congested link reports differ across identical runs")
	}
}

func TestCongestionPreservesData(t *testing.T) {
	t.Parallel()
	// The replay must not change what the ranks compute — only when.
	run := func(congested bool) float64 {
		var got float64
		_, err := Run(JobConfig{
			Procs: 8, Nodes: 4, RankModel: testModel,
			Fabric:     congFabric(&topo.Torus{Dims: []int{4}}),
			Congestion: congested,
		}, func(r *Rank) error {
			v := r.AllreduceScalar(float64(r.ID()+1), OpSum)
			if r.ID() == 0 {
				got = v
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if base, cong := run(false), run(true); base != cong || base != 36 {
		t.Errorf("allreduce result changed under congestion: %v vs %v (want 36)", base, cong)
	}
}

// slowdown runs body both ways on a fabric and reports the congested-
// over-contention-free makespan ratio.
func slowdown(t *testing.T, f *netmodel.Fabric, procs, nodes int, body func(*Rank) error) float64 {
	t.Helper()
	run := func(congested bool) units.Duration {
		rep, err := Run(JobConfig{
			Procs: procs, Nodes: nodes, RankModel: testModel,
			Fabric: f, Congestion: congested,
		}, body)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	base := run(false)
	if base <= 0 {
		t.Fatal("zero baseline makespan")
	}
	return run(true).Seconds() / base.Seconds()
}

// TestAlltoallSuffersMoreThanHalo is the acceptance check for the
// contention model: on the same 32-node system an alltoall-heavy
// workload must slow down more than a nearest-neighbour halo exchange,
// and the alltoall penalty must be worse on an oversubscribed fat tree
// than on the TofuD torus (whose path diversity spreads the load).
func TestAlltoallSuffersMoreThanHalo(t *testing.T) {
	t.Parallel()
	const p = 32
	alltoall := func(r *Rank) error {
		send := make([][]float64, p)
		for i := range send {
			send[i] = make([]float64, 1<<13) // 64 KiB per pair
		}
		r.Alltoall(send)
		return nil
	}
	halo := func(r *Rank) error {
		buf := make([]float64, 1<<13)
		right, left := (r.ID()+1)%p, (r.ID()-1+p)%p
		r.SendFloats(right, 1, buf)
		r.SendFloats(left, 2, buf)
		r.RecvFloats(left, 1)
		r.RecvFloats(right, 2)
		return nil
	}
	topos := map[string]topo.Topology{
		"tofud":   topo.NewTofuD(p),
		"fattree": &topo.FatTree{NodesPerLeaf: 4, Uplinks: 2, Label: "oversub"},
	}
	slow := map[string]map[string]float64{}
	for name, tp := range topos {
		slow[name] = map[string]float64{
			"alltoall": slowdown(t, congFabric(tp), p, p, alltoall),
			"halo":     slowdown(t, congFabric(tp), p, p, halo),
		}
		t.Logf("%s: alltoall ×%.2f, halo ×%.2f", name, slow[name]["alltoall"], slow[name]["halo"])
	}
	for name, s := range slow {
		if s["alltoall"] <= s["halo"] {
			t.Errorf("%s: alltoall slowdown %.3f not larger than halo %.3f",
				name, s["alltoall"], s["halo"])
		}
	}
	if slow["fattree"]["alltoall"] <= slow["tofud"]["alltoall"] {
		t.Errorf("oversubscribed fat-tree alltoall slowdown %.3f not larger than TofuD %.3f",
			slow["fattree"]["alltoall"], slow["tofud"]["alltoall"])
	}
}

func TestLinkEventsReachSink(t *testing.T) {
	t.Parallel()
	sink := &MemorySink{}
	_, err := Run(JobConfig{
		Procs: 8, Nodes: 8, RankModel: testModel,
		Fabric:     congFabric(&topo.Torus{Dims: []int{8}}),
		Congestion: true, Sink: sink, Label: "cong",
	}, fanIn)
	if err != nil {
		t.Fatal(err)
	}
	var links, samples int
	endSeen := false
	for _, e := range sink.Events {
		switch e.Kind {
		case EvLink:
			links++
			if endSeen {
				t.Error("EvLink after EvJobEnd")
			}
			if e.Name == "" || e.Duration <= 0 {
				t.Errorf("malformed EvLink: %+v", e)
			}
		case EvLinkSample:
			samples++
			if e.Value <= 0 || e.Value > 1 {
				t.Errorf("EvLinkSample utilization %v out of (0, 1]", e.Value)
			}
		case EvJobEnd:
			endSeen = true
		}
	}
	if links == 0 || samples == 0 {
		t.Errorf("want link events and samples, got %d / %d", links, samples)
	}
	if !endSeen {
		t.Error("no EvJobEnd marker")
	}
}
