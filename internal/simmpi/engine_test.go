package simmpi

// The dual-engine differential suite: every observable output of a job
// — the full Report (per-rank clocks, stats, counters, link heatmaps)
// and the merged trace timeline — must be byte-identical between the
// goroutine engine and the discrete-event engine, for every
// communication pattern and option combination. The suite also asserts
// collective RESULTS (not just times) inside the bodies, so the event
// engine's batched data path is checked against ground truth, not
// merely against the other engine.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"a64fxbench/internal/metrics"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// reportDigest reduces a report plus its trace to a comparable hex
// string. JSON is canonical here: all slices, and Go marshals map keys
// sorted.
func reportDigest(t *testing.T, rep Report, tl Timeline) string {
	t.Helper()
	h := sha256.New()
	enc := json.NewEncoder(h)
	if err := enc.Encode(rep); err != nil {
		t.Fatalf("encode report: %v", err)
	}
	if err := enc.Encode(tl); err != nil {
		t.Fatalf("encode timeline: %v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// runEngine executes one job under the given engine and digests it.
func runEngine(t *testing.T, c JobConfig, eng Engine, traced bool, body func(*Rank) error) (Report, string) {
	t.Helper()
	c.Engine = eng
	var sink *MemorySink
	if traced {
		sink = &MemorySink{}
		c.Sink = sink
	}
	rep, err := Run(c, body)
	if err != nil {
		t.Fatalf("engine %s: %v", eng, err)
	}
	var tl Timeline
	if sink != nil {
		tl = sink.Events
		if len(tl) == 0 {
			t.Fatalf("engine %s: traced run produced no events", eng)
		}
	}
	return rep, reportDigest(t, rep, tl)
}

// assertEngineEquivalent runs body under both engines and demands
// byte-identical digests.
func assertEngineEquivalent(t *testing.T, c JobConfig, traced bool, body func(*Rank) error) {
	t.Helper()
	repG, digG := runEngine(t, c, EngineGoroutine, traced, body)
	repE, digE := runEngine(t, c, EngineEvent, traced, body)
	if digG != digE {
		t.Fatalf("engines diverged:\n goroutine makespan=%v msgs=%d bytes=%v\n event     makespan=%v msgs=%d bytes=%v",
			repG.Makespan, repG.TotalMsgs, repG.TotalBytesSent,
			repE.Makespan, repE.TotalMsgs, repE.TotalBytesSent)
	}
	if repG.Makespan <= 0 && repG.TotalMsgs > 0 {
		t.Fatal("degenerate job: messages moved but no time passed")
	}
}

// engineBodies is the pattern library of the differential suite. Every
// body self-checks its collective results; p is the job size it runs at.
var engineBodies = []struct {
	name string
	min  int // smallest p the body supports
	body func(r *Rank) error
}{
	{"compute-pingpong", 2, func(r *Rank) error {
		w := vecWork(1000 + 100*r.ID())
		for it := 0; it < 3; it++ {
			r.Compute(w)
			partner := r.ID() ^ 1
			if partner < r.Size() {
				if r.ID()&1 == 0 {
					r.SendFloats(partner, 7, []float64{float64(r.ID()), float64(it)})
					got := r.RecvFloats(partner, 8)
					if got[0] != float64(partner) {
						return fmt.Errorf("pingpong got %v", got)
					}
				} else {
					got := r.RecvFloats(partner, 7)
					if got[1] != float64(it) {
						return fmt.Errorf("pingpong it %v", got)
					}
					r.SendFloats(partner, 8, []float64{float64(r.ID())})
				}
			}
		}
		return nil
	}},
	{"all-collectives", 1, func(r *Rank) error {
		p := float64(r.Size())
		r.Compute(vecWork(500 * (1 + r.ID()%3)))
		r.Barrier()
		// Allreduce: sum of rank ids.
		buf := []float64{float64(r.ID()), 1}
		r.Allreduce(buf, OpSum)
		if want := p * (p - 1) / 2; buf[0] != want || buf[1] != p {
			return fmt.Errorf("allreduce got %v", buf)
		}
		// Bcast from a non-zero root.
		root := r.Size() / 2
		var payload []float64
		if r.ID() == root {
			payload = []float64{3.25, -1}
		} else {
			payload = []float64{0, 0}
		}
		payload = r.Bcast(root, payload)
		if payload[0] != 3.25 {
			return fmt.Errorf("bcast got %v", payload)
		}
		// Reduce onto a non-zero root.
		rbuf := []float64{1}
		r.Reduce(root, rbuf, OpSum)
		if r.ID() == root && rbuf[0] != p {
			return fmt.Errorf("reduce got %v", rbuf)
		}
		// Allgather.
		gathered := r.Allgather([]float64{float64(10 * r.ID())})
		for i, v := range gathered {
			if v != float64(10*i) {
				return fmt.Errorf("allgather[%d] = %v", i, v)
			}
		}
		// Alltoall.
		send := make([][]float64, r.Size())
		for i := range send {
			send[i] = []float64{float64(r.ID()*100 + i)}
		}
		recv := r.Alltoall(send)
		for i, blk := range recv {
			if blk[0] != float64(i*100+r.ID()) {
				return fmt.Errorf("alltoall[%d] = %v", i, blk)
			}
		}
		// ReduceScatter: block i = p * i-th element.
		rs := make([]float64, r.Size()*2)
		for i := range rs {
			rs[i] = float64(i)
		}
		mine := r.ReduceScatter(rs, OpSum)
		if mine[0] != p*float64(2*r.ID()) || mine[1] != p*float64(2*r.ID()+1) {
			return fmt.Errorf("reducescatter got %v", mine)
		}
		// ExScan: prefix sum of rank ids.
		ex := r.ExScan([]float64{float64(r.ID())}, OpSum)
		id := float64(r.ID())
		if want := id * (id - 1) / 2; ex[0] != want {
			return fmt.Errorf("exscan got %v want %v", ex, want)
		}
		r.Elapse(3 * units.Microsecond)
		return nil
	}},
	{"comm-split", 2, func(r *Rank) error {
		c := r.Split(r.ID()%2, -r.ID())
		if got := c.AllreduceScalar(1, OpSum); got != float64(c.Size()) {
			return fmt.Errorf("split allreduce got %v", got)
		}
		c.Barrier()
		// Second split with a different shape; key reverses the order.
		c2 := r.Split(r.ID()%3, 0)
		if got := c2.AllreduceScalar(float64(r.ID()), OpMax); got < float64(r.ID()) {
			return fmt.Errorf("split2 max got %v", got)
		}
		return nil
	}},
	{"ring-sendrecv", 2, func(r *Rank) error {
		p := r.Size()
		data := []float64{float64(r.ID())}
		for step := 0; step < p; step++ {
			right := (r.ID() + 1) % p
			left := (r.ID() - 1 + p) % p
			r.SendFloats(right, 40+step, data)
			data = r.RecvFloats(left, 40+step)
			r.Compute(vecWork(200))
		}
		if data[0] != float64(r.ID()) {
			return fmt.Errorf("ring ended with %v", data)
		}
		return nil
	}},
	{"imbalanced-collective", 2, func(r *Rank) error {
		// Heavily skewed compute so ranks hit the collective at very
		// different virtual times.
		r.Compute(vecWork(100 * (1 + r.ID()*r.ID())))
		v := r.AllreduceScalar(float64(r.ID()), OpMax)
		if v != float64(r.Size()-1) {
			return fmt.Errorf("max got %v", v)
		}
		r.Barrier()
		return nil
	}},
	{"many-to-one", 2, func(r *Rank) error {
		if r.ID() == 0 {
			for src := 1; src < r.Size(); src++ {
				got := r.RecvFloats(src, 9)
				if got[0] != float64(src) {
					return fmt.Errorf("gathered %v from %d", got, src)
				}
			}
		} else {
			r.Compute(vecWork(300 * r.ID()))
			r.SendFloats(0, 9, []float64{float64(r.ID())})
		}
		return nil
	}},
}

// engineSizes covers the algorithmic corner cases: 1 (no-op
// collectives), powers of two, non-powers of two (allreduce folding,
// alltoall rotation, reduce-scatter's nested reduce), and a multi-node
// spread.
var engineSizes = []struct {
	procs, nodes int
}{
	{1, 1}, {2, 1}, {3, 1}, {4, 2}, {5, 2}, {7, 3}, {8, 4}, {12, 4},
}

func TestEngineEquivalence(t *testing.T) {
	t.Parallel()
	for _, b := range engineBodies {
		for _, sz := range engineSizes {
			if sz.procs < b.min {
				continue
			}
			t.Run(fmt.Sprintf("%s/p%d_n%d", b.name, sz.procs, sz.nodes), func(t *testing.T) {
				t.Parallel()
				assertEngineEquivalent(t, cfg(sz.procs, sz.nodes), true, b.body)
			})
		}
	}
}

// TestEngineEquivalenceOptions crosses one rich body with the full
// option matrix: tracing, counters, congestion, noise, and all at once.
func TestEngineEquivalenceOptions(t *testing.T) {
	t.Parallel()
	body := engineBodies[1].body // all-collectives
	opts := []struct {
		name   string
		mutate func(*JobConfig)
		traced bool
	}{
		{"plain", func(*JobConfig) {}, false},
		{"trace", func(*JobConfig) {}, true},
		{"counters", func(c *JobConfig) {
			c.Counters = &metrics.Config{Period: 20 * units.Microsecond, MaxSamples: 16}
		}, false},
		{"congestion", func(c *JobConfig) { c.Congestion = true }, false},
		{"noise", func(c *JobConfig) {
			c.NoiseProb = 0.3
			c.NoiseDuration = 5 * units.Microsecond
		}, false},
		{"everything", func(c *JobConfig) {
			c.Counters = &metrics.Config{Period: 20 * units.Microsecond, MaxSamples: 16}
			c.Congestion = true
			c.NoiseProb = 0.2
			c.NoiseDuration = 2 * units.Microsecond
		}, true},
	}
	for _, o := range opts {
		for _, sz := range []struct{ procs, nodes int }{{6, 2}, {8, 4}} {
			t.Run(fmt.Sprintf("%s/p%d_n%d", o.name, sz.procs, sz.nodes), func(t *testing.T) {
				t.Parallel()
				c := cfg(sz.procs, sz.nodes)
				o.mutate(&c)
				assertEngineEquivalent(t, c, o.traced, body)
			})
		}
	}
}

// vecWork builds a small deterministic compute phase scaled by n.
func vecWork(n int) perfmodel.WorkProfile {
	return perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: units.Flops(n) * units.KFlop,
		Bytes: units.Bytes(n) * 64,
	}
}

// TestEventEngineErrorPropagation: a failing rank must surface its
// error instead of hanging the loop, including when the other ranks are
// already parked in a collective the failed rank will never join.
func TestEventEngineErrorPropagation(t *testing.T) {
	t.Parallel()
	c := cfg(4, 2)
	c.Engine = EngineEvent
	boom := fmt.Errorf("rank 2 gave up")
	_, err := Run(c, func(r *Rank) error {
		if r.ID() == 2 {
			return boom
		}
		r.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("want rank error, got %v", err)
	}
	// Panics become errors too.
	_, err = Run(c, func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		r.AllreduceScalar(1, OpSum)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("want panic error, got %v", err)
	}
}

// TestEventEngineDeadlockDetection: a receive that can never be matched
// must produce a diagnostic, not a hang (the goroutine engine hangs
// forever on the same program — the event engine is strictly better).
func TestEventEngineDeadlockDetection(t *testing.T) {
	t.Parallel()
	c := cfg(2, 1)
	c.Engine = EngineEvent
	_, err := Run(c, func(r *Rank) error {
		if r.ID() == 0 {
			r.Recv(1, 99) // never sent
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
	// Mismatched collectives are a loud panic-turned-error.
	_, err = Run(c, func(r *Rank) error {
		if r.ID() == 0 {
			r.Barrier()
		} else {
			r.AllreduceScalar(1, OpSum)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "collective mismatch") {
		t.Fatalf("want collective mismatch, got %v", err)
	}
}

// TestEngineResultNeutralInConfig: the engine never leaks into the
// report — running the same body twice under one engine is already
// covered above; this pins the validate() default and rejection.
func TestEngineValidation(t *testing.T) {
	t.Parallel()
	c := cfg(2, 1)
	c.Engine = "threads"
	if _, err := Run(c, func(*Rank) error { return nil }); err == nil {
		t.Fatal("unknown engine must be rejected")
	}
	if eng, err := ParseEngine(""); err != nil || eng != EngineGoroutine {
		t.Fatalf("ParseEngine default: %v %v", eng, err)
	}
	if eng, err := ParseEngine("event"); err != nil || eng != EngineEvent {
		t.Fatalf("ParseEngine event: %v %v", eng, err)
	}
	if _, err := ParseEngine("fibers"); err == nil {
		t.Fatal("ParseEngine must reject unknown names")
	}
}

// FuzzEngineEquivalence fuzzes the job shape — rank count, node count,
// message size, noise seed/probability, compute skew — and asserts the
// engines stay byte-identical. (Satellite: differential property test.)
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(64), uint8(0), uint8(1))
	f.Add(uint8(7), uint8(3), uint16(1), uint8(50), uint8(3))
	f.Add(uint8(1), uint8(1), uint16(512), uint8(10), uint8(0))
	f.Add(uint8(16), uint8(4), uint16(100), uint8(90), uint8(7))
	f.Fuzz(func(t *testing.T, procs, nodes uint8, msgLen uint16, noise, skew uint8) {
		p := int(procs)%24 + 1
		n := int(nodes)%8 + 1
		if n > p {
			n = p
		}
		c := cfg(p, n)
		c.NoiseProb = float64(noise%101) / 100
		c.NoiseDuration = units.Microsecond
		ml := int(msgLen)%1024 + 1
		body := func(r *Rank) error {
			r.Compute(vecWork(100 * (1 + r.ID()%(int(skew)+1))))
			buf := make([]float64, ml)
			for i := range buf {
				buf[i] = float64(r.ID()*ml + i)
			}
			r.Allreduce(buf, OpSum)
			if p > 1 {
				partner := (r.ID() + p/2) % p
				r.SendFloats(partner, 5, buf[:1+ml/2])
				r.RecvFloats((r.ID()-p/2+p)%p, 5)
			}
			r.Barrier()
			return nil
		}
		assertEngineEquivalent(t, c, true, body)
	})
}

// TestEnginePriceMemoMatchesModel pins the memoised pricing to the
// model it caches: same hops and bytes must return the identical bits.
func TestEnginePriceMemoMatchesModel(t *testing.T) {
	t.Parallel()
	c := cfg(4, 4)
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
	e := &eventEngine{j: &job{cfg: c}, prices: map[uint64]units.Duration{}}
	for _, pair := range [][2]int{{0, 0}, {0, 1}, {0, 3}, {2, 1}, {1, 2}} {
		for _, bytes := range []units.Bytes{0, 8, 4096} {
			want := c.Fabric.PointToPoint(pair[0], pair[1], bytes)
			if got := e.price(pair[0], pair[1], bytes); got != want {
				t.Fatalf("price(%v, %d) = %v, model %v", pair, bytes, got, want)
			}
			// Second call exercises the cache hit.
			if got := e.price(pair[0], pair[1], bytes); got != want {
				t.Fatalf("cached price(%v, %d) = %v, model %v", pair, bytes, got, want)
			}
		}
	}
}
