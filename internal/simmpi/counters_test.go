// Virtual PMU tests: the counter subsystem must be bit-deterministic
// across goroutine schedules (like everything else in the runtime),
// result-neutral (enabling it changes no simulated outcome), and
// internally consistent (the time counters partition busy time exactly).
package simmpi_test

import (
	"encoding/json"
	"runtime"
	"testing"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// countedJob runs a 6-rank, 2-node job exercising every hook the PMU
// has: compute across classes, noise, point-to-point, Elapse, and a mix
// of collectives (including the nested ones — ReduceScatter on a
// non-power-of-two size calls Reduce internally; only the outermost
// call may attribute time).
func countedJob(t *testing.T, cfg *metrics.Config) simmpi.Report {
	t.Helper()
	return countedJobModel(t, cfg, "")
}

// countedJobModel is countedJob under an explicit pricing model, so the
// ECM-mode tests exercise the identical rank body.
func countedJobModel(t *testing.T, cfg *metrics.Config, model perfmodel.Model) simmpi.Report {
	t.Helper()
	sys := arch.MustGet(arch.A64FX)
	rankModel := sys.PerRankModel(3, 1)
	jc := simmpi.JobConfig{
		Procs: 6, Nodes: 2, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return rankModel },
		Fabric:    sys.NewFabric(2),
		NoiseProb: 0.2, NoiseDuration: 5 * units.Microsecond,
		Counters: cfg,
		Model:    model,
		Label:    "counted-6rank",
	}
	spmv := perfmodel.WorkProfile{Class: perfmodel.SpMV, Flops: 2 * units.MFlop, Bytes: 12 * units.MiB}
	gemm := perfmodel.WorkProfile{Class: perfmodel.SmallGEMM, Flops: 40 * units.MFlop, Bytes: 2 * units.MiB}
	rep, err := simmpi.Run(jc, func(r *simmpi.Rank) error {
		r.Elapse(30 * units.Microsecond)
		for it := 0; it < 3; it++ {
			r.Region("iter")
			r.Compute(spmv)
			r.Compute(gemm)
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			r.Send(right, 7, nil, 96*units.KiB)
			r.Recv(left, 7)
			r.AllreduceScalar(float64(r.ID()), simmpi.OpSum)
			r.Bcast(0, []float64{1, 2, 3})
			r.ReduceScatter(make([]float64, r.Size()), simmpi.OpMax)
			r.ExScan([]float64{1}, simmpi.OpSum)
			r.EndRegion()
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil && rep.Counters == nil {
		t.Fatal("counted job produced no Counters")
	}
	return rep
}

// TestCountersDeterministicAcrossGOMAXPROCS serializes the full counter
// state — per-rank finals, sampled series (with a tiny MaxSamples so
// decimation triggers), and peer stats — and demands byte-identical
// JSON across the scheduler-width sweep. Must not run in parallel:
// GOMAXPROCS is process-global.
func TestCountersDeterministicAcrossGOMAXPROCS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	run := func() []byte {
		rep := countedJob(t, &metrics.Config{Period: 20 * units.Microsecond, MaxSamples: 8})
		b, err := json.Marshal(rep.Counters)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	ref := run()
	var sampled int
	var jc metrics.JobCounters
	if err := json.Unmarshal(ref, &jc); err != nil {
		t.Fatal(err)
	}
	for _, rc := range jc.Ranks {
		sampled += len(rc.Samples)
		if len(rc.Samples) > 8 {
			t.Fatalf("rank %d holds %d samples, cap 8", rc.Rank, len(rc.Samples))
		}
		for i, s := range rc.Samples {
			if s.At%rc.Period != 0 {
				t.Fatalf("rank %d sample %d at %v off the %v grid", rc.Rank, i, s.At, rc.Period)
			}
		}
	}
	if sampled == 0 {
		t.Fatal("no samples recorded; the series assertions are vacuous")
	}
	for i, n := range gomaxSchedule {
		runtime.GOMAXPROCS(n)
		if got := run(); string(got) != string(ref) {
			t.Fatalf("run %d (GOMAXPROCS=%d): counter state diverged", i, n)
		}
	}
}

// TestCountersResultNeutral pins the tentpole contract: enabling the
// PMU changes no simulated result — same makespan, flops, traffic and
// per-rank finish times.
func TestCountersResultNeutral(t *testing.T) {
	t.Parallel()
	off := countedJob(t, nil)
	on := countedJob(t, &metrics.Config{})
	if off.Makespan != on.Makespan || off.TotalFlops != on.TotalFlops ||
		off.TotalMsgs != on.TotalMsgs || off.TotalBytesSent != on.TotalBytesSent {
		t.Fatalf("counters changed the result:\n off %+v\n on  %+v", off, on)
	}
	for i := range off.Ranks {
		if off.Ranks[i].Finish != on.Ranks[i].Finish ||
			off.Ranks[i].Busy != on.Ranks[i].Busy ||
			off.Ranks[i].Wait != on.Ranks[i].Wait {
			t.Fatalf("rank %d diverged with counters on", i)
		}
	}
}

// countedJob runs each rank body once per invocation; the test relies
// on countedJob(nil) leaving Report.Counters nil.
func TestCountersNilConfigDisables(t *testing.T) {
	t.Parallel()
	if rep := countedJobNoCheck(t); rep.Counters != nil {
		t.Fatal("nil Config should disable the PMU")
	}
}

func countedJobNoCheck(t *testing.T) simmpi.Report {
	t.Helper()
	sys := arch.MustGet(arch.A64FX)
	model := sys.PerRankModel(1, 1)
	rep, err := simmpi.Run(simmpi.JobConfig{
		Procs: 1, Nodes: 1, ThreadsPerRank: 1,
		RankModel: func(int) *perfmodel.CostModel { return model },
		Fabric:    sys.NewFabric(1),
	}, func(r *simmpi.Rank) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCounterTimesPartitionBusy checks the accounting identity on every
// rank: the model-attributed time counters sum exactly to the clock's
// busy time, and the network-stall counter equals its wait time. Every
// addend is an integer nanosecond count far below 2^53, so float64
// accumulation is exact and the comparison can demand equality.
func TestCounterTimesPartitionBusy(t *testing.T) {
	t.Parallel()
	rep := countedJob(t, &metrics.Config{})
	checkBusyPartition(t, rep)
	// Job-level identities against the report's own accounting.
	tot := rep.Counters.Totals()
	var flops float64
	for _, c := range perfmodel.KernelClasses() {
		flops += tot[metrics.FlopsFor(c)]
	}
	if flops != float64(rep.TotalFlops) {
		t.Errorf("flops counters %v, report %v", flops, rep.TotalFlops)
	}
	if tot[metrics.SentMsgs] != float64(rep.TotalMsgs) {
		t.Errorf("sent msgs %v, report %v", tot[metrics.SentMsgs], rep.TotalMsgs)
	}
	if tot[metrics.SentBytes] != float64(rep.TotalBytesSent) {
		t.Errorf("sent bytes %v, report %v", tot[metrics.SentBytes], rep.TotalBytesSent)
	}
	if tot[metrics.RecvMsgs] != tot[metrics.SentMsgs] || tot[metrics.RecvBytes] != tot[metrics.SentBytes] {
		t.Errorf("recv totals diverge from sent: %v/%v msgs, %v/%v bytes",
			tot[metrics.RecvMsgs], tot[metrics.SentMsgs], tot[metrics.RecvBytes], tot[metrics.SentBytes])
	}
	// The cache hierarchy invariant: L1 ≥ L2 ≥ DRAM traffic.
	if tot[metrics.MemL1] < tot[metrics.MemL2] || tot[metrics.MemL2] < tot[metrics.MemDRAM] {
		t.Errorf("cache traffic not monotone: L1 %v, L2 %v, DRAM %v",
			tot[metrics.MemL1], tot[metrics.MemL2], tot[metrics.MemDRAM])
	}
	// Collective attribution must be present (the body runs six kinds)
	// and bounded by total busy+wait time on any single rank — nested
	// collectives must not double-count.
	var coll float64
	for c := metrics.Collective(0); c < metrics.NumCollectives(); c++ {
		coll += tot[metrics.CollTime(c)]
	}
	if coll <= 0 {
		t.Error("no collective time attributed")
	}
	var busyWait float64
	for i := range rep.Ranks {
		busyWait += float64(rep.Ranks[i].Busy + rep.Ranks[i].Wait)
	}
	if coll > busyWait {
		t.Errorf("collective time %v exceeds total busy+wait %v (double counting?)", coll, busyWait)
	}
}

// checkBusyPartition asserts the uniform busy-time identity that holds
// under BOTH pricing models:
//
//	busy = time.flops + stall.mem + stall.call + stall.noise
//	     + net.inject + time.other
//	     + ecm.l1 + ecm.l2 + ecm.mem − ecm.hidden
//
// A roofline job leaves every ecm.* counter at zero, so the extended
// formula degrades to the classic partition; an ECM job leaves
// stall.mem at zero and carries the per-level transfer phases instead.
func checkBusyPartition(t *testing.T, rep simmpi.Report) {
	t.Helper()
	for i, rc := range rep.Counters.Ranks {
		busy := rc.Value(metrics.TimeFlops) + rc.Value(metrics.StallMem) +
			rc.Value(metrics.StallCall) + rc.Value(metrics.StallNoise) +
			rc.Value(metrics.NetInject) + rc.Value(metrics.TimeOther) +
			rc.Value(metrics.ECML1) + rc.Value(metrics.ECML2) +
			rc.Value(metrics.ECMMem) - rc.Value(metrics.ECMHidden)
		if want := float64(rep.Ranks[i].Busy); busy != want {
			t.Errorf("rank %d: time counters sum %v, busy %v", i, busy, want)
		}
		if wait := rc.Value(metrics.StallNet); wait != float64(rep.Ranks[i].Wait) {
			t.Errorf("rank %d: stall.net %v, wait %v", i, wait, rep.Ranks[i].Wait)
		}
	}
}

// TestCounterTimesPartitionBusyECM is the ECM twin of the partition
// test: the same job priced by the ECM model must satisfy the extended
// identity with real per-level phase counters, keep the roofline-only
// stall.mem at zero, and preserve the cache hierarchy invariant.
func TestCounterTimesPartitionBusyECM(t *testing.T) {
	t.Parallel()
	rep := countedJobModel(t, &metrics.Config{}, perfmodel.ModelECM)
	checkBusyPartition(t, rep)
	tot := rep.Counters.Totals()
	if tot[metrics.ECML1] <= 0 || tot[metrics.ECML2] <= 0 || tot[metrics.ECMMem] <= 0 {
		t.Errorf("ECM job recorded no per-level phases: L1 %v, L2 %v, mem %v",
			tot[metrics.ECML1], tot[metrics.ECML2], tot[metrics.ECMMem])
	}
	if tot[metrics.StallMem] != 0 {
		t.Errorf("ECM job attributed roofline stall.mem %v, want 0", tot[metrics.StallMem])
	}
	if tot[metrics.MemL1] < tot[metrics.MemL2] || tot[metrics.MemL2] < tot[metrics.MemDRAM] {
		t.Errorf("cache traffic not monotone: L1 %v, L2 %v, DRAM %v",
			tot[metrics.MemL1], tot[metrics.MemL2], tot[metrics.MemDRAM])
	}
	// The model changes times, never metered work: flops and traffic
	// must match the roofline job byte-for-byte, the makespan must not.
	roofline := countedJob(t, &metrics.Config{})
	if rep.TotalFlops != roofline.TotalFlops {
		t.Errorf("ECM flops %v differ from roofline %v", rep.TotalFlops, roofline.TotalFlops)
	}
	if rep.Makespan == roofline.Makespan {
		t.Error("ECM makespan equals roofline makespan — model not applied")
	}
}

// TestNekboneCountersDeterministic runs the public benchmark surface
// with counters through the same scheduler sweep used by the core
// determinism tests, hashing the serialized counter report.
func TestNekboneCountersDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	run := func() string {
		res, err := nekbone.Run(nekbone.Config{
			System: arch.MustGet(arch.A64FX), Nodes: 4,
			ElementsPerRank: 8, Order: 4, Iterations: 12,
			Instrumentation: simmpi.Instrumentation{Counters: &metrics.Config{Period: 50 * units.Microsecond, MaxSamples: 16}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Report.Counters == nil {
			t.Fatal("nekbone dropped the counter config")
		}
		b, err := json.Marshal(res.Report.Counters)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	ref := run()
	for i, n := range []int{1, 8, 2, 16, 1} {
		runtime.GOMAXPROCS(n)
		if got := run(); got != ref {
			t.Fatalf("run %d (GOMAXPROCS=%d): nekbone counters diverged", i, n)
		}
	}
}
