package castep

import (
	"testing"

	"a64fxbench/internal/arch"
)

// BenchmarkHamiltonianApply measures the real FFT-based H application.
func BenchmarkHamiltonianApply(b *testing.B) {
	n := 16
	v := make([]float64, n*n*n)
	for i := range v {
		v[i] = float64(i%7) * 0.1
	}
	h, err := NewPlaneWaveHamiltonian(n, v)
	if err != nil {
		b.Fatal(err)
	}
	psi := make([]complex128, n*n*n)
	out := make([]complex128, n*n*n)
	for i := range psi {
		psi[i] = complex(float64(i%5), float64(i%3))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Apply(psi, out)
	}
}

// BenchmarkLowestStates measures the real eigensolver.
func BenchmarkLowestStates(b *testing.B) {
	h, err := NewPlaneWaveHamiltonian(8, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.LowestStates(2, 50, 0.4, 1)
	}
}

// BenchmarkMeteredTiN measures the simulator's cost for the metered
// single-node TiN run.
func BenchmarkMeteredTiN(b *testing.B) {
	cfg := Config{System: arch.MustGet(arch.NGIO), Cycles: 2}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
