package castep

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/fft"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// TiNCase describes the metered TiN benchmark workload: the standard
// CASTEP TiN benchmark (release 18.1.0), characterised by its band
// count, plane-wave basis size, FFT grid, and the FFT applications per
// SCF cycle. The paper reports performance in SCF cycles per second.
type TiNCase struct {
	// Bands is the number of electronic bands.
	Bands int
	// PlaneWaves is the basis size per band.
	PlaneWaves int
	// Grid is the FFT grid dimension (Grid³ points).
	Grid int
	// FFTPairsPerBandPerCycle counts forward+inverse 3D FFT pairs each
	// band needs per SCF cycle (H applications, density build).
	FFTPairsPerBandPerCycle int
}

// PaperTiN returns the TiN workload model used for Table IX/Figure 5.
func PaperTiN() TiNCase {
	return TiNCase{
		Bands:                   504,
		PlaneWaves:              40000,
		Grid:                    100,
		FFTPairsPerBandPerCycle: 12,
	}
}

// Config describes one metered CASTEP run.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Cores is the core count on the single node (one MPI process per
	// core, the best configuration per §VII.B). 0 means the largest
	// legal count: the TiN benchmark requires core counts that are a
	// factor or multiple of 8, so Cirrus runs 32 of its 36 cores.
	Cores int
	// Cycles is the number of SCF cycles to simulate (default 5; the
	// rate is steady).
	Cycles int
	// Case is the workload; zero value means PaperTiN.
	Case TiNCase
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation. CASTEP runs on a
	// single node, so Congestion never changes its results.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

// Result is the outcome of a metered run.
type Result struct {
	// SCFCyclesPerSecond is Table IX's metric.
	SCFCyclesPerSecond float64
	// Seconds is the total simulated time.
	Seconds float64
	// Cores is the core count used.
	Cores int
	// Report carries full accounting.
	Report simmpi.Report
}

// LegalCores returns the TiN-legal core counts (factors or multiples of
// 8) available on a system's node, ascending.
func LegalCores(sys *arch.System) []int {
	var out []int
	for c := 1; c <= sys.CoresPerNode(); c++ {
		if legalCoreCount(c) {
			out = append(out, c)
		}
	}
	return out
}

// legalCoreCount reports whether the TiN benchmark can run on c cores:
// c must divide 8 or be a multiple of 8 (§VII.B.1).
func legalCoreCount(c int) bool {
	if c <= 0 {
		return false
	}
	return 8%c == 0 || c%8 == 0
}

// BestCores returns the largest legal core count for a node — 32 on
// Cirrus's 36-core nodes, the full node elsewhere.
func BestCores(sys *arch.System) int {
	cs := LegalCores(sys)
	return cs[len(cs)-1]
}

// Run executes the metered single-node CASTEP TiN benchmark.
func Run(cfg Config) (Result, error) {
	if cfg.System == nil {
		return Result{}, fmt.Errorf("castep: System is required")
	}
	sys := cfg.System
	if cfg.Cores == 0 {
		cfg.Cores = BestCores(sys)
	}
	if cfg.Cores < 1 || cfg.Cores > sys.CoresPerNode() {
		return Result{}, fmt.Errorf("castep: %d cores outside 1..%d", cfg.Cores, sys.CoresPerNode())
	}
	if !legalCoreCount(cfg.Cores) {
		return Result{}, fmt.Errorf("castep: TiN requires core counts that are a factor or multiple of 8, got %d", cfg.Cores)
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 5
	}
	if cfg.Case == (TiNCase{}) {
		cfg.Case = PaperTiN()
	}
	tc := cfg.Case
	procs := cfg.Cores

	// Per-rank work per SCF cycle: the bands distribute over processes.
	bandsPerRank := float64(tc.Bands) / float64(procs)
	fftFlopsPerPair := 2 * fft.Flops3D(tc.Grid)
	n3 := float64(tc.Grid * tc.Grid * tc.Grid)
	// Effective DRAM traffic per 3D transform: blocked pencil passes,
	// ~4 array sweeps of 16-byte complex data per transform.
	fftBytesPerPair := 2 * 4 * n3 * 16

	fftWork := perfmodel.WorkProfile{
		Class: perfmodel.FFTKernel,
		Flops: units.Flops(bandsPerRank * float64(tc.FFTPairsPerBandPerCycle) * fftFlopsPerPair),
		Bytes: units.Bytes(bandsPerRank * float64(tc.FFTPairsPerBandPerCycle) * fftBytesPerPair),
		Calls: int64(bandsPerRank * float64(tc.FFTPairsPerBandPerCycle)),
	}
	gemmWork := perfmodel.WorkProfile{
		Class: perfmodel.LargeGEMM,
		Flops: units.Flops(SubspaceFlops(tc.Bands, tc.PlaneWaves) / float64(procs)),
		Bytes: units.Bytes(float64(tc.Bands*tc.PlaneWaves) * 16 * 3 / float64(procs)),
		Calls: 4,
	}

	model := sys.PerRankModel(procs, 1)
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          1,
		ThreadsPerRank: 1,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("castep %s c=%d", sys.ID, procs),
	}
	cfg.Instrumentation.Apply(&job)

	// The wavefunction transpose: each SCF cycle needs all-to-all
	// communication of grid data among the band groups.
	a2aBytesPerPeer := units.Bytes(n3 * 16 / float64(procs*procs) * 4)

	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		for cyc := 0; cyc < cfg.Cycles; cyc++ {
			r.Region("scf-cycle")
			r.Region("fft")
			r.Compute(fftWork)
			r.EndRegion()
			if r.Size() > 1 {
				r.Region("transpose")
				send := make([][]float64, r.Size())
				n := int(a2aBytesPerPeer) / 8
				for i := range send {
					send[i] = make([]float64, n)
				}
				r.Alltoall(send)
				r.EndRegion()
			}
			r.Region("subspace")
			r.Compute(gemmWork)
			r.EndRegion()
			// Density/potential mixing reduction.
			r.AllreduceScalar(0, simmpi.OpSum)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	sec := rep.Seconds()
	res := Result{
		Seconds: sec,
		Cores:   procs,
		Report:  rep,
	}
	if sec > 0 {
		res.SCFCyclesPerSecond = float64(cfg.Cycles) / sec
	}
	return res, nil
}
