// Package castep implements the CASTEP materials-science benchmark: a
// plane-wave density-functional-theory code whose self-consistent-field
// (SCF) cycles are dominated by 3D FFTs and dense subspace linear
// algebra (§VII.B of the paper).
//
// A real miniature plane-wave eigensolver is implemented and validated
// in the tests (band-by-band steepest-descent/CG minimisation of a
// periodic Hamiltonian applied with internal/fft, with exact free-
// electron eigenvalues as the reference); the metered benchmark
// reproduces Table IX (best single-node TiN performance in SCF cycles/s)
// and Figure 5 (single-node performance as a function of core count).
package castep

import (
	"fmt"
	"math"
	"math/cmplx"

	"a64fxbench/internal/fft"
)

// PlaneWaveHamiltonian is H = -½∇² + V(r) on a periodic n³ grid with a
// real-space local potential V, applied to wavefunctions stored in
// reciprocal space.
type PlaneWaveHamiltonian struct {
	N int
	// V is the local potential on the real-space grid (n³, x-fastest).
	V []float64
	// kinetic caches ½|G|² for each reciprocal grid point.
	kinetic []float64
}

// NewPlaneWaveHamiltonian builds the Hamiltonian for an n³ grid and the
// given real-space potential (length n³); a nil potential means the free
// electron (empty lattice).
func NewPlaneWaveHamiltonian(n int, v []float64) (*PlaneWaveHamiltonian, error) {
	if n < 2 {
		return nil, fmt.Errorf("castep: grid must be ≥ 2, got %d", n)
	}
	if v != nil && len(v) != n*n*n {
		return nil, fmt.Errorf("castep: potential has %d entries for %d³ grid", len(v), n)
	}
	if v == nil {
		v = make([]float64, n*n*n)
	}
	h := &PlaneWaveHamiltonian{N: n, V: v, kinetic: make([]float64, n*n*n)}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				g2 := gComp(i, n)*gComp(i, n) + gComp(j, n)*gComp(j, n) + gComp(k, n)*gComp(k, n)
				h.kinetic[i+n*(j+n*k)] = 0.5 * g2
			}
		}
	}
	return h, nil
}

// gComp maps a grid index to its signed reciprocal-lattice component
// (unit cell of length 2π, so G components are integers).
func gComp(i, n int) float64 {
	if i <= n/2 {
		return float64(i)
	}
	return float64(i - n)
}

// Apply computes Hψ for a reciprocal-space wavefunction ψ (length n³):
// the kinetic term is diagonal in G-space; the potential term is applied
// by FFT to real space, multiply, FFT back — the 3D-FFT pattern that
// dominates CASTEP.
func (h *PlaneWaveHamiltonian) Apply(psi, out []complex128) {
	n3 := h.N * h.N * h.N
	if len(psi) != n3 || len(out) != n3 {
		panic("castep: Apply length mismatch")
	}
	// Potential term via real space.
	g := &fft.Grid3D{N: h.N, Data: append([]complex128(nil), psi...)}
	g.Inverse3D()
	for i := range g.Data {
		g.Data[i] *= complex(h.V[i], 0)
	}
	g.Forward3D()
	for i := range out {
		out[i] = complex(h.kinetic[i], 0)*psi[i] + g.Data[i]
	}
}

// Rayleigh returns the Rayleigh quotient ⟨ψ|H|ψ⟩/⟨ψ|ψ⟩.
func (h *PlaneWaveHamiltonian) Rayleigh(psi []complex128) float64 {
	hp := make([]complex128, len(psi))
	h.Apply(psi, hp)
	var num, den float64
	for i := range psi {
		num += real(cmplx.Conj(psi[i]) * hp[i])
		den += real(cmplx.Conj(psi[i]) * psi[i])
	}
	return num / den
}

// normalise scales ψ to unit norm.
func normalise(psi []complex128) {
	var s float64
	for _, v := range psi {
		s += real(cmplx.Conj(v) * v)
	}
	s = math.Sqrt(s)
	if s == 0 {
		return
	}
	inv := complex(1/s, 0)
	for i := range psi {
		psi[i] *= inv
	}
}

// orthogonalise removes the projections of ψ onto the given states.
func orthogonalise(psi []complex128, states [][]complex128) {
	for _, s := range states {
		var dot complex128
		for i := range psi {
			dot += cmplx.Conj(s[i]) * psi[i]
		}
		for i := range psi {
			psi[i] -= dot * s[i]
		}
	}
}

// LowestStates finds the nBands lowest eigenstates of H by steepest-
// descent minimisation of the Rayleigh quotient with Gram-Schmidt
// orthogonalisation — the iterative-minimisation scheme of Payne et al.
// (the paper's reference [21]) in its simplest form. Returns the
// eigenvalues.
func (h *PlaneWaveHamiltonian) LowestStates(nBands, iters int, step float64, seed int64) []float64 {
	n3 := h.N * h.N * h.N
	states := make([][]complex128, 0, nBands)
	evs := make([]float64, nBands)
	rng := seed
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / (1 << 53)
	}
	hp := make([]complex128, n3)
	for b := 0; b < nBands; b++ {
		psi := make([]complex128, n3)
		for i := range psi {
			psi[i] = complex(next()-0.5, next()-0.5)
		}
		orthogonalise(psi, states)
		normalise(psi)
		for it := 0; it < iters; it++ {
			h.Apply(psi, hp)
			lambda := 0.0
			for i := range psi {
				lambda += real(cmplx.Conj(psi[i]) * hp[i])
			}
			// Preconditioned steepest descent on the residual
			// r = Hψ - λψ: the kinetic-energy preconditioner
			// 1/(1+½|G|²) equalises convergence across the spectrum
			// (Teter-Payne-Allan style, as in CASTEP itself).
			for i := range psi {
				r := hp[i] - complex(lambda, 0)*psi[i]
				psi[i] -= complex(step/(1+h.kinetic[i]), 0) * r
			}
			orthogonalise(psi, states)
			normalise(psi)
		}
		evs[b] = h.Rayleigh(psi)
		states = append(states, psi)
	}
	return evs
}

// Subspace helpers for the metered GEMM accounting: CASTEP's per-cycle
// dense algebra is overlap construction S = Ψ†Ψ, diagonalisation, and
// rotation Ψ←ΨU. SubspaceFlops reports the flop count for nBands bands
// over nPW plane waves (complex arithmetic: 8 flops per multiply-add).
func SubspaceFlops(nBands, nPW int) float64 {
	b, p := float64(nBands), float64(nPW)
	// S = Ψ†Ψ and Ψ←ΨU: two nPW×nBands×nBands complex GEMMs, plus an
	// O(nBands³) diagonalisation.
	return 2*8*p*b*b + 10*b*b*b
}
