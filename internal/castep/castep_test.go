package castep

import (
	"math"
	"sort"
	"testing"

	"a64fxbench/internal/arch"
)

// --- Plane-wave numerics validation ---

func TestFreeElectronEigenvalues(t *testing.T) {
	t.Parallel()
	// Empty lattice: the exact eigenvalues are ½|G|² = 0, ½, ½, ½, …
	h, err := NewPlaneWaveHamiltonian(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	evs := h.LowestStates(4, 200, 0.4, 1)
	sort.Float64s(evs)
	want := []float64{0, 0.5, 0.5, 0.5}
	for i := range want {
		if math.Abs(evs[i]-want[i]) > 1e-3 {
			t.Errorf("eigenvalue %d = %v, want %v", i, evs[i], want[i])
		}
	}
}

func TestPotentialShiftsGroundState(t *testing.T) {
	t.Parallel()
	// A constant potential shifts every eigenvalue by exactly c.
	n := 6
	c := 0.37
	v := make([]float64, n*n*n)
	for i := range v {
		v[i] = c
	}
	h, err := NewPlaneWaveHamiltonian(n, v)
	if err != nil {
		t.Fatal(err)
	}
	evs := h.LowestStates(1, 200, 0.4, 2)
	if math.Abs(evs[0]-c) > 1e-3 {
		t.Errorf("ground state = %v, want %v", evs[0], c)
	}
}

func TestApplyHermitian(t *testing.T) {
	t.Parallel()
	// ⟨φ|Hψ⟩ == conj(⟨ψ|Hφ⟩).
	n := 4
	v := make([]float64, n*n*n)
	for i := range v {
		v[i] = math.Sin(float64(i) * 0.3)
	}
	h, err := NewPlaneWaveHamiltonian(n, v)
	if err != nil {
		t.Fatal(err)
	}
	n3 := n * n * n
	psi := make([]complex128, n3)
	phi := make([]complex128, n3)
	for i := range psi {
		psi[i] = complex(math.Sin(float64(i)), math.Cos(float64(2*i)))
		phi[i] = complex(math.Cos(float64(3*i)), math.Sin(float64(i)*0.5))
	}
	hpsi := make([]complex128, n3)
	hphi := make([]complex128, n3)
	h.Apply(psi, hpsi)
	h.Apply(phi, hphi)
	var a, b complex128
	for i := range psi {
		a += complex(real(phi[i]), -imag(phi[i])) * hpsi[i]
		b += complex(real(psi[i]), -imag(psi[i])) * hphi[i]
	}
	diff := a - complex(real(b), -imag(b))
	if math.Hypot(real(diff), imag(diff)) > 1e-9 {
		t.Errorf("H not Hermitian: %v vs %v", a, b)
	}
}

func TestHamiltonianValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewPlaneWaveHamiltonian(1, nil); err == nil {
		t.Error("grid 1 should fail")
	}
	if _, err := NewPlaneWaveHamiltonian(4, make([]float64, 5)); err == nil {
		t.Error("wrong potential length should fail")
	}
}

func TestSubspaceFlops(t *testing.T) {
	t.Parallel()
	if SubspaceFlops(10, 100) <= 0 {
		t.Error("flop formula must be positive")
	}
	// Quadratic in bands for fixed basis (plus the cubic diag term).
	r := SubspaceFlops(20, 10000) / SubspaceFlops(10, 10000)
	if r < 3.9 || r > 4.3 {
		t.Errorf("band scaling ratio = %v, want ≈4", r)
	}
}

// --- Metered benchmark ---

func TestLegalCores(t *testing.T) {
	t.Parallel()
	// Factors of 8 (1,2,4,8) and multiples of 8.
	sys := arch.MustGet(arch.Cirrus) // 36 cores
	cs := LegalCores(sys)
	want := []int{1, 2, 4, 8, 16, 24, 32}
	if len(cs) != len(want) {
		t.Fatalf("LegalCores = %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("LegalCores[%d] = %d, want %d", i, cs[i], want[i])
		}
	}
	// §VII.B.1: Cirrus cannot use all 36 cores; best is 32.
	if BestCores(sys) != 32 {
		t.Errorf("Cirrus best = %d, want 32", BestCores(sys))
	}
	if BestCores(arch.MustGet(arch.A64FX)) != 48 {
		t.Error("A64FX best should be the full 48")
	}
}

// paperTable9 is Table IX: best single-node TiN performance.
var paperTable9 = map[arch.ID]struct {
	cores int
	perf  float64
}{
	arch.A64FX:   {48, 0.145},
	arch.ARCHER:  {24, 0.074},
	arch.NGIO:    {48, 0.184},
	arch.Cirrus:  {32, 0.125},
	arch.Fulhame: {64, 0.141},
}

func TestTableIX(t *testing.T) {
	t.Parallel()
	for id, want := range paperTable9 {
		res, err := Run(Config{System: arch.MustGet(id)})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Cores != want.cores {
			t.Errorf("%s cores = %d, want %d", id, res.Cores, want.cores)
		}
		if rel := math.Abs(res.SCFCyclesPerSecond-want.perf) / want.perf; rel > 0.08 {
			t.Errorf("%s = %.3f SCF c/s, paper %.3f", id, res.SCFCyclesPerSecond, want.perf)
		}
	}
}

func TestTableIXOrdering(t *testing.T) {
	t.Parallel()
	// §VII.B: NGIO fastest, then A64FX ≈ Fulhame, then Cirrus, ARCHER
	// last; A64FX beats ThunderX2 with fewer cores but does not match
	// Cascade Lake.
	perf := map[arch.ID]float64{}
	for id := range paperTable9 {
		res, err := Run(Config{System: arch.MustGet(id)})
		if err != nil {
			t.Fatal(err)
		}
		perf[id] = res.SCFCyclesPerSecond
	}
	if !(perf[arch.NGIO] > perf[arch.A64FX]) {
		t.Error("NGIO should beat A64FX on CASTEP")
	}
	if !(perf[arch.A64FX] > perf[arch.Fulhame]) {
		t.Error("A64FX should edge out Fulhame")
	}
	if !(perf[arch.Fulhame] > perf[arch.Cirrus] && perf[arch.Cirrus] > perf[arch.ARCHER]) {
		t.Error("tail ordering wrong")
	}
}

func TestFigure5MonotoneScaling(t *testing.T) {
	t.Parallel()
	// Single-node performance increases with core count on every
	// system over the legal counts.
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		var prev float64
		for _, c := range LegalCores(sys) {
			res, err := Run(Config{System: sys, Cores: c, Cycles: 2})
			if err != nil {
				t.Fatalf("%s %d cores: %v", id, c, err)
			}
			if res.SCFCyclesPerSecond <= prev {
				t.Errorf("%s: no gain at %d cores (%.4f vs %.4f)",
					id, c, res.SCFCyclesPerSecond, prev)
			}
			prev = res.SCFCyclesPerSecond
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
	sys := arch.MustGet(arch.A64FX)
	if _, err := Run(Config{System: sys, Cores: 100}); err == nil {
		t.Error("too many cores should fail")
	}
	if _, err := Run(Config{System: sys, Cores: 7}); err == nil {
		t.Error("core count 7 is not a factor or multiple of 8")
	}
}

func TestPaperTiNConstants(t *testing.T) {
	t.Parallel()
	tc := PaperTiN()
	if tc.Bands <= 0 || tc.Grid <= 0 || tc.PlaneWaves <= 0 || tc.FFTPairsPerBandPerCycle <= 0 {
		t.Errorf("degenerate TiN case %+v", tc)
	}
}
