package castep

import (
	"fmt"
	"math"
	"math/cmplx"

	"a64fxbench/internal/fft"
)

// SCF runs a real self-consistent-field loop — the cycle whose rate
// Table IX reports. Each cycle solves the lowest bands of the current
// Hamiltonian, builds the electron density, derives a new effective
// potential from it through a simple local (Hartree-like) coupling, and
// mixes it linearly into the previous potential until self-consistency.
type SCF struct {
	// N is the grid dimension.
	N int
	// Bands is the number of occupied states.
	Bands int
	// VExt is the fixed external potential on the n³ grid.
	VExt []float64
	// Coupling scales the density's contribution to the effective
	// potential (0 reduces to the non-interacting problem).
	Coupling float64
	// Mixing is the linear density-mixing parameter in (0, 1].
	Mixing float64

	// V is the current effective potential.
	V []float64
	// Density is the current electron density.
	Density []float64
}

// NewSCF builds a self-consistent solver. vext may be nil (free
// electrons plus interaction).
func NewSCF(n, bands int, vext []float64, coupling, mixing float64) (*SCF, error) {
	if n < 2 {
		return nil, fmt.Errorf("castep: grid must be ≥ 2, got %d", n)
	}
	if bands < 1 {
		return nil, fmt.Errorf("castep: need ≥ 1 band, got %d", bands)
	}
	if mixing <= 0 || mixing > 1 {
		return nil, fmt.Errorf("castep: mixing %v outside (0, 1]", mixing)
	}
	n3 := n * n * n
	if vext == nil {
		vext = make([]float64, n3)
	}
	if len(vext) != n3 {
		return nil, fmt.Errorf("castep: potential has %d entries for %d³ grid", len(vext), n)
	}
	return &SCF{
		N: n, Bands: bands, VExt: vext,
		Coupling: coupling, Mixing: mixing,
		V:       append([]float64(nil), vext...),
		Density: make([]float64, n3),
	}, nil
}

// Cycle performs one SCF cycle and returns the density residual
// max|ρ_new - ρ_old| (the self-consistency measure) and the band
// eigenvalue sum.
func (s *SCF) Cycle(minimiserIters int, seed int64) (float64, float64) {
	h, err := NewPlaneWaveHamiltonian(s.N, s.V)
	if err != nil {
		panic(err) // dimensions validated at construction
	}
	evs, states := h.lowestStatesWithVectors(s.Bands, minimiserIters, 0.4, seed)
	n3 := s.N * s.N * s.N
	// Build the real-space density from the occupied states.
	newDensity := make([]float64, n3)
	for _, psi := range states {
		g := gridFromReciprocal(s.N, psi)
		for i, v := range g {
			newDensity[i] += real(v)*real(v) + imag(v)*imag(v)
		}
	}
	// Normalise: each band holds one electron.
	var total float64
	for _, d := range newDensity {
		total += d
	}
	if total > 0 {
		scale := float64(s.Bands) / total
		for i := range newDensity {
			newDensity[i] *= scale
		}
	}
	// Residual and linear mixing.
	var resid float64
	for i := range newDensity {
		if d := math.Abs(newDensity[i] - s.Density[i]); d > resid {
			resid = d
		}
		s.Density[i] += s.Mixing * (newDensity[i] - s.Density[i])
	}
	// New effective potential: external plus local density coupling.
	for i := range s.V {
		s.V[i] = s.VExt[i] + s.Coupling*s.Density[i]
	}
	var esum float64
	for _, e := range evs {
		esum += e
	}
	return resid, esum
}

// Converge runs cycles until the density residual drops below tol or
// maxCycles is exhausted, returning cycles used and the final residual.
func (s *SCF) Converge(maxCycles, minimiserIters int, tol float64) (int, float64) {
	var resid float64
	for c := 1; c <= maxCycles; c++ {
		// A fixed seed keeps the minimiser's start deterministic
		// across cycles, so the density residual measures potential
		// self-consistency rather than restart noise.
		resid, _ = s.Cycle(minimiserIters, 1)
		if resid < tol {
			return c, resid
		}
	}
	return maxCycles, resid
}

// gridFromReciprocal transforms a reciprocal-space state to the real-
// space grid.
func gridFromReciprocal(n int, psi []complex128) []complex128 {
	g := make([]complex128, len(psi))
	copy(g, psi)
	(&fft.Grid3D{N: n, Data: g}).Inverse3D()
	return g
}

// lowestStatesWithVectors mirrors LowestStates but also returns the
// eigenvectors, which the SCF density build needs.
func (h *PlaneWaveHamiltonian) lowestStatesWithVectors(nBands, iters int, step float64, seed int64) ([]float64, [][]complex128) {
	n3 := h.N * h.N * h.N
	states := make([][]complex128, 0, nBands)
	evs := make([]float64, nBands)
	rng := seed
	next := func() float64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / (1 << 53)
	}
	hp := make([]complex128, n3)
	for b := 0; b < nBands; b++ {
		psi := make([]complex128, n3)
		for i := range psi {
			psi[i] = complex(next()-0.5, next()-0.5)
		}
		orthogonalise(psi, states)
		normalise(psi)
		for it := 0; it < iters; it++ {
			h.Apply(psi, hp)
			lambda := 0.0
			for i := range psi {
				lambda += real(cmplx.Conj(psi[i]) * hp[i])
			}
			for i := range psi {
				r := hp[i] - complex(lambda, 0)*psi[i]
				psi[i] -= complex(step/(1+h.kinetic[i]), 0) * r
			}
			orthogonalise(psi, states)
			normalise(psi)
		}
		evs[b] = h.Rayleigh(psi)
		states = append(states, psi)
	}
	return evs, states
}
