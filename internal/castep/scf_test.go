package castep

import (
	"math"
	"testing"
)

func TestSCFValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSCF(1, 1, nil, 0.1, 0.5); err == nil {
		t.Error("grid 1 should fail")
	}
	if _, err := NewSCF(4, 0, nil, 0.1, 0.5); err == nil {
		t.Error("0 bands should fail")
	}
	if _, err := NewSCF(4, 1, nil, 0.1, 0); err == nil {
		t.Error("zero mixing should fail")
	}
	if _, err := NewSCF(4, 1, make([]float64, 3), 0.1, 0.5); err == nil {
		t.Error("wrong potential length should fail")
	}
}

func TestSCFNonInteractingConvergesImmediately(t *testing.T) {
	t.Parallel()
	// Coupling 0: the potential never changes, so the density settles
	// as soon as the minimiser does.
	s, err := NewSCF(6, 2, nil, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cycles, resid := s.Converge(10, 150, 1e-6)
	if cycles > 3 {
		t.Errorf("non-interacting SCF took %d cycles (resid %v)", cycles, resid)
	}
}

func TestSCFInteractingConverges(t *testing.T) {
	t.Parallel()
	// A weak local coupling: SCF must still converge, to a density
	// that is self-consistent with its own potential.
	n := 6
	vext := make([]float64, n*n*n)
	for i := range vext {
		vext[i] = 0.3 * math.Cos(2*math.Pi*float64(i%n)/float64(n))
	}
	s, err := NewSCF(n, 2, vext, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	cycles, resid := s.Converge(30, 150, 1e-5)
	if resid >= 1e-5 {
		t.Fatalf("SCF did not converge: resid %v after %d cycles", resid, cycles)
	}
	// Self-consistency check: V == VExt + coupling·ρ.
	for i := range s.V {
		want := s.VExt[i] + 0.5*s.Density[i]
		if math.Abs(s.V[i]-want) > 1e-12 {
			t.Fatalf("potential inconsistent at %d: %v vs %v", i, s.V[i], want)
		}
	}
	// Density is non-negative and integrates to the electron count.
	var total float64
	for _, d := range s.Density {
		if d < 0 {
			t.Fatal("negative density")
		}
		total += d
	}
	// The mixed density converges to 2 electrons as the residual
	// vanishes; at tol=1e-5 a small blend remainder survives.
	if math.Abs(total-2) > 1e-3 {
		t.Errorf("density integrates to %v, want 2", total)
	}
}

func TestSCFDensityFollowsPotentialWell(t *testing.T) {
	t.Parallel()
	// With an attractive well at the origin, density should peak there
	// (no interaction so the effect is clean).
	n := 8
	vext := make([]float64, n*n*n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				// Deep well at (0,0,0), periodic cosine shape.
				c := math.Cos(2*math.Pi*float64(i)/float64(n)) +
					math.Cos(2*math.Pi*float64(j)/float64(n)) +
					math.Cos(2*math.Pi*float64(k)/float64(n))
				vext[i+n*(j+n*k)] = -1.5 * c
			}
		}
	}
	s, err := NewSCF(n, 1, vext, 0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	s.Converge(5, 250, 1e-7)
	// Density at the well bottom (origin) ≫ at the repulsive corner.
	origin := s.Density[0]
	corner := s.Density[n/2+n*(n/2+n*(n/2))]
	if origin < 3*corner {
		t.Errorf("density not localised in the well: origin %v vs corner %v", origin, corner)
	}
}
