package spec

import (
	"encoding/json"
	"sort"
	"strings"
)

// Overlays: a spec whose "base" names another machine carries only the
// fields that differ. Resolution merges the overlay into the base's
// canonical JSON with RFC 7386 merge-patch semantics — objects merge
// recursively, scalars and whole maps-of-scalars entries replace, an
// explicit null deletes — then re-parses the merged document strictly.
// The overlay must rename the machine: a what-if variant is a new
// identity, never a silent redefinition of its base.

// resolve expands raw (already strictly parsed as s) against base
// specs provided by lookup; validNames lists the known base names for
// error messages. Non-overlay specs pass through unchanged.
func resolve(raw []byte, s *Spec, lookup func(string) (*Spec, bool), validNames func() []string) (*Spec, error) {
	if s.Base == "" {
		return s, nil
	}
	base, ok := lookup(s.Base)
	if !ok {
		return nil, fieldErrf("base", "unknown base machine %q (valid: %s)",
			s.Base, strings.Join(validNames(), " "))
	}
	var baseMap, patch map[string]any
	if err := json.Unmarshal(base.Canonical(), &baseMap); err != nil {
		return nil, fieldErrf("base", "cannot re-decode base %q: %v", s.Base, err)
	}
	if err := json.Unmarshal(raw, &patch); err != nil {
		// raw already parsed strictly as an object; cannot happen.
		return nil, fieldErrf("base", "cannot re-decode overlay: %v", err)
	}
	delete(patch, "base")
	merged := mergePatch(baseMap, patch)
	if name, _ := merged["name"].(string); name == base.Name {
		return nil, fieldErrf("name", "overlay of %q must give the derived machine a new name", base.Name)
	}
	out, err := json.Marshal(merged)
	if err != nil {
		return nil, fieldErrf("base", "cannot encode merged spec: %v", err)
	}
	resolved, err := Parse(out)
	if err != nil {
		return nil, err
	}
	if resolved.Base != "" {
		// A null-resistant guard: "base" was deleted above, so a
		// non-empty value here means the overlay smuggled it back.
		return nil, fieldErrf("base", "overlay chains must resolve through a registry")
	}
	return resolved, nil
}

// mergePatch applies RFC 7386 semantics: patch keys overwrite dst keys,
// recursing where both sides are objects, deleting on explicit null.
func mergePatch(dst, patch map[string]any) map[string]any {
	keys := make([]string, 0, len(patch))
	for k := range patch {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := patch[k]
		if v == nil {
			delete(dst, k)
			continue
		}
		if pm, ok := v.(map[string]any); ok {
			if dm, ok := dst[k].(map[string]any); ok {
				dst[k] = mergePatch(dm, pm)
				continue
			}
		}
		dst[k] = v
	}
	return dst
}
