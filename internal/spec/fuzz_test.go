package spec

import (
	"bytes"
	"testing"
)

// FuzzParse: the spec decoder must never panic on arbitrary input, and
// every rejection must carry a non-empty message (FieldErrors name the
// offending field). Inputs that parse must compile without panicking
// and, when they compile, canonical-encode to a fixed point.
func FuzzParse(f *testing.F) {
	for _, m := range Embedded() {
		f.Add(m.Spec.Canonical())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"X","quik":true}`))
	f.Add([]byte(`{"name":"X","clock_ghz":"fast"}`))
	f.Add([]byte(`{"name":"X","node":{"peak_flops":"1 GFX/s"}}`))
	f.Add([]byte(`{"base":"A64FX","name":"Y","efficiency":{"nope":{"compute":2}}}`))
	f.Add([]byte(`{"name":"X","fabric":{"kind":"custom","topology":"moebius"}}`))
	f.Add([]byte(`{"name":"X","anchors":{"triad_bandwidth":"-1 GB/s","peak_flops":"NaN F/s"}}`))
	f.Add([]byte(`{"name":"X","node":{"l1_bandwidth":"-1 GB/s","l2_bandwidth":"Inf TB/s"}}`))
	f.Add([]byte(`{"base":"A64FX","name":"Y","node":{"ecm_core_overlap":-0.1,"ecm_mem_overlap":2}}`))
	f.Add([]byte(`{"base":"A64FX","name":"Z","node":{"l1_bandwidth":"512 GB/s","ecm_core_overlap":0.5}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty message")
			}
			return
		}
		m, err := s.Compile()
		if err != nil {
			if err.Error() == "" {
				t.Fatal("compile rejection with empty message")
			}
			return
		}
		// A compiled spec's canonical form is a fixed point of the
		// decoder.
		canon := m.Spec.Canonical()
		s2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form of accepted spec rejected: %v", err)
		}
		if !bytes.Equal(s2.Canonical(), canon) {
			t.Fatal("canonical encoding unstable")
		}
	})
}
