package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Registry holds compiled machines by name. The Default registry is
// seeded with the five embedded Table-I machines at init; `-specs DIR`
// and inline request specs extend it at run time, possibly from
// concurrent serve handlers, so every method is lock-guarded.
//
// Registration is idempotent by digest: adding the same spec twice
// returns the one registered Machine, while a same-name spec with
// different content is an error naming both sources — machine names
// stay injective to spec digests for the lifetime of the process,
// which is what lets caches key artifacts by machine name.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*Machine
	source map[string]string
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Machine{}, source: map[string]string{}}
}

// Default is the process-wide registry, seeded with the embedded specs.
var Default = NewRegistry()

// Add registers a compiled machine, recording where it came from
// ("embedded", "file:<path>", "inline", ...).
func (r *Registry) Add(m *Machine, source string) (*Machine, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addLocked(m, source)
}

func (r *Registry) addLocked(m *Machine, source string) (*Machine, error) {
	if prev, ok := r.byName[m.Name()]; ok {
		if prev.Digest() == m.Digest() {
			return prev, nil
		}
		return nil, fmt.Errorf("spec: machine %q already registered from %s with a different spec (digest %.12s vs %.12s)",
			m.Name(), r.source[m.Name()], prev.Digest(), m.Digest())
	}
	r.byName[m.Name()] = m
	r.source[m.Name()] = source
	r.order = append(r.order, m.Name())
	return m, nil
}

// AddBytes strictly parses raw, resolves any overlay against the
// registry, compiles and registers the result.
func (r *Registry) AddBytes(raw []byte, source string) (*Machine, error) {
	s, err := Parse(raw)
	if err != nil {
		return nil, err
	}
	resolved, err := resolve(raw, s, r.Lookup, r.Names)
	if err != nil {
		return nil, err
	}
	m, err := resolved.Compile()
	if err != nil {
		return nil, err
	}
	return r.Add(m, source)
}

// AddSpec registers an already-parsed spec (resolving overlays).
func (r *Registry) AddSpec(s *Spec, source string) (*Machine, error) {
	return r.AddBytes(s.Canonical(), source)
}

// Get returns the named machine.
func (r *Registry) Get(name string) (*Machine, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.byName[name]
	return m, ok
}

// Lookup returns the named machine's resolved spec, for overlay bases.
func (r *Registry) Lookup(name string) (*Spec, bool) {
	m, ok := r.Get(name)
	if !ok {
		return nil, false
	}
	return &m.Spec, true
}

// Source reports where the named machine was registered from.
func (r *Registry) Source(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.source[name]
}

// Names lists registered machine names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Machines lists registered machines in registration order.
func (r *Registry) Machines() []*Machine {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Machine, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.byName[name])
	}
	return out
}

// LoadDir loads every *.json machine spec in dir (sorted by file name)
// into the registry. Overlays may reference machines defined by other
// files in the same directory regardless of order: loading makes
// passes until no progress, then reports the first stuck file's error.
func (r *Registry) LoadDir(dir string) ([]*Machine, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	var pending []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		pending = append(pending, filepath.Join(dir, e.Name()))
	}
	sort.Strings(pending)
	var loaded []*Machine
	for len(pending) > 0 {
		var next []string
		errs := map[string]error{}
		for _, path := range pending {
			raw, err := os.ReadFile(path)
			if err != nil {
				return loaded, fmt.Errorf("spec: %w", err)
			}
			m, err := r.AddBytes(raw, "file:"+path)
			if err != nil {
				next = append(next, path)
				errs[path] = err
				continue
			}
			loaded = append(loaded, m)
		}
		if len(next) == len(pending) {
			path := next[0]
			return loaded, fmt.Errorf("%s: %w", path, errs[path])
		}
		pending = next
	}
	return loaded, nil
}

// Package-level wrappers over the Default registry.

// Get returns the named machine from the default registry.
func Get(name string) (*Machine, bool) { return Default.Get(name) }

// Names lists the default registry's machines in registration order.
func Names() []string { return Default.Names() }

// Machines lists the default registry's machines.
func Machines() []*Machine { return Default.Machines() }

// LoadDir loads a spec directory into the default registry.
func LoadDir(dir string) ([]*Machine, error) { return Default.LoadDir(dir) }
