package spec

import (
	"math"
	"strconv"
	"strings"

	"a64fxbench/internal/units"
)

// Quantity fields in a spec are strings of the form "<value> <unit>"
// ("210 GB/s", "35.75 MiB", "300 ns"). Each kind has a closed unit set;
// a bad or missing unit is a FieldError naming the field and the valid
// units. Decimal prefixes for rates (as vendors quote them), binary
// prefixes for capacities.

type unitDef struct {
	name   string
	factor float64
}

var (
	byteRateUnits = []unitDef{
		{"B/s", 1}, {"MB/s", 1e6}, {"GB/s", 1e9}, {"TB/s", 1e12},
	}
	flopRateUnits = []unitDef{
		{"F/s", 1}, {"MF/s", 1e6}, {"GF/s", 1e9}, {"TF/s", 1e12},
	}
	sizeUnits = []unitDef{
		{"B", 1}, {"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
	}
	durationUnits = []unitDef{
		{"ns", 1}, {"us", 1e3}, {"ms", 1e6}, {"s", 1e9},
	}
)

func unitNames(defs []unitDef) string {
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.name
	}
	return strings.Join(names, " ")
}

// parseQuantity parses "<value> <unit>" against a unit table, returning
// the value scaled to the base unit.
func parseQuantity(path, s string, defs []unitDef) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) != 2 {
		return 0, fieldErrf(path, "want %q, e.g. %q (valid units: %s)",
			"<value> <unit>", "42 "+defs[len(defs)-2].name, unitNames(defs))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fieldErrf(path, "bad value %q: want a finite decimal number", fields[0])
	}
	for _, d := range defs {
		if fields[1] == d.name {
			return v * d.factor, nil
		}
	}
	return 0, fieldErrf(path, "bad unit %q (valid: %s)", fields[1], unitNames(defs))
}

// parseByteRate parses a bandwidth like "210 GB/s".
func parseByteRate(path, s string) (units.ByteRate, error) {
	v, err := parseQuantity(path, s, byteRateUnits)
	return units.ByteRate(v), err
}

// parseFlopRate parses a flop rate like "3379 GF/s".
func parseFlopRate(path, s string) (units.FlopRate, error) {
	v, err := parseQuantity(path, s, flopRateUnits)
	return units.FlopRate(v), err
}

// parseSize parses a capacity like "8 GiB", rounding to whole bytes.
func parseSize(path, s string) (units.Bytes, error) {
	v, err := parseQuantity(path, s, sizeUnits)
	if err != nil {
		return 0, err
	}
	if v > float64(math.MaxInt64) {
		return 0, fieldErrf(path, "size %q overflows", s)
	}
	return units.Bytes(math.Round(v)), nil
}

// parseDuration parses a duration like "300 ns", rounding to whole
// nanoseconds.
func parseDuration(path, s string) (units.Duration, error) {
	v, err := parseQuantity(path, s, durationUnits)
	if err != nil {
		return 0, err
	}
	if v > float64(math.MaxInt64) {
		return 0, fieldErrf(path, "duration %q overflows", s)
	}
	return units.Duration(math.Round(v)), nil
}

// formatQuantity renders a base-unit value in the largest unit that
// keeps it ≥ 1, with shortest-round-trip precision so parsing the
// string recovers value×factor exactly in the common cases.
func formatQuantity(v float64, defs []unitDef) string {
	best := defs[0]
	for _, d := range defs {
		if v >= d.factor {
			best = d
		}
	}
	return strconv.FormatFloat(v/best.factor, 'g', -1, 64) + " " + best.name
}

// FormatByteRate renders a bandwidth as a spec quantity string.
func FormatByteRate(r units.ByteRate) string {
	return formatQuantity(float64(r), byteRateUnits)
}

// FormatFlopRate renders a flop rate as a spec quantity string.
func FormatFlopRate(r units.FlopRate) string {
	return formatQuantity(float64(r), flopRateUnits)
}

// FormatSize renders a byte count as a spec quantity string.
func FormatSize(b units.Bytes) string {
	return formatQuantity(float64(b), sizeUnits)
}

// FormatDuration renders a duration as a spec quantity string.
func FormatDuration(d units.Duration) string {
	return formatQuantity(float64(d), durationUnits)
}
