package spec

import (
	"sort"
	"strings"
	"unicode"

	"a64fxbench/internal/netmodel"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/topo"
	"a64fxbench/internal/units"
)

// Machine is a compiled, validated spec: the hardware capability and
// calibration tables in the model's native types, ready to register
// with internal/arch. A Machine is immutable once built.
type Machine struct {
	// Spec is the resolved source descriptor (no overlay indirection).
	Spec Spec
	// Node is the per-node capability fed to the roofline.
	Node perfmodel.NodeCapability
	// NewFabric constructs the interconnect for a job's node count.
	NewFabric func(nodes int) *netmodel.Fabric
	// Efficiency and FastMathGain are the calibration tables keyed by
	// kernel class. Treated as immutable once published.
	Efficiency   map[perfmodel.KernelClass]perfmodel.Efficiency
	FastMathGain map[perfmodel.KernelClass]float64
	// Anchors are the declared calibration measurements.
	Anchors Anchors

	digest string
}

// Anchors are a Machine's declared microbenchmark measurements in model
// types. Latency is zero when undeclared.
type Anchors struct {
	TriadBandwidth units.ByteRate
	PeakFlops      units.FlopRate
	Latency        units.Duration
}

// Name returns the machine's identity.
func (m *Machine) Name() string { return m.Spec.Name }

// Digest returns the spec's canonical SHA-256, computed at compile time.
func (m *Machine) Digest() string { return m.digest }

// CoresPerNode reports the user-visible cores per node.
func (m *Machine) CoresPerNode() int {
	return m.Spec.CoresPerProcessor * m.Spec.ProcessorsPerNode
}

// fabricKinds is the closed set of named interconnects, in display order.
var fabricKinds = []string{"tofud", "aries", "fdr-infiniband", "edr-infiniband", "omnipath", "custom"}

// Sanity ceilings on the count fields. These exist so a hostile or
// corrupted spec cannot make Compile allocate per-domain or per-core
// structures of absurd size (the decoder must stay cheap on arbitrary
// input — the fuzz target depends on it); they sit far above any
// machine in the format's reach (Fugaku is 158,976 nodes).
const (
	maxCoresPerProcessor = 1 << 12 // 4096
	maxProcessorsPerNode = 64
	maxVectorBits        = 1 << 16
	maxMaxNodes          = 1 << 24 // 16.7M nodes
	// maxCacheBandwidth caps the per-core L1/L2 bandwidths the ECM
	// model accepts: 100 TB/s per core sits two orders of magnitude
	// above any cache port width in the format's reach.
	maxCacheBandwidth = units.ByteRate(100e12)
)

// Compile validates a resolved spec and builds the Machine. Every
// rejection is a FieldError naming the dotted field path; checks run in
// field order so the first offending field is deterministic.
func (s *Spec) Compile() (*Machine, error) {
	if err := validName(s.Name); err != nil {
		return nil, err
	}
	if s.Base != "" {
		return nil, fieldErrf("base", "unresolved overlay of %q: resolve against a registry before compiling", s.Base)
	}
	if s.ClockGHz <= 0 {
		return nil, fieldErrf("clock_ghz", "required: all-core clock in GHz, > 0")
	}
	if s.CoresPerProcessor < 1 || s.CoresPerProcessor > maxCoresPerProcessor {
		return nil, fieldErrf("cores_per_processor", "required: core count in 1..%d", maxCoresPerProcessor)
	}
	if s.ProcessorsPerNode < 1 || s.ProcessorsPerNode > maxProcessorsPerNode {
		return nil, fieldErrf("processors_per_node", "required: processor count in 1..%d", maxProcessorsPerNode)
	}
	if s.VectorBits < 1 || s.VectorBits > maxVectorBits {
		return nil, fieldErrf("vector_bits", "required: SIMD width in bits, 1..%d", maxVectorBits)
	}
	if s.MaxNodes < 1 || s.MaxNodes > maxMaxNodes {
		return nil, fieldErrf("max_nodes", "required: node count in 1..%d", maxMaxNodes)
	}

	m := &Machine{Spec: *s}
	if m.Spec.ThreadsPerCore == "" {
		m.Spec.ThreadsPerCore = "1"
	}
	node, err := s.compileNode()
	if err != nil {
		return nil, err
	}
	m.Node = node
	if m.NewFabric, err = s.compileFabric(); err != nil {
		return nil, err
	}
	if m.Efficiency, err = s.compileEfficiency(); err != nil {
		return nil, err
	}
	if m.FastMathGain, err = s.compileFastMath(); err != nil {
		return nil, err
	}
	if m.Anchors, err = s.compileAnchors(); err != nil {
		return nil, err
	}
	m.digest = m.Spec.Digest()
	return m, nil
}

func validName(name string) error {
	if name == "" {
		return fieldErrf("name", "required: the machine's identity")
	}
	if len(name) > 64 {
		return fieldErrf("name", "too long (%d bytes, max 64)", len(name))
	}
	if strings.TrimSpace(name) != name {
		return fieldErrf("name", "must not have leading or trailing whitespace")
	}
	for _, r := range name {
		if unicode.IsControl(r) {
			return fieldErrf("name", "must not contain control characters")
		}
	}
	return nil
}

func (s *Spec) compileNode() (perfmodel.NodeCapability, error) {
	var zero perfmodel.NodeCapability
	n := s.Node
	if n == nil {
		return zero, fieldErrf("node", "required: per-node capability section")
	}
	cores := s.CoresPerProcessor * s.ProcessorsPerNode
	peak, err := parseFlopRate("node.peak_flops", n.PeakFlops)
	if err != nil {
		return zero, err
	}
	if peak <= 0 {
		return zero, fieldErrf("node.peak_flops", "must be > 0")
	}
	scalar := units.FlopRate(2 * s.ClockGHz * 1e9)
	if n.ScalarFlopsPerCore != "" {
		if scalar, err = parseFlopRate("node.scalar_flops_per_core", n.ScalarFlopsPerCore); err != nil {
			return zero, err
		}
	}
	if n.Domains < 1 {
		return zero, fieldErrf("node.domains", "required: memory-domain count ≥ 1")
	}
	if cores%n.Domains != 0 {
		return zero, fieldErrf("node.domains", "%d cores/node do not divide evenly into %d domains", cores, n.Domains)
	}
	domBW, err := parseByteRate("node.domain_bandwidth", n.DomainBandwidth)
	if err != nil {
		return zero, err
	}
	coreBW, err := parseByteRate("node.per_core_bandwidth", n.PerCoreBandwidth)
	if err != nil {
		return zero, err
	}
	capacity, err := parseSize("node.domain_capacity", n.DomainCapacity)
	if err != nil {
		return zero, err
	}
	l2, err := parseSize("node.l2_per_domain", n.L2PerDomain)
	if err != nil {
		return zero, err
	}
	overhead, err := parseDuration("node.per_call_overhead", n.PerCallOverhead)
	if err != nil {
		return zero, err
	}
	if domBW <= 0 || coreBW <= 0 {
		return zero, fieldErrf("node.domain_bandwidth", "bandwidths must be > 0")
	}
	// The ECM fields are optional: zero values select the model's
	// defaults (port-width cache bandwidths, fully additive overlap).
	var l1bw, l2bw units.ByteRate
	if n.L1Bandwidth != "" {
		if l1bw, err = parseByteRate("node.l1_bandwidth", n.L1Bandwidth); err != nil {
			return zero, err
		}
		if l1bw <= 0 || l1bw > maxCacheBandwidth {
			return zero, fieldErrf("node.l1_bandwidth", "per-core cache bandwidth must be in (0, %s]", FormatByteRate(maxCacheBandwidth))
		}
	}
	if n.L2Bandwidth != "" {
		if l2bw, err = parseByteRate("node.l2_bandwidth", n.L2Bandwidth); err != nil {
			return zero, err
		}
		if l2bw <= 0 || l2bw > maxCacheBandwidth {
			return zero, fieldErrf("node.l2_bandwidth", "per-core cache bandwidth must be in (0, %s]", FormatByteRate(maxCacheBandwidth))
		}
	}
	if !(n.ECMCoreOverlap >= 0 && n.ECMCoreOverlap <= 1) {
		return zero, fieldErrf("node.ecm_core_overlap", "overlap fraction must be in [0, 1], got %g", n.ECMCoreOverlap)
	}
	if !(n.ECMMemOverlap >= 0 && n.ECMMemOverlap <= 1) {
		return zero, fieldErrf("node.ecm_mem_overlap", "overlap fraction must be in [0, 1], got %g", n.ECMMemOverlap)
	}
	if capacity <= 0 || l2 <= 0 {
		return zero, fieldErrf("node.domain_capacity", "capacities must be > 0")
	}
	if n.TurboBoost1 != 0 && n.TurboBoost1 < 1 {
		return zero, fieldErrf("node.turbo_boost1", "must be 0 (no turbo) or ≥ 1, got %g", n.TurboBoost1)
	}
	if n.TurboFlatCores < 0 || n.TurboFlatCores > cores {
		return zero, fieldErrf("node.turbo_flat_cores", "must be in 0..%d, got %d", cores, n.TurboFlatCores)
	}
	domains := make([]perfmodel.MemoryDomain, n.Domains)
	for i := range domains {
		domains[i] = perfmodel.MemoryDomain{
			Cores:            cores / n.Domains,
			PeakBandwidth:    domBW,
			PerCoreBandwidth: coreBW,
			Capacity:         capacity,
		}
	}
	return perfmodel.NodeCapability{
		Name:               s.Name,
		Cores:              cores,
		PeakFlops:          peak,
		ScalarFlopsPerCore: scalar,
		Domains:            domains,
		L2PerDomain:        l2,
		PerCallOverhead:    overhead,
		TurboBoost1:        n.TurboBoost1,
		TurboFlatCores:     n.TurboFlatCores,
		L1BandwidthPerCore: l1bw,
		L2BandwidthPerCore: l2bw,
		ECMCoreOverlap:     n.ECMCoreOverlap,
		ECMMemOverlap:      n.ECMMemOverlap,
	}, nil
}

func (s *Spec) compileFabric() (func(int) *netmodel.Fabric, error) {
	f := s.Fabric
	if f == nil {
		return nil, fieldErrf("fabric", "required: interconnect section (kind one of: %s)", strings.Join(fabricKinds, " "))
	}
	if f.Kind != "custom" {
		if f.Topology != "" || f.NodesPerLeaf != 0 || f.Uplinks != 0 || f.Name != "" ||
			f.SoftwareOverhead != "" || f.HopLatency != "" || f.LinkBandwidth != "" || f.InjectionBandwidth != "" {
			return nil, fieldErrf("fabric.kind", "parameters beyond kind are only valid with kind %q", "custom")
		}
	}
	switch f.Kind {
	case "tofud":
		return netmodel.NewTofuD, nil
	case "aries":
		return func(int) *netmodel.Fabric { return netmodel.NewAries() }, nil
	case "fdr-infiniband":
		return func(int) *netmodel.Fabric { return netmodel.NewFDRInfiniBand() }, nil
	case "edr-infiniband":
		return func(int) *netmodel.Fabric { return netmodel.NewEDRInfiniBand() }, nil
	case "omnipath":
		return func(int) *netmodel.Fabric { return netmodel.NewOmniPath() }, nil
	case "custom":
		return s.compileCustomFabric()
	case "":
		return nil, fieldErrf("fabric.kind", "required (valid: %s)", strings.Join(fabricKinds, " "))
	default:
		return nil, fieldErrf("fabric.kind", "unknown kind %q (valid: %s)", f.Kind, strings.Join(fabricKinds, " "))
	}
}

func (s *Spec) compileCustomFabric() (func(int) *netmodel.Fabric, error) {
	f := s.Fabric
	name := f.Name
	if name == "" {
		name = "custom"
	}
	sw, err := parseDuration("fabric.software_overhead", f.SoftwareOverhead)
	if err != nil {
		return nil, err
	}
	hop, err := parseDuration("fabric.hop_latency", f.HopLatency)
	if err != nil {
		return nil, err
	}
	link, err := parseByteRate("fabric.link_bandwidth", f.LinkBandwidth)
	if err != nil {
		return nil, err
	}
	inj, err := parseByteRate("fabric.injection_bandwidth", f.InjectionBandwidth)
	if err != nil {
		return nil, err
	}
	if link <= 0 || inj <= 0 {
		return nil, fieldErrf("fabric.link_bandwidth", "bandwidths must be > 0")
	}
	price := func(t topo.Topology) *netmodel.Fabric {
		return &netmodel.Fabric{
			Name:               name,
			Topo:               t,
			SoftwareOverhead:   sw,
			HopLatency:         hop,
			LinkBandwidth:      link,
			InjectionBandwidth: inj,
		}
	}
	switch f.Topology {
	case "fat-tree":
		if f.NodesPerLeaf < 2 {
			return nil, fieldErrf("fabric.nodes_per_leaf", "fat-tree needs ≥ 2 nodes per leaf switch, got %d", f.NodesPerLeaf)
		}
		if f.Uplinks < 0 {
			return nil, fieldErrf("fabric.uplinks", "must be ≥ 0 (0 = non-blocking), got %d", f.Uplinks)
		}
		ft := &topo.FatTree{NodesPerLeaf: f.NodesPerLeaf, Uplinks: f.Uplinks, Label: name + " fat-tree"}
		return func(int) *netmodel.Fabric { return price(ft) }, nil
	case "torus":
		// Sized per job like TofuD: a 5-dim torus grown to cover the
		// node count.
		if f.NodesPerLeaf != 0 || f.Uplinks != 0 {
			return nil, fieldErrf("fabric.nodes_per_leaf", "only valid with topology %q", "fat-tree")
		}
		return func(nodes int) *netmodel.Fabric { return price(topo.NewTofuD(nodes)) }, nil
	case "":
		return nil, fieldErrf("fabric.topology", "required for a custom fabric (valid: fat-tree torus)")
	default:
		return nil, fieldErrf("fabric.topology", "unknown topology %q (valid: fat-tree torus)", f.Topology)
	}
}

func (s *Spec) compileEfficiency() (map[perfmodel.KernelClass]perfmodel.Efficiency, error) {
	valid := strings.Join(perfmodel.KernelClassNames(), " ")
	if len(s.Efficiency) == 0 {
		return nil, fieldErrf("efficiency", "required: per-kernel-class efficiency table (valid classes: %s)", valid)
	}
	out := make(map[perfmodel.KernelClass]perfmodel.Efficiency, len(s.Efficiency))
	for _, name := range sortedKeys(s.Efficiency) {
		class, ok := perfmodel.ParseKernelClass(name)
		if !ok {
			return nil, fieldErrf("efficiency."+name, "unknown kernel class (valid: %s)", valid)
		}
		e := s.Efficiency[name]
		if !(perfmodel.Efficiency{Compute: e.Compute, Memory: e.Memory}).Valid() {
			return nil, fieldErrf("efficiency."+name, "compute and memory must be in (0, 1], got {%g %g}", e.Compute, e.Memory)
		}
		out[class] = perfmodel.Efficiency{Compute: e.Compute, Memory: e.Memory}
	}
	return out, nil
}

func (s *Spec) compileFastMath() (map[perfmodel.KernelClass]float64, error) {
	valid := strings.Join(perfmodel.KernelClassNames(), " ")
	out := make(map[perfmodel.KernelClass]float64, len(s.FastMathGain))
	for _, name := range sortedKeys(s.FastMathGain) {
		class, ok := perfmodel.ParseKernelClass(name)
		if !ok {
			return nil, fieldErrf("fast_math_gain."+name, "unknown kernel class (valid: %s)", valid)
		}
		g := s.FastMathGain[name]
		if g <= 0 {
			return nil, fieldErrf("fast_math_gain."+name, "gain must be > 0, got %g", g)
		}
		out[class] = g
	}
	return out, nil
}

func (s *Spec) compileAnchors() (Anchors, error) {
	var zero Anchors
	a := s.Anchors
	if a == nil {
		return zero, fieldErrf("anchors", "required: declared calibration measurements (triad_bandwidth, peak_flops)")
	}
	triad, err := parseByteRate("anchors.triad_bandwidth", a.TriadBandwidth)
	if err != nil {
		return zero, err
	}
	peak, err := parseFlopRate("anchors.peak_flops", a.PeakFlops)
	if err != nil {
		return zero, err
	}
	if triad <= 0 || peak <= 0 {
		return zero, fieldErrf("anchors.triad_bandwidth", "anchors must be > 0")
	}
	out := Anchors{TriadBandwidth: triad, PeakFlops: peak}
	if a.Latency != "" {
		if out.Latency, err = parseDuration("anchors.latency", a.Latency); err != nil {
			return zero, err
		}
	}
	return out, nil
}

// sortedKeys returns a map's keys sorted, for deterministic first-error
// selection and iteration.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
