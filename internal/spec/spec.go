// Package spec defines the declarative machine descriptor format: a JSON
// document that carries everything `internal/arch` used to hard-code for
// the five Table-I systems — hardware capability (clocks, cores, memory
// domains, interconnect), the calibrated per-kernel efficiency tables,
// and the anchor measurements the calibration protocol fits against.
//
// The format follows the same strict-decoding discipline as
// core.DecodeRequest: unknown fields, bad units, and missing anchors are
// errors that name the offending field path and the valid set. Machines
// are data; the roofline/network models that consume them stay code
// (DESIGN.md §8).
//
// A spec file may instead be an overlay: `"base": "A64FX"` plus only the
// fields that differ (RFC 7386 merge-patch semantics), which is how
// what-if machines — "A64FX at 2.0 GHz", "double the CMG bandwidth" —
// are declared without repeating the whole descriptor.
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
)

// Spec is the JSON shape of a machine descriptor. Quantity fields are
// human-readable unit strings ("210 GB/s", "8 GiB", "300 ns"); Compile
// parses and validates them into model types.
type Spec struct {
	// Name is the machine's identity; it becomes the arch.System ID.
	Name string `json:"name"`
	// Base, when non-empty, marks this spec as an overlay of another
	// machine: only the fields present here override the base.
	Base string `json:"base,omitempty"`
	// Description is the one-line platform summary.
	Description string `json:"description,omitempty"`
	// Processor and Microarch are Table-I metadata.
	Processor string `json:"processor,omitempty"`
	Microarch string `json:"microarch,omitempty"`
	// ClockGHz is the all-core processor clock in GHz.
	ClockGHz float64 `json:"clock_ghz,omitempty"`
	// CoresPerProcessor and ProcessorsPerNode multiply to cores/node.
	CoresPerProcessor int `json:"cores_per_processor,omitempty"`
	ProcessorsPerNode int `json:"processors_per_node,omitempty"`
	// ThreadsPerCore is the SMT description (informational).
	ThreadsPerCore string `json:"threads_per_core,omitempty"`
	// VectorBits is the SIMD width.
	VectorBits int `json:"vector_bits,omitempty"`
	// MaxNodes is the machine (or benchmark-accessible) node count.
	MaxNodes int `json:"max_nodes,omitempty"`
	// Node describes one node's capability.
	Node *NodeSpec `json:"node,omitempty"`
	// Fabric describes the interconnect.
	Fabric *FabricSpec `json:"fabric,omitempty"`
	// Efficiency maps kernel-class name → calibrated efficiency; the
	// valid key set is perfmodel.KernelClassNames.
	Efficiency map[string]Efficiency `json:"efficiency,omitempty"`
	// FastMathGain maps kernel-class name → multiplicative compute
	// gain under the aggressive compiler mode.
	FastMathGain map[string]float64 `json:"fast_math_gain,omitempty"`
	// Anchors are the declared measurements calibration fits against.
	Anchors *AnchorsSpec `json:"anchors,omitempty"`
}

// NodeSpec is the per-node capability section of a Spec.
type NodeSpec struct {
	// PeakFlops is the maximum node DP flop rate, e.g. "3379 GF/s".
	PeakFlops string `json:"peak_flops,omitempty"`
	// ScalarFlopsPerCore is the unvectorised per-core rate; when
	// omitted it defaults to 2 flops/cycle × clock.
	ScalarFlopsPerCore string `json:"scalar_flops_per_core,omitempty"`
	// Domains is the number of identical memory domains (CMGs on the
	// A64FX, sockets elsewhere); cores/node must divide evenly.
	Domains int `json:"domains,omitempty"`
	// DomainBandwidth is the saturated STREAM-like bandwidth of one
	// domain, e.g. "210 GB/s".
	DomainBandwidth string `json:"domain_bandwidth,omitempty"`
	// PerCoreBandwidth is the bandwidth one core draws alone.
	PerCoreBandwidth string `json:"per_core_bandwidth,omitempty"`
	// DomainCapacity is the memory attached to one domain, e.g. "8 GiB".
	DomainCapacity string `json:"domain_capacity,omitempty"`
	// L2PerDomain is the last-level cache per domain.
	L2PerDomain string `json:"l2_per_domain,omitempty"`
	// PerCallOverhead is the fixed cost per kernel invocation.
	PerCallOverhead string `json:"per_call_overhead,omitempty"`
	// L1Bandwidth and L2Bandwidth are the per-core cache bandwidths the
	// ECM model prices register↔L1 and L1↔L2 transfers at, e.g.
	// "140.8 GB/s". When omitted they default to 64 and 32 bytes/cycle
	// per core respectively (derived from the scalar flop rate). The
	// roofline model ignores them.
	L1Bandwidth string `json:"l1_bandwidth,omitempty"`
	L2Bandwidth string `json:"l2_bandwidth,omitempty"`
	// ECMCoreOverlap and ECMMemOverlap are the ECM composition knobs in
	// [0, 1]: the fraction of in-core execution that overlaps data
	// transfers (0 = the A64FX serial rule, 1 = the classic x86 rule)
	// and the fraction of the memory transfer phase hidden under the
	// upstream core+L1+L2 phases. Both default to 0 (fully additive).
	ECMCoreOverlap float64 `json:"ecm_core_overlap,omitempty"`
	ECMMemOverlap  float64 `json:"ecm_mem_overlap,omitempty"`
	// TurboBoost1 is the one-active-core clock boost factor (0 or ≥ 1;
	// 0 means no turbo, the A64FX case).
	TurboBoost1 float64 `json:"turbo_boost1,omitempty"`
	// TurboFlatCores is the active-core count up to which the full
	// boost holds.
	TurboFlatCores int `json:"turbo_flat_cores,omitempty"`
}

// FabricSpec selects and parameterises the interconnect model.
type FabricSpec struct {
	// Kind is one of the named Table-I fabrics — "tofud", "aries",
	// "fdr-infiniband", "edr-infiniband", "omnipath" — or "custom".
	Kind string `json:"kind"`
	// Name labels a custom fabric (diagnostics only).
	Name string `json:"name,omitempty"`
	// Topology ("fat-tree" or "torus"), NodesPerLeaf and Uplinks shape
	// a custom fabric; ignored for named kinds.
	Topology     string `json:"topology,omitempty"`
	NodesPerLeaf int    `json:"nodes_per_leaf,omitempty"`
	Uplinks      int    `json:"uplinks,omitempty"`
	// Pricing parameters of a custom fabric.
	SoftwareOverhead   string `json:"software_overhead,omitempty"`
	HopLatency         string `json:"hop_latency,omitempty"`
	LinkBandwidth      string `json:"link_bandwidth,omitempty"`
	InjectionBandwidth string `json:"injection_bandwidth,omitempty"`
}

// Efficiency is one kernel class's calibrated efficiency pair.
type Efficiency struct {
	// Compute is the fraction of vector peak achieved when compute
	// bound, in (0, 1].
	Compute float64 `json:"compute"`
	// Memory is the fraction of STREAM bandwidth achieved when memory
	// bound, in (0, 1].
	Memory float64 `json:"memory"`
}

// AnchorsSpec declares the measured (or model-committed) microbenchmark
// results that the calibration protocol fits the efficiency table
// against: full-node STREAM triad, the peak-flops kernel, and optionally
// the 8-byte inter-node one-way latency.
type AnchorsSpec struct {
	TriadBandwidth string `json:"triad_bandwidth"`
	PeakFlops      string `json:"peak_flops"`
	Latency        string `json:"latency,omitempty"`
}

// FieldError reports a rejected spec naming the offending JSON field
// path (dotted, e.g. "node.domain_bandwidth") and, where a closed set
// exists, the valid values.
type FieldError struct {
	// Path is the dotted JSON field path; empty for document-level
	// problems (e.g. the top level not being an object).
	Path string
	// Msg describes the problem, including the valid set when known.
	Msg string
}

func (e *FieldError) Error() string {
	if e.Path == "" {
		return "spec: " + e.Msg
	}
	return "spec: field " + e.Path + ": " + e.Msg
}

// fieldErrf builds a FieldError at path.
func fieldErrf(path, format string, args ...any) *FieldError {
	return &FieldError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// Parse strictly decodes one machine spec from JSON bytes. Unknown
// fields anywhere in the document are errors naming the field path and
// the valid field set; type mismatches name the field that failed.
func Parse(data []byte) (*Spec, error) {
	var probe any
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("spec: invalid JSON: %w", err)
	}
	if _, ok := probe.(map[string]any); !ok {
		return nil, &FieldError{Msg: "top level must be a JSON object"}
	}
	if err := checkUnknownFields("", data, reflect.TypeOf(Spec{})); err != nil {
		return nil, err
	}
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		var te *json.UnmarshalTypeError
		if errors.As(err, &te) && te.Field != "" {
			return nil, fieldErrf(te.Field, "cannot decode JSON %s into %s", te.Value, te.Type)
		}
		return nil, fmt.Errorf("spec: %w", err)
	}
	return &s, nil
}

// Decode reads one machine spec from r with Parse's strictness.
func Decode(r io.Reader) (*Spec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// checkUnknownFields walks raw JSON guided by the Go type it should
// decode into and rejects the first object key (in sorted order, for
// deterministic messages) that no struct field claims. Type mismatches
// are deliberately ignored here — the real decode reports those with
// its own field path.
func checkUnknownFields(path string, raw json.RawMessage, t reflect.Type) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil // null, or a type mismatch the decoder will name
		}
		fields := map[string]reflect.Type{}
		var valid []string
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if name == "" || name == "-" {
				continue
			}
			fields[name] = f.Type
			valid = append(valid, name)
		}
		sort.Strings(valid)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ft, ok := fields[k]
			if !ok {
				return fieldErrf(joinPath(path, k), "unknown field (valid: %s)", strings.Join(valid, " "))
			}
			if err := checkUnknownFields(joinPath(path, k), m[k], ft); err != nil {
				return err
			}
		}
	case reflect.Map:
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := checkUnknownFields(joinPath(path, k), m[k], t.Elem()); err != nil {
				return err
			}
		}
	}
	return nil
}

func joinPath(base, field string) string {
	if base == "" {
		return field
	}
	return base + "." + field
}

// Canonical returns the spec's canonical JSON encoding: compact, struct
// field order, map keys sorted — a deterministic byte form suitable for
// hashing and equality.
func (s *Spec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec holds only strings, numbers and maps of them; the
		// encoder cannot fail on it.
		panic("spec: canonical encoding failed: " + err.Error())
	}
	return b
}

// Digest returns the hex SHA-256 of the canonical encoding. Two specs
// share a digest iff they describe the same machine field-for-field.
func (s *Spec) Digest() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}
