package spec

import (
	"embed"
	"sync"
)

// The five Table-I machines ship as embedded spec files — the same
// format users load with -specs DIR. internal/arch seeds its registry
// from these; a neutrality test pins them bit-for-bit against the
// paper's values. Regenerate anchors with `go run ./internal/spec/gen`.
//
//go:embed specs/*.json
var specFS embed.FS

// embeddedFiles lists the specs in the paper's Table-I column order.
var embeddedFiles = []string{
	"specs/a64fx.json",
	"specs/archer.json",
	"specs/cirrus.json",
	"specs/ngio.json",
	"specs/fulhame.json",
}

var (
	embeddedOnce sync.Once
	embeddedMs   []*Machine
)

// Embedded returns the five Table-I machines, compiling them once. It
// panics on a malformed embedded spec: that is a build defect, caught
// by the package tests, never a runtime condition.
func Embedded() []*Machine {
	embeddedOnce.Do(func() {
		for _, path := range embeddedFiles {
			raw, err := specFS.ReadFile(path)
			if err != nil {
				panic("spec: embedded " + path + ": " + err.Error())
			}
			m, err := Default.AddBytes(raw, "embedded")
			if err != nil {
				panic("spec: embedded " + path + ": " + err.Error())
			}
			embeddedMs = append(embeddedMs, m)
		}
	})
	return append([]*Machine(nil), embeddedMs...)
}

func init() { Embedded() }
