// Command gen regenerates the anchor measurements in the embedded
// machine specs (internal/spec/specs/*.json): it runs the calibration
// microbenchmarks — full-node STREAM triad, the peak-flops kernel, the
// 8-byte ping-pong — against the committed model and writes the results
// back as each spec's anchors, so `machines calibrate` on a stock
// machine refits the efficiency table to scales of exactly 1.
//
// Run it after any deliberate change to the Table-I values or the cost
// model:
//
//	go run ./internal/spec/gen
//
// and commit the rewritten spec files (the diff is the review artifact).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/spec"
	"a64fxbench/internal/units"
)

func main() {
	dir := "internal/spec/specs"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if err := regen(path); err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
}

func regen(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := spec.Parse(raw)
	if err != nil {
		return err
	}
	sys, err := arch.Get(arch.ID(s.Name))
	if err != nil {
		return err
	}
	triad, err := micro.StreamTriad(sys, []int{sys.CoresPerNode()})
	if err != nil {
		return err
	}
	peak, err := micro.PeakFlops(sys)
	if err != nil {
		return err
	}
	pp, err := micro.PingPong(sys, []units.Bytes{8})
	if err != nil {
		return err
	}
	s.Anchors = &spec.AnchorsSpec{
		TriadBandwidth: spec.FormatByteRate(triad[0].Bandwidth),
		PeakFlops:      spec.FormatFlopRate(peak),
		Latency:        spec.FormatDuration(pp[0].HalfRoundTrip),
	}
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%-28s triad %-22s peak %-22s latency %s\n",
		path, s.Anchors.TriadBandwidth, s.Anchors.PeakFlops, s.Anchors.Latency)
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gen:", err)
	os.Exit(1)
}
