package spec

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEmbeddedRoundTrip: every embedded spec survives a canonical
// encode → strict parse → compile cycle with an identical digest, so
// the canonical form really is a fixed point of the decoder.
func TestEmbeddedRoundTrip(t *testing.T) {
	t.Parallel()
	for _, m := range Embedded() {
		raw := m.Spec.Canonical()
		s, err := Parse(raw)
		if err != nil {
			t.Fatalf("%s: canonical form does not re-parse: %v", m.Name(), err)
		}
		if !bytes.Equal(s.Canonical(), raw) {
			t.Errorf("%s: canonical encoding is not a fixed point", m.Name())
		}
		m2, err := s.Compile()
		if err != nil {
			t.Fatalf("%s: canonical form does not re-compile: %v", m.Name(), err)
		}
		if m2.Digest() != m.Digest() {
			t.Errorf("%s: digest drifted across round trip: %s vs %s", m.Name(), m2.Digest(), m.Digest())
		}
	}
}

// TestFieldErrors pins the error contract: rejections name the dotted
// field path and, where a closed set exists, the valid values.
func TestFieldErrors(t *testing.T) {
	t.Parallel()
	base, _ := Get("A64FX")
	canon := string(base.Spec.Canonical())
	cases := []struct {
		name string
		raw  string
		want []string // substrings of the error
	}{
		{"not json", "{", []string{"invalid JSON"}},
		{"not an object", "[1,2]", []string{"top level must be a JSON object"}},
		{"unknown top-level field", `{"name":"X","quik":true}`,
			[]string{"field quik", "unknown field", "valid:", "clock_ghz"}},
		{"unknown nested field", `{"name":"X","node":{"bandwidht":"1 GB/s"}}`,
			[]string{"field node.bandwidht", "unknown field", "domain_bandwidth"}},
		{"type mismatch", `{"name":"X","clock_ghz":"fast"}`,
			[]string{"field clock_ghz", "cannot decode JSON string"}},
		{"bad unit", strings.Replace(canon, `"210 GB/s"`, `"210 GBps"`, 1),
			[]string{"field node.domain_bandwidth", `bad unit "GBps"`, "B/s MB/s GB/s TB/s"}},
		{"bad quantity shape", strings.Replace(canon, `"210 GB/s"`, `"fast"`, 1),
			[]string{"field node.domain_bandwidth", `want "<value> <unit>"`}},
		{"missing anchors", strings.Replace(canon,
			`"anchors":{"triad_bandwidth":"548.3407379969277 GB/s","peak_flops":"1.8922153904048358 TF/s","latency":"1.021 us"}`,
			`"anchors":{"triad_bandwidth":"548 GB/s","peak_flops":""}`, 1),
			[]string{"anchors.peak_flops"}},
		{"bad efficiency key", strings.Replace(canon, `"vecop"`, `"vectorop"`, 1),
			[]string{"efficiency.vectorop", "vecop"}},
		{"bad fabric kind", strings.Replace(canon, `"kind":"tofud"`, `"kind":"ethernet"`, 1),
			[]string{"fabric.kind", "tofud", "custom"}},
		{"efficiency out of range", strings.Replace(canon, `{"compute":0.05,"memory":0.653}`, `{"compute":1.7,"memory":0.653}`, 1),
			[]string{"efficiency.vecop"}},
		{"negative l1 bandwidth", strings.Replace(canon, `"l1_bandwidth":"140.8 GB/s"`, `"l1_bandwidth":"-140.8 GB/s"`, 1),
			[]string{"field node.l1_bandwidth", "cache bandwidth"}},
		{"absurd l2 bandwidth", strings.Replace(canon, `"l2_bandwidth":"70.4 GB/s"`, `"l2_bandwidth":"9000 TB/s"`, 1),
			[]string{"field node.l2_bandwidth", "cache bandwidth"}},
		{"overlap out of range", strings.Replace(canon, `"ecm_mem_overlap":0.4`, `"ecm_mem_overlap":1.5`, 1),
			[]string{"field node.ecm_mem_overlap", "overlap fraction must be in [0, 1]"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			s, err := Parse([]byte(tc.raw))
			if err == nil {
				_, err = s.Compile()
			}
			if err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q missing %q", err, want)
				}
			}
		})
	}
}

// TestFieldErrorType: decoder rejections are *FieldError with the path
// machine-readable, not just prose.
func TestFieldErrorType(t *testing.T) {
	t.Parallel()
	_, err := Parse([]byte(`{"name":"X","node":{"bandwidht":1}}`))
	var fe *FieldError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FieldError, got %T: %v", err, err)
	}
	if fe.Path != "node.bandwidht" {
		t.Errorf("Path = %q, want node.bandwidht", fe.Path)
	}
}

// TestOverlay: merge-patch semantics against a registered base.
func TestOverlay(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	for _, m := range Embedded() {
		if _, err := reg.Add(m, "embedded"); err != nil {
			t.Fatal(err)
		}
	}
	m, err := reg.AddBytes([]byte(`{
		"base": "A64FX",
		"name": "A64FX-2.0GHz",
		"description": "what-if: downclocked",
		"clock_ghz": 2.0
	}`), "test")
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec.ClockGHz != 2.0 {
		t.Errorf("overlay clock = %v, want 2.0", m.Spec.ClockGHz)
	}
	base, _ := reg.Get("A64FX")
	if m.Spec.Node.DomainBandwidth != base.Spec.Node.DomainBandwidth {
		t.Error("unpatched field did not inherit from the base")
	}
	if m.Spec.Base != "" {
		t.Error("resolved overlay must not retain its base marker")
	}

	if _, err := reg.AddBytes([]byte(`{"base":"NoSuch","name":"X"}`), "test"); err == nil ||
		!strings.Contains(err.Error(), "A64FX") {
		t.Errorf("unknown base should list valid machines, got %v", err)
	}
	if _, err := reg.AddBytes([]byte(`{"base":"A64FX","clock_ghz":2.0}`), "test"); err == nil ||
		!strings.Contains(err.Error(), "new name") {
		t.Errorf("overlay keeping the base name must be rejected, got %v", err)
	}
}

// TestRegistryIdempotence: same spec registers once; a same-name spec
// with different content is an error naming both sources.
func TestRegistryIdempotence(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	a := Embedded()[0]
	m1, err := reg.Add(a, "one")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := reg.Add(a, "two")
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("re-adding the same machine must return the registered instance")
	}
	s := a.Spec // copy
	s.Description = "different"
	conflicting, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(conflicting, "three"); err == nil ||
		!strings.Contains(err.Error(), "different spec") {
		t.Errorf("conflicting same-name spec should error, got %v", err)
	}
}

// TestLoadDir: files load in sorted order, and an overlay may reference
// a machine defined by a file that sorts after it.
func TestLoadDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	// "aa" is an overlay of the machine defined in "zz".
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	zz, _ := Get("A64FX")
	s := zz.Spec
	s.Name = "LoadDirBase"
	write("zz.json", string(s.Canonical()))
	write("aa.json", `{"base":"LoadDirBase","name":"LoadDirOverlay","clock_ghz":1.8}`)
	write("ignore.txt", "not a spec")

	reg := NewRegistry()
	loaded, err := reg.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d machines, want 2", len(loaded))
	}
	if m, ok := reg.Get("LoadDirOverlay"); !ok || m.Spec.ClockGHz != 1.8 {
		t.Error("cross-file overlay did not resolve")
	}

	write("bad.json", `{"name":"Bad","clock_ghz":"fast"}`)
	if _, err := NewRegistry().LoadDir(dir); err == nil ||
		!strings.Contains(err.Error(), "clock_ghz") {
		t.Errorf("stuck file's field error should surface, got %v", err)
	}
}

// TestQuantityFormatRoundTrip: the Format helpers emit strings the
// parser maps back to the exact same value (the gen tool depends on
// this for anchor regeneration).
func TestQuantityFormatRoundTrip(t *testing.T) {
	t.Parallel()
	for _, m := range Embedded() {
		s := m.Spec
		s.Name = "RT-" + s.Name
		a := *s.Anchors
		a.TriadBandwidth = FormatByteRate(m.Anchors.TriadBandwidth)
		a.PeakFlops = FormatFlopRate(m.Anchors.PeakFlops)
		a.Latency = FormatDuration(m.Anchors.Latency)
		s.Anchors = &a
		m2, err := s.Compile()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if m2.Anchors.TriadBandwidth != m.Anchors.TriadBandwidth ||
			m2.Anchors.PeakFlops != m.Anchors.PeakFlops ||
			m2.Anchors.Latency != m.Anchors.Latency {
			t.Errorf("%s: anchors did not round-trip: %+v vs %+v", s.Name, m2.Anchors, m.Anchors)
		}
	}
}
