package core

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	t.Parallel()
	// Every table and figure of the paper's evaluation is registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "fig1", "fig2",
		"table6", "fig3", "table7", "table8", "fig4", "table9", "fig5", "table10",
	}
	all := List()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("List()[%d] = %s, want %s", i, all[i].ID, id)
		}
		e, err := Get(id)
		if err != nil || e.ID != id {
			t.Errorf("Get(%s): %v", id, err)
		}
		if e.Title == "" || e.Description == "" || e.Run == nil {
			t.Errorf("%s incomplete: %+v", id, e)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	t.Parallel()
	if _, err := Get("table99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	t.Parallel()
	if _, err := Get("Table3"); err != nil {
		t.Errorf("Get should be case-insensitive: %v", err)
	}
}

// TestRegisterNormalizesCase pins the registration side of the
// case-insensitivity contract: a mixed-case ID is stored under its
// lowercase key, so Get — which lowercases lookups — can reach it under
// any spelling. (Before normalization the two sides disagreed and such
// an experiment was unreachable.) Deliberately not parallel: it
// mutates the shared registry and cleans up before the parallel tests
// resume.
func TestRegisterNormalizesCase(t *testing.T) {
	e := register(&Experiment{
		ID: "Test-MixedCase", Title: "t", Kind: Table, Description: "d",
		Run: func(Options) (*Artifact, error) { return &Artifact{}, nil },
	})
	defer delete(registry, "test-mixedcase")
	if _, dup := registry["Test-MixedCase"]; dup {
		t.Error("registry key kept its original case")
	}
	for _, spelling := range []string{"Test-MixedCase", "test-mixedcase", "TEST-MIXEDCASE"} {
		got, err := Get(spelling)
		if err != nil {
			t.Errorf("Get(%q): %v", spelling, err)
			continue
		}
		if got != e {
			t.Errorf("Get(%q) returned a different experiment", spelling)
		}
	}
	// The ID itself keeps its original case for display.
	if e.ID != "Test-MixedCase" {
		t.Errorf("registration rewrote the ID to %q", e.ID)
	}
}

func TestCellFormatting(t *testing.T) {
	t.Parallel()
	c := Cell{Value: 38.26, Paper: 38.26, Format: "%.2f"}
	if got := c.format(); got != "38.26" {
		t.Errorf("format = %q", got)
	}
	if got := c.formatWithPaper(); !strings.Contains(got, "paper 38.26") {
		t.Errorf("formatWithPaper = %q", got)
	}
	if got := (Cell{Text: "abc"}).format(); got != "abc" {
		t.Errorf("text cell = %q", got)
	}
	if got := (Cell{Value: math.NaN()}).format(); got != "—" {
		t.Errorf("NaN cell = %q", got)
	}
	// No paper reference: comparison view falls back to plain.
	c = Cell{Value: 1.5, Paper: math.NaN()}
	if got := c.formatWithPaper(); got != "1.50" {
		t.Errorf("no-ref comparison = %q", got)
	}
}

func TestStaticTablesRun(t *testing.T) {
	t.Parallel()
	for _, id := range []string{"table1", "table2", "table8"} {
		e, _ := Get(id)
		a, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a.RowLabels) == 0 || len(a.Cells) != len(a.RowLabels) {
			t.Errorf("%s artifact malformed", id)
		}
		out := a.Render()
		if !strings.Contains(out, strings.ToUpper(id)) {
			t.Errorf("%s render missing header: %s", id, out[:60])
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	t.Parallel()
	e, _ := Get("table1")
	a, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, needle := range []string{"A64FX", "512bit", "3379", "Fulhame", "ThunderX2"} {
		if !strings.Contains(out, needle) {
			t.Errorf("table1 missing %q", needle)
		}
	}
}

func TestTable3QuickWithinTolerance(t *testing.T) {
	t.Parallel()
	e, _ := Get("table3")
	a, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	worst, n := a.MaxAbsDeviation()
	if n < 10 {
		t.Fatalf("table3 has only %d referenced cells", n)
	}
	// Allow extra slack for the %-of-peak column, which the paper
	// rounds to one decimal.
	if worst > 0.25 {
		t.Errorf("table3 worst deviation %.1f%% exceeds tolerance", worst*100)
	}
	cmp := a.RenderComparison()
	if !strings.Contains(cmp, "paper") {
		t.Error("comparison render missing paper references")
	}
}

func TestTable8ExactMatch(t *testing.T) {
	t.Parallel()
	e, _ := Get("table8")
	a, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if worst, _ := a.MaxAbsDeviation(); worst != 0 {
		t.Errorf("table8 should match exactly, worst %.2f%%", worst*100)
	}
}

func TestFig4ShapesQuick(t *testing.T) {
	t.Parallel()
	e, _ := Get("fig4")
	a, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// A64FX row: first cell is the OOM marker.
	var a64Row, fulRow []Cell
	for i, label := range a.RowLabels {
		switch label {
		case "A64FX":
			a64Row = a.Cells[i]
		case "Fulhame":
			fulRow = a.Cells[i]
		}
	}
	if a64Row == nil || fulRow == nil {
		t.Fatal("missing rows")
	}
	if a64Row[0].Text != "(OOM)" {
		t.Errorf("A64FX 1-node cell = %+v, want OOM", a64Row[0])
	}
	// Crossover at 16 nodes (last column).
	last := len(a.Columns) - 1
	if !(fulRow[last].Value < a64Row[last].Value) {
		t.Errorf("Fulhame (%.2f) should beat A64FX (%.2f) at 16 nodes",
			fulRow[last].Value, a64Row[last].Value)
	}
	// A64FX fastest at 2 nodes (column index 1).
	for i, label := range a.RowLabels {
		if label == "A64FX" {
			continue
		}
		if a.Cells[i][1].Value <= a64Row[1].Value {
			t.Errorf("%s beat A64FX at 2 nodes", label)
		}
	}
}

func TestRenderAlignment(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		ID: "t", Title: "T", Kind: Table,
		Columns:   []string{"col"},
		RowLabels: []string{"short", "a-much-longer-label"},
		Cells:     [][]Cell{{txt("x")}, {txt("y")}},
		Notes:     []string{"a note"},
	}
	out := a.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, 2 rows, note
		t.Fatalf("render lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[4], "note:") {
		t.Errorf("note line = %q", lines[4])
	}
}

func TestMaxAbsDeviationIgnoresUnreferenced(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		Cells: [][]Cell{{
			{Value: 10, Paper: math.NaN()},
			{Text: "x"},
			{Value: 11, Paper: 10},
		}},
	}
	worst, n := a.MaxAbsDeviation()
	if n != 1 {
		t.Errorf("refCells = %d, want 1", n)
	}
	if math.Abs(worst-0.1) > 1e-12 {
		t.Errorf("worst = %v, want 0.1", worst)
	}
}
