package core

import (
	"fmt"
	"math"
	"strings"
)

// sparkLevels are the eighth-block characters used for sparklines.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// RenderChart renders a figure-kind artifact as aligned sparklines — one
// line per series (row), with the series values scaled to the artifact's
// global range. Cells without a value render as a gap. Table-kind
// artifacts fall back to the plain render.
func (a *Artifact) RenderChart() string {
	if a.Kind != Figure {
		return a.Render()
	}
	// Global range over numeric cells of the charted column set: when a
	// figure has a single value column (runtime-style figures), chart
	// that; otherwise chart all columns (core-sweep figures).
	cols := a.chartColumns()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range a.Cells {
		for _, ci := range cols {
			if ci >= len(row) {
				continue
			}
			c := row[ci]
			if c.Text != "" || math.IsNaN(c.Value) {
				continue
			}
			lo = math.Min(lo, c.Value)
			hi = math.Max(hi, c.Value)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(a.ID), a.Title)
	if math.IsInf(lo, 1) {
		b.WriteString("(no numeric data)\n")
		return b.String()
	}
	width := 0
	for _, l := range a.RowLabels {
		if len(l) > width {
			width = len(l)
		}
	}
	for i, label := range a.RowLabels {
		fmt.Fprintf(&b, "%-*s  ", width, label)
		var last float64 = math.NaN()
		for _, ci := range cols {
			if ci >= len(a.Cells[i]) {
				break
			}
			c := a.Cells[i][ci]
			if c.Text != "" || math.IsNaN(c.Value) {
				b.WriteRune(' ')
				continue
			}
			b.WriteRune(spark(c.Value, lo, hi))
			last = c.Value
		}
		if !math.IsNaN(last) {
			fmt.Fprintf(&b, "  %s", Cell{Value: last, Format: "%.3g"}.format())
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "scale: %.3g … %.3g\n", lo, hi)
	return b.String()
}

// chartColumns picks the columns to chart: every column whose cells are
// mostly numeric.
func (a *Artifact) chartColumns() []int {
	var out []int
	for ci := range a.Columns {
		numeric := 0
		for _, row := range a.Cells {
			if ci < len(row) && row[ci].Text == "" && !math.IsNaN(row[ci].Value) {
				numeric++
			}
		}
		if numeric > 0 {
			out = append(out, ci)
		}
	}
	return out
}

// spark maps a value into the block-character ramp.
func spark(v, lo, hi float64) rune {
	if hi <= lo {
		return sparkLevels[len(sparkLevels)/2]
	}
	f := (v - lo) / (hi - lo)
	idx := int(f * float64(len(sparkLevels)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sparkLevels) {
		idx = len(sparkLevels) - 1
	}
	return sparkLevels[idx]
}
