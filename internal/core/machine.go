package core

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/micro"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/units"
)

// ext-machine runs the calibrated single-node probe suite on any
// registered machine — embedded Table-I system, `-specs DIR` load, or a
// spec passed by value in the request. It is the machine-parameterized
// experiment: Options.Machine picks the target (default A64FX), and the
// machine name is part of ArtifactKey, so artifacts for different
// machines never share a cache slot. When the machine is spec-backed,
// its declared anchors appear in the paper-reference column so drift is
// visible in the standard comparison rendering.
var _ = registerExt(&Experiment{
	ID:    "ext-machine",
	Title: "Machine probe: single-node suite on a declared machine",
	Kind:  Table,
	Description: "Runs the calibration microbenchmarks (STREAM triad, " +
		"peak-flops kernel, ping-pong latency) plus single-node HPCG and " +
		"Nekbone on the machine named by the request (default A64FX). " +
		"Declared spec anchors fill the reference column.",
	Run: func(opt Options) (*Artifact, error) {
		name := opt.Machine
		if name == "" {
			name = string(arch.A64FX)
		}
		sys, err := arch.Get(arch.ID(name))
		if err != nil {
			return nil, err
		}
		iters := 10
		if opt.Quick {
			iters = 3
		}
		a := &Artifact{
			ID: "ext-machine", Title: fmt.Sprintf("Single-node probe suite on %s", name), Kind: Table,
			Columns: []string{"value"},
			Notes: []string{
				"reference values are the machine spec's declared anchors, not paper measurements",
			},
		}
		anchorTriad, anchorPeak, anchorLat := nan, nan, nan
		if m, ok := arch.MachineSpec(sys.ID); ok {
			anchorTriad = float64(m.Anchors.TriadBandwidth) / 1e9
			anchorPeak = float64(m.Anchors.PeakFlops) / 1e9
			anchorLat = m.Anchors.Latency.Seconds() * 1e6
		}
		row := func(label string, c Cell) {
			a.RowLabels = append(a.RowLabels, label)
			a.Cells = append(a.Cells, []Cell{c})
		}

		triad, err := micro.StreamTriad(sys, []int{sys.CoresPerNode()})
		if err != nil {
			return nil, err
		}
		row("STREAM triad GB/s (all cores)", val(float64(triad[0].Bandwidth)/1e9, anchorTriad, "%.1f"))

		peak, err := micro.PeakFlops(sys)
		if err != nil {
			return nil, err
		}
		row("peak-flops kernel GF/s", val(float64(peak)/1e9, anchorPeak, "%.1f"))

		pp, err := micro.PingPong(sys, []units.Bytes{8})
		if err != nil {
			return nil, err
		}
		row("ping-pong 8B latency µs", val(pp[0].HalfRoundTrip.Seconds()*1e6, anchorLat, "%.3f"))

		h, err := hpcg.Run(hpcg.Config{System: sys, Nodes: 1, Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine})
		if err != nil {
			return nil, err
		}
		row("HPCG 1-node GFLOP/s", val(h.GFLOPs, nan, "%.2f"))

		nb, err := nekbone.Run(nekbone.Config{System: sys, Nodes: 1, Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine})
		if err != nil {
			return nil, err
		}
		row("Nekbone 1-node GFLOP/s", val(nb.GFLOPs, nan, "%.2f"))

		nbf, err := nekbone.Run(nekbone.Config{System: sys, Nodes: 1, Iterations: iters, FastMath: true, Instrumentation: opt.Instr(), Engine: opt.Engine})
		if err != nil {
			return nil, err
		}
		row("Nekbone 1-node GFLOP/s (fast math)", val(nbf.GFLOPs, nan, "%.2f"))
		return a, nil
	},
})
