// Package core is the experiment harness: it maps every table and figure
// of the paper's evaluation to a runnable experiment, executes the
// benchmark packages on the simulated systems, and renders the results
// side by side with the paper's published values.
package core

import (
	"fmt"
	"sort"
	"strings"

	"a64fxbench/internal/metrics"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/telemetry"
)

// Kind distinguishes tables from figures.
type Kind string

// Artifact kinds.
const (
	Table  Kind = "table"
	Figure Kind = "figure"
)

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the short handle, e.g. "table3" or "fig4".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Kind is Table or Figure.
	Kind Kind
	// Description explains the workload and parameters.
	Description string
	// Run executes the experiment. Options scale effort: Quick trades
	// fewer simulated iterations for speed (shapes unchanged).
	Run func(opt Options) (*Artifact, error)
}

// Options tunes an experiment execution. Only fields covered by
// ArtifactKey may change the produced artifact; observability fields
// (Trace, Profile, Counters) must be result-neutral.
type Options struct {
	// Quick reduces simulated iteration counts for fast smoke runs;
	// rates and shapes are unchanged (the simulation is steady-state).
	Quick bool
	// Congestion enables contention-aware interconnect pricing for every
	// multi-node job the experiment runs (see simmpi.JobConfig). Off by
	// default: the contention-free model is what the golden artifacts
	// pin. Single-node results never change either way.
	Congestion bool
	// Trace, when non-nil, receives the event timelines of every
	// simulated job the experiment runs (each bracketed by job markers;
	// see simmpi.TraceSink). Tracing never changes artifact contents.
	Trace simmpi.TraceSink
	// Profile asks the executor (the sweep engine) to collect an
	// in-memory timeline for post-run analysis even when Trace is nil.
	// Like Trace, it never changes artifact contents.
	Profile bool
	// Counters enables the virtual PMU for every simulated job the
	// experiment runs (see simmpi.JobConfig.Counters). Like Trace and
	// Profile it is an observability field: it never changes artifact
	// contents (phase times are evaluated through the same model terms)
	// and is excluded from the cache/digest key.
	Counters *metrics.Config
	// Engine selects the simmpi execution substrate for every simulated
	// job the experiment runs (goroutine-per-rank or discrete-event; see
	// simmpi.Engine). Engines are bit-identical in every output, so like
	// the observability fields Engine is excluded from ArtifactKey — but
	// the sweep cache keys on it, so dual-engine differential runs
	// really execute both engines instead of sharing one cached
	// artifact. Empty means the goroutine default.
	Engine simmpi.Engine
	// Machine names the target machine for machine-parameterized
	// experiments (the ext-machine suite runs its single-node
	// microbenchmarks on it). Paper artifacts ignore it — their system
	// sets are fixed by the paper — so it participates in ArtifactKey
	// only through the experiments that read it. Empty means the
	// experiment's own default (A64FX).
	Machine string
	// Model selects the compute-phase pricing model for every simulated
	// job: the calibrated roofline (the empty default, what every golden
	// artifact pins) or the ECM memory-hierarchy model
	// (perfmodel.ModelECM). The model changes simulated results, so it
	// is part of ArtifactKey — ECM artifacts get their own cache and
	// golden slots while stock roofline digests stay byte-identical.
	Model perfmodel.Model
	// Telemetry, when non-nil, is the parent span under which this
	// execution's simulated jobs record their phase spans (the sweep
	// engine sets one per-artifact span; the serve daemon's request
	// root is its ancestor). Observability only: never part of
	// ArtifactKey, never changes artifact contents.
	Telemetry *telemetry.Span
}

// Instrumentation is the shared observability/network-pricing bundle
// (Trace, Congestion, Counters) that every benchmark Config embeds; the
// alias re-exports simmpi.Instrumentation at the experiment layer so
// callers construct one type whether they target a benchmark directly
// or an experiment through Options.
type Instrumentation = simmpi.Instrumentation

// Instr projects the options onto the Instrumentation bundle the
// benchmark Configs embed. Experiment Run functions pass it through
// verbatim so every simulated job carries the sweep's instrumentation.
func (o Options) Instr() Instrumentation {
	return Instrumentation{Trace: o.Trace, Congestion: o.Congestion,
		Counters: o.Counters, Model: o.Model, Telemetry: o.Telemetry}
}

// OptionsKey is the comparable projection of Options onto the fields
// that affect artifact contents — the correct cache/digest key.
// Observability settings are deliberately excluded: traced and untraced
// executions must produce byte-identical artifacts.
type OptionsKey struct {
	Quick      bool
	Congestion bool
	Machine    string
	Model      perfmodel.Model
}

// ArtifactKey projects the options onto their artifact-affecting fields.
// The model is canonicalized so "" and "roofline" share one cache slot.
func (o Options) ArtifactKey() OptionsKey {
	model := o.Model
	if model == "" {
		model = perfmodel.ModelRoofline
	}
	return OptionsKey{Quick: o.Quick, Congestion: o.Congestion, Machine: o.Machine, Model: model}
}

// Cell is one measured value with an optional paper reference.
type Cell struct {
	// Value is the measured (simulated) value, NaN when not applicable.
	Value float64
	// Paper is the published value; NaN when the paper gives none.
	Paper float64
	// Text overrides numeric formatting when non-empty (config cells).
	Text string
	// Format is the fmt verb for Value/Paper (default "%.2f").
	Format string
}

// Artifact is a completed experiment result: a table or figure's data.
type Artifact struct {
	ID      string
	Title   string
	Kind    Kind
	Columns []string
	// RowLabels name each row (usually a system or a node count).
	RowLabels []string
	// Cells is indexed [row][column-1] (the label is column 0).
	Cells [][]Cell
	// Notes carry caveats (substitutions, model-prediction flags).
	Notes []string
}

// format renders a single cell.
func (c Cell) format() string {
	if c.Text != "" {
		return c.Text
	}
	f := c.Format
	if f == "" {
		f = "%.2f"
	}
	if c.Value != c.Value { // NaN
		return "—"
	}
	return fmt.Sprintf(f, c.Value)
}

// formatWithPaper renders "measured (paper X, Δ%)" when a reference
// exists.
func (c Cell) formatWithPaper() string {
	s := c.format()
	if c.Text != "" || c.Paper != c.Paper || c.Paper == 0 {
		return s
	}
	f := c.Format
	if f == "" {
		f = "%.2f"
	}
	delta := (c.Value - c.Paper) / c.Paper * 100
	return fmt.Sprintf("%s (paper "+f+", %+.1f%%)", s, c.Paper, delta)
}

// Render produces an aligned plain-text table of the measured values.
func (a *Artifact) Render() string { return a.render(false) }

// RenderComparison produces the paper-vs-measured view used by
// EXPERIMENTS.md.
func (a *Artifact) RenderComparison() string { return a.render(true) }

func (a *Artifact) render(compare bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", strings.ToUpper(a.ID), a.Title)
	rows := make([][]string, 0, len(a.Cells)+1)
	header := append([]string{""}, a.Columns...)
	rows = append(rows, header)
	for i, label := range a.RowLabels {
		row := []string{label}
		for _, c := range a.Cells[i] {
			if compare {
				row = append(row, c.formatWithPaper())
			} else {
				row = append(row, c.format())
			}
		}
		rows = append(rows, row)
	}
	// Column widths.
	width := make([]int, len(header))
	for _, row := range rows {
		for j, cell := range row {
			if j < len(width) && len(cell) > width[j] {
				width[j] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for j, cell := range row {
			pad := 0
			if j < len(width) {
				pad = width[j]
			}
			fmt.Fprintf(&b, "%-*s", pad+2, cell)
		}
		b.WriteString("\n")
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// MaxAbsDeviation reports the largest relative |measured-paper|/|paper|
// over cells that carry a paper reference, and how many such cells exist.
func (a *Artifact) MaxAbsDeviation() (worst float64, refCells int) {
	for _, row := range a.Cells {
		for _, c := range row {
			if c.Text != "" || c.Paper != c.Paper || c.Paper == 0 || c.Value != c.Value {
				continue
			}
			refCells++
			d := (c.Value - c.Paper) / c.Paper
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst, refCells
}

// registry of experiments, keyed by ID.
var registry = map[string]*Experiment{}

// register adds an experiment at package init. Registry keys are
// normalized to lower case so lookups through Get (which lowercases its
// argument) can reach every registration regardless of the ID's case.
func register(e *Experiment) *Experiment {
	key := strings.ToLower(e.ID)
	if _, dup := registry[key]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[key] = e
	return e
}

// Get returns the experiment with the given ID (case-insensitive).
func Get(id string) (*Experiment, error) {
	e, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment %q (use List)", id)
	}
	return e, nil
}

// order defines the paper's artifact order.
var order = []string{
	"table1", "table2", "table3", "table4", "table5", "fig1", "fig2",
	"table6", "fig3", "table7", "table8", "fig4", "table9", "fig5", "table10",
}

// List returns all experiments in the paper's order.
func List() []*Experiment {
	var out []*Experiment
	seen := map[string]bool{}
	for _, id := range order {
		if e, ok := registry[id]; ok {
			out = append(out, e)
			seen[id] = true
		}
	}
	var rest []*Experiment
	for id, e := range registry {
		if !seen[id] {
			rest = append(rest, e)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].ID < rest[j].ID })
	return append(out, rest...)
}
