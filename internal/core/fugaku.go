package core

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/netmodel"
)

// ext-fugaku projects the unoptimised single-node HPCG result to Fugaku
// scale. The paper opens with Fugaku's Top500 debut; this extension asks
// what the measured 38.26 GF/node implies at 158,976 nodes, with the
// TofuD collective model supplying the only scale-dependent cost. The
// projection is closed-form above the simulated range (the runtime
// cannot spawn 7.6M goroutine ranks), and is labelled as such.
var _ = registerExt(&Experiment{
	ID:    "ext-fugaku",
	Title: "Projection: unoptimised HPCG at Fugaku scale",
	Kind:  Table,
	Description: "Extrapolates the paper's single-node A64FX HPCG rating " +
		"over TofuD collectives to the full 158,976-node Fugaku, for " +
		"comparison with the machine's published (Fujitsu-optimised) " +
		"16 PFLOP/s HPCG record.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 10
		if opt.Quick {
			iters = 4
		}
		sys := arch.MustGet(arch.A64FX)
		// Anchor: simulated single-node run.
		base, err := hpcg.Run(hpcg.Config{System: sys, Nodes: 1, Iterations: iters})
		if err != nil {
			return nil, err
		}
		perIter := base.Seconds / float64(iters)
		flopsPerNodeIter := base.GFLOPs * 1e9 * perIter

		a := &Artifact{
			ID: "ext-fugaku", Title: "Unoptimised HPCG projected over TofuD", Kind: Table,
			Columns: []string{"GFLOP/s", "PFLOP/s", "efficiency vs linear"},
			Notes: []string{
				"closed-form projection beyond the simulated range (no 7.6M-rank simulation)",
				"Fugaku's published HPCG is ≈16 PFLOP/s with Fujitsu-optimised kernels; " +
					"the unoptimised projection landing at ≈40% of that is consistent with " +
					"the paper's observation that vendor-optimised HPCG gains >40% per node",
			},
		}
		// Per-iteration collective cost at n nodes: 3 allreduces of 8
		// bytes across the full machine, everything else constant.
		const fugakuNodes = 158976
		for _, n := range []int{1, 48, 1024, 16384, fugakuNodes} {
			fabric := netmodel.NewTofuD(n)
			procs := n * sys.CoresPerNode()
			collective := 3 * fabric.Allreduce(procs, n, 8).Seconds()
			baseCollective := 3 * fabric.Allreduce(sys.CoresPerNode(), 1, 8).Seconds()
			t := perIter + (collective - baseCollective)
			gf := float64(n) * flopsPerNodeIter / t / 1e9
			linear := float64(n) * base.GFLOPs
			a.RowLabels = append(a.RowLabels, fmt.Sprintf("%d nodes", n))
			a.Cells = append(a.Cells, []Cell{
				val(gf, nan, "%.0f"),
				val(gf/1e6, nan, "%.3f"),
				val(gf/linear, nan, "%.3f"),
			})
		}
		return a, nil
	},
})
