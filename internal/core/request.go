package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/metrics"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/spec"
	"a64fxbench/internal/units"
)

// Request is the one serializable descriptor of an experiment execution.
// The CLI builds it from flags, the serve daemon decodes it from JSON,
// and both hand it to the same executors — so a curl request and a
// command line are provably the same object. Every field is plain data:
// a Request can be logged, hashed (Digest) and replayed.
//
// The zero value plus one id is a valid request: the full default run of
// that experiment.
type Request struct {
	// IDs names the experiments or extensions to execute, in output
	// order. run/trace/links take exactly one; sweep and counters accept
	// many. Ids are case-insensitive (normalized to lower case).
	IDs []string `json:"ids"`
	// Quick reduces simulated iteration counts (core.Options.Quick).
	Quick bool `json:"quick,omitempty"`
	// Congestion prices multi-node communication through the routed
	// contention model (core.Options.Congestion).
	Congestion bool `json:"congestion,omitempty"`
	// Engine selects the simulation substrate: "", "goroutine" or
	// "event" (core.Options.Engine).
	Engine string `json:"engine,omitempty"`
	// Model selects the compute-phase pricing model: "", "roofline" or
	// "ecm" (core.Options.Model). Normalization canonicalizes the empty
	// default to "roofline"; the model participates in Digest, so an
	// ECM request caches digest-distinct from the stock roofline one.
	Model string `json:"model,omitempty"`
	// Format selects the output encoding. Valid values depend on the
	// operation: run/sweep take text|chart|json|csv, trace takes
	// text|chrome|json, links text|json, counters text|json|csv.
	// Empty means text.
	Format string `json:"format,omitempty"`
	// Compare renders paper-vs-measured deltas beside each value
	// (text-format artifacts only).
	Compare bool `json:"compare,omitempty"`
	// PeriodNS is the virtual-time sampling period of the PMU counter
	// series in nanoseconds (counters operation only; 0 = the metrics
	// default).
	PeriodNS int64 `json:"period_ns,omitempty"`
	// Machine names the target machine for machine-parameterized ids
	// (the ext-machine suite). It must resolve in the spec registry —
	// one of the embedded Table-I systems, a `-specs DIR` load, or the
	// machine declared by Spec below. Empty means the default (A64FX).
	Machine string `json:"machine,omitempty"`
	// Spec carries a full machine spec by value (the same JSON shape as
	// a spec file, overlays included), so a serve client can run against
	// a what-if machine without any file on the server. Normalization
	// strictly parses, compiles and registers it; the canonical form
	// participates in Digest, so a custom-spec request is cacheable and
	// digest-distinct from every stock machine.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// DecodeRequest reads one JSON-encoded Request from r under strict
// rules: unknown fields are rejected (a typoed "quik" fails loudly
// instead of silently running the default), and trailing data after the
// object is an error. The decoded request is normalized and validated.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("request: %w", err)
	}
	if dec.More() {
		return Request{}, fmt.Errorf("request: trailing data after JSON object")
	}
	return req.Normalized()
}

// ParseRequest decodes a Request from raw JSON bytes (DecodeRequest on
// a byte slice).
func ParseRequest(data []byte) (Request, error) {
	return DecodeRequest(strings.NewReader(string(data)))
}

// UnknownIDError reports a request id that resolves to neither a paper
// experiment nor an extension. It carries the full valid-id list so
// callers (HTTP 400 bodies, CLI errors) can show what would have worked.
type UnknownIDError struct {
	ID    string
	Valid []string
}

func (e *UnknownIDError) Error() string {
	return fmt.Sprintf("unknown experiment %q (valid: %s)", e.ID, strings.Join(e.Valid, " "))
}

// ValidIDs lists every runnable id: the paper artifacts in paper order,
// then the extensions sorted by id.
func ValidIDs() []string {
	var ids []string
	for _, e := range List() {
		ids = append(ids, strings.ToLower(e.ID))
	}
	for _, e := range Extensions() {
		ids = append(ids, strings.ToLower(e.ID))
	}
	return ids
}

// lookupID resolves an id against both registries.
func lookupID(id string) error {
	if _, err := Get(id); err == nil {
		return nil
	}
	if _, err := GetExtension(id); err == nil {
		return nil
	}
	return &UnknownIDError{ID: id, Valid: ValidIDs()}
}

// Normalized returns the request in canonical form — ids trimmed and
// lower-cased, the engine name canonicalized — and validates it: at
// least one id, every id known (an *UnknownIDError lists the valid set
// otherwise), the engine parseable, the period non-negative. Two
// requests that normalize equal have equal Digests.
func (r Request) Normalized() (Request, error) {
	return r.normalized(true)
}

// NormalizedLenient is Normalized without the id-existence check:
// unknown ids stay in the list. The CLI's multi-id sweep path uses it
// so one typo surfaces as that experiment's per-result failure instead
// of aborting the other thirteen artifacts; the serve daemon always
// uses the strict form.
func (r Request) NormalizedLenient() (Request, error) {
	return r.normalized(false)
}

func (r Request) normalized(strictIDs bool) (Request, error) {
	out := r
	out.IDs = make([]string, 0, len(r.IDs))
	for _, id := range r.IDs {
		id = strings.ToLower(strings.TrimSpace(id))
		if id == "" {
			return Request{}, fmt.Errorf("request: empty experiment id")
		}
		if strictIDs {
			if err := lookupID(id); err != nil {
				return Request{}, err
			}
		}
		out.IDs = append(out.IDs, id)
	}
	if len(out.IDs) == 0 {
		return Request{}, fmt.Errorf("request: no experiment ids (valid: %s)",
			strings.Join(ValidIDs(), " "))
	}
	eng, err := simmpi.ParseEngine(out.Engine)
	if err != nil {
		return Request{}, fmt.Errorf("request: %w", err)
	}
	out.Engine = string(eng)
	model, err := perfmodel.ParseModel(out.Model)
	if err != nil {
		return Request{}, fmt.Errorf("request: %w", err)
	}
	out.Model = string(model)
	if out.Format == "" {
		out.Format = "text"
	}
	if out.PeriodNS < 0 {
		return Request{}, fmt.Errorf("request: negative counter period %dns", out.PeriodNS)
	}
	if len(out.Spec) > 0 {
		m, err := spec.Default.AddBytes(out.Spec, "request")
		if err != nil {
			return Request{}, fmt.Errorf("request: %w", err)
		}
		if _, err := arch.RegisterMachine(m); err != nil {
			return Request{}, fmt.Errorf("request: %w", err)
		}
		if out.Machine != "" && out.Machine != m.Name() {
			return Request{}, fmt.Errorf("request: machine %q does not match inline spec machine %q",
				out.Machine, m.Name())
		}
		out.Machine = m.Name()
		// Canonical bytes so requests that differ only in JSON
		// whitespace or key order digest (and cache) identically.
		out.Spec = m.Spec.Canonical()
	}
	if out.Machine != "" {
		m, ok := spec.Get(out.Machine)
		if !ok {
			return Request{}, fmt.Errorf("request: unknown machine %q (valid: %s)",
				out.Machine, strings.Join(spec.Names(), " "))
		}
		// Make sure the named machine is runnable as a system too (a
		// `-specs DIR` load registers into the spec registry first).
		if _, err := arch.RegisterMachine(m); err != nil {
			return Request{}, fmt.Errorf("request: %w", err)
		}
	}
	return out, nil
}

// Options projects the request onto the experiment options. The
// instrumentation carriers (Trace, Profile, Counters) stay nil — they
// are owned by the operation executing the request (trace attaches a
// sink, counters a PMU config), not by the serializable descriptor.
func (r Request) Options() (Options, error) {
	eng, err := simmpi.ParseEngine(r.Engine)
	if err != nil {
		return Options{}, err
	}
	model, err := perfmodel.ParseModel(r.Model)
	if err != nil {
		return Options{}, err
	}
	return Options{Quick: r.Quick, Congestion: r.Congestion, Engine: eng, Machine: r.Machine, Model: model}, nil
}

// CounterConfig builds the PMU configuration the counters operation
// attaches (Options.Counters) from the request's sampling period.
func (r Request) CounterConfig() *metrics.Config {
	return &metrics.Config{Period: units.Duration(r.PeriodNS)}
}

// Digest is the content-addressed identity of a normalized request: the
// SHA-256 of a length-prefixed canonical encoding of every field. Two
// requests digest equal iff they execute identically and render
// identically, so the digest is the serve daemon's cache and
// singleflight key. Normalize first — Digest hashes fields as they are.
func (r Request) Digest() string {
	var b []byte
	str := func(s string) {
		b = binary.BigEndian.AppendUint64(b, uint64(len(s)))
		b = append(b, s...)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(len(r.IDs)))
	for _, id := range r.IDs {
		str(id)
	}
	var flags byte
	if r.Quick {
		flags |= 1
	}
	if r.Congestion {
		flags |= 2
	}
	if r.Compare {
		flags |= 4
	}
	b = append(b, flags)
	str(r.Engine)
	str(r.Format)
	b = binary.BigEndian.AppendUint64(b, uint64(r.PeriodNS))
	str(r.Machine)
	str(string(r.Spec))
	str(r.Model)
	return fmt.Sprintf("%x", sha256.Sum256(b))
}
