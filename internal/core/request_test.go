package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	t.Parallel()
	in := Request{
		IDs: []string{"table1", "fig3"}, Quick: true, Congestion: true,
		Engine: "event", Format: "json", Compare: true, PeriodNS: 50_000,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseRequest(data)
	if err != nil {
		t.Fatalf("ParseRequest: %v", err)
	}
	norm, err := in.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if outJSON, normJSON := mustJSON(t, out), mustJSON(t, norm); outJSON != normJSON {
		t.Fatalf("round trip drifted:\n got %s\nwant %s", outJSON, normJSON)
	}
	if out.Digest() != norm.Digest() {
		t.Fatalf("round-trip digest drifted: %s vs %s", out.Digest(), norm.Digest())
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRequestStrictDecoding(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"ids":["table1"],"quik":true}`, "quik"},
		{"trailing data", `{"ids":["table1"]}{"ids":["table2"]}`, "trailing"},
		{"not json", `ids=table1`, "request"},
		{"no ids", `{}`, "no experiment ids"},
		{"empty id", `{"ids":["  "]}`, "empty experiment id"},
		{"bad engine", `{"ids":["table1"],"engine":"quantum"}`, "quantum"},
		{"negative period", `{"ids":["table1"],"period_ns":-1}`, "negative counter period"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, err := ParseRequest([]byte(tc.body))
			if err == nil {
				t.Fatalf("decoded %s without error", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestRequestUnknownIDListsValid(t *testing.T) {
	t.Parallel()
	_, err := ParseRequest([]byte(`{"ids":["tablezero"]}`))
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	var uerr *UnknownIDError
	if !errors.As(err, &uerr) {
		t.Fatalf("error is %T, want *UnknownIDError", err)
	}
	if uerr.ID != "tablezero" {
		t.Fatalf("UnknownIDError.ID = %q", uerr.ID)
	}
	for _, want := range []string{"table1", "fig3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list valid id %q", err, want)
		}
	}
}

func TestRequestNormalization(t *testing.T) {
	t.Parallel()
	a, err := Request{IDs: []string{"  Table1 "}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Request{IDs: []string{"table1"}, Format: "text"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.IDs[0] != "table1" {
		t.Fatalf("id not canonicalized: %q", a.IDs[0])
	}
	if a.Engine == "" {
		t.Fatal("engine not canonicalized to the default name")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("equivalent requests digest differently: %s vs %s", a.Digest(), b.Digest())
	}
}

func TestRequestDigestDiscriminates(t *testing.T) {
	t.Parallel()
	base := Request{IDs: []string{"table1"}}
	norm := func(r Request) Request {
		t.Helper()
		n, err := r.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	seen := map[string]string{}
	variants := map[string]Request{
		"base":       base,
		"quick":      {IDs: []string{"table1"}, Quick: true},
		"congestion": {IDs: []string{"table1"}, Congestion: true},
		"compare":    {IDs: []string{"table1"}, Compare: true},
		"format":     {IDs: []string{"table1"}, Format: "json"},
		"engine":     {IDs: []string{"table1"}, Engine: "event"},
		"period":     {IDs: []string{"table1"}, PeriodNS: 1000},
		"model":      {IDs: []string{"table1"}, Model: "ecm"},
		"ids":        {IDs: []string{"table1", "table3"}},
	}
	for name, r := range variants {
		d := norm(r).Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("variants %q and %q collide on digest %s", name, prev, d)
		}
		seen[d] = name
	}
}

func TestValidIDsCoversBothRegistries(t *testing.T) {
	t.Parallel()
	ids := ValidIDs()
	if len(ids) < len(List()) {
		t.Fatalf("ValidIDs returned %d ids, fewer than the %d paper artifacts", len(ids), len(List()))
	}
	want := map[string]bool{"table1": false}
	for _, e := range Extensions() {
		want[strings.ToLower(e.ID)] = false
		break
	}
	for _, id := range ids {
		if _, ok := want[id]; ok {
			want[id] = true
		}
	}
	for id, found := range want {
		if !found {
			t.Fatalf("ValidIDs is missing %q", id)
		}
	}
}

func TestRequestMachineAndSpec(t *testing.T) {
	t.Parallel()
	norm := func(body string) (Request, error) { return ParseRequest([]byte(body)) }

	base, err := norm(`{"ids":["table1"]}`)
	if err != nil {
		t.Fatal(err)
	}
	named, err := norm(`{"ids":["table1"],"machine":"A64FX"}`)
	if err != nil {
		t.Fatalf("named stock machine rejected: %v", err)
	}
	if named.Digest() == base.Digest() {
		t.Fatal("machine field does not affect the digest")
	}
	opt, err := named.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opt.Machine != "A64FX" {
		t.Fatalf("Options.Machine = %q, want A64FX", opt.Machine)
	}

	if _, err := norm(`{"ids":["table1"],"machine":"NoSuchBox"}`); err == nil ||
		!strings.Contains(err.Error(), "A64FX") {
		t.Fatalf("unknown machine should list the valid set, got %v", err)
	}

	const overlay = `{"base":"A64FX","name":"ReqTest-A","description":"w","clock_ghz":1.9}`
	inline, err := norm(`{"ids":["table1"],"spec":` + overlay + `}`)
	if err != nil {
		t.Fatalf("inline spec rejected: %v", err)
	}
	if inline.Machine != "ReqTest-A" {
		t.Fatalf("inline spec did not set Machine, got %q", inline.Machine)
	}
	if inline.Digest() == named.Digest() || inline.Digest() == base.Digest() {
		t.Fatal("inline-spec request must digest distinct from stock requests")
	}

	// Whitespace and key order are canonicalized away: same machine, one
	// digest (one cache slot).
	reordered, err := norm(`{"ids":["table1"],"spec":{"clock_ghz":1.9,  "name":"ReqTest-A","description":"w","base":"A64FX"}}`)
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Digest() != inline.Digest() {
		t.Fatal("spec key order / whitespace changed the request digest")
	}

	// A named machine may accompany an inline spec only if they agree.
	if _, err := norm(`{"ids":["table1"],"machine":"A64FX","spec":` + overlay + `}`); err == nil ||
		!strings.Contains(err.Error(), "does not match") {
		t.Fatalf("machine/spec name mismatch should be rejected, got %v", err)
	}

	// A bad inline spec surfaces the decoder's field path.
	if _, err := norm(`{"ids":["table1"],"spec":{"base":"A64FX","name":"ReqTest-B","node":{"domain_bandwidth":"300 GB"}}}`); err == nil ||
		!strings.Contains(err.Error(), "node.domain_bandwidth") {
		t.Fatalf("bad inline spec should name the field, got %v", err)
	}
}
