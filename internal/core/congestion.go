package core

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
)

// hpcg-weak contrasts the contention-free network model against the
// routed congestion model on the same workload. Each row runs HPCG on
// A64FX nodes twice — Congestion off and on — so the artifact itself is
// independent of opt.Congestion and can be pinned by the golden gate
// while still exercising the contention path on every sweep.
var _ = registerExt(&Experiment{
	ID:    "hpcg-weak",
	Title: "HPCG weak scaling under contention-free vs congested network pricing",
	Kind:  Table,
	Description: "Runs 1–8 node HPCG on the A64FX/TofuD model with the " +
		"default contention-free fabric and again with routed per-link " +
		"max-min congestion, reporting the contention penalty at each " +
		"scale. Single-node rows are identical by construction.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 10
		nodeCounts := []int{1, 2, 4, 8}
		if opt.Quick {
			iters = 3
			nodeCounts = []int{1, 2, 4}
		}
		a := &Artifact{
			ID: "hpcg-weak", Title: "HPCG GFLOP/s: contention-free vs congested", Kind: Table,
			Columns: []string{"GFLOP/s", "GFLOP/s congested", "slowdown"},
			Notes: []string{
				"both columns are computed on every run (the artifact does not " +
					"depend on the -congestion flag); use `links hpcg-weak` for " +
					"the per-link heatmap of the congested pass",
			},
		}
		sys := arch.MustGet(arch.A64FX)
		congested := opt.Instr()
		congested.Congestion = true
		for _, nodes := range nodeCounts {
			free, err := hpcg.Run(hpcg.Config{
				System: sys, Nodes: nodes, Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine,
			})
			if err != nil {
				return nil, err
			}
			// The congested pass feeds the same trace sink so `links`
			// and `trace` see its link events.
			cong, err := hpcg.Run(hpcg.Config{
				System: sys, Nodes: nodes, Iterations: iters,
				Instrumentation: congested, Engine: opt.Engine,
			})
			if err != nil {
				return nil, err
			}
			a.RowLabels = append(a.RowLabels, fmt.Sprintf("%d nodes", nodes))
			a.Cells = append(a.Cells, []Cell{
				val(free.GFLOPs, nan, "%.2f"),
				val(cong.GFLOPs, nan, "%.2f"),
				val(free.GFLOPs/cong.GFLOPs, nan, "%.3f"),
			})
		}
		return a, nil
	},
})
