package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// RenderArtifact writes one artifact in the named format — the single
// rendering path shared by the CLI `run` command and the serve daemon's
// /v1/run and /v1/sweep endpoints, which is what makes their bytes
// provably identical for the same Request. Valid formats are "text"
// (or ""), "chart", "json" and "csv"; compare applies to text only.
func RenderArtifact(w io.Writer, a *Artifact, format string, compare bool) error {
	switch format {
	case "json":
		return a.WriteJSON(w)
	case "csv":
		return a.WriteCSV(w)
	case "chart":
		_, err := fmt.Fprintln(w, a.RenderChart())
		return err
	case "text", "":
		if compare {
			_, err := fmt.Fprintln(w, a.RenderComparison())
			return err
		}
		_, err := fmt.Fprintln(w, a.Render())
		return err
	default:
		return fmt.Errorf("unknown artifact format %q (want text, chart, json or csv)", format)
	}
}

// jsonCell is the export form of a Cell.
type jsonCell struct {
	Value *float64 `json:"value,omitempty"`
	Paper *float64 `json:"paper,omitempty"`
	Text  string   `json:"text,omitempty"`
}

// jsonArtifact is the export form of an Artifact.
type jsonArtifact struct {
	ID        string       `json:"id"`
	Title     string       `json:"title"`
	Kind      Kind         `json:"kind"`
	Columns   []string     `json:"columns"`
	RowLabels []string     `json:"rowLabels"`
	Cells     [][]jsonCell `json:"cells"`
	Notes     []string     `json:"notes,omitempty"`
}

// fptr returns a pointer to v, or nil for NaN (JSON has no NaN).
func fptr(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// WriteJSON serialises the artifact as indented JSON.
func (a *Artifact) WriteJSON(w io.Writer) error {
	out := jsonArtifact{
		ID: a.ID, Title: a.Title, Kind: a.Kind,
		Columns: a.Columns, RowLabels: a.RowLabels, Notes: a.Notes,
	}
	for _, row := range a.Cells {
		var jr []jsonCell
		for _, c := range row {
			jc := jsonCell{Text: c.Text}
			if c.Text == "" {
				jc.Value = fptr(c.Value)
				jc.Paper = fptr(c.Paper)
			}
			jr = append(jr, jc)
		}
		out.Cells = append(out.Cells, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCSV serialises the artifact as CSV: a header row, then one row per
// row label. Cells with paper references expand into value and paper
// columns.
func (a *Artifact) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	hasPaper := false
	for _, row := range a.Cells {
		for _, c := range row {
			if c.Text == "" && !math.IsNaN(c.Paper) {
				hasPaper = true
			}
		}
	}
	header := []string{"row"}
	for _, col := range a.Columns {
		header = append(header, col)
		if hasPaper {
			header = append(header, col+" (paper)")
		}
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, label := range a.RowLabels {
		rec := []string{label}
		for _, c := range a.Cells[i] {
			rec = append(rec, csvValue(c, false))
			if hasPaper {
				rec = append(rec, csvValue(c, true))
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// csvValue formats one cell for CSV output.
func csvValue(c Cell, paper bool) string {
	if c.Text != "" {
		if paper {
			return ""
		}
		return c.Text
	}
	v := c.Value
	if paper {
		v = c.Paper
	}
	if math.IsNaN(v) {
		return ""
	}
	f := c.Format
	if f == "" {
		f = "%.4g"
	}
	return fmt.Sprintf(f, v)
}
