package core

import (
	"fmt"
	"math"
	"strings"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/castep"
	"a64fxbench/internal/cosa"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/minikab"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/opensbli"
	"a64fxbench/internal/paper"
)

// nan marks absent paper references.
var nan = math.NaN()

// val builds a measured cell with a paper reference.
func val(measured, paper float64, format string) Cell {
	return Cell{Value: measured, Paper: paper, Format: format}
}

// txt builds a text cell.
func txt(s string) Cell { return Cell{Text: s} }

// --- Table I: compute node specifications ---

var _ = register(&Experiment{
	ID:    "table1",
	Title: "Compute node specifications",
	Kind:  Table,
	Description: "The five systems' node hardware as modelled " +
		"(processor, clock, cores, vector width, peak, memory).",
	Run: func(Options) (*Artifact, error) {
		a := &Artifact{
			ID: "table1", Title: "Compute node specifications", Kind: Table,
			Columns: []string{"Processor", "Clock", "Cores/proc", "Cores/node",
				"Threads/core", "Vector", "Peak GF/s", "Mem/node", "Mem/core"},
		}
		// Exactly the paper's five systems — arch.All() would also list
		// ablation systems derived by extension experiments, making the
		// table depend on what else has already run.
		for _, id := range arch.IDs() {
			s := arch.MustGet(id)
			a.RowLabels = append(a.RowLabels, string(s.ID))
			a.Cells = append(a.Cells, []Cell{
				txt(s.Processor),
				txt(fmt.Sprintf("%.1fGHz", s.ClockGHz)),
				txt(fmt.Sprintf("%d", s.CoresPerProcessor)),
				txt(fmt.Sprintf("%d", s.CoresPerNode())),
				txt(s.ThreadsPerCore),
				txt(fmt.Sprintf("%dbit", s.VectorBits)),
				txt(fmt.Sprintf("%.1f", s.PeakNodeGFlops())),
				txt(s.MemoryPerNode().String()),
				txt(s.MemoryPerCore().String()),
			})
		}
		return a, nil
	},
})

// --- Table II: compilers, flags, libraries ---

var _ = register(&Experiment{
	ID:    "table2",
	Title: "Compilers, compiler flags and libraries",
	Kind:  Table,
	Description: "Table II metadata: the toolchain used for each " +
		"benchmark on each system (semantics carried by the calibration).",
	Run: func(Options) (*Artifact, error) {
		a := &Artifact{
			ID: "table2", Title: "Compilers, compiler flags and libraries", Kind: Table,
			Columns: []string{"System", "Compiler", "Fast math", "Libraries"},
		}
		for _, tc := range arch.Toolchains() {
			a.RowLabels = append(a.RowLabels, tc.Benchmark)
			fast := "no"
			if tc.HasFastMath() {
				fast = "yes"
			}
			a.Cells = append(a.Cells, []Cell{
				txt(string(tc.System)),
				txt(tc.Compiler),
				txt(fast),
				txt(strings.Join(tc.Libraries, ", ")),
			})
		}
		return a, nil
	},
})

// --- Table III: single-node HPCG ---

var _ = register(&Experiment{
	ID:    "table3",
	Title: "Single node HPCG performance",
	Kind:  Table,
	Description: "HPCG, MPI-only, all cores, local grid 80³; unoptimised " +
		"everywhere plus the vendor-optimised variants on EPCC NGIO and Fulhame.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 15
		if opt.Quick {
			iters = 4
		}
		a := &Artifact{
			ID: "table3", Title: "Single node HPCG performance", Kind: Table,
			Columns: []string{"GFLOP/s", "% of peak"},
			Notes: []string{
				"%-of-peak references are derived from the paper's own GFLOP/s and " +
					"Table I peaks; the published EPCC NGIO percentages (1.4/2.0) are " +
					"inconsistent with its GFLOP/s column (26.16/2662.4 ≈ 1.0%)",
			},
		}
		type row struct {
			label     string
			sys       arch.ID
			optimised bool
			paperGF   float64
			paperPct  float64
		}
		var rows []row
		for _, pr := range paper.TableIII {
			label := string(pr.System)
			if pr.System == paper.NGIO || pr.System == paper.Fulhame {
				if pr.Optimised {
					label += " (optimised)"
				} else {
					label += " (unoptimised)"
				}
			}
			sys := arch.ID(pr.System)
			rows = append(rows, row{
				label:     label,
				sys:       sys,
				optimised: pr.Optimised,
				paperGF:   pr.GFlops,
				paperPct:  pr.GFlops / arch.MustGet(sys).PeakNodeGFlops() * 100,
			})
		}
		for _, r := range rows {
			res, err := hpcg.Run(hpcg.Config{
				System: arch.MustGet(r.sys), Nodes: 1,
				Iterations: iters, Optimised: r.optimised,
				Instrumentation: opt.Instr(), Engine: opt.Engine,
			})
			if err != nil {
				return nil, err
			}
			a.RowLabels = append(a.RowLabels, r.label)
			a.Cells = append(a.Cells, []Cell{
				val(res.GFLOPs, r.paperGF, "%.2f"),
				val(res.PctPeak, r.paperPct, "%.1f"),
			})
		}
		return a, nil
	},
})

// --- Table IV: multi-node HPCG ---

var _ = register(&Experiment{
	ID:    "table4",
	Title: "Multiple node HPCG performance (GFLOP/s)",
	Kind:  Table,
	Description: "HPCG scaling over 1, 2, 4 and 8 nodes; optimised " +
		"variants on NGIO and Fulhame as in the paper.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 10
		if opt.Quick {
			iters = 3
		}
		refs := map[arch.ID][4]float64{}
		for sys, cols := range paper.TableIV {
			refs[arch.ID(sys)] = cols
		}
		a := &Artifact{
			ID: "table4", Title: "Multiple node HPCG performance (GFLOP/s)", Kind: Table,
			Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes"},
			Notes: []string{
				"EPCC NGIO and Fulhame rows use the vendor-optimised HPCG, as in the paper",
			},
		}
		for _, id := range arch.IDs() {
			optimised := id == arch.NGIO || id == arch.Fulhame
			label := string(id)
			if optimised {
				label += " (optimised)"
			}
			var cells []Cell
			for i, nodes := range []int{1, 2, 4, 8} {
				res, err := hpcg.Run(hpcg.Config{
					System: arch.MustGet(id), Nodes: nodes,
					Iterations: iters, Optimised: optimised,
					Instrumentation: opt.Instr(), Engine: opt.Engine,
				})
				if err != nil {
					return nil, err
				}
				cells = append(cells, val(res.GFLOPs, refs[id][i], "%.2f"))
			}
			a.RowLabels = append(a.RowLabels, label)
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})

// --- Table V: single-core minikab ---

var _ = register(&Experiment{
	ID:    "table5",
	Title: "Single core minikab performance (runtime in seconds)",
	Kind:  Table,
	Description: "The Benchmark1 structural CG solve (9,573,984 dof, " +
		"696,096,138 nnz) on one core of A64FX, EPCC NGIO and Fulhame.",
	Run: func(opt Options) (*Artifact, error) {
		refs := map[arch.ID]float64{}
		for sys, v := range paper.TableV {
			refs[arch.ID(sys)] = v
		}
		a := &Artifact{
			ID: "table5", Title: "Single core minikab performance", Kind: Table,
			Columns: []string{"Runtime (s)"},
		}
		iters := 0 // default (full)
		if opt.Quick {
			iters = minikab.DefaultIterations / 10
		}
		for _, id := range []arch.ID{arch.A64FX, arch.NGIO, arch.Fulhame} {
			res, err := minikab.Run(minikab.Config{
				System: arch.MustGet(id), Nodes: 1, RanksPerNode: 1,
				Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine,
			})
			if err != nil {
				return nil, err
			}
			seconds := res.Seconds
			ref := refs[id]
			if opt.Quick {
				seconds *= 10 // scale back for comparability
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, []Cell{val(seconds, ref, "%.0f")})
		}
		return a, nil
	},
})

// --- Figure 1: minikab execution configurations on 2 A64FX nodes ---

var _ = register(&Experiment{
	ID:    "fig1",
	Title: "minikab runtimes/GFLOP/s for execution setups on 2 A64FX nodes",
	Kind:  Figure,
	Description: "Plain MPI and mixed MPI+OpenMP configurations over " +
		"increasing core counts; plain MPI cannot exceed 48 processes for " +
		"memory reasons, and 4 ranks × 12 threads per node (one rank per " +
		"CMG) is fastest.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 200
		if opt.Quick {
			iters = 40
		}
		a := &Artifact{
			ID: "fig1", Title: "minikab execution setups on 2 A64FX nodes", Kind: Figure,
			Columns: []string{"Cores/node", "Runtime (s)", "GFLOP/s"},
			Notes: []string{
				"paper reports no numeric values for this figure; the qualitative " +
					"shape (memory-limited plain MPI, hybrid best at full population) is the target",
				"96-rank plain MPI omitted: does not fit node memory, as in the paper",
			},
		}
		type cfg struct {
			label    string
			rpn, tpr int
		}
		cfgs := []cfg{
			{"MPI only, 24 ranks/node", 24, 1},
			{"24 ranks × 2 threads", 24, 2},
			{"16 ranks × 3 threads", 16, 3},
			{"8 ranks × 6 threads", 8, 6},
			{"4 ranks × 12 threads", 4, 12},
		}
		for _, c := range cfgs {
			res, err := minikab.Run(minikab.Config{
				System: arch.MustGet(arch.A64FX), Nodes: 2,
				RanksPerNode: c.rpn, ThreadsPerRank: c.tpr, Iterations: iters,
				Instrumentation: opt.Instr(), Engine: opt.Engine,
			})
			if err != nil {
				return nil, err
			}
			a.RowLabels = append(a.RowLabels, c.label)
			a.Cells = append(a.Cells, []Cell{
				txt(fmt.Sprintf("%d", c.rpn*c.tpr)),
				val(res.Seconds, nan, "%.2f"),
				val(res.GFLOPs, nan, "%.1f"),
			})
		}
		return a, nil
	},
})

// --- Figure 2: minikab strong scaling, A64FX vs Fulhame ---

var _ = register(&Experiment{
	ID:    "fig2",
	Title: "minikab strong scaling on A64FX (2–8 nodes) vs Fulhame (1–6 nodes)",
	Kind:  Figure,
	Description: "Best configurations per system: 4×12 hybrid on A64FX, " +
		"fully-populated plain MPI on Fulhame.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 200
		if opt.Quick {
			iters = 40
		}
		a := &Artifact{
			ID: "fig2", Title: "minikab strong scaling (Benchmark1)", Kind: Figure,
			Columns: []string{"Cores", "Runtime (s)"},
			Notes: []string{
				"paper reports no numeric values; targets are the qualitative " +
					"claims of §VI.A (A64FX faster per node and per core, Fulhame scales at least as well)",
			},
		}
		for _, nodes := range []int{2, 4, 6, 8} {
			cfg := minikab.BestA64FXConfig(nodes)
			cfg.Iterations = iters
			cfg.Instrumentation = opt.Instr()
			cfg.Engine = opt.Engine
			res, err := minikab.Run(cfg)
			if err != nil {
				return nil, err
			}
			a.RowLabels = append(a.RowLabels, fmt.Sprintf("A64FX %d nodes", nodes))
			a.Cells = append(a.Cells, []Cell{
				txt(fmt.Sprintf("%d", res.Cores)),
				val(res.Seconds, nan, "%.2f"),
			})
		}
		for _, nodes := range []int{1, 2, 3, 4, 5, 6} {
			cfg := minikab.FulhameConfig(nodes)
			cfg.Iterations = iters
			cfg.Instrumentation = opt.Instr()
			cfg.Engine = opt.Engine
			res, err := minikab.Run(cfg)
			if err != nil {
				return nil, err
			}
			a.RowLabels = append(a.RowLabels, fmt.Sprintf("Fulhame %d nodes", nodes))
			a.Cells = append(a.Cells, []Cell{
				txt(fmt.Sprintf("%d", res.Cores)),
				val(res.Seconds, nan, "%.2f"),
			})
		}
		return a, nil
	},
})

// --- Table VI: Nekbone node performance ---

var _ = register(&Experiment{
	ID:    "table6",
	Title: "Node performance of Nekbone across numerous systems",
	Kind:  Table,
	Description: "Weak scaling, 200 elements per rank at 16³ order; " +
		"GFLOP/s with and without fast math (-Kfast / -ffast-math).",
	Run: func(opt Options) (*Artifact, error) {
		iters := 40
		if opt.Quick {
			iters = 10
		}
		refs := map[arch.ID][2]float64{}
		for sys, row := range paper.TableVI {
			refs[arch.ID(sys)] = [2]float64{row.GFlops, row.GFlopsFastMath}
		}
		a := &Artifact{
			ID: "table6", Title: "Nekbone node performance", Kind: Table,
			Columns: []string{"Cores", "GFLOP/s", "Ratio to A64FX", "GFLOP/s fast math", "Ratio to A64FX"},
		}
		ids := []arch.ID{arch.A64FX, arch.NGIO, arch.Fulhame, arch.ARCHER}
		type pair struct{ plain, fast float64 }
		meas := map[arch.ID]pair{}
		for _, id := range ids {
			p, err := nekbone.Run(nekbone.Config{System: arch.MustGet(id), Nodes: 1, Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine})
			if err != nil {
				return nil, err
			}
			f, err := nekbone.Run(nekbone.Config{System: arch.MustGet(id), Nodes: 1, Iterations: iters, FastMath: true, Instrumentation: opt.Instr(), Engine: opt.Engine})
			if err != nil {
				return nil, err
			}
			meas[id] = pair{p.GFLOPs, f.GFLOPs}
		}
		base := meas[arch.A64FX]
		paperBase := refs[arch.A64FX]
		for _, id := range ids {
			m := meas[id]
			pp := refs[id]
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, []Cell{
				txt(fmt.Sprintf("%d", arch.MustGet(id).CoresPerNode())),
				val(m.plain, pp[0], "%.2f"),
				val(m.plain/base.plain, pp[0]/paperBase[0], "%.2f"),
				val(m.fast, pp[1], "%.2f"),
				val(m.fast/base.fast, pp[1]/paperBase[1], "%.2f"),
			})
		}
		return a, nil
	},
})

// --- Figure 3: Nekbone single-node core scaling ---

var _ = register(&Experiment{
	ID:    "fig3",
	Title: "Nekbone single node scaling across cores (one MPI process per core)",
	Kind:  Figure,
	Description: "Weak scaling over core counts on one node of each " +
		"system; the Arm processors hold per-core rates to high counts " +
		"while the Intel parts tail off.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 10
		if opt.Quick {
			iters = 3
		}
		counts := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
		a := &Artifact{
			ID: "fig3", Title: "Nekbone single-node core scaling (GFLOP/s)", Kind: Figure,
			Columns: []string{},
			Notes: []string{
				"paper's figure is MFLOP/s in log scale with no numeric labels; " +
					"shapes (Arm scaling, Ivy Bridge early competitiveness) are the target",
			},
		}
		for _, c := range counts {
			a.Columns = append(a.Columns, fmt.Sprintf("%d", c))
		}
		for _, id := range arch.IDs() {
			sys := arch.MustGet(id)
			var cells []Cell
			for _, c := range counts {
				if c > sys.CoresPerNode() {
					cells = append(cells, val(nan, nan, "%.1f"))
					continue
				}
				res, err := nekbone.Run(nekbone.Config{
					System: sys, Nodes: 1, CoresPerNode: c, Iterations: iters,
					Instrumentation: opt.Instr(), Engine: opt.Engine,
				})
				if err != nil {
					return nil, err
				}
				cells = append(cells, val(res.GFLOPs, nan, "%.1f"))
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})

// --- Table VII: Nekbone inter-node parallel efficiency ---

var _ = register(&Experiment{
	ID:    "table7",
	Title: "Inter-node parallel efficiency across machines",
	Kind:  Table,
	Description: "Nekbone weak scaling to 16 nodes on A64FX (TofuD), " +
		"Fulhame (EDR IB) and ARCHER (Aries); PE = speedup/nodes.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 100
		if opt.Quick {
			iters = 30
		}
		refs := map[arch.ID][4]float64{}
		for sys, pes := range paper.TableVII {
			refs[arch.ID(sys)] = pes
		}
		a := &Artifact{
			ID: "table7", Title: "Nekbone inter-node parallel efficiency", Kind: Table,
			Columns: []string{"2 nodes", "4 nodes", "8 nodes", "16 nodes"},
		}
		for _, id := range []arch.ID{arch.A64FX, arch.Fulhame, arch.ARCHER} {
			sys := arch.MustGet(id)
			base, err := nekbone.Run(nekbone.Config{System: sys, Nodes: 1, Iterations: iters, FastMath: true, Instrumentation: opt.Instr(), Engine: opt.Engine})
			if err != nil {
				return nil, err
			}
			var cells []Cell
			for i, nodes := range []int{2, 4, 8, 16} {
				res, err := nekbone.Run(nekbone.Config{System: sys, Nodes: nodes, Iterations: iters, FastMath: true, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					return nil, err
				}
				pe := nekbone.ParallelEfficiency(base, res, nodes)
				cells = append(cells, val(pe, refs[id][i], "%.2f"))
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})

// --- Table VIII: COSA processes per node ---

var _ = register(&Experiment{
	ID:          "table8",
	Title:       "COSA: processes per node for each system benchmarked",
	Kind:        Table,
	Description: "One MPI process per core, all cores used.",
	Run: func(Options) (*Artifact, error) {
		refs := map[arch.ID]int{}
		for sys, v := range paper.TableVIII {
			refs[arch.ID(sys)] = v
		}
		got := cosa.ProcessesPerNode()
		a := &Artifact{
			ID: "table8", Title: "COSA processes per node", Kind: Table,
			Columns: []string{"Processes per node"},
		}
		for _, id := range arch.IDs() {
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, []Cell{
				val(float64(got[id]), float64(refs[id]), "%.0f"),
			})
		}
		return a, nil
	},
})

// --- Figure 4: COSA strong scaling ---

var _ = register(&Experiment{
	ID:    "fig4",
	Title: "COSA performance across a range of node counts (strong scaling)",
	Kind:  Figure,
	Description: "The 800-block, 4-harmonic, 3.69M-cell HB case over " +
		"1–16 nodes; A64FX needs ≥2 nodes and leads until Fulhame " +
		"overtakes at 16 via block-distribution load balance.",
	Run: func(opt Options) (*Artifact, error) {
		tc := cosa.PaperTestCase()
		if opt.Quick {
			tc.Iterations = 25
		}
		nodeCounts := []int{1, 2, 4, 8, 16}
		a := &Artifact{
			ID: "fig4", Title: "COSA strong scaling runtime (s)", Kind: Figure,
			Columns: []string{"1", "2", "4", "8", "16"},
			Notes: []string{
				"paper's figure carries no numeric labels; targets are its stated " +
					"shape: A64FX from 2 nodes, fastest until overtaken by Fulhame at 16",
				"A64FX 1-node cell empty: the 60 GB case does not fit a 32 GB node",
			},
		}
		for _, id := range arch.IDs() {
			var cells []Cell
			for _, nodes := range nodeCounts {
				res, err := cosa.Run(cosa.Config{System: arch.MustGet(id), Nodes: nodes, Case: tc, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					cells = append(cells, txt("(OOM)"))
					continue
				}
				cells = append(cells, val(res.Seconds, nan, "%.2f"))
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})

// --- Table IX: CASTEP TiN best single-node performance ---

var _ = register(&Experiment{
	ID:    "table9",
	Title: "CASTEP TiN benchmark: best single node performance comparison",
	Kind:  Table,
	Description: "SCF cycles per second at the best core count per node " +
		"(core counts must be factors or multiples of 8).",
	Run: func(opt Options) (*Artifact, error) {
		cycles := 5
		if opt.Quick {
			cycles = 2
		}
		refs := map[arch.ID]paper.TableIXRow{}
		for sys, row := range paper.TableIX {
			refs[arch.ID(sys)] = row
		}
		a := &Artifact{
			ID: "table9", Title: "CASTEP TiN best single-node performance", Kind: Table,
			Columns: []string{"Cores used", "Perf (SCF cycles/s)", "Ratio to A64FX"},
		}
		meas := map[arch.ID]castep.Result{}
		for _, id := range arch.IDs() {
			res, err := castep.Run(castep.Config{System: arch.MustGet(id), Cycles: cycles, Instrumentation: opt.Instr(), Engine: opt.Engine})
			if err != nil {
				return nil, err
			}
			meas[id] = res
		}
		base := meas[arch.A64FX].SCFCyclesPerSecond
		for _, id := range []arch.ID{arch.A64FX, arch.ARCHER, arch.NGIO, arch.Cirrus, arch.Fulhame} {
			m := meas[id]
			p := refs[id]
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, []Cell{
				val(float64(m.Cores), float64(p.Cores), "%.0f"),
				val(m.SCFCyclesPerSecond, p.SCFCyclesPerSec, "%.3f"),
				val(m.SCFCyclesPerSecond/base, p.RatioToA64FX, "%.2f"),
			})
		}
		return a, nil
	},
})

// --- Figure 5: CASTEP single-node core scaling ---

var _ = register(&Experiment{
	ID:    "fig5",
	Title: "Single node CASTEP TiN benchmark performance vs core count",
	Kind:  Figure,
	Description: "SCF cycles/s over the TiN-legal core counts on each " +
		"system (MPI only, the best configuration everywhere).",
	Run: func(opt Options) (*Artifact, error) {
		cycles := 3
		if opt.Quick {
			cycles = 1
		}
		counts := []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}
		a := &Artifact{
			ID: "fig5", Title: "CASTEP TiN single-node core scaling (SCF cycles/s)", Kind: Figure,
			Notes: []string{
				"paper's figure carries no numeric labels; Table IX pins the full-node points",
			},
		}
		for _, c := range counts {
			a.Columns = append(a.Columns, fmt.Sprintf("%d", c))
		}
		for _, id := range arch.IDs() {
			sys := arch.MustGet(id)
			legal := map[int]bool{}
			for _, c := range castep.LegalCores(sys) {
				legal[c] = true
			}
			var cells []Cell
			for _, c := range counts {
				if !legal[c] {
					cells = append(cells, val(nan, nan, "%.3f"))
					continue
				}
				res, err := castep.Run(castep.Config{System: sys, Cores: c, Cycles: cycles, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					return nil, err
				}
				cells = append(cells, val(res.SCFCyclesPerSecond, nan, "%.3f"))
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})

// --- Table X: OpenSBLI runtimes ---

var _ = register(&Experiment{
	ID:    "table10",
	Title: "OpenSBLI performance (total runtime in seconds)",
	Kind:  Table,
	Description: "Taylor-Green vortex, 64³ grid, pure MPI, fully " +
		"populated nodes, 1–8 nodes.",
	Run: func(opt Options) (*Artifact, error) {
		tc := opensbli.PaperCase()
		if opt.Quick {
			tc.Steps = 50
		}
		refs := map[arch.ID][4]float64{}
		for sys, cols := range paper.TableX {
			refs[arch.ID(sys)] = cols
		}
		a := &Artifact{
			ID: "table10", Title: "OpenSBLI total runtime (s)", Kind: Table,
			Columns: []string{"1 node", "2 nodes", "4 nodes", "8 nodes"},
			Notes: []string{
				"multi-node cells are model predictions; the simulated network is " +
					"cleaner than the real fabrics for this latency-bound 64³ case, " +
					"so the model scales somewhat better than the paper's measurements",
			},
		}
		scale := 1.0
		if opt.Quick {
			scale = float64(opensbli.PaperCase().Steps) / float64(tc.Steps)
		}
		for _, id := range []arch.ID{arch.A64FX, arch.Cirrus, arch.NGIO, arch.Fulhame} {
			var cells []Cell
			for i, nodes := range []int{1, 2, 4, 8} {
				res, err := opensbli.Run(opensbli.Config{System: arch.MustGet(id), Nodes: nodes, Case: tc, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					return nil, err
				}
				cells = append(cells, val(res.Seconds*scale, refs[id][i], "%.2f"))
			}
			a.RowLabels = append(a.RowLabels, string(id))
			a.Cells = append(a.Cells, cells)
		}
		return a, nil
	},
})
