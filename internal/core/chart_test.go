package core

import (
	"math"
	"strings"
	"testing"
)

func TestRenderChartFigure(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		ID: "figx", Title: "Chart", Kind: Figure,
		Columns:   []string{"1", "2", "4"},
		RowLabels: []string{"sysA", "sysB"},
		Cells: [][]Cell{
			{{Value: 1}, {Value: 2}, {Value: 4}},
			{{Value: 2}, {Value: 3}, {Value: math.NaN()}},
		},
	}
	out := a.RenderChart()
	if !strings.Contains(out, "FIGX") || !strings.Contains(out, "sysA") {
		t.Errorf("chart missing labels: %s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("chart missing sparkline glyphs: %s", out)
	}
	if !strings.Contains(out, "scale: 1 … 4") {
		t.Errorf("chart missing scale line: %s", out)
	}
}

func TestRenderChartTableFallsBack(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		ID: "t", Title: "T", Kind: Table,
		Columns: []string{"a"}, RowLabels: []string{"r"},
		Cells: [][]Cell{{{Value: 1}}},
	}
	if strings.ContainsAny(a.RenderChart(), "▁▂▃▄▅▆▇█") {
		t.Error("table render should not produce sparklines")
	}
}

func TestRenderChartEmpty(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		ID: "f", Title: "F", Kind: Figure,
		Columns: []string{"a"}, RowLabels: []string{"r"},
		Cells: [][]Cell{{{Text: "x"}}},
	}
	if !strings.Contains(a.RenderChart(), "no numeric data") {
		t.Error("empty figure should say so")
	}
}

func TestSparkClamping(t *testing.T) {
	t.Parallel()
	if spark(5, 0, 10) != sparkLevels[3] {
		t.Errorf("midpoint spark = %c", spark(5, 0, 10))
	}
	if spark(0, 0, 10) != sparkLevels[0] || spark(10, 0, 10) != sparkLevels[7] {
		t.Error("extremes wrong")
	}
	// Degenerate range.
	if spark(5, 5, 5) != sparkLevels[4] {
		t.Error("flat range should render mid-level")
	}
}
