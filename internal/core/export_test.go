package core

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func sampleArtifact() *Artifact {
	return &Artifact{
		ID: "t", Title: "Sample", Kind: Table,
		Columns:   []string{"a", "b"},
		RowLabels: []string{"r1", "r2"},
		Cells: [][]Cell{
			{{Value: 1.5, Paper: 1.4, Format: "%.2f"}, {Text: "x"}},
			{{Value: 2.5, Paper: math.NaN(), Format: "%.2f"}, {Value: math.NaN(), Paper: math.NaN()}},
		},
		Notes: []string{"n1"},
	}
}

func TestWriteJSON(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := sampleArtifact().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded["id"] != "t" || decoded["title"] != "Sample" {
		t.Errorf("metadata wrong: %v", decoded)
	}
	cells := decoded["cells"].([]any)
	if len(cells) != 2 {
		t.Fatalf("cells = %v", cells)
	}
	// NaN values must be omitted, not emitted (JSON has no NaN).
	if strings.Contains(buf.String(), "NaN") {
		t.Error("JSON contains NaN")
	}
	// First cell carries both value and paper.
	first := cells[0].([]any)[0].(map[string]any)
	if first["value"].(float64) != 1.5 || first["paper"].(float64) != 1.4 {
		t.Errorf("first cell = %v", first)
	}
}

func TestWriteCSV(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := sampleArtifact().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	// Header: row, a, a (paper), b, b (paper).
	if len(records) != 3 {
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "row" || records[0][1] != "a" || records[0][2] != "a (paper)" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "1.50" || records[1][2] != "1.40" {
		t.Errorf("row1 = %v", records[1])
	}
	// Text cell has empty paper column; NaN cells are empty.
	if records[1][3] != "x" || records[1][4] != "" {
		t.Errorf("text cell = %v", records[1])
	}
	if records[2][3] != "" {
		t.Errorf("NaN cell should be empty: %v", records[2])
	}
}

func TestWriteCSVNoPaperColumns(t *testing.T) {
	t.Parallel()
	a := &Artifact{
		Columns:   []string{"a"},
		RowLabels: []string{"r"},
		Cells:     [][]Cell{{{Value: 3, Paper: math.NaN()}}},
	}
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, _ := csv.NewReader(&buf).ReadAll()
	if len(records[0]) != 2 {
		t.Errorf("no-reference artifact should not grow paper columns: %v", records[0])
	}
}

func TestExtensionsRegistry(t *testing.T) {
	t.Parallel()
	exts := Extensions()
	if len(exts) < 3 {
		t.Fatalf("expected ≥3 extensions, got %d", len(exts))
	}
	ids := map[string]bool{}
	for _, e := range exts {
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("extension %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"ext-network", "ext-noise", "ext-stencil"} {
		if !ids[want] {
			t.Errorf("missing extension %s", want)
		}
	}
	if _, err := GetExtension("ext-network"); err != nil {
		t.Error(err)
	}
	if _, err := GetExtension("nope"); err == nil {
		t.Error("unknown extension should fail")
	}
	// Extensions do not leak into the paper registry.
	if _, err := Get("ext-network"); err == nil {
		t.Error("extension should not be in the paper registry")
	}
}

func TestExtNetworkRuns(t *testing.T) {
	t.Parallel()
	e, err := GetExtension("ext-network")
	if err != nil {
		t.Fatal(err)
	}
	art, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.RowLabels) != 5 {
		t.Fatalf("rows = %v", art.RowLabels)
	}
	// All fabrics within a few percent of TofuD (HPCG is latency-light).
	for i, label := range art.RowLabels {
		ratio := art.Cells[i][1].Value
		if ratio < 0.95 || ratio > 1.05 {
			t.Errorf("%s ratio = %v, expected ≈1", label, ratio)
		}
	}
}

func TestExtStencilRuns(t *testing.T) {
	t.Parallel()
	e, err := GetExtension("ext-stencil")
	if err != nil {
		t.Fatal(err)
	}
	art, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// The good-stencil scenario must be substantially faster than
	// measured.
	if ratio := art.Cells[1][1].Value; ratio > 0.6 {
		t.Errorf("good-stencil ratio = %v, expected large speedup", ratio)
	}
}

func TestExtFugakuRuns(t *testing.T) {
	t.Parallel()
	e, err := GetExtension("ext-fugaku")
	if err != nil {
		t.Fatal(err)
	}
	art, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	last := len(art.RowLabels) - 1
	if art.RowLabels[last] != "158976 nodes" {
		t.Fatalf("rows = %v", art.RowLabels)
	}
	pf := art.Cells[last][1].Value
	// The unoptimised projection lands in the single-digit PFLOP/s
	// range — below Fugaku's optimised 16 PF but within 3× of it.
	if pf < 4 || pf > 16 {
		t.Errorf("projected Fugaku HPCG = %.2f PF/s, implausible", pf)
	}
	// Efficiency stays near 1: HPCG's collectives are cheap even at
	// full scale under the TofuD model.
	if eff := art.Cells[last][2].Value; eff < 0.95 {
		t.Errorf("projected efficiency %v suspiciously low", eff)
	}
}

func TestExtNoiseRuns(t *testing.T) {
	t.Parallel()
	e, err := GetExtension("ext-noise")
	if err != nil {
		t.Fatal(err)
	}
	art, err := e.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.RowLabels) != 4 {
		t.Fatalf("rows = %v", art.RowLabels)
	}
	// PE decreases (weakly) as noise grows; the extreme level is
	// clearly below the noise-free one.
	first := art.Cells[0][0].Value
	lastV := art.Cells[len(art.Cells)-1][0].Value
	if lastV >= first {
		t.Errorf("PE should fall with noise: %v → %v", first, lastV)
	}
}
