package core

import (
	"fmt"
	"sort"
	"sync"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/hpcg"
	"a64fxbench/internal/nekbone"
	"a64fxbench/internal/opensbli"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/units"
)

// Extension experiments go beyond the paper: ablation studies on the
// design choices DESIGN.md calls out. They live in their own registry so
// the paper's 15 artifacts stay exactly the paper's 15. Unlike the paper
// registry (sealed at init), extensions may be registered at run time, so
// the map is lock-guarded.

var (
	extMu       sync.RWMutex
	extRegistry = map[string]*Experiment{}
)

func registerExt(e *Experiment) *Experiment {
	if err := RegisterExtension(e); err != nil {
		panic("core: " + err.Error())
	}
	return e
}

// RegisterExtension adds a custom ablation experiment to the extension
// registry. It is safe for concurrent use and fails on a duplicate or
// incomplete experiment.
func RegisterExtension(e *Experiment) error {
	if e == nil || e.ID == "" || e.Run == nil {
		return fmt.Errorf("core: extension needs an ID and a Run function")
	}
	extMu.Lock()
	defer extMu.Unlock()
	if _, dup := extRegistry[e.ID]; dup {
		return fmt.Errorf("core: duplicate extension %s", e.ID)
	}
	extRegistry[e.ID] = e
	return nil
}

// Extensions lists the ablation experiments, sorted by ID.
func Extensions() []*Experiment {
	extMu.RLock()
	defer extMu.RUnlock()
	var out []*Experiment
	for _, e := range extRegistry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GetExtension looks an extension up by ID.
func GetExtension(id string) (*Experiment, error) {
	extMu.RLock()
	defer extMu.RUnlock()
	if e, ok := extRegistry[id]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("core: unknown extension %q", id)
}

// --- ext-network: interconnect swap ---

var _ = registerExt(&Experiment{
	ID:    "ext-network",
	Title: "Ablation: interconnect swap on multi-node HPCG",
	Kind:  Table,
	Description: "Runs 8-node HPCG on the A64FX node model under every " +
		"fabric in the study, isolating how much of the multi-node result " +
		"the TofuD network itself contributes.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 10
		if opt.Quick {
			iters = 3
		}
		a := &Artifact{
			ID: "ext-network", Title: "A64FX nodes under each fabric (8-node HPCG GFLOP/s)",
			Kind:    Table,
			Columns: []string{"GFLOP/s", "vs TofuD"},
			Notes: []string{
				"model prediction: HPCG's halo+allreduce pattern is latency-light, " +
					"so fabric choice moves the result by only a few percent at this scale",
			},
		}
		base := arch.MustGet(arch.A64FX)
		fabrics := []struct {
			name string
			from arch.ID
		}{
			{"TofuD", arch.A64FX},
			{"Aries", arch.ARCHER},
			{"FDR InfiniBand", arch.Cirrus},
			{"OmniPath", arch.NGIO},
			{"EDR InfiniBand", arch.Fulhame},
		}
		var ref float64
		for _, f := range fabrics {
			sysID := arch.ID("A64FX+" + f.name)
			donor := arch.MustGet(f.from)
			sys, err := arch.DeriveOrGet(arch.A64FX, sysID, func(s *arch.System) {
				s.NewFabric = donor.NewFabric
			}, nil)
			if err != nil {
				return nil, err
			}
			_ = base
			res, err := hpcg.Run(hpcg.Config{System: sys, Nodes: 8, Iterations: iters, Instrumentation: opt.Instr(), Engine: opt.Engine})
			if err != nil {
				return nil, err
			}
			if f.name == "TofuD" {
				ref = res.GFLOPs
			}
			a.RowLabels = append(a.RowLabels, f.name)
			a.Cells = append(a.Cells, []Cell{
				val(res.GFLOPs, nan, "%.2f"),
				val(res.GFLOPs/ref, nan, "%.3f"),
			})
		}
		return a, nil
	},
})

// --- ext-noise: OS-noise sensitivity ---

var _ = registerExt(&Experiment{
	ID:    "ext-noise",
	Title: "Ablation: OS-noise sensitivity of weak-scaling efficiency",
	Kind:  Table,
	Description: "Sweeps the noise magnitude of the 16-node Nekbone run " +
		"to show how Table VII's parallel efficiencies depend on rare " +
		"per-rank delays amplified by bulk-synchronous collectives.",
	Run: func(opt Options) (*Artifact, error) {
		iters := 100
		if opt.Quick {
			iters = 40
		}
		a := &Artifact{
			ID: "ext-noise", Title: "Nekbone 16-node PE vs injected noise probability",
			Kind:    Table,
			Columns: []string{"16-node PE"},
			Notes: []string{
				"the calibrated production value is 1e-05 (Table VII)",
			},
		}
		sys := arch.MustGet(arch.A64FX)
		// Baseline (noise applies equally to the 1-node run).
		for _, prob := range []float64{0, 1e-6, 1e-5, 1e-4} {
			base, err := nekboneRunWithNoise(sys, 1, iters, prob, opt)
			if err != nil {
				return nil, err
			}
			scaled, err := nekboneRunWithNoise(sys, 16, iters, prob, opt)
			if err != nil {
				return nil, err
			}
			pe := base / scaled
			a.RowLabels = append(a.RowLabels, fmt.Sprintf("noise %.0e", prob))
			a.Cells = append(a.Cells, []Cell{val(pe, nan, "%.3f")})
		}
		return a, nil
	},
})

// nekboneRunWithNoise runs the metered Nekbone loop with an explicit
// noise probability, bypassing the benchmark's calibrated default.
func nekboneRunWithNoise(sys *arch.System, nodes, iters int, noise float64, opt Options) (float64, error) {
	// Reuse the public benchmark but override noise via a derived
	// system is not possible (noise lives in the job); replicate the
	// essential loop compactly instead.
	res, err := nekbone.RunWithNoise(nekbone.Config{
		System: sys, Nodes: nodes, Iterations: iters, FastMath: true,
		Instrumentation: opt.Instr(), Engine: opt.Engine,
	}, noise, units.Duration(30*units.Millisecond))
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// --- ext-stencil: what if the A64FX compiled OpenSBLI well? ---

var _ = registerExt(&Experiment{
	ID:    "ext-stencil",
	Title: "Ablation: OpenSBLI if the A64FX compiled generated stencils well",
	Kind:  Table,
	Description: "Raises the A64FX's StencilFD efficiency to the COSA " +
		"hand-written-kernel level to quantify how much of Table X's loss " +
		"is code generation rather than hardware.",
	Run: func(opt Options) (*Artifact, error) {
		tc := opensbli.PaperCase()
		if opt.Quick {
			tc.Steps = 50
		}
		a := &Artifact{
			ID: "ext-stencil", Title: "OpenSBLI 1-node runtime under stencil-efficiency scenarios",
			Kind:    Table,
			Columns: []string{"Runtime (s)", "vs measured A64FX"},
		}
		base := arch.MustGet(arch.A64FX)
		meas, err := opensbli.Run(opensbli.Config{System: base, Nodes: 1, Case: tc, Instrumentation: opt.Instr(), Engine: opt.Engine})
		if err != nil {
			return nil, err
		}
		scale := 1.0
		if opt.Quick {
			scale = float64(opensbli.PaperCase().Steps) / float64(tc.Steps)
		}
		rows := []struct {
			label string
			eff   perfmodel.Efficiency
		}{
			{"A64FX as measured (generated code)", arch.Efficiencies(arch.A64FX)[perfmodel.StencilFD]},
			{"A64FX at COSA-kernel efficiency", arch.Efficiencies(arch.A64FX)[perfmodel.FluxFV]},
			{"NGIO as measured (for reference)", arch.Efficiencies(arch.NGIO)[perfmodel.StencilFD]},
		}
		for i, r := range rows {
			var sec float64
			switch i {
			case 0:
				sec = meas.Seconds
			case 1:
				sysID := arch.ID("A64FX-goodstencil")
				// Patched calibration copy, installed atomically with
				// the derived system so concurrent sweep workers never
				// observe it with the base StencilFD efficiency.
				eff := make(map[perfmodel.KernelClass]perfmodel.Efficiency)
				for k, v := range arch.Efficiencies(arch.A64FX) {
					eff[k] = v
				}
				eff[perfmodel.StencilFD] = r.eff
				sys, err := arch.DeriveOrGet(arch.A64FX, sysID, nil, eff)
				if err != nil {
					return nil, err
				}
				res, err := opensbli.Run(opensbli.Config{System: sys, Nodes: 1, Case: tc, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					return nil, err
				}
				sec = res.Seconds
			case 2:
				res, err := opensbli.Run(opensbli.Config{System: arch.MustGet(arch.NGIO), Nodes: 1, Case: tc, Instrumentation: opt.Instr(), Engine: opt.Engine})
				if err != nil {
					return nil, err
				}
				sec = res.Seconds
			}
			a.RowLabels = append(a.RowLabels, r.label)
			a.Cells = append(a.Cells, []Cell{
				val(sec*scale, nan, "%.2f"),
				val(sec/meas.Seconds, nan, "%.2f"),
			})
		}
		return a, nil
	},
})
