package nekbone

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/decomp"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// Config describes one metered Nekbone run: weak scaling with a fixed
// per-rank element count, the paper's §VI.B setup.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Nodes is the node count (Table VII sweeps 1–16).
	Nodes int
	// CoresPerNode overrides full population (Figure 3's core sweep);
	// 0 means all cores, one MPI rank per core.
	CoresPerNode int
	// ElementsPerRank is the local element count (paper: 200, the
	// largest test case in the Nekbone repository).
	ElementsPerRank int
	// Order is the polynomial order per direction (paper: 16).
	Order int
	// Iterations is the CG iteration count (Nekbone's standard: 100).
	Iterations int
	// FastMath enables the aggressive-compiler mode (-Kfast; Table VI's
	// "fast math" column).
	FastMath bool
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

func (c *Config) defaults() error {
	if c.System == nil {
		return fmt.Errorf("nekbone: System is required")
	}
	if c.Nodes < 1 {
		c.Nodes = 1
	}
	if c.CoresPerNode == 0 {
		c.CoresPerNode = c.System.CoresPerNode()
	}
	if c.CoresPerNode < 1 || c.CoresPerNode > c.System.CoresPerNode() {
		return fmt.Errorf("nekbone: %d cores/node outside 1..%d",
			c.CoresPerNode, c.System.CoresPerNode())
	}
	if c.ElementsPerRank == 0 {
		c.ElementsPerRank = 200
	}
	if c.Order == 0 {
		c.Order = 16
	}
	if c.Order < 2 {
		return fmt.Errorf("nekbone: order must be ≥ 2, got %d", c.Order)
	}
	if c.Iterations == 0 {
		c.Iterations = 100
	}
	return nil
}

// Result is the outcome of a metered Nekbone run.
type Result struct {
	// GFLOPs is the achieved rate (Table VI's metric; node-level when
	// Nodes == 1).
	GFLOPs float64
	// Seconds is the simulated solve time.
	Seconds float64
	// Procs is the MPI rank count.
	Procs int
	// Report carries full accounting.
	Report simmpi.Report
}

// DefaultNoiseProb and DefaultNoiseDuration are the OS-noise parameters
// calibrated against Table VII's parallel efficiencies.
const DefaultNoiseProb = 1e-5

// DefaultNoiseDuration is the injected delay per noise event.
const DefaultNoiseDuration = units.Duration(30 * units.Millisecond)

// Run executes the metered Nekbone weak-scaling benchmark with the
// calibrated noise level.
func Run(cfg Config) (Result, error) {
	return RunWithNoise(cfg, DefaultNoiseProb, DefaultNoiseDuration)
}

// RunWithNoise executes the benchmark with an explicit OS-noise level,
// the knob the ext-noise ablation sweeps.
func RunWithNoise(cfg Config, noiseProb float64, noiseDur units.Duration) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	sys := cfg.System
	procs := cfg.Nodes * cfg.CoresPerNode
	grid := decomp.NewGrid3D(procs)

	n := cfg.Order
	e := float64(cfg.ElementsPerRank)
	n3 := float64(n * n * n)
	localPoints := e * n3

	// The ax kernel: element-local tensor contractions (SmallGEMM
	// class — far below the BLAS-3 blocking sweet spot, §VI.B).
	ax := perfmodel.WorkProfile{
		Class: perfmodel.SmallGEMM,
		Flops: units.Flops(e * AxFlops(n)),
		Bytes: units.Bytes(e * AxBytes(n)),
		Calls: int64(cfg.ElementsPerRank),
	}
	// Direct-stiffness summation (gather-scatter) over shared faces:
	// touch every point, exchange element-boundary data.
	dssum := perfmodel.WorkProfile{
		Class: perfmodel.GatherScatter,
		Flops: units.Flops(localPoints),
		Bytes: units.Bytes(3 * 8 * localPoints),
		Calls: 1,
	}
	dot := perfmodel.WorkProfile{
		Class: perfmodel.DotProduct,
		Flops: units.Flops(3 * localPoints), // glsc3: weighted dot
		Bytes: units.Bytes(24 * localPoints),
		Calls: 1,
	}
	axpy := perfmodel.WorkProfile{
		Class: perfmodel.VectorOp,
		Flops: units.Flops(2 * localPoints),
		Bytes: units.Bytes(24 * localPoints),
		Calls: 1,
	}

	// Halo: the faces of the rank's element block. With e elements of
	// order n, a face of the (roughly cubic) element block carries
	// e^(2/3)·n² points.
	facePoints := int(cubeRoot(e)*cubeRoot(e)*n3/float64(n) + 0.5)

	model := sys.PerRankModel(cfg.CoresPerNode, 1)
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          cfg.Nodes,
		ThreadsPerRank: 1,
		FastMath:       cfg.FastMath,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Fabric:         sys.NewFabric(cfg.Nodes),
		NoiseProb:      noiseProb,
		NoiseDuration:  noiseDur,
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("nekbone %s n=%d c=%d", sys.ID, cfg.Nodes, cfg.CoresPerNode),
	}
	cfg.Instrumentation.Apply(&job)

	haloBytes := units.Bytes(facePoints * 8)
	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		const tagHalo = 7
		for it := 0; it < cfg.Iterations; it++ {
			// One CG iteration of Nekbone: ax + dssum + 2 reductions
			// + 3 vector updates.
			r.Region("cg-iter")
			r.Region("ax")
			r.Compute(ax)
			r.EndRegion()
			// dssum: local gather-scatter plus neighbour exchange.
			r.Region("dssum")
			r.Compute(dssum)
			for f := decomp.XMinus; f < decomp.NumFaces; f++ {
				if nbr := grid.NeighborAcross(r.ID(), f); nbr >= 0 {
					r.Send(nbr, tagHalo+int(f), nil, haloBytes)
				}
			}
			for f := decomp.XMinus; f < decomp.NumFaces; f++ {
				if nbr := grid.NeighborAcross(r.ID(), f); nbr >= 0 {
					opp := f ^ 1 // faces pair as (0,1),(2,3),(4,5)
					r.Recv(nbr, tagHalo+int(opp))
				}
			}
			r.EndRegion()
			r.Compute(dot) // p·Ap
			r.AllreduceScalar(0, simmpi.OpSum)
			r.Compute(axpy) // x
			r.Compute(axpy) // r
			r.Compute(dot)  // r·r
			r.AllreduceScalar(0, simmpi.OpSum)
			r.Compute(axpy) // p
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		GFLOPs:  rep.GFLOPs(),
		Seconds: rep.Seconds(),
		Procs:   procs,
		Report:  rep,
	}, nil
}

// cubeRoot is a plain cube root for positive workload sizes.
func cubeRoot(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iteration, exact enough for sizing.
	g := x
	for i := 0; i < 60; i++ {
		g = (2*g + x/(g*g)) / 3
	}
	return g
}

// ParallelEfficiency computes Table VII's metric for a node sweep: the
// speedup over the 1-node run divided by the node count, under weak
// scaling (constant per-rank work, so PE = T₁/T_n).
func ParallelEfficiency(base Result, scaled Result, nodes int) float64 {
	if scaled.Seconds <= 0 || nodes < 1 {
		return 0
	}
	// Weak scaling: perfect efficiency keeps runtime constant.
	return base.Seconds / scaled.Seconds
}
