package nekbone

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
)

// Mesh is a row of E conforming spectral elements along x (Nekbone's
// linear geometry), each of order n on a 2×2×2 box, with element-local
// storage and direct-stiffness summation (dssum) across the shared
// faces — the real multi-element machinery behind the benchmark.
type Mesh struct {
	// E is the element count; N the points per direction.
	E, N int
	// elems holds the per-element operators (identical geometry).
	elems []*Element
	// mult is the dof multiplicity (2 on shared faces, 1 elsewhere),
	// used to weight global reductions over the redundant local
	// storage.
	mult []float64
	// x, w are the 1D GLL points and weights, kept for coordinates.
	x []float64
}

// NewMesh builds the element row. Order n must be ≥ 2, elements ≥ 1.
func NewMesh(elements, n int) (*Mesh, error) {
	if elements < 1 {
		return nil, fmt.Errorf("nekbone: need ≥1 element, got %d", elements)
	}
	e0, err := NewElement(n, 1, 1, 1)
	if err != nil {
		return nil, err
	}
	x, _, err := GLLPoints(n)
	if err != nil {
		return nil, err
	}
	m := &Mesh{E: elements, N: n, x: x}
	for e := 0; e < elements; e++ {
		m.elems = append(m.elems, e0) // identical geometry: share operators
	}
	n3 := n * n * n
	m.mult = make([]float64, elements*n3)
	for i := range m.mult {
		m.mult[i] = 1
	}
	// Shared faces: last x-plane of element e and first x-plane of e+1.
	for e := 0; e < elements-1; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				m.mult[m.idx(e, n-1, j, k)] = 2
				m.mult[m.idx(e+1, 0, j, k)] = 2
			}
		}
	}
	return m, nil
}

// Len reports the local-storage vector length E·n³.
func (m *Mesh) Len() int { return m.E * m.N * m.N * m.N }

// idx maps (element, i, j, k) to the local-storage index.
func (m *Mesh) idx(e, i, j, k int) int {
	n := m.N
	return e*n*n*n + i + n*(j+n*k)
}

// Coords returns the physical coordinates of a local dof: element e spans
// x ∈ [2e, 2e+2]; y, z ∈ [0, 2].
func (m *Mesh) Coords(e, i, j, k int) (x, y, z float64) {
	return float64(2*e+1) + m.x[i], 1 + m.x[j], 1 + m.x[k]
}

// Dssum performs direct-stiffness summation: contributions on shared
// faces are added and both copies receive the sum, restoring continuity.
func (m *Mesh) Dssum(u []float64) {
	n := m.N
	for e := 0; e < m.E-1; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				a := m.idx(e, n-1, j, k)
				b := m.idx(e+1, 0, j, k)
				s := u[a] + u[b]
				u[a] = s
				u[b] = s
			}
		}
	}
}

// Mask zeroes the dofs on the domain boundary (homogeneous Dirichlet):
// the outer x faces of the first and last elements, and the y/z faces of
// every element.
func (m *Mesh) Mask(u []float64) {
	n := m.N
	for e := 0; e < m.E; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					onBoundary := j == 0 || j == n-1 || k == 0 || k == n-1 ||
						(e == 0 && i == 0) || (e == m.E-1 && i == n-1)
					if onBoundary {
						u[m.idx(e, i, j, k)] = 0
					}
				}
			}
		}
	}
}

// Ax applies the global stiffness operator in local storage:
// element-local Ax, dssum, mask. Input must be continuous and masked.
func (m *Mesh) Ax(u, w []float64) {
	n3 := m.N * m.N * m.N
	for e := 0; e < m.E; e++ {
		m.elems[e].Ax(u[e*n3:(e+1)*n3], w[e*n3:(e+1)*n3])
	}
	m.Dssum(w)
	m.Mask(w)
}

// GDot is the global inner product over the redundant local storage:
// shared dofs are weighted by 1/multiplicity so they count once.
func (m *Mesh) GDot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i] / m.mult[i]
	}
	return s
}

// MassApply multiplies by the diagonal (lumped GLL) mass matrix in local
// storage and dssum-accumulates — the weak-form right-hand-side builder.
func (m *Mesh) MassApply(f, out []float64) {
	n3 := m.N * m.N * m.N
	for e := 0; e < m.E; e++ {
		el := m.elems[e]
		for i := 0; i < n3; i++ {
			out[e*n3+i] = el.W[i] * f[e*n3+i]
		}
	}
	m.Dssum(out)
	m.Mask(out)
}

// SolvePoisson solves -∇²u = f with homogeneous Dirichlet boundaries on
// the mesh via CG on the spectral-element system, where f is given
// pointwise. Returns the solution in local storage, iterations, and the
// final relative residual.
func (m *Mesh) SolvePoisson(f func(x, y, z float64) float64, maxIter int, tol float64) ([]float64, int, float64) {
	n := m.N
	total := m.Len()
	// Build the weak-form RHS: b = dssum(M f), masked.
	fv := make([]float64, total)
	for e := 0; e < m.E; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					x, y, z := m.Coords(e, i, j, k)
					fv[m.idx(e, i, j, k)] = f(x, y, z)
				}
			}
		}
	}
	b := make([]float64, total)
	m.MassApply(fv, b)

	x := make([]float64, total)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, total)
	rr := m.GDot(r, r)
	normB2 := rr
	if normB2 == 0 {
		return x, 0, 0
	}
	iters := 0
	for it := 0; it < maxIter; it++ {
		m.Ax(p, ap)
		pap := m.GDot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		iters = it + 1
		rrNew := m.GDot(r, r)
		if math.Sqrt(rrNew/normB2) < tol {
			rr = rrNew
			break
		}
		beta := rrNew / rr
		rr = rrNew
		linalg.Waxpby(1, r, beta, p, p)
	}
	return x, iters, math.Sqrt(rr / normB2)
}
