package nekbone

import (
	"math"
	"testing"
)

func TestMeshValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewMesh(0, 4); err == nil {
		t.Error("0 elements should fail")
	}
	if _, err := NewMesh(2, 1); err == nil {
		t.Error("order 1 should fail")
	}
	m, err := NewMesh(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3*64 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMeshMultiplicity(t *testing.T) {
	t.Parallel()
	m, _ := NewMesh(3, 4)
	// Interior of each element: multiplicity 1; shared faces: 2.
	twos := 0
	for _, v := range m.mult {
		switch v {
		case 1:
		case 2:
			twos++
		default:
			t.Fatalf("unexpected multiplicity %v", v)
		}
	}
	// 2 shared interfaces × 2 copies × 16 face points each.
	if twos != 2*2*16 {
		t.Errorf("shared dofs = %d, want %d", twos, 2*2*16)
	}
}

func TestMeshDssumContinuity(t *testing.T) {
	t.Parallel()
	m, _ := NewMesh(2, 4)
	u := make([]float64, m.Len())
	for i := range u {
		u[i] = float64(i)
	}
	m.Dssum(u)
	// Shared dofs agree after dssum.
	n := 4
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			a := m.idx(0, n-1, j, k)
			b := m.idx(1, 0, j, k)
			if u[a] != u[b] {
				t.Fatalf("discontinuity at (%d,%d): %v vs %v", j, k, u[a], u[b])
			}
		}
	}
}

func TestMeshAxSymmetric(t *testing.T) {
	t.Parallel()
	m, _ := NewMesh(3, 5)
	total := m.Len()
	mk := func(seed float64) []float64 {
		v := make([]float64, total)
		for i := range v {
			v[i] = math.Sin(seed * float64(i+1))
		}
		// Continuous, masked inputs (the operator's domain).
		m.Dssum(v)
		for i := range v {
			v[i] /= m.mult[i]
		}
		m.Mask(v)
		return v
	}
	u, v := mk(0.3), mk(0.7)
	au := make([]float64, total)
	av := make([]float64, total)
	m.Ax(u, au)
	m.Ax(v, av)
	a, b := m.GDot(v, au), m.GDot(u, av)
	if math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), 1) {
		t.Errorf("mesh operator asymmetric: %v vs %v", a, b)
	}
	if q := m.GDot(u, au); q < 0 {
		t.Errorf("u'Au = %v < 0", q)
	}
}

// TestMeshPoissonSpectralAccuracy is the strong validation: the
// spectral-element solution of -∇²u = f matches a smooth manufactured
// solution to near machine precision at modest order.
func TestMeshPoissonSpectralAccuracy(t *testing.T) {
	t.Parallel()
	const E, n = 3, 10
	m, err := NewMesh(E, n)
	if err != nil {
		t.Fatal(err)
	}
	// Domain: x ∈ [0, 2E], y,z ∈ [0,2].
	lx := float64(2 * E)
	kx := math.Pi / lx
	ky := math.Pi / 2
	uExact := func(x, y, z float64) float64 {
		return math.Sin(kx*x) * math.Sin(ky*y) * math.Sin(ky*z)
	}
	lambda := kx*kx + 2*ky*ky
	f := func(x, y, z float64) float64 { return lambda * uExact(x, y, z) }

	sol, iters, relres := m.SolvePoisson(f, 2000, 1e-12)
	if relres > 1e-11 {
		t.Fatalf("CG did not converge: %v after %d iters", relres, iters)
	}
	var maxErr float64
	for e := 0; e < E; e++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					x, y, z := m.Coords(e, i, j, k)
					d := math.Abs(sol[m.idx(e, i, j, k)] - uExact(x, y, z))
					if d > maxErr {
						maxErr = d
					}
				}
			}
		}
	}
	// Spectral accuracy: order 10 on this smooth solution is ≲1e-5.
	if maxErr > 1e-5 {
		t.Errorf("solution error %v too large for spectral order %d", maxErr, n)
	}
}

func TestMeshPoissonConvergesWithOrder(t *testing.T) {
	t.Parallel()
	// Error drops sharply as polynomial order rises (p-refinement).
	errAt := func(n int) float64 {
		m, err := NewMesh(2, n)
		if err != nil {
			t.Fatal(err)
		}
		lx := 4.0
		kx := math.Pi / lx
		ky := math.Pi / 2
		uE := func(x, y, z float64) float64 {
			return math.Sin(kx*x) * math.Sin(ky*y) * math.Sin(ky*z)
		}
		lambda := kx*kx + 2*ky*ky
		sol, _, _ := m.SolvePoisson(func(x, y, z float64) float64 { return lambda * uE(x, y, z) }, 2000, 1e-12)
		var maxErr float64
		for e := 0; e < 2; e++ {
			for k := 0; k < n; k++ {
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						x, y, z := m.Coords(e, i, j, k)
						if d := math.Abs(sol[m.idx(e, i, j, k)] - uE(x, y, z)); d > maxErr {
							maxErr = d
						}
					}
				}
			}
		}
		return maxErr
	}
	e4, e8 := errAt(4), errAt(8)
	if e8 > e4/50 {
		t.Errorf("p-refinement too weak: order 4 err %v, order 8 err %v", e4, e8)
	}
}

func TestMeshGDotCountsSharedOnce(t *testing.T) {
	t.Parallel()
	m, _ := NewMesh(2, 4)
	ones := make([]float64, m.Len())
	for i := range ones {
		ones[i] = 1
	}
	// Unique dofs: 2·4³ − 16 shared = 112.
	if got := m.GDot(ones, ones); got != 112 {
		t.Errorf("GDot = %v, want 112", got)
	}
}
