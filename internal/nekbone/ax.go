package nekbone

import (
	"fmt"

	"a64fxbench/internal/linalg"
)

// Element is one spectral element of order n (n GLL points per
// direction) on an axis-aligned box of half-extents hx, hy, hz, carrying
// the operators and geometric factors needed to apply the local
// Laplacian — Nekbone's `ax` kernel.
type Element struct {
	N int
	// D is the 1D differentiation matrix, Dt its transpose.
	D, Dt *linalg.Matrix
	// W holds the 3D quadrature weights w_i·w_j·w_k.
	W []float64
	// gx, gy, gz are the diagonal geometric factors per direction
	// (quadrature weight × metric term).
	gx, gy, gz []float64
	// scratch buffers for the tensor contractions
	ur, us, ut []float64
}

// NewElement builds an order-n element on a box with half-extents
// hx×hy×hz (1,1,1 is the reference cube).
func NewElement(n int, hx, hy, hz float64) (*Element, error) {
	if n < 2 {
		return nil, fmt.Errorf("nekbone: element order must be ≥ 2, got %d", n)
	}
	if hx <= 0 || hy <= 0 || hz <= 0 {
		return nil, fmt.Errorf("nekbone: invalid element extents %v %v %v", hx, hy, hz)
	}
	x, w, err := GLLPoints(n)
	if err != nil {
		return nil, err
	}
	_ = x
	d := DerivativeMatrix(x)
	e := &Element{
		N: n, D: d, Dt: d.T(),
		W:  make([]float64, n*n*n),
		gx: make([]float64, n*n*n),
		gy: make([]float64, n*n*n),
		gz: make([]float64, n*n*n),
		ur: make([]float64, n*n*n),
		us: make([]float64, n*n*n),
		ut: make([]float64, n*n*n),
	}
	// Geometric factors for a box element: the Jacobian is diagonal
	// with J = hx·hy·hz and dr/dx = 1/hx etc., so the stiffness factor
	// in direction x is w3·J/hx².
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				idx := i + n*(j+n*k)
				w3 := w[i] * w[j] * w[k]
				jac := hx * hy * hz
				e.W[idx] = w3 * jac
				e.gx[idx] = w3 * jac / (hx * hx)
				e.gy[idx] = w3 * jac / (hy * hy)
				e.gz[idx] = w3 * jac / (hz * hz)
			}
		}
	}
	return e, nil
}

// Points reports n³, the local degrees of freedom.
func (e *Element) Points() int { return e.N * e.N * e.N }

// Ax applies the element Laplacian: w = A_e·u, the tensor-product
// evaluation w = Σ_d Dᵀ_d (G_d ⊙ (D_d u)). This is Nekbone's dominant
// kernel (>75% of runtime per §VI.B).
func (e *Element) Ax(u, w []float64) {
	n := e.N
	if len(u) != n*n*n || len(w) != n*n*n {
		panic("nekbone: Ax field length mismatch")
	}
	// Local gradient.
	linalg.TensorApply3D(e.D, u, e.ur, n, 0)
	linalg.TensorApply3D(e.D, u, e.us, n, 1)
	linalg.TensorApply3D(e.D, u, e.ut, n, 2)
	// Scale by geometric factors.
	for i := range e.ur {
		e.ur[i] *= e.gx[i]
		e.us[i] *= e.gy[i]
		e.ut[i] *= e.gz[i]
	}
	// Transposed gradient, accumulated.
	linalg.TensorApply3D(e.Dt, e.ur, w, n, 0)
	tmp := e.ur // reuse as scratch
	linalg.TensorApply3D(e.Dt, e.us, tmp, n, 1)
	linalg.Axpy(1, tmp, w)
	linalg.TensorApply3D(e.Dt, e.ut, tmp, n, 2)
	linalg.Axpy(1, tmp, w)
}

// AxFlops reports the flop count of one Ax call: six n⁴-point tensor
// contractions plus the pointwise scaling and accumulations.
func AxFlops(n int) float64 {
	nn := float64(n)
	n3 := nn * nn * nn
	return 6*linalg.TensorApply3DFlops(n) + 3*n3 + 2*2*n3
}

// AxBytes estimates the main-memory traffic of one Ax call: u in, w out,
// three geometric factor arrays and the intermediate gradient fields
// streamed once each (the operator matrices stay cache resident).
func AxBytes(n int) float64 {
	n3 := float64(n * n * n)
	return 8 * n3 * 8
}

// MaskBoundary zeroes the outer shell of an element field — the homogeneous
// Dirichlet mask Nekbone applies to pin the Poisson solve.
func MaskBoundary(u []float64, n int) {
	idx := func(i, j, k int) int { return i + n*(j+n*k) }
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if i == 0 || i == n-1 || j == 0 || j == n-1 || k == 0 || k == n-1 {
					u[idx(i, j, k)] = 0
				}
			}
		}
	}
}

// SolveElementPoisson runs the validation-scale Nekbone algorithm: CG on
// a single masked element, returning iterations and the final relative
// residual. It demonstrates that the ax kernel drives a working solver.
func SolveElementPoisson(e *Element, b []float64, maxIter int, tol float64) ([]float64, int, float64) {
	n3 := e.Points()
	if len(b) != n3 {
		panic("nekbone: rhs length mismatch")
	}
	rhs := append([]float64(nil), b...)
	MaskBoundary(rhs, e.N)

	x := make([]float64, n3)
	r := append([]float64(nil), rhs...)
	p := append([]float64(nil), r...)
	ap := make([]float64, n3)

	normB := linalg.Norm2(rhs)
	if normB == 0 {
		return x, 0, 0
	}
	rr := linalg.Dot(r, r)
	iters := 0
	for it := 0; it < maxIter; it++ {
		e.Ax(p, ap)
		MaskBoundary(ap, e.N)
		pap := linalg.Dot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		linalg.Axpy(alpha, p, x)
		linalg.Axpy(-alpha, ap, r)
		iters = it + 1
		rrNew := linalg.Dot(r, r)
		if rrNew/(normB*normB) < tol*tol {
			rr = rrNew
			break
		}
		beta := rrNew / rr
		rr = rrNew
		linalg.Waxpby(1, r, beta, p, p)
	}
	res := linalg.Norm2(r) / normB
	return x, iters, res
}
