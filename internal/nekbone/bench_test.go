package nekbone

import (
	"fmt"
	"testing"

	"a64fxbench/internal/arch"
)

// BenchmarkAx runs the real spectral-element operator at the paper's
// order (16) and a smaller one for scaling reference.
func BenchmarkAx(b *testing.B) {
	for _, n := range []int{8, 16} {
		b.Run(fmt.Sprintf("order=%d", n), func(b *testing.B) {
			e, err := NewElement(n, 1, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			u := make([]float64, e.Points())
			w := make([]float64, e.Points())
			for i := range u {
				u[i] = float64(i % 17)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Ax(u, w)
			}
			b.ReportMetric(AxFlops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

func BenchmarkElementPoissonSolve(b *testing.B) {
	e, err := NewElement(8, 1, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, e.Points())
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveElementPoisson(e, rhs, 50, 1e-6)
	}
}

func BenchmarkGLLPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := GLLPoints(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeteredNode measures the simulation cost of a full node-level
// metered Nekbone run (not the modelled machine time — the wall time of
// the simulator itself).
func BenchmarkMeteredNode(b *testing.B) {
	cfg := Config{System: benchSystem(b), Nodes: 1, Iterations: 10}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSystem fetches the A64FX model for simulator-cost benchmarks.
func benchSystem(b *testing.B) *arch.System {
	b.Helper()
	return arch.MustGet(arch.A64FX)
}
