// Package nekbone implements the Nekbone mini-app: the principal
// computational kernel of the Nek5000 spectral-element Navier-Stokes
// solver — a conjugate-gradient Poisson solve whose `ax` kernel applies
// the element-local stiffness operator with small tensor-product
// contractions (§VI.B of the paper).
//
// The element operator is real spectral-element numerics on
// Gauss-Lobatto-Legendre points, validated in the tests; the benchmark
// runs (Table VI node performance with and without fast math, Figure 3
// single-node core scaling, Table VII inter-node parallel efficiency)
// meter that kernel at the paper's configuration: 200 local elements of
// polynomial order 16×16×16 per rank, weak scaling.
package nekbone

import (
	"fmt"
	"math"

	"a64fxbench/internal/linalg"
)

// legendre evaluates the Legendre polynomial P_n and its derivative at x
// using the three-term recurrence.
func legendre(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	pPrev, p := 1.0, x
	dpPrev, dp := 0.0, 1.0
	for k := 2; k <= n; k++ {
		fk := float64(k)
		pNext := ((2*fk-1)*x*p - (fk-1)*pPrev) / fk
		dpNext := dpPrev + (2*fk-1)*p
		pPrev, p = p, pNext
		dpPrev, dp = dp, dpNext
	}
	return p, dp
}

// GLLPoints returns the n Gauss-Lobatto-Legendre nodes on [-1, 1] and
// their quadrature weights. n must be ≥ 2.
func GLLPoints(n int) (x, w []float64, err error) {
	if n < 2 {
		return nil, nil, fmt.Errorf("nekbone: need ≥2 GLL points, got %d", n)
	}
	N := n - 1
	x = make([]float64, n)
	w = make([]float64, n)
	x[0], x[n-1] = -1, 1
	// Interior nodes: roots of P'_N, bracketed by Chebyshev initial
	// guesses and polished with Newton on (1-x²)P'_N(x).
	for i := 1; i < n-1; i++ {
		xi := math.Cos(math.Pi * float64(i) / float64(N))
		xi = -xi // ascending order
		for it := 0; it < 100; it++ {
			_, dp := legendre(N, xi)
			// f = (1-x²) P'_N; f' = -2x P'_N + (1-x²) P''_N.
			// Use the Legendre ODE: (1-x²)P'' = 2xP' - N(N+1)P.
			p, _ := legendre(N, xi)
			f := (1 - xi*xi) * dp
			fp := -2*xi*dp + (2*xi*dp - float64(N)*float64(N+1)*p)
			if fp == 0 {
				break
			}
			step := f / fp
			xi -= step
			if math.Abs(step) < 1e-15 {
				break
			}
		}
		x[i] = xi
	}
	for i := 0; i < n; i++ {
		p, _ := legendre(N, x[i])
		w[i] = 2 / (float64(N) * float64(N+1) * p * p)
	}
	return x, w, nil
}

// DerivativeMatrix builds the n×n spectral differentiation matrix on the
// GLL nodes: (D u)_i = u'(x_i) for polynomial interpolants.
func DerivativeMatrix(x []float64) *linalg.Matrix {
	n := len(x)
	N := n - 1
	d := linalg.NewMatrix(n, n)
	pn := make([]float64, n)
	for i := range x {
		pn[i], _ = legendre(N, x[i])
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i == j && i == 0:
				d.Set(i, j, -float64(N)*float64(N+1)/4)
			case i == j && i == N:
				d.Set(i, j, float64(N)*float64(N+1)/4)
			case i == j:
				d.Set(i, j, 0)
			default:
				d.Set(i, j, pn[i]/(pn[j]*(x[i]-x[j])))
			}
		}
	}
	return d
}
