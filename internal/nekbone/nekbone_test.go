package nekbone

import (
	"math"
	"testing"
	"testing/quick"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/linalg"
)

// --- GLL machinery ---

func TestGLLPointsSmall(t *testing.T) {
	t.Parallel()
	// n=2: endpoints only, weights 1,1.
	x, w, err := GLLPoints(2)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != -1 || x[1] != 1 || w[0] != 1 || w[1] != 1 {
		t.Errorf("n=2 GLL wrong: x=%v w=%v", x, w)
	}
	// n=3: -1, 0, 1 with weights 1/3, 4/3, 1/3.
	x, w, _ = GLLPoints(3)
	if math.Abs(x[1]) > 1e-14 {
		t.Errorf("n=3 midpoint = %v", x[1])
	}
	if math.Abs(w[0]-1.0/3) > 1e-14 || math.Abs(w[1]-4.0/3) > 1e-14 {
		t.Errorf("n=3 weights = %v", w)
	}
	if _, _, err := GLLPoints(1); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestGLLQuadratureExact(t *testing.T) {
	t.Parallel()
	// n-point GLL integrates polynomials up to degree 2n-3 exactly.
	x, w, err := GLLPoints(6)
	if err != nil {
		t.Fatal(err)
	}
	// ∫₋₁¹ t^k dt = 0 (odd) or 2/(k+1) (even).
	for k := 0; k <= 2*6-3; k++ {
		var s float64
		for i := range x {
			s += w[i] * math.Pow(x[i], float64(k))
		}
		want := 0.0
		if k%2 == 0 {
			want = 2 / float64(k+1)
		}
		if math.Abs(s-want) > 1e-12 {
			t.Errorf("degree %d: quadrature %v, want %v", k, s, want)
		}
	}
}

func TestGLLWeightsSumToTwo(t *testing.T) {
	t.Parallel()
	for n := 2; n <= 17; n++ {
		_, w, err := GLLPoints(n)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range w {
			s += v
		}
		if math.Abs(s-2) > 1e-12 {
			t.Errorf("n=%d: weights sum %v", n, s)
		}
	}
}

func TestDerivativeMatrixExactOnPolynomials(t *testing.T) {
	t.Parallel()
	n := 8
	x, _, err := GLLPoints(n)
	if err != nil {
		t.Fatal(err)
	}
	d := DerivativeMatrix(x)
	// Differentiate t³ - 2t: derivative 3t² - 2, exact for degree < n.
	u := make([]float64, n)
	want := make([]float64, n)
	for i, xi := range x {
		u[i] = xi*xi*xi - 2*xi
		want[i] = 3*xi*xi - 2
	}
	got := make([]float64, n)
	d.MulVec(u, got)
	if diff := linalg.AbsDiffMax(got, want); diff > 1e-11 {
		t.Errorf("derivative error %v", diff)
	}
	// Derivative of a constant is zero.
	linalg.Fill(u, 7)
	d.MulVec(u, got)
	if linalg.MaxAbs(got) > 1e-11 {
		t.Errorf("constant derivative %v", linalg.MaxAbs(got))
	}
}

// --- Element operator ---

func TestAxAnnihilatesConstants(t *testing.T) {
	t.Parallel()
	// The Laplacian of a constant field is zero (pure Neumann operator).
	e, err := NewElement(8, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	u := make([]float64, e.Points())
	linalg.Fill(u, 3.5)
	w := make([]float64, e.Points())
	e.Ax(u, w)
	if m := linalg.MaxAbs(w); m > 1e-10 {
		t.Errorf("Ax(const) = %v, want 0", m)
	}
}

func TestAxSymmetric(t *testing.T) {
	t.Parallel()
	// v'Au == u'Av for the self-adjoint operator.
	e, err := NewElement(5, 1, 0.7, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	n3 := e.Points()
	u := make([]float64, n3)
	v := make([]float64, n3)
	for i := range u {
		u[i] = math.Sin(float64(i) * 0.3)
		v[i] = math.Cos(float64(i) * 0.7)
	}
	au := make([]float64, n3)
	av := make([]float64, n3)
	e.Ax(u, au)
	e.Ax(v, av)
	a, b := linalg.Dot(v, au), linalg.Dot(u, av)
	if math.Abs(a-b) > 1e-9*math.Max(math.Abs(a), 1) {
		t.Errorf("asymmetry: %v vs %v", a, b)
	}
}

func TestAxPositiveSemiDefinite(t *testing.T) {
	t.Parallel()
	e, _ := NewElement(6, 1, 1, 1)
	n3 := e.Points()
	f := func(seed int64) bool {
		u := make([]float64, n3)
		s := seed
		for i := range u {
			s = s*6364136223846793005 + 1442695040888963407
			u[i] = float64(s%1000)/500 - 1
		}
		w := make([]float64, n3)
		e.Ax(u, w)
		return linalg.Dot(u, w) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestElementPoissonSolve(t *testing.T) {
	t.Parallel()
	// CG with the real ax kernel converges on the masked element.
	e, err := NewElement(8, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	n3 := e.Points()
	b := make([]float64, n3)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.21)
	}
	_, iters, res := SolveElementPoisson(e, b, 500, 1e-9)
	if res > 1e-9 {
		t.Errorf("CG residual %v after %d iters", res, iters)
	}
}

func TestNewElementValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewElement(1, 1, 1, 1); err == nil {
		t.Error("order 1 should fail")
	}
	if _, err := NewElement(4, 0, 1, 1); err == nil {
		t.Error("zero extent should fail")
	}
}

func TestAxFlopsAndBytes(t *testing.T) {
	t.Parallel()
	if AxFlops(2) <= 0 || AxBytes(2) <= 0 {
		t.Error("work formulas must be positive")
	}
	// Flops grow like n⁴, bytes like n³.
	if AxFlops(16)/AxFlops(8) < 12 {
		t.Errorf("flops growth %v, expected ≈16", AxFlops(16)/AxFlops(8))
	}
	if r := AxBytes(16) / AxBytes(8); r != 8 {
		t.Errorf("bytes growth %v, expected 8", r)
	}
}

// --- Metered benchmark ---

// paperTable6 is the paper's node-level Nekbone performance.
var paperTable6 = map[arch.ID]struct{ plain, fast float64 }{
	arch.A64FX:   {175.74, 312.34},
	arch.NGIO:    {127.19, 90.37},
	arch.Fulhame: {121.63, 132.65},
	arch.ARCHER:  {66.55, 68.22},
}

func TestTableVINodePerformance(t *testing.T) {
	t.Parallel()
	for id, want := range paperTable6 {
		sys := arch.MustGet(id)
		plain, err := Run(Config{System: sys, Nodes: 1, Iterations: 20})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rel := math.Abs(plain.GFLOPs-want.plain) / want.plain; rel > 0.08 {
			t.Errorf("%s plain = %.2f GF/s, paper %.2f", id, plain.GFLOPs, want.plain)
		}
		fast, err := Run(Config{System: sys, Nodes: 1, Iterations: 20, FastMath: true})
		if err != nil {
			t.Fatalf("%s fast: %v", id, err)
		}
		if rel := math.Abs(fast.GFLOPs-want.fast) / want.fast; rel > 0.08 {
			t.Errorf("%s fast = %.2f GF/s, paper %.2f", id, fast.GFLOPs, want.fast)
		}
	}
}

func TestFastMathDirections(t *testing.T) {
	t.Parallel()
	// -Kfast transforms A64FX performance; the NGIO equivalent hurts.
	a, _ := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 10})
	af, _ := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 10, FastMath: true})
	if af.GFLOPs < 1.5*a.GFLOPs {
		t.Errorf("A64FX fast-math gain too small: %v → %v", a.GFLOPs, af.GFLOPs)
	}
	n, _ := Run(Config{System: arch.MustGet(arch.NGIO), Nodes: 1, Iterations: 10})
	nf, _ := Run(Config{System: arch.MustGet(arch.NGIO), Nodes: 1, Iterations: 10, FastMath: true})
	if nf.GFLOPs >= n.GFLOPs {
		t.Errorf("NGIO fast math should hurt: %v → %v", n.GFLOPs, nf.GFLOPs)
	}
}

func TestGPUComparisonClaim(t *testing.T) {
	t.Parallel()
	// §VI.B.1: at 312 GFLOP/s the A64FX with fast math sits between a
	// P100 (~200) and above a V100 (~300).
	fast, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1, Iterations: 20, FastMath: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.GFLOPs < 290 || fast.GFLOPs > 340 {
		t.Errorf("A64FX fast = %.1f GF/s, paper reports 312.34", fast.GFLOPs)
	}
}

func TestTableVIIParallelEfficiency(t *testing.T) {
	t.Parallel()
	// Weak-scaling PE stays ≥0.93 out to 16 nodes and declines with
	// node count, as in Table VII.
	for _, id := range []arch.ID{arch.A64FX, arch.Fulhame, arch.ARCHER} {
		sys := arch.MustGet(id)
		base, err := Run(Config{System: sys, Nodes: 1, Iterations: 50, FastMath: true})
		if err != nil {
			t.Fatal(err)
		}
		prev := 1.01
		for _, nodes := range []int{2, 4, 8, 16} {
			r, err := Run(Config{System: sys, Nodes: nodes, Iterations: 50, FastMath: true})
			if err != nil {
				t.Fatal(err)
			}
			pe := ParallelEfficiency(base, r, nodes)
			if pe < 0.90 || pe > 1.001 {
				t.Errorf("%s %d nodes: PE = %.3f outside Table VII range", id, nodes, pe)
			}
			if pe > prev+0.03 {
				t.Errorf("%s PE increased markedly with scale: %v → %v", id, prev, pe)
			}
			prev = pe
		}
	}
}

func TestFigure3CoreScaling(t *testing.T) {
	t.Parallel()
	// Weak scaling over cores: node throughput must increase with
	// cores on every system.
	for _, id := range arch.IDs() {
		sys := arch.MustGet(id)
		var prev float64
		for _, c := range []int{1, 2, 4, 8, sys.CoresPerNode()} {
			r, err := Run(Config{System: sys, Nodes: 1, CoresPerNode: c, Iterations: 5})
			if err != nil {
				t.Fatal(err)
			}
			if r.GFLOPs <= prev {
				t.Errorf("%s at %d cores: %.1f GF/s not above %.1f", id, c, r.GFLOPs, prev)
			}
			prev = r.GFLOPs
		}
	}
}

func TestFigure3IntelTailsOff(t *testing.T) {
	t.Parallel()
	// Per-core efficiency at full node vs single core: the Arm chips
	// hold their per-core rate better than the Intel chips (§VI.B.1).
	ratio := func(id arch.ID) float64 {
		sys := arch.MustGet(id)
		one, err := Run(Config{System: sys, Nodes: 1, CoresPerNode: 1, Iterations: 5})
		if err != nil {
			t.Fatal(err)
		}
		full, err := Run(Config{System: sys, Nodes: 1, Iterations: 5})
		if err != nil {
			t.Fatal(err)
		}
		perCoreFull := full.GFLOPs / float64(sys.CoresPerNode())
		return perCoreFull / one.GFLOPs
	}
	a64fx, archer, ngio := ratio(arch.A64FX), ratio(arch.ARCHER), ratio(arch.NGIO)
	if a64fx < archer || a64fx < ngio {
		t.Errorf("A64FX per-core retention (%.2f) should beat Intel (%.2f, %.2f)",
			a64fx, archer, ngio)
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
	sys := arch.MustGet(arch.A64FX)
	if _, err := Run(Config{System: sys, CoresPerNode: 99}); err == nil {
		t.Error("too many cores should fail")
	}
	if _, err := Run(Config{System: sys, Order: 1}); err == nil {
		t.Error("order 1 should fail")
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	cfg := Config{System: arch.MustGet(arch.Fulhame), Nodes: 2, Iterations: 10}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds != b.Seconds || a.GFLOPs != b.GFLOPs {
		t.Error("nondeterministic run")
	}
}
