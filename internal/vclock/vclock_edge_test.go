package vclock

// Edge cases the discrete-event engine leans on: zero-duration
// advances, advancing exactly to the current instant, and equal-time
// comparisons. A clock that drifted (or accounted) on any of these
// would silently diverge the two simmpi engines.

import (
	"testing"

	"a64fxbench/internal/units"
)

func TestZeroAdvanceIsIdentity(t *testing.T) {
	t.Parallel()
	c := NewClock()
	c.Advance(units.Millisecond)
	now, busy, wait := c.Now(), c.BusyTime(), c.WaitTime()
	for i := 0; i < 3; i++ {
		c.Advance(0)
	}
	if c.Now() != now || c.BusyTime() != busy || c.WaitTime() != wait {
		t.Fatalf("Advance(0) changed state: now %v busy %v wait %v", c.Now(), c.BusyTime(), c.WaitTime())
	}
}

func TestAdvanceToExactlyNow(t *testing.T) {
	t.Parallel()
	c := NewClock()
	c.Advance(units.Millisecond)
	// A message available at exactly the receiver's current instant —
	// the equal-virtual-time rendezvous — must add zero wait.
	c.AdvanceTo(c.Now())
	if c.WaitTime() != 0 {
		t.Fatalf("AdvanceTo(now) accounted wait %v", c.WaitTime())
	}
	// ... and to the past likewise.
	c.AdvanceTo(c.Now() - Time(units.Microsecond))
	if c.WaitTime() != 0 || c.Now() != Time(units.Millisecond) {
		t.Fatalf("AdvanceTo(past) moved the clock: now %v wait %v", c.Now(), c.WaitTime())
	}
}

func TestMaxTies(t *testing.T) {
	t.Parallel()
	a := Time(units.Second)
	if Max(a, a) != a {
		t.Fatal("Max of equal times must return that time")
	}
	if Max(0, 0) != 0 {
		t.Fatal("Max(0, 0) != 0")
	}
}

// TestInterleavedZeroAndRealAdvances replays the exact pattern the
// event engine's heap produces when many ranks tie at one instant:
// alternating zero-cost and real advances must account the same as the
// collapsed sequence.
func TestInterleavedZeroAndRealAdvances(t *testing.T) {
	t.Parallel()
	a, b := NewClock(), NewClock()
	for i := 0; i < 10; i++ {
		a.Advance(0)
		a.Advance(units.Microsecond)
		a.Advance(0)
		a.AdvanceTo(a.Now()) // zero-wait rendezvous
	}
	b.Advance(10 * units.Microsecond)
	if a.Now() != b.Now() || a.BusyTime() != b.BusyTime() || a.WaitTime() != b.WaitTime() {
		t.Fatalf("interleaved: now %v busy %v wait %v; collapsed: now %v busy %v wait %v",
			a.Now(), a.BusyTime(), a.WaitTime(), b.Now(), b.BusyTime(), b.WaitTime())
	}
}
