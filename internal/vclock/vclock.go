// Package vclock implements the virtual-time machinery for the simulator.
//
// Every simulated MPI rank owns a Clock that advances only through explicit
// Advance calls (compute phases) or AdvanceTo calls (synchronisation with
// messages from other ranks). Because ranks execute as goroutines in real
// time but account in virtual time, causality is maintained purely through
// the message-coupling rule: a receive completes at
//
//	max(receiver clock, sender clock at send + transfer time)
//
// which is the standard conservative parallel-discrete-event-simulation
// rule for a system whose only inter-rank dependencies are messages.
package vclock

import (
	"fmt"
	"sync"

	"a64fxbench/internal/units"
)

// Time is an absolute virtual timestamp, measured from the start of the
// simulated job.
type Time units.Duration

// Seconds reports the timestamp as seconds since job start.
func (t Time) Seconds() float64 { return units.Duration(t).Seconds() }

// String formats the timestamp as a duration from job start.
func (t Time) String() string { return units.Duration(t).String() }

// Add returns the timestamp shifted by d.
func (t Time) Add(d units.Duration) Time { return t + Time(d) }

// Max returns the later of two timestamps.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is one simulated rank's notion of time. It is not safe for
// concurrent use by multiple goroutines; each rank goroutine owns its clock
// exclusively, and cross-rank reads happen only through message timestamps.
type Clock struct {
	now Time
	// busy accumulates time spent in compute phases, wait accumulates
	// time spent blocked on communication; the two partition total time
	// and drive the profiler output.
	busy units.Duration
	wait units.Duration
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by a compute-phase duration.
// Negative durations are a programming error and panic.
func (c *Clock) Advance(d units.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("vclock: negative advance %v", d))
	}
	c.now = c.now.Add(d)
	c.busy += d
}

// AdvanceTo moves the clock to at least t, recording any jump as
// communication wait time. Moving to a time in the past is a no-op (the
// rank was simply ahead of the message).
func (c *Clock) AdvanceTo(t Time) {
	if t <= c.now {
		return
	}
	c.wait += units.Duration(t - c.now)
	c.now = t
}

// BusyTime reports cumulative compute time.
func (c *Clock) BusyTime() units.Duration { return c.busy }

// WaitTime reports cumulative communication-wait time.
func (c *Clock) WaitTime() units.Duration { return c.wait }

// Reset returns the clock to time zero and clears the accumulators.
func (c *Clock) Reset() { *c = Clock{} }

// Stamp couples a payload with the virtual time at which it becomes
// available to a receiver. It is the unit of virtual-time information
// carried by every simulated message.
type Stamp struct {
	// Available is the virtual time at which the message is fully
	// delivered: send time + network transfer cost.
	Available Time
}

// Frontier tracks the maximum virtual time observed across a set of ranks.
// It is safe for concurrent use; ranks report their finish times as they
// complete, and the caller reads the overall makespan afterwards.
type Frontier struct {
	mu  sync.Mutex
	max Time
	n   int
	sum float64
}

// Observe records a rank's finishing time.
func (f *Frontier) Observe(t Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if t > f.max {
		f.max = t
	}
	f.n++
	f.sum += t.Seconds()
}

// Makespan returns the latest observed time — the simulated job duration.
func (f *Frontier) Makespan() Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.max
}

// MeanSeconds returns the average of observed finish times in seconds,
// useful for load-imbalance diagnostics. Zero if nothing was observed.
func (f *Frontier) MeanSeconds() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n == 0 {
		return 0
	}
	return f.sum / float64(f.n)
}

// Count reports how many observations were recorded.
func (f *Frontier) Count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}
