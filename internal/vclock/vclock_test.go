package vclock

import (
	"sync"
	"testing"
	"testing/quick"

	"a64fxbench/internal/units"
)

func TestClockAdvance(t *testing.T) {
	t.Parallel()
	c := NewClock()
	c.Advance(units.DurationFromSeconds(1.5))
	c.Advance(units.DurationFromSeconds(0.5))
	if got := c.Now().Seconds(); got != 2.0 {
		t.Errorf("Now = %v s, want 2", got)
	}
	if got := c.BusyTime().Seconds(); got != 2.0 {
		t.Errorf("BusyTime = %v s, want 2", got)
	}
	if c.WaitTime() != 0 {
		t.Errorf("WaitTime = %v, want 0", c.WaitTime())
	}
}

func TestClockAdvanceTo(t *testing.T) {
	t.Parallel()
	c := NewClock()
	c.Advance(units.Second)
	// Jump forward: wait time recorded.
	c.AdvanceTo(Time(3 * units.Second))
	if got := c.Now().Seconds(); got != 3.0 {
		t.Errorf("Now = %v, want 3", got)
	}
	if got := c.WaitTime().Seconds(); got != 2.0 {
		t.Errorf("WaitTime = %v, want 2", got)
	}
	// Jump backward: no-op.
	c.AdvanceTo(Time(units.Second))
	if got := c.Now().Seconds(); got != 3.0 {
		t.Errorf("Now after past AdvanceTo = %v, want 3", got)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	t.Parallel()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	NewClock().Advance(-units.Second)
}

func TestClockReset(t *testing.T) {
	t.Parallel()
	c := NewClock()
	c.Advance(units.Second)
	c.AdvanceTo(Time(5 * units.Second))
	c.Reset()
	if c.Now() != 0 || c.BusyTime() != 0 || c.WaitTime() != 0 {
		t.Error("Reset did not clear clock state")
	}
}

func TestMax(t *testing.T) {
	t.Parallel()
	a, b := Time(units.Second), Time(2*units.Second)
	if Max(a, b) != b || Max(b, a) != b || Max(a, a) != a {
		t.Error("Max is wrong")
	}
}

func TestFrontier(t *testing.T) {
	t.Parallel()
	var f Frontier
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Observe(Time(units.Duration(i) * units.Second))
		}(i)
	}
	wg.Wait()
	if got := f.Makespan().Seconds(); got != 8.0 {
		t.Errorf("Makespan = %v, want 8", got)
	}
	if got := f.MeanSeconds(); got != 4.5 {
		t.Errorf("MeanSeconds = %v, want 4.5", got)
	}
	if f.Count() != 8 {
		t.Errorf("Count = %d, want 8", f.Count())
	}
}

func TestFrontierEmpty(t *testing.T) {
	t.Parallel()
	var f Frontier
	if f.MeanSeconds() != 0 || f.Makespan() != 0 || f.Count() != 0 {
		t.Error("empty frontier should be all zero")
	}
}

// Property: clock time is always busy+wait partitioned — Now equals the sum
// of busy and wait accumulation for any interleaving of operations.
func TestClockPartitionProperty(t *testing.T) {
	t.Parallel()
	f := func(steps []uint16) bool {
		c := NewClock()
		for i, s := range steps {
			d := units.Duration(s) * units.Microsecond
			if i%2 == 0 {
				c.Advance(d)
			} else {
				c.AdvanceTo(c.Now().Add(d))
			}
		}
		return units.Duration(c.Now()) == c.BusyTime()+c.WaitTime()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AdvanceTo is idempotent and monotone.
func TestAdvanceToMonotoneProperty(t *testing.T) {
	t.Parallel()
	f := func(a, b uint32) bool {
		c := NewClock()
		ta := Time(units.Duration(a) * units.Microsecond)
		tb := Time(units.Duration(b) * units.Microsecond)
		c.AdvanceTo(ta)
		c.AdvanceTo(tb)
		want := Max(ta, tb)
		return c.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
