// Package opensbli implements the OpenSBLI benchmark: a finite-difference
// compressible Navier-Stokes solver (OpenSBLI generates C code via the
// OPS library; the workload here is its Taylor-Green vortex test case,
// §VII.C of the paper).
//
// A real 3D compressible solver — conservative form, central differences,
// low-storage third-order Runge-Kutta, periodic Taylor-Green vortex
// initial condition — is implemented and validated in the tests (mass
// conservation to round-off, kinetic-energy decay). The metered benchmark
// reproduces Table X: total runtime of the 64³ strong-scaling case on
// 1–8 nodes of each system, where the A64FX notably underperforms.
package opensbli

import (
	"fmt"
	"math"
)

// State holds the five conservative fields on an n³ periodic grid,
// x-fastest.
type State struct {
	N                  int
	Rho, MX, MY, MZ, E []float64
}

// NewState allocates a zeroed state.
func NewState(n int) *State {
	if n < 4 {
		panic(fmt.Sprintf("opensbli: grid %d too small", n))
	}
	n3 := n * n * n
	return &State{
		N: n, Rho: make([]float64, n3),
		MX: make([]float64, n3), MY: make([]float64, n3), MZ: make([]float64, n3),
		E: make([]float64, n3),
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState(s.N)
	copy(c.Rho, s.Rho)
	copy(c.MX, s.MX)
	copy(c.MY, s.MY)
	copy(c.MZ, s.MZ)
	copy(c.E, s.E)
	return c
}

// Solver integrates the compressible Navier-Stokes equations on a
// periodic cube of length 2π with 2nd-order central differences in space
// (conservative form) and low-storage RK3 in time.
type Solver struct {
	N     int
	Gamma float64 // ratio of specific heats
	Mu    float64 // dynamic viscosity
	DX    float64
	S     *State
	// scratch states
	rhs *State
	tmp *State
}

// NewSolver builds a solver on an n³ grid with the given gas constants.
func NewSolver(n int, gamma, mu float64) (*Solver, error) {
	if n < 4 {
		return nil, fmt.Errorf("opensbli: grid %d too small", n)
	}
	if gamma <= 1 || mu < 0 {
		return nil, fmt.Errorf("opensbli: invalid gas parameters γ=%v µ=%v", gamma, mu)
	}
	return &Solver{
		N: n, Gamma: gamma, Mu: mu,
		DX:  2 * math.Pi / float64(n),
		S:   NewState(n),
		rhs: NewState(n),
		tmp: NewState(n),
	}, nil
}

// InitTaylorGreen sets the classic TGV initial condition at Mach number
// ma and reference density 1.
func (s *Solver) InitTaylorGreen(ma float64) {
	n := s.N
	p0 := 1 / (s.Gamma * ma * ma)
	for k := 0; k < n; k++ {
		z := float64(k) * s.DX
		for j := 0; j < n; j++ {
			y := float64(j) * s.DX
			for i := 0; i < n; i++ {
				x := float64(i) * s.DX
				idx := i + n*(j+n*k)
				u := math.Sin(x) * math.Cos(y) * math.Cos(z)
				v := -math.Cos(x) * math.Sin(y) * math.Cos(z)
				p := p0 + (math.Cos(2*x)+math.Cos(2*y))*(math.Cos(2*z)+2)/16
				rho := 1.0
				s.S.Rho[idx] = rho
				s.S.MX[idx] = rho * u
				s.S.MY[idx] = rho * v
				s.S.MZ[idx] = 0
				s.S.E[idx] = p/(s.Gamma-1) + 0.5*rho*(u*u+v*v)
			}
		}
	}
}

// wrap implements periodic indexing.
func (s *Solver) wrap(i int) int {
	n := s.N
	if i < 0 {
		return i + n
	}
	if i >= n {
		return i - n
	}
	return i
}

// pressure computes p from the conservative variables at idx.
func (s *Solver) pressure(st *State, idx int) float64 {
	rho := st.Rho[idx]
	if rho <= 0 {
		return 0
	}
	ke := 0.5 * (st.MX[idx]*st.MX[idx] + st.MY[idx]*st.MY[idx] + st.MZ[idx]*st.MZ[idx]) / rho
	return (s.Gamma - 1) * (st.E[idx] - ke)
}

// computeRHS fills s.rhs with the flux divergence plus a simple
// Laplacian viscosity on the momentum and energy fields.
func (s *Solver) computeRHS(st *State) {
	n := s.N
	idx := func(i, j, k int) int { return i + n*(j+n*k) }
	inv2dx := 1 / (2 * s.DX)
	invdx2 := 1 / (s.DX * s.DX)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				c := idx(i, j, k)
				nb := [6]int{
					idx(s.wrap(i-1), j, k), idx(s.wrap(i+1), j, k),
					idx(i, s.wrap(j-1), k), idx(i, s.wrap(j+1), k),
					idx(i, j, s.wrap(k-1)), idx(i, j, s.wrap(k+1)),
				}
				// Fluxes at the six neighbours, differenced centrally.
				var dRho, dMX, dMY, dMZ, dE float64
				for d := 0; d < 3; d++ {
					m, p := nb[2*d], nb[2*d+1]
					sign := inv2dx
					// velocity component of this direction
					velAt := func(q int) float64 {
						var mom float64
						switch d {
						case 0:
							mom = st.MX[q]
						case 1:
							mom = st.MY[q]
						default:
							mom = st.MZ[q]
						}
						if st.Rho[q] == 0 {
							return 0
						}
						return mom / st.Rho[q]
					}
					um, up := velAt(m), velAt(p)
					pm, pp := s.pressure(st, m), s.pressure(st, p)
					dRho -= sign * (rhoFlux(st, p, d) - rhoFlux(st, m, d))
					dMX -= sign * (st.MX[p]*up - st.MX[m]*um)
					dMY -= sign * (st.MY[p]*up - st.MY[m]*um)
					dMZ -= sign * (st.MZ[p]*up - st.MZ[m]*um)
					dE -= sign * ((st.E[p]+pp)*up - (st.E[m]+pm)*um)
					// Pressure gradient contributes to its own
					// momentum direction.
					switch d {
					case 0:
						dMX -= sign * (pp - pm)
					case 1:
						dMY -= sign * (pp - pm)
					default:
						dMZ -= sign * (pp - pm)
					}
					// Laplacian viscosity.
					dMX += s.Mu * invdx2 * (st.MX[p] - 2*st.MX[c] + st.MX[m])
					dMY += s.Mu * invdx2 * (st.MY[p] - 2*st.MY[c] + st.MY[m])
					dMZ += s.Mu * invdx2 * (st.MZ[p] - 2*st.MZ[c] + st.MZ[m])
					dE += s.Mu * invdx2 * (st.E[p] - 2*st.E[c] + st.E[m])
				}
				s.rhs.Rho[c] = dRho
				s.rhs.MX[c] = dMX
				s.rhs.MY[c] = dMY
				s.rhs.MZ[c] = dMZ
				s.rhs.E[c] = dE
			}
		}
	}
}

// rhoFlux returns the mass flux component ρu_d at a point.
func rhoFlux(st *State, q, d int) float64 {
	switch d {
	case 0:
		return st.MX[q]
	case 1:
		return st.MY[q]
	default:
		return st.MZ[q]
	}
}

// Step advances one RK3 (Heun/SSP) time step of size dt.
func (s *Solver) Step(dt float64) {
	// SSPRK3: u1 = u + dt L(u); u2 = 3/4 u + 1/4 (u1 + dt L(u1));
	// u = 1/3 u + 2/3 (u2 + dt L(u2)).
	accum := func(dst, a *State, ca float64, b *State, cb float64, r *State, cr float64) {
		for i := range dst.Rho {
			dst.Rho[i] = ca*a.Rho[i] + cb*b.Rho[i] + cr*r.Rho[i]
			dst.MX[i] = ca*a.MX[i] + cb*b.MX[i] + cr*r.MX[i]
			dst.MY[i] = ca*a.MY[i] + cb*b.MY[i] + cr*r.MY[i]
			dst.MZ[i] = ca*a.MZ[i] + cb*b.MZ[i] + cr*r.MZ[i]
			dst.E[i] = ca*a.E[i] + cb*b.E[i] + cr*r.E[i]
		}
	}
	u0 := s.S.Clone()
	// Stage 1: tmp = u0 + dt·L(u0)
	s.computeRHS(s.S)
	accum(s.tmp, u0, 1, u0, 0, s.rhs, dt)
	// Stage 2: tmp = 3/4 u0 + 1/4 tmp + dt/4·L(tmp)
	s.computeRHS(s.tmp)
	accum(s.tmp, u0, 0.75, s.tmp, 0.25, s.rhs, dt/4)
	// Stage 3: u = 1/3 u0 + 2/3 tmp + 2dt/3·L(tmp)
	s.computeRHS(s.tmp)
	accum(s.S, u0, 1.0/3, s.tmp, 2.0/3, s.rhs, 2*dt/3)
}

// TotalMass integrates ρ over the grid.
func (s *Solver) TotalMass() float64 {
	var m float64
	for _, v := range s.S.Rho {
		m += v
	}
	return m * s.DX * s.DX * s.DX
}

// KineticEnergy integrates ½ρ|u|² over the grid.
func (s *Solver) KineticEnergy() float64 {
	var ke float64
	for i, rho := range s.S.Rho {
		if rho <= 0 {
			continue
		}
		ke += 0.5 * (s.S.MX[i]*s.S.MX[i] + s.S.MY[i]*s.S.MY[i] + s.S.MZ[i]*s.S.MZ[i]) / rho
	}
	return ke * s.DX * s.DX * s.DX
}
