package opensbli

// Flow diagnostics for the Taylor-Green vortex: the quantities the
// benchmark's reference studies track (kinetic energy is in solver.go).

// Vorticity computes the vorticity vector (∇×u) at every cell with
// central differences, returned as three fields.
func (s *Solver) Vorticity() (wx, wy, wz []float64) {
	n := s.N
	n3 := n * n * n
	wx = make([]float64, n3)
	wy = make([]float64, n3)
	wz = make([]float64, n3)
	idx := func(i, j, k int) int { return i + n*(j+n*k) }
	vel := func(q, d int) float64 {
		rho := s.S.Rho[q]
		if rho == 0 {
			return 0
		}
		switch d {
		case 0:
			return s.S.MX[q] / rho
		case 1:
			return s.S.MY[q] / rho
		default:
			return s.S.MZ[q] / rho
		}
	}
	inv2dx := 1 / (2 * s.DX)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				xp, xm := idx(s.wrap(i+1), j, k), idx(s.wrap(i-1), j, k)
				yp, ym := idx(i, s.wrap(j+1), k), idx(i, s.wrap(j-1), k)
				zp, zm := idx(i, j, s.wrap(k+1)), idx(i, j, s.wrap(k-1))
				c := idx(i, j, k)
				// ω = ∇×u with central differences.
				wx[c] = (vel(yp, 2)-vel(ym, 2))*inv2dx - (vel(zp, 1)-vel(zm, 1))*inv2dx
				wy[c] = (vel(zp, 0)-vel(zm, 0))*inv2dx - (vel(xp, 2)-vel(xm, 2))*inv2dx
				wz[c] = (vel(xp, 1)-vel(xm, 1))*inv2dx - (vel(yp, 0)-vel(ym, 0))*inv2dx
			}
		}
	}
	return wx, wy, wz
}

// Enstrophy integrates ½ρ|ω|² over the domain — the quantity whose
// growth-then-decay is the classic TGV signature.
func (s *Solver) Enstrophy() float64 {
	wx, wy, wz := s.Vorticity()
	var e float64
	for i, rho := range s.S.Rho {
		e += 0.5 * rho * (wx[i]*wx[i] + wy[i]*wy[i] + wz[i]*wz[i])
	}
	return e * s.DX * s.DX * s.DX
}

// TotalEnergy integrates the conserved total energy E over the domain.
func (s *Solver) TotalEnergy() float64 {
	var e float64
	for _, v := range s.S.E {
		e += v
	}
	return e * s.DX * s.DX * s.DX
}

// MeanPressure averages the pressure field.
func (s *Solver) MeanPressure() float64 {
	var p float64
	n3 := len(s.S.Rho)
	for i := 0; i < n3; i++ {
		p += s.pressure(s.S, i)
	}
	return p / float64(n3)
}
