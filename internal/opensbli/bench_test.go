package opensbli

import (
	"testing"

	"a64fxbench/internal/arch"
)

// BenchmarkTGVStep measures the real compressible NS RK3 step.
func BenchmarkTGVStep(b *testing.B) {
	s, err := NewSolver(24, 1.4, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	s.InitTaylorGreen(0.1)
	b.SetBytes(int64(5 * 8 * 24 * 24 * 24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0.001)
	}
}

// BenchmarkMeteredTableX measures the simulator's cost for a 1-node
// metered OpenSBLI run.
func BenchmarkMeteredTableX(b *testing.B) {
	cfg := Config{System: arch.MustGet(arch.Fulhame), Nodes: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
