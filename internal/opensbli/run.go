package opensbli

import (
	"fmt"

	"a64fxbench/internal/arch"
	"a64fxbench/internal/decomp"
	"a64fxbench/internal/perfmodel"
	"a64fxbench/internal/simmpi"
	"a64fxbench/internal/units"
)

// Case describes the metered benchmark workload: the Taylor-Green vortex
// at the paper's strong-scaling size.
type Case struct {
	// Grid is the global grid dimension (the paper uses 64³, chosen so
	// the problem fits one 32 GB A64FX node; 512³ and 1024³ are the
	// usual production sizes).
	Grid int
	// Steps is the number of RK3 time steps in the benchmark run.
	Steps int
}

// PaperCase returns the §VII.C configuration.
func PaperCase() Case {
	return Case{Grid: 64, Steps: 200}
}

// Config describes one metered OpenSBLI run.
type Config struct {
	// System selects the machine model.
	System *arch.System
	// Nodes is the node count (Table X sweeps 1–8), fully populated
	// with one MPI process per core.
	Nodes int
	// Case is the workload; zero value means PaperCase.
	Case Case
	// Instrumentation bundles the shared observability and
	// network-pricing options (Trace, Congestion, Counters) every
	// benchmark carries; see simmpi.Instrumentation.
	simmpi.Instrumentation
	// Engine selects the simmpi execution substrate (goroutine-per-rank
	// or discrete-event); engines are bit-identical in every result.
	// Empty means the goroutine default.
	Engine simmpi.Engine
}

// Result is the outcome of a metered run.
type Result struct {
	// Seconds is the total runtime — Table X's metric.
	Seconds float64
	// Procs is the MPI process count.
	Procs int
	// Report carries full accounting.
	Report simmpi.Report
}

// Per-cell-per-stage work of the generated OPS kernels: the five
// conservative equations with central fluxes and viscous terms. The OPS
// code generator emits one pass per derivative term, so the byte traffic
// per cell is high relative to the flops — part of why the A64FX, with
// its L2/instruction-fetch behaviour on generated code, underperforms
// here (§VII.C.2).
const (
	flopsPerCellStage = 1200
	bytesPerCellStage = 480
)

// Run executes the metered OpenSBLI strong-scaling benchmark.
func Run(cfg Config) (Result, error) {
	if cfg.System == nil {
		return Result{}, fmt.Errorf("opensbli: System is required")
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	if cfg.Case == (Case{}) {
		cfg.Case = PaperCase()
	}
	if cfg.Case.Grid < 4 || cfg.Case.Steps < 1 {
		return Result{}, fmt.Errorf("opensbli: invalid case %+v", cfg.Case)
	}
	sys := cfg.System
	tc := cfg.Case
	procs := cfg.Nodes * sys.CoresPerNode()
	grid := decomp.NewGrid3D(procs)

	cellsPerRank := float64(tc.Grid*tc.Grid*tc.Grid) / float64(procs)
	stage := perfmodel.WorkProfile{
		Class: perfmodel.StencilFD,
		Flops: units.Flops(cellsPerRank * flopsPerCellStage),
		Bytes: units.Bytes(cellsPerRank * bytesPerCellStage),
		Calls: 1,
	}

	// Local block dimensions for halo sizing.
	lnx := tc.Grid / grid.PX
	lny := tc.Grid / grid.PY
	lnz := tc.Grid / grid.PZ
	if lnx < 1 {
		lnx = 1
	}
	if lny < 1 {
		lny = 1
	}
	if lnz < 1 {
		lnz = 1
	}
	// 5 variables, halo width 2 (the wide stencils of the generated
	// code), 8 bytes each.
	halo := decomp.HaloSpec{NX: lnx, NY: lny, NZ: lnz, Width: 2, Elem: 5 * 8}

	model := sys.PerRankModel(sys.CoresPerNode(), 1)
	job := simmpi.JobConfig{
		Procs:          procs,
		Nodes:          cfg.Nodes,
		ThreadsPerRank: 1,
		RankModel:      func(int) *perfmodel.CostModel { return model },
		Fabric:         sys.NewFabric(cfg.Nodes),
		NoiseProb:      1e-5,
		NoiseDuration:  units.Duration(30 * units.Millisecond),
		Engine:         cfg.Engine,
		Label:          fmt.Sprintf("opensbli %s n=%d g=%d", sys.ID, cfg.Nodes, tc.Grid),
	}
	cfg.Instrumentation.Apply(&job)

	stageName := [3]string{"rk3-stage-0", "rk3-stage-1", "rk3-stage-2"}
	rep, err := simmpi.Run(job, func(r *simmpi.Rank) error {
		for step := 0; step < tc.Steps; step++ {
			r.Region("rk3-step")
			for st := 0; st < 3; st++ { // RK3 stages
				r.Region(stageName[st])
				decomp.Exchange(r, grid, halo, 16*st)
				r.Compute(stage)
				r.EndRegion()
			}
			// dt stability reduction once per step.
			r.AllreduceScalar(0, simmpi.OpMin)
			r.EndRegion()
		}
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Seconds: rep.Seconds(),
		Procs:   procs,
		Report:  rep,
	}, nil
}
