package opensbli

import (
	"math"
	"testing"

	"a64fxbench/internal/arch"
)

// --- Numerical validation of the real solver ---

func TestTGVMassConservation(t *testing.T) {
	t.Parallel()
	s, err := NewSolver(16, 1.4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s.InitTaylorGreen(0.1)
	m0 := s.TotalMass()
	for i := 0; i < 20; i++ {
		s.Step(0.002)
	}
	m1 := s.TotalMass()
	// Conservative central differencing on a periodic grid conserves
	// mass to round-off.
	if rel := math.Abs(m1-m0) / m0; rel > 1e-12 {
		t.Errorf("mass drifted: %v → %v (rel %v)", m0, m1, rel)
	}
}

func TestTGVKineticEnergyDecays(t *testing.T) {
	t.Parallel()
	// With viscosity, the TGV's kinetic energy decays.
	s, err := NewSolver(16, 1.4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s.InitTaylorGreen(0.1)
	ke0 := s.KineticEnergy()
	for i := 0; i < 50; i++ {
		s.Step(0.002)
	}
	ke1 := s.KineticEnergy()
	if ke1 >= ke0 {
		t.Errorf("kinetic energy did not decay: %v → %v", ke0, ke1)
	}
	// Sanity: it should not have collapsed either.
	if ke1 < 0.2*ke0 {
		t.Errorf("kinetic energy collapsed: %v → %v", ke0, ke1)
	}
}

func TestTGVStability(t *testing.T) {
	t.Parallel()
	// Density stays positive and bounded over a longer run.
	s, err := NewSolver(12, 1.4, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	s.InitTaylorGreen(0.1)
	for i := 0; i < 100; i++ {
		s.Step(0.002)
	}
	for i, rho := range s.S.Rho {
		if rho <= 0 || rho > 10 || math.IsNaN(rho) {
			t.Fatalf("density blew up at cell %d: %v", i, rho)
		}
	}
}

func TestTGVInitialCondition(t *testing.T) {
	t.Parallel()
	s, _ := NewSolver(16, 1.4, 0.01)
	s.InitTaylorGreen(0.1)
	// Initial z-momentum is identically zero.
	for i, mz := range s.S.MZ {
		if mz != 0 {
			t.Fatalf("MZ[%d] = %v", i, mz)
		}
	}
	// Initial kinetic energy of the TGV on [0,2π]³ is (2π)³/8.
	want := math.Pow(2*math.Pi, 3) / 8
	if ke := s.KineticEnergy(); math.Abs(ke-want)/want > 0.01 {
		t.Errorf("initial KE = %v, want %v", ke, want)
	}
}

func TestSolverValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewSolver(2, 1.4, 0.01); err == nil {
		t.Error("tiny grid should fail")
	}
	if _, err := NewSolver(8, 1.0, 0.01); err == nil {
		t.Error("γ=1 should fail")
	}
	if _, err := NewSolver(8, 1.4, -1); err == nil {
		t.Error("negative viscosity should fail")
	}
}

// --- Metered benchmark ---

// paperTableX is Table X: total runtime in seconds.
var paperTableX = map[arch.ID][4]float64{
	arch.A64FX:   {3.44, 1.89, 1.04, 0.69},
	arch.Cirrus:  {1.90, 0.93, 0.53, 0.35},
	arch.NGIO:    {1.18, 0.75, 0.46, 0.31},
	arch.Fulhame: {1.17, 0.74, 0.65, 0.28},
}

func TestTableXSingleNode(t *testing.T) {
	t.Parallel()
	for id, want := range paperTableX {
		res, err := Run(Config{System: arch.MustGet(id), Nodes: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rel := math.Abs(res.Seconds-want[0]) / want[0]; rel > 0.08 {
			t.Errorf("%s 1 node = %.2f s, paper %.2f", id, res.Seconds, want[0])
		}
	}
}

func TestTableXA64FXUnderperforms(t *testing.T) {
	t.Parallel()
	// §VII.C.2: the A64FX is ≈3× slower than the fastest systems.
	a, err := Run(Config{System: arch.MustGet(arch.A64FX), Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Run(Config{System: arch.MustGet(arch.Fulhame), Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := a.Seconds / f.Seconds; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("A64FX/Fulhame ratio = %.2f, paper says ≈2.9", ratio)
	}
	n, err := Run(Config{System: arch.MustGet(arch.NGIO), Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// NGIO and Fulhame present very similar performance (§VII.C.2).
	if rel := math.Abs(n.Seconds-f.Seconds) / f.Seconds; rel > 0.10 {
		t.Errorf("NGIO (%.2f) and Fulhame (%.2f) should be close", n.Seconds, f.Seconds)
	}
}

func TestTableXScalingMonotone(t *testing.T) {
	t.Parallel()
	for id := range paperTableX {
		var prev float64 = math.Inf(1)
		for _, nodes := range []int{1, 2, 4, 8} {
			res, err := Run(Config{System: arch.MustGet(id), Nodes: nodes})
			if err != nil {
				t.Fatal(err)
			}
			if res.Seconds >= prev {
				t.Errorf("%s: no speedup at %d nodes", id, nodes)
			}
			prev = res.Seconds
		}
	}
}

func TestTableXScalingSublinear(t *testing.T) {
	t.Parallel()
	// The 64³ case is too small to scale perfectly: 8-node efficiency
	// is clearly below 1 on every system (paper: 0.52–0.62).
	for id := range paperTableX {
		one, err := Run(Config{System: arch.MustGet(id), Nodes: 1})
		if err != nil {
			t.Fatal(err)
		}
		eight, err := Run(Config{System: arch.MustGet(id), Nodes: 8})
		if err != nil {
			t.Fatal(err)
		}
		pe := one.Seconds / eight.Seconds / 8
		if pe > 0.95 {
			t.Errorf("%s scales implausibly well: 8-node PE %.2f", id, pe)
		}
		if pe < 0.3 {
			t.Errorf("%s scales implausibly badly: 8-node PE %.2f", id, pe)
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{}); err == nil {
		t.Error("missing system should fail")
	}
	if _, err := Run(Config{System: arch.MustGet(arch.A64FX), Case: Case{Grid: 2, Steps: 1}}); err == nil {
		t.Error("tiny case should fail")
	}
}

func TestTGVEnstrophyInitial(t *testing.T) {
	t.Parallel()
	// The initial TGV enstrophy on [0,2π]³ at unit density equals its
	// initial kinetic energy ×3 (for the classic field, ∫|ω|² = 3∫|u|²
	// ... with this initial condition the exact ratio is 3).
	s, _ := NewSolver(24, 1.4, 0.01)
	s.InitTaylorGreen(0.1)
	ke := s.KineticEnergy()
	en := s.Enstrophy()
	ratio := en / ke
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("enstrophy/KE = %v, want ≈3 for the TGV initial field", ratio)
	}
}

func TestTGVDissipationIdentity(t *testing.T) {
	t.Parallel()
	// For low-Mach viscous decay, -dKE/dt ≈ 2ν·(enstrophy-like term):
	// check the energy decay rate is positive and scales with ν.
	rate := func(mu float64) float64 {
		s, _ := NewSolver(16, 1.4, mu)
		s.InitTaylorGreen(0.1)
		ke0 := s.KineticEnergy()
		const steps, dt = 40, 0.002
		for i := 0; i < steps; i++ {
			s.Step(dt)
		}
		return (ke0 - s.KineticEnergy()) / (steps * dt)
	}
	r1, r2 := rate(0.02), rate(0.04)
	if r1 <= 0 || r2 <= 0 {
		t.Fatalf("decay rates must be positive: %v %v", r1, r2)
	}
	if ratio := r2 / r1; ratio < 1.6 || ratio > 2.4 {
		t.Errorf("dissipation should scale ≈linearly with ν: ratio %v", ratio)
	}
}

func TestTGVTotalEnergyConserved(t *testing.T) {
	t.Parallel()
	// Viscous dissipation converts kinetic to internal energy; the
	// conservative total should drift only at discretisation level.
	s, _ := NewSolver(16, 1.4, 0.02)
	s.InitTaylorGreen(0.1)
	e0 := s.TotalEnergy()
	for i := 0; i < 50; i++ {
		s.Step(0.002)
	}
	e1 := s.TotalEnergy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.02 {
		t.Errorf("total energy drifted %.3f%%", rel*100)
	}
}

func TestMeanPressurePositive(t *testing.T) {
	t.Parallel()
	s, _ := NewSolver(12, 1.4, 0.01)
	s.InitTaylorGreen(0.1)
	if p := s.MeanPressure(); p <= 0 {
		t.Errorf("mean pressure = %v", p)
	}
}
