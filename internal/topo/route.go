package topo

import (
	"fmt"
	"strconv"
)

// Level classifies where in the fabric a Link sits. Levels let a
// contention model assign capacities (injection vs. switch links) and
// make link names readable without knowing the topology type.
type Level int32

// Link levels. LevelDim0 and above are per-dimension torus links:
// dimension d of a Torus uses LevelDim0 + d.
const (
	// LevelHostUp is the node→fabric injection port of the source node.
	LevelHostUp Level = iota
	// LevelHostDown is the fabric→node ejection port of the destination.
	LevelHostDown
	// LevelLocal is an intra-group router-to-router link (dragonfly).
	LevelLocal
	// LevelGlobal is an inter-group link (dragonfly).
	LevelGlobal
	// LevelUp is a leaf→core uplink (fat tree).
	LevelUp
	// LevelDown is a core→leaf downlink (fat tree).
	LevelDown
	// LevelDim0 is the first torus dimension; dimension d is LevelDim0+d.
	LevelDim0
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelHostUp:
		return "inj"
	case LevelHostDown:
		return "eject"
	case LevelLocal:
		return "local"
	case LevelGlobal:
		return "global"
	case LevelUp:
		return "up"
	case LevelDown:
		return "down"
	}
	if l >= LevelDim0 {
		return "dim" + strconv.Itoa(int(l-LevelDim0))
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Link is one directed link of a fabric: an edge a minimally-routed
// message traverses. From/To are level-specific endpoint indices (node,
// router, switch or group ids); negative ids name aggregate gateway
// ports (see Dragonfly.RouteAppend). Equal Links are the same physical
// resource, so concurrent flows holding the same Link value contend.
type Link struct {
	Level    Level
	From, To int32
}

// String renders the link as "level from→to".
func (l Link) String() string {
	return l.Level.String() + " " + linkEnd(l.From) + "→" + linkEnd(l.To)
}

// linkEnd formats an endpoint id; negative ids are gateway ports.
func linkEnd(v int32) string {
	if v < 0 {
		return "gw" + strconv.Itoa(int(^v))
	}
	return strconv.Itoa(int(v))
}

// RouteAppender is the allocation-free variant of Topology.Route:
// implementations append the route onto dst and return it, so hot loops
// can reuse one backing array. All topologies in this package implement
// it.
type RouteAppender interface {
	RouteAppend(dst []Link, a, b int) []Link
}

// RouteAppend appends t's route from a to b onto dst, using the
// topology's RouteAppender fast path when it has one.
func RouteAppend(t Topology, dst []Link, a, b int) []Link {
	if ra, ok := t.(RouteAppender); ok {
		return ra.RouteAppend(dst, a, b)
	}
	return append(dst, t.Route(a, b)...)
}

// Route implements Topology using dimension-order routing: the message
// corrects one coordinate at a time, in dimension order, taking the
// shorter way around each ring (ties go the +1 direction). Every hop is
// one torus link at level LevelDim0+d, so len(Route(a,b)) == Hops(a,b).
func (t *Torus) Route(a, b int) []Link {
	return t.RouteAppend(nil, a, b)
}

// RouteAppend implements RouteAppender.
func (t *Torus) RouteAppend(dst []Link, a, b int) []Link {
	if a == b {
		return dst
	}
	tt := t.table()
	a, b = a%tt.n, b%tt.n
	if a == b {
		return dst
	}
	k := tt.k
	cb := tt.coords[b*k : b*k+k]
	cur := a
	for d := 0; d < k; d++ {
		dim := t.Dims[d]
		if dim < 2 {
			continue
		}
		cd, target := int(tt.coords[cur*k+d]), int(cb[d])
		for cd != target {
			fwd := target - cd
			if fwd < 0 {
				fwd += dim
			}
			step := 1
			if 2*fwd > dim {
				step = -1
			}
			nc := cd + step
			if nc == dim {
				nc = 0
			} else if nc < 0 {
				nc = dim - 1
			}
			next := cur + (nc-cd)*tt.stride[d]
			dst = append(dst, Link{Level: LevelDim0 + Level(d), From: int32(cur), To: int32(next)})
			cur, cd = next, nc
		}
	}
	return dst
}

// Route implements Topology with minimal dragonfly routing. Links are:
// injection/ejection host ports, local (intra-group router-to-router)
// links, and global (group-to-group) links. A router's local link
// toward another group's global port is named with the negative gateway
// id ^gb, so every cross-group route is exactly the 5 links Hops
// reports: inj, local→gateway, global, gateway→router, eject.
func (d *Dragonfly) Route(a, b int) []Link {
	return d.RouteAppend(nil, a, b)
}

// RouteAppend implements RouteAppender.
func (d *Dragonfly) RouteAppend(dst []Link, a, b int) []Link {
	if a == b {
		return dst
	}
	ra, rb := int32(a/d.NodesPerRouter), int32(b/d.NodesPerRouter)
	dst = append(dst, Link{Level: LevelHostUp, From: int32(a), To: ra})
	if ra != rb {
		ga, gb := ra/int32(d.RoutersPerGroup), rb/int32(d.RoutersPerGroup)
		if ga == gb {
			dst = append(dst, Link{Level: LevelLocal, From: ra, To: rb})
		} else {
			dst = append(dst,
				Link{Level: LevelLocal, From: ra, To: ^gb},
				Link{Level: LevelGlobal, From: ga, To: gb},
				Link{Level: LevelLocal, From: ^ga, To: rb},
			)
		}
	}
	return append(dst, Link{Level: LevelHostDown, From: rb, To: int32(b)})
}

// Route implements Topology with up-down fat-tree routing: up to a core
// switch chosen statically by the destination (dst mod the leaf's
// uplink count), then down to the destination leaf. Same-leaf pairs
// never leave the leaf switch, matching the 2-hop distance Hops
// reports; cross-leaf pairs use exactly 4 links.
func (f *FatTree) Route(a, b int) []Link {
	return f.RouteAppend(nil, a, b)
}

// RouteAppend implements RouteAppender.
func (f *FatTree) RouteAppend(dst []Link, a, b int) []Link {
	if a == b {
		return dst
	}
	npl := f.NodesPerLeaf
	if npl < 1 {
		npl = 1
	}
	la, lb := int32(a/npl), int32(b/npl)
	dst = append(dst, Link{Level: LevelHostUp, From: int32(a), To: la})
	if la != lb {
		up := f.Uplinks
		if up < 1 {
			up = npl
		}
		core := int32(b % up)
		dst = append(dst,
			Link{Level: LevelUp, From: la, To: core},
			Link{Level: LevelDown, From: core, To: lb},
		)
	}
	return append(dst, Link{Level: LevelHostDown, From: lb, To: int32(b)})
}
