package topo

import (
	"testing"
	"testing/quick"
)

func TestTorusBasics(t *testing.T) {
	t.Parallel()
	tor := &Torus{Dims: []int{4, 4}}
	if tor.MaxNodes() != 16 {
		t.Errorf("MaxNodes = %d", tor.MaxNodes())
	}
	if tor.Hops(0, 0) != 0 {
		t.Error("self distance must be 0")
	}
	// Node 0 = (0,0), node 5 = (1,1): distance 2.
	if got := tor.Hops(0, 5); got != 2 {
		t.Errorf("Hops(0,5) = %d, want 2", got)
	}
	// Wraparound: (0,0) to (3,0) is 1 hop around the ring, node 12.
	if got := tor.Hops(0, 12); got != 1 {
		t.Errorf("wraparound Hops(0,12) = %d, want 1", got)
	}
	// Maximum distance in a 4-ring is 2: (0,0)->(2,2) = node 10.
	if got := tor.Hops(0, 10); got != 4 {
		t.Errorf("Hops(0,10) = %d, want 4", got)
	}
}

func TestTorusName(t *testing.T) {
	t.Parallel()
	if (&Torus{Dims: []int{2, 3}}).Name() != "torus[2 3]" {
		t.Error("default torus name wrong")
	}
	if (&Torus{Dims: []int{2}, Label: "TofuD"}).Name() != "TofuD" {
		t.Error("labelled torus name wrong")
	}
}

func TestNewTofuD(t *testing.T) {
	t.Parallel()
	tf := NewTofuD(48)
	if tf.MaxNodes() < 48 {
		t.Errorf("TofuD for 48 nodes only covers %d", tf.MaxNodes())
	}
	if tf.Name() != "TofuD" {
		t.Errorf("name = %q", tf.Name())
	}
	// Unit group structure preserved: last three dims are 2,3,2.
	d := tf.Dims
	if len(d) != 5 || d[2] != 2 || d[3] != 3 || d[4] != 2 {
		t.Errorf("dims = %v", d)
	}
	if NewTofuD(0).MaxNodes() < 1 {
		t.Error("degenerate TofuD must cover at least one node")
	}
}

func TestDragonflyHops(t *testing.T) {
	t.Parallel()
	d := NewAries()
	if d.Hops(3, 3) != 0 {
		t.Error("self distance must be 0")
	}
	// Same router: nodes 0-3 share router 0.
	if got := d.Hops(0, 3); got != 2 {
		t.Errorf("same-router hops = %d, want 2", got)
	}
	// Same group, different router.
	if got := d.Hops(0, 4); got != 3 {
		t.Errorf("same-group hops = %d, want 3", got)
	}
	// Different group: beyond 96 routers × 4 nodes = 384.
	if got := d.Hops(0, 400); got != 5 {
		t.Errorf("cross-group hops = %d, want 5", got)
	}
	if d.MaxNodes() != 0 {
		t.Error("dragonfly should be unbounded")
	}
}

func TestFatTreeHops(t *testing.T) {
	t.Parallel()
	f := &FatTree{NodesPerLeaf: 24, Label: "EDR fat-tree"}
	if f.Hops(1, 1) != 0 {
		t.Error("self distance must be 0")
	}
	if got := f.Hops(0, 23); got != 2 {
		t.Errorf("same-leaf hops = %d, want 2", got)
	}
	if got := f.Hops(0, 24); got != 4 {
		t.Errorf("cross-leaf hops = %d, want 4", got)
	}
	if f.Name() != "EDR fat-tree" {
		t.Errorf("name = %q", f.Name())
	}
	if (&FatTree{NodesPerLeaf: 4}).Name() != "fat-tree" {
		t.Error("default name wrong")
	}
}

func TestMeanHops(t *testing.T) {
	t.Parallel()
	f := &FatTree{NodesPerLeaf: 2}
	// Nodes 0..3: pairs (0,1)=2 (2,3)=2 (0,2)(0,3)(1,2)(1,3)=4.
	// Mean = (2+2+4*4)/6 = 20/6.
	got := MeanHops(f, 4)
	want := 20.0 / 6.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("MeanHops = %v, want %v", got, want)
	}
	if MeanHops(f, 1) != 0 {
		t.Error("single node mean must be 0")
	}
	// Bounded topology clamps n.
	tor := &Torus{Dims: []int{2}}
	if MeanHops(tor, 100) != 1 {
		t.Errorf("clamped mean = %v, want 1", MeanHops(tor, 100))
	}
}

// Properties of any metric: symmetry, identity, triangle inequality.
func metricProps(t *testing.T, name string, topoImpl Topology, n int) {
	t.Helper()
	f := func(aRaw, bRaw, cRaw uint16) bool {
		a, b, c := int(aRaw)%n, int(bRaw)%n, int(cRaw)%n
		hab := topoImpl.Hops(a, b)
		hba := topoImpl.Hops(b, a)
		if hab != hba {
			return false
		}
		if a == b && hab != 0 {
			return false
		}
		if a != b && hab <= 0 {
			return false
		}
		// Triangle inequality.
		return topoImpl.Hops(a, c) <= hab+topoImpl.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("%s metric properties: %v", name, err)
	}
}

func TestMetricProperties(t *testing.T) {
	t.Parallel()
	metricProps(t, "torus", &Torus{Dims: []int{3, 4, 2}}, 24)
	metricProps(t, "tofud", NewTofuD(48), NewTofuD(48).MaxNodes())
	metricProps(t, "dragonfly", NewAries(), 1000)
	metricProps(t, "fattree", &FatTree{NodesPerLeaf: 24}, 500)
}

func TestMeanHopsSampledPath(t *testing.T) {
	t.Parallel()
	// Above the exact-enumeration limit the sampled estimate must stay
	// close to the structural expectation. For a fat tree with small
	// leaves almost every pair is cross-leaf (4 hops).
	f := &FatTree{NodesPerLeaf: 2}
	got := MeanHops(f, 100000)
	if got < 3.9 || got > 4.0 {
		t.Errorf("sampled fat-tree mean = %v, want ≈4", got)
	}
	// Deterministic: same inputs, same estimate.
	if again := MeanHops(f, 100000); again != got {
		t.Errorf("sampling not deterministic: %v vs %v", got, again)
	}
	// Torus at Fugaku-ish scale completes quickly and lands within the
	// torus diameter bound.
	big := NewTofuD(158976)
	m := MeanHops(big, 158976)
	maxHops := 0
	for _, d := range big.Dims {
		maxHops += d / 2
	}
	if m <= 0 || m > float64(maxHops) {
		t.Errorf("TofuD mean hops %v outside (0, %d]", m, maxHops)
	}
}

func TestMeanHopsExactSampledAgree(t *testing.T) {
	t.Parallel()
	// Near the threshold the two estimators agree closely.
	tor := &Torus{Dims: []int{8, 8, 8}} // 512 nodes = exact limit
	exact := MeanHops(tor, 512)
	// Force the sampled path with a 1024-node torus of the same shape
	// scaled: compare against its exact value computed by brute force.
	tor2 := &Torus{Dims: []int{16, 8, 8}}
	sampled := MeanHops(tor2, 1024)
	brute := 0.0
	cnt := 0
	for a := 0; a < 1024; a++ {
		for b := a + 1; b < 1024; b++ {
			brute += float64(tor2.Hops(a, b))
			cnt++
		}
	}
	brute /= float64(cnt)
	if rel := (sampled - brute) / brute; rel > 0.02 || rel < -0.02 {
		t.Errorf("sampled %v vs exact %v (%.2f%% off)", sampled, brute, rel*100)
	}
	_ = exact
}
