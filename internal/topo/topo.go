// Package topo models the network topologies of the five systems in the
// study: the Fujitsu TofuD 6D mesh/torus, Cray's Aries dragonfly (ARCHER),
// fat-tree InfiniBand fabrics (Cirrus FDR, Fulhame EDR) and Intel OmniPath
// (EPCC NGIO, also a fat tree).
//
// A topology answers two questions for the cost model: how many
// switch/link hops separate two nodes, and which concrete links a
// minimally-routed message between them traverses. The netmodel package
// turns hop counts into latency; the congestion package turns routes
// into per-link contention. Topologies are deterministic functions of
// node indices so simulations are reproducible.
package topo

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Topology reports hop distances and minimal routes between nodes.
type Topology interface {
	// Name identifies the topology for diagnostics.
	Name() string
	// Hops returns the number of network hops (links traversed) between
	// two node indices. Hops(a,a) is 0.
	Hops(a, b int) int
	// Route enumerates the directed links a minimally-routed message
	// from a to b traverses, in traversal order. Route(a,a) is empty,
	// and len(Route(a,b)) == Hops(a,b) — routes are the link-level
	// expansion of the hop metric, never a different metric.
	Route(a, b int) []Link
	// MaxNodes is the largest node index the topology supports plus one;
	// 0 means unbounded.
	MaxNodes() int
}

// Torus is a k-dimensional wraparound mesh. Node i maps to mixed-radix
// coordinates over Dims, and distance is the sum of per-dimension ring
// distances — the routing metric of Tofu-style interconnects.
type Torus struct {
	// Dims are the per-dimension extents, all ≥ 1.
	Dims []int
	// Label overrides the default name when non-empty.
	Label string

	// tab caches the coordinate/stride lookup table. Hops sits on the
	// pricing hot path (every message and every MeanHops pair), so
	// coordinates are decoded once and reused instead of re-dividing —
	// and Hops stays allocation-free. Built lazily because tori are
	// constructed with struct literals throughout the tree; the
	// compare-and-swap keeps concurrent first calls race-free (both
	// build the same table, one wins).
	tab atomic.Pointer[torusTable]
}

// torusTable is the precomputed coordinate decomposition of a torus.
type torusTable struct {
	// coords holds the mixed-radix coordinates of every node,
	// node-major: node i's coordinate in dimension d is coords[i*k+d].
	coords []int32
	// stride[d] is the node-index distance of one step in dimension d.
	stride []int
	// n and k are the node count and dimension count.
	n, k int
}

// table returns (building on first use) the coordinate table.
func (t *Torus) table() *torusTable {
	if tt := t.tab.Load(); tt != nil {
		return tt
	}
	n, k := 1, len(t.Dims)
	for _, d := range t.Dims {
		n *= d
	}
	tt := &torusTable{coords: make([]int32, n*k), stride: make([]int, k), n: n, k: k}
	s := 1
	for d := k - 1; d >= 0; d-- {
		tt.stride[d] = s
		s *= t.Dims[d]
	}
	for i := 0; i < n; i++ {
		rem := i
		for d := k - 1; d >= 0; d-- {
			tt.coords[i*k+d] = int32(rem % t.Dims[d])
			rem /= t.Dims[d]
		}
	}
	t.tab.CompareAndSwap(nil, tt)
	return t.tab.Load()
}

// NewTofuD builds a torus shaped like the Tofu Interconnect D unit
// structure for a machine of at least `nodes` nodes. TofuD composes 2×3×2
// node groups into a 3D torus of groups; we factor the machine the same
// way: dims = (X, Y, 2, 3, 2) with X·Y sized to cover the node count.
func NewTofuD(nodes int) *Torus {
	if nodes < 1 {
		nodes = 1
	}
	group := 2 * 3 * 2 // 12-node TofuD unit
	groups := (nodes + group - 1) / group
	// Arrange groups in as square an XY torus as possible.
	x := int(math.Sqrt(float64(groups)))
	if x < 1 {
		x = 1
	}
	y := (groups + x - 1) / x
	return &Torus{Dims: []int{x, y, 2, 3, 2}, Label: "TofuD"}
}

// Name implements Topology.
func (t *Torus) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("torus%v", t.Dims)
}

// MaxNodes implements Topology.
func (t *Torus) MaxNodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Hops implements Topology using per-dimension ring distance. It is
// allocation-free: coordinates come from the precomputed table (indices
// wrap modulo the node count, matching the old mixed-radix decode).
func (t *Torus) Hops(a, b int) int {
	if a == b {
		return 0
	}
	tt := t.table()
	a, b = a%tt.n, b%tt.n
	k := tt.k
	ca, cb := tt.coords[a*k:a*k+k], tt.coords[b*k:b*k+k]
	total := 0
	for d := 0; d < k; d++ {
		diff := int(ca[d] - cb[d])
		if diff < 0 {
			diff = -diff
		}
		if wrap := t.Dims[d] - diff; wrap < diff {
			diff = wrap
		}
		total += diff
	}
	return total
}

// Dragonfly models the Cray Aries topology used by ARCHER: nodes attach in
// groups; routers within a group are all-to-all connected, and every group
// pair has a direct global link. Minimal routing is therefore at most
// local + global + local = 3 router-to-router hops, plus the two
// node-to-router links.
type Dragonfly struct {
	// NodesPerRouter is the number of nodes per Aries router (4 on XC30).
	NodesPerRouter int
	// RoutersPerGroup is the number of routers in a group (96 per
	// two-cabinet group on XC30).
	RoutersPerGroup int
}

// NewAries returns the ARCHER XC30 dragonfly configuration.
func NewAries() *Dragonfly {
	return &Dragonfly{NodesPerRouter: 4, RoutersPerGroup: 96}
}

// Name implements Topology.
func (d *Dragonfly) Name() string { return "dragonfly" }

// MaxNodes implements Topology (unbounded: groups scale out).
func (d *Dragonfly) MaxNodes() int { return 0 }

// Hops implements Topology. Distances: same router 2 (node-router-node),
// same group 3, different group 5 (two node links + local,global,local).
func (d *Dragonfly) Hops(a, b int) int {
	if a == b {
		return 0
	}
	ra, rb := a/d.NodesPerRouter, b/d.NodesPerRouter
	if ra == rb {
		return 2
	}
	ga, gb := ra/d.RoutersPerGroup, rb/d.RoutersPerGroup
	if ga == gb {
		return 3
	}
	return 5
}

// FatTree models a non-blocking fat tree (InfiniBand or OmniPath): nodes
// under the same leaf switch are 2 hops apart, anything further is routed
// through the core for 4 hops. Non-blocking means no bandwidth penalty is
// modelled for the extra tier; only latency grows.
type FatTree struct {
	// NodesPerLeaf is the number of nodes per leaf (edge) switch.
	NodesPerLeaf int
	// Uplinks is the number of core uplinks each leaf switch drives —
	// the routing fan-out of Route. 0 means fully provisioned (one
	// uplink per node port, non-blocking); fewer uplinks than nodes per
	// leaf models an oversubscribed tree, which only matters to the
	// contention engine: Hops (and thus latency) is unchanged.
	Uplinks int
	// Label names the fabric (e.g. "EDR fat-tree").
	Label string
}

// Name implements Topology.
func (f *FatTree) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fat-tree"
}

// MaxNodes implements Topology (unbounded).
func (f *FatTree) MaxNodes() int { return 0 }

// Hops implements Topology.
func (f *FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if f.NodesPerLeaf > 0 && a/f.NodesPerLeaf == b/f.NodesPerLeaf {
		return 2
	}
	return 4
}

// MeanHops estimates the average hop distance over the first n nodes of a
// topology, used by collective cost models to choose an effective latency.
// For n ≤ 1 it returns 0. Small machines are enumerated exactly; beyond
// meanHopsExactLimit nodes a deterministic pair sample keeps the cost
// bounded (the estimate converges fast because hop distributions are
// narrow).
func MeanHops(t Topology, n int) float64 {
	if n <= 1 {
		return 0
	}
	if m := t.MaxNodes(); m > 0 && n > m {
		n = m
	}
	if n <= meanHopsExactLimit {
		sum, cnt := 0, 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				sum += t.Hops(a, b)
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return float64(sum) / float64(cnt)
	}
	// Deterministic sampling: a fixed-seed linear-congruential stream of
	// pairs, reproducible across runs.
	const samples = 1 << 16
	var state uint64 = 0x9E3779B97F4A7C15
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	sum, cnt := 0, 0
	for i := 0; i < samples; i++ {
		a, b := next(), next()
		if a == b {
			continue
		}
		sum += t.Hops(a, b)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// meanHopsExactLimit bounds the O(n²) exact enumeration.
const meanHopsExactLimit = 512
