// Package topo models the network topologies of the five systems in the
// study: the Fujitsu TofuD 6D mesh/torus, Cray's Aries dragonfly (ARCHER),
// fat-tree InfiniBand fabrics (Cirrus FDR, Fulhame EDR) and Intel OmniPath
// (EPCC NGIO, also a fat tree).
//
// A topology answers one question for the cost model: how many switch/link
// hops separate two nodes. The netmodel package turns hop counts into
// latency. Topologies are deterministic functions of node indices so
// simulations are reproducible.
package topo

import (
	"fmt"
	"math"
)

// Topology reports hop distances between nodes of a machine.
type Topology interface {
	// Name identifies the topology for diagnostics.
	Name() string
	// Hops returns the number of network hops (links traversed) between
	// two node indices. Hops(a,a) is 0.
	Hops(a, b int) int
	// MaxNodes is the largest node index the topology supports plus one;
	// 0 means unbounded.
	MaxNodes() int
}

// Torus is a k-dimensional wraparound mesh. Node i maps to mixed-radix
// coordinates over Dims, and distance is the sum of per-dimension ring
// distances — the routing metric of Tofu-style interconnects.
type Torus struct {
	// Dims are the per-dimension extents, all ≥ 1.
	Dims []int
	// Label overrides the default name when non-empty.
	Label string
}

// NewTofuD builds a torus shaped like the Tofu Interconnect D unit
// structure for a machine of at least `nodes` nodes. TofuD composes 2×3×2
// node groups into a 3D torus of groups; we factor the machine the same
// way: dims = (X, Y, 2, 3, 2) with X·Y sized to cover the node count.
func NewTofuD(nodes int) *Torus {
	if nodes < 1 {
		nodes = 1
	}
	group := 2 * 3 * 2 // 12-node TofuD unit
	groups := (nodes + group - 1) / group
	// Arrange groups in as square an XY torus as possible.
	x := int(math.Sqrt(float64(groups)))
	if x < 1 {
		x = 1
	}
	y := (groups + x - 1) / x
	return &Torus{Dims: []int{x, y, 2, 3, 2}, Label: "TofuD"}
}

// Name implements Topology.
func (t *Torus) Name() string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("torus%v", t.Dims)
}

// MaxNodes implements Topology.
func (t *Torus) MaxNodes() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// coords converts a node index to mixed-radix coordinates.
func (t *Torus) coords(i int) []int {
	c := make([]int, len(t.Dims))
	for d := len(t.Dims) - 1; d >= 0; d-- {
		c[d] = i % t.Dims[d]
		i /= t.Dims[d]
	}
	return c
}

// Hops implements Topology using per-dimension ring distance.
func (t *Torus) Hops(a, b int) int {
	if a == b {
		return 0
	}
	ca, cb := t.coords(a), t.coords(b)
	total := 0
	for d := range t.Dims {
		diff := ca[d] - cb[d]
		if diff < 0 {
			diff = -diff
		}
		wrap := t.Dims[d] - diff
		if wrap < diff {
			diff = wrap
		}
		total += diff
	}
	return total
}

// Dragonfly models the Cray Aries topology used by ARCHER: nodes attach in
// groups; routers within a group are all-to-all connected, and every group
// pair has a direct global link. Minimal routing is therefore at most
// local + global + local = 3 router-to-router hops, plus the two
// node-to-router links.
type Dragonfly struct {
	// NodesPerRouter is the number of nodes per Aries router (4 on XC30).
	NodesPerRouter int
	// RoutersPerGroup is the number of routers in a group (96 per
	// two-cabinet group on XC30).
	RoutersPerGroup int
}

// NewAries returns the ARCHER XC30 dragonfly configuration.
func NewAries() *Dragonfly {
	return &Dragonfly{NodesPerRouter: 4, RoutersPerGroup: 96}
}

// Name implements Topology.
func (d *Dragonfly) Name() string { return "dragonfly" }

// MaxNodes implements Topology (unbounded: groups scale out).
func (d *Dragonfly) MaxNodes() int { return 0 }

// Hops implements Topology. Distances: same router 2 (node-router-node),
// same group 3, different group 5 (two node links + local,global,local).
func (d *Dragonfly) Hops(a, b int) int {
	if a == b {
		return 0
	}
	ra, rb := a/d.NodesPerRouter, b/d.NodesPerRouter
	if ra == rb {
		return 2
	}
	ga, gb := ra/d.RoutersPerGroup, rb/d.RoutersPerGroup
	if ga == gb {
		return 3
	}
	return 5
}

// FatTree models a non-blocking fat tree (InfiniBand or OmniPath): nodes
// under the same leaf switch are 2 hops apart, anything further is routed
// through the core for 4 hops. Non-blocking means no bandwidth penalty is
// modelled for the extra tier; only latency grows.
type FatTree struct {
	// NodesPerLeaf is the number of nodes per leaf (edge) switch.
	NodesPerLeaf int
	// Label names the fabric (e.g. "EDR fat-tree").
	Label string
}

// Name implements Topology.
func (f *FatTree) Name() string {
	if f.Label != "" {
		return f.Label
	}
	return "fat-tree"
}

// MaxNodes implements Topology (unbounded).
func (f *FatTree) MaxNodes() int { return 0 }

// Hops implements Topology.
func (f *FatTree) Hops(a, b int) int {
	if a == b {
		return 0
	}
	if f.NodesPerLeaf > 0 && a/f.NodesPerLeaf == b/f.NodesPerLeaf {
		return 2
	}
	return 4
}

// MeanHops estimates the average hop distance over the first n nodes of a
// topology, used by collective cost models to choose an effective latency.
// For n ≤ 1 it returns 0. Small machines are enumerated exactly; beyond
// meanHopsExactLimit nodes a deterministic pair sample keeps the cost
// bounded (the estimate converges fast because hop distributions are
// narrow).
func MeanHops(t Topology, n int) float64 {
	if n <= 1 {
		return 0
	}
	if m := t.MaxNodes(); m > 0 && n > m {
		n = m
	}
	if n <= meanHopsExactLimit {
		sum, cnt := 0, 0
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				sum += t.Hops(a, b)
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return float64(sum) / float64(cnt)
	}
	// Deterministic sampling: a fixed-seed linear-congruential stream of
	// pairs, reproducible across runs.
	const samples = 1 << 16
	var state uint64 = 0x9E3779B97F4A7C15
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(n))
	}
	sum, cnt := 0, 0
	for i := 0; i < samples; i++ {
		a, b := next(), next()
		if a == b {
			continue
		}
		sum += t.Hops(a, b)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// meanHopsExactLimit bounds the O(n²) exact enumeration.
const meanHopsExactLimit = 512
