package topo

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// routeTopos is the property-test corpus: every topology family, both
// small (exhaustively checkable) and production-shaped.
func routeTopos() []struct {
	name string
	t    Topology
	n    int
} {
	return []struct {
		name string
		t    Topology
		n    int
	}{
		{"torus-3x4x2", &Torus{Dims: []int{3, 4, 2}}, 24},
		{"torus-1dims", &Torus{Dims: []int{1, 5, 1, 2}}, 10},
		{"tofud-48", NewTofuD(48), NewTofuD(48).MaxNodes()},
		{"dragonfly-small", &Dragonfly{NodesPerRouter: 2, RoutersPerGroup: 3}, 36},
		{"aries", NewAries(), 800},
		{"fattree", &FatTree{NodesPerLeaf: 8}, 64},
		{"fattree-oversub", &FatTree{NodesPerLeaf: 8, Uplinks: 2}, 64},
	}
}

// TestRouteMatchesHops checks the core route invariants over every pair:
// Route(a,a) is empty, len(Route(a,b)) == Hops(a,b), and the route's
// endpoints are a and b.
func TestRouteMatchesHops(t *testing.T) {
	t.Parallel()
	for _, tc := range routeTopos() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for a := 0; a < tc.n; a++ {
				for b := 0; b < tc.n; b++ {
					route := tc.t.Route(a, b)
					if a == b {
						if len(route) != 0 {
							t.Fatalf("Route(%d,%d) = %v, want empty", a, b, route)
						}
						continue
					}
					if got, want := len(route), tc.t.Hops(a, b); got != want {
						t.Fatalf("len(Route(%d,%d)) = %d, Hops = %d (%v)", a, b, got, want, route)
					}
					checkEndpoints(t, tc.t, a, b, route)
				}
			}
		})
	}
}

// checkEndpoints verifies a route starts at a and ends at b. Tori route
// node-to-node (every link joins node indices, consecutive links chain);
// the other topologies bracket the path with injection/ejection links.
func checkEndpoints(t *testing.T, topoImpl Topology, a, b int, route []Link) {
	t.Helper()
	first, last := route[0], route[len(route)-1]
	if _, isTorus := topoImpl.(*Torus); isTorus {
		if first.From != int32(a) || last.To != int32(b) {
			t.Fatalf("torus Route(%d,%d) endpoints wrong: %v", a, b, route)
		}
		for i := 1; i < len(route); i++ {
			if route[i].From != route[i-1].To {
				t.Fatalf("torus Route(%d,%d) does not chain at %d: %v", a, b, i, route)
			}
		}
		return
	}
	if first.Level != LevelHostUp || first.From != int32(a) {
		t.Fatalf("Route(%d,%d) must start with the source injection link: %v", a, b, route)
	}
	if last.Level != LevelHostDown || last.To != int32(b) {
		t.Fatalf("Route(%d,%d) must end with the destination ejection link: %v", a, b, route)
	}
}

// TestRouteSymmetryProperties quick-checks metric symmetry, the triangle
// inequality and route-length consistency on randomized pairs — the same
// invariants as the exhaustive test, but over the larger index spaces.
func TestRouteSymmetryProperties(t *testing.T) {
	t.Parallel()
	for _, tc := range routeTopos() {
		tc := tc
		f := func(aRaw, bRaw, cRaw uint16) bool {
			a, b, c := int(aRaw)%tc.n, int(bRaw)%tc.n, int(cRaw)%tc.n
			if tc.t.Hops(a, b) != tc.t.Hops(b, a) {
				return false
			}
			if tc.t.Hops(a, c) > tc.t.Hops(a, b)+tc.t.Hops(b, c) {
				return false
			}
			return len(tc.t.Route(a, b)) == tc.t.Hops(a, b) &&
				len(tc.t.Route(b, a)) == tc.t.Hops(a, b)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s route properties: %v", tc.name, err)
		}
	}
}

// TestRouteDeterministicAcrossGOMAXPROCS recomputes every route under
// different GOMAXPROCS settings, from many goroutines, on fresh topology
// instances (so the lazy torus table is rebuilt under contention) and
// requires bit-identical results. Routing feeds the contention solver,
// which must be schedule-independent.
func TestRouteDeterministicAcrossGOMAXPROCS(t *testing.T) {
	routesOf := func(mk func() Topology, n int) [][]Link {
		tp := mk()
		out := make([][]Link, 0, n*n)
		var mu sync.Mutex
		var wg sync.WaitGroup
		results := make([][][]Link, 8)
		for w := 0; w < 8; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				var rs [][]Link
				for a := w; a < n; a += 8 {
					for b := 0; b < n; b++ {
						rs = append(rs, tp.Route(a, b))
					}
				}
				mu.Lock()
				results[w] = rs
				mu.Unlock()
			}()
		}
		wg.Wait()
		for _, rs := range results {
			out = append(out, rs...)
		}
		return out
	}
	mks := []struct {
		name string
		mk   func() Topology
		n    int
	}{
		{"tofud", func() Topology { return NewTofuD(48) }, 48},
		{"dragonfly", func() Topology { return &Dragonfly{NodesPerRouter: 2, RoutersPerGroup: 3} }, 30},
		{"fattree", func() Topology { return &FatTree{NodesPerLeaf: 8, Uplinks: 2} }, 40},
	}
	for _, m := range mks {
		old := runtime.GOMAXPROCS(1)
		seq := routesOf(m.mk, m.n)
		runtime.GOMAXPROCS(old)
		par := routesOf(m.mk, m.n)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: routes differ between GOMAXPROCS=1 and %d", m.name, old)
		}
	}
}

// TestTorusHopsAllocFree is the regression guard for the pricing-path
// fix: once the coordinate table exists, Hops must not allocate.
func TestTorusHopsAllocFree(t *testing.T) {
	tor := NewTofuD(48)
	tor.Hops(0, 1) // build the table
	n := tor.MaxNodes()
	if allocs := testing.AllocsPerRun(100, func() {
		for a := 0; a < n; a++ {
			tor.Hops(a, n-1-a)
		}
	}); allocs != 0 {
		t.Errorf("Torus.Hops allocates %.1f objects per run, want 0", allocs)
	}
}

// TestTorusRouteAppendAllocFree guards the hot routing path: with a
// reusable buffer, RouteAppend must not allocate either.
func TestTorusRouteAppendAllocFree(t *testing.T) {
	tor := NewTofuD(48)
	buf := tor.RouteAppend(nil, 0, tor.MaxNodes()-1) // warm table + buffer
	n := tor.MaxNodes()
	if allocs := testing.AllocsPerRun(100, func() {
		for a := 0; a < n; a++ {
			buf = tor.RouteAppend(buf[:0], a, n-1-a)
		}
	}); allocs != 0 {
		t.Errorf("Torus.RouteAppend allocates %.1f objects per run, want 0", allocs)
	}
}
