package topo

import "testing"

// BenchmarkTorusHops exercises the pricing hot path: MeanHops and every
// point-to-point price call Hops, so it must stay allocation-free and
// division-free per call (see the coordinate table in table()).
func BenchmarkTorusHops(b *testing.B) {
	tor := NewTofuD(158976) // Fugaku-scale
	n := tor.MaxNodes()
	tor.Hops(0, 1) // build the table outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += tor.Hops(i%n, (i*7919)%n)
	}
	_ = sum
}

// BenchmarkTorusRouteAppend measures the contention engine's per-flow
// route expansion with a reused buffer.
func BenchmarkTorusRouteAppend(b *testing.B) {
	tor := NewTofuD(1024)
	n := tor.MaxNodes()
	buf := tor.RouteAppend(nil, 0, n-1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tor.RouteAppend(buf[:0], i%n, (i*7919)%n)
	}
}

// BenchmarkDragonflyRouteAppend and BenchmarkFatTreeRouteAppend keep the
// other families' routing costs visible in CI.
func BenchmarkDragonflyRouteAppend(b *testing.B) {
	d := NewAries()
	buf := d.RouteAppend(nil, 0, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = d.RouteAppend(buf[:0], i%2048, (i*7919)%2048)
	}
}

func BenchmarkFatTreeRouteAppend(b *testing.B) {
	f := &FatTree{NodesPerLeaf: 36, Uplinks: 18}
	buf := f.RouteAppend(nil, 0, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.RouteAppend(buf[:0], i%1024, (i*7919)%1024)
	}
}

// BenchmarkMeanHopsTofuD covers the collective-pricing path that
// motivated the coordinate table (it hits Hops ~65k times per call).
func BenchmarkMeanHopsTofuD(b *testing.B) {
	tor := NewTofuD(158976)
	tor.Hops(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MeanHops(tor, 158976)
	}
}
